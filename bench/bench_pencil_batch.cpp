// Batched/pipelined/autotuned pencil-transform benchmark: per-field vs
// batched vs pipelined vs the autotuner's pick, on the Table-5 measured
// grid plus a smaller dealiased split, emitting BENCH_pencil.json so later
// changes have a perf trajectory to compare against.
//
// The workload is one RK3 substage's worth of transforms (3 fields
// spectral -> physical, 5 fields physical -> spectral), the pattern
// simulation.cpp runs three times per step. Per-field issues 16 transpose
// exchanges per substage; batched aggregates them into 4; pipelined
// additionally overlaps each exchange with the neighbouring field group's
// FFT/reorder work on a comm thread. The autotuned mode first runs the
// measured tuner (storing its decision in an on-disk cache), then reloads
// the cache — exercising both the tune and replay paths production uses —
// and runs whatever {strategies, F, depth} the tuner chose.
//
// Usage: bench_pencil_batch [--fast]
//   --fast: small grid / few ranks / few reps — the ctest `perf`-label
//   smoke variant. Env: PCF_BENCH_REPS overrides the repeat count.
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "pencil/autotune.hpp"
#include "pencil/pencil.hpp"
#include "util/aligned.hpp"

using namespace pcf::pencil;

namespace {

struct bench_config {
  std::string label;
  grid g;
  int pa = 1, pb = 1;
  bool dealias = false;
};

struct mode_result {
  std::string name;
  // All four times are seconds per substage cycle: total is the best-of
  // -trials wall time, the sections are max-over-ranks accumulated timers
  // normalized by the cycle count (so comm + reorder + fft ~ total, and
  // the JSON's sections share total_s's basis).
  double total = 0.0;
  double comm = 0.0;
  double reorder = 0.0;
  double fft = 0.0;
  std::uint64_t exchanges = 0;       // aggregated exchanges per substage
  std::uint64_t alltoall_calls = 0;  // vmpi calls per substage (both comms)
};

const char* strategy_name(exchange_strategy s) {
  return s == exchange_strategy::pairwise ? "pairwise" : "alltoall";
}

mode_result run_mode(const std::string& name, const bench_config& bc,
                     int trials, int reps, const kernel_config& cfg,
                     bool batched) {
  mode_result out;
  out.name = name;
  std::mutex m;
  pcf::vmpi::run_world(bc.pa * bc.pb, [&](pcf::vmpi::communicator& world) {
    pcf::vmpi::cart2d cart(world, bc.pa, bc.pb);
    parallel_fft pf(bc.g, cart, cfg);
    const auto& d = pf.dec();

    std::vector<pcf::aligned_buffer<cplx>> spec(5);
    std::vector<pcf::aligned_buffer<double>> phys(5);
    const cplx* sp3[3];
    double* ph3[3];
    const double* pc5[5];
    cplx* bk5[5];
    for (std::size_t f = 0; f < 5; ++f) {
      spec[f].reset(d.y_pencil_elems());
      spec[f].fill(cplx{1.0 / static_cast<double>(f + 1), 0.0});
      phys[f].reset(d.x_pencil_real_elems());
      phys[f].fill(0.25 * static_cast<double>(f));
      pc5[f] = phys[f].data();
      bk5[f] = spec[f].data();
    }
    for (std::size_t f = 0; f < 3; ++f) {
      sp3[f] = spec[f].data();
      ph3[f] = phys[f].data();
    }

    auto substage = [&] {
      if (batched) {
        pf.to_physical_batch(sp3, ph3, 3);
        pf.to_spectral_batch(pc5, bk5, 5);
      } else {
        for (std::size_t f = 0; f < 3; ++f)
          pf.to_physical(sp3[f], ph3[f]);
        for (std::size_t f = 0; f < 5; ++f)
          pf.to_spectral(pc5[f], bk5[f]);
      }
    };

    substage();  // warm-up (first-touch, FFT twiddle caches)
    pf.reset_timers();
    const auto bs0 = pf.batching();
    const auto a0 = cart.comm_a().stats();
    const auto b0 = cart.comm_b().stats();

    // Virtual ranks oversubscribe the host's cores, so scheduler noise can
    // only ever add time; the minimum over trials is the robust estimate.
    double wall = 0.0;
    for (int trial = 0; trial < trials; ++trial) {
      world.barrier();
      pcf::wall_timer t;
      for (int r = 0; r < reps; ++r) substage();
      world.barrier();
      const double w = t.seconds() / reps;
      if (trial == 0 || w < wall) wall = w;
    }

    double local[3] = {pf.comm_seconds(), pf.reorder_seconds(),
                       pf.fft_seconds()};
    double agreed[3];
    world.allreduce_max(local, agreed, 3);

    if (world.rank() == 0) {
      const auto bs1 = pf.batching();
      const auto a1 = cart.comm_a().stats();
      const auto b1 = cart.comm_b().stats();
      std::lock_guard<std::mutex> lk(m);
      const auto cycles = static_cast<std::uint64_t>(trials) *
                          static_cast<std::uint64_t>(reps);
      out.total = wall;
      // The section timers accumulated over every trial x rep; divide by
      // the cycle count so they share `wall`'s per-substage basis.
      out.comm = agreed[0] / static_cast<double>(cycles);
      out.reorder = agreed[1] / static_cast<double>(cycles);
      out.fft = agreed[2] / static_cast<double>(cycles);
      out.exchanges = (bs1.exchanges - bs0.exchanges) / cycles;
      out.alltoall_calls = (a1.alltoall_calls - a0.alltoall_calls +
                            b1.alltoall_calls - b0.alltoall_calls) /
                           cycles;
    }
  });
  return out;
}

/// Run the measured autotuner for `bc`, persist its decision in `cache`,
/// then reload the cache from disk and return the stored choice — the
/// exact tune -> store -> reload round trip production restarts take.
tune_choice tune_and_reload(const bench_config& bc,
                            const kernel_config& base,
                            const std::string& cache, int reps) {
  std::mutex m;
  tune_choice tuned;
  pcf::vmpi::run_world(bc.pa * bc.pb, [&](pcf::vmpi::communicator& world) {
    pcf::vmpi::cart2d cart(world, bc.pa, bc.pb);
    tune_options opt;
    opt.cache_path = cache;
    opt.reps = reps;
    opt.force_retune = true;  // a bench must measure, not replay old runs
    const tune_report rep = autotune_transforms(bc.g, world, cart, base, opt);
    if (world.rank() == 0) {
      std::lock_guard<std::mutex> lk(m);
      tuned = rep.choice;
    }
  });
  // Prove the persisted entry replays: the stored choice must round trip.
  const auto entries = load_tuning_cache(cache);
  const auto* hit =
      find_tuning_entry(entries, make_tune_key(bc.g, base, bc.pa, bc.pb));
  if (hit != nullptr) tuned = hit->choice;
  return tuned;
}

struct config_report {
  bench_config bc;
  tune_choice tuned;
  std::vector<mode_result> rs;  // per_field, batched, pipelined, autotuned
};

void write_json(const char* path, int reps,
                const std::vector<config_report>& reports) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::perror("BENCH_pencil.json");
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"pencil_batch\",\n");
  std::fprintf(f, "  \"reps\": %d,\n", reps);
  std::fprintf(f, "  \"substage\": \"3x to_physical + 5x to_spectral\",\n");
  std::fprintf(f, "  \"configs\": [\n");
  for (std::size_t c = 0; c < reports.size(); ++c) {
    const auto& rep = reports[c];
    const auto& rs = rep.rs;
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"label\": \"%s\",\n", rep.bc.label.c_str());
    std::fprintf(f, "      \"grid\": [%zu, %zu, %zu],\n", rep.bc.g.nx,
                 rep.bc.g.ny, rep.bc.g.nz);
    std::fprintf(f, "      \"ranks\": %d, \"pa\": %d, \"pb\": %d,\n",
                 rep.bc.pa * rep.bc.pb, rep.bc.pa, rep.bc.pb);
    std::fprintf(f, "      \"dealias\": %s,\n",
                 rep.bc.dealias ? "true" : "false");
    std::fprintf(f,
                 "      \"tuned_choice\": {\"strat_a\": \"%s\", \"strat_b\": "
                 "\"%s\", \"batch\": %d, \"pipeline_depth\": %d},\n",
                 strategy_name(rep.tuned.strat_a),
                 strategy_name(rep.tuned.strat_b), rep.tuned.batch,
                 rep.tuned.pipeline_depth);
    std::fprintf(f, "      \"modes\": [\n");
    for (std::size_t i = 0; i < rs.size(); ++i) {
      const auto& r = rs[i];
      std::fprintf(
          f,
          "        {\"name\": \"%s\", \"total_s\": %.6e, \"comm_s\": %.6e, "
          "\"reorder_s\": %.6e, \"fft_s\": %.6e, \"exchanges\": %llu, "
          "\"alltoall_calls\": %llu}%s\n",
          r.name.c_str(), r.total, r.comm, r.reorder, r.fft,
          static_cast<unsigned long long>(r.exchanges),
          static_cast<unsigned long long>(r.alltoall_calls),
          i + 1 < rs.size() ? "," : "");
    }
    std::fprintf(f, "      ],\n");
    std::fprintf(f, "      \"speedup_batched\": %.4f,\n",
                 rs[0].total / rs[1].total);
    std::fprintf(f, "      \"speedup_pipelined\": %.4f,\n",
                 rs[0].total / rs[2].total);
    std::fprintf(f, "      \"speedup_autotuned\": %.4f\n",
                 rs[0].total / rs[3].total);
    std::fprintf(f, "    }%s\n", c + 1 < reports.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool fast = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;

  pcf::bench::print_header(
      "pencil batch",
      "per-field vs batched vs pipelined vs autotuned transforms");

  std::vector<bench_config> configs;
  if (fast) {
    configs.push_back({"fast_2x2", grid{16, 8, 16}, 2, 2, false});
  } else {
    // The Table-5 comm-benchmark split, plus a shallower split with
    // dealiasing on — the shape a small production campaign runs.
    configs.push_back({"table5_8x4", grid{32, 16, 32}, 8, 4, false});
    configs.push_back({"dealias_2x2", grid{32, 16, 32}, 2, 2, true});
  }
  const int reps = static_cast<int>(
      pcf::bench::env_long("PCF_BENCH_REPS", fast ? 3 : 8));
  const int trials = static_cast<int>(
      pcf::bench::env_long("PCF_BENCH_TRIALS", fast ? 2 : 5));

  std::vector<config_report> reports;
  for (const auto& bc : configs) {
    std::printf("config %s: grid %zu x %zu x %zu, %d ranks (%d x %d), "
                "dealias %s, best of %d trials x %d reps\n",
                bc.label.c_str(), bc.g.nx, bc.g.ny, bc.g.nz, bc.pa * bc.pb,
                bc.pa, bc.pb, bc.dealias ? "on" : "off", trials, reps);

    kernel_config base;
    base.dealias = bc.dealias;
    base.max_batch = 5;

    const std::string cache = "BENCH_pencil_tuning_" + bc.label + ".bin";
    std::remove(cache.c_str());
    const tune_choice tuned =
        tune_and_reload(bc, base, cache, fast ? 1 : 2);
    std::remove(cache.c_str());
    std::printf("  tuner chose: strat_a=%s strat_b=%s F=%d depth=%d\n",
                strategy_name(tuned.strat_a), strategy_name(tuned.strat_b),
                tuned.batch, tuned.pipeline_depth);

    config_report rep;
    rep.bc = bc;
    rep.tuned = tuned;
    kernel_config per_field = base;
    per_field.max_batch = 1;
    kernel_config batched = base;
    kernel_config pipelined = base;
    pipelined.pipeline_depth = 2;
    rep.rs.push_back(
        run_mode("per_field", bc, trials, reps, per_field, false));
    rep.rs.push_back(run_mode("batched", bc, trials, reps, batched, true));
    rep.rs.push_back(
        run_mode("pipelined", bc, trials, reps, pipelined, true));
    rep.rs.push_back(run_mode("autotuned", bc, trials, reps,
                              apply_tuning(base, tuned),
                              tuned.batch > 1));

    pcf::text_table t({"Mode", "Substage", "Comm", "Reorder", "FFT",
                       "Exch/substage", "vs per-field"});
    for (const auto& r : rep.rs)
      t.add_row({r.name, pcf::text_table::fmt_time(r.total),
                 pcf::text_table::fmt_time(r.comm),
                 pcf::text_table::fmt_time(r.reorder),
                 pcf::text_table::fmt_time(r.fft),
                 std::to_string(r.exchanges),
                 pcf::text_table::fmt(rep.rs[0].total / r.total, 2) + "x"});
    std::fputs(t.str().c_str(), stdout);
    std::printf("\n");
    reports.push_back(std::move(rep));
  }

  write_json("BENCH_pencil.json", reps, reports);
  std::printf("wrote BENCH_pencil.json (%zu configs x 4 modes)\n",
              reports.size());
  return 0;
}
