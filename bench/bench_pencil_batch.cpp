// Batched/pipelined pencil-transform benchmark: per-field vs batched vs
// pipelined on the Table-5 measured grid, emitting BENCH_pencil.json so
// later changes have a perf trajectory to compare against.
//
// The workload is one RK3 substage's worth of transforms (3 fields
// spectral -> physical, 5 fields physical -> spectral), the pattern
// simulation.cpp runs three times per step. Per-field issues 16 transpose
// exchanges per substage; batched aggregates them into 4; pipelined
// additionally overlaps each exchange with the neighbouring field group's
// FFT/reorder work on a comm thread.
//
// Usage: bench_pencil_batch [--fast]
//   --fast: small grid / few ranks / few reps — the ctest `perf`-label
//   smoke variant. Env: PCF_BENCH_REPS overrides the repeat count.
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "pencil/pencil.hpp"
#include "util/aligned.hpp"

using namespace pcf::pencil;

namespace {

struct mode_result {
  std::string name;
  double total = 0.0;    // wall seconds per substage cycle (rank-0 view)
  double comm = 0.0;     // max-over-ranks section seconds, whole run
  double reorder = 0.0;
  double fft = 0.0;
  std::uint64_t exchanges = 0;       // aggregated exchanges per substage
  std::uint64_t alltoall_calls = 0;  // vmpi calls per substage (both comms)
};

mode_result run_mode(const std::string& name, const grid& g, int pa, int pb,
                     int trials, int reps, bool batched, int pipeline_depth) {
  mode_result out;
  out.name = name;
  std::mutex m;
  pcf::vmpi::run_world(pa * pb, [&](pcf::vmpi::communicator& world) {
    pcf::vmpi::cart2d cart(world, pa, pb);
    kernel_config cfg;
    cfg.dealias = false;  // Table-5 configuration (comm benchmark)
    cfg.max_batch = batched ? 5 : 1;
    cfg.pipeline_depth = pipeline_depth;
    parallel_fft pf(g, cart, cfg);
    const auto& d = pf.dec();

    std::vector<pcf::aligned_buffer<cplx>> spec(5);
    std::vector<pcf::aligned_buffer<double>> phys(5);
    const cplx* sp3[3];
    double* ph3[3];
    const double* pc5[5];
    cplx* bk5[5];
    for (std::size_t f = 0; f < 5; ++f) {
      spec[f].reset(d.y_pencil_elems());
      spec[f].fill(cplx{1.0 / static_cast<double>(f + 1), 0.0});
      phys[f].reset(d.x_pencil_real_elems());
      phys[f].fill(0.25 * static_cast<double>(f));
      pc5[f] = phys[f].data();
      bk5[f] = spec[f].data();
    }
    for (std::size_t f = 0; f < 3; ++f) {
      sp3[f] = spec[f].data();
      ph3[f] = phys[f].data();
    }

    auto substage = [&] {
      if (batched) {
        pf.to_physical_batch(sp3, ph3, 3);
        pf.to_spectral_batch(pc5, bk5, 5);
      } else {
        for (std::size_t f = 0; f < 3; ++f)
          pf.to_physical(sp3[f], ph3[f]);
        for (std::size_t f = 0; f < 5; ++f)
          pf.to_spectral(pc5[f], bk5[f]);
      }
    };

    substage();  // warm-up (first-touch, FFT twiddle caches)
    pf.reset_timers();
    const auto bs0 = pf.batching();
    const auto a0 = cart.comm_a().stats();
    const auto b0 = cart.comm_b().stats();

    // Virtual ranks oversubscribe the host's cores, so scheduler noise can
    // only ever add time; the minimum over trials is the robust estimate.
    double wall = 0.0;
    for (int trial = 0; trial < trials; ++trial) {
      world.barrier();
      pcf::wall_timer t;
      for (int r = 0; r < reps; ++r) substage();
      world.barrier();
      const double w = t.seconds() / reps;
      if (trial == 0 || w < wall) wall = w;
    }

    double local[3] = {pf.comm_seconds(), pf.reorder_seconds(),
                       pf.fft_seconds()};
    double agreed[3];
    world.allreduce_max(local, agreed, 3);

    if (world.rank() == 0) {
      const auto bs1 = pf.batching();
      const auto a1 = cart.comm_a().stats();
      const auto b1 = cart.comm_b().stats();
      std::lock_guard<std::mutex> lk(m);
      out.total = wall;
      out.comm = agreed[0];
      out.reorder = agreed[1];
      out.fft = agreed[2];
      const auto cycles = static_cast<std::uint64_t>(trials) *
                          static_cast<std::uint64_t>(reps);
      out.exchanges = (bs1.exchanges - bs0.exchanges) / cycles;
      out.alltoall_calls = (a1.alltoall_calls - a0.alltoall_calls +
                            b1.alltoall_calls - b0.alltoall_calls) /
                           cycles;
    }
  });
  return out;
}

void write_json(const char* path, const grid& g, int ranks, int reps,
                const std::vector<mode_result>& rs) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::perror("BENCH_pencil.json");
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"pencil_batch\",\n");
  std::fprintf(f, "  \"grid\": [%zu, %zu, %zu],\n", g.nx, g.ny, g.nz);
  std::fprintf(f, "  \"ranks\": %d,\n  \"reps\": %d,\n", ranks, reps);
  std::fprintf(f, "  \"substage\": \"3x to_physical + 5x to_spectral\",\n");
  std::fprintf(f, "  \"modes\": [\n");
  for (std::size_t i = 0; i < rs.size(); ++i) {
    const auto& r = rs[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"total_s\": %.6e, \"comm_s\": "
                 "%.6e, \"reorder_s\": %.6e, \"fft_s\": %.6e, \"exchanges\": "
                 "%llu, \"alltoall_calls\": %llu}%s\n",
                 r.name.c_str(), r.total, r.comm, r.reorder, r.fft,
                 static_cast<unsigned long long>(r.exchanges),
                 static_cast<unsigned long long>(r.alltoall_calls),
                 i + 1 < rs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"speedup_batched\": %.4f,\n",
               rs[0].total / rs[1].total);
  std::fprintf(f, "  \"speedup_pipelined\": %.4f\n", rs[0].total / rs[2].total);
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool fast = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;

  pcf::bench::print_header(
      "pencil batch", "per-field vs batched vs pipelined transforms");

  const grid g = fast ? grid{16, 8, 16} : grid{32, 16, 32};
  const int pa = fast ? 2 : 8, pb = fast ? 2 : 4;
  const int reps = static_cast<int>(
      pcf::bench::env_long("PCF_BENCH_REPS", fast ? 3 : 8));
  const int trials = static_cast<int>(
      pcf::bench::env_long("PCF_BENCH_TRIALS", fast ? 2 : 5));

  std::printf("grid %zu x %zu x %zu, %d ranks (%d x %d), best of %d trials "
              "x %d reps, workload = one RK3 substage (3 down + 5 up)\n\n",
              g.nx, g.ny, g.nz, pa * pb, pa, pb, trials, reps);

  std::vector<mode_result> rs;
  rs.push_back(run_mode("per_field", g, pa, pb, trials, reps, false, 1));
  rs.push_back(run_mode("batched", g, pa, pb, trials, reps, true, 1));
  rs.push_back(run_mode("pipelined", g, pa, pb, trials, reps, true, 2));

  pcf::text_table t({"Mode", "Substage", "Comm", "Reorder", "FFT",
                     "Exch/substage", "vs per-field"});
  for (const auto& r : rs)
    t.add_row({r.name, pcf::text_table::fmt_time(r.total),
               pcf::text_table::fmt_time(r.comm),
               pcf::text_table::fmt_time(r.reorder),
               pcf::text_table::fmt_time(r.fft),
               std::to_string(r.exchanges),
               pcf::text_table::fmt(rs[0].total / r.total, 2) + "x"});
  std::fputs(t.str().c_str(), stdout);

  write_json("BENCH_pencil.json", g, pa * pb, reps, rs);
  std::printf("\nwrote BENCH_pencil.json (exchange aggregation: %llu -> "
              "%llu per substage)\n",
              static_cast<unsigned long long>(rs[0].exchanges),
              static_cast<unsigned long long>(rs[1].exchanges));
  return 0;
}
