// Paper Figures 5 and 6: mean velocity profile and Reynolds-stress
// profiles of the turbulent channel.
//
// Runs a short Re_tau = 180 DNS (the paper's Re_tau = 5200 lineage at
// laptop scale — see DESIGN.md for the substitution) and prints the
// series behind both figures: U+(y+) on a semi-log ladder, plus the
// variances and the turbulent shear stress. The default step count gives
// a *developing* flow in seconds; set PCF_BENCH_STEPS (and a finer grid
// via the channel_dns example) for converged statistics.
#include <cmath>
#include <mutex>

#include "bench_common.hpp"
#include "core/simulation.hpp"

int main() {
  pcf::bench::print_header(
      "Figures 5 & 6", "mean velocity and Reynolds stress profiles");

  pcf::core::channel_config cfg;
  cfg.nx = static_cast<std::size_t>(pcf::bench::env_long("PCF_BENCH_NX", 24));
  cfg.nz = static_cast<std::size_t>(pcf::bench::env_long("PCF_BENCH_NZ", 24));
  cfg.ny = static_cast<int>(pcf::bench::env_long("PCF_BENCH_NY", 33));
  cfg.re_tau = 180.0;
  cfg.dt = 2e-4;
  const long steps = pcf::bench::env_long("PCF_BENCH_STEPS", 400);
  const long warmup = steps / 2;

  std::mutex m;
  pcf::vmpi::run_world(1, [&](pcf::vmpi::communicator& world) {
    pcf::core::channel_dns dns(cfg, world);
    dns.initialize(0.15);
    for (long s = 0; s < steps; ++s) {
      dns.step();
      if (s >= warmup && s % 5 == 0) dns.accumulate_stats();
    }
    auto p = dns.stats();
    std::lock_guard<std::mutex> lk(m);

    std::printf("grid %zu x %d x %zu, %ld steps (t+ = %.1f), %ld samples\n\n",
                cfg.nx, cfg.ny, cfg.nz, steps,
                dns.time() * cfg.re_tau, p.samples);

    std::printf("Figure 5 series — mean velocity U+(y+), lower half "
                "channel (log law U+ = ln(y+)/0.41 + 5.2 for reference):\n");
    pcf::text_table f5({"y+", "U+", "log-law"});
    for (std::size_t i = 0; i < p.y.size() / 2; ++i) {
      const double yp = (1.0 + p.y[i]) * cfg.re_tau;
      if (yp <= 0.0) continue;
      const double ll = yp > 5.0 ? std::log(yp) / 0.41 + 5.2 : yp;
      f5.add_row({pcf::text_table::fmt(yp, 2), pcf::text_table::fmt(p.u[i], 3),
                  pcf::text_table::fmt(ll, 3)});
    }
    std::fputs(f5.str().c_str(), stdout);

    std::printf("\nFigure 6 series — velocity variances and turbulent "
                "shear stress:\n");
    pcf::text_table f6({"y+", "<uu>", "<vv>", "<ww>", "-<uv>"});
    for (std::size_t i = 0; i < p.y.size() / 2; ++i) {
      const double yp = (1.0 + p.y[i]) * cfg.re_tau;
      f6.add_row({pcf::text_table::fmt(yp, 2),
                  pcf::text_table::fmt(p.uu[i], 4),
                  pcf::text_table::fmt(p.vv[i], 4),
                  pcf::text_table::fmt(p.ww[i], 4),
                  pcf::text_table::fmt(-p.uv[i], 4)});
    }
    std::fputs(f6.str().c_str(), stdout);

    std::printf("\nshape checks: U+ rises through the viscous sublayer and "
                "bends toward the log region;\n<uu> peaks nearer the wall "
                "than <vv>/<ww>; all stresses vanish at the wall.\n"
                "(Short default run — statistics are developing, not "
                "converged; see EXPERIMENTS.md.)\n");
  });
  return 0;
}
