// Paper Table 6: strong-scaling comparison of the customized parallel FFT
// kernel against P3DFFT.
//
// Measured section: both kernels (the P3DFFT baseline is the same engine
// configured with P3DFFT 2.5.1's implementation choices — Nyquist mode
// kept, no threading, 3x buffers, no fused dealiasing) run on the
// virtual-MPI runtime at increasing rank counts; the benchmark protocol
// follows the paper: four transposes + four FFT sets per cycle, no
// dealiasing pad/truncate.
//
// Modelled section: netsim regenerates the full table for all four
// systems up to 786,432 cores.
#include <mutex>
#include <vector>

#include "bench_common.hpp"
#include "netsim/predictor.hpp"
#include "pencil/pencil.hpp"
#include "util/aligned.hpp"

using namespace pcf::pencil;

namespace {

double measured_cycle(int ranks, const grid& g, const kernel_config& cfg,
                      int repeats) {
  double out = 0.0;
  std::mutex m;
  pcf::vmpi::run_world(ranks, [&](pcf::vmpi::communicator& world) {
    int pa = 1;
    for (int f = 1; f * f <= ranks; ++f)
      if (ranks % f == 0) pa = ranks / f;
    pcf::vmpi::cart2d cart(world, pa, ranks / pa);
    parallel_fft pf(g, cart, cfg);
    const auto& d = pf.dec();
    pcf::aligned_buffer<cplx> spec(d.y_pencil_elems(), cplx{0.5, -0.5});
    pcf::aligned_buffer<double> phys(d.x_pencil_real_elems());
    pf.to_physical(spec.data(), phys.data());
    pf.to_spectral(phys.data(), spec.data());
    pcf::wall_timer t;
    for (int r = 0; r < repeats; ++r) {
      pf.to_physical(spec.data(), phys.data());
      pf.to_spectral(phys.data(), spec.data());
    }
    if (world.rank() == 0) {
      std::lock_guard<std::mutex> lk(m);
      out = t.seconds() / repeats;
    }
  });
  return out;
}

void modelled_table(const pcf::netsim::machine& m, std::size_t nx,
                    std::size_t ny, std::size_t nz,
                    const std::vector<long>& core_counts) {
  pcf::netsim::predictor p(m);
  std::printf("\nmodelled %s (Nx = %zu, Ny = %zu, Nz = %zu):\n",
              m.name.c_str(), nx, ny, nz);
  pcf::text_table t({"Cores", "P3DFFT", "Eff", "Customized", "Eff", "Ratio"});
  double base_p = 0, base_c = 0;
  long base_cores = 0;
  for (long cores : core_counts) {
    pcf::netsim::job_config custom;
    custom.nx = nx;
    custom.ny = ny;
    custom.nz = nz;
    custom.cores = cores;
    custom.dealias = false;
    custom.ranks_per_node = 1;  // hybrid launch, threaded kernels
    pcf::netsim::job_config p3d = custom;
    p3d.ranks_per_node = 0;  // one rank per core
    p3d.drop_nyquist = false;
    p3d.threaded = false;
    p3d.buffer_factor = 3.0;
    p3d.per_peer_overhead = 3.0e-5;  // unaggregated per-peer messaging

    const double tc = p.pfft_cycle(custom);
    const double tp = p.pfft_cycle(p3d);
    if (base_cores == 0) {
      base_cores = cores;
      base_p = tp;
      base_c = tc;
    }
    const double scale = static_cast<double>(base_cores) / cores;
    t.add_row({std::to_string(cores), pcf::text_table::fmt(tp, 3),
               pcf::text_table::fmt_pct(base_p * scale / tp),
               pcf::text_table::fmt(tc, 3),
               pcf::text_table::fmt_pct(base_c * scale / tc),
               pcf::text_table::fmt(tp / tc, 2)});
  }
  std::fputs(t.str().c_str(), stdout);
}

}  // namespace

int main() {
  pcf::bench::print_header("Table 6",
                           "parallel FFT: P3DFFT vs customized kernel");

  // --- measured ---------------------------------------------------------------
  grid g{static_cast<std::size_t>(pcf::bench::env_long("PCF_BENCH_NX", 64)),
         static_cast<std::size_t>(pcf::bench::env_long("PCF_BENCH_NY", 32)),
         static_cast<std::size_t>(pcf::bench::env_long("PCF_BENCH_NZ", 64))};
  const int repeats =
      static_cast<int>(pcf::bench::env_long("PCF_BENCH_REPS", 5));
  kernel_config custom;
  custom.dealias = false;  // paper's benchmark protocol
  kernel_config p3d = kernel_config::p3dfft_mode();

  std::printf("measured on the virtual-MPI runtime (grid %zu x %zu x %zu; "
              "single physical core, so per-rank times rise with rank "
              "count — the comparable quantity is the ratio):\n",
              g.nx, g.ny, g.nz);
  pcf::text_table hm({"Ranks", "P3DFFT-style", "Customized", "Ratio"});
  for (int ranks : {1, 2, 4, 8}) {
    const double tp = measured_cycle(ranks, g, p3d, repeats);
    const double tc = measured_cycle(ranks, g, custom, repeats);
    hm.add_row({std::to_string(ranks), pcf::text_table::fmt_time(tp),
                pcf::text_table::fmt_time(tc),
                pcf::text_table::fmt(tp / tc, 2)});
  }
  std::fputs(hm.str().c_str(), stdout);

  // --- modelled ---------------------------------------------------------------
  using pcf::netsim::machine;
  modelled_table(machine::mira(), 2048, 1024, 1024,
                 {128, 256, 512, 1024, 2048, 4096, 8192});
  modelled_table(machine::mira(), 18432, 12288, 12288,
                 {65536, 131072, 262144, 393216, 524288, 786432});
  modelled_table(machine::lonestar(), 768, 768, 768,
                 {12, 24, 48, 96, 192, 384, 768, 1536});
  modelled_table(machine::stampede(), 1024, 1024, 1024,
                 {16, 32, 64, 128, 256, 512, 1024, 2048, 4096});

  std::printf("\npaper: ratios ~2.1-2.6 on Mira(1), 1.45-1.73 on Mira(2); "
              "crossover from <1 to >1.7 on Lonestar/Stampede.\n");
  return 0;
}
