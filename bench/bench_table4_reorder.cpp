// Paper Table 4: single-node performance of the on-node data reordering
// A(i,j,k) -> A(j,k,i) that feeds the global transpose.
//
// Unlike the FFT/advance kernels, the reorder does nothing but move
// memory, so its thread scaling saturates once DDR bandwidth is consumed
// (Table 4: speedup stalls at ~6x on 16 cores and *decreases* with more
// threads). Measured host bandwidth is reported alongside the modelled
// Mira saturation curve used by the scaling predictor.
#include <complex>
#include <vector>

#include "bench_common.hpp"
#include "netsim/predictor.hpp"
#include "util/thread_pool.hpp"

using cplx = std::complex<double>;

namespace {

/// The pencil kernel's reorder pattern: out[(j*nk + k)*ni + i] = in[(i*nj
/// + j)*nk + k].
double reorder_time(int threads, std::size_t ni, std::size_t nj,
                    std::size_t nk, std::vector<cplx>& in,
                    std::vector<cplx>& out) {
  pcf::thread_pool pool(threads);
  return pcf::bench::time_call([&] {
    pool.run(ni, [&](std::size_t ib, std::size_t ie) {
      for (std::size_t i = ib; i < ie; ++i)
        for (std::size_t j = 0; j < nj; ++j)
          for (std::size_t k = 0; k < nk; ++k)
            out[(j * nk + k) * ni + i] = in[(i * nj + j) * nk + k];
    });
  });
}

}  // namespace

int main() {
  pcf::bench::print_header("Table 4",
                           "single-node data reordering (memory-bound)");

  const std::size_t ni = pcf::bench::env_long("PCF_BENCH_NI", 64);
  const std::size_t nj = 64, nk = 64;
  std::vector<cplx> in(ni * nj * nk, cplx{1.0, 2.0}), out(in.size());
  const double bytes = 2.0 * static_cast<double>(in.size()) * sizeof(cplx);

  std::printf("measured on this host (%zu x %zu x %zu complex):\n", ni, nj,
              nk);
  pcf::text_table hm({"Threads", "Time", "Bandwidth"});
  for (int th : {1, 2, 4}) {
    const double t = reorder_time(th, ni, nj, nk, in, out);
    hm.add_row({std::to_string(th), pcf::text_table::fmt_time(t),
                pcf::text_table::fmt(bytes / t / 1e9, 2) + " GB/s"});
  }
  std::fputs(hm.str().c_str(), stdout);

  std::printf("\nmodelled Mira node (STREAM limit 18 B/cycle = 28.8 GB/s):\n");
  pcf::netsim::predictor p(pcf::netsim::machine::mira());
  pcf::text_table t({"Cores", "DDR traffic (B/cycle)", "Speedup",
                     "Efficiency"});
  const double bw1 = p.reorder_bandwidth(1);
  for (int c : {1, 2, 4, 8, 16, 32, 64}) {
    const double bw = p.reorder_bandwidth(c);
    const std::string label =
        c <= 16 ? std::to_string(c)
                : "16x" + std::to_string(c / 16);
    t.add_row({label, pcf::text_table::fmt(bw / 28.8e9 * 18.0, 1),
               pcf::text_table::fmt(bw / bw1, 2),
               pcf::text_table::fmt_pct(bw / bw1 / c)});
  }
  std::fputs(t.str().c_str(), stdout);
  std::printf("\npaper: DDR saturates at ~16 B/cycle by 16 threads; extra "
              "hardware threads only add contention.\n");
  return 0;
}
