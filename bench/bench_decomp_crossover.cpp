// Decomposition crossover study: where do the comm-avoiding layouts
// (1-D slab, 2.5D hybrid) beat the 2-D pencil, and out to how many ranks?
//
// Two parts, mirroring bench_table5_comm's structure:
//   (1) *measured* — the real transform kernel on the virtual-MPI runtime,
//       one run per runnable decomposition of a small rank count. This
//       demonstrates the structural claim (the comm-avoiding layouts run
//       half the counted exchange stages) and records real substage
//       times; on the shared-memory virtual runtime every "exchange" is a
//       memcpy, so wall-clock ordering there is bandwidth-dominated and
//       the network win is the model's to show;
//   (2) *modelled* — the netsim predictor on the 2026 GPU fat-tree
//       machine (NVLink-island nodes), scanning rank counts out to 10^6
//       and naming the predicted crossover rank counts where the fastest
//       layout changes.
//
// Emits BENCH_decomp_crossover.json so later changes have a trajectory.
//
// Usage: bench_decomp_crossover [--fast]
//   --fast: few ranks / few scan points — the ctest `perf`-label smoke.
//   Env: PCF_BENCH_REPS overrides the measured repeat count.
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "netsim/predictor.hpp"
#include "pencil/decomp.hpp"
#include "pencil/pencil.hpp"
#include "util/aligned.hpp"

namespace {

using pcf::netsim::decomp_kind;
using pcf::netsim::decomp_times;
using pcf::netsim::job_config;
using pcf::netsim::machine;
using pcf::netsim::predictor;
using pcf::pencil::cplx;
using pcf::pencil::decomp_plan;
using pcf::pencil::grid;
using pcf::pencil::kernel_config;
using pcf::pencil::parallel_fft;

// --- measured: one RK3 substage (3 down + 5 up) per decomposition --------

struct measured_row {
  decomp_plan plan;
  double seconds = 0.0;
  std::uint64_t exchanges = 0;  // counted global exchange stages/substage
};

measured_row run_plan(const decomp_plan& p, const grid& g, int trials,
                      int reps) {
  measured_row out;
  out.plan = p;
  std::mutex m;
  pcf::vmpi::run_world(p.pa * p.pb, [&](pcf::vmpi::communicator& world) {
    pcf::vmpi::cart2d cart(world, p.pa, p.pb);
    kernel_config cfg;
    cfg.max_batch = 5;
    parallel_fft pf(g, cart, cfg);
    const auto& d = pf.dec();

    std::vector<pcf::aligned_buffer<cplx>> spec(5);
    std::vector<pcf::aligned_buffer<double>> phys(5);
    const cplx* sp3[3];
    double* ph3[3];
    const double* pc5[5];
    cplx* bk5[5];
    for (std::size_t f = 0; f < 5; ++f) {
      spec[f].reset(d.y_pencil_elems());
      spec[f].fill(cplx{1.0 / static_cast<double>(f + 1), 0.0});
      phys[f].reset(d.x_pencil_real_elems());
      pc5[f] = phys[f].data();
      bk5[f] = spec[f].data();
    }
    for (std::size_t f = 0; f < 3; ++f) {
      sp3[f] = spec[f].data();
      ph3[f] = phys[f].data();
    }
    auto substage = [&] {
      pf.to_physical_batch(sp3, ph3, 3);
      pf.to_spectral_batch(pc5, bk5, 5);
    };

    substage();  // warm-up
    const auto bs0 = pf.batching();
    double wall = 0.0;
    for (int trial = 0; trial < trials; ++trial) {
      world.barrier();
      pcf::wall_timer t;
      for (int r = 0; r < reps; ++r) substage();
      world.barrier();
      const double w = t.seconds() / reps;
      if (trial == 0 || w < wall) wall = w;
    }
    if (world.rank() == 0) {
      std::lock_guard<std::mutex> lk(m);
      out.seconds = wall;
      const auto cycles = static_cast<std::uint64_t>(trials) *
                          static_cast<std::uint64_t>(reps);
      out.exchanges = (pf.batching().exchanges - bs0.exchanges) / cycles;
    }
  });
  return out;
}

// --- modelled: rank-count scan on the 2026 GPU machine -------------------

struct scan_row {
  long ranks = 0;
  decomp_times by_kind[3];  // pencil2d, slab, hybrid_25d
  decomp_kind fastest = decomp_kind::pencil2d;
};

struct crossover {
  long ranks = 0;  // first scanned rank count where `to` leads
  decomp_kind from = decomp_kind::pencil2d;
  decomp_kind to = decomp_kind::pencil2d;
};

const char* kind_name(decomp_kind k) { return pcf::netsim::to_string(k); }

void write_json(const char* path, const job_config& jbase,
                const std::vector<scan_row>& scan,
                const std::vector<crossover>& crossings,
                const std::vector<measured_row>& measured) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::perror(path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"decomp_crossover\",\n");
  std::fprintf(f, "  \"machine\": \"gpu_fattree_2026\",\n");
  std::fprintf(f, "  \"grid\": [%zu, %zu, %zu],\n", jbase.nx, jbase.ny,
               jbase.nz);
  std::fprintf(f, "  \"scan\": [\n");
  for (std::size_t i = 0; i < scan.size(); ++i) {
    const auto& r = scan[i];
    std::fprintf(f, "    {\"ranks\": %ld, \"fastest\": \"%s\"", r.ranks,
                 kind_name(r.fastest));
    for (const auto& d : r.by_kind) {
      if (!d.valid) continue;
      std::fprintf(f, ", \"%s_s\": %.6e", kind_name(d.kind), d.t.total());
    }
    std::fprintf(f, "}%s\n", i + 1 < scan.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"crossovers\": [\n");
  for (std::size_t i = 0; i < crossings.size(); ++i)
    std::fprintf(f, "    {\"ranks\": %ld, \"from\": \"%s\", \"to\": \"%s\"}%s\n",
                 crossings[i].ranks, kind_name(crossings[i].from),
                 kind_name(crossings[i].to),
                 i + 1 < crossings.size() ? "," : "");
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"measured\": [\n");
  for (std::size_t i = 0; i < measured.size(); ++i) {
    const auto& r = measured[i];
    std::fprintf(f,
                 "    {\"kind\": \"%s\", \"pa\": %d, \"pb\": %d, "
                 "\"seconds\": %.6e, \"exchanges\": %llu}%s\n",
                 pcf::pencil::to_string(r.plan.kind), r.plan.pa, r.plan.pb,
                 r.seconds, static_cast<unsigned long long>(r.exchanges),
                 i + 1 < measured.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool fast = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;

  pcf::bench::print_header(
      "decomp crossover",
      "slab / 2.5D / pencil: measured ordering + modelled crossovers");

  // --- measured on the virtual-MPI runtime --------------------------------
  const int ranks = fast ? 8 : 16;
  const grid g{32, 16, 32};
  const int reps = static_cast<int>(
      pcf::bench::env_long("PCF_BENCH_REPS", fast ? 3 : 6));
  const int trials = fast ? 2 : 4;
  std::printf("measured (virtual-MPI, %d ranks, grid %zu x %zu x %zu, RK3 "
              "substage = 3 down + 5 up, best of %d x %d):\n",
              ranks, g.nx, g.ny, g.nz, trials, reps);

  std::vector<measured_row> measured;
  for (const auto& p : pcf::pencil::decomposition_candidates(
           g, ranks, ranks / 2, 2))
    measured.push_back(run_plan(p, g, trials, reps));

  pcf::text_table mt({"Layout", "Grid", "Exch/substage", "Substage",
                      "vs pencil"});
  for (const auto& r : measured)
    mt.add_row({pcf::pencil::to_string(r.plan.kind),
                std::to_string(r.plan.pa) + " x " + std::to_string(r.plan.pb),
                std::to_string(r.exchanges),
                pcf::text_table::fmt_time(r.seconds),
                pcf::text_table::fmt(measured[0].seconds / r.seconds, 2) +
                    "x"});
  std::fputs(mt.str().c_str(), stdout);

  // --- modelled out to 10^6 ranks ------------------------------------------
  const machine m = machine::gpu_fattree_2026();
  const predictor pred(m);
  job_config j;
  j.nx = 36864;
  j.ny = 4096;
  j.nz = 24576;

  std::printf("\nmodelled %s, grid %zu x %zu x %zu (one GPU = one rank):\n",
              m.name.c_str(), j.nx, j.ny, j.nz);
  pcf::text_table st({"Ranks", "pencil2d", "slab", "hybrid_25d (c)",
                      "Fastest"});
  std::vector<scan_row> scan;
  const long lo = fast ? 4096 : 1024;
  const long hi = 1048576;  // 2^20: the 10^6-rank target
  for (long r = lo; r <= hi; r *= fast ? 16 : 2) {
    scan_row row;
    row.ranks = r;
    j.cores = r;
    double best = 0.0;
    bool first = true;
    int i = 0;
    for (auto k : {decomp_kind::pencil2d, decomp_kind::slab,
                   decomp_kind::hybrid_25d}) {
      const auto d = pred.timestep_decomp(j, k);
      row.by_kind[i++] = d;
      if (!d.valid) continue;
      if (first || d.t.total() < best) {
        best = d.t.total();
        row.fastest = k;
        first = false;
      }
    }
    const auto& h = row.by_kind[2];
    st.add_row(
        {std::to_string(r),
         pcf::text_table::fmt_time(row.by_kind[0].t.total()),
         row.by_kind[1].valid
             ? pcf::text_table::fmt_time(row.by_kind[1].t.total())
             : std::string("--"),
         h.valid ? pcf::text_table::fmt_time(h.t.total()) + " (" +
                       std::to_string(h.pa) + ")"
                 : std::string("--"),
         kind_name(row.fastest)});
    scan.push_back(row);
  }
  std::fputs(st.str().c_str(), stdout);

  std::vector<crossover> crossings;
  for (std::size_t i = 1; i < scan.size(); ++i)
    if (scan[i].fastest != scan[i - 1].fastest)
      crossings.push_back(
          {scan[i].ranks, scan[i - 1].fastest, scan[i].fastest});
  if (crossings.empty()) {
    std::printf("\npredicted: %s stays fastest across the scanned range "
                "(%ld .. %ld ranks)\n",
                kind_name(scan.front().fastest), lo, hi);
  } else {
    for (const auto& c : crossings)
      std::printf("\npredicted crossover: %s -> %s at %ld ranks",
                  kind_name(c.from), kind_name(c.to), c.ranks);
    std::printf("\n");
  }
  std::printf("slab validity limit on this grid: %ld ranks "
              "(min(ny, nz)); the 2.5D hybrid carries the comm-avoiding "
              "advantage beyond it.\n",
              static_cast<long>(std::min(j.ny, j.nz)));

  write_json("BENCH_decomp_crossover.json", j, scan, crossings, measured);
  std::printf("wrote BENCH_decomp_crossover.json (%zu scan points, %zu "
              "measured layouts)\n",
              scan.size(), measured.size());
  return 0;
}
