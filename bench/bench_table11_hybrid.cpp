// Paper Table 11: MPI vs Hybrid launch on Mira — total timestep time and
// the hybrid advantage ratio for both the strong- and weak-scaling grids.
//
// The reproduced claim (Section 5.3): using one MPI task per node instead
// of one per core issues 256x fewer, 256x larger messages; this wins by
// ~10-20% through the mid range and converges to parity at the full
// machine, where the interconnect saturates either way.
#include "bench_scaling.hpp"

using namespace pcf::bench;
using pcf::netsim::job_config;
using pcf::netsim::machine;
using pcf::netsim::predictor;

int main() {
  print_header("Table 11", "MPI vs Hybrid total timestep time on Mira");
  predictor p(machine::mira());

  const std::vector<long> cores = {65536, 131072, 262144,
                                   393216, 524288, 786432};
  const std::vector<std::size_t> weak_nx = {4608, 9216, 18432,
                                            27648, 36864, 55296};

  pcf::text_table t({"Cores", "Strong MPI", "Strong Hybrid", "Ratio",
                     "Weak MPI", "Weak Hybrid", "Ratio"});
  for (std::size_t i = 0; i < cores.size(); ++i) {
    job_config js;
    js.nx = 18432;
    js.ny = 1536;
    js.nz = 12288;
    js.cores = cores[i];
    js.ranks_per_node = 0;
    const double s_mpi = p.timestep(js).total();
    js.ranks_per_node = 1;
    const double s_hyb = p.timestep(js).total();

    job_config jw = js;
    jw.nx = weak_nx[i];
    jw.ranks_per_node = 0;
    const double w_mpi = p.timestep(jw).total();
    jw.ranks_per_node = 1;
    const double w_hyb = p.timestep(jw).total();

    t.add_row({std::to_string(cores[i]), pcf::text_table::fmt(s_mpi, 2),
               pcf::text_table::fmt(s_hyb, 2),
               pcf::text_table::fmt(s_mpi / s_hyb, 2),
               pcf::text_table::fmt(w_mpi, 2),
               pcf::text_table::fmt(w_hyb, 2),
               pcf::text_table::fmt(w_mpi / w_hyb, 2)});
  }
  std::fputs(t.str().c_str(), stdout);
  std::printf("\npaper: hybrid wins by 1.13-1.21x in the mid range, "
              "parity (ratio ~1.0) at 786,432 cores.\n");
  return 0;
}
