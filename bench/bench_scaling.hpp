// Shared printer for the timestep scaling benchmarks (paper Tables 9-11).
#pragma once

#include <string>
#include <vector>

#include "bench_common.hpp"
#include "netsim/predictor.hpp"
#include "util/table.hpp"

namespace pcf::bench {

struct scaling_case {
  std::string label;
  netsim::machine mach;
  std::size_t ny, nz;
  std::vector<std::size_t> nx;   // one per core count (weak) or size 1
  std::vector<long> cores;
  int ranks_per_node = 0;  // 0 = MPI (rank per core), 1 = hybrid
};

/// Print one Table 9/10 block: per-section times with efficiencies
/// relative to the smallest core count. For strong scaling, efficiency is
/// time0 * cores0 / (time * cores); for weak scaling (work ~ nx ~ cores),
/// it is time0 / time.
inline std::vector<netsim::section_times> print_scaling_block(
    const scaling_case& c, bool weak) {
  netsim::predictor p(c.mach);
  std::printf("\n%s:\n", c.label.c_str());
  text_table t({"Cores", "Nx", "Transpose", "Eff", "FFT", "Eff",
                "N-S advance", "Eff", "Total", "Eff"});
  std::vector<netsim::section_times> out;
  netsim::section_times base;
  long base_cores = 0;
  for (std::size_t i = 0; i < c.cores.size(); ++i) {
    netsim::job_config j;
    j.nx = c.nx.size() == 1 ? c.nx[0] : c.nx[i];
    j.ny = c.ny;
    j.nz = c.nz;
    j.cores = c.cores[i];
    j.ranks_per_node = c.ranks_per_node;
    const auto s = p.timestep(j);
    out.push_back(s);
    if (i == 0) {
      base = s;
      base_cores = j.cores;
    }
    auto eff = [&](double t0, double t1) {
      if (weak) return t0 / t1;
      return t0 * static_cast<double>(base_cores) /
             (t1 * static_cast<double>(j.cores));
    };
    t.add_row({std::to_string(j.cores), std::to_string(j.nx),
               text_table::fmt(s.transpose(), 2),
               text_table::fmt_pct(eff(base.transpose(), s.transpose())),
               text_table::fmt(s.fft, 2),
               text_table::fmt_pct(eff(base.fft, s.fft)),
               text_table::fmt(s.advance, 2),
               text_table::fmt_pct(eff(base.advance, s.advance)),
               text_table::fmt(s.total(), 2),
               text_table::fmt_pct(eff(base.total(), s.total()))});
  }
  std::fputs(t.str().c_str(), stdout);
  return out;
}

}  // namespace pcf::bench
