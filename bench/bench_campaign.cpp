// Campaign throughput and residency bench (ISSUE: multi-tenant campaign
// server): a sweep of identical-grid runs time-sliced over one shared
// pool, against the same sweep's solo cost. Reports runs/s, the
// block-pool (and process RSS) peak relative to a single run, eviction
// churn and the shared-cache hit rates. Full runs emit
// BENCH_campaign.json; `--fast` is the ctest perf smoke.
#include <sys/resource.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "campaign/campaign.hpp"
#include "core/simulation.hpp"
#include "util/block_pool.hpp"
#include "util/timer.hpp"
#include "vmpi/vmpi.hpp"

namespace {

using namespace pcf;

long max_rss_kb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;
}

campaign::job_spec sweep_job(int i, long steps, const std::string& cache) {
  campaign::job_spec j;
  j.name = "run" + std::to_string(i);
  j.config.nx = 16;
  j.config.nz = 16;
  j.config.ny = 33;
  j.config.re_tau = (i % 2 != 0) ? 360.0 : 180.0;
  j.config.dt = 1e-4;
  j.config.autotune = true;  // the shared memo serves every run past the
  j.config.tuning_cache = cache;  // first measurement
  j.seed = 1 + static_cast<std::uint64_t>(i);
  j.steps = steps;
  j.priority = i % 2;
  return j;
}

/// One run executed alone with the campaign's per-tenant overrides:
/// the baseline both the throughput and the residency ratios divide by.
double solo_seconds(const campaign::job_spec& j) {
  core::channel_config cc = j.config;
  cc.pa = 1;
  cc.pb = 1;
  cc.pooled_workspace = true;
  double s = 0.0;
  vmpi::run_world(1, [&](vmpi::communicator& world) {
    // A run costs construction + initialize + stepping — the campaign
    // pays all three per tenant, so the baseline must too.
    wall_timer t;
    core::channel_dns dns(cc, world);
    dns.initialize(j.perturbation, j.seed);
    for (long k = 0; k < j.steps; ++k) dns.step();
    s = t.seconds();
  });
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const bool fast = argc > 1 && std::strcmp(argv[1], "--fast") == 0;
  const int runs = fast ? 8 : static_cast<int>(bench::env_long("PCF_BENCH_RUNS", 64));
  const long steps = fast ? 6 : bench::env_long("PCF_BENCH_STEPS", 12);

  const std::string scratch =
      std::filesystem::temp_directory_path().string() + "/pcf_bench_campaign";
  std::filesystem::create_directories(scratch);
  const std::string cache = scratch + "/tuning_cache.tsv";
  std::remove(cache.c_str());

  bench::print_header(
      "campaign", "multi-tenant sweep over one shared pool vs solo runs");

  // Solo baseline: one run's wall time and block footprint.
  const campaign::job_spec probe = sweep_job(0, steps, cache);
  const double solo_s = solo_seconds(probe);
  const std::uint64_t solo_peak_blocks = block_pool::global().stats().blocks_peak;
  const long solo_rss_kb = max_rss_kb();
  std::printf("solo:     %ld steps in %.3fs (%.1f steps/s), peak %llu blk\n",
              steps, solo_s, static_cast<double>(steps) / solo_s,
              static_cast<unsigned long long>(solo_peak_blocks));

  // The campaign: tenant count far above the residency cap.
  campaign::campaign_config cfg;
  cfg.workers = static_cast<int>(bench::env_long("PCF_BENCH_WORKERS", 4));
  cfg.slice_steps = 4;
  cfg.max_resident = 6;
  cfg.spill_dir = scratch;
  cfg.tuning_cache = cache;
  campaign::campaign_server server(cfg);
  for (int i = 0; i < runs; ++i)
    (void)server.enqueue(sweep_job(i, steps, cache));

  const campaign::campaign_report rep = server.run();
  const std::uint64_t campaign_peak_blocks =
      block_pool::global().stats().blocks_peak;
  const long campaign_rss_kb = max_rss_kb();

  long done = 0;
  for (const auto& j : rep.jobs)
    if (j.state == campaign::job_state::done) ++done;
  const double runs_per_s = done / rep.elapsed_s;
  const double speedup = (solo_s * done) / rep.elapsed_s;
  const double peak_ratio =
      static_cast<double>(campaign_peak_blocks) /
      static_cast<double>(solo_peak_blocks > 0 ? solo_peak_blocks : 1);
  const double plan_rate =
      rep.plan_cache_hits + rep.plan_cache_misses > 0
          ? static_cast<double>(rep.plan_cache_hits) /
                static_cast<double>(rep.plan_cache_hits + rep.plan_cache_misses)
          : 0.0;
  const double memo_rate =
      rep.tuning_memo_hits + rep.tuning_memo_misses > 0
          ? static_cast<double>(rep.tuning_memo_hits) /
                static_cast<double>(rep.tuning_memo_hits +
                                    rep.tuning_memo_misses)
          : 0.0;

  std::printf(
      "campaign: %d runs x %ld steps on %d workers in %.3fs — %.2f runs/s "
      "(%.2fx solo-serial)\n",
      runs, steps, cfg.workers, rep.elapsed_s, runs_per_s, speedup);
  std::printf(
      "          evictions %llu readmissions %llu | peak %llu blk = %.2fx "
      "single run (bound 8x) | rss %.1f MiB\n",
      static_cast<unsigned long long>(rep.evictions),
      static_cast<unsigned long long>(rep.readmissions),
      static_cast<unsigned long long>(campaign_peak_blocks), peak_ratio,
      campaign_rss_kb / 1024.0);
  std::printf(
      "          plan cache %.0f%% hit (%llu/%llu) | tuning memo %.0f%% hit "
      "(%llu/%llu) | stranded %llu\n",
      100.0 * plan_rate,
      static_cast<unsigned long long>(rep.plan_cache_hits),
      static_cast<unsigned long long>(rep.plan_cache_hits +
                                      rep.plan_cache_misses),
      100.0 * memo_rate,
      static_cast<unsigned long long>(rep.tuning_memo_hits),
      static_cast<unsigned long long>(rep.tuning_memo_hits +
                                      rep.tuning_memo_misses),
      static_cast<unsigned long long>(rep.stranded_blocks));

  const bool ok = done == runs && peak_ratio < 8.0 && plan_rate > 0.0 &&
                  rep.stranded_blocks == 0;

  if (!fast) {
    std::FILE* f = std::fopen("BENCH_campaign.json", "w");
    if (f != nullptr) {
      std::fprintf(f,
                   "{\n"
                   "  \"bench\": \"campaign\",\n"
                   "  \"grid\": [16, 33, 16],\n"
                   "  \"runs\": %d,\n"
                   "  \"steps_per_run\": %ld,\n"
                   "  \"workers\": %d,\n"
                   "  \"slice_steps\": %d,\n"
                   "  \"max_resident\": %d,\n",
                   runs, steps, cfg.workers, cfg.slice_steps,
                   cfg.max_resident);
      std::fprintf(f,
                   "  \"single_run\": {\"seconds\": %.4f, \"peak_blocks\": "
                   "%llu, \"rss_mb\": %.1f},\n",
                   solo_s, static_cast<unsigned long long>(solo_peak_blocks),
                   solo_rss_kb / 1024.0);
      std::fprintf(
          f,
          "  \"campaign\": {\n"
          "    \"elapsed_s\": %.4f,\n"
          "    \"runs_per_s\": %.3f,\n"
          "    \"speedup_over_solo_serial\": %.3f,\n"
          "    \"total_steps\": %ld,\n"
          "    \"evictions\": %llu,\n"
          "    \"readmissions\": %llu,\n"
          "    \"peak_blocks\": %llu,\n"
          "    \"peak_over_single_run\": %.3f,\n"
          "    \"peak_bound\": 8,\n"
          "    \"within_bound\": %s,\n"
          "    \"rss_mb\": %.1f,\n"
          "    \"plan_cache\": {\"hits\": %llu, \"misses\": %llu, "
          "\"hit_rate\": %.3f},\n"
          "    \"tuning_memo\": {\"hits\": %llu, \"misses\": %llu, "
          "\"hit_rate\": %.3f},\n"
          "    \"stranded_blocks\": %llu\n"
          "  }\n"
          "}\n",
          rep.elapsed_s, runs_per_s, speedup, rep.total_steps,
          static_cast<unsigned long long>(rep.evictions),
          static_cast<unsigned long long>(rep.readmissions),
          static_cast<unsigned long long>(campaign_peak_blocks), peak_ratio,
          peak_ratio < 8.0 ? "true" : "false", campaign_rss_kb / 1024.0,
          static_cast<unsigned long long>(rep.plan_cache_hits),
          static_cast<unsigned long long>(rep.plan_cache_misses), plan_rate,
          static_cast<unsigned long long>(rep.tuning_memo_hits),
          static_cast<unsigned long long>(rep.tuning_memo_misses), memo_rate,
          static_cast<unsigned long long>(rep.stranded_blocks));
      std::fclose(f);
      std::printf("wrote BENCH_campaign.json\n");
    }
  }

  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
