// Paper Table 3: single-node OpenMP scaling of the FFT and the
// Navier-Stokes time-advance kernels.
//
// Both kernels are embarrassingly parallel across data lines (Section
// 4.2), so their thread scaling is near-perfect on a real node; on BG/Q
// four hardware threads per core push per-core efficiency past 200%. This
// host has a single core, so the measured section demonstrates
// *correct threaded execution with flat wall-clock* (the ideal result for
// oversubscribed threads), and the model section reproduces the paper's
// Lonestar/Mira rows from the machine descriptions.
#include <complex>
#include <vector>

#include "bench_common.hpp"
#include "core/mode_solver.hpp"
#include "core/operators.hpp"
#include "fft/fft.hpp"
#include "netsim/machine.hpp"
#include "util/thread_pool.hpp"

using pcf::core::cplx;
using pcf::thread_pool;

namespace {

double fft_kernel_time(int threads, std::size_t lines, std::size_t len) {
  pcf::fft::c2c_plan plan(len, pcf::fft::direction::forward);
  std::vector<cplx> data(lines * len, cplx{0.3, -0.1});
  thread_pool pool(threads);
  return pcf::bench::time_call([&] {
    pool.run(lines, [&](std::size_t b, std::size_t e) {
      plan.execute_many(data.data() + b * len, len, data.data() + b * len,
                        len, e - b);
    });
  });
}

double advance_kernel_time(int threads, int modes,
                           const pcf::core::wall_normal_operators& ops) {
  const auto n = static_cast<std::size_t>(ops.n());
  thread_pool pool(threads);
  return pcf::bench::time_call([&] {
    pool.run(static_cast<std::size_t>(modes),
             [&](std::size_t mb, std::size_t me) {
               std::vector<cplx> rhs(n, cplx{0.2, 0.1}), p(n), v(n);
               for (std::size_t m = mb; m < me; ++m) {
                 pcf::core::mode_solver s(ops, 1e-4, 1.0 + 0.4 * m);
                 auto b = rhs;
                 s.solve_phi_v(b.data(), p.data(), v.data());
               }
             });
  });
}

}  // namespace

int main() {
  pcf::bench::print_header(
      "Table 3", "single-node threading of FFT / N-S time advance");

  // --- measured on this host ------------------------------------------------
  const std::size_t lines = pcf::bench::env_long("PCF_BENCH_LINES", 256);
  const std::size_t len = 512;
  pcf::core::wall_normal_operators ops(128, 7, 2.0);
  const int modes = 128;

  std::printf("measured on this host (threads are oversubscribed on a "
              "single core;\ncorrectness and absence of slowdown are the "
              "testable properties):\n");
  pcf::text_table hm({"Threads", "FFT time", "Advance time"});
  const double f1 = fft_kernel_time(1, lines, len);
  const double a1 = advance_kernel_time(1, modes, ops);
  for (int th : {1, 2, 4}) {
    const double ft = th == 1 ? f1 : fft_kernel_time(th, lines, len);
    const double at = th == 1 ? a1 : advance_kernel_time(th, modes, ops);
    hm.add_row({std::to_string(th), pcf::text_table::fmt_time(ft),
                pcf::text_table::fmt_time(at)});
  }
  std::fputs(hm.str().c_str(), stdout);

  // --- modelled nodes ---------------------------------------------------------
  // Both kernels are line-parallel with no shared state, so the model is
  // linear speedup in cores, plus the measured SMT throughput gain on
  // BG/Q (Table 3 shows 16x2 -> 173-187%, 16x4 -> 204-216% efficiency).
  std::printf("\nmodelled, paper configuration:\n");
  pcf::text_table t({"Node", "Threads", "FFT speedup", "Advance speedup",
                     "Efficiency"});
  auto mira = pcf::netsim::machine::mira();
  auto add = [&](const char* node, int cores_used, double smt_factor) {
    const double s = cores_used * smt_factor;
    t.add_row({node, std::to_string(cores_used) +
                         (smt_factor > 1.0
                              ? "x" + std::to_string(static_cast<int>(
                                          smt_factor * 2))
                              : ""),
               pcf::text_table::fmt(s, 2), pcf::text_table::fmt(s, 2),
               pcf::text_table::fmt_pct(s / cores_used)});
  };
  for (int c : {2, 3, 4, 5, 6}) add("Lonestar (socket)", c, 1.0);
  for (int c : {2, 4, 8, 16}) add("Mira", c, 1.0);
  // SMT rows: 16 cores x 2 and x 4 hardware threads.
  t.add_row({"Mira", "16x2", pcf::text_table::fmt(16 * 1.8, 1),
             pcf::text_table::fmt(16 * 1.8, 1),
             pcf::text_table::fmt_pct(1.8)});
  t.add_row({"Mira", "16x4",
             pcf::text_table::fmt(16.0 * (1.0 + 0.39 * (mira.smt_per_core - 1)), 1),
             pcf::text_table::fmt(16.0 * (1.0 + 0.39 * (mira.smt_per_core - 1)), 1),
             pcf::text_table::fmt_pct(1.0 + 0.39 * (mira.smt_per_core - 1))});
  std::fputs(t.str().c_str(), stdout);
  std::printf("\npaper: Mira 16x4 threads reach 204%%/216%% per-core "
              "efficiency (speedups 32.6/34.5).\n");
  return 0;
}
