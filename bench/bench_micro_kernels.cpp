// Google-benchmark microbenchmarks of the library's hot kernels: 1-D FFTs,
// banded factor/solve, B-spline evaluation, the on-node reorder, and the
// virtual-MPI alltoall. These are the building blocks whose costs the
// netsim models aggregate.
#include <benchmark/benchmark.h>

#include <complex>
#include <vector>

#include "banded/compact.hpp"
#include "banded/gb.hpp"
#include "bspline/bspline.hpp"
#include "fft/fft.hpp"
#include "util/rng.hpp"

using cplx = std::complex<double>;

namespace {

void BM_FFT_C2C(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  pcf::fft::c2c_plan plan(n, pcf::fft::direction::forward);
  std::vector<cplx> in(n, cplx{1.0, -0.5}), out(n);
  for (auto _ : state) {
    plan.execute(in.data(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          static_cast<long>(n));
}
BENCHMARK(BM_FFT_C2C)->Arg(256)->Arg(1024)->Arg(1536)->Arg(4096);

void BM_FFT_R2C(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  pcf::fft::r2c_plan plan(n);
  std::vector<double> in(n, 0.7);
  std::vector<cplx> out(n / 2 + 1);
  for (auto _ : state) {
    plan.execute(in.data(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_FFT_R2C)->Arg(1024)->Arg(1536);

void BM_CompactFactorSolve(benchmark::State& state) {
  const int n = 1024, h = static_cast<int>(state.range(0));
  pcf::banded::compact_banded proto(n, h);
  pcf::rng r(3);
  for (int i = 0; i < n; ++i) {
    const int s = proto.row_start(i);
    double rowsum = 0;
    for (int j = s; j <= s + 2 * h; ++j) {
      if (j == i || j < 0 || j >= n) continue;
      const double v = r.uniform(-1, 1);
      proto.at(i, j) = v;
      rowsum += std::abs(v);
    }
    proto.at(i, i) = rowsum + 1;
  }
  std::vector<cplx> rhs(n, cplx{0.5, -0.5});
  for (auto _ : state) {
    auto M = proto;
    M.factorize();
    auto b = rhs;
    M.solve(b.data());
    benchmark::DoNotOptimize(b.data());
  }
}
BENCHMARK(BM_CompactFactorSolve)->Arg(1)->Arg(3)->Arg(5)->Arg(7);

void BM_GbFactorSolve(benchmark::State& state) {
  const int n = 1024, h = static_cast<int>(state.range(0));
  pcf::banded::gb_matrix<cplx> proto(n, 2 * h, 2 * h);
  pcf::rng r(3);
  for (int i = 0; i < n; ++i) {
    double rowsum = 0;
    for (int j = std::max(0, i - 2 * h); j <= std::min(n - 1, i + 2 * h);
         ++j) {
      if (j == i) continue;
      const double v = r.uniform(-1, 1);
      proto.at(i, j) = v;
      rowsum += std::abs(v);
    }
    proto.at(i, i) = rowsum + 1;
  }
  std::vector<cplx> rhs(n, cplx{0.5, -0.5});
  for (auto _ : state) {
    auto M = proto;
    M.factorize();
    auto b = rhs;
    M.solve(b.data());
    benchmark::DoNotOptimize(b.data());
  }
}
BENCHMARK(BM_GbFactorSolve)->Arg(1)->Arg(3)->Arg(5)->Arg(7);

void BM_BsplineEvalDerivs(benchmark::State& state) {
  auto b = pcf::bspline::basis::channel(64, 2.0, 7);
  double ders[3 * 8];
  double x = -0.9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.eval_derivs(x, 2, ders));
    x += 1e-4;
    if (x > 0.99) x = -0.99;
  }
}
BENCHMARK(BM_BsplineEvalDerivs);

void BM_Reorder(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<cplx> in(n * n * 4, cplx{1, 2}), out(in.size());
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        for (std::size_t k = 0; k < 4; ++k)
          out[(j * 4 + k) * n + i] = in[(i * n + j) * 4 + k];
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<long>(state.iterations()) *
                          static_cast<long>(in.size() * sizeof(cplx) * 2));
}
BENCHMARK(BM_Reorder)->Arg(64)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
