// Paper Tables 8 and 10: weak-scaling benchmarks of one RK3 timestep
// (the streamwise resolution Nx grows with the core count).
#include "bench_scaling.hpp"

using namespace pcf::bench;
using pcf::netsim::machine;

int main() {
  print_header("Tables 8 & 10", "weak scaling of one RK3 timestep");

  std::printf("Table 8 test cases: Nx grows proportionally to cores.\n");

  print_scaling_block(
      {"Mira (MPI: one rank per core)", machine::mira(), 1536, 12288,
       {4608, 9216, 18432, 27648, 36864, 55296},
       {65536, 131072, 262144, 393216, 524288, 786432}, 0},
      true);
  print_scaling_block(
      {"Mira (Hybrid: one rank per node)", machine::mira(), 1536, 12288,
       {4608, 9216, 18432, 27648, 36864, 55296},
       {65536, 131072, 262144, 393216, 524288, 786432}, 1},
      true);
  print_scaling_block({"Lonestar", machine::lonestar(), 384, 1536,
                       {512, 1024, 2048, 4096}, {192, 384, 768, 1536}, 0},
                      true);
  print_scaling_block({"Stampede", machine::stampede(), 512, 4096,
                       {512, 1024, 2048, 4096}, {512, 1024, 2048, 4096}, 0},
                      true);
  print_scaling_block({"Blue Waters", machine::blue_waters(), 1024, 2048,
                       {1024, 2048, 4096, 8192}, {2048, 4096, 8192, 16384}, 0},
                      true);

  std::printf("\npaper shapes reproduced: transpose efficiency settles near "
              "~70%% on Mira; FFT efficiency decays with Nx (cache + "
              "N log N); the N-S advance stays at ~100%%.\n");
  return 0;
}
