// Ablation studies of the paper's design choices, measured on this host:
//
//  A. Implicit-solver caching: refactoring the banded Helmholtz systems
//     every substep (as when dt varies) vs caching them per (mode,
//     substep) at fixed dt.
//  B. Nyquist-mode dropping (Section 4.4): transpose volume and time with
//     the streamwise Nyquist mode carried vs dropped.
//  C. 3/2-rule dealiasing (Section 2.1): cost of the fused pad/truncate
//     relative to an aliased (unpadded) transform pass.
#include <mutex>

#include "bench_common.hpp"
#include "core/simulation.hpp"
#include "pencil/pencil.hpp"
#include "util/aligned.hpp"

using namespace pcf::pencil;

namespace {

double dns_step_time(bool cache, int steps) {
  pcf::core::channel_config cfg;
  cfg.nx = 24;
  cfg.nz = 24;
  cfg.ny = 33;
  cfg.dt = 1e-4;
  cfg.cache_solvers = cache;
  double out = 0;
  std::mutex m;
  pcf::vmpi::run_world(1, [&](pcf::vmpi::communicator& world) {
    pcf::core::channel_dns dns(cfg, world);
    dns.initialize(0.1);
    dns.step();  // warm up / populate cache
    pcf::wall_timer t;
    for (int s = 0; s < steps; ++s) dns.step();
    std::lock_guard<std::mutex> lk(m);
    out = t.seconds() / steps;
  });
  return out;
}

struct pfft_result {
  double seconds;
  std::size_t workspace;
};

pfft_result pfft_time(const kernel_config& cfg, const grid& g, int reps) {
  pfft_result out{};
  std::mutex m;
  pcf::vmpi::run_world(1, [&](pcf::vmpi::communicator& world) {
    pcf::vmpi::cart2d cart(world, 1, 1);
    parallel_fft pf(g, cart, cfg);
    const auto& d = pf.dec();
    pcf::aligned_buffer<cplx> spec(d.y_pencil_elems(), cplx{0.1, 0.2});
    pcf::aligned_buffer<double> phys(d.x_pencil_real_elems());
    pf.to_physical(spec.data(), phys.data());
    pcf::wall_timer t;
    for (int r = 0; r < reps; ++r) {
      pf.to_physical(spec.data(), phys.data());
      pf.to_spectral(phys.data(), spec.data());
    }
    std::lock_guard<std::mutex> lk(m);
    out = {t.seconds() / reps, pf.workspace_bytes()};
  });
  return out;
}

}  // namespace

int main() {
  pcf::bench::print_header("Ablations", "design-choice studies (measured)");
  const int steps = static_cast<int>(pcf::bench::env_long("PCF_BENCH_STEPS", 10));
  const int reps = static_cast<int>(pcf::bench::env_long("PCF_BENCH_REPS", 10));

  // A. Solver caching.
  const double t_cache = dns_step_time(true, steps);
  const double t_fresh = dns_step_time(false, steps);
  std::printf("A. implicit-solver caching (24x33x24 DNS step):\n");
  pcf::text_table ta({"Variant", "Time/step", "Speedup"});
  ta.add_row({"refactor every substep", pcf::text_table::fmt_time(t_fresh),
              "1.00x"});
  ta.add_row({"cached factorizations", pcf::text_table::fmt_time(t_cache),
              pcf::text_table::fmt(t_fresh / t_cache, 2) + "x"});
  std::fputs(ta.str().c_str(), stdout);

  // B. Nyquist dropping (no dealiasing, as in the Table 6 protocol).
  grid g{64, 48, 64};
  kernel_config keep;
  keep.dealias = false;
  keep.drop_nyquist = false;
  kernel_config drop = keep;
  drop.drop_nyquist = true;
  const auto rk = pfft_time(keep, g, reps);
  const auto rd = pfft_time(drop, g, reps);
  std::printf("\nB. streamwise Nyquist mode (grid %zu x %zu x %zu):\n", g.nx,
              g.ny, g.nz);
  pcf::text_table tb({"Variant", "Round trip", "Workspace", "Modes carried"});
  tb.add_row({"carried (P3DFFT behavior)", pcf::text_table::fmt_time(rk.seconds),
              pcf::text_table::fmt(rk.workspace / 1024.0, 1) + " KiB",
              std::to_string(g.nx / 2 + 1)});
  tb.add_row({"dropped (customized)", pcf::text_table::fmt_time(rd.seconds),
              pcf::text_table::fmt(rd.workspace / 1024.0, 1) + " KiB",
              std::to_string(g.nx / 2)});
  std::fputs(tb.str().c_str(), stdout);

  // C. Dealiasing cost.
  kernel_config alias;
  alias.dealias = false;
  kernel_config dealias;  // default: 3/2 rule on
  const auto ra = pfft_time(alias, g, reps);
  const auto rda = pfft_time(dealias, g, reps);
  std::printf("\nC. 3/2-rule dealiasing (fused pad/truncate):\n");
  pcf::text_table tc({"Variant", "Round trip", "Physical grid"});
  tc.add_row({"aliased (no padding)", pcf::text_table::fmt_time(ra.seconds),
              std::to_string(g.nx) + " x " + std::to_string(g.nz)});
  tc.add_row({"dealiased (3/2 rule)", pcf::text_table::fmt_time(rda.seconds),
              std::to_string(3 * g.nx / 2) + " x " +
                  std::to_string(3 * g.nz / 2)});
  std::fputs(tc.str().c_str(), stdout);
  std::printf("\nthe 2.25x larger dealiased grid costs ~2-3x per pass — the "
              "price of alias-free nonlinear terms\n(paper Section 2.1: "
              "spectral accuracy is worth it).\n");

  // D. Pencil vs slab decomposition (paper Section 2.2): a slab (1-D)
  // decomposition is the degenerate process grid P x 1; its rank count is
  // capped by a single grid dimension, while the pencil grid keeps every
  // rank busy. Measure the per-rank load imbalance both ways.
  {
    grid gd{16, 17, 16};  // nxh = 8 spectral modes in x
    const int ranks = 16;
    auto imbalance = [&](int pa, int pb) {
      double mx = 0, avg = 0;
      for (int a = 0; a < pa; ++a)
        for (int b = 0; b < pb; ++b) {
          decomp d(gd, kernel_config{}, pa, pb, a, b);
          const double elems = static_cast<double>(d.y_pencil_elems());
          mx = std::max(mx, elems);
          avg += elems;
        }
      avg /= (pa * pb);
      return mx / avg;
    };
    std::printf("\nD. pencil vs slab decomposition (grid %zu x %zu x %zu, "
                "%d ranks):\n", gd.nx, gd.ny, gd.nz, ranks);
    pcf::text_table td({"Decomposition", "Grid", "Max/avg rank load"});
    td.add_row({"slab (x only)", "16 x 1",
                pcf::text_table::fmt(imbalance(16, 1), 2) +
                    "x  (8 modes over 16 ranks: half idle)"});
    td.add_row({"slab (z only)", "1 x 16",
                pcf::text_table::fmt(imbalance(1, 16), 2) + "x"});
    td.add_row({"pencil", "4 x 4",
                pcf::text_table::fmt(imbalance(4, 4), 2) + "x"});
    std::fputs(td.str().c_str(), stdout);
    std::printf("paper Section 2.2: the pencil decomposition is chosen for "
                "its flexibility in rank counts —\na slab decomposition "
                "cannot exceed one grid dimension's worth of ranks.\n");
  }

  // E. Exchange strategy (paper Section 4.3): FFTW's transpose planner
  // picks between MPI_Alltoall and pairwise MPI_Sendrecv; here both run
  // on the virtual-MPI runtime at 8 ranks, plus the auto planner's pick.
  {
    grid ge{32, 16, 32};
    auto cycle = [&](exchange_strategy strat, exchange_strategy* picked) {
      double out = 0;
      std::mutex m;
      pcf::vmpi::run_world(8, [&](pcf::vmpi::communicator& world) {
        pcf::vmpi::cart2d cart(world, 4, 2);
        kernel_config cfg;
        cfg.strategy = strat;
        parallel_fft pf(ge, cart, cfg);
        const auto& d = pf.dec();
        pcf::aligned_buffer<cplx> spec(d.y_pencil_elems(), cplx{0.1, 0.0});
        pcf::aligned_buffer<double> phys(d.x_pencil_real_elems());
        pf.to_physical(spec.data(), phys.data());
        pcf::wall_timer t;
        for (int r = 0; r < reps; ++r) {
          pf.to_physical(spec.data(), phys.data());
          pf.to_spectral(phys.data(), spec.data());
        }
        if (world.rank() == 0) {
          std::lock_guard<std::mutex> lk(m);
          out = t.seconds() / reps;
          if (picked) *picked = pf.strategy_a();
        }
      });
      return out;
    };
    const double ta = cycle(exchange_strategy::alltoall, nullptr);
    const double tp = cycle(exchange_strategy::pairwise, nullptr);
    exchange_strategy pick{};
    const double tu = cycle(exchange_strategy::auto_plan, &pick);
    std::printf("\nE. transpose exchange strategy (8 virtual ranks, grid "
                "%zu x %zu x %zu):\n", ge.nx, ge.ny, ge.nz);
    pcf::text_table te({"Strategy", "Round trip"});
    te.add_row({"alltoall", pcf::text_table::fmt_time(ta)});
    te.add_row({"pairwise sendrecv", pcf::text_table::fmt_time(tp)});
    te.add_row({std::string("auto plan (picked ") +
                    (pick == exchange_strategy::pairwise ? "pairwise"
                                                         : "alltoall") +
                    " for CommA)",
                pcf::text_table::fmt_time(tu)});
    std::fputs(te.str().c_str(), stdout);
    std::printf("paper Section 4.3: FFTW mostly picks MPI_alltoall for "
                "CommB and either for CommA.\n");
  }
  return 0;
}
