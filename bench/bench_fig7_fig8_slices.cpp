// Paper Figures 7 and 8: instantaneous streamwise velocity and spanwise
// vorticity visualizations.
//
// Runs a short DNS and writes x-y slices of u and omega_z as PPM images,
// printing summary statistics of each field (the quantitative counterpart
// of "multi-scale structure": the fluctuation range and the near-wall
// vorticity sheet).
#include <algorithm>
#include <mutex>
#include <vector>

#include "bench_common.hpp"
#include "core/simulation.hpp"
#include "io/ppm.hpp"

int main() {
  pcf::bench::print_header(
      "Figures 7 & 8", "instantaneous u and omega_z slices (PPM output)");

  pcf::core::channel_config cfg;
  cfg.nx = 32;
  cfg.nz = 16;
  cfg.ny = 33;
  cfg.re_tau = 180.0;
  cfg.dt = 2e-4;
  const long steps = pcf::bench::env_long("PCF_BENCH_STEPS", 150);

  std::mutex m;
  pcf::vmpi::run_world(1, [&](pcf::vmpi::communicator& world) {
    pcf::core::channel_dns dns(cfg, world);
    dns.initialize(0.15);
    for (long s = 0; s < steps; ++s) dns.step();

    std::vector<double> u, v, w, wz;
    dns.physical_velocity(u, v, w);
    dns.physical_vorticity_z(wz);
    const auto& d = dns.dec();
    const std::size_t nx = d.nxf, ny = d.yb.count;

    std::lock_guard<std::mutex> lk(m);
    auto slice = [&](const std::vector<double>& f) {
      std::vector<double> s2(nx * ny);
      for (std::size_t y = 0; y < ny; ++y)
        for (std::size_t x = 0; x < nx; ++x)
          s2[(ny - 1 - y) * nx + x] = f[(0 * ny + y) * nx + x];
      return s2;
    };
    auto su = slice(u), sw = slice(wz);
    auto stats = [](const std::vector<double>& f) {
      double lo = f[0], hi = f[0], sum = 0;
      for (double x : f) {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
        sum += x;
      }
      return std::tuple{lo, hi, sum / static_cast<double>(f.size())};
    };
    auto [ulo, uhi, umean] = stats(su);
    auto [wlo, whi, wmean] = stats(sw);
    pcf::io::write_ppm("fig7_streamwise_velocity.ppm", su, nx, ny, ulo, uhi);
    pcf::io::write_ppm("fig8_spanwise_vorticity.ppm", sw, nx, ny, wlo, whi);

    std::printf("fig7_streamwise_velocity.ppm: %zu x %zu, u in [%.2f, %.2f], "
                "mean %.2f\n", nx, ny, ulo, uhi, umean);
    std::printf("fig8_spanwise_vorticity.ppm:  %zu x %zu, wz in [%.1f, %.1f], "
                "mean %.1f\n", nx, ny, wlo, whi, wmean);
    // Figure 8's physics: the spanwise vorticity concentrates at the walls
    // (the mean shear dU/dy ~ Re_tau there); report the wall/center ratio.
    double wall = 0.0, center = 0.0;
    for (std::size_t x = 0; x < nx; ++x) {
      wall += std::abs(sw[(ny - 1) * nx + x]);  // bottom row = lower wall
      center += std::abs(sw[(ny / 2) * nx + x]);
    }
    std::printf("mean |omega_z|: wall %.1f vs centerline %.2f (ratio %.0fx) "
                "— the near-wall vorticity sheet of Figure 8.\n",
                wall / nx, center / nx, wall / std::max(center, 1e-12));
  });
  return 0;
}
