// Paper Tables 7 and 9: strong-scaling benchmarks of one full RK3
// timestep on the four modelled systems, plus a measured single-rank
// breakdown of our actual DNS timestep as the on-host anchor.
#include <cmath>
#include <mutex>

#include "bench_scaling.hpp"
#include "core/simulation.hpp"

using namespace pcf::bench;
using pcf::netsim::machine;

namespace {

void measured_anchor() {
  std::printf("\nmeasured on this host (real DNS, one rank, grid 32 x 33 x "
              "32, 5 steps):\n");
  pcf::core::channel_config cfg;
  cfg.nx = 32;
  cfg.nz = 32;
  cfg.ny = 33;
  cfg.dt = 1e-4;
  const long steps = env_long("PCF_BENCH_STEPS", 5);
  std::mutex m;
  pcf::vmpi::run_world(1, [&](pcf::vmpi::communicator& world) {
    pcf::core::channel_dns dns(cfg, world);
    dns.initialize(0.1);
    dns.step();  // warm up
    dns.reset_timings();
    for (long s = 0; s < steps; ++s) dns.step();
    const auto t = dns.timings();
    std::lock_guard<std::mutex> lk(m);
    pcf::text_table ht({"Transpose", "FFT", "N-S advance", "Total"});
    ht.add_row({pcf::text_table::fmt_time(t.transpose / steps),
                pcf::text_table::fmt_time(t.fft / steps),
                pcf::text_table::fmt_time(t.advance / steps),
                pcf::text_table::fmt_time(t.total / steps)});
    std::fputs(ht.str().c_str(), stdout);
  });
}

}  // namespace

int main() {
  print_header("Tables 7 & 9", "strong scaling of one RK3 timestep");

  std::printf("Table 7 test cases (grid, degrees of freedom):\n");
  pcf::text_table t7({"System", "Nx", "Ny", "Nz", "DoF"});
  auto dof = [](double nx, double ny, double nz) {
    return pcf::text_table::fmt(3.0 * nx / 2 * ny * nz / 1e9, 2) + "e9";
  };
  t7.add_row({"Mira", "18432", "1536", "12288", dof(18432, 1536, 12288)});
  t7.add_row({"Lonestar", "1024", "384", "1536", dof(1024, 384, 1536)});
  t7.add_row({"Stampede", "2048", "512", "4096", dof(2048, 512, 4096)});
  t7.add_row({"Blue Waters", "2048", "1024", "2048", dof(2048, 1024, 2048)});
  std::fputs(t7.str().c_str(), stdout);

  print_scaling_block({"Mira (MPI: one rank per core)", machine::mira(),
                       1536, 12288, {18432},
                       {131072, 262144, 393216, 524288, 786432}, 0},
                      false);
  print_scaling_block({"Mira (Hybrid: one rank per node)", machine::mira(),
                       1536, 12288, {18432},
                       {65536, 131072, 262144, 393216, 524288, 786432}, 1},
                      false);
  print_scaling_block({"Lonestar", machine::lonestar(), 384, 1536, {1024},
                       {192, 384, 768, 1536}, 0},
                      false);
  print_scaling_block({"Stampede", machine::stampede(), 512, 4096, {2048},
                       {512, 1024, 2048, 4096}, 0},
                      false);
  print_scaling_block({"Blue Waters", machine::blue_waters(), 1024, 2048,
                       {2048}, {2048, 4096, 8192, 16384}, 0},
                      false);

  measured_anchor();

  // Section 5.3's headline: the aggregate compute rate of the full-machine
  // run. Flops per step from the algorithmic counts, time from the model.
  {
    pcf::netsim::predictor p(machine::mira());
    pcf::netsim::job_config j;
    j.nx = 18432;
    j.ny = 1536;
    j.nz = 12288;
    j.cores = 786432;
    const auto s = p.timestep(j);
    const double nxh = 0.5 * j.nx, nxf = 1.5 * j.nx, nzf = 1.5 * j.nz;
    const double ny = static_cast<double>(j.ny);
    const double fft_flops =
        24.0 * (nxh * ny * 5.0 * nzf * std::log2(nzf) +
                nzf * ny * 2.5 * nxf * std::log2(nxf));
    const double adv_flops = 3.0 * 2000.0 * nxh * j.nz * ny;
    const double tflops = (fft_flops + adv_flops) / s.total() / 1e12;
    const double peak = 786432.0 * 12.8e9 / 1e12;
    std::printf("\nfull-machine aggregate (786,432 cores, strong-scaling "
                "grid):\n  %.0f Tflops = %.1f%% of the %.0f Tflops peak "
                "(paper: 271 Tflops, 2.7%%)\n  on-node-only rate: %.0f "
                "Tflops = %.1f%% of peak (paper: 906 Tflops, ~9%%)\n",
                tflops, 100.0 * tflops / peak, peak,
                (fft_flops + adv_flops) / (s.fft + s.advance) / 1e12,
                100.0 * (fft_flops + adv_flops) /
                    ((s.fft + s.advance) * 1e12) / peak);
  }

  std::printf("\npaper shapes reproduced: Mira MPI ~97%% total efficiency "
              "at 786K cores; Mira hybrid degrades to ~80%%; Blue Waters "
              "transpose collapses to ~23-28%%.\n");
  return 0;
}
