// Workspace arena v2 benchmark: the pooled (block-leasing) lanes against
// the owned slabs they replaced, emitting BENCH_workspace.json so later
// changes have a perf trajectory to compare against.
//
// Four sections:
//   lease     — block_pool acquire/release latency by lease size, with the
//               per-thread cache on (hit path, no pool mutex) and off
//               (bitmap first-fit path), plus the pool's own lease_ns
//               telemetry for cross-checking.
//   advance   — seconds per quickstart step with owned lanes vs
//               pool-leased lanes. The pool only changes where the slabs
//               live, so the pooled wall must stay within 2% of owned.
//   cycle     — suspend()/resume() round-trip latency: every leased block
//               released back to the pool and the four workspace holders
//               re-bound onto (possibly different) blocks.
//   interleave— N small-grid simulations sharing the global pool,
//               suspended whenever not stepping, swept through M
//               suspend/resume cycles. With at most one resumed at a
//               time the pool's block high-water must stay far below
//               N x one simulation's footprint — the multi-tenant memory
//               win the pool exists for.
//
// Usage: bench_workspace [--fast]
//   --fast: few steps / sims / cycles — the ctest `perf`-label smoke
//   variant. Env: PCF_BENCH_REPS overrides the advance step count.
#include <cstdio>
#include <cstring>
#include <mutex>
#include <vector>

#include "bench_common.hpp"
#include "core/simulation.hpp"
#include "util/block_pool.hpp"
#include "vmpi/vmpi.hpp"

namespace {

using pcf::block_pool;
using pcf::block_pool_config;
using pcf::core::channel_config;
using pcf::core::channel_dns;
using pcf::vmpi::communicator;
using pcf::vmpi::run_world;

channel_config quickstart_config(bool pooled) {
  channel_config cfg;
  cfg.nx = 16;
  cfg.nz = 16;
  cfg.ny = 33;
  cfg.re_tau = 180.0;
  cfg.dt = 1e-4;
  cfg.pooled_workspace = pooled;
  return cfg;
}

// --- lease latency ----------------------------------------------------------

struct lease_point {
  std::size_t bytes = 0;
  double cached_ns = 0.0;    // acquire+release, thread cache on (hit path)
  double uncached_ns = 0.0;  // acquire+release, bitmap path
  double pool_lease_ns = 0.0;  // the pool's own lease_ns / leases telemetry
};

lease_point measure_lease(std::size_t bytes) {
  lease_point out;
  out.bytes = bytes;
  block_pool_config cfg;
  cfg.hugepages = false;
  {
    cfg.thread_cache_blocks = 64;
    block_pool pool(cfg);
    auto warm = pool.acquire(bytes);  // maps the segment once
    pool.release(warm);
    out.cached_ns = 1e9 * pcf::bench::time_call([&] {
      auto l = pool.acquire(bytes);
      l.data()[0] = 1;  // keep the lease from being optimized away
      pool.release(l);
    });
  }
  {
    cfg.thread_cache_blocks = 0;
    block_pool pool(cfg);
    auto warm = pool.acquire(bytes);
    pool.release(warm);
    out.uncached_ns = 1e9 * pcf::bench::time_call([&] {
      auto l = pool.acquire(bytes);
      l.data()[0] = 1;
      pool.release(l);
    });
    const auto st = pool.stats();
    if (st.leases > 0)
      out.pool_lease_ns =
          static_cast<double>(st.lease_ns) / static_cast<double>(st.leases);
  }
  return out;
}

// --- advance wall: owned vs pooled -----------------------------------------

double time_advance(bool pooled, int steps, int trials) {
  std::mutex m;
  double best = 0.0;
  run_world(1, [&](communicator& world) {
    channel_dns dns(quickstart_config(pooled), world);
    dns.initialize(0.1, 1);
    for (int s = 0; s < 3; ++s) dns.step();  // warm: solver caches, FFT plans
    double local = 0.0;
    for (int t = 0; t < trials; ++t) {
      pcf::wall_timer w;
      for (int s = 0; s < steps; ++s) dns.step();
      const double per = w.seconds() / steps;
      if (t == 0 || per < local) local = per;
    }
    std::lock_guard<std::mutex> lk(m);
    best = local;
  });
  return best;
}

// --- suspend/resume round trip ---------------------------------------------

struct cycle_result {
  double suspend_us = 0.0;
  double resume_us = 0.0;
  std::uint64_t cache_hits = 0;  // pool hits over the measured cycles
};

cycle_result measure_cycle(int cycles) {
  std::mutex m;
  cycle_result out;
  run_world(1, [&](communicator& world) {
    channel_dns dns(quickstart_config(true), world);
    dns.initialize(0.1, 1);
    dns.step();  // populate solver caches before the first release
    dns.suspend();
    dns.resume();  // one full round trip before timing
    const auto hits0 = block_pool::global().stats().cache_hits;
    double sus = 0.0, res = 0.0;
    for (int c = 0; c < cycles; ++c) {
      pcf::wall_timer t1;
      dns.suspend();
      sus += t1.seconds();
      pcf::wall_timer t2;
      dns.resume();
      res += t2.seconds();
    }
    std::lock_guard<std::mutex> lk(m);
    out.suspend_us = 1e6 * sus / cycles;
    out.resume_us = 1e6 * res / cycles;
    out.cache_hits = block_pool::global().stats().cache_hits - hits0;
  });
  return out;
}

// --- interleaved multi-simulation sweep ------------------------------------

struct interleave_result {
  int sims = 0;
  int cycles = 0;
  std::uint64_t footprint_blocks = 0;  // one simulation's workspace lease
  std::uint64_t peak_blocks = 0;       // pool high-water over the sweep
  double ratio = 0.0;                  // peak / footprint (bound: < sims)
};

interleave_result measure_interleave(int sims, int cycles) {
  std::mutex m;
  interleave_result out;
  out.sims = sims;
  out.cycles = cycles;
  run_world(1, [&](communicator& world) {
    auto& pool = block_pool::global();
    const auto leased0 = pool.stats().blocks_leased;
    std::vector<channel_dns*> dns;
    for (int i = 0; i < sims; ++i) {
      dns.push_back(new channel_dns(quickstart_config(true), world));
      dns.back()->initialize(0.1, 1 + static_cast<std::uint64_t>(i));
      dns.back()->step();  // realistic: solver caches exist before parking
      if (i == 0)
        out.footprint_blocks = pool.stats().blocks_leased - leased0;
      dns.back()->suspend();  // construct-then-suspend: blocks recycle
    }
    const auto peak0 = pool.stats().blocks_peak;
    for (int c = 0; c < cycles; ++c) {
      for (int i = 0; i < sims; ++i) {
        dns[i]->resume();
        if (c % 8 == 0) dns[i]->step();  // periodic real work while resumed
        dns[i]->suspend();
      }
    }
    std::lock_guard<std::mutex> lk(m);
    // The high-water over the sweep itself; construction transients (all
    // sims live before the first suspend on a pristine pool) are peak0.
    out.peak_blocks = std::max(pool.stats().blocks_peak, peak0) -
                      (leased0 > 0 ? leased0 : 0);
    if (out.footprint_blocks > 0)
      out.ratio = static_cast<double>(out.peak_blocks) /
                  static_cast<double>(out.footprint_blocks);
    for (auto* d : dns) delete d;
  });
  return out;
}

// --- JSON -------------------------------------------------------------------

void write_json(const char* path, const std::vector<lease_point>& lease,
                double owned_s, double pooled_s, const cycle_result& cyc,
                int cyc_cycles, const interleave_result& il) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::perror(path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"workspace\",\n");
  std::fprintf(f, "  \"grid\": [16, 33, 16],\n");
  std::fprintf(f, "  \"lease_latency\": [\n");
  for (std::size_t i = 0; i < lease.size(); ++i) {
    const auto& p = lease[i];
    std::fprintf(f,
                 "    {\"bytes\": %zu, \"cached_ns\": %.1f, "
                 "\"uncached_ns\": %.1f, \"pool_lease_ns\": %.1f}%s\n",
                 p.bytes, p.cached_ns, p.uncached_ns, p.pool_lease_ns,
                 i + 1 < lease.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"advance\": {\n");
  std::fprintf(f, "    \"owned_s_per_step\": %.6e,\n", owned_s);
  std::fprintf(f, "    \"pooled_s_per_step\": %.6e,\n", pooled_s);
  std::fprintf(f, "    \"pooled_over_owned\": %.4f,\n", pooled_s / owned_s);
  std::fprintf(f, "    \"bound\": 1.02,\n");
  std::fprintf(f, "    \"within_bound\": %s\n",
               pooled_s / owned_s <= 1.02 ? "true" : "false");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"suspend_resume\": {\n");
  std::fprintf(f, "    \"cycles\": %d,\n", cyc_cycles);
  std::fprintf(f, "    \"suspend_us\": %.2f,\n", cyc.suspend_us);
  std::fprintf(f, "    \"resume_us\": %.2f,\n", cyc.resume_us);
  std::fprintf(f, "    \"pool_cache_hits\": %llu\n",
               static_cast<unsigned long long>(cyc.cache_hits));
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"interleave\": {\n");
  std::fprintf(f, "    \"sims\": %d,\n", il.sims);
  std::fprintf(f, "    \"cycles\": %d,\n", il.cycles);
  std::fprintf(f, "    \"footprint_blocks\": %llu,\n",
               static_cast<unsigned long long>(il.footprint_blocks));
  std::fprintf(f, "    \"peak_blocks\": %llu,\n",
               static_cast<unsigned long long>(il.peak_blocks));
  std::fprintf(f, "    \"peak_over_footprint\": %.3f,\n", il.ratio);
  std::fprintf(f, "    \"bound\": %d,\n", il.sims);
  std::fprintf(f, "    \"within_bound\": %s\n",
               il.ratio < static_cast<double>(il.sims) ? "true" : "false");
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const bool fast = argc > 1 && std::strcmp(argv[1], "--fast") == 0;
  const int steps = static_cast<int>(
      pcf::bench::env_long("PCF_BENCH_REPS", fast ? 8 : 40));
  const int trials = fast ? 2 : 4;
  const int cyc_cycles = fast ? 16 : 64;
  const int il_sims = fast ? 3 : 8;
  const int il_cycles = fast ? 8 : 64;

  pcf::bench::print_header(
      "BENCH workspace",
      "block-pool leases: latency, advance parity, suspend/resume sweep");

  std::vector<lease_point> lease;
  for (std::size_t bytes :
       {std::size_t{1} << 16, std::size_t{1} << 20, std::size_t{1} << 23})
    lease.push_back(measure_lease(bytes));
  for (const auto& p : lease)
    std::printf(
        "lease %8zu B: cached %7.1f ns  uncached %7.1f ns  (pool telemetry "
        "%.1f ns)\n",
        p.bytes, p.cached_ns, p.uncached_ns, p.pool_lease_ns);

  const double owned_s = time_advance(false, steps, trials);
  const double pooled_s = time_advance(true, steps, trials);
  std::printf(
      "advance (%d steps): owned %.3f ms/step, pooled %.3f ms/step, ratio "
      "%.4f (bound 1.02)\n",
      steps, 1e3 * owned_s, 1e3 * pooled_s, pooled_s / owned_s);

  const cycle_result cyc = measure_cycle(cyc_cycles);
  std::printf(
      "suspend/resume (%d cycles): suspend %.1f us, resume %.1f us, %llu "
      "pool cache hits\n",
      cyc_cycles, cyc.suspend_us, cyc.resume_us,
      static_cast<unsigned long long>(cyc.cache_hits));

  const interleave_result il = measure_interleave(il_sims, il_cycles);
  std::printf(
      "interleave (%d sims x %d cycles): footprint %llu blocks, peak %llu "
      "blocks, ratio %.3f (bound < %d)\n",
      il.sims, il.cycles,
      static_cast<unsigned long long>(il.footprint_blocks),
      static_cast<unsigned long long>(il.peak_blocks), il.ratio, il.sims);

  write_json("BENCH_workspace.json", lease, owned_s, pooled_s, cyc,
             cyc_cycles, il);
  std::printf("wrote BENCH_workspace.json\n");
  return 0;
}
