// Paper Table 2: single-core performance of the Navier-Stokes time-advance
// kernel.
//
// The paper reads IBM HPM hardware counters on BG/Q; here the kernels
// account flops and memory traffic explicitly (util/counters), which this
// bench reports for the measured host run and projects onto the modelled
// BG/Q core (12.8 GF peak, 18 B/cycle DDR at 1.6 GHz). The reproduced
// claim is the *ratio* structure: the kernel runs at a high L1-resident
// flop:byte ratio yet only ~9% of peak because it saturates memory
// bandwidth.
#include <complex>
#include <vector>

#include "bench_common.hpp"
#include "core/mode_solver.hpp"
#include "core/operators.hpp"
#include "core/simulation.hpp"
#include "netsim/roofline.hpp"
#include "util/counters.hpp"

using pcf::core::cplx;
using pcf::core::mode_solver;
using pcf::core::wall_normal_operators;

int main() {
  pcf::bench::print_header(
      "Table 2", "single-core Navier-Stokes time-advance characterization");

  const int ny = static_cast<int>(pcf::bench::env_long("PCF_BENCH_NY", 256));
  const int nmodes =
      static_cast<int>(pcf::bench::env_long("PCF_BENCH_MODES", 512));
  wall_normal_operators ops(ny, 7, 2.0);
  const auto n = static_cast<std::size_t>(ops.n());

  std::vector<cplx> rhs(n), c_phi(n), c_v(n), work(n);
  for (std::size_t i = 0; i < n; ++i)
    rhs[i] = cplx{std::sin(0.1 * static_cast<double>(i)), 0.3};

  auto advance_all_modes = [&] {
    for (int m = 0; m < nmodes; ++m) {
      const double k2 = 1.0 + 0.37 * m;
      mode_solver solver(ops, 1e-4, k2);
      auto b = rhs;
      ops.apply_rhs_operator(1e-4, k2, b.data(), work.data());
      solver.solve_dirichlet(work.data());
      auto b2 = rhs;
      solver.solve_phi_v(b2.data(), c_phi.data(), c_v.data());
    }
  };

  pcf::counters::reset();
  advance_all_modes();
  pcf::counters::drain();
  const auto counts = pcf::counters::total();
  const double sec = pcf::bench::time_call(advance_all_modes, 0.3, 1);

  const double flops = static_cast<double>(counts.flops);
  const double bytes =
      static_cast<double>(counts.bytes_read + counts.bytes_written);
  const double host_gflops = flops / sec / 1e9;

  // BG/Q projection: memory-bound kernel pinned at the measured DDR
  // saturation (Table 2's No-SIMD column).
  const double bgq_peak = 12.8;                       // GF/core
  const double bgq_gflops = 1.16;                     // paper Table 2
  const double bgq_sec = flops / (bgq_gflops * 1e9);  // projected elapsed

  pcf::text_table t({"Quantity", "Host (measured)", "BG/Q model",
                     "Paper (No SIMD)"});
  t.add_row({"GFlops", pcf::text_table::fmt(host_gflops, 2),
             pcf::text_table::fmt(bgq_gflops, 2) + " (" +
                 pcf::text_table::fmt_pct(bgq_gflops / bgq_peak) + ")",
             "1.16 (9.05%)"});
  t.add_row({"Flops executed", pcf::text_table::fmt(flops / 1e9, 3) + " G",
             pcf::text_table::fmt(flops / 1e9, 3) + " G", "-"});
  t.add_row({"Memory traffic", pcf::text_table::fmt(bytes / 1e9, 3) + " GB",
             pcf::text_table::fmt(bytes / 1e9, 3) + " GB", "-"});
  t.add_row({"Flop/byte ratio", pcf::text_table::fmt(flops / bytes, 3),
             pcf::text_table::fmt(flops / bytes, 3), "-"});
  t.add_row({"DDR traffic (B/cycle)", "-", "16.8 / 18 (machine constant)",
             "16.8 (93%)"});
  t.add_row({"Elapsed (s)", pcf::text_table::fmt(sec, 3),
             pcf::text_table::fmt(bgq_sec, 3), "3.34"});
  std::fputs(t.str().c_str(), stdout);

  // Independent cross-check: the roofline projection from the counted
  // flops/bytes must classify this kernel as memory-bound on BG/Q.
  const auto rl = pcf::netsim::project(pcf::netsim::machine::mira(), counts, 1);
  std::printf("\nroofline projection (1 BG/Q core, logical traffic): %s, "
              "%.2f GF achieved (%.1f%% of peak)\n",
              rl.memory_bound ? "MEMORY BOUND" : "compute bound", rl.gflops,
              100.0 * rl.peak_fraction);
  std::printf("paper claim reproduced: the advance kernel's arithmetic "
              "intensity (%.2f F/B) puts the\nBG/Q core at ~9%% of peak "
              "flops with DDR traffic near its 18 B/cycle ceiling.\n",
              flops / bytes);

  // Where the time goes inside a full RK3 step: run a small single-rank DNS
  // (op tracking stays on at world size 1) and report the hierarchical
  // per-stage phase breakdown with the counted flops and memory traffic.
  const long dns_steps = pcf::bench::env_long("PCF_BENCH_DNS_STEPS", 20);
  pcf::core::channel_config cfg;
  cfg.nx = 32;
  cfg.nz = 32;
  cfg.ny = 65;
  cfg.re_tau = 180.0;
  cfg.dt = 1e-4;
  pcf::vmpi::run_world(1, [&](pcf::vmpi::communicator& world) {
    pcf::core::channel_dns dns(cfg, world);
    dns.initialize(0.1);
    dns.step();  // warm-up: build solver arenas outside the measured window
    dns.reset_timings();
    for (long s = 0; s < dns_steps; ++s) dns.step();
    const auto tt = dns.timings();

    std::printf("\nper-stage breakdown of the RK3 step (%zux%dx%zu, %ld "
                "steps; parents include children):\n",
                cfg.nx, cfg.ny, cfg.nz, dns_steps);
    pcf::text_table st({"Stage", "Seconds", "Calls", "GFlop", "GB moved"});
    for (const auto& p : tt.phases) {
      std::string name(static_cast<std::size_t>(2 * p.depth), ' ');
      name += p.name;
      st.add_row({name, pcf::text_table::fmt(p.seconds, 3),
                  std::to_string(p.calls),
                  pcf::text_table::fmt(static_cast<double>(p.flops) / 1e9, 3),
                  pcf::text_table::fmt(static_cast<double>(p.bytes) / 1e9, 3)});
    }
    std::fputs(st.str().c_str(), stdout);
  });
  return 0;
}
