// Paper Table 5: global MPI communication performance as a function of the
// CommA x CommB process-grid split.
//
// Two parts: (1) a *measured* section running the real pencil transposes
// on the virtual-MPI runtime across every split of a small rank count —
// demonstrating the same qualitative ordering (node-local CommB wins); and
// (2) the netsim model regenerating the paper's Mira (8192-core) and
// Lonestar (384-core) numbers.
#include <mutex>
#include <vector>

#include "bench_common.hpp"
#include "netsim/predictor.hpp"
#include "pencil/pencil.hpp"
#include "util/aligned.hpp"

using namespace pcf::pencil;

namespace {

double measured_cycle(int pa, int pb, const grid& g, int repeats) {
  double out = 0.0;
  std::mutex m;
  pcf::vmpi::run_world(pa * pb, [&](pcf::vmpi::communicator& world) {
    pcf::vmpi::cart2d cart(world, pa, pb);
    kernel_config cfg;
    cfg.dealias = false;
    parallel_fft pf(g, cart, cfg);
    const auto& d = pf.dec();
    pcf::aligned_buffer<cplx> spec(d.y_pencil_elems(), cplx{1.0, 0.0});
    pcf::aligned_buffer<double> phys(d.x_pencil_real_elems());
    pf.to_physical(spec.data(), phys.data());
    pf.to_spectral(phys.data(), spec.data());
    pf.reset_timers();
    pcf::wall_timer t;
    for (int r = 0; r < repeats; ++r) {
      pf.to_physical(spec.data(), phys.data());
      pf.to_spectral(phys.data(), spec.data());
    }
    if (world.rank() == 0) {
      std::lock_guard<std::mutex> lk(m);
      out = t.seconds() / repeats;
    }
  });
  return out;
}

}  // namespace

int main() {
  pcf::bench::print_header("Table 5",
                           "global communication vs CommA x CommB split");

  // --- measured: 16 virtual ranks, all splits -------------------------------
  grid g{32, 16, 32};
  const int repeats =
      static_cast<int>(pcf::bench::env_long("PCF_BENCH_REPS", 5));
  std::printf("measured on the virtual-MPI runtime (16 ranks, grid %zu x "
              "%zu x %zu, full transpose cycle):\n",
              g.nx, g.ny, g.nz);
  pcf::text_table hm({"CommA x CommB", "Elapsed"});
  for (int pb : {1, 2, 4, 8, 16}) {
    const double t = measured_cycle(16 / pb, pb, g, repeats);
    hm.add_row({std::to_string(16 / pb) + " x " + std::to_string(pb),
                pcf::text_table::fmt_time(t)});
  }
  std::fputs(hm.str().c_str(), stdout);

  // --- modelled: the paper's configurations ----------------------------------
  using pcf::netsim::job_config;
  using pcf::netsim::machine;
  using pcf::netsim::predictor;

  auto model_table = [](const machine& m, long cores, std::size_t nx,
                        std::size_t ny, std::size_t nz,
                        const std::vector<long>& pbs) {
    predictor p(m);
    std::printf("\nmodelled %s, %ld cores, grid %zu x %zu x %zu:\n",
                m.name.c_str(), cores, nx, ny, nz);
    pcf::text_table t({"CommA x CommB", "Elapsed (s)"});
    for (long pb : pbs) {
      job_config j;
      j.nx = nx;
      j.ny = ny;
      j.nz = nz;
      j.cores = cores;
      j.dealias = false;
      j.pb = pb;
      j.pa = cores / pb;
      t.add_row({std::to_string(j.pa) + " x " + std::to_string(pb),
                 pcf::text_table::fmt(p.transpose_cycle(j), 3)});
    }
    std::fputs(t.str().c_str(), stdout);
  };

  model_table(machine::mira(), 8192, 2048, 1024, 1024,
              {16, 32, 64, 128, 256, 512});
  model_table(machine::lonestar(), 384, 1536, 384, 1024, {12, 24, 48, 96});

  std::printf("\npaper: Mira 512x16 = .386s rising to 16x512 = .626s; "
              "Lonestar 32x12 = 2.97s rising to 4x96 = 3.78s.\n");
  return 0;
}
