// Shared helpers for the table-reproduction benchmark harness.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/table.hpp"
#include "util/timer.hpp"

namespace pcf::bench {

/// Environment-tunable workload scale so CI runs stay short:
/// PCF_BENCH_SCALE=1 (default) reproduces the table shapes quickly;
/// larger values run closer to publication sizes.
inline long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atol(v) : fallback;
}

/// Time `fn` by repeating it until ~min_seconds has elapsed; returns
/// seconds per call.
template <class F>
double time_call(F&& fn, double min_seconds = 0.05, int min_reps = 3) {
  // Warm up.
  fn();
  int reps = min_reps;
  for (;;) {
    wall_timer t;
    for (int i = 0; i < reps; ++i) fn();
    const double s = t.seconds();
    if (s >= min_seconds || reps > (1 << 22)) return s / reps;
    reps *= 4;
  }
}

inline void print_header(const char* table, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", table, description);
  std::printf("==============================================================\n");
}

}  // namespace pcf::bench
