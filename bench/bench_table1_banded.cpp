// Paper Table 1: elapsed time for solving one bordered-banded linear
// system (N = 1024) as a function of bandwidth, for
//   - the reference complex banded solver (ZGBTRF/ZGBTRS equivalent) —
//     the normalizer, as in the paper;
//   - the reference real banded solver applied to the complex RHS as two
//     real solves (the MKL^R / DGBTRF+DGBTRS approach);
//   - the customized compact solver (real matrix, complex RHS directly).
//
// The reference solvers must store the bordered rows by widening the band
// to kl = ku = 2h (Figure 3 center) and pay pivoting storage and zero-work;
// the custom format (Figure 3 right) stores exactly 2h+1 entries per row.
#include <complex>
#include <vector>

#include "banded/compact.hpp"
#include "banded/gb.hpp"
#include "bench_common.hpp"
#include "util/rng.hpp"

using pcf::banded::compact_banded;
using pcf::banded::cplx;
using pcf::banded::gb_matrix;

namespace {

/// Build the Figure-3 matrix pattern: band of half-width h plus dense
/// corner rows, diagonally dominant.
void fill(compact_banded& C, gb_matrix<double>& Gr, gb_matrix<cplx>& Gc,
          std::uint64_t seed) {
  pcf::rng r(seed);
  const int n = C.n();
  for (int i = 0; i < n; ++i) {
    const int s = C.row_start(i);
    double rowsum = 0.0;
    for (int j = s; j <= s + 2 * C.half_bandwidth(); ++j) {
      if (j < 0 || j >= n || j == i) continue;
      const double v = r.uniform(-1, 1);
      C.at(i, j) = v;
      Gr.at(i, j) = v;
      Gc.at(i, j) = v;
      rowsum += std::abs(v);
    }
    C.at(i, i) = rowsum + 1.0;
    Gr.at(i, i) = rowsum + 1.0;
    Gc.at(i, i) = rowsum + 1.0;
  }
}

}  // namespace

int main() {
  pcf::bench::print_header(
      "Table 1", "elapsed time for solving a linear system (normalized by "
                 "the reference complex banded solver)");
  const int n = static_cast<int>(pcf::bench::env_long("PCF_BENCH_N", 1024));
  pcf::text_table t({"Bandwidth", "Ref^R (2 real)", "Ref^C (complex)",
                     "Custom", "Custom speedup", "Custom storage",
                     "Ref storage"});

  for (int h = 1; h <= 7; ++h) {
    compact_banded C(n, h);
    gb_matrix<double> Gr(n, 2 * h, 2 * h);
    gb_matrix<cplx> Gc(n, 2 * h, 2 * h);
    fill(C, Gr, Gc, 1000 + static_cast<std::uint64_t>(h));

    pcf::rng r(7);
    std::vector<cplx> rhs(static_cast<std::size_t>(n));
    for (auto& v : rhs) v = cplx{r.uniform(-1, 1), r.uniform(-1, 1)};
    std::vector<double> re(static_cast<std::size_t>(n)),
        im(static_cast<std::size_t>(n));

    // Each timed call includes factorization and solve, as in production
    // where the operator changes with the wavenumber.
    const double t_c = pcf::bench::time_call([&] {
      auto M = Gc;
      M.factorize();
      auto b = rhs;
      M.solve(b.data());
    });
    const double t_r = pcf::bench::time_call([&] {
      auto M = Gr;
      M.factorize();
      for (int i = 0; i < n; ++i) {
        re[static_cast<std::size_t>(i)] = rhs[static_cast<std::size_t>(i)].real();
        im[static_cast<std::size_t>(i)] = rhs[static_cast<std::size_t>(i)].imag();
      }
      M.solve(re.data());
      M.solve(im.data());
    });
    const double t_k = pcf::bench::time_call([&] {
      auto M = C;
      M.factorize();
      auto b = rhs;
      M.solve(b.data());
    });

    t.add_row({std::to_string(2 * h + 1), pcf::text_table::fmt(t_r / t_c, 3),
               pcf::text_table::fmt(t_c / t_c, 3),
               pcf::text_table::fmt(t_k / t_c, 3),
               pcf::text_table::fmt(t_c / t_k, 2) + "x",
               std::to_string(C.storage_bytes() / 1024) + " KiB",
               std::to_string(Gc.storage_bytes() / 1024) + " KiB"});
  }
  std::fputs(t.str().c_str(), stdout);
  std::printf("\npaper: custom ~4x faster than vendor banded solvers, "
              "storage halved.\n");
  return 0;
}
