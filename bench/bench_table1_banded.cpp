// Paper Table 1: elapsed time for solving one bordered-banded linear
// system (N = 1024) as a function of bandwidth, for
//   - the reference complex banded solver (ZGBTRF/ZGBTRS equivalent) —
//     the normalizer, as in the paper;
//   - the reference real banded solver applied to the complex RHS as two
//     real solves (the MKL^R / DGBTRF+DGBTRS approach);
//   - the customized compact solver (real matrix, complex RHS directly).
//
// The reference solvers must store the bordered rows by widening the band
// to kl = ku = 2h (Figure 3 center) and pay pivoting storage and zero-work;
// the custom format (Figure 3 right) stores exactly 2h+1 entries per row.
//
// A second table profiles the blocked multi-RHS substitution: per-RHS solve
// time for h in {1..7} and R in {1, 2, 4, 8} complex right-hand sides,
// comparing the scalar one-pass-per-RHS path, the blocked runtime-lane
// kernel, and the blocked fixed-lane (vectorized) kernel, with the pivoted
// LAPACK-style solver as baseline. Results go to BENCH_banded.json.
//
// Usage: bench_table1_banded [--fast]
//   --fast: smaller system / shorter timing floor — the ctest `perf`-label
//   smoke configuration.
#include <algorithm>
#include <complex>
#include <cstring>
#include <vector>

#include "banded/compact.hpp"
#include "banded/gb.hpp"
#include "bench_common.hpp"
#include "util/rng.hpp"

using pcf::banded::compact_banded;
using pcf::banded::cplx;
using pcf::banded::gb_matrix;

namespace {

/// Build the Figure-3 matrix pattern: band of half-width h plus dense
/// corner rows, diagonally dominant.
void fill(compact_banded& C, gb_matrix<double>& Gr, gb_matrix<cplx>& Gc,
          std::uint64_t seed) {
  pcf::rng r(seed);
  const int n = C.n();
  for (int i = 0; i < n; ++i) {
    const int s = C.row_start(i);
    double rowsum = 0.0;
    for (int j = s; j <= s + 2 * C.half_bandwidth(); ++j) {
      if (j < 0 || j >= n || j == i) continue;
      const double v = r.uniform(-1, 1);
      C.at(i, j) = v;
      Gr.at(i, j) = v;
      Gc.at(i, j) = v;
      rowsum += std::abs(v);
    }
    C.at(i, i) = rowsum + 1.0;
    Gr.at(i, i) = rowsum + 1.0;
    Gc.at(i, i) = rowsum + 1.0;
  }
}

struct rhs_case {
  int h, r;
  double scalar, blocked, vec, gb;  // seconds per RHS, solve only
};

void write_json(const char* path, int n, bool fast,
                const std::vector<rhs_case>& cases) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::perror(path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"banded_multi_rhs\",\n");
  std::fprintf(f, "  \"n\": %d,\n  \"fast\": %s,\n  \"cases\": [\n", n,
               fast ? "true" : "false");
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const rhs_case& c = cases[i];
    std::fprintf(f,
                 "    {\"h\": %d, \"nrhs\": %d, \"scalar_per_rhs\": %.3e, "
                 "\"blocked_per_rhs\": %.3e, \"vector_per_rhs\": %.3e, "
                 "\"gb_per_rhs\": %.3e}%s\n",
                 c.h, c.r, c.scalar, c.blocked, c.vec, c.gb,
                 i + 1 < cases.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool fast = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;
  pcf::bench::print_header(
      "Table 1", "elapsed time for solving a linear system (normalized by "
                 "the reference complex banded solver)");
  const int n = static_cast<int>(
      pcf::bench::env_long("PCF_BENCH_N", fast ? 256 : 1024));
  pcf::text_table t({"Bandwidth", "Ref^R (2 real)", "Ref^C (complex)",
                     "Custom", "Custom speedup", "Custom storage",
                     "Ref storage"});

  for (int h = 1; h <= 7; ++h) {
    compact_banded C(n, h);
    gb_matrix<double> Gr(n, 2 * h, 2 * h);
    gb_matrix<cplx> Gc(n, 2 * h, 2 * h);
    fill(C, Gr, Gc, 1000 + static_cast<std::uint64_t>(h));

    pcf::rng r(7);
    std::vector<cplx> rhs(static_cast<std::size_t>(n));
    for (auto& v : rhs) v = cplx{r.uniform(-1, 1), r.uniform(-1, 1)};
    std::vector<double> re(static_cast<std::size_t>(n)),
        im(static_cast<std::size_t>(n));

    // Each timed call includes factorization and solve, as in production
    // where the operator changes with the wavenumber.
    const double t_c = pcf::bench::time_call([&] {
      auto M = Gc;
      M.factorize();
      auto b = rhs;
      M.solve(b.data());
    });
    const double t_r = pcf::bench::time_call([&] {
      auto M = Gr;
      M.factorize();
      for (int i = 0; i < n; ++i) {
        re[static_cast<std::size_t>(i)] = rhs[static_cast<std::size_t>(i)].real();
        im[static_cast<std::size_t>(i)] = rhs[static_cast<std::size_t>(i)].imag();
      }
      M.solve(re.data());
      M.solve(im.data());
    });
    const double t_k = pcf::bench::time_call([&] {
      auto M = C;
      M.factorize();
      auto b = rhs;
      M.solve(b.data());
    });

    t.add_row({std::to_string(2 * h + 1), pcf::text_table::fmt(t_r / t_c, 3),
               pcf::text_table::fmt(t_c / t_c, 3),
               pcf::text_table::fmt(t_k / t_c, 3),
               pcf::text_table::fmt(t_c / t_k, 2) + "x",
               std::to_string(C.storage_bytes() / 1024) + " KiB",
               std::to_string(Gc.storage_bytes() / 1024) + " KiB"});
  }
  std::fputs(t.str().c_str(), stdout);
  std::printf("\npaper: custom ~4x faster than vendor banded solvers, "
              "storage halved.\n");

  // --- Blocked multi-RHS substitution profile ------------------------------
  pcf::bench::print_header(
      "Multi-RHS", "per-RHS solve time: scalar vs blocked vs vectorized "
                   "(complex RHS, factorization excluded)");
  const double floor_s = fast ? 0.005 : 0.05;
  pcf::text_table mt({"Bandwidth", "R", "scalar/RHS", "blocked/RHS",
                      "vector/RHS", "vec speedup", "Ref^R/RHS"});
  std::vector<rhs_case> cases;
  const int rs[4] = {1, 2, 4, 8};
  for (int h = 1; h <= 7; ++h) {
    compact_banded C(n, h);
    gb_matrix<double> Gr(n, 2 * h, 2 * h);
    gb_matrix<cplx> Gc(n, 2 * h, 2 * h);
    fill(C, Gr, Gc, 2000 + static_cast<std::uint64_t>(h));
    C.factorize();
    Gr.factorize();

    pcf::rng r(11);
    std::vector<cplx> rhs0(static_cast<std::size_t>(8 * n));
    for (auto& v : rhs0) v = cplx{r.uniform(-1, 1), r.uniform(-1, 1)};
    std::vector<cplx> work(rhs0.size());
    const auto stride = static_cast<std::size_t>(n);
    double scalar1 = 0.0;  // scalar per-RHS time at R = 1 (the normalizer)

    for (int R : rs) {
      // Each timed call restores the panel then solves; the restore cost
      // is measured separately and subtracted so the numbers are
      // substitution-only.
      auto restore = [&] {
        std::memcpy(work.data(), rhs0.data(),
                    static_cast<std::size_t>(R) * stride * sizeof(cplx));
      };
      const double t_copy = pcf::bench::time_call(restore, floor_s);
      auto timed = [&](auto&& solve) {
        const double tt = pcf::bench::time_call(
            [&] {
              restore();
              solve();
            },
            floor_s);
        return std::max(tt - t_copy, 0.0) / R;
      };
      rhs_case c{h, R, 0, 0, 0, 0};
      c.scalar = timed([&] { C.solve_many_scalar(work.data(), R, stride); });
      c.blocked =
          timed([&] { C.solve_many_blocked_generic(work.data(), R, stride); });
      c.vec = timed([&] { C.solve_many(work.data(), R, stride); });
      c.gb = timed([&] { Gr.solve_many(work.data(), R, stride); });
      if (R == 1) scalar1 = c.scalar;
      cases.push_back(c);
      mt.add_row({std::to_string(2 * h + 1), std::to_string(R),
                  pcf::text_table::fmt(c.scalar * 1e9, 1) + " ns",
                  pcf::text_table::fmt(c.blocked * 1e9, 1) + " ns",
                  pcf::text_table::fmt(c.vec * 1e9, 1) + " ns",
                  pcf::text_table::fmt(scalar1 / c.vec, 2) + "x",
                  pcf::text_table::fmt(c.gb * 1e9, 1) + " ns"});
    }
  }
  std::fputs(mt.str().c_str(), stdout);

  // Acceptance figure: blocked multi-RHS per-RHS speedup over the scalar
  // single-RHS path at the production bandwidth (h = 7) and R = 4.
  double s1 = 0.0, v4 = 0.0;
  for (const rhs_case& c : cases) {
    if (c.h == 7 && c.r == 1) s1 = c.scalar;
    if (c.h == 7 && c.r == 4) v4 = c.vec;
  }
  if (v4 > 0.0)
    std::printf("\nh=7: blocked 4-RHS per-RHS speedup over scalar 1-RHS: "
                "%.2fx\n",
                s1 / v4);
  write_json("BENCH_banded.json", n, fast, cases);
  std::printf("wrote BENCH_banded.json (%zu cases)\n", cases.size());
  return 0;
}
