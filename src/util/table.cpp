#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/check.hpp"

namespace pcf {

text_table::text_table(std::vector<std::string> header)
    : header_(std::move(header)) {}

void text_table::add_row(std::vector<std::string> cells) {
  PCF_REQUIRE(cells.size() == header_.size(),
              "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string text_table::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(width[c]))
         << row[c];
    }
    os << " |\n";
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|" : "|") << std::string(width[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string text_table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << std::fixed << v;
  return os.str();
}

std::string text_table::fmt_pct(double fraction, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << std::fixed << 100.0 * fraction << '%';
  return os.str();
}

std::string text_table::fmt_time(double seconds) {
  std::ostringstream os;
  if (seconds >= 1.0)
    os << std::setprecision(3) << std::fixed << seconds << " s";
  else if (seconds >= 1e-3)
    os << std::setprecision(3) << std::fixed << seconds * 1e3 << " ms";
  else
    os << std::setprecision(3) << std::fixed << seconds * 1e6 << " us";
  return os.str();
}

}  // namespace pcf
