#include "util/block_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "util/check.hpp"
#include "util/counters.hpp"

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace pcf {

namespace {

// Process-wide accumulation across pools for counters::pool_totals():
// live pools are summed on demand; a destroyed pool folds its monotone
// counters into this retirement bucket so totals never go backwards.
struct pool_registry {
  std::mutex mu;
  std::vector<const block_pool*> live;
  std::uint64_t retired_leases = 0, retired_releases = 0,
                retired_cache_hits = 0, retired_lease_ns = 0,
                retired_exit_flushed = 0;
};

pool_registry& registry() {
  static pool_registry r;
  return r;
}

#ifndef NDEBUG
inline constexpr unsigned char kPoison = 0xAB;
#endif

}  // namespace

struct block_pool::impl {
  enum class backing { heap, mmap_small, mmap_huge };

  struct segment {
    unsigned char* base = nullptr;
    std::size_t map_bytes = 0;  // bytes handed to mmap/aligned_alloc
    std::size_t nblocks = 0;
    std::vector<std::uint64_t> free_bits;  // 1 = free
    std::size_t free_count = 0;
    backing how = backing::heap;
  };

  /// One cached run parked by release() on the releasing thread's slot.
  struct cached_run {
    std::uint32_t seg, first, count;
  };

  /// Per-thread cache slot. Owned by the pool (so flush and destruction
  /// see every run, even after the owning thread exits); the tiny mutex
  /// is uncontended on the owner's fast path and only fought over by
  /// flush_thread_caches()/stats().
  struct cache_slot {
    std::mutex mu;
    std::vector<cached_run> runs;
    std::size_t blocks = 0;
  };

  block_pool_config cfg;
  std::uint64_t id;  // unique forever; keys the thread-local slot lookup

  mutable std::mutex mu;                // guards segments + slot creation
  std::vector<segment> segments;
  std::deque<cache_slot> slots;         // deque: stable addresses

  // Contention-light telemetry (atomics, not the pool mutex).
  std::atomic<std::uint64_t> leases{0}, releases{0}, cache_hits{0};
  std::atomic<std::uint64_t> exit_flushed{0};
  std::atomic<std::uint64_t> lease_ns{0};
  std::atomic<std::size_t> blocks_leased{0}, blocks_cached{0};
  std::atomic<std::size_t> blocks_peak{0};

  void bump_peak() {
    const std::size_t now = blocks_leased.load(std::memory_order_relaxed) +
                            blocks_cached.load(std::memory_order_relaxed);
    std::size_t prev = blocks_peak.load(std::memory_order_relaxed);
    while (prev < now &&
           !blocks_peak.compare_exchange_weak(prev, now,
                                              std::memory_order_relaxed)) {
    }
  }

  // --- segment backing -----------------------------------------------------

  segment make_segment(std::size_t nblocks) {
    segment s;
    s.nblocks = nblocks;
    const std::size_t bytes = nblocks * cfg.block_bytes;
#if defined(__linux__)
    if (cfg.hugepages) {
      // Explicit hugepages first: round to the 2 MiB granule MAP_HUGETLB
      // requires. Usually fails without reserved hugepages — fall through
      // silently.
      constexpr std::size_t kHuge = 2u << 20;
      const std::size_t hbytes = (bytes + kHuge - 1) / kHuge * kHuge;
      void* p = ::mmap(nullptr, hbytes, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS | MAP_HUGETLB, -1, 0);
      if (p != MAP_FAILED) {
        s.base = static_cast<unsigned char*>(p);
        s.map_bytes = hbytes;
        s.how = backing::mmap_huge;
      }
    }
    if (s.base == nullptr) {
      void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
      if (p != MAP_FAILED) {
        if (cfg.hugepages) (void)::madvise(p, bytes, MADV_HUGEPAGE);
        s.base = static_cast<unsigned char*>(p);
        s.map_bytes = bytes;
        s.how = backing::mmap_small;
      }
    }
#endif
    if (s.base == nullptr) {
      void* p = std::aligned_alloc(kAlignment, bytes);
      if (p == nullptr) throw std::bad_alloc();
      s.base = static_cast<unsigned char*>(p);
      s.map_bytes = bytes;
      s.how = backing::heap;
    }
    s.free_bits.assign((nblocks + 63) / 64, ~std::uint64_t{0});
    // Clear the padding bits past nblocks so run scans never step off the
    // end of the segment.
    if (nblocks % 64 != 0)
      s.free_bits.back() = (std::uint64_t{1} << (nblocks % 64)) - 1;
    s.free_count = nblocks;
    return s;
  }

  static void free_segment(segment& s) {
    if (s.base == nullptr) return;
#if defined(__linux__)
    if (s.how != backing::heap) {
      ::munmap(s.base, s.map_bytes);
      s.base = nullptr;
      return;
    }
#endif
    std::free(s.base);
    s.base = nullptr;
  }

  // --- bitmap ops (callers hold `mu`) --------------------------------------

  static bool bit(const segment& s, std::size_t i) {
    return (s.free_bits[i / 64] >> (i % 64)) & 1u;
  }

  static void mark(segment& s, std::size_t first, std::size_t count,
                   bool free) {
    for (std::size_t i = first; i < first + count; ++i) {
      const std::uint64_t m = std::uint64_t{1} << (i % 64);
      if (free)
        s.free_bits[i / 64] |= m;
      else
        s.free_bits[i / 64] &= ~m;
    }
    if (free)
      s.free_count += count;
    else
      s.free_count -= count;
  }

  /// First-fit contiguous free run of `count` blocks; nblocks if none.
  static std::size_t find_run(const segment& s, std::size_t count) {
    if (s.free_count < count) return s.nblocks;
    std::size_t run = 0;
    for (std::size_t i = 0; i < s.nblocks; ++i) {
      // Word-skip: a fully used word can't extend a run.
      if (run == 0 && i % 64 == 0 && s.free_bits[i / 64] == 0) {
        i += 63;
        continue;
      }
      run = bit(s, i) ? run + 1 : 0;
      if (run == count) return i + 1 - count;
    }
    return s.nblocks;
  }

  // --- thread cache --------------------------------------------------------

  struct tls_entry {
    std::uint64_t pool_id;
    cache_slot* slot;
  };

  /// Worker-exit hook: when a thread dies, every slot it ever parked runs
  /// on is flushed back to the owning pool's bitmaps (if that pool is
  /// still alive — looked up by id under the registry mutex, so a pool
  /// mid-destruction can't be revived). Without this, blocks cached by a
  /// retired campaign worker strand until someone calls
  /// flush_thread_caches() by hand.
  struct tls_registry {
    std::vector<tls_entry> entries;
    ~tls_registry();
  };

  static tls_registry& thread_slots() {
    thread_local tls_registry reg;
    return reg;
  }

  /// Return one slot's parked runs to the segment bitmaps. Lock order
  /// matches flush_caches(): pool mutex, then the slot.
  void flush_slot(cache_slot& s) {
    std::lock_guard<std::mutex> lk(mu);
    std::lock_guard<std::mutex> sl(s.mu);
    for (const auto& r : s.runs) mark(segments[r.seg], r.first, r.count, true);
    blocks_cached.fetch_sub(s.blocks, std::memory_order_relaxed);
    exit_flushed.fetch_add(s.blocks, std::memory_order_relaxed);
    s.blocks = 0;
    s.runs.clear();
  }

  cache_slot& slot_for_thread() {
    auto& reg = thread_slots().entries;
    for (const auto& e : reg)
      if (e.pool_id == id) return *e.slot;
    std::lock_guard<std::mutex> lk(mu);
    slots.emplace_back();
    reg.push_back({id, &slots.back()});
    return slots.back();
  }

  /// Exact-or-split fit from the calling thread's cache. Returns true and
  /// fills seg/first on a hit.
  bool cache_take(std::size_t count, std::uint32_t& seg,
                  std::uint32_t& first) {
    if (cfg.thread_cache_blocks == 0) return false;
    cache_slot& s = slot_for_thread();
    std::lock_guard<std::mutex> lk(s.mu);
    std::size_t best = s.runs.size();
    for (std::size_t i = 0; i < s.runs.size(); ++i) {
      if (s.runs[i].count < count) continue;
      if (best == s.runs.size() || s.runs[i].count < s.runs[best].count)
        best = i;
      if (s.runs[i].count == count) break;  // exact fit wins
    }
    if (best == s.runs.size()) return false;
    cached_run& r = s.runs[best];
    seg = r.seg;
    first = r.first;
    if (r.count == count) {
      s.runs.erase(s.runs.begin() + static_cast<std::ptrdiff_t>(best));
    } else {
      r.first += static_cast<std::uint32_t>(count);
      r.count -= static_cast<std::uint32_t>(count);
    }
    s.blocks -= count;
    blocks_cached.fetch_sub(count, std::memory_order_relaxed);
    return true;
  }

  /// Park a released run on the calling thread's cache if it has room.
  bool cache_put(std::uint32_t seg, std::uint32_t first,
                 std::uint32_t count) {
    if (cfg.thread_cache_blocks == 0) return false;
    cache_slot& s = slot_for_thread();
    std::lock_guard<std::mutex> lk(s.mu);
    if (s.blocks + count > cfg.thread_cache_blocks) return false;
    s.runs.push_back({seg, first, count});
    s.blocks += count;
    blocks_cached.fetch_add(count, std::memory_order_relaxed);
    return true;
  }

  void flush_caches() {
    // Lock order: pool mutex, then each slot — matching slot creation.
    std::lock_guard<std::mutex> lk(mu);
    for (auto& s : slots) {
      std::lock_guard<std::mutex> sl(s.mu);
      for (const auto& r : s.runs) mark(segments[r.seg], r.first, r.count, true);
      blocks_cached.fetch_sub(s.blocks, std::memory_order_relaxed);
      s.blocks = 0;
      s.runs.clear();
    }
  }
};

block_pool::impl::tls_registry::~tls_registry() {
  if (entries.empty()) return;
  auto& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  for (const tls_entry& e : entries) {
    for (const block_pool* p : r.live) {
      if (p->p_->id == e.pool_id) {
        p->p_->flush_slot(*e.slot);
        break;
      }
    }
  }
}

block_pool::block_pool(const block_pool_config& cfg) : cfg_(cfg) {
  PCF_REQUIRE(cfg_.block_bytes > 0 && cfg_.block_bytes % kAlignment == 0,
              "block_pool: block_bytes must be a positive multiple of the "
              "cache-line alignment");
  PCF_REQUIRE(cfg_.segment_blocks > 0,
              "block_pool: segment_blocks must be positive");
  static std::atomic<std::uint64_t> next_id{1};
  p_ = new impl;
  p_->cfg = cfg_;
  p_->id = next_id.fetch_add(1);
  std::lock_guard<std::mutex> lk(registry().mu);
  registry().live.push_back(this);
}

block_pool::~block_pool() {
  {
    auto& r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    r.live.erase(std::remove(r.live.begin(), r.live.end(), this),
                 r.live.end());
    r.retired_leases += p_->leases.load();
    r.retired_releases += p_->releases.load();
    r.retired_cache_hits += p_->cache_hits.load();
    r.retired_lease_ns += p_->lease_ns.load();
    r.retired_exit_flushed += p_->exit_flushed.load();
  }
  for (auto& s : p_->segments) impl::free_segment(s);
  delete p_;
}

block_pool::lease block_pool::acquire(std::size_t min_bytes) {
  if (min_bytes == 0) return {};
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t count =
      (min_bytes + cfg_.block_bytes - 1) / cfg_.block_bytes;
  PCF_REQUIRE(count <= ~std::uint32_t{0},
              "block_pool: lease exceeds the 32-bit block-run limit");

  lease l;
  l.count_ = static_cast<std::uint32_t>(count);
  l.bytes_ = count * cfg_.block_bytes;

  if (p_->cache_take(count, l.seg_, l.first_)) {
    p_->cache_hits.fetch_add(1, std::memory_order_relaxed);
  } else {
    std::lock_guard<std::mutex> lk(p_->mu);
    std::size_t seg = p_->segments.size(), first = 0;
    for (std::size_t i = 0; i < p_->segments.size(); ++i) {
      first = impl::find_run(p_->segments[i], count);
      if (first < p_->segments[i].nblocks) {
        seg = i;
        break;
      }
    }
    if (seg == p_->segments.size()) {
      // No run fits: grow a segment (dedicated when the lease itself is
      // bigger than the configured segment size).
      p_->segments.push_back(
          p_->make_segment(std::max(cfg_.segment_blocks, count)));
      first = 0;
    }
    impl::mark(p_->segments[seg], first, count, false);
    l.seg_ = static_cast<std::uint32_t>(seg);
    l.first_ = static_cast<std::uint32_t>(first);
  }

  {
    std::lock_guard<std::mutex> lk(p_->mu);  // segment vector may reallocate
    l.data_ = p_->segments[l.seg_].base +
              static_cast<std::size_t>(l.first_) * cfg_.block_bytes;
  }
  p_->leases.fetch_add(1, std::memory_order_relaxed);
  p_->blocks_leased.fetch_add(count, std::memory_order_relaxed);
  p_->bump_peak();
  p_->lease_ns.fetch_add(
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()),
      std::memory_order_relaxed);
  return l;
}

void block_pool::release(lease& l) {
  if (!l) return;
#ifndef NDEBUG
  // Poison released blocks: a lane holding a pointer across a release /
  // re-lease cycle reads 0xAB garbage, not plausible stale data.
  std::memset(l.data_, kPoison, l.bytes_);
#endif
  const std::size_t count = l.count_;
  if (!p_->cache_put(l.seg_, l.first_, l.count_)) {
    std::lock_guard<std::mutex> lk(p_->mu);
    impl::mark(p_->segments[l.seg_], l.first_, count, true);
  }
  p_->releases.fetch_add(1, std::memory_order_relaxed);
  p_->blocks_leased.fetch_sub(count, std::memory_order_relaxed);
  l = {};
}

void block_pool::flush_thread_caches() { p_->flush_caches(); }

void block_pool::trim() {
  p_->flush_caches();
  std::lock_guard<std::mutex> lk(p_->mu);
  // Only trailing segments can go: leases and cached runs index segments
  // by position, so interior erasure would invalidate live handles.
  while (!p_->segments.empty() &&
         p_->segments.back().free_count == p_->segments.back().nblocks) {
    impl::free_segment(p_->segments.back());
    p_->segments.pop_back();
  }
}

block_pool::stats_t block_pool::stats() const {
  stats_t s;
  s.leases = p_->leases.load();
  s.releases = p_->releases.load();
  s.cache_hits = p_->cache_hits.load();
  s.exit_flushed_blocks = p_->exit_flushed.load();
  s.blocks_leased = p_->blocks_leased.load();
  s.blocks_cached = p_->blocks_cached.load();
  s.blocks_peak = p_->blocks_peak.load();
  s.lease_ns = p_->lease_ns.load();
  std::lock_guard<std::mutex> lk(p_->mu);
  s.segments = p_->segments.size();
  for (const auto& seg : p_->segments) {
    s.blocks_total += seg.nblocks;
    if (seg.how == impl::backing::mmap_huge) ++s.hugepage_segments;
    // Hole scan: free runs that end at a used block.
    std::size_t run = 0;
    for (std::size_t i = 0; i < seg.nblocks; ++i) {
      if (impl::bit(seg, i)) {
        ++run;
      } else {
        if (run > 0) ++s.holes;
        run = 0;
      }
    }
  }
  return s;
}

block_pool& block_pool::global() {
  static block_pool pool;
  return pool;
}

namespace counters {

pool_counts pool_totals() {
  pool_counts t;
  auto& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  t.leases = r.retired_leases;
  t.releases = r.retired_releases;
  t.cache_hits = r.retired_cache_hits;
  t.exit_flushed_blocks = r.retired_exit_flushed;
  t.lease_ns = r.retired_lease_ns;
  for (const block_pool* p : r.live) {
    const block_pool::stats_t s = p->stats();
    t.leases += s.leases;
    t.releases += s.releases;
    t.cache_hits += s.cache_hits;
    t.exit_flushed_blocks += s.exit_flushed_blocks;
    t.lease_ns += s.lease_ns;
    t.blocks_leased += s.blocks_leased;
    t.blocks_cached += s.blocks_cached;
    t.blocks_total += s.blocks_total;
    t.blocks_peak += s.blocks_peak;
    t.holes += s.holes;
    t.segments += s.segments;
    t.hugepage_segments += s.hugepage_segments;
  }
  return t;
}

}  // namespace counters
}  // namespace pcf
