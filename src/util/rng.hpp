// Deterministic pseudo-random number generation for initial conditions,
// test matrices and synthetic workloads. SplitMix64 core: reproducible
// across platforms (unlike distribution-dependent std:: facilities).
#pragma once

#include <cmath>
#include <cstdint>

namespace pcf {

/// SplitMix64: tiny, fast, well-distributed; one 64-bit state word.
class rng {
 public:
  explicit rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Standard normal via Marsaglia polar method.
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    have_spare_ = true;
    return u * m;
  }

 private:
  std::uint64_t state_;
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace pcf
