#include "util/counters.hpp"

#include <algorithm>
#include <mutex>
#include <vector>

namespace pcf::counters {
namespace {

std::mutex g_mutex;
op_counts g_total;
std::vector<local_bucket*> g_locals;  // live threads' buckets, guarded by g_mutex

/// Harvest one bucket into `into`. exchange(0) pairs with the hot-path
/// fetch_add: both are RMWs on the same atomic, so a count added
/// concurrently with a drain is either harvested now or left for the
/// next one — never lost, never doubled.
void harvest(local_bucket& b, op_counts& into) {
  into.flops += b.flops.exchange(0, std::memory_order_relaxed);
  into.bytes_read += b.bytes_read.exchange(0, std::memory_order_relaxed);
  into.bytes_written += b.bytes_written.exchange(0, std::memory_order_relaxed);
}

/// Each thread's bucket folds itself into the global total and drops out of
/// the registry on thread exit, so drain() never sees a dangling pointer.
struct local_holder {
  local_bucket counts;

  local_holder() {
    std::lock_guard<std::mutex> lk(g_mutex);
    g_locals.push_back(&counts);
  }
  ~local_holder() {
    std::lock_guard<std::mutex> lk(g_mutex);
    harvest(counts, g_total);
    g_locals.erase(std::find(g_locals.begin(), g_locals.end(), &counts));
  }
};

}  // namespace

local_bucket& local() {
  static thread_local local_holder holder;
  return holder.counts;
}

void drain() {
  std::lock_guard<std::mutex> lk(g_mutex);
  for (local_bucket* b : g_locals) harvest(*b, g_total);
}

op_counts total() {
  std::lock_guard<std::mutex> lk(g_mutex);
  return g_total;
}

void reset() {
  std::lock_guard<std::mutex> lk(g_mutex);
  g_total = op_counts{};
  op_counts discard;
  for (local_bucket* b : g_locals) harvest(*b, discard);
}

}  // namespace pcf::counters
