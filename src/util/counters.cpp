#include "util/counters.hpp"

#include <algorithm>
#include <mutex>
#include <vector>

namespace pcf::counters {
namespace {

std::mutex g_mutex;
op_counts g_total;
std::vector<op_counts*> g_locals;  // live threads' buckets, guarded by g_mutex

/// Each thread's bucket folds itself into the global total and drops out of
/// the registry on thread exit, so drain() never sees a dangling pointer.
struct local_holder {
  op_counts counts;

  local_holder() {
    std::lock_guard<std::mutex> lk(g_mutex);
    g_locals.push_back(&counts);
  }
  ~local_holder() {
    std::lock_guard<std::mutex> lk(g_mutex);
    g_total += counts;
    g_locals.erase(std::find(g_locals.begin(), g_locals.end(), &counts));
  }
};

}  // namespace

op_counts& local() {
  static thread_local local_holder holder;
  return holder.counts;
}

void drain() {
  std::lock_guard<std::mutex> lk(g_mutex);
  for (op_counts* c : g_locals) {
    g_total += *c;
    *c = op_counts{};
  }
}

op_counts total() {
  std::lock_guard<std::mutex> lk(g_mutex);
  return g_total;
}

void reset() {
  std::lock_guard<std::mutex> lk(g_mutex);
  g_total = op_counts{};
  for (op_counts* c : g_locals) *c = op_counts{};
}

}  // namespace pcf::counters
