// Flop/byte instrumentation.
//
// The paper characterizes its kernels with IBM's HPM hardware counters
// (Table 2). We have no hardware counters here, so kernels account their
// floating-point operations and memory traffic explicitly; the netsim
// machine models turn these counts into predicted GFlops / DDR-traffic
// figures for the same kernels.
#pragma once

#include <atomic>
#include <cstdint>

namespace pcf {

/// Aggregated operation counts for one kernel invocation (or accumulated
/// over many). Thread-local accumulation keeps hot loops contention-free;
/// call `counters::drain()` to fold into totals.
struct op_counts {
  std::uint64_t flops = 0;        // floating point add/mul/fma(=2)
  std::uint64_t bytes_read = 0;   // bytes loaded from arrays
  std::uint64_t bytes_written = 0;

  op_counts& operator+=(const op_counts& o) {
    flops += o.flops;
    bytes_read += o.bytes_read;
    bytes_written += o.bytes_written;
    return *this;
  }
};

namespace counters {

/// Thread-local counter bucket. Fields are relaxed atomics: the hot-path
/// add is an uncontended RMW on the owning thread (one per kernel call,
/// not per element), while drain() may harvest a bucket from another
/// thread mid-kernel — the campaign steps tenants on shared pool workers,
/// so one tenant's phase timer drains while a neighbour's kernels count.
struct local_bucket {
  std::atomic<std::uint64_t> flops{0};
  std::atomic<std::uint64_t> bytes_read{0};
  std::atomic<std::uint64_t> bytes_written{0};
};

local_bucket& local();

/// Fold every thread's local bucket into the global total and zero them.
/// Safe concurrently with hot-path adds on other threads (exchange-based
/// harvest: every added count lands in the total exactly once).
void drain();

/// Global accumulated counts (after drain()).
op_counts total();

/// Zero the global total and all thread-local buckets seen so far.
void reset();

inline void add_flops(std::uint64_t n) {
  local().flops.fetch_add(n, std::memory_order_relaxed);
}
inline void add_read(std::uint64_t n) {
  local().bytes_read.fetch_add(n, std::memory_order_relaxed);
}
inline void add_written(std::uint64_t n) {
  local().bytes_written.fetch_add(n, std::memory_order_relaxed);
}

/// Block-pool telemetry (util/block_pool.hpp), accumulated process-wide
/// across every pool — what the step-timing report and the workspace
/// bench surface. Monotone counters (leases, releases, cache_hits,
/// lease_ns) include pools that have since been destroyed; occupancy
/// gauges (blocks_*) cover live pools only.
struct pool_counts {
  std::uint64_t leases = 0;
  std::uint64_t releases = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t exit_flushed_blocks = 0;  // flushed by the thread-exit hook
  std::uint64_t blocks_leased = 0;
  std::uint64_t blocks_cached = 0;
  std::uint64_t blocks_total = 0;
  std::uint64_t blocks_peak = 0;
  std::uint64_t holes = 0;
  std::uint64_t segments = 0;
  std::uint64_t hugepage_segments = 0;
  std::uint64_t lease_ns = 0;
};

/// Snapshot of the process-wide pool telemetry (defined in block_pool.cpp).
pool_counts pool_totals();

}  // namespace counters
}  // namespace pcf
