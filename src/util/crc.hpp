// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for checkpoint
// section checksums. Header-only; the table is built at compile time.
//
// The checkpoint writer protects every array section with a CRC so that
// bit-rot, torn writes and truncation are detected *per section* on load
// and reported with the section name, instead of being silently accepted
// into a restart state (paper production campaigns live and die on their
// checkpoints).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace pcf {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();

}  // namespace detail

/// Incrementally updatable CRC-32. `crc` is the running value returned by a
/// previous call (start from crc32_init()); finish with crc32_final().
[[nodiscard]] constexpr std::uint32_t crc32_init() { return 0xFFFFFFFFu; }

[[nodiscard]] inline std::uint32_t crc32_update(std::uint32_t crc,
                                                const void* data,
                                                std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i)
    crc = detail::kCrc32Table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  return crc;
}

[[nodiscard]] constexpr std::uint32_t crc32_final(std::uint32_t crc) {
  return crc ^ 0xFFFFFFFFu;
}

/// One-shot CRC-32 of a buffer (check value: crc32("123456789") ==
/// 0xCBF43926).
[[nodiscard]] inline std::uint32_t crc32(const void* data, std::size_t bytes) {
  return crc32_final(crc32_update(crc32_init(), data, bytes));
}

namespace detail {

// GF(2) 32x32 matrix operating on CRC state vectors; row i is the image of
// bit i. Used to advance a CRC over `len` zero bytes in O(log len).
using crc_matrix = std::array<std::uint32_t, 32>;

constexpr std::uint32_t gf2_times_vec(const crc_matrix& m, std::uint32_t v) {
  std::uint32_t out = 0;
  for (int i = 0; v != 0; ++i, v >>= 1)
    if (v & 1u) out ^= m[static_cast<std::size_t>(i)];
  return out;
}

constexpr crc_matrix gf2_times_mat(const crc_matrix& a, const crc_matrix& b) {
  crc_matrix out{};
  for (std::size_t i = 0; i < 32; ++i) out[i] = gf2_times_vec(a, b[i]);
  return out;
}

}  // namespace detail

/// CRC-32 of the concatenation A||B from crc32(A), crc32(B) and B's length
/// (zlib crc32_combine semantics). Lets scattered writers checksum a file
/// section from their in-memory pieces without ever re-reading the file.
[[nodiscard]] inline std::uint32_t crc32_combine(std::uint32_t crc_a,
                                                 std::uint32_t crc_b,
                                                 std::uint64_t len_b) {
  if (len_b == 0) return crc_a;
  // Operator for one zero bit: the CRC shift (reflected polynomial).
  detail::crc_matrix odd{};
  odd[0] = 0xEDB88320u;
  for (std::size_t i = 1; i < 32; ++i) odd[i] = 1u << (i - 1);
  detail::crc_matrix even = detail::gf2_times_mat(odd, odd);  // 2 zero bits
  odd = detail::gf2_times_mat(even, even);                    // 4 zero bits
  // Advance crc_a over 8 * len_b zero bits, squaring per length bit.
  std::uint32_t crc = crc_a;
  std::uint64_t len = len_b;
  do {
    even = detail::gf2_times_mat(odd, odd);
    if (len & 1u) crc = detail::gf2_times_vec(even, crc);
    len >>= 1;
    if (len == 0) break;
    odd = detail::gf2_times_mat(even, even);
    if (len & 1u) crc = detail::gf2_times_vec(odd, crc);
    len >>= 1;
  } while (len != 0);
  return crc ^ crc_b;
}

}  // namespace pcf
