// Lightweight non-owning strided views over 2-D and 3-D arrays.
//
// The DNS code stores fields as contiguous row-major blocks whose logical
// axis order changes as pencils are transposed; these views give kernels a
// readable (i,j,k) interface without hiding the underlying layout.
#pragma once

#include <cstddef>

#include "util/check.hpp"

namespace pcf {

/// Non-owning view of a row-major n0 x n1 matrix (stride may exceed n1).
template <class T>
class view2d {
 public:
  view2d() = default;
  view2d(T* data, std::size_t n0, std::size_t n1)
      : data_(data), n0_(n0), n1_(n1), stride_(n1) {}
  view2d(T* data, std::size_t n0, std::size_t n1, std::size_t stride)
      : data_(data), n0_(n0), n1_(n1), stride_(stride) {
    PCF_ASSERT(stride >= n1);
  }

  T& operator()(std::size_t i, std::size_t j) const noexcept {
    PCF_ASSERT(i < n0_ && j < n1_);
    return data_[i * stride_ + j];
  }

  T* row(std::size_t i) const noexcept { return data_ + i * stride_; }

  [[nodiscard]] std::size_t extent0() const noexcept { return n0_; }
  [[nodiscard]] std::size_t extent1() const noexcept { return n1_; }
  [[nodiscard]] std::size_t stride() const noexcept { return stride_; }
  T* data() const noexcept { return data_; }

 private:
  T* data_ = nullptr;
  std::size_t n0_ = 0, n1_ = 0, stride_ = 0;
};

/// Non-owning view of a contiguous row-major n0 x n1 x n2 block.
template <class T>
class view3d {
 public:
  view3d() = default;
  view3d(T* data, std::size_t n0, std::size_t n1, std::size_t n2)
      : data_(data), n0_(n0), n1_(n1), n2_(n2) {}

  T& operator()(std::size_t i, std::size_t j, std::size_t k) const noexcept {
    PCF_ASSERT(i < n0_ && j < n1_ && k < n2_);
    return data_[(i * n1_ + j) * n2_ + k];
  }

  /// Contiguous innermost line at (i, j).
  T* line(std::size_t i, std::size_t j) const noexcept {
    return data_ + (i * n1_ + j) * n2_;
  }

  [[nodiscard]] std::size_t extent0() const noexcept { return n0_; }
  [[nodiscard]] std::size_t extent1() const noexcept { return n1_; }
  [[nodiscard]] std::size_t extent2() const noexcept { return n2_; }
  [[nodiscard]] std::size_t size() const noexcept { return n0_ * n1_ * n2_; }
  T* data() const noexcept { return data_; }

 private:
  T* data_ = nullptr;
  std::size_t n0_ = 0, n1_ = 0, n2_ = 0;
};

}  // namespace pcf
