// Wall-clock timing, the moral equivalent of the paper's MPI_Wtime() use.
#pragma once

#include <chrono>

namespace pcf {

/// Monotonic wall-clock stopwatch.
class wall_timer {
  using clock = std::chrono::steady_clock;

 public:
  wall_timer() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  /// Seconds elapsed since construction or last restart().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  clock::time_point start_;
};

/// Accumulates time across start/stop intervals, e.g. per code section
/// (transpose / FFT / N-S advance) as in the paper's Tables 9-10.
class section_timer {
 public:
  void start() { t_.restart(); running_ = true; }
  void stop() {
    if (running_) {
      total_ += t_.seconds();
      ++count_;
      running_ = false;
    }
  }
  [[nodiscard]] double total() const { return total_; }
  [[nodiscard]] long count() const { return count_; }
  [[nodiscard]] bool running() const { return running_; }
  void reset() { total_ = 0.0; count_ = 0; running_ = false; }

  /// RAII start/stop: the interval is charged even when the timed code
  /// throws, so an exception (blow-up abort, workspace overflow) cannot
  /// leave the timer running and fold the unwound frames into the next
  /// interval's wall time.
  class section {
   public:
    explicit section(section_timer& t) : t_(&t) { t.start(); }
    ~section() { t_->stop(); }
    section(const section&) = delete;
    section& operator=(const section&) = delete;

   private:
    section_timer* t_;
  };

 private:
  wall_timer t_;
  double total_ = 0.0;
  long count_ = 0;
  bool running_ = false;
};

}  // namespace pcf
