// Cache-line/SIMD aligned storage for numerical kernels.
#pragma once

#include <algorithm>
#include <complex>
#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>
#include <type_traits>

#include "util/check.hpp"

namespace pcf {

inline constexpr std::size_t kAlignment = 64;  // one x86 cache line

/// Owning, 64-byte-aligned, fixed-size buffer of trivially copyable T.
/// Unlike std::vector it never value-initializes on resize-free paths and
/// guarantees alignment suitable for vectorized kernels.
template <class T>
class aligned_buffer {
  static_assert(std::is_trivially_copyable_v<T> ||
                    std::is_same_v<T, std::complex<double>>,
                "aligned_buffer is for POD-like numeric types");

 public:
  aligned_buffer() = default;

  explicit aligned_buffer(std::size_t n) { allocate(n); }

  aligned_buffer(std::size_t n, const T& fill) {
    allocate(n);
    std::fill_n(data_.get(), n, fill);
  }

  aligned_buffer(const aligned_buffer& other) {
    allocate(other.size_);
    std::copy_n(other.data_.get(), size_, data_.get());
  }
  aligned_buffer& operator=(const aligned_buffer& other) {
    if (this != &other) {
      allocate(other.size_);
      std::copy_n(other.data_.get(), size_, data_.get());
    }
    return *this;
  }
  aligned_buffer(aligned_buffer&&) noexcept = default;
  aligned_buffer& operator=(aligned_buffer&&) noexcept = default;

  /// Discards contents; new contents are uninitialized.
  void reset(std::size_t n) { allocate(n); }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  T* data() noexcept { return data_.get(); }
  const T* data() const noexcept { return data_.get(); }

  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

  T* begin() noexcept { return data(); }
  T* end() noexcept { return data() + size_; }
  const T* begin() const noexcept { return data(); }
  const T* end() const noexcept { return data() + size_; }

  void fill(const T& v) { std::fill_n(data_.get(), size_, v); }

 private:
  struct free_deleter {
    void operator()(T* p) const noexcept { std::free(p); }
  };

  void allocate(std::size_t n) {
    size_ = n;
    if (n == 0) {
      data_.reset();
      return;
    }
    // round byte count up to the alignment as aligned_alloc requires
    std::size_t bytes = (n * sizeof(T) + kAlignment - 1) / kAlignment * kAlignment;
    T* p = static_cast<T*>(std::aligned_alloc(kAlignment, bytes));
    if (p == nullptr) throw std::bad_alloc();
    data_.reset(p);
  }

  std::unique_ptr<T[], free_deleter> data_;
  std::size_t size_ = 0;
};

}  // namespace pcf
