#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace pcf {

thread_pool::thread_pool(int num_threads) : num_threads_(num_threads) {
  PCF_REQUIRE(num_threads >= 1, "thread_pool needs at least one thread");
  workers_.reserve(static_cast<std::size_t>(num_threads - 1));
  for (int id = 1; id < num_threads; ++id)
    workers_.emplace_back([this, id] { worker_loop(id); });
}

thread_pool::~thread_pool() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void thread_pool::chunk(std::size_t n, int tid, std::size_t& begin,
                        std::size_t& end) const {
  const auto t = static_cast<std::size_t>(num_threads_);
  const std::size_t base = n / t, rem = n % t;
  const auto u = static_cast<std::size_t>(tid);
  begin = u * base + std::min(u, rem);
  end = begin + base + (u < rem ? 1 : 0);
}

void thread_pool::worker_loop(int id) {
  std::uint64_t seen = 0;
  for (;;) {
    range_thunk rfn = nullptr;
    thread_thunk tfn = nullptr;
    void* ctx = nullptr;
    std::function<void()> task;
    std::size_t n = 0;
    bool fork_join = false;
    {
      std::unique_lock<std::mutex> lk(mutex_);
      cv_start_.wait(lk, [&] {
        return shutdown_ || generation_ != seen || !async_queue_.empty();
      });
      if (generation_ != seen) {
        // A fork-join dispatch takes priority so run() latency stays low.
        fork_join = true;
        seen = generation_;
        rfn = range_fn_;
        tfn = thread_fn_;
        ctx = task_ctx_;
        n = task_n_;
      } else if (!async_queue_.empty()) {
        task = pick_queued_locked();
      } else {
        return;  // shutdown with a drained queue
      }
    }
    try {
      if (fork_join) {
        if (rfn != nullptr) {
          std::size_t b, e;
          chunk(n, id, b, e);
          if (b < e) rfn(ctx, b, e);
        } else if (tfn != nullptr) {
          tfn(ctx, id);
        }
      } else {
        task();
      }
    } catch (...) {
      // An exception escaping a worker thread would std::terminate the
      // whole process; capture the first one for the calling thread.
      std::lock_guard<std::mutex> lk(mutex_);
      if (!error_) error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lk(mutex_);
      if (fork_join) {
        if (--pending_ == 0) cv_done_.notify_all();
      } else {
        ++async_completed_;
        cv_done_.notify_all();
      }
    }
  }
}

void thread_pool::dispatch_and_wait() {
  // Caller participates as thread 0.
  try {
    if (range_fn_ != nullptr) {
      std::size_t b, e;
      chunk(task_n_, 0, b, e);
      if (b < e) range_fn_(task_ctx_, b, e);
    } else if (thread_fn_ != nullptr) {
      thread_fn_(task_ctx_, 0);
    }
  } catch (...) {
    std::lock_guard<std::mutex> lk(mutex_);
    if (!error_) error_ = std::current_exception();
  }
  std::unique_lock<std::mutex> lk(mutex_);
  cv_done_.wait(lk, [&] { return pending_ == 0; });
  range_fn_ = nullptr;
  thread_fn_ = nullptr;
  task_ctx_ = nullptr;
  // Rethrow only after the barrier, when every worker is parked again and
  // the pool is reusable.
  if (error_) {
    auto err = error_;
    error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void thread_pool::run_erased(std::size_t n, range_thunk fn, void* ctx) {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    range_fn_ = fn;
    thread_fn_ = nullptr;
    task_ctx_ = ctx;
    task_n_ = n;
    pending_ = num_threads_ - 1;
    ++generation_;
  }
  cv_start_.notify_all();
  dispatch_and_wait();
}

std::function<void()> thread_pool::pick_queued_locked() {
  // Single queued task (the common pencil-pipelining case): no scheduling
  // decision to make.
  if (async_queue_.size() == 1) {
    queued_task t = std::move(async_queue_.front());
    async_queue_.pop_front();
    return std::move(t.fn);
  }
  // Highest priority level first.
  int best_prio = async_queue_.front().priority;
  for (const queued_task& t : async_queue_) best_prio = std::max(best_prio, t.priority);
  // Among that level's tenants, serve the least recently served one; a
  // tenant never served before beats any that has, and ties fall back to
  // submission order. Only each tenant's *first* queued task is a
  // candidate, so one tenant's order stays FIFO.
  auto served_at = [&](std::uint64_t tenant) -> std::uint64_t {
    for (const tenant_service& s : tenant_service_)
      if (s.tenant == tenant) return s.served_at;
    return 0;  // never served
  };
  std::size_t best = async_queue_.size();
  std::uint64_t best_served = 0;
  std::uint64_t seen_tenants[16];  // small-queue fast path for dedup
  std::size_t nseen = 0;
  std::vector<std::uint64_t> seen_overflow;
  for (std::size_t i = 0; i < async_queue_.size(); ++i) {
    const queued_task& t = async_queue_[i];
    if (t.priority != best_prio) continue;
    bool first_of_tenant = true;
    for (std::size_t j = 0; j < nseen && first_of_tenant; ++j)
      if (seen_tenants[j] == t.tenant) first_of_tenant = false;
    for (std::size_t j = 0; j < seen_overflow.size() && first_of_tenant; ++j)
      if (seen_overflow[j] == t.tenant) first_of_tenant = false;
    if (!first_of_tenant) continue;
    if (nseen < 16)
      seen_tenants[nseen++] = t.tenant;
    else
      seen_overflow.push_back(t.tenant);
    const std::uint64_t sa = served_at(t.tenant);
    if (best == async_queue_.size() || sa < best_served) {
      best = i;
      best_served = sa;
    }
  }
  queued_task chosen = std::move(async_queue_[best]);
  async_queue_.erase(async_queue_.begin() + static_cast<std::ptrdiff_t>(best));
  ++service_clock_;
  bool found = false;
  for (tenant_service& s : tenant_service_)
    if (s.tenant == chosen.tenant) {
      s.served_at = service_clock_;
      found = true;
      break;
    }
  if (!found) tenant_service_.push_back({chosen.tenant, service_clock_});
  return std::move(chosen.fn);
}

thread_pool::ticket thread_pool::submit(std::function<void()> fn) {
  return submit(std::move(fn), task_options{});
}

std::size_t thread_pool::cancel_tenant(std::uint64_t tenant) {
  std::size_t dropped = 0;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    for (auto it = async_queue_.begin(); it != async_queue_.end();) {
      if (it->tenant == tenant) {
        it = async_queue_.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
    async_completed_ += dropped;
  }
  if (dropped > 0) cv_done_.notify_all();
  return dropped;
}

thread_pool::ticket thread_pool::submit(std::function<void()> fn,
                                        const task_options& opt) {
  if (num_threads_ == 1) {
    // Serial fallback: run inline so a 1-thread pool needs no workers, with
    // the same deferred-exception contract as the queued path.
    ticket t;
    {
      std::lock_guard<std::mutex> lk(mutex_);
      t = ++async_submitted_;
    }
    try {
      fn();
    } catch (...) {
      std::lock_guard<std::mutex> lk(mutex_);
      if (!error_) error_ = std::current_exception();
    }
    std::lock_guard<std::mutex> lk(mutex_);
    ++async_completed_;
    return t;
  }
  ticket t;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    t = ++async_submitted_;
    async_queue_.push_back({std::move(fn), opt.priority, opt.tenant, t});
  }
  cv_start_.notify_all();
  return t;
}

void thread_pool::wait_submitted(ticket t) {
  std::unique_lock<std::mutex> lk(mutex_);
  cv_done_.wait(lk, [&] { return async_completed_ >= t; });
  if (error_) {
    auto err = error_;
    error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void thread_pool::wait_submitted() {
  std::unique_lock<std::mutex> lk(mutex_);
  cv_done_.wait(lk, [&] { return async_completed_ >= async_submitted_; });
  if (error_) {
    auto err = error_;
    error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void thread_pool::run_per_thread_erased(thread_thunk fn, void* ctx) {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    range_fn_ = nullptr;
    thread_fn_ = fn;
    task_ctx_ = ctx;
    task_n_ = 0;
    pending_ = num_threads_ - 1;
    ++generation_;
  }
  cv_start_.notify_all();
  dispatch_and_wait();
}

}  // namespace pcf
