// Error handling: PCF_REQUIRE for recoverable precondition violations
// (throws), PCF_ASSERT for internal invariants (aborts in debug builds).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pcf {

/// Exception thrown on violated preconditions in the public API.
class precondition_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Exception thrown when a numerical routine fails (e.g. singular matrix).
class numerical_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": requirement failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw precondition_error(os.str());
}
}  // namespace detail

}  // namespace pcf

#define PCF_REQUIRE(expr, msg)                                              \
  do {                                                                      \
    if (!(expr))                                                            \
      ::pcf::detail::throw_precondition(#expr, __FILE__, __LINE__, (msg));  \
  } while (0)

#ifdef NDEBUG
#define PCF_ASSERT(expr) ((void)0)
#else
#include <cassert>
#define PCF_ASSERT(expr) assert(expr)
#endif
