// Preallocated scratch arena for the DNS hot loop.
//
// The RK3 substage must run without touching the heap (the paper's
// production runs spend days inside it; an allocator call per mode per
// substep is both a latency and a jitter hazard at 786K cores). All
// per-substage scratch therefore comes from a `field_workspace`: a set of
// bump-allocated lanes sized ONCE at construction. A lane hands out
// 64-byte-aligned blocks; a `workspace_lane::scope` releases everything
// allocated after it in LIFO order when it leaves scope.
//
// Lifetime rules:
//   * Permanent blocks (alive for the simulation's lifetime) are allocated
//     during construction, before any scope is opened.
//   * Transient blocks are allocated under a `scope`; nesting is LIFO.
//   * A lane is single-threaded: concurrent stages use distinct lanes
//     (one shared lane for serial sections, one lane per pool thread).
//   * Capacity is fixed; exceeding it throws (precondition_error) rather
//     than growing, so sizing bugs surface immediately instead of as a
//     silent mid-run allocation.
// Debug builds (!NDEBUG) poison released regions with 0xAB so use-after-
// release / overlapping-scope bugs read as NaN-like garbage instead of
// stale-but-plausible data.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstring>
#include <vector>

#include "util/aligned.hpp"
#include "util/check.hpp"

namespace pcf {

/// One bump-allocated scratch lane over a fixed 64-byte-aligned slab.
class workspace_lane {
 public:
  workspace_lane() = default;
  workspace_lane(const workspace_lane&) = delete;
  workspace_lane& operator=(const workspace_lane&) = delete;
  workspace_lane(workspace_lane&&) noexcept = default;
  workspace_lane& operator=(workspace_lane&&) noexcept = default;

  /// Size the slab. Only legal while nothing is checked out (construction
  /// time); existing contents are discarded.
  void reserve_bytes(std::size_t bytes) {
    PCF_REQUIRE(top_ == 0 && live_scopes_ == 0,
                "workspace lane resized while blocks are checked out");
    slab_.reset(bytes);
    peak_ = 0;
  }

  /// Check out `count` objects of T (64-byte aligned, uninitialized).
  /// The block stays valid until the enclosing scope (if any) is released;
  /// blocks allocated outside any scope are permanent.
  template <class T>
  [[nodiscard]] T* alloc(std::size_t count) {
    const std::size_t at = (top_ + kAlignment - 1) / kAlignment * kAlignment;
    const std::size_t bytes = count * sizeof(T);
    PCF_REQUIRE(at + bytes <= slab_.size(),
                "workspace lane overflow: lanes are sized once at "
                "construction; grow the capacity estimate");
    top_ = at + bytes;
    peak_ = std::max(peak_, top_);
    return reinterpret_cast<T*>(slab_.data() + at);
  }

  /// RAII release point: restores the bump pointer to where it was at
  /// construction, freeing every block allocated since — including during
  /// stack unwinding, so a throwing stage leaves the lane exactly as it
  /// found it and the post-recovery step starts from a clean arena. Must
  /// be destroyed in LIFO order relative to other scopes on the same lane
  /// (asserted in debug builds).
  class scope {
   public:
    explicit scope(workspace_lane& lane)
        : lane_(&lane), saved_(lane.top_), depth_(++lane.live_scopes_) {}
    ~scope() {
      assert(lane_->live_scopes_ == depth_ &&
             "workspace scopes released out of LIFO order");
      --lane_->live_scopes_;
#ifndef NDEBUG
      // Poison the released region: a stage holding a pointer past its
      // scope now reads 0xAB garbage instead of plausible stale data.
      if (lane_->top_ > saved_)
        std::memset(lane_->slab_.data() + saved_, 0xAB, lane_->top_ - saved_);
#endif
      lane_->top_ = saved_;
    }
    scope(const scope&) = delete;
    scope& operator=(const scope&) = delete;

   private:
    workspace_lane* lane_;
    std::size_t saved_;
    int depth_;
  };

  [[nodiscard]] std::size_t capacity_bytes() const { return slab_.size(); }
  [[nodiscard]] std::size_t used_bytes() const { return top_; }
  /// High-water mark since reserve_bytes() — for sizing reports.
  [[nodiscard]] std::size_t peak_bytes() const { return peak_; }
  /// Scopes currently open on this lane (zero at step boundaries).
  [[nodiscard]] int live_scopes() const { return live_scopes_; }

 private:
  aligned_buffer<unsigned char> slab_;
  std::size_t top_ = 0;
  std::size_t peak_ = 0;
  int live_scopes_ = 0;
};

/// The unified scratch arena shared by every stage of the simulation:
///   * shared()     — serial-section scratch (observables, mean flow,
///                    substep-lifetime fields like hU/hW);
///   * thread(tid)  — per-advance-pool-thread scratch (mode-loop lines);
///   * transform()  — the pencil kernel's ping-pong transpose/FFT buffers.
/// Capacities are fixed at construction; see workspace_lane for the
/// checkout rules.
class field_workspace {
 public:
  struct sizes {
    std::size_t shared_bytes = 0;
    std::size_t thread_bytes = 0;  // per thread lane
    std::size_t transform_bytes = 0;
    int num_threads = 1;
  };

  explicit field_workspace(const sizes& s)
      : threads_(static_cast<std::size_t>(s.num_threads > 0 ? s.num_threads
                                                            : 1)) {
    shared_.reserve_bytes(s.shared_bytes);
    transform_.reserve_bytes(s.transform_bytes);
    for (auto& t : threads_) t.reserve_bytes(s.thread_bytes);
  }

  [[nodiscard]] workspace_lane& shared() { return shared_; }
  [[nodiscard]] workspace_lane& transform() { return transform_; }
  [[nodiscard]] workspace_lane& thread(std::size_t tid) {
    return threads_[tid];
  }
  [[nodiscard]] std::size_t num_thread_lanes() const {
    return threads_.size();
  }

  [[nodiscard]] std::size_t total_bytes() const {
    std::size_t b = shared_.capacity_bytes() + transform_.capacity_bytes();
    for (const auto& t : threads_) b += t.capacity_bytes();
    return b;
  }

 private:
  workspace_lane shared_;
  workspace_lane transform_;
  std::vector<workspace_lane> threads_;
};

namespace core {
using pcf::field_workspace;  // the DNS names it core::field_workspace
using pcf::workspace_lane;
}  // namespace core

}  // namespace pcf
