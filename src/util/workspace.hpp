// Preallocated scratch arena for the DNS hot loop.
//
// The RK3 substage must run without touching the heap (the paper's
// production runs spend days inside it; an allocator call per mode per
// substep is both a latency and a jitter hazard at 786K cores). All
// per-substage scratch therefore comes from a `field_workspace`: a set of
// bump-allocated lanes sized ONCE at construction. A lane hands out
// 64-byte-aligned blocks; a `workspace_lane::scope` releases everything
// allocated after it in LIFO order when it leaves scope.
//
// Slab backing comes in two regimes:
//   * OWNED  — reserve_bytes(): the lane owns an aligned_buffer slab for
//     its whole lifetime (the original, one-simulation arena).
//   * POOLED — lease_bytes(): the slab is a lease of fixed-size blocks
//     from a pcf::block_pool. release_slab() hands the blocks back (a
//     suspended simulation's footprint drops to its evolved state) and
//     reacquire_slab() leases again — possibly DIFFERENT blocks, so every
//     pointer previously handed out is dead and permanent checkouts must
//     be re-established in their original order (same offsets, new base).
//
// Lifetime rules:
//   * Permanent blocks (alive for the simulation's lifetime) are allocated
//     during construction, before any scope is opened.
//   * Transient blocks are allocated under a `scope`; nesting is LIFO.
//   * A lane is single-threaded: concurrent stages use distinct lanes
//     (one shared lane for serial sections, one lane per pool thread).
//   * Capacity is fixed; exceeding it throws (precondition_error) rather
//     than growing, so sizing bugs surface immediately instead of as a
//     silent mid-run allocation.
// Debug builds (!NDEBUG) poison released regions with 0xAB so use-after-
// release / overlapping-scope bugs read as NaN-like garbage instead of
// stale-but-plausible data — including across a release/reacquire cycle
// (the pool poisons released blocks, the lane poisons fresh slabs).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "util/aligned.hpp"
#include "util/block_pool.hpp"
#include "util/check.hpp"

namespace pcf {

/// One bump-allocated scratch lane over a fixed 64-byte-aligned slab.
class workspace_lane {
 public:
  workspace_lane() = default;
  ~workspace_lane() { drop_backing_(); }
  workspace_lane(const workspace_lane&) = delete;
  workspace_lane& operator=(const workspace_lane&) = delete;
  // Explicit moves: the source must come back empty (no stale slab
  // pointer, no doubly released lease) and stay reusable — reserve or
  // lease it again before the next checkout.
  workspace_lane(workspace_lane&& o) noexcept { move_from_(o); }
  workspace_lane& operator=(workspace_lane&& o) noexcept {
    if (this != &o) {
      drop_backing_();
      move_from_(o);
    }
    return *this;
  }

  /// Size the slab (OWNED regime). Only legal while nothing is checked
  /// out (construction time); existing contents are discarded.
  void reserve_bytes(std::size_t bytes) {
    PCF_REQUIRE(top_ == 0 && live_scopes_ == 0,
                "workspace lane resized while blocks are checked out");
    drop_backing_();
    pool_ = nullptr;
    wanted_ = bytes;
    owned_.reset(bytes);
    data_ = owned_.data();
    size_ = bytes;
    peak_ = 0;
    released_ = false;
  }

  /// Back the slab by a block-pool lease (POOLED regime): capacity is
  /// `bytes` rounded up to whole pool blocks. Same checkout-free
  /// precondition as reserve_bytes. The pool must outlive the lane.
  void lease_bytes(block_pool& pool, std::size_t bytes) {
    PCF_REQUIRE(top_ == 0 && live_scopes_ == 0,
                "workspace lane re-leased while blocks are checked out");
    drop_backing_();
    pool_ = &pool;
    wanted_ = bytes;
    lease_ = pool.acquire(bytes);
    data_ = lease_.data();
    size_ = lease_.bytes();
    peak_ = 0;
    released_ = false;
    poison_fresh_();
  }

  /// Give the slab back (suspend). Requires every scope closed; permanent
  /// checkouts die with the slab and must be re-established after
  /// reacquire_slab(). Pooled lanes return their blocks to the pool;
  /// owned lanes free the buffer. Idempotent.
  void release_slab() {
    PCF_REQUIRE(live_scopes_ == 0,
                "workspace lane released while scopes are open");
    if (released_) return;
    if (pool_ != nullptr)
      pool_->release(lease_);
    else
      owned_.reset(0);
    data_ = nullptr;
    size_ = 0;
    top_ = 0;
    released_ = true;
  }

  /// Re-establish the slab after release_slab() (resume): pooled lanes
  /// lease possibly different blocks of the same byte capacity, owned
  /// lanes reallocate. The bump pointer restarts at zero — permanent
  /// checkouts repeated in construction order land on their original
  /// offsets. peak_bytes() survives the cycle (it sizes future lanes).
  void reacquire_slab() {
    PCF_REQUIRE(released_, "reacquire_slab on a lane that was not released");
    if (pool_ != nullptr) {
      lease_ = pool_->acquire(wanted_);
      data_ = lease_.data();
      size_ = lease_.bytes();
    } else {
      owned_.reset(wanted_);
      data_ = owned_.data();
      size_ = wanted_;
    }
    released_ = false;
    poison_fresh_();
  }

  /// Check out `count` objects of T (64-byte aligned, uninitialized).
  /// The block stays valid until the enclosing scope (if any) is released;
  /// blocks allocated outside any scope are permanent.
  template <class T>
  [[nodiscard]] T* alloc(std::size_t count) {
    assert(!released_ && "workspace lane used while its slab is released");
    const std::size_t at = (top_ + kAlignment - 1) / kAlignment * kAlignment;
    // Overflow-safe capacity check: `at + count * sizeof(T)` can wrap for
    // a huge count and pass a direct comparison vacuously, so compare in
    // units of T against the space actually left.
    PCF_REQUIRE(at <= size_ && count <= (size_ - at) / sizeof(T),
                "workspace lane overflow: lanes are sized once at "
                "construction; grow the capacity estimate");
    top_ = at + count * sizeof(T);
    peak_ = std::max(peak_, top_);
    return reinterpret_cast<T*>(data_ + at);
  }

  /// RAII release point: restores the bump pointer to where it was at
  /// construction, freeing every block allocated since — including during
  /// stack unwinding, so a throwing stage leaves the lane exactly as it
  /// found it and the post-recovery step starts from a clean arena. Must
  /// be destroyed in LIFO order relative to other scopes on the same lane
  /// (asserted in debug builds).
  class scope {
   public:
    explicit scope(workspace_lane& lane)
        : lane_(&lane), saved_(lane.top_), depth_(++lane.live_scopes_) {}
    ~scope() {
      assert(lane_->live_scopes_ == depth_ &&
             "workspace scopes released out of LIFO order");
      --lane_->live_scopes_;
#ifndef NDEBUG
      // Poison the released region: a stage holding a pointer past its
      // scope now reads 0xAB garbage instead of plausible stale data.
      if (lane_->top_ > saved_)
        std::memset(lane_->data_ + saved_, 0xAB, lane_->top_ - saved_);
#endif
      lane_->top_ = saved_;
    }
    scope(const scope&) = delete;
    scope& operator=(const scope&) = delete;

   private:
    workspace_lane* lane_;
    std::size_t saved_;
    int depth_;
  };

  [[nodiscard]] std::size_t capacity_bytes() const { return size_; }
  [[nodiscard]] std::size_t used_bytes() const { return top_; }
  /// High-water mark since reserve/lease — for sizing reports; preserved
  /// across release/reacquire cycles.
  [[nodiscard]] std::size_t peak_bytes() const { return peak_; }
  /// Scopes currently open on this lane (zero at step boundaries).
  [[nodiscard]] int live_scopes() const { return live_scopes_; }
  /// True between release_slab() and reacquire_slab().
  [[nodiscard]] bool released() const { return released_; }
  /// True when the slab is (or will be, after reacquire) pool-leased.
  [[nodiscard]] bool pooled() const { return pool_ != nullptr; }

 private:
  void drop_backing_() {
    if (pool_ != nullptr) pool_->release(lease_);
    owned_.reset(0);
    data_ = nullptr;
    size_ = 0;
  }

  void move_from_(workspace_lane& o) {
    owned_ = std::move(o.owned_);
    pool_ = o.pool_;
    lease_ = o.lease_;
    data_ = o.data_;
    size_ = o.size_;
    top_ = o.top_;
    peak_ = o.peak_;
    wanted_ = o.wanted_;
    live_scopes_ = o.live_scopes_;
    released_ = o.released_;
    // Leave the source empty and reusable: its lease now belongs here.
    o.pool_ = nullptr;
    o.lease_ = {};
    o.data_ = nullptr;
    o.size_ = 0;
    o.top_ = 0;
    o.peak_ = 0;
    o.wanted_ = 0;
    o.live_scopes_ = 0;
    o.released_ = false;
  }

  void poison_fresh_() {
#ifndef NDEBUG
    if (size_ > 0) std::memset(data_, 0xAB, size_);
#endif
  }

  aligned_buffer<unsigned char> owned_;
  block_pool* pool_ = nullptr;
  block_pool::lease lease_;
  unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t top_ = 0;
  std::size_t peak_ = 0;
  std::size_t wanted_ = 0;  // requested capacity (reacquire re-leases this)
  int live_scopes_ = 0;
  bool released_ = false;
};

/// The unified scratch arena shared by every stage of the simulation:
///   * shared()     — serial-section scratch (observables, mean flow,
///                    substep-lifetime fields like hU/hW);
///   * thread(tid)  — per-advance-pool-thread scratch (mode-loop lines);
///   * transform()  — the pencil kernel's ping-pong transpose/FFT buffers.
/// Capacities are fixed at construction; see workspace_lane for the
/// checkout rules. Pass a block_pool to lease every lane's slab from it
/// instead of owning them — release()/reacquire() then cycle the whole
/// arena through the pool (the simulation's suspend/resume path).
class field_workspace {
 public:
  struct sizes {
    std::size_t shared_bytes = 0;
    std::size_t thread_bytes = 0;  // per thread lane
    std::size_t transform_bytes = 0;
    int num_threads = 1;
  };

  /// Capacity and high-water usage of one lane — the sizing-headroom
  /// report surfaced per stage in step_timings.
  struct lane_usage {
    std::string name;
    std::size_t capacity_bytes = 0;
    std::size_t peak_bytes = 0;
  };

  explicit field_workspace(const sizes& s, block_pool* pool = nullptr)
      : pool_(pool),
        threads_(static_cast<std::size_t>(s.num_threads > 0 ? s.num_threads
                                                            : 1)) {
    if (pool_ != nullptr) {
      shared_.lease_bytes(*pool_, s.shared_bytes);
      transform_.lease_bytes(*pool_, s.transform_bytes);
      for (auto& t : threads_) t.lease_bytes(*pool_, s.thread_bytes);
    } else {
      shared_.reserve_bytes(s.shared_bytes);
      transform_.reserve_bytes(s.transform_bytes);
      for (auto& t : threads_) t.reserve_bytes(s.thread_bytes);
    }
  }

  [[nodiscard]] workspace_lane& shared() { return shared_; }
  [[nodiscard]] workspace_lane& transform() { return transform_; }
  [[nodiscard]] workspace_lane& thread(std::size_t tid) {
    return threads_[tid];
  }
  [[nodiscard]] std::size_t num_thread_lanes() const {
    return threads_.size();
  }

  /// Suspend: every lane gives its slab back (pooled lanes return their
  /// blocks for other owners to recycle). All scopes must be closed.
  void release() {
    shared_.release_slab();
    transform_.release_slab();
    for (auto& t : threads_) t.release_slab();
  }

  /// Resume: every lane re-establishes a slab (pooled lanes lease
  /// possibly different blocks). Permanent checkouts must be repeated in
  /// construction order by the owners holding them.
  void reacquire() {
    shared_.reacquire_slab();
    transform_.reacquire_slab();
    for (auto& t : threads_) t.reacquire_slab();
  }

  [[nodiscard]] bool released() const { return shared_.released(); }
  [[nodiscard]] bool pooled() const { return pool_ != nullptr; }

  [[nodiscard]] std::size_t total_bytes() const {
    std::size_t b = shared_.capacity_bytes() + transform_.capacity_bytes();
    for (const auto& t : threads_) b += t.capacity_bytes();
    return b;
  }

  /// Per-lane capacity / high-water report (shared, transform, then one
  /// row per thread lane).
  [[nodiscard]] std::vector<lane_usage> usage() const {
    std::vector<lane_usage> u;
    u.push_back({"shared", shared_.capacity_bytes(), shared_.peak_bytes()});
    u.push_back(
        {"transform", transform_.capacity_bytes(), transform_.peak_bytes()});
    for (std::size_t t = 0; t < threads_.size(); ++t)
      u.push_back({"thread[" + std::to_string(t) + "]",
                   threads_[t].capacity_bytes(), threads_[t].peak_bytes()});
    return u;
  }

 private:
  block_pool* pool_ = nullptr;
  workspace_lane shared_;
  workspace_lane transform_;
  std::vector<workspace_lane> threads_;
};

namespace core {
using pcf::field_workspace;  // the DNS names it core::field_workspace
using pcf::workspace_lane;
}  // namespace core

}  // namespace pcf
