// Plain-text table formatting for the benchmark harness, so each bench
// binary can print rows in the same layout as the paper's tables.
#pragma once

#include <string>
#include <vector>

namespace pcf {

/// Accumulates rows of string cells and renders an aligned text table.
class text_table {
 public:
  explicit text_table(std::vector<std::string> header);

  /// Append one row; must have the same number of cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Render with column alignment and a header separator.
  [[nodiscard]] std::string str() const;

  /// Number formatting helpers used throughout the bench harness.
  static std::string fmt(double v, int precision = 3);
  static std::string fmt_pct(double fraction, int precision = 1);
  static std::string fmt_time(double seconds);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pcf
