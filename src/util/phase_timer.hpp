// Hierarchical per-stage phase timing, wired into util/counters.
//
// The paper's Tables 9-10 break a step into sections with MPI_Wtime();
// section_timer reproduces that flat view. The staged pipeline wants a
// *tree* — step > nonlinear > {velocities, to_physical, ...} — with each
// phase also attributing the flop/byte counts accumulated while it ran.
//
// Phases are registered once (add()) and identified by small integer ids,
// so start()/stop() in the hot loop are allocation-free: start() drains
// the thread-local counter buckets and snapshots the global total; stop()
// drains again and charges the delta to the phase. Parent phases therefore
// include their children in both wall time and operation counts.
//
// Caveat: the counter buckets are process-global, and vmpi ranks are
// threads of one process — in a multi-rank run another rank's pool may be
// mid-kernel while this rank drains, which is both a data race and
// nonsense attribution. Construct with track_ops = false there (the DNS
// does so automatically for world.size() > 1): start()/stop() then touch
// no counters and record wall time only.
#pragma once

#include <cassert>
#include <string>
#include <vector>

#include "util/counters.hpp"
#include "util/timer.hpp"

namespace pcf {

/// One row of the hierarchical breakdown.
struct phase_stats {
  std::string name;
  int parent = -1;  // index into the phase list, -1 for roots
  int depth = 0;
  double seconds = 0.0;
  long calls = 0;
  op_counts ops;
};

class phase_timer {
 public:
  using id = int;

  /// @param track_ops attribute flop/byte counters to phases (single-rank
  ///                  only; see the file comment).
  explicit phase_timer(bool track_ops = true) : track_ops_(track_ops) {}

  /// Register a phase under `parent` (-1 for a root). Registration is
  /// construction-time only; ids are stable for the timer's lifetime.
  id add(const std::string& name, id parent = -1) {
    phase_stats p;
    p.name = name;
    p.parent = parent;
    p.depth = parent < 0 ? 0 : phases_[static_cast<std::size_t>(parent)].depth + 1;
    phases_.push_back(p);
    live_.push_back(live{});
    return static_cast<id>(phases_.size() - 1);
  }

  /// Begin timing a phase. Allocation-free. Phases may nest (a child
  /// starting inside its parent); one phase must not be started twice
  /// concurrently.
  void start(id p) {
    auto& l = live_[static_cast<std::size_t>(p)];
    assert(!l.running && "phase started twice without an intervening stop");
    l.running = true;
    ++open_;
    if (track_ops_) {
      counters::drain();
      l.mark = counters::total();
    }
    l.t.restart();
  }

  /// End timing; charges wall seconds and the counter delta since start().
  void stop(id p) {
    auto& l = live_[static_cast<std::size_t>(p)];
    auto& s = phases_[static_cast<std::size_t>(p)];
    assert(l.running && "phase stopped without a matching start");
    l.running = false;
    --open_;
    s.seconds += l.t.seconds();
    if (track_ops_) {
      counters::drain();
      const op_counts now = counters::total();
      s.ops.flops += now.flops - l.mark.flops;
      s.ops.bytes_read += now.bytes_read - l.mark.bytes_read;
      s.ops.bytes_written += now.bytes_written - l.mark.bytes_written;
    }
    ++s.calls;
  }

  /// RAII start/stop.
  class section {
   public:
    section(phase_timer& t, id p) : t_(&t), p_(p) { t.start(p); }
    ~section() { t_->stop(p_); }
    section(const section&) = delete;
    section& operator=(const section&) = delete;

   private:
    phase_timer* t_;
    id p_;
  };

  [[nodiscard]] const std::vector<phase_stats>& phases() const {
    return phases_;
  }

  /// Number of phases currently between start() and stop(). Zero at every
  /// step boundary; a nonzero value there means an unbalanced start/stop
  /// pair (the debug asserts in start()/stop() catch the usual culprits).
  [[nodiscard]] int open_phases() const { return open_; }

  /// Zero every phase's accumulation; the registered tree is kept. Resets
  /// are step-boundary operations: no phase may still be open.
  void reset() {
    assert(open_ == 0 && "phase timer reset with a phase still open");
    for (auto& p : phases_) {
      p.seconds = 0.0;
      p.calls = 0;
      p.ops = op_counts{};
    }
  }

 private:
  struct live {
    wall_timer t;
    op_counts mark;
    bool running = false;
  };
  bool track_ops_ = true;
  int open_ = 0;
  std::vector<phase_stats> phases_;
  std::vector<live> live_;
};

}  // namespace pcf
