// Persistent worker pool for on-node threading.
//
// The paper threads three functions with OpenMP — batched FFTs, the N-S
// time-advance line solves, and the on-node transpose reorder — with a
// *different* degree of parallelism for each (Section 4.2). A pool with an
// explicit thread count models that directly and keeps the threading bench
// (Table 3/4) independent of the OpenMP runtime's global state.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace pcf {

/// Fixed-size pool executing static contiguous-chunk parallel loops.
/// Thread 0 is the calling thread, so `thread_pool(1)` is serial with no
/// synchronization overhead in the loop body.
class thread_pool {
 public:
  /// @param num_threads total workers including the caller; >= 1.
  explicit thread_pool(int num_threads);
  ~thread_pool();

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  [[nodiscard]] int num_threads() const { return num_threads_; }

  /// Execute fn(begin, end) over a static partition of [0, n) into
  /// num_threads contiguous chunks. Blocks until every chunk completes.
  /// If chunks throw, every chunk still runs to completion (or throws),
  /// and the first captured exception is rethrown on the calling thread —
  /// an exception escaping a worker thread would otherwise std::terminate
  /// the process.
  ///
  /// The callable is kept on the caller's stack and dispatched through a
  /// function pointer + context, so run() never heap-allocates — required
  /// by the RK3 substage's zero-allocation contract (every hot pencil /
  /// advance loop goes through here with a capturing lambda).
  template <class F>
  void run(std::size_t n, F&& fn) {
    using Fn = std::remove_reference_t<F>;
    if (num_threads_ == 1 || n <= 1) {
      if (n > 0) fn(0, n);
      return;
    }
    run_erased(
        n,
        [](void* ctx, std::size_t b, std::size_t e) {
          (*static_cast<Fn*>(ctx))(b, e);
        },
        const_cast<void*>(static_cast<const void*>(std::addressof(fn))));
  }

  /// Execute fn(thread_id) once on every thread (for per-thread setup).
  /// Same exception contract (and zero-allocation dispatch) as run().
  template <class F>
  void run_per_thread(F&& fn) {
    using Fn = std::remove_reference_t<F>;
    if (num_threads_ == 1) {
      fn(0);
      return;
    }
    run_per_thread_erased(
        [](void* ctx, int tid) { (*static_cast<Fn*>(ctx))(tid); },
        const_cast<void*>(static_cast<const void*>(std::addressof(fn))));
  }

  /// Ticket identifying a task handed to submit(); strictly increasing in
  /// submission order.
  using ticket = std::uint64_t;

  /// Scheduling attributes of a submitted task. The defaults reproduce the
  /// historical single-consumer FIFO queue exactly: one tenant, one
  /// priority level, strict submission order.
  struct task_options {
    /// Higher priorities start first. Within one priority level tenants
    /// are served round-robin (see below).
    int priority = 0;
    /// Fairness domain. The queue serves tenants of the top priority
    /// level in least-recently-served order, one task at a time, so a
    /// tenant with a thousand queued tasks cannot starve a tenant with
    /// one — the property the campaign scheduler's time slicing relies
    /// on. Tasks of one tenant at one priority still start in FIFO order.
    std::uint64_t tenant = 0;
  };

  /// Enqueue fn for execution on a pool worker and return immediately
  /// (submit-without-join) — the caller keeps computing while the task
  /// runs. With default options tasks start in FIFO order; with exactly
  /// one worker (a pool of two threads) they also *complete* in FIFO
  /// order, which is what the comm/compute pipelining in the pencil
  /// kernel relies on. On a single-thread pool the task runs inline
  /// (serial fallback). A task exception is captured and rethrown by the
  /// next wait_submitted().
  ticket submit(std::function<void()> fn);
  ticket submit(std::function<void()> fn, const task_options& opt);

  /// Drop every still-queued task of `tenant` (tasks already running are
  /// not interrupted — the campaign layer checks its own cancel flag
  /// between time slices). Dropped tasks count as completed so pending
  /// wait_submitted() calls can make progress; returns how many were
  /// dropped.
  std::size_t cancel_tenant(std::uint64_t tenant);

  /// Block until `t` submitted tasks have completed (exact ticket
  /// semantics under FIFO completion, i.e. default options and at most
  /// one worker; under priorities/cancellation it is a completed-count
  /// threshold). Rethrows the first captured task exception.
  void wait_submitted(ticket t);

  /// Block until every submitted task has finished; same exception
  /// contract.
  void wait_submitted();

 private:
  // Type-erased fork-join dispatch (the callable lives on the caller's
  // stack for the duration of the barrier, so a raw pointer is safe).
  using range_thunk = void (*)(void*, std::size_t, std::size_t);
  using thread_thunk = void (*)(void*, int);
  void run_erased(std::size_t n, range_thunk fn, void* ctx);
  void run_per_thread_erased(thread_thunk fn, void* ctx);

  void worker_loop(int id);

  int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  // Task state, guarded by mutex_.
  range_thunk range_fn_ = nullptr;
  thread_thunk thread_fn_ = nullptr;
  void* task_ctx_ = nullptr;
  std::size_t task_n_ = 0;
  std::uint64_t generation_ = 0;
  int pending_ = 0;
  bool shutdown_ = false;
  std::exception_ptr error_;  // first exception thrown by any chunk
  // Submit-without-join queue, guarded by mutex_. Workers drain it between
  // fork-join generations (and before exiting on shutdown), picking the
  // highest-priority task and rotating fairly across tenants within a
  // priority level (pick_queued_locked).
  struct queued_task {
    std::function<void()> fn;
    int priority = 0;
    std::uint64_t tenant = 0;
    std::uint64_t seq = 0;  // submission order, for FIFO within a tenant
  };
  std::deque<queued_task> async_queue_;
  std::uint64_t async_submitted_ = 0;
  std::uint64_t async_completed_ = 0;
  // Tenant fairness state: when each tenant was last handed a task, in
  // service-counter ticks (absent = never served).
  struct tenant_service {
    std::uint64_t tenant = 0;
    std::uint64_t served_at = 0;
  };
  std::vector<tenant_service> tenant_service_;
  std::uint64_t service_clock_ = 0;

  std::function<void()> pick_queued_locked();

  void chunk(std::size_t n, int tid, std::size_t& begin, std::size_t& end) const;
  void dispatch_and_wait();
};

}  // namespace pcf
