// Process-wide pooled block allocator for leasable workspace arenas.
//
// The workspace arena (util/workspace.hpp) sizes every lane ONCE and the
// hot loop never allocates — but a one-simulation arena owns its
// full-footprint slabs for the simulation's whole lifetime, which is
// exactly wrong for a campaign server time-slicing many queued runs under
// a bounded memory budget. This pool makes arena storage *leasable*:
//
//   * Memory is carved into fixed-size, 64-byte-aligned BLOCKS inside
//     large SEGMENTS (mmap'd, optionally hugepage-backed). A per-segment
//     free-line bitmap (one bit per block, gclib-style) tracks occupancy;
//     a lease is a contiguous run of blocks found first-fit in the maps.
//   * Leases recycle across owners: a suspended simulation releases its
//     blocks and a resuming one (the same or any other) reacquires
//     possibly different blocks. Released regions are 0xAB-poisoned in
//     debug builds, same discipline as the workspace lanes.
//   * A per-thread block cache parks released runs so concurrent lane
//     setup (campaign workers building/resuming simulations in parallel)
//     reacquires without touching the pool mutex; cached blocks stay
//     marked used in the bitmaps and return to them on flush.
//   * Telemetry per gclib's hole counting: blocks leased/cached/total,
//     high-water marks, interior fragmentation holes, lease/release
//     counts, cache hits and cumulative lease latency — surfaced through
//     counters.hpp (counters::pool_totals) and the step-timing report.
//
// Segment backing tries, in order: mmap + MAP_HUGETLB (explicit
// hugepages), mmap + madvise(MADV_HUGEPAGE) (transparent), and finally
// std::aligned_alloc — each fallback silent, recorded only in the stats.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/aligned.hpp"

namespace pcf {

struct block_pool_config {
  /// Fixed block size; every lease is a contiguous run of whole blocks.
  /// Must be a positive multiple of kAlignment.
  std::size_t block_bytes = 64 * 1024;
  /// Blocks per segment (one mmap). A lease larger than a whole segment
  /// gets a dedicated segment sized for it.
  std::size_t segment_blocks = 64;
  /// Try hugepage backing for segments (silent fallback to small pages).
  bool hugepages = true;
  /// Per-thread cache capacity in blocks; 0 disables the caches.
  std::size_t thread_cache_blocks = 256;
};

class block_pool {
 public:
  /// A contiguous run of blocks checked out of the pool. Value-semantic
  /// handle; releasing it (or destroying the pool) invalidates the data
  /// pointer. A default-constructed lease is empty (zero-byte acquires
  /// return one).
  class lease {
   public:
    lease() = default;
    [[nodiscard]] unsigned char* data() const { return data_; }
    /// Capacity: the requested size rounded up to whole blocks.
    [[nodiscard]] std::size_t bytes() const { return bytes_; }
    [[nodiscard]] std::size_t blocks() const { return count_; }
    [[nodiscard]] explicit operator bool() const { return data_ != nullptr; }

   private:
    friend class block_pool;
    unsigned char* data_ = nullptr;
    std::size_t bytes_ = 0;
    std::uint32_t seg_ = 0;
    std::uint32_t first_ = 0;
    std::uint32_t count_ = 0;
  };

  struct stats_t {
    std::uint64_t leases = 0;      // acquire() calls that returned blocks
    std::uint64_t releases = 0;
    std::uint64_t cache_hits = 0;  // acquires served by a thread cache
    /// Blocks returned to the bitmaps by the thread-exit hook: a worker
    /// that dies with runs parked in its per-thread cache flushes them
    /// back automatically, so a campaign's retired workers never strand
    /// pool capacity until someone calls flush_thread_caches() by hand.
    std::uint64_t exit_flushed_blocks = 0;
    std::size_t blocks_leased = 0; // currently checked out
    std::size_t blocks_cached = 0; // parked in thread caches
    std::size_t blocks_total = 0;  // backed by live segments
    std::size_t blocks_peak = 0;   // high-water of leased + cached
    /// Interior fragmentation: maximal free runs that end at a used
    /// block (a trailing free run can still grow rightward and is not a
    /// hole). Computed on demand from the bitmaps.
    std::size_t holes = 0;
    std::size_t segments = 0;
    std::size_t hugepage_segments = 0;  // of those, MAP_HUGETLB-backed
    std::uint64_t lease_ns = 0;         // cumulative wall time in acquire()
  };

  explicit block_pool(const block_pool_config& cfg = {});
  ~block_pool();
  block_pool(const block_pool&) = delete;
  block_pool& operator=(const block_pool&) = delete;

  /// Check out a contiguous run of blocks covering at least `min_bytes`
  /// (rounded up to whole blocks; 64-byte aligned). min_bytes == 0
  /// returns an empty lease. Grows a new segment when no free run fits.
  [[nodiscard]] lease acquire(std::size_t min_bytes);

  /// Return a lease's blocks (to the calling thread's cache when it has
  /// room, else to the segment bitmaps). Poisons the run with 0xAB in
  /// debug builds. The lease becomes empty; releasing an empty lease is
  /// a no-op.
  void release(lease& l);

  /// Return every thread-cached run to the segment bitmaps (tests,
  /// trim() precision, shutdown).
  void flush_thread_caches();

  /// Unmap segments that are entirely free (flushes caches first so
  /// parked runs don't pin their segments).
  void trim();

  [[nodiscard]] stats_t stats() const;
  [[nodiscard]] const block_pool_config& config() const { return cfg_; }

  /// The process-wide pool every pooled field_workspace leases from.
  static block_pool& global();

 private:
  struct impl;
  impl* p_;
  block_pool_config cfg_;
};

}  // namespace pcf
