// Process-wide shared FFT plan cache.
//
// Plans are immutable after construction and thread-safe to execute
// (fft.hpp), so N concurrent simulations transforming the same lengths can
// share one plan object instead of each paying the twiddle/bit-reversal
// table construction — exactly the CaNS observation (PAPERS.md,
// arXiv:1802.10323) that a many-run campaign amortizes its solver setup
// through shared caches. The pencil kernel leases its z/x-line plans from
// here, so a campaign sweep of identical grids builds each plan once and
// the per-instance cost is a refcount bump.
//
// Entries are held by shared_ptr: the cache keeps plans alive across
// sequential runs (a resumed or readmitted simulation re-hits), and
// trim() drops the ones no live kernel references when a campaign wants
// the memory back. Statistics feed the campaign report's cache-hit-rate
// figures.
#pragma once

#include <cstdint>
#include <memory>

#include "fft/fft.hpp"

namespace pcf::fft {

struct plan_cache_stats {
  std::uint64_t hits = 0;    // shared_* calls served by an existing plan
  std::uint64_t misses = 0;  // calls that had to construct
  std::size_t live = 0;      // plans currently in the cache
  std::size_t shared = 0;    // of those, referenced by >= 1 external holder
};

/// Lease a complex-to-complex plan of length n / direction d from the
/// process-wide cache (constructing on first use). Thread-safe; the
/// returned plan is safe to execute concurrently with every other holder.
[[nodiscard]] std::shared_ptr<const c2c_plan> shared_c2c(std::size_t n,
                                                         direction d);
/// Real-to-complex forward plan of length n (n even).
[[nodiscard]] std::shared_ptr<const r2c_plan> shared_r2c(std::size_t n);
/// Complex-to-real inverse plan of length n (n even).
[[nodiscard]] std::shared_ptr<const c2r_plan> shared_c2r(std::size_t n);

/// Snapshot of the cache counters (process-wide, all three plan kinds).
[[nodiscard]] plan_cache_stats plan_cache_statistics();

/// Drop cached plans no external holder references. Returns how many were
/// dropped. Plans still held by live kernels are untouched (and stay
/// shareable).
std::size_t plan_cache_trim();

}  // namespace pcf::fft
