#include <algorithm>
#include <cmath>
#include <numbers>

#include "fft/fft.hpp"
#include "fft/scratch.hpp"
#include "util/check.hpp"
#include "util/counters.hpp"

namespace pcf::fft {

namespace {

constexpr std::size_t kMaxButterflyRadix = 31;

using detail::scratch_arena;

double twopi() { return 2.0 * std::numbers::pi; }

}  // namespace

std::vector<std::size_t> factorize(std::size_t n) {
  PCF_REQUIRE(n >= 1, "factorize requires n >= 1");
  std::vector<std::size_t> f;
  for (std::size_t p = 2; p * p <= n; p += (p == 2 ? 1 : 2)) {
    while (n % p == 0) {
      f.push_back(p);
      n /= p;
    }
  }
  if (n > 1) f.push_back(n);
  return f;
}

bool is_smooth(std::size_t n) {
  auto f = factorize(n);
  return f.empty() || f.back() <= kMaxButterflyRadix;
}

void dft_naive(const cplx* in, cplx* out, std::size_t n, int sign) {
  PCF_REQUIRE(sign == 1 || sign == -1, "sign must be +1 or -1");
  for (std::size_t k = 0; k < n; ++k) {
    cplx acc{0.0, 0.0};
    for (std::size_t j = 0; j < n; ++j) {
      // Reduce j*k mod n before forming the angle to preserve accuracy.
      const double ang = sign * twopi() * static_cast<double>((j * k) % n) /
                         static_cast<double>(n);
      acc += in[j] * std::polar(1.0, ang);
    }
    out[k] = acc;
  }
}

// ---------------------------------------------------------------------------
// Mixed-radix engine
// ---------------------------------------------------------------------------

struct stage {
  std::size_t n = 0;     // transform length at this depth
  std::size_t r = 0;     // radix applied at this depth
  std::size_t m = 0;     // n / r
  // Twiddles in planar layout: tw[(q-1)*m + k2] = w_n^{q k2} for q in
  // 1..r-1 (the q = 0 factor is always 1 and not stored). Planar rather
  // than column-interleaved so the per-radix combine loops below read each
  // twiddle stream contiguously in k2 — the layout the compiler can
  // vectorize. The *values* are identical to the interleaved layout.
  std::vector<cplx> tw;
};

struct c2c_plan::impl {
  std::size_t n = 0;
  direction dir_ = direction::forward;
  double sign = -1.0;  // -1 forward, +1 inverse
  std::vector<stage> stages;
  // Root tables per distinct radix: roots[r][(q*k) % r] = w_r^{q k}.
  std::vector<std::vector<cplx>> radix_roots;  // indexed by radix value
  double flops = 0.0;

  // Bluestein state (only when n is not smooth).
  bool bluestein = false;
  std::size_t bl_m = 0;                 // padded power-of-two length
  std::vector<cplx> bl_chirp;           // a_j = exp(sign i pi j^2 / n)
  std::vector<cplx> bl_bhat;            // FFT_M of the chirp filter
  std::unique_ptr<c2c_plan> bl_fwd, bl_inv;

  void build(std::size_t len, direction d);
  void build_mixed_radix();
  void build_bluestein();
  void exec(std::size_t depth, const cplx* in, std::size_t istride,
            cplx* out) const;
  void exec_bluestein(const cplx* in, cplx* out) const;
  void run(const cplx* in, cplx* out) const;

  const cplx* roots(std::size_t r) const { return radix_roots[r].data(); }
};

void c2c_plan::impl::build(std::size_t len, direction d) {
  n = len;
  dir_ = d;
  sign = (d == direction::forward) ? -1.0 : 1.0;
  flops = (n > 1)
              ? 5.0 * static_cast<double>(n) * std::log2(static_cast<double>(n))
              : 0.0;
  if (n <= 1) return;
  if (is_smooth(n))
    build_mixed_radix();
  else
    build_bluestein();
}

void c2c_plan::impl::build_mixed_radix() {
  // Merge prime factors: pairs of 2s become radix-4 stages (the hot path
  // for the power-of-two-rich grid sizes used in the DNS).
  auto primes = factorize(n);
  std::vector<std::size_t> radices;
  std::size_t twos = 0;
  for (std::size_t p : primes) {
    if (p == 2)
      ++twos;
    else
      radices.push_back(p);
  }
  while (twos >= 2) {
    radices.push_back(4);
    twos -= 2;
  }
  if (twos == 1) radices.push_back(2);
  std::sort(radices.begin(), radices.end(), std::greater<>());

  radix_roots.assign(kMaxButterflyRadix + 1, {});
  std::size_t rem = n;
  for (std::size_t r : radices) {
    stage st;
    st.n = rem;
    st.r = r;
    st.m = rem / r;
    st.tw.resize(st.m * (r - 1));
    for (std::size_t k2 = 0; k2 < st.m; ++k2) {
      for (std::size_t q = 1; q < r; ++q) {
        const double ang = sign * twopi() *
                           static_cast<double>((q * k2) % st.n) /
                           static_cast<double>(st.n);
        st.tw[(q - 1) * st.m + k2] = std::polar(1.0, ang);
      }
    }
    if (radix_roots[r].empty()) {
      radix_roots[r].resize(r);
      for (std::size_t q = 0; q < r; ++q)
        radix_roots[r][q] =
            std::polar(1.0, sign * twopi() * static_cast<double>(q) /
                                static_cast<double>(r));
    }
    stages.push_back(std::move(st));
    rem /= r;
  }
  PCF_ASSERT(rem == 1);
}

void c2c_plan::impl::build_bluestein() {
  bluestein = true;
  bl_m = 1;
  while (bl_m < 2 * n - 1) bl_m <<= 1;
  bl_fwd = std::make_unique<c2c_plan>(bl_m, direction::forward);
  bl_inv = std::make_unique<c2c_plan>(bl_m, direction::inverse);

  bl_chirp.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    // j^2 mod 2n keeps the argument small for accuracy.
    const std::size_t j2 = (j * j) % (2 * n);
    bl_chirp[j] = std::polar(
        1.0, sign * std::numbers::pi * static_cast<double>(j2) /
                 static_cast<double>(n));
  }
  std::vector<cplx> b(bl_m, cplx{0.0, 0.0});
  for (std::size_t j = 0; j < n; ++j) {
    const cplx c = std::conj(bl_chirp[j]);
    b[j] = c;
    if (j != 0) b[bl_m - j] = c;
  }
  bl_bhat.resize(bl_m);
  bl_fwd->execute(b.data(), bl_bhat.data());
}

namespace {

/// Column butterfly: y[q] live at base[q*colstride], pre-twiddled values in
/// t[]. Specialized for radix 2/3/4; table-driven for other small primes.
/// Used for the m == 1 leaf stage and the generic-prime combine; the hot
/// m > 1 radix-2/3/4 combines run the widened per-stage loops in exec()
/// with the identical per-element arithmetic.
inline void butterfly(cplx* base, std::size_t colstride, const cplx* t,
                      std::size_t r, const cplx* roots, double sign) {
  switch (r) {
    case 2: {
      const cplx a = t[0], b = t[1];
      base[0] = a + b;
      base[colstride] = a - b;
      return;
    }
    case 3: {
      const double s3 = sign * 0.8660254037844386467637231707529362;  // sqrt(3)/2
      const cplx u = t[1] + t[2];
      const cplx v = t[1] - t[2];
      const cplx w = t[0] - 0.5 * u;
      const cplx iv{-s3 * v.imag(), s3 * v.real()};  // i * s3 * v
      base[0] = t[0] + u;
      base[colstride] = w + iv;
      base[2 * colstride] = w - iv;
      return;
    }
    case 4: {
      const cplx a = t[0] + t[2];
      const cplx b = t[0] - t[2];
      const cplx c = t[1] + t[3];
      const cplx d = t[1] - t[3];
      // forward (sign=-1): X1 = b - i d, X3 = b + i d
      const cplx id{-sign * d.imag(), sign * d.real()};  // sign * i * d
      base[0] = a + c;
      base[colstride] = b + id;
      base[2 * colstride] = a - c;
      base[3 * colstride] = b - id;
      return;
    }
    default: {
      for (std::size_t k = 0; k < r; ++k) {
        cplx acc = t[0];
        for (std::size_t q = 1; q < r; ++q) acc += t[q] * roots[(q * k) % r];
        base[k * colstride] = acc;
      }
      return;
    }
  }
}

}  // namespace

void c2c_plan::impl::exec(std::size_t depth, const cplx* in,
                          std::size_t istride, cplx* out) const {
  const stage& st = stages[depth];
  const std::size_t r = st.r;
  const std::size_t m = st.m;
  cplx t[kMaxButterflyRadix + 1];

  if (m == 1) {
    for (std::size_t q = 0; q < r; ++q) t[q] = in[q * istride];
    butterfly(out, 1, t, r, roots(r), sign);
    return;
  }

  for (std::size_t q = 0; q < r; ++q)
    exec(depth + 1, in + q * istride, istride * r, out + q * m);

  // Combine: columns k2 are independent, contiguous in memory for each
  // branch q (out + q*m + k2), and each twiddle stream tw[(q-1)*m + k2] is
  // contiguous in k2 — so the radix-specialized loops below vectorize
  // across columns. Per-element arithmetic (operand order and association)
  // is exactly the pre-restructure butterfly's, keeping results
  // bit-identical to the per-column implementation.
  const cplx* tw = st.tw.data();
  const double sg = sign;
  switch (r) {
    case 2: {
      cplx* c0 = out;
      cplx* c1 = out + m;
      for (std::size_t k2 = 0; k2 < m; ++k2) {
        const cplx a = c0[k2];
        const cplx b = c1[k2] * tw[k2];
        c0[k2] = a + b;
        c1[k2] = a - b;
      }
      break;
    }
    case 3: {
      cplx* c0 = out;
      cplx* c1 = out + m;
      cplx* c2 = out + 2 * m;
      const cplx* tw1 = tw;
      const cplx* tw2 = tw + m;
      const double s3 = sg * 0.8660254037844386467637231707529362;  // sqrt(3)/2
      for (std::size_t k2 = 0; k2 < m; ++k2) {
        const cplx t0 = c0[k2];
        const cplx t1 = c1[k2] * tw1[k2];
        const cplx t2 = c2[k2] * tw2[k2];
        const cplx u = t1 + t2;
        const cplx v = t1 - t2;
        const cplx w = t0 - 0.5 * u;
        const cplx iv{-s3 * v.imag(), s3 * v.real()};  // i * s3 * v
        c0[k2] = t0 + u;
        c1[k2] = w + iv;
        c2[k2] = w - iv;
      }
      break;
    }
    case 4: {
      cplx* c0 = out;
      cplx* c1 = out + m;
      cplx* c2 = out + 2 * m;
      cplx* c3 = out + 3 * m;
      const cplx* tw1 = tw;
      const cplx* tw2 = tw + m;
      const cplx* tw3 = tw + 2 * m;
      for (std::size_t k2 = 0; k2 < m; ++k2) {
        const cplx t0 = c0[k2];
        const cplx t1 = c1[k2] * tw1[k2];
        const cplx t2 = c2[k2] * tw2[k2];
        const cplx t3 = c3[k2] * tw3[k2];
        const cplx a = t0 + t2;
        const cplx b = t0 - t2;
        const cplx c = t1 + t3;
        const cplx d = t1 - t3;
        // forward (sign=-1): X1 = b - i d, X3 = b + i d
        const cplx id{-sg * d.imag(), sg * d.real()};  // sign * i * d
        c0[k2] = a + c;
        c1[k2] = b + id;
        c2[k2] = a - c;
        c3[k2] = b - id;
      }
      break;
    }
    default: {
      for (std::size_t k2 = 0; k2 < m; ++k2) {
        cplx* col = out + k2;
        t[0] = col[0];
        for (std::size_t q = 1; q < r; ++q)
          t[q] = col[q * m] * tw[(q - 1) * m + k2];
        butterfly(col, m, t, r, roots(r), sign);
      }
      break;
    }
  }
}

void c2c_plan::impl::exec_bluestein(const cplx* in, cplx* out) const {
  // Scratch comes from the per-thread arena: the two inner plan
  // executions below are out-of-place (they check nothing out), and even
  // a nested checkout could not invalidate u/uhat — the arena grows by
  // adding chunks, never by moving live ones (see fft/scratch.hpp).
  scratch_arena::scope sc(scratch_arena::tls());
  cplx* u = sc.alloc(bl_m);
  cplx* uhat = sc.alloc(bl_m);
  std::fill_n(u, bl_m, cplx{0.0, 0.0});
  for (std::size_t j = 0; j < n; ++j) u[j] = in[j] * bl_chirp[j];
  bl_fwd->execute(u, uhat);
  for (std::size_t j = 0; j < bl_m; ++j) uhat[j] *= bl_bhat[j];
  bl_inv->execute(uhat, u);
  const double inv_m = 1.0 / static_cast<double>(bl_m);
  for (std::size_t k = 0; k < n; ++k) out[k] = u[k] * inv_m * bl_chirp[k];
}

void c2c_plan::impl::run(const cplx* in, cplx* out) const {
  if (n == 0) return;
  if (n == 1) {
    out[0] = in[0];
    return;
  }
  if (bluestein) {
    exec_bluestein(in, out);
  } else if (in == out) {
    scratch_arena::scope sc(scratch_arena::tls());
    cplx* s = sc.alloc(n);
    std::copy_n(in, n, s);
    exec(0, s, 1, out);
  } else {
    exec(0, in, 1, out);
  }
  counters::add_flops(static_cast<std::uint64_t>(flops));
  counters::add_read(n * sizeof(cplx));
  counters::add_written(n * sizeof(cplx));
}

c2c_plan::c2c_plan(std::size_t n, direction dir) : impl_(new impl) {
  impl_->build(n, dir);
}
c2c_plan::~c2c_plan() = default;
c2c_plan::c2c_plan(c2c_plan&&) noexcept = default;
c2c_plan& c2c_plan::operator=(c2c_plan&&) noexcept = default;

std::size_t c2c_plan::size() const { return impl_->n; }
direction c2c_plan::dir() const { return impl_->dir_; }
double c2c_plan::flops_per_execute() const { return impl_->flops; }

void c2c_plan::execute(const cplx* in, cplx* out) const { impl_->run(in, out); }

void c2c_plan::execute_many(const cplx* in, std::size_t in_stride, cplx* out,
                            std::size_t out_stride, std::size_t count) const {
  for (std::size_t b = 0; b < count; ++b)
    impl_->run(in + b * in_stride, out + b * out_stride);
}

}  // namespace pcf::fft
