// Plan-based 1-D FFT library (the reproduction's substitute for FFTW 3.3).
//
// Supports any length: mixed-radix Cooley-Tukey with specialized radix
// 2/3/4 butterflies, table-driven butterflies for other primes <= 31, and
// a Bluestein chirp-z fallback for lengths containing larger prime
// factors. Forward transforms use exp(-i 2 pi j k / n); inverse transforms
// are unnormalized (a forward-inverse round trip scales by n), matching
// FFTW's convention.
//
// Plans are immutable after construction and safe to execute concurrently
// from multiple threads (scratch is per-call / thread-local), which is what
// lets the pencil kernel embed FFT calls inside threaded blocks exactly as
// the paper does with FFTW + OpenMP (Section 4.2).
#pragma once

#include <complex>
#include <cstddef>
#include <memory>
#include <vector>

namespace pcf::fft {

using cplx = std::complex<double>;

enum class direction { forward, inverse };

/// Complex-to-complex 1-D transform of fixed length.
class c2c_plan {
 public:
  c2c_plan(std::size_t n, direction dir);
  ~c2c_plan();
  c2c_plan(c2c_plan&&) noexcept;
  c2c_plan& operator=(c2c_plan&&) noexcept;
  c2c_plan(const c2c_plan&) = delete;
  c2c_plan& operator=(const c2c_plan&) = delete;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] direction dir() const;

  /// Transform `in` into `out` (both length n). `in == out` is allowed
  /// (an internal scratch copy is made); otherwise they must not overlap.
  void execute(const cplx* in, cplx* out) const;

  /// Transform `count` lines; line b starts at in + b*in_stride
  /// (out + b*out_stride) and is contiguous. Thread-safe.
  void execute_many(const cplx* in, std::size_t in_stride, cplx* out,
                    std::size_t out_stride, std::size_t count) const;

  /// Nominal flop count of one execution (5 n log2 n convention).
  [[nodiscard]] double flops_per_execute() const;

 private:
  struct impl;
  std::unique_ptr<impl> impl_;
};

/// Real-to-complex forward transform: n real inputs -> n/2 + 1 complex
/// outputs (indices 0..n/2; index n/2 is the Nyquist mode). n must be even.
class r2c_plan {
 public:
  explicit r2c_plan(std::size_t n);
  ~r2c_plan();
  r2c_plan(r2c_plan&&) noexcept;
  r2c_plan& operator=(r2c_plan&&) noexcept;
  r2c_plan(const r2c_plan&) = delete;
  r2c_plan& operator=(const r2c_plan&) = delete;

  [[nodiscard]] std::size_t size() const;

  void execute(const double* in, cplx* out) const;
  void execute_many(const double* in, std::size_t in_stride, cplx* out,
                    std::size_t out_stride, std::size_t count) const;

 private:
  struct impl;
  std::unique_ptr<impl> impl_;
};

/// Complex-to-real inverse transform: n/2 + 1 complex inputs -> n real
/// outputs, unnormalized (r2c followed by c2r scales by n). n must be even.
/// The imaginary parts of in[0] and in[n/2] are assumed zero.
class c2r_plan {
 public:
  explicit c2r_plan(std::size_t n);
  ~c2r_plan();
  c2r_plan(c2r_plan&&) noexcept;
  c2r_plan& operator=(c2r_plan&&) noexcept;
  c2r_plan(const c2r_plan&) = delete;
  c2r_plan& operator=(const c2r_plan&) = delete;

  [[nodiscard]] std::size_t size() const;

  void execute(const cplx* in, double* out) const;
  void execute_many(const cplx* in, std::size_t in_stride, double* out,
                    std::size_t out_stride, std::size_t count) const;

 private:
  struct impl;
  std::unique_ptr<impl> impl_;
};

/// O(n^2) reference DFT used by tests and as the generic-prime butterfly
/// oracle. Forward for sign = -1, inverse (unnormalized) for sign = +1.
void dft_naive(const cplx* in, cplx* out, std::size_t n, int sign);

/// Prime factorization of n in nondecreasing order (n >= 1).
std::vector<std::size_t> factorize(std::size_t n);

/// True if n's largest prime factor is <= 31 (handled by mixed-radix
/// butterflies without the Bluestein fallback).
bool is_smooth(std::size_t n);

}  // namespace pcf::fft
