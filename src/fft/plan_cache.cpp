#include "fft/plan_cache.hpp"

#include <mutex>
#include <vector>

namespace pcf::fft {

namespace {

// One linear table per plan kind. Lookups are rare (kernel construction,
// not transforms), the entry count is small (distinct line lengths across
// a campaign), and a vector keeps iteration for trim()/stats() trivial.
template <class Plan>
struct cache {
  struct entry {
    std::size_t n;
    int variant;  // c2c: direction; r2c/c2r: 0
    std::shared_ptr<const Plan> plan;
  };
  std::vector<entry> entries;

  template <class Make>
  std::shared_ptr<const Plan> get(std::size_t n, int variant, Make&& make,
                                  std::uint64_t& hits, std::uint64_t& misses) {
    for (const entry& e : entries)
      if (e.n == n && e.variant == variant) {
        ++hits;
        return e.plan;
      }
    ++misses;
    entries.push_back({n, variant, make()});
    return entries.back().plan;
  }

  std::size_t trim() {
    std::size_t dropped = 0;
    for (auto it = entries.begin(); it != entries.end();) {
      if (it->plan.use_count() == 1) {
        it = entries.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
    return dropped;
  }
};

struct registry {
  std::mutex mu;
  cache<c2c_plan> c2c;
  cache<r2c_plan> r2c;
  cache<c2r_plan> c2r;
  std::uint64_t hits = 0, misses = 0;
};

registry& reg() {
  static registry r;
  return r;
}

}  // namespace

std::shared_ptr<const c2c_plan> shared_c2c(std::size_t n, direction d) {
  auto& r = reg();
  std::lock_guard<std::mutex> lk(r.mu);
  return r.c2c.get(
      n, d == direction::forward ? 0 : 1,
      [&] { return std::make_shared<const c2c_plan>(n, d); }, r.hits,
      r.misses);
}

std::shared_ptr<const r2c_plan> shared_r2c(std::size_t n) {
  auto& r = reg();
  std::lock_guard<std::mutex> lk(r.mu);
  return r.r2c.get(
      n, 0, [&] { return std::make_shared<const r2c_plan>(n); }, r.hits,
      r.misses);
}

std::shared_ptr<const c2r_plan> shared_c2r(std::size_t n) {
  auto& r = reg();
  std::lock_guard<std::mutex> lk(r.mu);
  return r.c2r.get(
      n, 0, [&] { return std::make_shared<const c2r_plan>(n); }, r.hits,
      r.misses);
}

plan_cache_stats plan_cache_statistics() {
  auto& r = reg();
  std::lock_guard<std::mutex> lk(r.mu);
  plan_cache_stats s;
  s.hits = r.hits;
  s.misses = r.misses;
  s.live = r.c2c.entries.size() + r.r2c.entries.size() + r.c2r.entries.size();
  auto count_shared = [&s](const auto& c) {
    for (const auto& e : c.entries)
      if (e.plan.use_count() > 1) ++s.shared;
  };
  count_shared(r.c2c);
  count_shared(r.r2c);
  count_shared(r.c2r);
  return s;
}

std::size_t plan_cache_trim() {
  auto& r = reg();
  std::lock_guard<std::mutex> lk(r.mu);
  return r.c2c.trim() + r.r2c.trim() + r.c2r.trim();
}

}  // namespace pcf::fft
