// Real <-> complex transforms via the even/odd packing trick: a length-n
// real transform is computed with one length-n/2 complex transform plus an
// O(n) unpack. This is the storage layout the paper's kernel exploits when
// it drops the Nyquist mode (Section 4.4).
#include <cmath>
#include <numbers>
#include <vector>

#include "fft/fft.hpp"
#include "fft/scratch.hpp"
#include "util/check.hpp"

namespace pcf::fft {

namespace {

using detail::scratch_arena;

/// Unit roots e^{sign i 2 pi k / n} for k = 0..n/2.
std::vector<cplx> half_roots(std::size_t n, double sign) {
  std::vector<cplx> w(n / 2 + 1);
  for (std::size_t k = 0; k <= n / 2; ++k)
    w[k] = std::polar(1.0, sign * 2.0 * std::numbers::pi *
                               static_cast<double>(k) /
                               static_cast<double>(n));
  return w;
}

}  // namespace

// ---------------------------------------------------------------------------
// r2c
// ---------------------------------------------------------------------------

struct r2c_plan::impl {
  std::size_t n = 0;
  c2c_plan half;        // length n/2 forward transform
  std::vector<cplx> w;  // e^{-2 pi i k / n}

  explicit impl(std::size_t len)
      : n(len), half(len / 2, direction::forward), w(half_roots(len, -1.0)) {
    PCF_REQUIRE(len >= 2 && len % 2 == 0, "r2c length must be even");
  }

  void run(const double* in, cplx* out) const {
    const std::size_t h = n / 2;
    // z/Z stay checked out across half.execute(); if h is not smooth that
    // execution nests Bluestein plans on this same thread, so the scratch
    // must come from the non-moving arena (see fft/scratch.hpp).
    scratch_arena::scope sc(scratch_arena::tls());
    cplx* z = sc.alloc(h);
    cplx* Z = sc.alloc(h);
    for (std::size_t j = 0; j < h; ++j) z[j] = cplx{in[2 * j], in[2 * j + 1]};
    half.execute(z, Z);
    // Unpack: X_k = E_k + w^k O_k with
    //   E_k = (Z_k + conj(Z_{h-k})) / 2,  O_k = -i (Z_k - conj(Z_{h-k})) / 2.
    for (std::size_t k = 0; k <= h; ++k) {
      const cplx zk = Z[k % h];
      const cplx zmk = std::conj(Z[(h - k) % h]);
      const cplx e = 0.5 * (zk + zmk);
      const cplx d = 0.5 * (zk - zmk);
      const cplx o{d.imag(), -d.real()};  // -i * d
      out[k] = e + w[k] * o;
    }
  }
};

r2c_plan::r2c_plan(std::size_t n) : impl_(new impl(n)) {}
r2c_plan::~r2c_plan() = default;
r2c_plan::r2c_plan(r2c_plan&&) noexcept = default;
r2c_plan& r2c_plan::operator=(r2c_plan&&) noexcept = default;
std::size_t r2c_plan::size() const { return impl_->n; }

void r2c_plan::execute(const double* in, cplx* out) const {
  impl_->run(in, out);
}

void r2c_plan::execute_many(const double* in, std::size_t in_stride, cplx* out,
                            std::size_t out_stride, std::size_t count) const {
  for (std::size_t b = 0; b < count; ++b)
    impl_->run(in + b * in_stride, out + b * out_stride);
}

// ---------------------------------------------------------------------------
// c2r
// ---------------------------------------------------------------------------

struct c2r_plan::impl {
  std::size_t n = 0;
  c2c_plan half;        // length n/2 inverse transform
  std::vector<cplx> w;  // e^{+2 pi i k / n}

  explicit impl(std::size_t len)
      : n(len), half(len / 2, direction::inverse), w(half_roots(len, 1.0)) {
    PCF_REQUIRE(len >= 2 && len % 2 == 0, "c2r length must be even");
  }

  void run(const cplx* in, double* out) const {
    const std::size_t h = n / 2;
    // Same nesting hazard as r2c: Z/z live across the half-length execute.
    scratch_arena::scope sc(scratch_arena::tls());
    cplx* Z = sc.alloc(h);
    cplx* z = sc.alloc(h);
    // Repack: Z_k = E_k + i O_k (scale 2 relative to the forward E/O) so
    // that r2c followed by c2r scales by exactly n, matching FFTW.
    for (std::size_t k = 0; k < h; ++k) {
      const cplx xk = in[k];
      const cplx xmk = std::conj(in[h - k]);
      const cplx e = xk + xmk;
      const cplx o = w[k] * (xk - xmk);
      Z[k] = cplx{e.real() - o.imag(), e.imag() + o.real()};  // e + i*o
    }
    half.execute(Z, z);
    for (std::size_t j = 0; j < h; ++j) {
      out[2 * j] = z[j].real();
      out[2 * j + 1] = z[j].imag();
    }
  }
};

c2r_plan::c2r_plan(std::size_t n) : impl_(new impl(n)) {}
c2r_plan::~c2r_plan() = default;
c2r_plan::c2r_plan(c2r_plan&&) noexcept = default;
c2r_plan& c2r_plan::operator=(c2r_plan&&) noexcept = default;
std::size_t c2r_plan::size() const { return impl_->n; }

void c2r_plan::execute(const cplx* in, double* out) const {
  impl_->run(in, out);
}

void c2r_plan::execute_many(const cplx* in, std::size_t in_stride, double* out,
                            std::size_t out_stride, std::size_t count) const {
  for (std::size_t b = 0; b < count; ++b)
    impl_->run(in + b * in_stride, out + b * out_stride);
}

}  // namespace pcf::fft
