// Per-thread scratch arena for FFT plan execution.
//
// Plan execution is re-entrant on one thread: a real transform checks out
// packing scratch and then executes its half-length c2c plan, and when that
// length is not smooth the Bluestein path executes two *nested* inner plans
// of its own. A single shared thread_local std::vector (the previous
// implementation) is unsafe to extend under nesting — growing it moves the
// storage out from under the outer execution's live pointers. This arena
// makes the nesting explicit and safe:
//
//  * Checkouts are grouped under LIFO `scope`s (asserted). A nested scope
//    that outgrows the current chunk gets a NEW chunk; existing chunks
//    never move, so the outer scope's pointers stay valid.
//  * Growth is bounded: when the outermost scope closes, the arena
//    consolidates — if retained capacity exceeds 4x the high-water mark of
//    the epoch just finished, it reallocates down to the high-water mark.
//    A thread that executed one huge plan and then only small ones does
//    not pin the huge footprint forever.
//
// Internal to pcf_fft (and its tests); not installed.
#pragma once

#include <algorithm>
#include <complex>
#include <cstddef>
#include <memory>
#include <vector>

#include "util/check.hpp"

namespace pcf::fft::detail {

class scratch_arena {
  using cplx = std::complex<double>;

 public:
  /// Smallest chunk the arena keeps (elements): small plans never trigger
  /// reallocation churn.
  static constexpr std::size_t kMinChunk = 1024;

  /// LIFO checkout scope. All allocations made through a scope are
  /// released together when it is destroyed; scopes must nest.
  class scope {
   public:
    explicit scope(scratch_arena& a) : a_(a), base_(a.mark_()) {}
    ~scope() { a_.release_(base_); }
    scope(const scope&) = delete;
    scope& operator=(const scope&) = delete;

    /// Checkout `n` elements (stable address until this scope closes).
    [[nodiscard]] cplx* alloc(std::size_t n) { return a_.alloc_(n); }

   private:
    struct mark {
      std::size_t chunk;
      std::size_t off;
      std::size_t live;
    };
    scratch_arena& a_;
    mark base_;
    friend class scratch_arena;
  };

  /// The calling thread's arena.
  static scratch_arena& tls() {
    static thread_local scratch_arena a;
    return a;
  }

  /// Elements currently checked out across all open scopes.
  [[nodiscard]] std::size_t live_elems() const { return live_; }
  /// Elements of backing storage currently retained (the growth bound
  /// under test: <= 4x the previous epoch's peak after consolidation).
  [[nodiscard]] std::size_t retained_elems() const {
    std::size_t c = 0;
    for (const auto& ch : chunks_) c += ch.cap;
    return c;
  }

 private:
  struct chunk {
    std::unique_ptr<cplx[]> p;
    std::size_t cap = 0;
    std::size_t used = 0;
  };

  scope::mark mark_() const { return {cur_, chunks_.empty() ? 0 : chunks_[cur_].used, live_}; }

  cplx* alloc_(std::size_t n) {
    if (n == 0) return nullptr;
    // Advance past full chunks into any empty ones left over beyond the
    // frontier (all chunks after cur_ have used == 0) before appending.
    while (cur_ + 1 < chunks_.size() &&
           chunks_[cur_].used + n > chunks_[cur_].cap)
      ++cur_;
    if (chunks_.empty() || chunks_[cur_].used + n > chunks_[cur_].cap) {
      // Never resize an existing chunk: outer scopes hold pointers into
      // them. Append a chunk big enough for this checkout (doubling so a
      // sequence of growing checkouts stays O(log) chunks).
      const std::size_t cap = std::max({n, kMinChunk, retained_elems()});
      chunks_.push_back(chunk{std::make_unique<cplx[]>(cap), cap, 0});
      cur_ = chunks_.size() - 1;
    }
    chunk& c = chunks_[cur_];
    cplx* p = c.p.get() + c.used;
    c.used += n;
    live_ += n;
    high_ = std::max(high_, live_);
    return p;
  }

  void release_(const scope::mark& m) {
    // LIFO discipline: the closing scope must sit at or above the current
    // allocation frontier.
    PCF_ASSERT(m.chunk <= cur_ && m.live <= live_);
    for (std::size_t i = cur_; i > m.chunk; --i) chunks_[i].used = 0;
    if (!chunks_.empty()) {
      PCF_ASSERT(m.off <= chunks_[m.chunk].used);
      chunks_[m.chunk].used = m.off;
    }
    cur_ = m.chunk;
    live_ = m.live;
    if (live_ == 0) consolidate_();
  }

  void consolidate_() {
    // Outermost scope closed: bound the retained footprint to the epoch's
    // actual need. Multiple chunks always merge (so the next epoch's
    // checkouts are contiguous again); a single oversized chunk shrinks
    // only past 4x to avoid thrashing between plans of alternating size.
    const std::size_t want = std::max(high_, kMinChunk);
    const std::size_t have = retained_elems();
    if (chunks_.size() > 1 || have > 4 * want) {
      chunks_.clear();
      chunks_.push_back(chunk{std::make_unique<cplx[]>(want), want, 0});
    }
    cur_ = 0;
    high_ = 0;
  }

  std::vector<chunk> chunks_;
  std::size_t cur_ = 0;   // chunk currently allocated from
  std::size_t live_ = 0;  // elements checked out
  std::size_t high_ = 0;  // epoch high-water mark
};

}  // namespace pcf::fft::detail
