// Per-thread scratch arena for FFT plan execution.
//
// Plan execution is re-entrant on one thread: a real transform checks out
// packing scratch and then executes its half-length c2c plan, and when that
// length is not smooth the Bluestein path executes two *nested* inner plans
// of its own. A single shared thread_local std::vector (the previous
// implementation) is unsafe to extend under nesting — growing it moves the
// storage out from under the outer execution's live pointers. This arena
// makes the nesting explicit and safe:
//
//  * Checkouts are grouped under LIFO `scope`s (asserted). A nested scope
//    that outgrows the current chunk gets a NEW chunk; existing chunks
//    never move, so the outer scope's pointers stay valid.
//  * Growth is bounded: when the outermost scope closes, the arena
//    consolidates — if retained capacity exceeds 4x the high-water mark of
//    the epoch just finished, it reallocates down to the high-water mark.
//    A thread that executed one huge plan and then only small ones does
//    not pin the huge footprint forever.
//
// Internal to pcf_fft (and its tests); not installed.
#pragma once

#include <algorithm>
#include <atomic>
#include <complex>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "util/block_pool.hpp"
#include "util/check.hpp"

namespace pcf::fft::detail {

class scratch_arena {
  using cplx = std::complex<double>;

 public:
  /// Smallest chunk the arena keeps (elements): small plans never trigger
  /// reallocation churn.
  static constexpr std::size_t kMinChunk = 1024;

  /// LIFO checkout scope. All allocations made through a scope are
  /// released together when it is destroyed; scopes must nest.
  class scope {
   public:
    explicit scope(scratch_arena& a) : a_(a), base_(a.mark_()) {}
    ~scope() { a_.release_(base_); }
    scope(const scope&) = delete;
    scope& operator=(const scope&) = delete;

    /// Checkout `n` elements (stable address until this scope closes).
    [[nodiscard]] cplx* alloc(std::size_t n) { return a_.alloc_(n); }

   private:
    struct mark {
      std::size_t chunk;
      std::size_t off;
      std::size_t live;
    };
    scratch_arena& a_;
    mark base_;
    friend class scratch_arena;
  };

  /// The calling thread's arena.
  static scratch_arena& tls() {
    static thread_local scratch_arena a;
    return a;
  }

  /// Route every arena's NEW chunks through `p` (nullptr restores heap
  /// chunks — the default). Opt-in and process-global; existing chunks
  /// keep their current backing until consolidation retires them. Pool
  /// blocks are 64-byte aligned, so alignment only improves. The pool
  /// must outlive every chunk allocated from it; block_pool::global()
  /// (a function-local static constructed before the first pooled chunk)
  /// satisfies this for the thread_local arenas per [basic.start.term].
  static void set_pool(block_pool* p) {
    pool_ref_().store(p, std::memory_order_release);
  }
  [[nodiscard]] static block_pool* pool() {
    return pool_ref_().load(std::memory_order_acquire);
  }

  /// Drop every retained chunk (pooled blocks go back to their pool).
  /// Legal only with no open scopes — the suspend-adjacent hook for
  /// shrinking a parked thread's footprint to zero.
  void release_all() {
    PCF_ASSERT(live_ == 0);
    chunks_.clear();
    cur_ = 0;
    high_ = 0;
  }

  /// Whether any retained chunk is pool-backed (test hook).
  [[nodiscard]] bool any_pooled() const {
    for (const auto& ch : chunks_)
      if (ch.src != nullptr) return true;
    return false;
  }

  /// Elements currently checked out across all open scopes.
  [[nodiscard]] std::size_t live_elems() const { return live_; }
  /// Elements of backing storage currently retained (the growth bound
  /// under test: <= 4x the previous epoch's peak after consolidation).
  [[nodiscard]] std::size_t retained_elems() const {
    std::size_t c = 0;
    for (const auto& ch : chunks_) c += ch.cap;
    return c;
  }

 private:
  // One stable-address slab: heap-owned (`p`) or a block-pool lease
  // (`src` + `ls`). Move-only so the vector can grow without the lease
  // being released twice; the destructor returns pooled blocks.
  struct chunk {
    chunk() = default;
    chunk(chunk&& o) noexcept { *this = std::move(o); }
    chunk& operator=(chunk&& o) noexcept {
      if (this == &o) return *this;
      drop();
      p = std::move(o.p);
      src = o.src;
      ls = o.ls;
      base = o.base;
      cap = o.cap;
      used = o.used;
      o.src = nullptr;
      o.ls = block_pool::lease{};
      o.base = nullptr;
      o.cap = o.used = 0;
      return *this;
    }
    chunk(const chunk&) = delete;
    chunk& operator=(const chunk&) = delete;
    ~chunk() { drop(); }

    void drop() {
      if (src != nullptr) {
        src->release(ls);
        src = nullptr;
      }
      p.reset();
      base = nullptr;
      cap = used = 0;
    }

    std::unique_ptr<cplx[]> p;     // heap backing (null when pooled)
    block_pool* src = nullptr;     // pool the lease came from
    block_pool::lease ls;          // pooled backing (empty when heap)
    cplx* base = nullptr;
    std::size_t cap = 0;
    std::size_t used = 0;
  };

  /// A chunk of >= cap_elems elements from the configured pool when one
  /// is set, else the heap. Pool leases round up to whole blocks, so the
  /// delivered capacity may exceed the request.
  static chunk make_chunk_(std::size_t cap_elems) {
    chunk c;
    if (block_pool* bp = pool()) {
      c.ls = bp->acquire(cap_elems * sizeof(cplx));
      if (c.ls) {
        c.src = bp;
        c.base = reinterpret_cast<cplx*>(c.ls.data());
        c.cap = c.ls.bytes() / sizeof(cplx);
        return c;
      }
    }
    c.p = std::make_unique<cplx[]>(cap_elems);
    c.base = c.p.get();
    c.cap = cap_elems;
    return c;
  }

  static std::atomic<block_pool*>& pool_ref_() {
    static std::atomic<block_pool*> p{nullptr};
    return p;
  }

  scope::mark mark_() const { return {cur_, chunks_.empty() ? 0 : chunks_[cur_].used, live_}; }

  cplx* alloc_(std::size_t n) {
    if (n == 0) return nullptr;
    // Advance past full chunks into any empty ones left over beyond the
    // frontier (all chunks after cur_ have used == 0) before appending.
    while (cur_ + 1 < chunks_.size() &&
           chunks_[cur_].used + n > chunks_[cur_].cap)
      ++cur_;
    if (chunks_.empty() || chunks_[cur_].used + n > chunks_[cur_].cap) {
      // Never resize an existing chunk: outer scopes hold pointers into
      // them. Append a chunk big enough for this checkout (doubling so a
      // sequence of growing checkouts stays O(log) chunks).
      const std::size_t cap = std::max({n, kMinChunk, retained_elems()});
      chunks_.push_back(make_chunk_(cap));
      cur_ = chunks_.size() - 1;
    }
    chunk& c = chunks_[cur_];
    cplx* p = c.base + c.used;
    c.used += n;
    live_ += n;
    high_ = std::max(high_, live_);
    return p;
  }

  void release_(const scope::mark& m) {
    // LIFO discipline: the closing scope must sit at or above the current
    // allocation frontier.
    PCF_ASSERT(m.chunk <= cur_ && m.live <= live_);
    for (std::size_t i = cur_; i > m.chunk; --i) chunks_[i].used = 0;
    if (!chunks_.empty()) {
      PCF_ASSERT(m.off <= chunks_[m.chunk].used);
      chunks_[m.chunk].used = m.off;
    }
    cur_ = m.chunk;
    live_ = m.live;
    if (live_ == 0) consolidate_();
  }

  void consolidate_() {
    // Outermost scope closed: bound the retained footprint to the epoch's
    // actual need. Multiple chunks always merge (so the next epoch's
    // checkouts are contiguous again); a single oversized chunk shrinks
    // only past 4x to avoid thrashing between plans of alternating size.
    const std::size_t want = std::max(high_, kMinChunk);
    const std::size_t have = retained_elems();
    if (chunks_.size() > 1 || have > 4 * want) {
      chunks_.clear();
      chunks_.push_back(make_chunk_(want));
    }
    cur_ = 0;
    high_ = 0;
  }

  std::vector<chunk> chunks_;
  std::size_t cur_ = 0;   // chunk currently allocated from
  std::size_t live_ = 0;  // elements checked out
  std::size_t high_ = 0;  // epoch high-water mark
};

}  // namespace pcf::fft::detail
