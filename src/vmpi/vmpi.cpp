#include "vmpi/vmpi.hpp"

#include <algorithm>
#include <map>
#include <thread>

namespace pcf::vmpi {

namespace detail {

/// Thrown in surviving ranks when another rank of the world failed, so the
/// whole world unwinds instead of deadlocking at the next barrier.
struct world_aborted {};

/// Shared state of one communicator: a generation-counted barrier,
/// publication slots the collectives exchange pointers through, a scratch
/// map for split(), and traffic statistics.
struct group_state {
  explicit group_state(int n) : size(n), slots(static_cast<std::size_t>(n)) {}

  int size;

  // True for split() children: every handle is produced by the split
  // rendezvous (one per rank), so a shared-state use count below `size`
  // proves some rank released its communicator — the stale-handle
  // condition check_liveness() rejects. The world state is exempt:
  // run_world constructs rank threads one by one, so early ranks run
  // while later handles don't exist yet.
  bool liveness_tracked = false;

  // Barrier.
  std::mutex m;
  std::condition_variable cv;
  int arrived = 0;
  std::uint64_t gen = 0;
  bool aborted = false;

  // Publication slots (one per rank), valid between two barriers.
  struct slot {
    const void* p0 = nullptr;
    const void* p1 = nullptr;
    const void* p2 = nullptr;
    std::size_t n = 0;
    int i0 = 0;
    int i1 = 0;
  };
  std::vector<slot> slots;

  // split() scratch: color -> child state, guarded by split_m.
  std::mutex split_m;
  std::map<int, std::shared_ptr<group_state>> split_children;

  // Statistics.
  std::atomic<std::uint64_t> alltoall_calls{0};
  std::atomic<std::uint64_t> exchange_calls{0};
  std::atomic<std::uint64_t> reduce_calls{0};
  std::atomic<std::uint64_t> bytes_sent{0};

  void barrier() {
    std::unique_lock<std::mutex> lk(m);
    if (aborted) throw world_aborted{};
    const std::uint64_t g = gen;
    if (++arrived == size) {
      arrived = 0;
      ++gen;
      cv.notify_all();
    } else {
      cv.wait(lk, [&] { return gen != g || aborted; });
      if (gen == g && aborted) throw world_aborted{};
    }
  }

  void abort_world() {
    std::lock_guard<std::mutex> lk(m);
    aborted = true;
    cv.notify_all();
  }
};

}  // namespace detail

using detail::group_state;

int communicator::size() const { return state_->size; }

void communicator::check_liveness() const {
  if (!state_->liveness_tracked) return;
  // use_count is a necessary condition, not exact bookkeeping: extra
  // copies (pencil impls, cart2d) only raise it, so >= size holds exactly
  // while every rank still owns at least one handle.
  PCF_REQUIRE(state_.use_count() >= static_cast<long>(state_->size),
              "collective on a stale sub-communicator: a rank has released "
              "its handle, the operation could never complete");
}

void communicator::barrier() {
  check_liveness();
  state_->barrier();
}

comm_stats communicator::stats() const {
  comm_stats s;
  s.alltoall_calls = state_->alltoall_calls.load();
  s.exchange_calls = state_->exchange_calls.load();
  s.reduce_calls = state_->reduce_calls.load();
  s.bytes_sent = state_->bytes_sent.load();
  return s;
}

void communicator::alltoall_bytes(const void* send, void* recv,
                                  std::size_t bytes) {
  check_liveness();
  auto& st = *state_;
  const int p = st.size;
  st.slots[static_cast<std::size_t>(rank_)] = {send, nullptr, nullptr, bytes, 0, 0};
  st.barrier();
  for (int r = 0; r < p; ++r) {
    const auto& s = st.slots[static_cast<std::size_t>(r)];
    PCF_ASSERT(s.n == bytes);
    std::memcpy(static_cast<char*>(recv) + static_cast<std::size_t>(r) * bytes,
                static_cast<const char*>(s.p0) +
                    static_cast<std::size_t>(rank_) * bytes,
                bytes);
  }
  // Update stats before the closing barrier so every rank observes the
  // counts as soon as the collective returns (stats() may be called by any
  // rank immediately afterwards).
  if (rank_ == 0) {
    st.alltoall_calls.fetch_add(1);
    st.bytes_sent.fetch_add(bytes * static_cast<std::size_t>(p) *
                            static_cast<std::size_t>(p));
  }
  st.barrier();
}

void communicator::alltoallv_bytes(const void* send,
                                   const std::size_t* scounts,
                                   const std::size_t* sdispls, void* recv,
                                   const std::size_t* rcounts,
                                   const std::size_t* rdispls,
                                   std::size_t elem_size) {
  check_liveness();
  auto& st = *state_;
  const int p = st.size;
  (void)rcounts;  // only consulted by assertions
  st.slots[static_cast<std::size_t>(rank_)] = {send, scounts, sdispls,
                                               elem_size, 0, 0};
  st.barrier();
  std::uint64_t received = 0;
  for (int r = 0; r < p; ++r) {
    const auto& s = st.slots[static_cast<std::size_t>(r)];
    const auto* their_counts = static_cast<const std::size_t*>(s.p1);
    const auto* their_displs = static_cast<const std::size_t*>(s.p2);
    const std::size_t cnt = their_counts[rank_];
    PCF_ASSERT(cnt == rcounts[r]);
    std::memcpy(static_cast<char*>(recv) + rdispls[r] * elem_size,
                static_cast<const char*>(s.p0) + their_displs[rank_] * elem_size,
                cnt * elem_size);
    received += cnt * elem_size;
  }
  st.alltoall_calls.fetch_add(rank_ == 0 ? 1 : 0);
  st.bytes_sent.fetch_add(received);
  st.barrier();
}

void communicator::exchange_bytes(const void* send, std::size_t sbytes,
                                  int dest, void* recv, std::size_t rbytes) {
  check_liveness();
  auto& st = *state_;
  const int p = st.size;
  PCF_REQUIRE(dest >= 0 && dest < p, "exchange destination out of range");
  st.slots[static_cast<std::size_t>(rank_)] = {send, nullptr, nullptr, sbytes,
                                               dest, 0};
  st.barrier();
  int src = -1;
  for (int r = 0; r < p; ++r) {
    if (st.slots[static_cast<std::size_t>(r)].i0 == rank_) {
      PCF_REQUIRE(src == -1, "exchange dests must form a permutation");
      src = r;
    }
  }
  PCF_REQUIRE(src >= 0, "no rank sent to this rank in exchange");
  const auto& s = st.slots[static_cast<std::size_t>(src)];
  PCF_REQUIRE(s.n == rbytes, "exchange size mismatch");
  std::memcpy(recv, s.p0, rbytes);
  if (rank_ == 0) st.exchange_calls.fetch_add(1);
  st.bytes_sent.fetch_add(sbytes);
  st.barrier();
}

namespace {

template <class T, class Op>
void reduce_impl(group_state& st, int rank, const T* send, T* recv,
                 std::size_t count, Op op) {
  st.slots[static_cast<std::size_t>(rank)] = {send, nullptr, nullptr, count, 0, 0};
  st.barrier();
  const auto* first = static_cast<const T*>(st.slots[0].p0);
  for (std::size_t i = 0; i < count; ++i) recv[i] = first[i];
  for (int r = 1; r < st.size; ++r) {
    const auto* src = static_cast<const T*>(st.slots[static_cast<std::size_t>(r)].p0);
    for (std::size_t i = 0; i < count; ++i) recv[i] = op(recv[i], src[i]);
  }
  if (rank == 0) st.reduce_calls.fetch_add(1);
  st.barrier();
}

}  // namespace

void communicator::allreduce_sum(const double* send, double* recv,
                                 std::size_t count) {
  check_liveness();
  reduce_impl(*state_, rank_, send, recv, count,
              [](double a, double b) { return a + b; });
}

void communicator::allreduce_sum(const std::complex<double>* send,
                                 std::complex<double>* recv,
                                 std::size_t count) {
  check_liveness();
  reduce_impl(*state_, rank_, send, recv, count,
              [](std::complex<double> a, std::complex<double> b) { return a + b; });
}

void communicator::allreduce_max(const double* send, double* recv,
                                 std::size_t count) {
  check_liveness();
  reduce_impl(*state_, rank_, send, recv, count,
              [](double a, double b) { return a > b ? a : b; });
}

void communicator::allreduce_min(const double* send, double* recv,
                                 std::size_t count) {
  check_liveness();
  reduce_impl(*state_, rank_, send, recv, count,
              [](double a, double b) { return a < b ? a : b; });
}

void communicator::allreduce_bor(const std::uint64_t* send,
                                 std::uint64_t* recv, std::size_t count) {
  check_liveness();
  reduce_impl(*state_, rank_, send, recv, count,
              [](std::uint64_t a, std::uint64_t b) { return a | b; });
}

void communicator::bcast_bytes(void* data, std::size_t bytes, int root) {
  check_liveness();
  auto& st = *state_;
  PCF_REQUIRE(root >= 0 && root < st.size, "bcast root out of range");
  st.slots[static_cast<std::size_t>(rank_)] = {data, nullptr, nullptr, bytes, 0, 0};
  st.barrier();
  if (rank_ != root)
    std::memcpy(data, st.slots[static_cast<std::size_t>(root)].p0, bytes);
  st.barrier();
}

void communicator::allgather_bytes(const void* send, void* recv,
                                   std::size_t bytes) {
  check_liveness();
  auto& st = *state_;
  st.slots[static_cast<std::size_t>(rank_)] = {send, nullptr, nullptr, bytes, 0, 0};
  st.barrier();
  for (int r = 0; r < st.size; ++r)
    std::memcpy(static_cast<char*>(recv) + static_cast<std::size_t>(r) * bytes,
                st.slots[static_cast<std::size_t>(r)].p0, bytes);
  st.barrier();
}

communicator communicator::split(int color, int key) {
  check_liveness();
  auto& st = *state_;
  const int p = st.size;
  st.slots[static_cast<std::size_t>(rank_)] = {nullptr, nullptr, nullptr, 0,
                                               color, key};
  st.barrier();
  // Build my subgroup ordered by (key, parent rank).
  struct member {
    int key, rank;
  };
  std::vector<member> group;
  for (int r = 0; r < p; ++r) {
    const auto& s = st.slots[static_cast<std::size_t>(r)];
    if (s.i0 == color) group.push_back({s.i1, r});
  }
  std::sort(group.begin(), group.end(), [](const member& a, const member& b) {
    return a.key != b.key ? a.key < b.key : a.rank < b.rank;
  });
  int my_new_rank = -1;
  for (std::size_t i = 0; i < group.size(); ++i)
    if (group[i].rank == rank_) my_new_rank = static_cast<int>(i);
  PCF_ASSERT(my_new_rank >= 0);

  // Leader (new rank 0) creates the child state.
  if (my_new_rank == 0) {
    auto child = std::make_shared<group_state>(static_cast<int>(group.size()));
    // The split rendezvous below guarantees every member rank takes its
    // handle before any rank returns, so from here on a use count below
    // the group size is proof of a released handle.
    child->liveness_tracked = true;
    std::lock_guard<std::mutex> lk(st.split_m);
    st.split_children[color] = child;
  }
  st.barrier();
  std::shared_ptr<group_state> child;
  {
    std::lock_guard<std::mutex> lk(st.split_m);
    child = st.split_children.at(color);
  }
  st.barrier();
  if (rank_ == 0) {
    std::lock_guard<std::mutex> lk(st.split_m);
    st.split_children.clear();
  }
  st.barrier();
  return communicator(std::move(child), my_new_rank);
}

void run_world(int nranks, const std::function<void(communicator&)>& fn) {
  PCF_REQUIRE(nranks >= 1, "need at least one rank");
  auto state = std::make_shared<group_state>(nranks);
  std::vector<std::thread> threads;
  std::mutex err_m;
  std::exception_ptr first_error;

  auto body = [&](int r) {
    try {
      communicator c(state, r);
      fn(c);
    } catch (const detail::world_aborted&) {
      // Another rank failed first; this rank just unwinds.
    } catch (...) {
      {
        std::lock_guard<std::mutex> lk(err_m);
        if (!first_error) first_error = std::current_exception();
      }
      // A failed rank must not deadlock the others: flag the world so
      // every present and future barrier wait throws world_aborted.
      state->abort_world();
    }
  };

  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) threads.emplace_back(body, r);
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

cart_split split_cartesian(communicator& world, int pa, int pb) {
  // Validate before the first split: an invalid grid must throw on every
  // rank without entering the split rendezvous (where ranks that already
  // failed would deadlock the rest).
  PCF_REQUIRE(pa >= 1 && pb >= 1 && pa * pb == world.size(),
              "process grid must cover the world communicator exactly");
  const int a = world.rank() / pb;
  const int b = world.rank() % pb;
  // Braced init evaluates left to right, so every rank splits CommA then
  // CommB in the same order.
  return {a, b, world.split(b, a), world.split(a, b)};
}

cart2d::cart2d(communicator& world, int pa, int pb)
    : cart2d(split_cartesian(world, pa, pb), pa, pb) {}

cart2d::cart2d(cart_split s, int pa, int pb)
    : pa_(pa),
      pb_(pb),
      a_(s.coord_a),
      b_(s.coord_b),
      comm_a_(std::move(s.comm_a)),
      comm_b_(std::move(s.comm_b)) {}

}  // namespace pcf::vmpi
