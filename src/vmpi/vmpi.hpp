// Virtual MPI: an in-process message-passing runtime.
//
// The paper's machines (Mira, Stampede, Lonestar, Blue Waters) are not
// available here, so the pencil-transpose communication runs on this
// runtime instead: ranks are threads in one process, and the collectives
// exchange data through shared memory. What it preserves from real MPI is
// exactly what the DNS code depends on — communicator/sub-communicator
// topology (MPI_Cart_create / MPI_Cart_sub), alltoall(v) semantics, and the
// pairwise-exchange pattern FFTW's transpose planner generates — so the
// transpose code paths are the genuine ones and are testable at 4-64 ranks.
//
// Simplification relative to MPI: every operation is *bulk-synchronous* —
// all ranks of a communicator must call the same operation together (the
// natural structure of a spectral DNS timestep). There is no tag matching
// or unexpected-message queue.
//
// Per-communicator byte/call statistics are recorded so benchmarks can
// report communication volumes, and so the netsim machine models can be
// applied to measured traffic.
#pragma once

#include <atomic>
#include <complex>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace pcf::vmpi {

/// Aggregate communication statistics for one communicator (shared across
/// its ranks; byte counts are totals over all ranks).
struct comm_stats {
  std::uint64_t alltoall_calls = 0;
  std::uint64_t exchange_calls = 0;
  std::uint64_t reduce_calls = 0;
  std::uint64_t bytes_sent = 0;
};

namespace detail {
struct group_state;
}

/// One rank's handle to a communicator. Copyable; all copies refer to the
/// same shared group.
class communicator {
 public:
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const;

  /// Synchronize all ranks of this communicator.
  void barrier();

  /// MPI_Alltoall: send block r (count elements) to rank r; receive block r
  /// from rank r.
  template <class T>
  void alltoall(const T* send, T* recv, std::size_t count) {
    alltoall_bytes(send, recv, count * sizeof(T));
  }

  /// MPI_Alltoallv with std::size_t counts/displacements in *elements*.
  template <class T>
  void alltoallv(const T* send, const std::size_t* scounts,
                 const std::size_t* sdispls, T* recv,
                 const std::size_t* rcounts, const std::size_t* rdispls) {
    alltoallv_bytes(send, scounts, sdispls, recv, rcounts, rdispls, sizeof(T));
  }

  /// Pairwise exchange (MPI_Sendrecv where every rank participates):
  /// send `scount` elements to `dest`; receive into recv from whichever
  /// rank targeted this one. The dest assignment must be a permutation.
  template <class T>
  void exchange(const T* send, std::size_t scount, int dest, T* recv,
                std::size_t rcount) {
    exchange_bytes(send, scount * sizeof(T), dest, recv, rcount * sizeof(T));
  }

  /// Element-wise reductions over all ranks; every rank gets the result.
  void allreduce_sum(const double* send, double* recv, std::size_t count);
  void allreduce_sum(const std::complex<double>* send,
                     std::complex<double>* recv, std::size_t count);
  void allreduce_max(const double* send, double* recv, std::size_t count);
  void allreduce_min(const double* send, double* recv, std::size_t count);
  /// Bitwise-OR reduction (MPI_BOR). The exact gather for single-owner
  /// data: non-owners contribute all-zero words, so the owner's bit
  /// pattern survives verbatim. A floating-point sum is NOT equivalent —
  /// IEEE 754 gives (-0.0) + (+0.0) = +0.0, so summing would flip the
  /// sign of negative zeros depending on how many ranks participate.
  void allreduce_bor(const std::uint64_t* send, std::uint64_t* recv,
                     std::size_t count);

  /// Broadcast count*sizeof(T) bytes from root.
  template <class T>
  void bcast(T* data, std::size_t count, int root) {
    bcast_bytes(data, count * sizeof(T), root);
  }

  /// Gather equal-size blocks to every rank.
  template <class T>
  void allgather(const T* send, T* recv, std::size_t count) {
    allgather_bytes(send, recv, count * sizeof(T));
  }

  /// MPI_Comm_split: ranks with equal color form a new communicator,
  /// ordered by (key, rank). Collective.
  communicator split(int color, int key);

  /// Shared statistics for this communicator.
  [[nodiscard]] comm_stats stats() const;

 private:
  friend void run_world(int, const std::function<void(communicator&)>&);
  communicator(std::shared_ptr<detail::group_state> state, int rank)
      : state_(std::move(state)), rank_(rank) {}

  /// Stale-communicator guard for split children: a collective can only
  /// complete if every rank of the group still holds a handle, so a group
  /// whose live handle count dropped below its size has been (partially)
  /// released and the call would deadlock. Detected via the shared-state
  /// use count — a cheap necessary condition, checked on entry to every
  /// collective. World communicators are exempt (run_world staggers
  /// thread construction, so early ranks legitimately run ahead of the
  /// handle count).
  void check_liveness() const;

  void alltoall_bytes(const void* send, void* recv, std::size_t bytes);
  void alltoallv_bytes(const void* send, const std::size_t* scounts,
                       const std::size_t* sdispls, void* recv,
                       const std::size_t* rcounts, const std::size_t* rdispls,
                       std::size_t elem_size);
  void exchange_bytes(const void* send, std::size_t sbytes, int dest,
                      void* recv, std::size_t rbytes);
  void bcast_bytes(void* data, std::size_t bytes, int root);
  void allgather_bytes(const void* send, void* recv, std::size_t bytes);

  std::shared_ptr<detail::group_state> state_;
  int rank_ = 0;
};

/// Launch `nranks` threads each running fn with its world communicator.
/// Exceptions thrown by any rank are rethrown (first one wins) after all
/// ranks have been joined.
void run_world(int nranks, const std::function<void(communicator&)>& fn);

/// Asynchronous-collective shim: the stand-in for MPI_Ialltoallv +
/// MPI_Wait on this thread-per-rank runtime. start() hands a blocking
/// collective (bound to this rank's communicators) to a dedicated progress
/// thread and returns immediately; wait() blocks until it has finished.
///
/// Each rank owns at most one proxy and the proxy runs ONE progress
/// thread, so submitted operations start *and complete* in submission
/// order (FIFO). That ordering is the correctness contract: as long as
/// every rank submits the same sequence of collectives, the bulk-
/// synchronous rendezvous inside vmpi matches up across ranks with no tag
/// matching — exactly how the pencil kernel pipelines its exchanges.
///
/// Exceptions thrown by an operation (e.g. a world abort unwinding a
/// barrier) are captured and rethrown by the next wait()/wait_all().
class async_proxy {
 public:
  using ticket = thread_pool::ticket;

  async_proxy() : pool_(2) {}  // caller + one progress thread

  /// Begin `op` on the progress thread; the returned ticket orders it.
  ticket start(std::function<void()> op) { return pool_.submit(std::move(op)); }

  /// Block until the operation behind `t` has completed.
  void wait(ticket t) { pool_.wait_submitted(t); }

  /// Block until every started operation has completed.
  void wait_all() { pool_.wait_submitted(); }

 private:
  thread_pool pool_;
};

/// The two sub-communicators of a row-major P_A x P_B Cartesian split of
/// `world` (rank = a * P_B + b), plus this rank's grid coordinates.
struct cart_split {
  int coord_a = 0;
  int coord_b = 0;
  communicator comm_a;  // ranks sharing this B coordinate (size P_A)
  communicator comm_b;  // ranks sharing this A coordinate (size P_B)
};

/// MPI_Cart_create + two MPI_Cart_sub calls in one collective step:
/// validates pa * pb == world.size() *before* any split (an invalid grid
/// must fail on every rank without touching the split rendezvous), then
/// splits CommA and CommB in a fixed order on all ranks. Used by cart2d
/// and by the 2.5D replica groups; the returned communicators carry
/// stale-handle liveness asserts (see communicator::check_liveness).
[[nodiscard]] cart_split split_cartesian(communicator& world, int pa, int pb);

/// 2-D Cartesian process grid P_A x P_B with row-major rank placement
/// (rank = a * P_B + b), mirroring the paper's MPI_Cart_create usage:
/// CommB groups ranks that are *contiguous* (node-local when P_B divides
/// the cores per node — the layout Table 5 shows is fastest), CommA groups
/// strided ranks.
class cart2d {
 public:
  cart2d(communicator& world, int pa, int pb);

  [[nodiscard]] int coord_a() const { return a_; }
  [[nodiscard]] int coord_b() const { return b_; }
  [[nodiscard]] int pa() const { return pa_; }
  [[nodiscard]] int pb() const { return pb_; }
  /// Sub-communicator over ranks with the same B coordinate (size P_A).
  communicator& comm_a() { return comm_a_; }
  /// Sub-communicator over ranks with the same A coordinate (size P_B).
  communicator& comm_b() { return comm_b_; }

 private:
  cart2d(cart_split s, int pa, int pb);

  int pa_, pb_, a_, b_;
  communicator comm_a_, comm_b_;
};

}  // namespace pcf::vmpi
