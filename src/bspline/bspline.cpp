#include "bspline/bspline.hpp"

#include <algorithm>
#include <cmath>

namespace pcf::bspline {

namespace {
constexpr int kMaxDegree = 15;
}

basis::basis(std::vector<double> breakpoints, int degree)
    : p_(degree), breaks_(std::move(breakpoints)) {
  PCF_REQUIRE(p_ >= 1 && p_ <= kMaxDegree, "degree out of supported range");
  PCF_REQUIRE(breaks_.size() >= 2, "need at least two breakpoints");
  for (std::size_t i = 1; i < breaks_.size(); ++i)
    PCF_REQUIRE(breaks_[i] > breaks_[i - 1],
                "breakpoints must be strictly increasing");

  const int nspans = static_cast<int>(breaks_.size()) - 1;
  n_ = nspans + p_;

  // Clamped knot vector: endpoints repeated p+1 times.
  knots_.reserve(static_cast<std::size_t>(n_ + p_ + 1));
  for (int i = 0; i <= p_; ++i) knots_.push_back(breaks_.front());
  for (int i = 1; i < nspans; ++i) knots_.push_back(breaks_[static_cast<std::size_t>(i)]);
  for (int i = 0; i <= p_; ++i) knots_.push_back(breaks_.back());

  greville_.resize(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) {
    double s = 0.0;
    for (int j = 1; j <= p_; ++j) s += knots_[static_cast<std::size_t>(i + j)];
    greville_[static_cast<std::size_t>(i)] = s / p_;
  }
  // Guard against roundoff pushing the end points outside the domain.
  greville_.front() = breaks_.front();
  greville_.back() = breaks_.back();
}

basis basis::uniform(double a, double b, int intervals, int degree) {
  PCF_REQUIRE(intervals >= 1, "need at least one interval");
  PCF_REQUIRE(b > a, "domain must be nonempty");
  std::vector<double> br(static_cast<std::size_t>(intervals) + 1);
  for (int i = 0; i <= intervals; ++i)
    br[static_cast<std::size_t>(i)] =
        a + (b - a) * static_cast<double>(i) / intervals;
  return basis(std::move(br), degree);
}

basis basis::channel(int intervals, double stretch, int degree) {
  PCF_REQUIRE(intervals >= 1, "need at least one interval");
  PCF_REQUIRE(stretch > 0.0, "stretch must be positive");
  std::vector<double> br(static_cast<std::size_t>(intervals) + 1);
  const double t = std::tanh(stretch);
  for (int i = 0; i <= intervals; ++i) {
    const double eta = -1.0 + 2.0 * static_cast<double>(i) / intervals;
    br[static_cast<std::size_t>(i)] = std::tanh(stretch * eta) / t;
  }
  br.front() = -1.0;
  br.back() = 1.0;
  return basis(std::move(br), degree);
}

int basis::find_span(double x) const {
  PCF_REQUIRE(x >= domain_min() && x <= domain_max(), "x outside domain");
  const int lo = p_, hi = n_;  // spans live in knots[p..n]
  if (x >= knots_[static_cast<std::size_t>(hi)]) return hi - 1;
  // Binary search for mu with knots[mu] <= x < knots[mu+1].
  int a = lo, b = hi;
  while (b - a > 1) {
    const int mid = (a + b) / 2;
    if (x < knots_[static_cast<std::size_t>(mid)])
      b = mid;
    else
      a = mid;
  }
  return a;
}

int basis::eval(double x, double* N) const {
  const int span = find_span(x);
  const double* t = knots_.data();
  double left[kMaxDegree + 1], right[kMaxDegree + 1];
  N[0] = 1.0;
  for (int j = 1; j <= p_; ++j) {
    left[j] = x - t[span + 1 - j];
    right[j] = t[span + j] - x;
    double saved = 0.0;
    for (int r = 0; r < j; ++r) {
      const double tmp = N[r] / (right[r + 1] + left[j - r]);
      N[r] = saved + right[r + 1] * tmp;
      saved = left[j - r] * tmp;
    }
    N[j] = saved;
  }
  return span - p_;
}

int basis::eval_derivs(double x, int nder, double* ders) const {
  PCF_REQUIRE(nder >= 0, "derivative order must be nonnegative");
  const int span = find_span(x);
  const int p = p_;
  const double* t = knots_.data();
  const int w = p + 1;

  // ndu: basis functions (upper triangle) and knot differences (lower).
  double ndu[(kMaxDegree + 1) * (kMaxDegree + 1)];
  auto NDU = [&](int i, int j) -> double& { return ndu[i * w + j]; };
  double left[kMaxDegree + 1], right[kMaxDegree + 1];

  NDU(0, 0) = 1.0;
  for (int j = 1; j <= p; ++j) {
    left[j] = x - t[span + 1 - j];
    right[j] = t[span + j] - x;
    double saved = 0.0;
    for (int r = 0; r < j; ++r) {
      NDU(j, r) = right[r + 1] + left[j - r];
      const double tmp = NDU(r, j - 1) / NDU(j, r);
      NDU(r, j) = saved + right[r + 1] * tmp;
      saved = left[j - r] * tmp;
    }
    NDU(j, j) = saved;
  }
  for (int j = 0; j <= p; ++j) ders[j] = NDU(j, p);
  for (int d = 1; d <= nder; ++d)
    for (int j = 0; j <= p; ++j) ders[d * w + j] = 0.0;

  const int kmax = std::min(nder, p);
  double awork[2][kMaxDegree + 1];
  for (int r = 0; r <= p; ++r) {
    int s1 = 0, s2 = 1;
    awork[0][0] = 1.0;
    for (int k = 1; k <= kmax; ++k) {
      double d = 0.0;
      const int rk = r - k, pk = p - k;
      if (r >= k) {
        awork[s2][0] = awork[s1][0] / NDU(pk + 1, rk);
        d = awork[s2][0] * NDU(rk, pk);
      }
      const int j1 = (rk >= -1) ? 1 : -rk;
      const int j2 = (r - 1 <= pk) ? k - 1 : p - r;
      for (int j = j1; j <= j2; ++j) {
        awork[s2][j] = (awork[s1][j] - awork[s1][j - 1]) / NDU(pk + 1, rk + j);
        d += awork[s2][j] * NDU(rk + j, pk);
      }
      if (r <= pk) {
        awork[s2][k] = -awork[s1][k - 1] / NDU(pk + 1, r);
        d += awork[s2][k] * NDU(r, pk);
      }
      ders[k * w + r] = d;
      std::swap(s1, s2);
    }
  }
  // Multiply by p! / (p-k)!.
  double fac = p;
  for (int k = 1; k <= kmax; ++k) {
    for (int j = 0; j <= p; ++j) ders[k * w + j] *= fac;
    fac *= (p - k);
  }
  return span - p;
}

double basis::spline_value(const double* coef, double x) const {
  double N[kMaxDegree + 1];
  const int first = eval(x, N);
  double acc = 0.0;
  for (int c = 0; c <= p_; ++c) acc += N[c] * coef[first + c];
  return acc;
}

double basis::spline_deriv(const double* coef, double x, int der) const {
  if (der > p_) return 0.0;
  std::vector<double> ders(static_cast<std::size_t>(der + 1) *
                           static_cast<std::size_t>(p_ + 1));
  const int first = eval_derivs(x, der, ders.data());
  const double* row = ders.data() + static_cast<std::size_t>(der) * (p_ + 1);
  double acc = 0.0;
  for (int c = 0; c <= p_; ++c) acc += row[c] * coef[first + c];
  return acc;
}

double basis::integrate(const double* coef) const {
  double acc = 0.0;
  for (int i = 0; i < n_; ++i)
    acc += coef[i] * (knots_[static_cast<std::size_t>(i + p_ + 1)] -
                      knots_[static_cast<std::size_t>(i)]);
  return acc / (p_ + 1);
}

banded::compact_banded basis::collocation_matrix(int der) const {
  PCF_REQUIRE(n_ >= 2 * p_ + 1,
              "not enough basis functions for compact band assembly");
  banded::compact_banded M(n_, p_);
  std::vector<double> ders(static_cast<std::size_t>(der + 1) *
                           static_cast<std::size_t>(p_ + 1));
  for (int i = 0; i < n_; ++i) {
    const int first = eval_derivs(greville_[static_cast<std::size_t>(i)], der,
                                  ders.data());
    const double* row = ders.data() + static_cast<std::size_t>(der) * (p_ + 1);
    for (int c = 0; c <= p_; ++c) {
      const double v = row[c];
      if (v != 0.0) M.at(i, first + c) = v;
    }
  }
  return M;
}

}  // namespace pcf::bspline
