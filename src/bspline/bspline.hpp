// B-spline basis on a clamped knot vector (DeBoor's recursion), Greville
// collocation points, and banded collocation-operator assembly.
//
// The paper represents the wall-normal (y) direction with 7th-order
// B-splines collocated at Greville abscissae; every wall-normal operator in
// the DNS (interpolation, first/second derivative, Helmholtz) is a banded
// matrix built from the values returned here.
#pragma once

#include <vector>

#include "banded/compact.hpp"
#include "util/check.hpp"

namespace pcf::bspline {

/// B-spline basis of given degree on a clamped knot vector.
class basis {
 public:
  /// Breakpoints must be strictly increasing with at least 2 entries;
  /// degree >= 1. The basis has (#breakpoints - 1) + degree functions.
  basis(std::vector<double> breakpoints, int degree);

  /// Uniform breakpoints on [a, b] with `intervals` knot spans.
  static basis uniform(double a, double b, int intervals, int degree);

  /// Hyperbolic-tangent-stretched breakpoints on [-1, 1] clustering toward
  /// the walls (stretch > 0; larger = more clustering), as used for
  /// channel-flow wall resolution. `intervals` knot spans.
  static basis channel(int intervals, double stretch, int degree);

  [[nodiscard]] int degree() const { return p_; }
  /// Number of basis functions n.
  [[nodiscard]] int size() const { return n_; }
  [[nodiscard]] double domain_min() const { return breaks_.front(); }
  [[nodiscard]] double domain_max() const { return breaks_.back(); }
  [[nodiscard]] const std::vector<double>& breakpoints() const { return breaks_; }
  [[nodiscard]] const std::vector<double>& knots() const { return knots_; }

  /// Greville abscissae xi_i = (t_{i+1} + ... + t_{i+p}) / p, i = 0..n-1;
  /// the collocation points. xi_0 = a and xi_{n-1} = b.
  [[nodiscard]] const std::vector<double>& greville() const { return greville_; }

  /// Index mu of the knot span containing x: knots[mu] <= x < knots[mu+1]
  /// (right-closed at the domain end). x must be inside the domain.
  [[nodiscard]] int find_span(double x) const;

  /// Evaluate the p+1 basis functions that are nonzero at x into N[0..p];
  /// returns the index of the first one (N[c] is basis function first+c).
  int eval(double x, double* N) const;

  /// Evaluate basis functions and derivatives up to order nder at x.
  /// ders is (nder+1) x (p+1), row d = d-th derivative; returns the index
  /// of the first nonzero basis function.
  int eval_derivs(double x, int nder, double* ders) const;

  /// Value of the spline with given coefficients (size n) at x.
  [[nodiscard]] double spline_value(const double* coef, double x) const;

  /// der-th derivative of the spline at x.
  [[nodiscard]] double spline_deriv(const double* coef, double x, int der) const;

  /// Integral of the spline over the whole domain:
  /// sum_i c_i (t_{i+p+1} - t_i) / (p + 1).
  [[nodiscard]] double integrate(const double* coef) const;

  /// Banded collocation matrix of the der-th derivative operator evaluated
  /// at the Greville points: M(i, j) = N_j^{(der)}(xi_i), in the compact
  /// shifted-band format with half-bandwidth = degree.
  [[nodiscard]] banded::compact_banded collocation_matrix(int der) const;

 private:
  int p_;                        // degree
  int n_;                        // number of basis functions
  std::vector<double> breaks_;   // strictly increasing breakpoints
  std::vector<double> knots_;    // clamped knot vector, n + p + 1 entries
  std::vector<double> greville_;
};

}  // namespace pcf::bspline
