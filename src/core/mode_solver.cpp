#include "core/mode_solver.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace pcf::core {

namespace {

/// Solve the two influence problems for one factored Helmholtz / Poisson
/// pair: phi12 and v12 (each 2n, both solutions contiguous) are filled and
/// the inverted 2x2 influence matrix written to minv. Shared between
/// mode_solver construction and the arena build.
void build_influence(const wall_normal_operators& ops,
                     banded::banded_view helm, banded::banded_view pois,
                     double* phi12, double* v12, double (*minv)[2]) {
  const auto n = static_cast<std::size_t>(ops.n());
  // Homogeneous Helmholtz solves with unit wall values of phi, batched as
  // one 2-RHS blocked solve.
  for (std::size_t i = 0; i < 2 * n; ++i) phi12[i] = 0.0;
  phi12[0] = 1.0;
  phi12[2 * n - 1] = 1.0;
  helm.solve_many(phi12, 2, n);

  // Corresponding v with homogeneous Dirichlet data, again batched.
  ops.to_points(phi12, v12);
  ops.to_points(phi12 + n, v12 + n);
  v12[0] = v12[n - 1] = 0.0;  // Dirichlet rows of the v system
  v12[n] = v12[2 * n - 1] = 0.0;
  pois.solve_many(v12, 2, n);

  // Influence matrix M[l][i] = v_i'(wall_l); invert once.
  const double m00 = ops.dspline_lower(v12);
  const double m01 = ops.dspline_lower(v12 + n);
  const double m10 = ops.dspline_upper(v12);
  const double m11 = ops.dspline_upper(v12 + n);
  const double det = m00 * m11 - m01 * m10;
  PCF_REQUIRE(det != 0.0, "singular influence matrix");
  minv[0][0] = m11 / det;
  minv[0][1] = -m01 / det;
  minv[1][0] = -m10 / det;
  minv[1][1] = m00 / det;
}

}  // namespace

void fused_solve(const wall_normal_operators& ops, banded::banded_view helm,
                 banded::banded_view pois, const double* phi12,
                 const double* v12, const double (*minv)[2], cplx* panel,
                 cplx* c_om, cplx* c_phi, cplx* c_v) {
  const auto n = static_cast<std::size_t>(ops.n());
  // Homogeneous Dirichlet rows of both systems, then one blocked pass over
  // the factored band for the two complex right-hand sides (4 real lanes).
  panel[0] = panel[n - 1] = cplx{0.0, 0.0};
  panel[n] = panel[2 * n - 1] = cplx{0.0, 0.0};
  helm.solve_many(panel, 2, n);
  for (std::size_t i = 0; i < n; ++i) c_om[i] = panel[i];
  for (std::size_t i = 0; i < n; ++i) c_phi[i] = panel[n + i];

  // v particular: (A2 - k2 A0) c_v = phi(points), v(+-1) = 0.
  ops.to_points(c_phi, c_v);
  c_v[0] = cplx{0.0, 0.0};
  c_v[n - 1] = cplx{0.0, 0.0};
  pois.solve(c_v);

  // Influence correction so that v'(+-1) = 0.
  const cplx rl = -ops.dspline_lower(c_v);
  const cplx ru = -ops.dspline_upper(c_v);
  const cplx a1 = minv[0][0] * rl + minv[0][1] * ru;
  const cplx a2 = minv[1][0] * rl + minv[1][1] * ru;
  const double* phi1 = phi12;
  const double* phi2 = phi12 + n;
  const double* v1 = v12;
  const double* v2 = v12 + n;
  for (std::size_t i = 0; i < n; ++i) {
    c_phi[i] += a1 * phi1[i] + a2 * phi2[i];
    c_v[i] += a1 * v1[i] + a2 * v2[i];
  }
}

mode_solver::mode_solver(const wall_normal_operators& ops, double c,
                         double k2)
    : ops_(ops), k2_(k2), helm_(ops.helmholtz(c, k2)), pois_(ops.poisson(k2)) {
  PCF_REQUIRE(k2 > 0.0, "mode_solver handles nonzero wavenumbers only");
  const auto n = static_cast<std::size_t>(ops.n());
  helm_.factorize();
  pois_.factorize();
  phi12_.resize(2 * n);
  v12_.resize(2 * n);
  build_influence(ops_, helm_.view(), pois_.view(), phi12_.data(),
                  v12_.data(), minv_);
}

void mode_solver::solve_dirichlet(cplx* rhs, cplx lo, cplx hi) const {
  const auto n = static_cast<std::size_t>(ops_.n());
  rhs[0] = lo;
  rhs[n - 1] = hi;
  helm_.solve(rhs);
}

void mode_solver::solve_phi_v(cplx* rhs_phi, cplx* c_phi, cplx* c_v) const {
  const auto n = static_cast<std::size_t>(ops_.n());
  // Particular solution with phi(+-1) = 0.
  rhs_phi[0] = cplx{0.0, 0.0};
  rhs_phi[n - 1] = cplx{0.0, 0.0};
  for (std::size_t i = 0; i < n; ++i) c_phi[i] = rhs_phi[i];
  helm_.solve(c_phi);

  // v particular: (A2 - k2 A0) c_v = phi(points), v(+-1) = 0.
  ops_.to_points(c_phi, c_v);
  c_v[0] = cplx{0.0, 0.0};
  c_v[n - 1] = cplx{0.0, 0.0};
  pois_.solve(c_v);

  // Influence correction so that v'(+-1) = 0.
  const cplx rl = -ops_.dspline_lower(c_v);
  const cplx ru = -ops_.dspline_upper(c_v);
  const cplx a1 = minv_[0][0] * rl + minv_[0][1] * ru;
  const cplx a2 = minv_[1][0] * rl + minv_[1][1] * ru;
  const double* phi1 = phi12_.data();
  const double* phi2 = phi12_.data() + n;
  const double* v1 = v12_.data();
  const double* v2 = v12_.data() + n;
  for (std::size_t i = 0; i < n; ++i) {
    c_phi[i] += a1 * phi1[i] + a2 * phi2[i];
    c_v[i] += a1 * v1[i] + a2 * v2[i];
  }
}

void mode_solver::solve_block(cplx* panel, cplx* c_om, cplx* c_phi,
                              cplx* c_v) const {
  fused_solve(ops_, helm_.view(), pois_.view(), phi12_.data(), v12_.data(),
              minv_, panel, c_om, c_phi, c_v);
}

void solver_arena::build(const wall_normal_operators& ops, double c,
                         const std::vector<double>& k2s, thread_pool& pool) {
  const int nm = static_cast<int>(k2s.size());
  const int n = ops.n();
  const int h = ops.A0().half_bandwidth();
  const auto be = static_cast<std::size_t>(n) *
                  static_cast<std::size_t>(2 * h + 1);
  if (nm != nm_ || n != n_ || h != h_) {
    nm_ = nm;
    n_ = n;
    h_ = h;
    be_ = be;
    const auto m = static_cast<std::size_t>(nm);
    helm_off_ = 0;
    pois_off_ = helm_off_ + m * be_;
    phi_off_ = pois_off_ + m * be_;
    v_off_ = phi_off_ + m * 2 * static_cast<std::size_t>(n);
    minv_off_ = v_off_ + m * 2 * static_cast<std::size_t>(n);
    slab_.assign(minv_off_ + m * 4, 0.0);
    active_.assign(m, 0);
  }
  ops_ = &ops;
  c_ = c;
  built_ = false;

  double* slab = slab_.data();
  pool.run(static_cast<std::size_t>(nm), [&](std::size_t lo, std::size_t hi) {
    // One reusable scratch pair per chunk: assembled in place, factorized,
    // then the factored band is copied into the slab.
    banded::compact_banded H(n, h), P(n, h);
    for (std::size_t m = lo; m < hi; ++m) {
      const double k2 = k2s[m];
      if (!(k2 > 0.0)) {
        active_[m] = 0;
        continue;
      }
      ops.helmholtz_into(H, c, k2);
      ops.poisson_into(P, k2);
      H.factorize();
      P.factorize();
      double* hb = slab + helm_off_ + m * be_;
      double* pb = slab + pois_off_ + m * be_;
      std::copy(H.data(), H.data() + be_, hb);
      std::copy(P.data(), P.data() + be_, pb);

      banded::banded_view hv(hb, n, h);
      banded::banded_view pv(pb, n, h);
      double* phi12 = slab + phi_off_ + m * 2 * static_cast<std::size_t>(n);
      double* v12 = slab + v_off_ + m * 2 * static_cast<std::size_t>(n);
      auto* minv =
          reinterpret_cast<double(*)[2]>(slab + minv_off_ + m * 4);
      build_influence(ops, hv, pv, phi12, v12, minv);
      active_[m] = 1;
    }
  });
  built_ = true;
}

void solver_arena::solve_block(int m, cplx* panel, cplx* c_om, cplx* c_phi,
                               cplx* c_v) const {
  PCF_REQUIRE(active(m), "solve_block on an unbuilt or inactive mode slot");
  banded::banded_view hv(helm_at(m), n_, h_);
  banded::banded_view pv(pois_at(m), n_, h_);
  const auto* minv = reinterpret_cast<const double(*)[2]>(
      slab_.data() + minv_off_ + static_cast<std::size_t>(m) * 4);
  fused_solve(*ops_, hv, pv, phi12_at(m), v12_at(m), minv, panel, c_om,
              c_phi, c_v);
}

void scalar_arena::build(const wall_normal_operators& ops, double c,
                         const std::vector<double>& k2s, thread_pool& pool) {
  const int nm = static_cast<int>(k2s.size());
  const int n = ops.n();
  const int h = ops.A0().half_bandwidth();
  const auto be = static_cast<std::size_t>(n) *
                  static_cast<std::size_t>(2 * h + 1);
  if (nm != nm_ || n != n_ || h != h_) {
    nm_ = nm;
    n_ = n;
    h_ = h;
    be_ = be;
    slab_.assign(static_cast<std::size_t>(nm) * be_, 0.0);
    active_.assign(static_cast<std::size_t>(nm), 0);
  }
  ops_ = &ops;
  c_ = c;
  built_ = false;

  double* slab = slab_.data();
  pool.run(static_cast<std::size_t>(nm), [&](std::size_t lo, std::size_t hi) {
    banded::compact_banded H(n, h);
    for (std::size_t m = lo; m < hi; ++m) {
      const double k2 = k2s[m];
      if (!(k2 > 0.0)) {
        active_[m] = 0;
        continue;
      }
      ops.helmholtz_into(H, c, k2);
      H.factorize();
      std::copy(H.data(), H.data() + be_, slab + m * be_);
      active_[m] = 1;
    }
  });
  built_ = true;
}

void scalar_arena::solve(int m, cplx* panel, std::size_t count, cplx lo,
                         cplx hi) const {
  PCF_REQUIRE(active(m), "scalar solve on an unbuilt or inactive mode slot");
  const auto n = static_cast<std::size_t>(n_);
  for (std::size_t r = 0; r < count; ++r) {
    panel[r * n] = lo;
    panel[(r + 1) * n - 1] = hi;
  }
  banded::banded_view hv(slab_.data() + static_cast<std::size_t>(m) * be_,
                         n_, h_);
  hv.solve_many(panel, count, n);
}

}  // namespace pcf::core
