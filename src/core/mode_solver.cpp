#include "core/mode_solver.hpp"

#include "util/check.hpp"

namespace pcf::core {

mode_solver::mode_solver(const wall_normal_operators& ops, double c,
                         double k2)
    : ops_(ops), k2_(k2), helm_(ops.helmholtz(c, k2)), pois_(ops.poisson(k2)) {
  PCF_REQUIRE(k2 > 0.0, "mode_solver handles nonzero wavenumbers only");
  const auto n = static_cast<std::size_t>(ops.n());
  helm_.factorize();
  pois_.factorize();

  // Influence solutions: homogeneous Helmholtz solves with unit wall values
  // of phi, then the corresponding v with homogeneous Dirichlet data.
  phi1_.assign(n, 0.0);
  phi2_.assign(n, 0.0);
  phi1_.front() = 1.0;
  phi2_.back() = 1.0;
  helm_.solve(phi1_.data());
  helm_.solve(phi2_.data());

  v1_.resize(n);
  v2_.resize(n);
  ops_.to_points(phi1_.data(), v1_.data());
  ops_.to_points(phi2_.data(), v2_.data());
  v1_.front() = v1_.back() = 0.0;  // Dirichlet rows of the v system
  v2_.front() = v2_.back() = 0.0;
  pois_.solve(v1_.data());
  pois_.solve(v2_.data());

  // Influence matrix M[l][i] = v_i'(wall_l); invert once.
  const double m00 = ops_.dspline_lower(v1_.data());
  const double m01 = ops_.dspline_lower(v2_.data());
  const double m10 = ops_.dspline_upper(v1_.data());
  const double m11 = ops_.dspline_upper(v2_.data());
  const double det = m00 * m11 - m01 * m10;
  PCF_REQUIRE(det != 0.0, "singular influence matrix");
  minv_[0][0] = m11 / det;
  minv_[0][1] = -m01 / det;
  minv_[1][0] = -m10 / det;
  minv_[1][1] = m00 / det;
}

void mode_solver::solve_dirichlet(cplx* rhs) const {
  const auto n = static_cast<std::size_t>(ops_.n());
  rhs[0] = cplx{0.0, 0.0};
  rhs[n - 1] = cplx{0.0, 0.0};
  helm_.solve(rhs);
}

void mode_solver::solve_phi_v(cplx* rhs_phi, cplx* c_phi, cplx* c_v) const {
  const auto n = static_cast<std::size_t>(ops_.n());
  // Particular solution with phi(+-1) = 0.
  rhs_phi[0] = cplx{0.0, 0.0};
  rhs_phi[n - 1] = cplx{0.0, 0.0};
  for (std::size_t i = 0; i < n; ++i) c_phi[i] = rhs_phi[i];
  helm_.solve(c_phi);

  // v particular: (A2 - k2 A0) c_v = phi(points), v(+-1) = 0.
  ops_.to_points(c_phi, c_v);
  c_v[0] = cplx{0.0, 0.0};
  c_v[n - 1] = cplx{0.0, 0.0};
  pois_.solve(c_v);

  // Influence correction so that v'(+-1) = 0.
  const cplx rl = -ops_.dspline_lower(c_v);
  const cplx ru = -ops_.dspline_upper(c_v);
  const cplx a1 = minv_[0][0] * rl + minv_[0][1] * ru;
  const cplx a2 = minv_[1][0] * rl + minv_[1][1] * ru;
  for (std::size_t i = 0; i < n; ++i) {
    c_phi[i] += a1 * phi1_[i] + a2 * phi2_[i];
    c_v[i] += a1 * v1_[i] + a2 * v2_[i];
  }
}

}  // namespace pcf::core
