// Per-wavenumber implicit solves of the KMM formulation.
//
// Each RK substep, for each Fourier mode (kx, kz) != (0, 0), three banded
// two-point boundary value problems are solved (paper Section 2.1):
//
//   [A0 - b nu dt (A2 - k2 A0)] c_omega = R_omega,   omega(+-1) = 0
//   [A0 - b nu dt (A2 - k2 A0)] c_phi   = R_phi,     phi BCs via influence
//   [A2 - k2 A0] c_v = phi(points),                  v(+-1) = 0
//
// The no-slip conditions v'(+-1) = 0 cannot be imposed on the second-order
// phi system directly; the classical influence (Green's function) matrix
// method is used: two homogeneous Helmholtz solutions with unit wall values
// of phi are combined with the particular solution so that v' vanishes at
// both walls.
//
// The omega and phi systems share the factored Helmholtz operator, so the
// substep loop feeds both right-hand sides as one 2-complex-RHS panel into
// the blocked multi-RHS solver (4 real lanes per band pass) — fused_solve()
// below. Per-mode factored state lives either in a standalone mode_solver
// or, for the simulation's per-substep caches, in a solver_arena that packs
// every mode's bands and influence data into one contiguous slab.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "core/operators.hpp"

namespace pcf {
class thread_pool;
}

namespace pcf::core {

/// Fused substep solve shared by mode_solver and solver_arena.
///
/// panel is 2n contiguous complex entries: [0, n) the omega right-hand
/// side, [n, 2n) the phi right-hand side. Boundary rows of both halves are
/// overwritten with homogeneous Dirichlet data, then both Helmholtz systems
/// are solved in one blocked 2-RHS pass. Outputs are spline-coefficient
/// vectors; the influence correction enforces v(+-1) = v'(+-1) = 0.
/// phi12 / v12 hold the two influence solutions contiguously (solution 1
/// at [0, n), solution 2 at [n, 2n)); minv is the inverted 2x2 influence
/// matrix. Results are bit-identical to the separate solve_dirichlet() +
/// solve_phi_v() path.
void fused_solve(const wall_normal_operators& ops, banded::banded_view helm,
                 banded::banded_view pois, const double* phi12,
                 const double* v12, const double (*minv)[2], cplx* panel,
                 cplx* c_om, cplx* c_phi, cplx* c_v);

/// Solver for one wavenumber pair at one implicit coefficient. Assembles
/// and factorizes on construction; solve() may then be applied to any
/// number of right-hand sides (it is reused for omega and phi).
class mode_solver {
 public:
  /// @param ops   shared wall-normal operators
  /// @param c     implicit coefficient beta_i * nu * dt
  /// @param k2    kx^2 + kz^2 (> 0)
  mode_solver(const wall_normal_operators& ops, double c, double k2);

  /// Solve the Helmholtz system with Dirichlet wall data lo / hi (in
  /// place; rhs -> spline coefficients). The operator's boundary rows are
  /// identity rows folded into the band, so writing the wall value into
  /// rows 0 / n-1 of the right-hand side imposes it exactly: on a clamped
  /// spline the first/last coefficient IS the wall value. The defaults
  /// keep the homogeneous no-slip behavior.
  void solve_dirichlet(cplx* rhs, cplx lo = cplx{0.0, 0.0},
                       cplx hi = cplx{0.0, 0.0}) const;

  /// Advance phi and recover v with the influence-matrix correction:
  /// on input rhs_phi holds the interior right-hand side (rows 0 / n-1 are
  /// overwritten); outputs are spline coefficient vectors c_phi, c_v
  /// satisfying (A2 - k2 A0) c_v = phi, v(+-1) = v'(+-1) = 0.
  void solve_phi_v(cplx* rhs_phi, cplx* c_phi, cplx* c_v) const;

  /// Fused omega + phi + v substep solve (see fused_solve). panel is the
  /// 2n-entry RHS panel; bit-identical to solve_dirichlet + solve_phi_v.
  void solve_block(cplx* panel, cplx* c_om, cplx* c_phi, cplx* c_v) const;

  [[nodiscard]] double k2() const { return k2_; }

 private:
  const wall_normal_operators& ops_;
  double k2_;
  banded::compact_banded helm_;  // factored Helmholtz operator
  banded::compact_banded pois_;  // factored (A2 - k2 A0)
  // Influence solutions (each 2n, both solutions contiguous so construction
  // batches them through one 2-RHS solve) and the 2x2 inverse influence
  // matrix.
  std::vector<double> phi12_, v12_;
  double minv_[2][2] = {{0, 0}, {0, 0}};
};

/// Contiguous arena of factored per-mode solvers for one implicit
/// coefficient beta_i * nu * dt. Replaces a vector of per-mode mode_solver
/// allocations: all factored Helmholtz / Poisson bands, influence solutions
/// and inverse influence matrices live in ONE slab (struct-of-arrays by
/// section), built in parallel on the advance pool. Solves go through
/// non-owning banded_view handles into the slab.
///
/// Lifetime rules: build() (re)allocates the slab only when the mode count
/// or operator shape changes; a dt change rebuilds *contents* in place.
/// clear() drops the built flag without releasing storage. Views handed out
/// by solve_block() are valid until the next build() or destruction.
class solver_arena {
 public:
  solver_arena() = default;

  /// Build (or rebuild) the arena over k2s.size() mode slots; slot m is
  /// active iff k2s[m] > 0 (the (0,0) mean mode and any masked modes are
  /// inactive). Assembly, factorization and the batched influence solves
  /// run chunk-parallel on pool.
  void build(const wall_normal_operators& ops, double c,
             const std::vector<double>& k2s, thread_pool& pool);

  /// Forget the built contents (storage is kept for the next build()).
  void clear() { built_ = false; }

  /// Forget the contents AND free the slab (the simulation's suspend
  /// path: a parked run should not pin its factored bands). The next
  /// build() reallocates and repopulates — bit-identical to a cold build,
  /// which the dt-change path already exercises.
  void reset() {
    built_ = false;
    nm_ = 0;
    slab_.clear();
    slab_.shrink_to_fit();
    active_.clear();
    active_.shrink_to_fit();
  }

  [[nodiscard]] bool built() const { return built_; }
  [[nodiscard]] double coeff() const { return c_; }
  [[nodiscard]] int modes() const { return nm_; }
  [[nodiscard]] bool active(int m) const {
    return built_ && m >= 0 && m < nm_ &&
           active_[static_cast<std::size_t>(m)] != 0;
  }
  [[nodiscard]] std::size_t storage_bytes() const {
    return slab_.size() * sizeof(double) + active_.size();
  }

  /// Fused omega + phi + v substep solve for mode slot m (see fused_solve).
  void solve_block(int m, cplx* panel, cplx* c_om, cplx* c_phi,
                   cplx* c_v) const;

 private:
  [[nodiscard]] const double* helm_at(int m) const {
    return slab_.data() + helm_off_ + static_cast<std::size_t>(m) * be_;
  }
  [[nodiscard]] const double* pois_at(int m) const {
    return slab_.data() + pois_off_ + static_cast<std::size_t>(m) * be_;
  }
  [[nodiscard]] const double* phi12_at(int m) const {
    return slab_.data() + phi_off_ +
           static_cast<std::size_t>(m) * 2 * static_cast<std::size_t>(n_);
  }
  [[nodiscard]] const double* v12_at(int m) const {
    return slab_.data() + v_off_ +
           static_cast<std::size_t>(m) * 2 * static_cast<std::size_t>(n_);
  }

  const wall_normal_operators* ops_ = nullptr;
  double c_ = 0.0;
  int nm_ = 0, n_ = 0, h_ = 0;
  std::size_t be_ = 0;  // stored band elements per factored operator
  // Section offsets into slab_: [helm bands | pois bands | phi12 | v12 |
  // minv], each section packed by mode slot.
  std::size_t helm_off_ = 0, pois_off_ = 0, phi_off_ = 0, v_off_ = 0,
              minv_off_ = 0;
  std::vector<double> slab_;
  std::vector<unsigned char> active_;
  bool built_ = false;
};

/// Contiguous arena of factored per-mode *scalar* Helmholtz operators for
/// one diffusive coefficient beta_i * kappa * dt. Passive-scalar transport
/// needs only the Dirichlet Helmholtz solve — no influence correction, no
/// Poisson recovery — so the slab holds just the factored bands (roughly a
/// fifth of solver_arena's storage per mode). solve() takes `count`
/// contiguous complex right-hand sides through one blocked multi-RHS band
/// pass (2 * count real lanes), so scalars sharing a Prandtl number share
/// one pass. Same lifetime rules as solver_arena.
class scalar_arena {
 public:
  scalar_arena() = default;

  /// Build (or rebuild) over k2s.size() mode slots; slot m is active iff
  /// k2s[m] > 0. Assembly and factorization run chunk-parallel on pool.
  void build(const wall_normal_operators& ops, double c,
             const std::vector<double>& k2s, thread_pool& pool);

  /// Forget the built contents (storage is kept for the next build()).
  void clear() { built_ = false; }

  /// Forget the contents AND free the slab (the suspend path).
  void reset() {
    built_ = false;
    nm_ = 0;
    slab_.clear();
    slab_.shrink_to_fit();
    active_.clear();
    active_.shrink_to_fit();
  }

  [[nodiscard]] bool built() const { return built_; }
  [[nodiscard]] double coeff() const { return c_; }
  [[nodiscard]] bool active(int m) const {
    return built_ && m >= 0 && m < nm_ &&
           active_[static_cast<std::size_t>(m)] != 0;
  }

  /// Dirichlet solve of `count` contiguous n-entry complex right-hand
  /// sides for mode slot m: every RHS gets wall values lo / hi written
  /// into its boundary rows (a wall-uniform scalar's fluctuation modes use
  /// the homogeneous defaults), then one blocked band pass covers all of
  /// them. In place; outputs are spline-coefficient lines.
  void solve(int m, cplx* panel, std::size_t count,
             cplx lo = cplx{0.0, 0.0}, cplx hi = cplx{0.0, 0.0}) const;

 private:
  const wall_normal_operators* ops_ = nullptr;
  double c_ = 0.0;
  int nm_ = 0, n_ = 0, h_ = 0;
  std::size_t be_ = 0;  // stored band elements per factored operator
  std::vector<double> slab_;
  std::vector<unsigned char> active_;
  bool built_ = false;
};

}  // namespace pcf::core
