// Per-wavenumber implicit solves of the KMM formulation.
//
// Each RK substep, for each Fourier mode (kx, kz) != (0, 0), three banded
// two-point boundary value problems are solved (paper Section 2.1):
//
//   [A0 - b nu dt (A2 - k2 A0)] c_omega = R_omega,   omega(+-1) = 0
//   [A0 - b nu dt (A2 - k2 A0)] c_phi   = R_phi,     phi BCs via influence
//   [A2 - k2 A0] c_v = phi(points),                  v(+-1) = 0
//
// The no-slip conditions v'(+-1) = 0 cannot be imposed on the second-order
// phi system directly; the classical influence (Green's function) matrix
// method is used: two homogeneous Helmholtz solutions with unit wall values
// of phi are combined with the particular solution so that v' vanishes at
// both walls.
#pragma once

#include <complex>
#include <vector>

#include "core/operators.hpp"

namespace pcf::core {

/// Solver for one wavenumber pair at one implicit coefficient. Assembles
/// and factorizes on construction; solve() may then be applied to any
/// number of right-hand sides (it is reused for omega and phi).
class mode_solver {
 public:
  /// @param ops   shared wall-normal operators
  /// @param c     implicit coefficient beta_i * nu * dt
  /// @param k2    kx^2 + kz^2 (> 0)
  mode_solver(const wall_normal_operators& ops, double c, double k2);

  /// Solve the Helmholtz system with homogeneous Dirichlet data already
  /// placed in rows 0 / n-1 of rhs (in place; rhs -> spline coefficients).
  void solve_dirichlet(cplx* rhs) const;

  /// Advance phi and recover v with the influence-matrix correction:
  /// on input rhs_phi holds the interior right-hand side (rows 0 / n-1 are
  /// overwritten); outputs are spline coefficient vectors c_phi, c_v
  /// satisfying (A2 - k2 A0) c_v = phi, v(+-1) = v'(+-1) = 0.
  void solve_phi_v(cplx* rhs_phi, cplx* c_phi, cplx* c_v) const;

  [[nodiscard]] double k2() const { return k2_; }

 private:
  const wall_normal_operators& ops_;
  double k2_;
  banded::compact_banded helm_;  // factored Helmholtz operator
  banded::compact_banded pois_;  // factored (A2 - k2 A0)
  // Influence solutions and the 2x2 inverse influence matrix.
  std::vector<double> phi1_, phi2_, v1_, v2_;
  double minv_[2][2] = {{0, 0}, {0, 0}};
};

}  // namespace pcf::core
