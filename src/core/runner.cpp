#include "core/runner.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>

#include "io/atomic_file.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace pcf::core {

double flow_through_time(channel_dns& dns) {
  const double ub = dns.bulk_velocity();
  PCF_REQUIRE(ub > 0.0, "flow-through time needs positive bulk velocity");
  return dns.config().lx / ub;
}

namespace {

std::string rank_suffix(const vmpi::communicator& world) {
  std::string s = ".";
  s += std::to_string(world.rank());
  return s;
}

// Append one blow-up entry to the report file (rank 0 only; append mode so
// repeated blow-ups in one campaign stay visible).
void append_blowup_report(const std::string& path, const run_report& rep,
                          const diag_sample& at, double dt_at_blowup,
                          const vmpi::comm_stats& stats, int ranks,
                          long restored_generation, double new_dt,
                          long retries_used, long max_retries) {
  std::ofstream os(path, std::ios::app);
  PCF_REQUIRE(os.good(), "cannot open blow-up report file: " + path);
  os.precision(12);
  os << "== blow-up report ==\n"
     << "step:           " << at.step << "\n"
     << "time:           " << at.time << "\n"
     << "dt at blow-up:  " << dt_at_blowup << "\n"
     << "kinetic energy: " << at.kinetic_energy << "\n"
     << "bulk velocity:  " << at.bulk_velocity << "\n"
     << "wall shear:     " << at.wall_shear << "\n"
     << "cfl:            " << at.cfl << "\n";
  os << "recent diagnostics (step, time, Ub, KE, tau_w, CFL):\n";
  const std::size_t n = rep.series.size();
  for (std::size_t i = n > 5 ? n - 5 : 0; i < n; ++i) {
    const auto& d = rep.series[i];
    os << "  " << d.step << ' ' << d.time << ' ' << d.bulk_velocity << ' '
       << d.kinetic_energy << ' ' << d.wall_shear << ' ' << d.cfl << '\n';
  }
  os << "vmpi comm stats: ranks=" << ranks
     << " alltoall_calls=" << stats.alltoall_calls
     << " exchange_calls=" << stats.exchange_calls
     << " reduce_calls=" << stats.reduce_calls
     << " bytes_sent=" << stats.bytes_sent << "\n";
  if (restored_generation >= 0) {
    os << "action: restored generation " << restored_generation
       << ", dt reduced to " << new_dt << " (retry " << retries_used
       << " of " << max_retries << ")\n";
  } else if (max_retries <= 0) {
    os << "action: halting (recovery disabled)\n";
  } else if (retries_used >= max_retries) {
    os << "action: halting (retry budget of " << max_retries
       << " exhausted)\n";
  } else {
    os << "action: halting (no usable checkpoint generation)\n";
  }
  os << '\n';
  PCF_REQUIRE(os.good(), "blow-up report write failed");
}

}  // namespace

long restore_newest_generation(channel_dns& dns, vmpi::communicator& world,
                               const std::string& prefix) {
  // Candidate list from rank 0's view of the directory, broadcast so every
  // rank walks the identical sequence of collectives even if a rank's own
  // files are missing.
  std::vector<long> gens;
  if (world.rank() == 0) gens = io::list_generations(prefix, ".0");
  auto ngen = static_cast<std::uint64_t>(gens.size());
  world.bcast(&ngen, 1, 0);
  gens.resize(static_cast<std::size_t>(ngen));
  if (ngen > 0) world.bcast(gens.data(), gens.size(), 0);

  for (std::size_t i = gens.size(); i-- > 0;) {
    const long g = gens[i];
    double ok = 1.0;
    try {
      dns.load_checkpoint(io::generation_path(prefix, g) +
                          rank_suffix(world));
    } catch (const std::exception&) {
      ok = 0.0;  // missing, truncated, or failed a section CRC
    }
    double all_ok = 0.0;
    world.allreduce_min(&ok, &all_ok, 1);
    if (all_ok == 0.0) continue;  // some rank rejected this generation
    // A checkpoint saved after the field already went non-finite cannot
    // rescue the run; fall back to the next-older generation.
    if (std::isfinite(dns.kinetic_energy())) return g;
  }
  return -1;
}

long resume_or_initialize(channel_dns& dns, vmpi::communicator& world,
                          const std::string& prefix, double perturbation,
                          std::uint64_t seed) {
  const long g = restore_newest_generation(dns, world, prefix);
  if (g < 0) dns.initialize(perturbation, seed);
  return g;
}

run_report run_campaign(channel_dns& dns, vmpi::communicator& world,
                        const run_plan& plan,
                        const std::function<void(const diag_sample&)>& on_diag) {
  PCF_REQUIRE(plan.flow_throughs > 0.0, "plan must run forward in time");
  PCF_REQUIRE(plan.warmup_fraction >= 0.0 && plan.warmup_fraction <= 1.0,
              "warmup fraction must be in [0, 1]");
  PCF_REQUIRE(plan.checkpoint_every <= 0 || plan.checkpoint_keep >= 1,
              "checkpoint rotation must keep at least one generation");
  PCF_REQUIRE(plan.max_blowup_retries <= 0 ||
                  (plan.retry_dt_factor > 0.0 && plan.retry_dt_factor <= 1.0),
              "retry dt factor must be in (0, 1]");
  run_report rep;
  const double t_ft = flow_through_time(dns);
  const double t_end = dns.time() + plan.flow_throughs * t_ft;
  const double t_stats = dns.time() +
                         plan.warmup_fraction * plan.flow_throughs * t_ft;
  const std::string report_path =
      !plan.report_path.empty()
          ? plan.report_path
          : (plan.checkpoint_path.empty() ? std::string{}
                                          : plan.checkpoint_path + ".blowup.txt");
  wall_timer clock;

  while (dns.time() < t_end) {
    if (plan.max_seconds > 0.0 && clock.seconds() >= plan.max_seconds) {
      rep.hit_time_budget = true;
      break;
    }
    dns.step();
    ++rep.steps_run;

    if (dns.time() >= t_stats && plan.stats_every > 0 &&
        dns.step_count() % plan.stats_every == 0) {
      dns.accumulate_stats();
    }
    if (plan.diag_every > 0 && dns.step_count() % plan.diag_every == 0) {
      diag_sample d;
      d.step = dns.step_count();
      d.time = dns.time();
      d.bulk_velocity = dns.bulk_velocity();
      d.kinetic_energy = dns.kinetic_energy();
      d.wall_shear = dns.wall_shear_stress();
      d.cfl = dns.cfl();
      rep.series.push_back(d);
      if (on_diag) on_diag(d);
      if (plan.stop_on_nonfinite && !std::isfinite(d.kinetic_energy)) {
        const double dt_at_blowup = dns.dt();
        long restored = -1;
        double new_dt = dt_at_blowup;
        if (rep.blowup_recoveries < plan.max_blowup_retries &&
            !plan.checkpoint_path.empty()) {
          restored =
              restore_newest_generation(dns, world, plan.checkpoint_path);
          if (restored >= 0) {
            new_dt = dns.dt() * plan.retry_dt_factor;
            dns.set_dt(new_dt);
          }
        }
        if (!report_path.empty()) {
          if (world.rank() == 0)
            append_blowup_report(report_path, rep, d, dt_at_blowup,
                                 world.stats(), world.size(), restored, new_dt,
                                 rep.blowup_recoveries + (restored >= 0),
                                 plan.max_blowup_retries);
          rep.wrote_report = true;
        }
        if (restored >= 0) {
          ++rep.blowup_recoveries;
          rep.restored_generation = restored;
          continue;  // resume stepping from the restored state
        }
        rep.went_nonfinite = true;
        break;
      }
    }
    if (plan.timings_every > 0 &&
        dns.step_count() % plan.timings_every == 0) {
      if (plan.on_timings) plan.on_timings(dns.timings());
      dns.reset_timings();
    }
    if (plan.checkpoint_every > 0 &&
        dns.step_count() % plan.checkpoint_every == 0) {
      PCF_REQUIRE(!plan.checkpoint_path.empty(),
                  "checkpoint cadence set without a path");
      dns.save_checkpoint(
          io::generation_path(plan.checkpoint_path, dns.step_count()) +
          rank_suffix(world));
      io::prune_generations(plan.checkpoint_path, rank_suffix(world),
                            plan.checkpoint_keep);
      ++rep.checkpoints_written;
    }
  }
  rep.profiles = dns.stats();
  return rep;
}

void write_series_csv(const std::string& path,
                      const std::vector<diag_sample>& series) {
  std::ofstream os(path);
  PCF_REQUIRE(os.good(), "cannot open series output file");
  os << "step,time,bulk_velocity,kinetic_energy,wall_shear,cfl\n";
  os.precision(12);
  for (const auto& d : series)
    os << d.step << ',' << d.time << ',' << d.bulk_velocity << ','
       << d.kinetic_energy << ',' << d.wall_shear << ',' << d.cfl << '\n';
  PCF_REQUIRE(os.good(), "series write failed");
}

}  // namespace pcf::core
