#include "core/runner.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "util/check.hpp"
#include "util/timer.hpp"

namespace pcf::core {

double flow_through_time(channel_dns& dns) {
  const double ub = dns.bulk_velocity();
  PCF_REQUIRE(ub > 0.0, "flow-through time needs positive bulk velocity");
  return dns.config().lx / ub;
}

run_report run_campaign(channel_dns& dns, vmpi::communicator& world,
                        const run_plan& plan,
                        const std::function<void(const diag_sample&)>& on_diag) {
  PCF_REQUIRE(plan.flow_throughs > 0.0, "plan must run forward in time");
  PCF_REQUIRE(plan.warmup_fraction >= 0.0 && plan.warmup_fraction <= 1.0,
              "warmup fraction must be in [0, 1]");
  run_report rep;
  const double t_ft = flow_through_time(dns);
  const double t_end = dns.time() + plan.flow_throughs * t_ft;
  const double t_stats = dns.time() +
                         plan.warmup_fraction * plan.flow_throughs * t_ft;
  wall_timer clock;

  while (dns.time() < t_end) {
    if (plan.max_seconds > 0.0 && clock.seconds() >= plan.max_seconds) {
      rep.hit_time_budget = true;
      break;
    }
    dns.step();
    ++rep.steps_run;

    if (dns.time() >= t_stats && plan.stats_every > 0 &&
        dns.step_count() % plan.stats_every == 0) {
      dns.accumulate_stats();
    }
    if (plan.diag_every > 0 && dns.step_count() % plan.diag_every == 0) {
      diag_sample d;
      d.step = dns.step_count();
      d.time = dns.time();
      d.bulk_velocity = dns.bulk_velocity();
      d.kinetic_energy = dns.kinetic_energy();
      d.wall_shear = dns.wall_shear_stress();
      d.cfl = dns.cfl();
      rep.series.push_back(d);
      if (on_diag) on_diag(d);
      if (plan.stop_on_nonfinite && !std::isfinite(d.kinetic_energy)) {
        rep.went_nonfinite = true;
        break;
      }
    }
    if (plan.checkpoint_every > 0 &&
        dns.step_count() % plan.checkpoint_every == 0) {
      PCF_REQUIRE(!plan.checkpoint_path.empty(),
                  "checkpoint cadence set without a path");
      dns.save_checkpoint(plan.checkpoint_path + "." +
                          std::to_string(world.rank()));
      ++rep.checkpoints_written;
    }
  }
  rep.profiles = dns.stats();
  return rep;
}

void write_series_csv(const std::string& path,
                      const std::vector<diag_sample>& series) {
  std::ofstream os(path);
  PCF_REQUIRE(os.good(), "cannot open series output file");
  os << "step,time,bulk_velocity,kinetic_energy,wall_shear,cfl\n";
  os.precision(12);
  for (const auto& d : series)
    os << d.step << ',' << d.time << ',' << d.bulk_velocity << ','
       << d.kinetic_energy << ',' << d.wall_shear << ',' << d.cfl << '\n';
  PCF_REQUIRE(os.good(), "series write failed");
}

}  // namespace pcf::core
