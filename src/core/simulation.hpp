// Turbulent channel flow DNS (paper Sections 2 and 6).
//
// Incompressible Navier-Stokes in the Kim-Moin-Moser wall-normal
// velocity/vorticity formulation: Fourier-Galerkin in x and z, B-spline
// collocation in y, low-storage RK3 IMEX time advance (Spalart-Moser-Rogers
// 1991), 3/2-rule dealiased pseudo-spectral nonlinear terms, and the
// customized pencil transpose/FFT kernel for the spectral <-> physical
// moves.
//
// Nondimensionalization: channel half-width delta = 1, friction velocity
// u_tau = 1. The flow is driven by a constant mean pressure gradient
// dP/dx = -1, so nu = 1 / Re_tau and the statistically steady state has
// wall shear stress 1 by construction.
#pragma once

#include <complex>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/operators.hpp"
#include "core/statistics.hpp"
#include "pencil/decomp.hpp"
#include "pencil/pencil.hpp"
#include "util/counters.hpp"
#include "vmpi/vmpi.hpp"

namespace pcf::core {

/// Upper bound on configured passive scalars. The nonlinear stage carries
/// the scalar fields in fixed-size pointer arrays so the hot loops stay
/// allocation-free; validate() enforces the bound.
inline constexpr std::size_t kMaxScalars = 8;

/// One passive scalar: advected by the resolved velocity field with
/// diffusivity kappa = 1 / (re_tau * prandtl) and Dirichlet wall values
/// theta(-1) = wall_lo, theta(+1) = wall_hi. The initial mean profile is
/// the linear conduction solution between the wall values.
struct scalar_spec {
  double prandtl = 1.0;
  double wall_lo = 0.0;
  double wall_hi = 0.0;
};

/// How the mean streamwise momentum is driven.
enum class forcing_mode {
  /// Constant mean pressure gradient -dP/dx = channel_config::forcing
  /// (the classical friction-units channel; F is a constant).
  pressure_gradient,
  /// Constant flow rate: every substep solves once without forcing, once
  /// for the forcing response, and picks F so the bulk velocity equals the
  /// target exactly (linearity of the mean Helmholtz solve). The applied F
  /// is an observable (channel_dns::current_forcing).
  flow_rate,
};

/// The scenario layer: wall boundary values, the forcing mode and the
/// passive-scalar list. The default-constructed value is the classical
/// constant-pressure-gradient Poiseuille channel, and a default scenario
/// leaves every code path and every checkpoint byte exactly as before.
struct scenario_config {
  // Streamwise / spanwise wall velocities: u(-1) = wall_u_lo, u(+1) =
  // wall_u_hi (plane Couette: wall_u_lo = -U_w, wall_u_hi = +U_w). The
  // walls are uniform in x and z, so moving walls live entirely in the
  // mean (0, 0) mode; fluctuations keep homogeneous no-slip conditions.
  double wall_u_lo = 0.0, wall_u_hi = 0.0;
  double wall_w_lo = 0.0, wall_w_hi = 0.0;

  forcing_mode forcing = forcing_mode::pressure_gradient;
  // flow_rate only: the bulk velocity to hold. <= 0 captures the bulk of
  // the state at the first advanced substep and holds that.
  double target_bulk = 0.0;

  std::vector<scalar_spec> scalars;

  [[nodiscard]] bool moving_walls() const {
    return wall_u_lo != 0.0 || wall_u_hi != 0.0 || wall_w_lo != 0.0 ||
           wall_w_hi != 0.0;
  }
  [[nodiscard]] bool constant_flow_rate() const {
    return forcing == forcing_mode::flow_rate;
  }
  [[nodiscard]] bool is_default() const {
    return !moving_walls() && !constant_flow_rate() && scalars.empty();
  }
};

struct channel_config {
  // Resolution: nx/nz Fourier modes (nx % 4 == 0, nz % 2 == 0), ny B-spline
  // basis functions of the given degree.
  std::size_t nx = 32;
  std::size_t nz = 32;
  int ny = 33;
  int degree = 7;
  double stretch = 2.0;  // tanh clustering of wall-normal breakpoints

  // Domain (channel half-width = 1). Defaults are the classical
  // Re_tau = 180 box of Kim-Moin-Moser / Moser-Kim-Mansour.
  double lx = 4.0 * 3.14159265358979323846;
  double lz = 4.0 * 3.14159265358979323846 / 3.0;

  double re_tau = 180.0;  // nu = 1 / re_tau
  double dt = 2e-4;       // fixed time step (friction units)
  double forcing = 1.0;   // mean pressure gradient -dP/dx (1 = friction units)

  // Decomposition layout (pencil::decomposition): the configured pencil
  // grid, a 1-D slab, a 2.5D slab-pencil hybrid, or `tuned` (measure the
  // valid candidates at construction and keep the fastest — implies the
  // transform autotuner). Slab and 2.5D resolve to a concrete pa/pb before
  // the Cartesian split, overriding the values below; all layouts are
  // bit-identical (the determinism suite pins all three to one CRC trace).
  pencil::decomposition decomposition = pencil::decomposition::pencil2d;
  // 2.5D replica-group size c (pa = c, pb = ranks / c); 0 picks the
  // smallest valid c >= 2.
  int replica_c = 0;

  // Process grid and on-node threading.
  int pa = 1;
  int pb = 1;
  int fft_threads = 1;
  int reorder_threads = 1;
  int advance_threads = 1;

  // Pencil-transform pipelining: > 1 overlaps the transpose exchanges of
  // one field group with the FFT/reorder of the previous group on a
  // dedicated comm thread (see pencil::kernel_config::pipeline_depth).
  int pipeline_depth = 1;

  // Widest multi-field batch one aggregated pencil exchange may carry
  // (pencil::kernel_config::max_batch). 5 fits the five nonlinear products
  // of an RK3 substep in one exchange per transpose stage; smaller values
  // chunk the batch and are bit-identical (the determinism suite pins F in
  // {1, 3, 5} to one CRC trace).
  int max_batch = 5;

  // Cache the factored Helmholtz/Poisson systems and influence vectors per
  // (wavenumber, substep). Exact same results; trades memory for the
  // repeated factorizations (ablation: bench_ablation_solver_cache).
  bool cache_solvers = true;

  // Lease the workspace lanes from the process-wide block pool
  // (pcf::block_pool::global()) instead of owning their slabs. Pooled
  // instances can suspend() — releasing every leased block back to the
  // pool for other simulations — and resume() onto possibly different
  // blocks with bit-identical physics. Allocation pattern aside, the two
  // regimes are byte-for-byte equivalent (the determinism-pooled preset
  // pins this).
  bool pooled_workspace = false;

  // Measure-and-pick autotuning of the transform kernel at construction
  // (pencil::autotune_transforms): {exchange strategy per communicator,
  // batch width <= max_batch, pipeline depth} are timed on this grid and
  // rank split, and the winner is written back into max_batch /
  // pipeline_depth / strategy_a / strategy_b before any workspace is
  // sized. Bit-identical physics for every choice (the determinism suite
  // pins this). `tuning_cache` persists winners across runs; empty
  // re-measures at every construction. A damaged or version-skewed cache
  // file falls back to measurement — it never aborts a run.
  bool autotune = false;
  std::string tuning_cache;

  // Exchange strategy per transpose communicator (CommA = z<->x, CommB =
  // y<->z). auto_plan defers to the kernel default (alltoall) or, with
  // `autotune`, to the measured winner.
  pencil::exchange_strategy strategy_a = pencil::exchange_strategy::auto_plan;
  pencil::exchange_strategy strategy_b = pencil::exchange_strategy::auto_plan;

  // Scenario layer: wall BC values, forcing mode, passive scalars. The
  // default is the classical channel and changes nothing.
  scenario_config scenario;

  /// Check every documented constraint (grid divisibility, ny/degree
  /// compatibility, positive physics parameters, scenario sanity) and
  /// throw a precondition_error naming the offending key. Called by the
  /// channel_dns constructor and the campaign job-file loader, so a bad
  /// config fails at the boundary with an actionable message instead of
  /// deep in the pencil/bspline layers.
  void validate() const;
};

/// One-dimensional energy spectra at one wall-normal location.
struct spectrum_data {
  std::vector<double> euu, evv, eww;  // indexed by wavenumber index
};

/// Section timings of one or more steps (the breakdown of Tables 9-10).
///
/// The flat fields are the legacy view; `phases` is the hierarchical
/// per-stage breakdown from the staged pipeline (step > nonlinear >
/// {velocities, to_physical, products, to_spectral, assemble}, implicit >
/// build, mean_flow, reduce). Parent rows include their children. The
/// flop/byte attribution is populated only on single-rank runs (counter
/// buckets are process-global and vmpi ranks share the process).
struct step_timings {
  struct phase_report {
    std::string name;
    int depth = 0;  // nesting level for display indentation
    double seconds = 0.0;
    long calls = 0;
    std::uint64_t flops = 0;
    std::uint64_t bytes = 0;  // read + written
  };

  double transpose = 0.0;  // communication + on-node reorder
  double fft = 0.0;
  double advance = 0.0;    // nonlinear assembly + implicit solves
  double total = 0.0;
  std::vector<phase_report> phases;

  /// Per-lane workspace high-water marks ("shared", "transform",
  /// "thread[i]"): capacity vs the deepest bytes ever checked out.
  struct lane_usage {
    std::string name;
    std::uint64_t capacity_bytes = 0;
    std::uint64_t peak_bytes = 0;
  };
  std::vector<lane_usage> workspace;
  bool pooled = false;  // lanes lease their slabs from the block pool
  /// Process-wide block-pool telemetry snapshot (all pools, live +
  /// retired); meaningful when any instance runs pooled.
  counters::pool_counts pool{};
};

class channel_dns {
 public:
  channel_dns(const channel_config& cfg, vmpi::communicator& world);
  ~channel_dns();
  channel_dns(const channel_dns&) = delete;
  channel_dns& operator=(const channel_dns&) = delete;

  [[nodiscard]] const channel_config& config() const;
  [[nodiscard]] const wall_normal_operators& operators() const;
  [[nodiscard]] const pencil::decomp& dec() const;

  /// Parabolic Poiseuille profile plus divergence-free perturbations of
  /// the given amplitude (fraction of the laminar centerline velocity) on
  /// the low Fourier modes. Deterministic for a given seed.
  void initialize(double perturbation, std::uint64_t seed = 1);

  /// Advance one full RK3 time step.
  void step();

  /// Change the time step (invalidates cached implicit solvers).
  void set_dt(double dt);

  // --- suspend / resume ------------------------------------------------------
  // A suspended simulation keeps its evolved state (fields, statistics,
  // time) but releases every workspace slab — pooled instances hand their
  // blocks back to the block pool for other simulations; owned instances
  // free to the OS — and drops the cached factored solver arenas. Any
  // state-touching call (step, diagnostics, checkpointing, ...) resumes
  // implicitly, re-leasing possibly different blocks; physics is
  // bit-identical across any number of suspend/resume cycles. Only legal
  // at a step boundary (always true from the public API; RK3 carries no
  // nonlinear history across steps).

  /// Release the workspace slabs and factored-solver storage. Idempotent.
  void suspend();
  /// Reacquire slabs and re-establish the permanent checkouts. Idempotent;
  /// also called implicitly by any state-touching entry point.
  void resume();
  [[nodiscard]] bool suspended() const;

  /// Adapt dt each step so the convective CFL tracks `target` (clamped to
  /// [dt_min, dt_max]); pass target <= 0 to disable. Uses the CFL of the
  /// previous step, so the controller lags by one step.
  void set_cfl_target(double target, double dt_min, double dt_max);

  [[nodiscard]] double time() const;
  [[nodiscard]] long step_count() const;
  [[nodiscard]] double dt() const;

  // --- diagnostics (collective calls) ------------------------------------
  /// Bulk (volume-averaged) streamwise velocity.
  double bulk_velocity();
  /// Volume-averaged kinetic energy 0.5 <u.u>.
  double kinetic_energy();
  /// Max |ikx u + dv/dy + ikz w| over modes and collocation points.
  double max_divergence();
  /// Convective CFL number of the last computed physical fields.
  [[nodiscard]] double cfl() const;
  /// Wall shear stress d<U>/dy * nu at the lower wall (should approach 1).
  double wall_shear_stress();
  /// Volume-averaged viscous dissipation nu <|grad u|^2>, computed
  /// spectrally. In a statistically steady state this balances the power
  /// input F * U_bulk; for laminar Poiseuille the balance is exact.
  double dissipation();

  // --- statistics ----------------------------------------------------------
  /// Sample the instantaneous velocity field into the running profiles.
  void accumulate_stats();
  [[nodiscard]] profile_data stats();
  void reset_stats();

  /// Copy the instantaneous physical velocity fields (x-pencil layout
  /// [z_local][y_local][x]) — for visualization (paper Figures 7-8).
  void physical_velocity(std::vector<double>& u, std::vector<double>& v,
                         std::vector<double>& w);

  /// Instantaneous spanwise vorticity omega_z = dv/dx - du/dy in physical
  /// space (same layout) — the quantity of paper Figure 8.
  void physical_vorticity_z(std::vector<double>& wz);

  /// Instantaneous 1-D energy spectra at collocation point y_index:
  /// E(kx) summed over kz (streamwise), indexed by the streamwise mode
  /// 0..nx/2-1. The conjugate (negative-kx) half is counted by the usual
  /// factor of two; the mean mode is excluded. Collective call.
  spectrum_data streamwise_spectra(int y_index);
  /// E(|kz|) summed over kx, indexed 0..nz/2.
  spectrum_data spanwise_spectra(int y_index);

  // --- state access ---------------------------------------------------------
  /// Mean streamwise velocity at the collocation points (valid on every
  /// rank; reduced internally).
  std::vector<double> mean_profile();
  /// Replace the mean streamwise profile (values at collocation points;
  /// must vanish at the walls). No-op on ranks not owning the mean mode.
  void set_mean_profile(const std::vector<double>& values_at_points);
  /// Spline coefficients of v-hat / omega-hat for global mode (jx, jz);
  /// empty if this rank does not own the mode.
  std::vector<std::complex<double>> mode_v(std::size_t jx, std::size_t jz);
  std::vector<std::complex<double>> mode_omega(std::size_t jx, std::size_t jz);

  // --- scenario observables -----------------------------------------------
  /// Number of configured passive scalars.
  [[nodiscard]] std::size_t num_scalars() const;
  /// Mean profile of scalar s at the collocation points (valid on every
  /// rank; reduced internally).
  std::vector<double> scalar_profile(std::size_t s);
  /// Replace the mean profile of scalar s (values at collocation points;
  /// the wall values are re-imposed by the next substep's BC rows). No-op
  /// on ranks not owning the mean mode.
  void set_scalar_profile(std::size_t s, const std::vector<double>& values);
  /// Wall flux kappa d<theta>/dy of scalar s at the lower wall.
  double scalar_wall_flux(std::size_t s);
  /// Spline coefficients of theta-hat for global mode (jx, jz); empty if
  /// this rank does not own the mode.
  std::vector<std::complex<double>> mode_scalar(std::size_t s, std::size_t jx,
                                                std::size_t jz);
  /// The mean streamwise forcing in effect: the configured constant for
  /// pressure-gradient driving; under constant flow rate, the F applied at
  /// the last advanced substep (0 before the first step). Collective.
  double current_forcing();
  /// The resolved flow-rate target bulk velocity (0 until captured /
  /// when pressure-gradient driven). Collective.
  double flow_rate_target();

  // --- checkpointing ---------------------------------------------------------
  // All three formats write crash-safely (temp file + atomic rename, so an
  // interrupted save never damages the previous checkpoint) in the v2
  // sectioned layout with a CRC-32 per array; loads verify every checksum
  // and reject truncation or trailing bytes with an error naming the bad
  // section. v1 files (no checksums) are still accepted on load.

  /// Save the evolved state to a per-rank binary file (call at a step
  /// boundary; RK3 carries no nonlinear history across steps). Restoring
  /// requires the same configuration and decomposition.
  void save_checkpoint(const std::string& path) const;
  void load_checkpoint(const std::string& path);

  /// Decomposition-independent checkpoint: gathers the global modal state
  /// and writes one file from rank 0 (collective). load redistributes it
  /// onto this instance's process grid, so a run saved on P_A x P_B ranks
  /// restarts on any other grid of the same spectral resolution.
  void save_checkpoint_global(const std::string& path);
  void load_checkpoint_global(const std::string& path);

  /// Parallel single-file checkpoint: every rank writes its own modes at
  /// their global offsets (MPI-IO style — no rank gathers the global
  /// state, so memory stays O(local) as a production-size run requires).
  /// The file layout is global, so it is also decomposition-independent.
  void save_checkpoint_parallel(const std::string& path);
  void load_checkpoint_parallel(const std::string& path);

  // --- performance ----------------------------------------------------------
  [[nodiscard]] step_timings timings() const;
  void reset_timings();

 private:
  struct impl;
  std::unique_ptr<impl> impl_;
};

}  // namespace pcf::core
