// Wall-normal collocation operators shared by every Fourier mode.
//
// The y direction is represented with degree-7 B-splines collocated at
// Greville points (paper Section 2.1). Every wall-normal operation in the
// DNS is one of three banded matrices built here:
//   A0 (interpolation: values at points from spline coefficients),
//   A1 (first derivative), A2 (second derivative),
// plus Helmholtz systems assembled from them per wavenumber.
#pragma once

#include <complex>
#include <memory>

#include "banded/compact.hpp"
#include "bspline/bspline.hpp"

namespace pcf::core {

using cplx = std::complex<double>;

class wall_normal_operators {
 public:
  /// ny = number of basis functions (collocation points); the spline space
  /// has ny - degree knot intervals, stretched toward the walls.
  wall_normal_operators(int ny, int degree, double stretch);

  [[nodiscard]] const bspline::basis& b() const { return basis_; }
  [[nodiscard]] int n() const { return basis_.size(); }
  [[nodiscard]] int degree() const { return basis_.degree(); }
  [[nodiscard]] const std::vector<double>& points() const {
    return basis_.greville();
  }

  [[nodiscard]] const banded::compact_banded& A0() const { return a0_; }
  [[nodiscard]] const banded::compact_banded& A1() const { return a1_; }
  [[nodiscard]] const banded::compact_banded& A2() const { return a2_; }

  /// Interpolation: overwrite point values with spline coefficients
  /// (solves A0 c = f). Complex or real lines.
  template <class S>
  void to_coefficients(S* line) const {
    a0_lu_.solve(line);
  }

  /// values[i] = spline(points[i]) from coefficients (A0 apply).
  template <class S>
  void to_points(const S* coef, S* values) const {
    a0_.apply(coef, values);
  }

  /// First/second derivative values at the collocation points.
  template <class S>
  void deriv1_points(const S* coef, S* values) const {
    a1_.apply(coef, values);
  }
  template <class S>
  void deriv2_points(const S* coef, S* values) const {
    a2_.apply(coef, values);
  }

  /// Derivative of the spline at the walls (for the influence matrix).
  [[nodiscard]] double dspline_lower(const double* coef) const;
  [[nodiscard]] double dspline_upper(const double* coef) const;
  [[nodiscard]] cplx dspline_lower(const cplx* coef) const;
  [[nodiscard]] cplx dspline_upper(const cplx* coef) const;

  /// Assemble M = A0 - c (A2 - k2 A0) over the interior rows, with
  /// identity boundary rows (Dirichlet at the clamped ends). This is the
  /// operator of paper equation (3) with c = beta_i nu dt.
  [[nodiscard]] banded::compact_banded helmholtz(double c, double k2) const;

  /// Assemble M = A2 - k2 A0 with identity boundary rows — the operator of
  /// paper equation (4) used to recover v from phi.
  [[nodiscard]] banded::compact_banded poisson(double k2) const;

  /// Allocation-free assembly variants: M (shape n() x n(), half-bandwidth
  /// matching A0) is cleared and refilled, so a caller building many
  /// operators — the solver arena — can reuse one scratch matrix.
  void helmholtz_into(banded::compact_banded& M, double c, double k2) const;
  void poisson_into(banded::compact_banded& M, double k2) const;

  /// y = [A0 + c (A2 - k2 A0)] x — the explicit side of the IMEX substep.
  void apply_rhs_operator(double c, double k2, const cplx* x, cplx* y) const;

  /// Same, with caller-provided scratch (length n()) so the per-mode RK3
  /// loop does not allocate.
  void apply_rhs_operator(double c, double k2, const cplx* x, cplx* y,
                          cplx* scratch) const;

 private:
  bspline::basis basis_;
  banded::compact_banded a0_, a1_, a2_;
  banded::compact_banded a0_lu_;  // factored copy of A0
  std::vector<double> dw_lo_, dw_hi_;  // wall-derivative weight rows
};

}  // namespace pcf::core
