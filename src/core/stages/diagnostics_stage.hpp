// Diagnostics stage: end-of-step CFL reduction, the adaptive-dt
// controller, and the per-stage timing report.
#pragma once

#include "core/stages/stage_context.hpp"

namespace pcf::core {

class diagnostics_stage {
 public:
  /// Registers "reduce" under `parent` (the CFL allreduce + controller).
  diagnostics_stage(stage_context& ctx, phase_timer::id parent);

  /// Adaptive time stepping (optional); target <= 0 disables it.
  void set_cfl_target(double target, double dt_min, double dt_max);

  /// End-of-step work: reduce the local CFL estimates into
  /// state.cfl_global and run the proportional dt controller. Returns the
  /// new dt if it should change, 0 to keep the current one — the caller
  /// owns applying it (and invalidating the cached solvers), since dt
  /// lives in the simulation's config.
  [[nodiscard]] double finish_step();

  /// Assemble the public timing report from the phase tree: the
  /// hierarchical per-stage rows plus the legacy flat fields (transpose /
  /// fft from the pencil kernel's own timers; advance = the compute
  /// phases, excluding the transforms, matching the pre-stage breakdown).
  [[nodiscard]] step_timings report() const;

 private:
  stage_context& ctx_;
  double cfl_target_ = 0.0, dt_min_ = 0.0, dt_max_ = 0.0;
  phase_timer::id ph_reduce_;
};

}  // namespace pcf::core
