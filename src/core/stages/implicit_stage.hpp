// Implicit stage of an RK3 substep (paper steps (g)-(i)): per-wavenumber
// viscous solves for omega and phi, then the Poisson recovery of v.
#pragma once

#include <complex>
#include <vector>

#include "core/mode_solver.hpp"
#include "core/stages/stage_context.hpp"

namespace pcf::core {

class implicit_stage {
 public:
  /// Registers "implicit" (with child "build") under `parent` and checks a
  /// permanent (3 + S)n-complex solve panel (2n RHS + n operator scratch +
  /// one RHS row per passive scalar) out of every thread lane, so the mode
  /// loop never allocates.
  implicit_stage(stage_context& ctx, phase_timer::id parent);

  /// Advance every non-mean mode through substep i. Reads h_v from
  /// state.u_s and h_g from state.v_s (where the nonlinear stage leaves
  /// them), updates c_om / c_phi / c_v and saves the nonlinear history.
  /// Passive scalars advance through the same loop: their diffusive
  /// Helmholtz solves are packed into the panel's scalar rows, grouped by
  /// Prandtl number so equal-diffusivity scalars share one blocked
  /// multi-RHS band pass.
  void run(int i);

  /// Drop the cached per-substep solver arenas (call when dt changes).
  void invalidate();

  /// Drop the arenas AND free their slabs (the suspend path: parked runs
  /// must not pin the factored bands). Rebuilt lazily on the next run().
  void drop_arenas();

  /// Re-check the per-thread solve panels out of the thread lanes after a
  /// workspace release/reacquire cycle (the simulation's resume path).
  void rebind_workspace();

 private:
  stage_context& ctx_;
  // One contiguous solver arena per RK substep index, since cb = beta_i dt
  // nu differs per substep; valid while dt is fixed.
  solver_arena arena_[3];
  // Scalars grouped by Prandtl number; `order_` lists scalar indices
  // group-major so each group's panel rows are contiguous.
  struct scalar_group {
    double kappa = 0.0;                // 1 / (re_tau * prandtl)
    std::size_t start = 0, count = 0;  // slice of order_
  };
  std::vector<scalar_group> groups_;
  std::vector<std::size_t> order_;
  // Per-substep, per-group factored scalar Helmholtz arenas (coefficient
  // beta_i dt kappa_g differs per substep and per group).
  std::vector<scalar_arena> sc_arena_[3];
  std::vector<cplx*> panels_;  // per-thread-lane permanent solve panels
  phase_timer::id ph_run_, ph_build_;
};

}  // namespace pcf::core
