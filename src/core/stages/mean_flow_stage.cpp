#include "core/stages/mean_flow_stage.hpp"

#include <algorithm>

namespace pcf::core {

mean_flow_stage::mean_flow_stage(stage_context& ctx, phase_timer::id parent)
    : ctx_(ctx), ph_run_(ctx.timers.add("mean_flow", parent)) {
  const std::size_t nsc = ctx.cfg.scenario.scalars.size();
  for (int i = 0; i < 3; ++i) {
    sc_helm_[i].resize(nsc);
    sc_helm_c_[i].assign(nsc, 0.0);
  }
  if (ctx.cfg.scenario.target_bulk > 0.0) {
    target_ = ctx.cfg.scenario.target_bulk;
    target_set_ = true;
  }
}

void mean_flow_stage::invalidate() {
  for (auto& h : helm_) h.reset();
  for (auto& v : sc_helm_)
    for (auto& h : v) h.reset();
  for (auto& r : resp_) r.clear();
  for (auto& c : resp_c_) c = 0.0;
}

void mean_flow_stage::restore_forcing(double target, double last) {
  target_ = target;
  target_set_ = target != 0.0;
  last_forcing_ = last;
}

void mean_flow_stage::run(int i) {
  phase_timer::section sec(ctx_.timers, ph_run_);
  if (!ctx_.modes.has_mean) return;
  auto& st = ctx_.state;
  const auto& ops = ctx_.ops;
  const auto& scen = ctx_.cfg.scenario;
  const std::size_t n = ctx_.modes.n;

  const double nu = 1.0 / ctx_.cfg.re_tau;
  const double ca = rk3::kAlpha[i] * ctx_.cfg.dt * nu;
  const double cb = rk3::kBeta[i] * ctx_.cfg.dt * nu;
  const double g = rk3::kGamma[i] * ctx_.cfg.dt;
  const double z = rk3::kZeta[i] * ctx_.cfg.dt;

  // Mean flow: [A0 - cb nu' A2] c = [A0 + ca nu' A2] c + dt (g (h + F)
  // + z (h_prev + F)) on the interior rows; the constant forcing F rides
  // with the nonlinear weights since gamma_i + zeta_i sums to 1 over a
  // step. The identity boundary rows carry the Dirichlet wall values.
  const banded::compact_banded* mean_op = nullptr;
  std::optional<banded::compact_banded> mean_scratch;
  if (ctx_.cfg.cache_solvers) {
    if (!helm_[i] || helm_c_[i] != cb) {
      helm_[i].emplace(ops.helmholtz(cb, 0.0));
      helm_[i]->factorize();
      helm_c_[i] = cb;
    }
    mean_op = &*helm_[i];
  } else {
    mean_scratch.emplace(ops.helmholtz(cb, 0.0));
    mean_scratch->factorize();
    mean_op = &*mean_scratch;
  }
  workspace_lane::scope scratch(ctx_.ws.shared());
  double* rhs = ctx_.ws.shared().alloc<double>(n);
  double* t = ctx_.ws.shared().alloc<double>(n);
  // Assemble and solve one mean profile's substep into `rhs` (not yet
  // committed to the state): forcing and nonlinear terms drive the
  // interior rows only, the boundary rows carry the wall values lo / hi.
  auto solve_mean = [&](const banded::compact_banded& op, double ca_c,
                        const std::vector<double>& c, const double* h,
                        const double* h_prev, double force, double lo,
                        double hi) {
    ops.A0().apply(c.data(), rhs);
    ops.A2().apply(c.data(), t);
    for (std::size_t j = 1; j + 1 < n; ++j)
      rhs[j] += ca_c * t[j] + g * (h[j] + force) + z * (h_prev[j] + force);
    rhs[0] = lo;
    rhs[n - 1] = hi;
    op.solve(rhs);
  };

  if (scen.constant_flow_rate()) {
    // Capture the target from the state's own bulk at the first advanced
    // substep when none was configured.
    if (!target_set_) {
      target_ = ops.b().integrate(st.c_U.data()) / 2.0;
      target_set_ = true;
    }
    // The forcing response S solves M S = (gamma_i + zeta_i) dt on the
    // interior with homogeneous walls; it depends only on (substep, dt),
    // keyed on cb like the operator cache.
    if (resp_[i].empty() || resp_c_[i] != cb) {
      resp_[i].assign(n, g + z);
      resp_[i][0] = 0.0;
      resp_[i][n - 1] = 0.0;
      mean_op->solve(resp_[i].data());
      resp_bulk_[i] = ops.b().integrate(resp_[i].data()) / 2.0;
      resp_c_[i] = cb;
    }
    // Solve once without forcing, then pick F by linearity so the bulk
    // velocity lands on the target exactly.
    solve_mean(*mean_op, ca, st.c_U, st.hU, st.hU_prev.data(), 0.0,
               scen.wall_u_lo, scen.wall_u_hi);
    const double u0_bulk = ops.b().integrate(rhs) / 2.0;
    const double f = (target_ - u0_bulk) / resp_bulk_[i];
    for (std::size_t j = 0; j < n; ++j)
      st.c_U[j] = rhs[j] + f * resp_[i][j];
    last_forcing_ = f;
  } else {
    solve_mean(*mean_op, ca, st.c_U, st.hU, st.hU_prev.data(),
               ctx_.cfg.forcing, scen.wall_u_lo, scen.wall_u_hi);
    std::copy_n(rhs, n, st.c_U.data());
    last_forcing_ = ctx_.cfg.forcing;
  }
  std::copy_n(st.hU, n, st.hU_prev.begin());

  solve_mean(*mean_op, ca, st.c_W, st.hW, st.hW_prev.data(), 0.0,
             scen.wall_w_lo, scen.wall_w_hi);
  std::copy_n(rhs, n, st.c_W.data());
  std::copy_n(st.hW, n, st.hW_prev.begin());

  // Passive-scalar means: same solve shape per scalar with its own
  // diffusivity and wall values (no volumetric forcing).
  for (std::size_t s = 0; s < st.scalars.size(); ++s) {
    auto& sc = st.scalars[s];
    const auto& spec = scen.scalars[s];
    const double kappa = 1.0 / (ctx_.cfg.re_tau * spec.prandtl);
    const double cas = rk3::kAlpha[i] * ctx_.cfg.dt * kappa;
    const double cbs = rk3::kBeta[i] * ctx_.cfg.dt * kappa;
    const banded::compact_banded* op = nullptr;
    std::optional<banded::compact_banded> op_scratch;
    if (ctx_.cfg.cache_solvers) {
      if (!sc_helm_[i][s] || sc_helm_c_[i][s] != cbs) {
        sc_helm_[i][s].emplace(ops.helmholtz(cbs, 0.0));
        sc_helm_[i][s]->factorize();
        sc_helm_c_[i][s] = cbs;
      }
      op = &*sc_helm_[i][s];
    } else {
      op_scratch.emplace(ops.helmholtz(cbs, 0.0));
      op_scratch->factorize();
      op = &*op_scratch;
    }
    solve_mean(*op, cas, sc.c_T, sc.hT.data(), sc.hT_prev.data(), 0.0,
               spec.wall_lo, spec.wall_hi);
    std::copy_n(rhs, n, sc.c_T.data());
    std::copy_n(sc.hT.data(), n, sc.hT_prev.begin());
  }
}

}  // namespace pcf::core
