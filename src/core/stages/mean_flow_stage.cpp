#include "core/stages/mean_flow_stage.hpp"

#include <algorithm>

namespace pcf::core {

mean_flow_stage::mean_flow_stage(stage_context& ctx, phase_timer::id parent)
    : ctx_(ctx), ph_run_(ctx.timers.add("mean_flow", parent)) {}

void mean_flow_stage::invalidate() {
  for (auto& h : helm_) h.reset();
}

void mean_flow_stage::run(int i) {
  phase_timer::section sec(ctx_.timers, ph_run_);
  if (!ctx_.modes.has_mean) return;
  auto& st = ctx_.state;
  const auto& ops = ctx_.ops;
  const std::size_t n = ctx_.modes.n;

  const double nu = 1.0 / ctx_.cfg.re_tau;
  const double ca = rk3::kAlpha[i] * ctx_.cfg.dt * nu;
  const double cb = rk3::kBeta[i] * ctx_.cfg.dt * nu;
  const double g = rk3::kGamma[i] * ctx_.cfg.dt;
  const double z = rk3::kZeta[i] * ctx_.cfg.dt;

  // Mean flow: [A0 - cb nu' A2] c = [A0 + ca nu' A2] c + dt (g (h + F)
  // + z (h_prev + F)); the constant pressure-gradient forcing F rides
  // with the nonlinear weights since gamma_i + zeta_i sums to 1 over a
  // step.
  const banded::compact_banded* mean_op = nullptr;
  std::optional<banded::compact_banded> mean_scratch;
  if (ctx_.cfg.cache_solvers) {
    if (!helm_[i] || helm_c_[i] != cb) {
      helm_[i].emplace(ops.helmholtz(cb, 0.0));
      helm_[i]->factorize();
      helm_c_[i] = cb;
    }
    mean_op = &*helm_[i];
  } else {
    mean_scratch.emplace(ops.helmholtz(cb, 0.0));
    mean_scratch->factorize();
    mean_op = &*mean_scratch;
  }
  workspace_lane::scope scratch(ctx_.ws.shared());
  double* rhs = ctx_.ws.shared().alloc<double>(n);
  double* t = ctx_.ws.shared().alloc<double>(n);
  auto advance_mean = [&](std::vector<double>& c, const double* h,
                          std::vector<double>& h_prev, double force) {
    ops.A0().apply(c.data(), rhs);
    ops.A2().apply(c.data(), t);
    for (std::size_t j = 0; j < n; ++j)
      rhs[j] += ca * t[j] + g * (h[j] + force) + z * (h_prev[j] + force);
    rhs[0] = 0.0;
    rhs[n - 1] = 0.0;
    mean_op->solve(rhs);
    std::copy_n(rhs, n, c.data());
    std::copy_n(h, n, h_prev.begin());
  };
  advance_mean(st.c_U, st.hU, st.hU_prev, ctx_.cfg.forcing);
  advance_mean(st.c_W, st.hW, st.hW_prev, 0.0);
}

}  // namespace pcf::core
