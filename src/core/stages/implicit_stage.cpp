#include "core/stages/implicit_stage.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

namespace pcf::core {

implicit_stage::implicit_stage(stage_context& ctx, phase_timer::id parent)
    : ctx_(ctx),
      ph_run_(ctx.timers.add("implicit", parent)),
      ph_build_(ctx.timers.add("build", ph_run_)) {
  const std::size_t n = ctx.modes.n;
  panels_.resize(ctx.ws.num_thread_lanes());
  for (std::size_t t = 0; t < panels_.size(); ++t)
    panels_[t] = ctx.ws.thread(t).alloc<cplx>(3 * n);
}

void implicit_stage::invalidate() {
  for (auto& a : arena_) a.clear();
}

void implicit_stage::drop_arenas() {
  for (auto& a : arena_) a.reset();
}

void implicit_stage::rebind_workspace() {
  const std::size_t n = ctx_.modes.n;
  for (std::size_t t = 0; t < panels_.size(); ++t)
    panels_[t] = ctx_.ws.thread(t).alloc<cplx>(3 * n);
}

void implicit_stage::run(int i) {
  phase_timer::section sec(ctx_.timers, ph_run_);
  const auto& mt = ctx_.modes;
  auto& st = ctx_.state;
  const auto& ops = ctx_.ops;
  const std::size_t n = mt.n;
  aligned_buffer<cplx>& hv = st.u_s;
  aligned_buffer<cplx>& hg = st.v_s;

  const double nu = 1.0 / ctx_.cfg.re_tau;
  const double ca = rk3::kAlpha[i] * ctx_.cfg.dt * nu;
  const double cb = rk3::kBeta[i] * ctx_.cfg.dt * nu;
  const double g = rk3::kGamma[i] * ctx_.cfg.dt;
  const double z = rk3::kZeta[i] * ctx_.cfg.dt;

  // (Re)build the substep's solver arena if dt changed or it was never
  // built; assembly and factorization are parallel on the advance pool.
  if (ctx_.cfg.cache_solvers &&
      (!arena_[i].built() || arena_[i].coeff() != cb)) {
    phase_timer::section build(ctx_.timers, ph_build_);
    arena_[i].build(ops, cb, mt.k2s, ctx_.pool);
  }

  std::atomic<int> tid_counter{0};
  ctx_.pool.run(mt.nmodes, [&](std::size_t mb, std::size_t me) {
    // Per-thread scratch: 2n-entry RHS panel (omega then phi) plus n for
    // the RHS-operator apply — no allocation inside the substep loop.
    const auto tid = static_cast<std::size_t>(tid_counter.fetch_add(1));
    cplx* panel = panels_[tid];
    cplx* tmp = panel + 2 * n;
    static thread_local std::unique_ptr<mode_solver> uncached;
    for (std::size_t m = mb; m < me; ++m) {
      if (mt.skip[m]) {
        if (!(mt.has_mean && m == mt.mean_idx)) {
          // Spanwise Nyquist modes are held at zero.
          std::fill_n(st.line(st.c_v, m), n, cplx{0, 0});
          std::fill_n(st.line(st.c_om, m), n, cplx{0, 0});
          std::fill_n(st.line(st.c_phi, m), n, cplx{0, 0});
        }
        continue;
      }
      const double k2 = mt.k2s[m];
      // Assemble both right-hand sides of the fused solve: omega in
      // panel rows [0, n), phi in rows [n, 2n).
      ops.apply_rhs_operator(ca, k2, st.line(st.c_om, m), panel, tmp);
      const cplx* hgm = st.line(hg, m);
      cplx* hgp = st.line(st.hg_prev, m);
      for (std::size_t j = 0; j < n; ++j)
        panel[j] += g * hgm[j] + z * hgp[j];
      ops.apply_rhs_operator(ca, k2, st.line(st.c_phi, m), panel + n, tmp);
      const cplx* hvm = st.line(hv, m);
      cplx* hvp = st.line(st.hv_prev, m);
      for (std::size_t j = 0; j < n; ++j)
        panel[n + j] += g * hvm[j] + z * hvp[j];
      // One blocked 2-RHS Helmholtz solve covers omega and phi, then the
      // Poisson recovery of v with the influence correction.
      if (ctx_.cfg.cache_solvers) {
        arena_[i].solve_block(static_cast<int>(m), panel,
                              st.line(st.c_om, m), st.line(st.c_phi, m),
                              st.line(st.c_v, m));
      } else {
        uncached = std::make_unique<mode_solver>(ops, cb, k2);
        uncached->solve_block(panel, st.line(st.c_om, m),
                              st.line(st.c_phi, m), st.line(st.c_v, m));
      }
      // Save nonlinear history for the next substep.
      std::copy_n(hgm, n, hgp);
      std::copy_n(hvm, n, hvp);
    }
  });
}

}  // namespace pcf::core
