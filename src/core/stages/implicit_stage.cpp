#include "core/stages/implicit_stage.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

namespace pcf::core {

implicit_stage::implicit_stage(stage_context& ctx, phase_timer::id parent)
    : ctx_(ctx),
      ph_run_(ctx.timers.add("implicit", parent)),
      ph_build_(ctx.timers.add("build", ph_run_)) {
  const std::size_t n = ctx.modes.n;
  // Group scalars by Prandtl number (first-occurrence order) so scalars
  // with equal diffusivity share one factored operator and one blocked
  // multi-RHS pass per mode.
  const auto& scalars = ctx.cfg.scenario.scalars;
  for (std::size_t s = 0; s < scalars.size(); ++s) {
    const double kappa = 1.0 / (ctx.cfg.re_tau * scalars[s].prandtl);
    auto it = std::find_if(groups_.begin(), groups_.end(),
                           [&](const scalar_group& g) {
                             return g.kappa == kappa;
                           });
    if (it == groups_.end()) {
      groups_.push_back({kappa, 0, 0});
      it = groups_.end() - 1;
    }
    it->count += 1;
  }
  std::size_t start = 0;
  for (auto& g : groups_) {
    g.start = start;
    start += g.count;
  }
  order_.resize(scalars.size());
  std::vector<std::size_t> fill(groups_.size(), 0);
  for (std::size_t s = 0; s < scalars.size(); ++s) {
    const double kappa = 1.0 / (ctx.cfg.re_tau * scalars[s].prandtl);
    for (std::size_t g = 0; g < groups_.size(); ++g)
      if (groups_[g].kappa == kappa) {
        order_[groups_[g].start + fill[g]++] = s;
        break;
      }
  }
  for (auto& a : sc_arena_) a.resize(groups_.size());

  panels_.resize(ctx.ws.num_thread_lanes());
  for (std::size_t t = 0; t < panels_.size(); ++t)
    panels_[t] = ctx.ws.thread(t).alloc<cplx>((3 + scalars.size()) * n);
}

void implicit_stage::invalidate() {
  for (auto& a : arena_) a.clear();
  for (auto& v : sc_arena_)
    for (auto& a : v) a.clear();
}

void implicit_stage::drop_arenas() {
  for (auto& a : arena_) a.reset();
  for (auto& v : sc_arena_)
    for (auto& a : v) a.reset();
}

void implicit_stage::rebind_workspace() {
  const std::size_t n = ctx_.modes.n;
  for (std::size_t t = 0; t < panels_.size(); ++t)
    panels_[t] = ctx_.ws.thread(t).alloc<cplx>(
        (3 + ctx_.cfg.scenario.scalars.size()) * n);
}

void implicit_stage::run(int i) {
  phase_timer::section sec(ctx_.timers, ph_run_);
  const auto& mt = ctx_.modes;
  auto& st = ctx_.state;
  const auto& ops = ctx_.ops;
  const std::size_t n = mt.n;
  aligned_buffer<cplx>& hv = st.u_s;
  aligned_buffer<cplx>& hg = st.v_s;

  const double nu = 1.0 / ctx_.cfg.re_tau;
  const double ca = rk3::kAlpha[i] * ctx_.cfg.dt * nu;
  const double cb = rk3::kBeta[i] * ctx_.cfg.dt * nu;
  const double g = rk3::kGamma[i] * ctx_.cfg.dt;
  const double z = rk3::kZeta[i] * ctx_.cfg.dt;

  // (Re)build the substep's solver arena if dt changed or it was never
  // built; assembly and factorization are parallel on the advance pool.
  if (ctx_.cfg.cache_solvers &&
      (!arena_[i].built() || arena_[i].coeff() != cb)) {
    phase_timer::section build(ctx_.timers, ph_build_);
    arena_[i].build(ops, cb, mt.k2s, ctx_.pool);
  }
  if (ctx_.cfg.cache_solvers) {
    for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
      scalar_arena& a = sc_arena_[i][gi];
      const double cbs = rk3::kBeta[i] * ctx_.cfg.dt * groups_[gi].kappa;
      if (!a.built() || a.coeff() != cbs) {
        phase_timer::section build(ctx_.timers, ph_build_);
        a.build(ops, cbs, mt.k2s, ctx_.pool);
      }
    }
  }

  std::atomic<int> tid_counter{0};
  ctx_.pool.run(mt.nmodes, [&](std::size_t mb, std::size_t me) {
    // Per-thread scratch: 2n-entry RHS panel (omega then phi) plus n for
    // the RHS-operator apply — no allocation inside the substep loop.
    const auto tid = static_cast<std::size_t>(tid_counter.fetch_add(1));
    cplx* panel = panels_[tid];
    cplx* tmp = panel + 2 * n;
    static thread_local std::unique_ptr<mode_solver> uncached;
    for (std::size_t m = mb; m < me; ++m) {
      if (mt.skip[m]) {
        if (!(mt.has_mean && m == mt.mean_idx)) {
          // Spanwise Nyquist modes are held at zero.
          std::fill_n(st.line(st.c_v, m), n, cplx{0, 0});
          std::fill_n(st.line(st.c_om, m), n, cplx{0, 0});
          std::fill_n(st.line(st.c_phi, m), n, cplx{0, 0});
          for (auto& sc : st.scalars)
            std::fill_n(st.line(sc.c_th, m), n, cplx{0, 0});
        }
        continue;
      }
      const double k2 = mt.k2s[m];
      // Assemble both right-hand sides of the fused solve: omega in
      // panel rows [0, n), phi in rows [n, 2n).
      ops.apply_rhs_operator(ca, k2, st.line(st.c_om, m), panel, tmp);
      const cplx* hgm = st.line(hg, m);
      cplx* hgp = st.line(st.hg_prev, m);
      for (std::size_t j = 0; j < n; ++j)
        panel[j] += g * hgm[j] + z * hgp[j];
      ops.apply_rhs_operator(ca, k2, st.line(st.c_phi, m), panel + n, tmp);
      const cplx* hvm = st.line(hv, m);
      cplx* hvp = st.line(st.hv_prev, m);
      for (std::size_t j = 0; j < n; ++j)
        panel[n + j] += g * hvm[j] + z * hvp[j];
      // One blocked 2-RHS Helmholtz solve covers omega and phi, then the
      // Poisson recovery of v with the influence correction.
      if (ctx_.cfg.cache_solvers) {
        arena_[i].solve_block(static_cast<int>(m), panel,
                              st.line(st.c_om, m), st.line(st.c_phi, m),
                              st.line(st.c_v, m));
      } else {
        uncached = std::make_unique<mode_solver>(ops, cb, k2);
        uncached->solve_block(panel, st.line(st.c_om, m),
                              st.line(st.c_phi, m), st.line(st.c_v, m));
      }
      // Save nonlinear history for the next substep.
      std::copy_n(hgm, n, hgp);
      std::copy_n(hvm, n, hvp);
      // Passive scalars: assemble every scalar's diffusive RHS into its
      // panel row, then one blocked multi-RHS band pass per Prandtl group
      // (homogeneous Dirichlet — wall values live entirely in the mean).
      for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
        const scalar_group& grp = groups_[gi];
        const double cas = rk3::kAlpha[i] * ctx_.cfg.dt * grp.kappa;
        cplx* rows = panel + (3 + grp.start) * n;
        for (std::size_t r = 0; r < grp.count; ++r) {
          auto& sc = st.scalars[order_[grp.start + r]];
          cplx* row = rows + r * n;
          ops.apply_rhs_operator(cas, k2, st.line(sc.c_th, m), row, tmp);
          const cplx* hm = st.line(sc.th_s, m);
          cplx* hp = st.line(sc.hth_prev, m);
          for (std::size_t j = 0; j < n; ++j)
            row[j] += g * hm[j] + z * hp[j];
          std::copy_n(hm, n, hp);
        }
        if (ctx_.cfg.cache_solvers) {
          sc_arena_[i][gi].solve(static_cast<int>(m), rows, grp.count);
        } else {
          const double cbs = rk3::kBeta[i] * ctx_.cfg.dt * grp.kappa;
          banded::compact_banded Hs = ops.helmholtz(cbs, k2);
          Hs.factorize();
          for (std::size_t r = 0; r < grp.count; ++r) {
            rows[r * n] = cplx{0, 0};
            rows[(r + 1) * n - 1] = cplx{0, 0};
          }
          Hs.solve_many(rows, static_cast<int>(grp.count), n);
        }
        for (std::size_t r = 0; r < grp.count; ++r)
          std::copy_n(rows + r * n, n,
                      st.line(st.scalars[order_[grp.start + r]].c_th, m));
      }
    }
  });
}

}  // namespace pcf::core
