// Mean-flow stage of an RK3 substep (paper step (j)): the (0, 0) mode's
// U and W profiles advance through a real Helmholtz solve with the
// constant pressure-gradient forcing.
#pragma once

#include <optional>

#include "banded/compact.hpp"
#include "core/stages/stage_context.hpp"

namespace pcf::core {

class mean_flow_stage {
 public:
  /// Registers "mean_flow" under `parent`. A no-op on ranks that do not
  /// own the mean mode.
  mean_flow_stage(stage_context& ctx, phase_timer::id parent);

  /// Advance the mean profiles through substep i. Reads the forcing
  /// state.hU / state.hW left by the nonlinear stage and updates
  /// c_U / c_W (+ their histories). Serial (one mode), runs on the
  /// calling thread with shared-lane scratch.
  void run(int i);

  /// Drop the cached factored mean operators (call when dt changes).
  void invalidate();

 private:
  stage_context& ctx_;
  // Factored mean-flow Helmholtz operator per substep index (it only
  // depends on cb = beta_i dt nu); valid while dt is fixed.
  std::optional<banded::compact_banded> helm_[3];
  double helm_c_[3] = {0.0, 0.0, 0.0};
  phase_timer::id ph_run_;
};

}  // namespace pcf::core
