// Mean-flow stage of an RK3 substep (paper step (j)): the (0, 0) mode's
// U and W profiles advance through a real Helmholtz solve, with the
// forcing applied to the interior rows only — the identity boundary rows
// carry the wall velocities (0 for the classical channel, the scenario's
// moving-wall values for plane Couette). Under constant-flow-rate forcing
// the substep solves once without forcing and once for the forcing
// response, then picks F by linearity so the bulk velocity lands on the
// target exactly. Configured passive-scalar means advance through the
// same solve shape with their own diffusivities and wall values.
#pragma once

#include <optional>
#include <vector>

#include "banded/compact.hpp"
#include "core/stages/stage_context.hpp"

namespace pcf::core {

class mean_flow_stage {
 public:
  /// Registers "mean_flow" under `parent`. A no-op on ranks that do not
  /// own the mean mode.
  mean_flow_stage(stage_context& ctx, phase_timer::id parent);

  /// Advance the mean profiles through substep i. Reads the forcing
  /// state.hU / state.hW left by the nonlinear stage and updates
  /// c_U / c_W (+ their histories), then every scalar's mean profile
  /// from its hT. Serial (one mode), runs on the calling thread with
  /// shared-lane scratch.
  void run(int i);

  /// Drop the cached factored mean operators and the flow-rate response
  /// profiles (call when dt changes).
  void invalidate();

  /// The forcing F applied at the most recent substep: cfg.forcing under
  /// pressure-gradient driving, the solved-for value under constant flow
  /// rate. Only meaningful on the mean-owning rank.
  [[nodiscard]] double last_forcing() const { return last_forcing_; }

  /// The resolved flow-rate target (captured or configured); 0 until the
  /// first advanced substep when target_bulk <= 0 was configured.
  [[nodiscard]] double flow_target() const {
    return target_set_ ? target_ : 0.0;
  }

  /// Restore the flow-rate forcing state from a checkpoint. A target of
  /// exactly 0 means "not captured yet".
  void restore_forcing(double target, double last);

 private:
  stage_context& ctx_;
  // Factored mean-flow Helmholtz operator per substep index (it only
  // depends on cb = beta_i dt nu); valid while dt is fixed.
  std::optional<banded::compact_banded> helm_[3];
  double helm_c_[3] = {0.0, 0.0, 0.0};
  // Per-scalar factored mean operators per substep (cb_s = beta_i dt
  // kappa_s), laid out scalar-major: sc_helm_[i][s].
  std::vector<std::optional<banded::compact_banded>> sc_helm_[3];
  std::vector<double> sc_helm_c_[3];
  // Constant-flow-rate state: per-substep forcing-response profile S
  // (solves M S = (gamma_i + zeta_i) dt on the interior, 0 on the walls)
  // and its bulk, keyed on cb like helm_c_.
  std::vector<double> resp_[3];
  double resp_bulk_[3] = {0.0, 0.0, 0.0};
  double resp_c_[3] = {0.0, 0.0, 0.0};
  double target_ = 0.0;
  bool target_set_ = false;
  double last_forcing_ = 0.0;
  phase_timer::id ph_run_;
};

}  // namespace pcf::core
