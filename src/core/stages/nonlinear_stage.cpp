#include "core/stages/nonlinear_stage.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

namespace pcf::core {

nonlinear_stage::nonlinear_stage(stage_context& ctx, phase_timer::id parent)
    : ctx_(ctx),
      cfl_maxes_(ctx.ws.shared().alloc<double>(
          static_cast<std::size_t>(ctx.pool.num_threads()))),
      ph_run_(ctx.timers.add("nonlinear", parent)),
      ph_vel_(ctx.timers.add("velocities", ph_run_)),
      ph_to_phys_(ctx.timers.add("to_physical", ph_run_)),
      ph_prod_(ctx.timers.add("products", ph_run_)),
      ph_to_spec_(ctx.timers.add("to_spectral", ph_run_)),
      ph_asm_(ctx.timers.add("assemble", ph_run_)) {}

void nonlinear_stage::rebind_workspace() {
  cfl_maxes_ = ctx_.ws.shared().alloc<double>(
      static_cast<std::size_t>(ctx_.pool.num_threads()));
}

void nonlinear_stage::run() {
  phase_timer::section sec(ctx_.timers, ph_run_);
  compute_velocities();
  velocities_to_physical();
  compute_products();
  products_to_spectral();
  assemble();
}

void nonlinear_stage::compute_velocities() {
  phase_timer::section sec(ctx_.timers, ph_vel_);
  const auto& mt = ctx_.modes;
  auto& st = ctx_.state;
  const auto& ops = ctx_.ops;
  const std::size_t n = mt.n;
  std::atomic<int> tid_counter{0};
  ctx_.pool.run(mt.nmodes, [&](std::size_t mb, std::size_t me) {
    const auto tid = static_cast<std::size_t>(tid_counter.fetch_add(1));
    workspace_lane::scope scratch(ctx_.ws.thread(tid));
    cplx* dv = ctx_.ws.thread(tid).alloc<cplx>(n);
    cplx* om = ctx_.ws.thread(tid).alloc<cplx>(n);
    double* pts = ctx_.ws.thread(tid).alloc<double>(n);
    for (std::size_t m = mb; m < me; ++m) {
      cplx* us = st.line(st.u_s, m);
      cplx* vs = st.line(st.v_s, m);
      cplx* ws = st.line(st.w_s, m);
      // Scalars at the collocation points (the mean profile rides the
      // mean mode's line, exactly like U / W below).
      for (auto& sc : st.scalars) {
        cplx* ths = st.line(sc.th_s, m);
        if (mt.skip[m]) {
          std::fill_n(ths, n, cplx{0, 0});
          if (mt.has_mean && m == mt.mean_idx) {
            ops.to_points(sc.c_T.data(), pts);
            for (std::size_t i = 0; i < n; ++i) ths[i] = pts[i];
          }
        } else {
          ops.to_points(st.line(sc.c_th, m), ths);
        }
      }
      if (mt.skip[m]) {
        std::fill_n(us, n, cplx{0, 0});
        std::fill_n(vs, n, cplx{0, 0});
        std::fill_n(ws, n, cplx{0, 0});
        if (mt.has_mean && m == mt.mean_idx) {
          ops.to_points(st.c_U.data(), pts);
          for (std::size_t i = 0; i < n; ++i) us[i] = pts[i];
          ops.to_points(st.c_W.data(), pts);
          for (std::size_t i = 0; i < n; ++i) ws[i] = pts[i];
        }
        continue;
      }
      const double k2 = mt.kx[m] * mt.kx[m] + mt.kz[m] * mt.kz[m];
      ops.deriv1_points(st.line(st.c_v, m), dv);
      ops.to_points(st.line(st.c_om, m), om);
      ops.to_points(st.line(st.c_v, m), vs);
      const cplx ikx{0.0, mt.kx[m] / k2};
      const cplx ikz{0.0, mt.kz[m] / k2};
      for (std::size_t i = 0; i < n; ++i) {
        us[i] = ikx * dv[i] - ikz * om[i];
        ws[i] = ikz * dv[i] + ikx * om[i];
      }
    }
  });
}

void nonlinear_stage::velocities_to_physical() {
  phase_timer::section sec(ctx_.timers, ph_to_phys_);
  auto& st = ctx_.state;
  // Fixed-size pointer tables (kMaxScalars-bounded) keep this hot path
  // allocation-free; the scalars ride the same aggregated exchange as the
  // velocity components.
  const std::size_t nsc = st.scalars.size();
  const cplx* specs[3 + kMaxScalars] = {st.u_s.data(), st.v_s.data(),
                                        st.w_s.data()};
  double* phys[3 + kMaxScalars] = {st.u_p.data(), st.v_p.data(),
                                   st.w_p.data()};
  for (std::size_t s = 0; s < nsc; ++s) {
    specs[3 + s] = st.scalars[s].th_s.data();
    phys[3 + s] = st.scalars[s].th_p.data();
  }
  ctx_.pf.to_physical_batch(specs, phys, 3 + nsc);
}

void nonlinear_stage::compute_products() {
  phase_timer::section sec(ctx_.timers, ph_prod_);
  auto& st = ctx_.state;
  const auto& d = ctx_.d;
  const std::size_t ps = d.x_pencil_real_elems();
  const double dx = ctx_.cfg.lx / static_cast<double>(d.nxf);
  const double dz = ctx_.cfg.lz / static_cast<double>(d.nzf);
  double dy_min = 2.0;
  const auto& pts = ctx_.ops.points();
  for (std::size_t i = 1; i < pts.size(); ++i)
    dy_min = std::min(dy_min, pts[i] - pts[i - 1]);
  const auto nthreads = static_cast<std::size_t>(ctx_.pool.num_threads());
  std::fill_n(cfl_maxes_, nthreads, 0.0);
  std::atomic<int> tid_counter{0};
  ctx_.pool.run(ps, [&](std::size_t b, std::size_t e) {
    const int tid = tid_counter.fetch_add(1);
    double mx = 0.0;
    for (std::size_t i = b; i < e; ++i) {
      const double u = st.u_p[i], v = st.v_p[i], w = st.w_p[i];
      st.f1[i] = u * u - v * v;
      st.f2[i] = u * v;
      st.f3[i] = u * w;
      st.f4[i] = v * w;
      st.f5[i] = w * w - v * v;
      mx = std::max(mx, std::abs(u) / dx + std::abs(v) / dy_min +
                            std::abs(w) / dz);
    }
    cfl_maxes_[static_cast<std::size_t>(tid)] = mx;
    // Scalar advective fluxes u theta / v theta / w theta, after the
    // velocity loop so the CFL kernel above is untouched.
    for (auto& sc : st.scalars)
      for (std::size_t i = b; i < e; ++i) {
        const double th = sc.th_p[i];
        sc.gu[i] = st.u_p[i] * th;
        sc.gv[i] = st.v_p[i] * th;
        sc.gw[i] = st.w_p[i] * th;
      }
  });
  st.cfl_local = 0.0;
  for (std::size_t t = 0; t < nthreads; ++t)
    st.cfl_local = std::max(st.cfl_local, cfl_maxes_[t] * ctx_.cfg.dt);
}

void nonlinear_stage::products_to_spectral() {
  phase_timer::section sec(ctx_.timers, ph_to_spec_);
  auto& st = ctx_.state;
  const std::size_t nsc = st.scalars.size();
  const double* prods[5 + 3 * kMaxScalars] = {st.f1.data(), st.f2.data(),
                                              st.f3.data(), st.f4.data(),
                                              st.f5.data()};
  cplx* specs[5 + 3 * kMaxScalars] = {st.q1.data(), st.q2.data(),
                                      st.q3.data(), st.q4.data(),
                                      st.q5.data()};
  for (std::size_t s = 0; s < nsc; ++s) {
    auto& sc = st.scalars[s];
    prods[5 + 3 * s + 0] = sc.gu.data();
    prods[5 + 3 * s + 1] = sc.gv.data();
    prods[5 + 3 * s + 2] = sc.gw.data();
    specs[5 + 3 * s + 0] = sc.qu.data();
    specs[5 + 3 * s + 1] = sc.qv.data();
    specs[5 + 3 * s + 2] = sc.qw.data();
  }
  ctx_.pf.to_spectral_batch(prods, specs, 5 + 3 * nsc);
}

void nonlinear_stage::assemble() {
  phase_timer::section sec(ctx_.timers, ph_asm_);
  const auto& mt = ctx_.modes;
  auto& st = ctx_.state;
  const auto& ops = ctx_.ops;
  const std::size_t n = mt.n;
  // h_v and h_g are assembled into the velocity work buffers (free once
  // the products are formed); the mean forcing of this substep starts from
  // zero every call, exactly like the zero-initialized locals it replaced.
  aligned_buffer<cplx>& hv = st.u_s;
  aligned_buffer<cplx>& hg = st.v_s;
  std::fill_n(st.hU, n, 0.0);
  std::fill_n(st.hW, n, 0.0);
  for (auto& sc : st.scalars) std::fill(sc.hT.begin(), sc.hT.end(), 0.0);
  const std::size_t nsc = st.scalars.size();
  std::atomic<int> tid_counter{0};
  ctx_.pool.run(mt.nmodes, [&](std::size_t mb, std::size_t me) {
    const auto tid = static_cast<std::size_t>(tid_counter.fetch_add(1));
    workspace_lane::scope scratch(ctx_.ws.thread(tid));
    auto& lane = ctx_.ws.thread(tid);
    cplx* c1 = lane.alloc<cplx>(n);
    cplx* c2 = lane.alloc<cplx>(n);
    cplx* c3 = lane.alloc<cplx>(n);
    cplx* c4 = lane.alloc<cplx>(n);
    cplx* c5 = lane.alloc<cplx>(n);
    cplx* d1 = lane.alloc<cplx>(n);
    cplx* d2a = lane.alloc<cplx>(n);
    cplx* d3 = lane.alloc<cplx>(n);
    cplx* d4a = lane.alloc<cplx>(n);
    cplx* d5 = lane.alloc<cplx>(n);
    cplx* d2b = lane.alloc<cplx>(n);
    cplx* d4b = lane.alloc<cplx>(n);
    // Two extra lines for the scalar flux derivative, reused across the
    // scalars of a mode (they are assembled sequentially).
    cplx* csc = nsc > 0 ? lane.alloc<cplx>(n) : nullptr;
    cplx* dsc = nsc > 0 ? lane.alloc<cplx>(n) : nullptr;
    for (std::size_t m = mb; m < me; ++m) {
      cplx* hvm = st.line(hv, m);
      cplx* hgm = st.line(hg, m);
      // Scalar right-hand sides h_theta = -(i kx (u th)^ + d(v th)^/dy +
      // i kz (w th)^), assembled into th_s (free once the products are
      // formed, mirroring h_v / h_g into u_s / v_s); the mean mode feeds
      // <H_theta> = -d<v theta>/dy into hT.
      for (auto& sc : st.scalars) {
        cplx* hthm = st.line(sc.th_s, m);
        if (mt.skip[m]) {
          std::fill_n(hthm, n, cplx{0, 0});
          if (mt.has_mean && m == mt.mean_idx) {
            std::copy_n(st.line(sc.qv, m), n, csc);
            ops.to_coefficients(csc);
            ops.deriv1_points(csc, dsc);
            for (std::size_t i = 0; i < n; ++i) sc.hT[i] = -dsc[i].real();
          }
          continue;
        }
        std::copy_n(st.line(sc.qv, m), n, csc);
        ops.to_coefficients(csc);
        ops.deriv1_points(csc, dsc);
        const cplx ikxs{0.0, mt.kx[m]};
        const cplx ikzs{0.0, mt.kz[m]};
        const cplx* pu = st.line(sc.qu, m);
        const cplx* pw = st.line(sc.qw, m);
        for (std::size_t i = 0; i < n; ++i)
          hthm[i] = -(ikxs * pu[i] + dsc[i] + ikzs * pw[i]);
      }
      if (mt.skip[m]) {
        std::fill_n(hvm, n, cplx{0, 0});
        std::fill_n(hgm, n, cplx{0, 0});
        if (mt.has_mean && m == mt.mean_idx) {
          // <H1> = -d<uv>/dy, <H3> = -d<vw>/dy (real parts of mode 0).
          std::copy_n(st.line(st.q2, m), n, c2);
          std::copy_n(st.line(st.q4, m), n, c4);
          ops.to_coefficients(c2);
          ops.to_coefficients(c4);
          ops.deriv1_points(c2, d2a);
          ops.deriv1_points(c4, d4a);
          for (std::size_t i = 0; i < n; ++i) {
            st.hU[i] = -d2a[i].real();
            st.hW[i] = -d4a[i].real();
          }
        }
        continue;
      }
      const double kxm = mt.kx[m], kzm = mt.kz[m];
      const double k2 = kxm * kxm + kzm * kzm;
      std::copy_n(st.line(st.q1, m), n, c1);
      std::copy_n(st.line(st.q2, m), n, c2);
      std::copy_n(st.line(st.q3, m), n, c3);
      std::copy_n(st.line(st.q4, m), n, c4);
      std::copy_n(st.line(st.q5, m), n, c5);
      ops.to_coefficients(c1);
      ops.to_coefficients(c2);
      ops.to_coefficients(c3);
      ops.to_coefficients(c4);
      ops.to_coefficients(c5);
      ops.deriv1_points(c1, d1);
      ops.deriv1_points(c2, d2a);
      ops.deriv1_points(c3, d3);
      ops.deriv1_points(c4, d4a);
      ops.deriv1_points(c5, d5);
      ops.deriv2_points(c2, d2b);
      ops.deriv2_points(c4, d4b);
      const cplx i_unit{0.0, 1.0};
      const cplx* p1 = st.line(st.q1, m);
      const cplx* p2 = st.line(st.q2, m);
      const cplx* p3 = st.line(st.q3, m);
      const cplx* p4 = st.line(st.q4, m);
      const cplx* p5 = st.line(st.q5, m);
      for (std::size_t i = 0; i < n; ++i) {
        // h_g = kx kz (f1 - f5) + (kz^2 - kx^2) f3
        //       - i kz d(f2)/dy + i kx d(f4)/dy
        hgm[i] = kxm * kzm * (p1[i] - p5[i]) +
                 (kzm * kzm - kxm * kxm) * p3[i] -
                 i_unit * kzm * d2a[i] + i_unit * kxm * d4a[i];
        // h_v = i k2 (kx f2 + kz f4) - d/dy [ kx^2 f1 + 2 kx kz f3
        //       + kz^2 f5 - i kx d(f2)/dy - i kz d(f4)/dy ]
        hvm[i] = i_unit * k2 * (kxm * p2[i] + kzm * p4[i]) -
                 (kxm * kxm * d1[i] + 2.0 * kxm * kzm * d3[i] +
                  kzm * kzm * d5[i] - i_unit * kxm * d2b[i] -
                  i_unit * kzm * d4b[i]);
      }
    }
  });
}

}  // namespace pcf::core
