// Shared context of the staged RK3 substep pipeline.
//
// The simulation advances one step as an explicit sequence of stages
// (paper steps (a)-(j), Section 2.1):
//
//   nonlinear_stage   spectral velocities -> physical batch -> quadratic
//                     products (+ CFL) -> spectral batch -> KMM h_v / h_g
//   implicit_stage    per-mode omega / phi / v arena solves
//   mean_flow_stage   the (0, 0) mean U / W advance
//   diagnostics_stage CFL reduction, adaptive dt, timing report
//
// Every stage consumes the same stage_context: immutable grid/wavenumber
// tables (mode_tables), the evolved + work fields (field_state), the
// preallocated scratch arena (field_workspace) and the per-stage phase
// timer. Stages are independently constructible against a hand-built
// context, which is how the per-stage unit tests drive them.
#pragma once

#include <cstdint>
#include <vector>

#include "core/operators.hpp"
#include "core/simulation.hpp"
#include "pencil/autotune.hpp"
#include "pencil/pencil.hpp"
#include "util/aligned.hpp"
#include "util/phase_timer.hpp"
#include "util/thread_pool.hpp"
#include "util/workspace.hpp"
#include "vmpi/vmpi.hpp"

namespace pcf::core {

/// Spalart-Moser-Rogers (1991) low-storage RK3 IMEX coefficients.
/// Substep i: [I - beta_i dt nu L] x = [I + alpha_i dt nu L] x + dt
/// (gamma_i N + zeta_i N_prev), L = D^2 - k^2. zeta_1 = 0, so no nonlinear
/// history is carried across full steps.
namespace rk3 {
inline constexpr double kAlpha[3] = {29.0 / 96.0, -3.0 / 40.0, 1.0 / 6.0};
inline constexpr double kBeta[3] = {37.0 / 160.0, 5.0 / 24.0, 1.0 / 6.0};
inline constexpr double kGamma[3] = {8.0 / 15.0, 5.0 / 12.0, 3.0 / 4.0};
inline constexpr double kZeta[3] = {0.0, -17.0 / 60.0, -5.0 / 12.0};
}  // namespace rk3

/// Pencil-kernel configuration for the DNS: batch wide enough for the five
/// nonlinear products of an RK3 substep to ride one aggregated exchange
/// per transpose stage, with pipelining taken from the run configuration.
[[nodiscard]] pencil::kernel_config dns_kernel_config(
    const channel_config& c);

/// The tuning-cache key a DNS of configuration `c` measures under — what
/// tests pre-seed and tools inspect. Derived from the *configured* batch
/// ceiling, not a tuner-resolved one.
[[nodiscard]] pencil::tune_key dns_tune_key(const channel_config& c);

/// If c.autotune is set, run pencil::autotune_transforms for this grid and
/// rank split (collective over `world`) and write the chosen batch width,
/// pipeline depth and exchange strategies back into `c`; otherwise a
/// no-op. Returns `c` for use in a constructor init list — the resolution
/// must happen before dns_workspace_sizes() sizes the transform lane.
const channel_config& resolve_tuning(channel_config& c,
                                     vmpi::communicator& world,
                                     vmpi::cart2d& cart);

/// Resolve c.decomposition into a concrete process grid *before* the
/// Cartesian split exists: slab and 2.5D layouts override c.pa/c.pb,
/// `tuned` measures the runnable candidates (pencil::
/// autotune_decomposition, collective over `world`, persisted in
/// c.tuning_cache) and writes the winner back. After this call
/// c.decomposition names a concrete layout and c.pa x c.pb covers the
/// ranks, ready for cart2d construction.
channel_config& resolve_parallel_plan(channel_config& c,
                                      vmpi::communicator& world);

/// Per-rank wavenumber tables, fixed for the simulation's lifetime.
struct mode_tables {
  std::size_t n = 0;       // wall-normal points
  std::size_t nmodes = 0;  // local (kx, kz) pairs
  bool has_mean = false;   // this rank owns the (0, 0) mode
  std::size_t mean_idx = 0;

  std::vector<double> kx, kz;  // local wavenumber values
  // Mean mode + spanwise Nyquist modes. uint8_t, not vector<bool>: the
  // per-mode hot loops index it every iteration and the packed bitset's
  // proxy reference is slower and non-addressable.
  std::vector<std::uint8_t> skip;
  // Per-mode kx^2 + kz^2. A zero does double duty: it marks a skipped
  // mode (mean / Nyquist), and downstream solver_arena::build leaves the
  // slot inactive for exactly those modes.
  std::vector<double> k2s;
};

/// Build the tables from the configuration and this rank's decomposition.
[[nodiscard]] mode_tables make_mode_tables(const channel_config& c,
                                           const pencil::decomp& d);

/// Evolved state plus the transform-sized work fields every stage reads or
/// writes. Large fields own their storage (they are the simulation's
/// footprint, not scratch); the substep-lifetime mean forcings hU/hW are
/// permanent checkouts on the workspace's shared lane.
struct field_state {
  /// Allocates every field; hU/hW come out of ws.shared() (permanent).
  /// nscalars adds one scalar_state per configured passive scalar (the
  /// default keeps the velocity-only layout and footprint).
  field_state(const mode_tables& modes, std::size_t phys_elems,
              field_workspace& ws, std::size_t nscalars = 0);

  /// Re-check hU/hW out of the (freshly reacquired) shared lane after a
  /// workspace release/reacquire cycle. hU/hW are contents-dead at step
  /// boundaries — the nonlinear stage zero-fills and rewrites them every
  /// substep before anything reads them — so only the pointers need
  /// re-establishing; they are zero-filled anyway for definedness. Must be
  /// the FIRST shared-lane checkout after reacquire (construction order).
  void rebind_workspace(field_workspace& ws);

  std::size_t n = 0;  // line length (= modes.n)

  // Evolved state (spline coefficients, one length-n line per local mode).
  aligned_buffer<cplx> c_v, c_om, c_phi;
  aligned_buffer<cplx> hv_prev, hg_prev;
  std::vector<double> c_U, c_W, hU_prev, hW_prev;

  // Work fields.
  aligned_buffer<cplx> u_s, v_s, w_s;         // spectral velocities (points)
  aligned_buffer<cplx> q1, q2, q3, q4, q5;    // spectral products (points)
  aligned_buffer<double> u_p, v_p, w_p;       // physical velocities
  aligned_buffer<double> f1, f2, f3, f4, f5;  // physical products

  // Mean nonlinear forcing of the current substep (length n each).
  double* hU = nullptr;
  double* hW = nullptr;

  /// One passive scalar's evolved state and work fields. The scalar rides
  /// the same pipeline as the velocities: th_s carries theta-hat at the
  /// collocation points into the batched physical transform and is
  /// overwritten with the nonlinear right-hand side h_theta by the
  /// assembly (mirroring how h_v / h_g reuse u_s / v_s).
  struct scalar_state {
    aligned_buffer<cplx> c_th;      // evolved fluctuation coefficients
    aligned_buffer<cplx> hth_prev;  // nonlinear history
    aligned_buffer<cplx> th_s;      // theta at points; h_theta after assemble
    aligned_buffer<cplx> qu, qv, qw;    // spectral products u/v/w * theta
    aligned_buffer<double> th_p;        // physical scalar
    aligned_buffer<double> gu, gv, gw;  // physical products
    // Mean profile coefficients, nonlinear history, and the current
    // substep's mean forcing (plain vectors: tiny, serial, suspend-safe).
    std::vector<double> c_T, hT_prev, hT;
  };
  std::vector<scalar_state> scalars;

  double cfl_local = 0.0, cfl_global = 0.0;

  /// Zero the evolved state and nonlinear histories. The mean-mode
  /// histories must be cleared too: the RK3 zeta weight is zero on the
  /// first substep, but 0 * NaN from a contaminated previous state would
  /// still poison a restored run.
  void zero();

  [[nodiscard]] cplx* line(aligned_buffer<cplx>& b, std::size_t m) const {
    return b.data() + m * n;
  }
  [[nodiscard]] const cplx* line(const aligned_buffer<cplx>& b,
                                 std::size_t m) const {
    return b.data() + m * n;
  }
};

/// Everything a stage needs, by reference; the simulation (or a test
/// harness) owns the referents. cfg is live — dt changes made by the
/// adaptive controller are visible to the stages on the next substep.
struct stage_context {
  const channel_config& cfg;
  const pencil::decomp& d;
  const wall_normal_operators& ops;
  pencil::parallel_fft& pf;
  thread_pool& pool;
  vmpi::communicator& world;
  const mode_tables& modes;
  field_state& state;
  field_workspace& ws;
  phase_timer& timers;
};

/// Workspace capacities for a DNS of this configuration/decomposition:
/// sized for the deepest transient user of each lane (see the .cpp for the
/// inventory) plus per-checkout alignment slack.
[[nodiscard]] field_workspace::sizes dns_workspace_sizes(
    const channel_config& c, const pencil::decomp& d);

}  // namespace pcf::core
