#include "core/stages/stage_context.hpp"

#include <algorithm>
#include <numbers>

namespace pcf::core {

pencil::kernel_config dns_kernel_config(const channel_config& c) {
  pencil::kernel_config k{true, true, c.fft_threads, c.reorder_threads};
  k.max_batch = std::max(1, c.max_batch);
  k.pipeline_depth = c.pipeline_depth;
  k.strategy_a = c.strategy_a;
  k.strategy_b = c.strategy_b;
  return k;
}

pencil::tune_key dns_tune_key(const channel_config& c) {
  const pencil::grid g{c.nx, static_cast<std::size_t>(c.ny), c.nz};
  return pencil::make_tune_key(g, dns_kernel_config(c), c.pa, c.pb);
}

channel_config& resolve_parallel_plan(channel_config& c,
                                      vmpi::communicator& world) {
  const pencil::grid g{c.nx, static_cast<std::size_t>(c.ny), c.nz};
  pencil::tune_options opt;
  opt.cache_path = c.tuning_cache;
  const pencil::decomp_tune_report rep = pencil::autotune_decomposition(
      g, world, c.decomposition, c.pa, c.pb, c.replica_c,
      dns_kernel_config(c), opt);
  c.decomposition = rep.plan.kind;
  c.pa = rep.plan.pa;
  c.pb = rep.plan.pb;
  c.replica_c = rep.plan.replica_c;
  return c;
}

const channel_config& resolve_tuning(channel_config& c,
                                     vmpi::communicator& world,
                                     vmpi::cart2d& cart) {
  if (!c.autotune) return c;
  const pencil::grid g{c.nx, static_cast<std::size_t>(c.ny), c.nz};
  pencil::tune_options opt;
  opt.cache_path = c.tuning_cache;
  const pencil::tune_report rep =
      pencil::autotune_transforms(g, world, cart, dns_kernel_config(c), opt);
  c.max_batch = rep.choice.batch;
  c.pipeline_depth = rep.choice.pipeline_depth;
  c.strategy_a = rep.choice.strat_a;
  c.strategy_b = rep.choice.strat_b;
  c.autotune = false;  // resolved: reconstruction must not re-measure
  return c;
}

mode_tables make_mode_tables(const channel_config& c,
                             const pencil::decomp& d) {
  mode_tables t;
  t.n = static_cast<std::size_t>(c.ny);
  t.nmodes = d.xs.count * d.zs.count;
  const double ax = 2.0 * std::numbers::pi / c.lx;
  const double az = 2.0 * std::numbers::pi / c.lz;
  t.kx.resize(t.nmodes);
  t.kz.resize(t.nmodes);
  t.skip.assign(t.nmodes, 0);
  t.has_mean = false;
  for (std::size_t x = 0; x < d.xs.count; ++x) {
    for (std::size_t z = 0; z < d.zs.count; ++z) {
      const std::size_t m = x * d.zs.count + z;
      const std::size_t jx = d.xs.offset + x;
      const std::size_t jz = d.zs.offset + z;
      t.kx[m] = ax * static_cast<double>(jx);
      const long mz = jz < c.nz / 2
                          ? static_cast<long>(jz)
                          : static_cast<long>(jz) - static_cast<long>(c.nz);
      t.kz[m] = az * static_cast<double>(mz);
      if (jz == c.nz / 2) t.skip[m] = 1;  // spanwise Nyquist
      if (jx == 0 && jz == 0) {
        t.skip[m] = 1;  // mean mode handled by mean_flow_stage
        t.has_mean = true;
        t.mean_idx = m;
      }
    }
  }
  t.k2s.resize(t.nmodes);
  for (std::size_t m = 0; m < t.nmodes; ++m)
    t.k2s[m] = t.skip[m] ? 0.0 : t.kx[m] * t.kx[m] + t.kz[m] * t.kz[m];
  return t;
}

field_state::field_state(const mode_tables& modes, std::size_t phys_elems,
                         field_workspace& ws, std::size_t nscalars)
    : n(modes.n) {
  const std::size_t sz = modes.nmodes * n;
  c_v.reset(sz);
  c_om.reset(sz);
  c_phi.reset(sz);
  hv_prev.reset(sz);
  hg_prev.reset(sz);
  u_s.reset(sz);
  v_s.reset(sz);
  w_s.reset(sz);
  q1.reset(sz);
  q2.reset(sz);
  q3.reset(sz);
  q4.reset(sz);
  q5.reset(sz);
  u_p.reset(phys_elems);
  v_p.reset(phys_elems);
  w_p.reset(phys_elems);
  f1.reset(phys_elems);
  f2.reset(phys_elems);
  f3.reset(phys_elems);
  f4.reset(phys_elems);
  f5.reset(phys_elems);
  c_U.assign(n, 0.0);
  c_W.assign(n, 0.0);
  hU_prev.assign(n, 0.0);
  hW_prev.assign(n, 0.0);
  scalars.resize(nscalars);
  for (scalar_state& sc : scalars) {
    sc.c_th.reset(sz);
    sc.hth_prev.reset(sz);
    sc.th_s.reset(sz);
    sc.qu.reset(sz);
    sc.qv.reset(sz);
    sc.qw.reset(sz);
    sc.th_p.reset(phys_elems);
    sc.gu.reset(phys_elems);
    sc.gv.reset(phys_elems);
    sc.gw.reset(phys_elems);
    sc.c_T.assign(n, 0.0);
    sc.hT_prev.assign(n, 0.0);
    sc.hT.assign(n, 0.0);
  }
  hU = ws.shared().alloc<double>(n);
  hW = ws.shared().alloc<double>(n);
  std::fill_n(hU, n, 0.0);
  std::fill_n(hW, n, 0.0);
}

void field_state::rebind_workspace(field_workspace& ws) {
  hU = ws.shared().alloc<double>(n);
  hW = ws.shared().alloc<double>(n);
  std::fill_n(hU, n, 0.0);
  std::fill_n(hW, n, 0.0);
}

void field_state::zero() {
  c_v.fill(cplx{0, 0});
  c_om.fill(cplx{0, 0});
  c_phi.fill(cplx{0, 0});
  hv_prev.fill(cplx{0, 0});
  hg_prev.fill(cplx{0, 0});
  std::fill(c_U.begin(), c_U.end(), 0.0);
  std::fill(c_W.begin(), c_W.end(), 0.0);
  std::fill(hU_prev.begin(), hU_prev.end(), 0.0);
  std::fill(hW_prev.begin(), hW_prev.end(), 0.0);
  for (scalar_state& sc : scalars) {
    sc.c_th.fill(cplx{0, 0});
    sc.hth_prev.fill(cplx{0, 0});
    std::fill(sc.c_T.begin(), sc.c_T.end(), 0.0);
    std::fill(sc.hT_prev.begin(), sc.hT_prev.end(), 0.0);
    std::fill(sc.hT.begin(), sc.hT.end(), 0.0);
  }
}

field_workspace::sizes dns_workspace_sizes(const channel_config& c,
                                           const pencil::decomp& d) {
  const std::size_t n = static_cast<std::size_t>(c.ny);
  const int threads = std::max(1, c.advance_threads);
  const std::size_t nbins = std::max(c.nx / 2, c.nz / 2 + 1);

  field_workspace::sizes s;
  s.num_threads = threads;
  // Shared lane. Permanent: field_state's hU/hW (2n doubles) and the
  // nonlinear stage's per-thread CFL maxima (threads doubles). Deepest
  // transient scopes: dissipation (trapezoid weights + 5 complex lines =
  // 11n doubles), initialize (4 complex lines = 8n), spectra accumulators
  // (6 * nbins), mean profile (2n). Capacity covers permanents plus the
  // worst scope, with per-checkout 64-byte alignment slack.
  s.shared_bytes = (2 * n + static_cast<std::size_t>(threads)) * sizeof(double)
                 + 16 * n * sizeof(double)
                 + 8 * nbins * sizeof(double)
                 + 40 * kAlignment;
  // Thread lanes. Permanent: the implicit stage's (3 + S)n-complex solve
  // panel (omega/phi rows, operator scratch, one RHS row per passive
  // scalar). Deepest transient scope: the nonlinear assembly's 12 complex
  // lines (c1..c5, d1, d2a, d3, d4a, d5, d2b, d4b) plus 2 more when
  // scalars are configured; the velocity sub-stage needs 2 complex + 1
  // real line, well under that.
  const std::size_t nsc = c.scenario.scalars.size();
  s.thread_bytes = (3 + nsc) * n * sizeof(cplx)
                 + (12 + (nsc > 0 ? 2 : 0)) * n * sizeof(cplx)
                 + n * sizeof(double)
                 + (20 + 2 * nsc) * kAlignment;
  s.transform_bytes = pencil::transform_workspace_bytes(d, dns_kernel_config(c));
  return s;
}

}  // namespace pcf::core
