#include "core/stages/diagnostics_stage.hpp"

#include <algorithm>

namespace pcf::core {

diagnostics_stage::diagnostics_stage(stage_context& ctx,
                                     phase_timer::id parent)
    : ctx_(ctx), ph_reduce_(ctx.timers.add("reduce", parent)) {}

void diagnostics_stage::set_cfl_target(double target, double dt_min,
                                       double dt_max) {
  cfl_target_ = target;
  dt_min_ = dt_min;
  dt_max_ = dt_max;
}

double diagnostics_stage::finish_step() {
  phase_timer::section sec(ctx_.timers, ph_reduce_);
  auto& st = ctx_.state;
  ctx_.world.allreduce_max(&st.cfl_local, &st.cfl_global, 1);
  if (cfl_target_ > 0.0 && st.cfl_global > 0.0) {
    // Proportional controller with damping: scale dt toward the target
    // CFL; identical on every rank since cfl_global is reduced.
    const double want = ctx_.cfg.dt * cfl_target_ / st.cfl_global;
    double next = ctx_.cfg.dt + 0.5 * (want - ctx_.cfg.dt);
    next = std::clamp(next, dt_min_, dt_max_);
    if (next != ctx_.cfg.dt) return next;
  }
  return 0.0;
}

step_timings diagnostics_stage::report() const {
  step_timings t;
  t.transpose = ctx_.pf.comm_seconds() + ctx_.pf.reorder_seconds();
  t.fft = ctx_.pf.fft_seconds();
  for (const auto& p : ctx_.timers.phases()) {
    step_timings::phase_report r;
    r.name = p.name;
    r.depth = p.depth;
    r.seconds = p.seconds;
    r.calls = p.calls;
    r.flops = p.ops.flops;
    r.bytes = p.ops.bytes_read + p.ops.bytes_written;
    t.phases.push_back(r);
    if (p.name == "step") t.total = p.seconds;
    // The compute phases; "implicit" includes its "build" child, and the
    // batched transforms ("to_physical" / "to_spectral") are excluded,
    // matching the original advance timer's coverage.
    if (p.name == "velocities" || p.name == "products" ||
        p.name == "assemble" || p.name == "implicit" ||
        p.name == "mean_flow")
      t.advance += p.seconds;
  }
  // Workspace high-water marks and (process-wide) block-pool telemetry.
  for (const auto& u : ctx_.ws.usage())
    t.workspace.push_back({u.name, u.capacity_bytes, u.peak_bytes});
  t.pooled = ctx_.ws.pooled();
  t.pool = counters::pool_totals();
  return t;
}

}  // namespace pcf::core
