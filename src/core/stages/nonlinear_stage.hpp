// Nonlinear stage of an RK3 substep (paper steps (a)-(f)).
//
// From the evolved (v, omega, phi) state: spectral velocities at the
// collocation points, one batched spectral -> physical transform for all
// three components, pointwise quadratic products + the convective CFL
// estimate, one batched physical -> spectral transform for all five
// products, and the KMM right-hand sides h_v / h_g. Configured passive
// scalars ride the same two batched transforms (3 + S fields down,
// 5 + 3S fields up) and assemble their advective right-hand sides
// h_theta alongside.
#pragma once

#include "core/stages/stage_context.hpp"

namespace pcf::core {

class nonlinear_stage {
 public:
  /// Registers its phase tree under `parent` ("nonlinear" with children
  /// velocities / to_physical / products / to_spectral / assemble) and
  /// checks the per-thread CFL maxima out of the shared lane (permanent).
  nonlinear_stage(stage_context& ctx, phase_timer::id parent);

  /// The full stage. On return state.u_s holds h_v, state.v_s holds h_g
  /// (the velocity work buffers are free once the products are formed) and
  /// state.hU / state.hW hold the mean forcing of this substep.
  void run();

  // Individual sub-steps, public so the per-stage unit tests can drive
  // them against hand-built fields. run() is their exact composition.

  /// Re-check the per-thread CFL maxima out of the shared lane after a
  /// workspace release/reacquire cycle (the simulation's resume path).
  /// Must run after field_state::rebind_workspace, matching the
  /// construction order on the lane.
  void rebind_workspace();

  /// Spectral velocities at the collocation points from the evolved state:
  /// u = (i kx v' - i kz omega) / k2,  w = (i kz v' + i kx omega) / k2.
  void compute_velocities();

  /// All three velocity components spectral -> physical through ONE
  /// batched transform (one aggregated exchange per transpose stage
  /// instead of three).
  void velocities_to_physical();

  /// Pointwise quadratic products on the dealiased physical grid, plus the
  /// convective CFL estimate (into state.cfl_local).
  void compute_products();

  /// All five products physical -> spectral through one batched transform.
  void products_to_spectral();

  /// Assemble the KMM nonlinear right-hand sides h_v (into state.u_s) and
  /// h_g (into state.v_s) at the collocation points from the transformed
  /// products; mean forcing into state.hU / state.hW.
  void assemble();

 private:
  stage_context& ctx_;
  double* cfl_maxes_;  // per-pool-thread partial maxima (shared lane)
  phase_timer::id ph_run_, ph_vel_, ph_to_phys_, ph_prod_, ph_to_spec_,
      ph_asm_;
};

}  // namespace pcf::core
