// Turbulence statistics: wall-normal profiles of the mean velocity and the
// Reynolds stresses, accumulated as time averages over physical-space
// samples (paper Section 6, Figures 5-6).
#pragma once

#include <cstddef>
#include <vector>

#include "vmpi/vmpi.hpp"

namespace pcf::core {

/// Gathered profiles, one entry per wall-normal collocation point.
struct profile_data {
  std::vector<double> y;     // collocation points in [-1, 1]
  std::vector<double> u;     // <u>
  std::vector<double> uu;    // <u'u'>
  std::vector<double> vv;    // <v'v'>
  std::vector<double> ww;    // <w'w'>
  std::vector<double> uv;    // <u'v'>  (turbulent shear stress is -<u'v'>)
  long samples = 0;
};

/// Accumulates x-z plane sums of velocity moments on the local x-pencil
/// block; finalize() reduces across ranks and converts to averages.
class profile_accumulator {
 public:
  profile_accumulator(std::size_t ny_local, std::size_t y_offset,
                      std::size_t ny_global);

  /// Add one sample: u, v, w are x-pencil physical fields laid out as
  /// [z_local][y_local][x] with the given extents.
  void add_sample(const double* u, const double* v, const double* w,
                  std::size_t nz_local, std::size_t ny_local,
                  std::size_t nx_line);

  /// Reduce over the world communicator; `points_per_plane` is the global
  /// number of x-z points per y level. Returns mean profiles; the
  /// fluctuation moments are central (mean subtracted).
  [[nodiscard]] profile_data finalize(vmpi::communicator& world,
                                      const std::vector<double>& y_points,
                                      std::size_t points_per_plane) const;

  [[nodiscard]] long samples() const { return samples_; }
  void reset();

 private:
  std::size_t ny_local_, y_offset_, ny_global_;
  std::vector<double> su_, sv_, sw_, suu_, svv_, sww_, suv_;
  long samples_ = 0;
};

}  // namespace pcf::core
