// channel_config::validate(): every documented configuration constraint,
// checked at the API boundary with a message naming the offending key.
// Without this, a bad value from a campaign job file fails deep inside the
// pencil/bspline layers ("nx must be divisible by 4" with no idea which of
// 64 jobs said so) or, worse, runs to silent garbage (a negative stretch
// produces non-monotone breakpoints).
#include <cmath>
#include <string>

#include "core/simulation.hpp"
#include "util/check.hpp"

namespace pcf::core {

namespace {

[[noreturn]] void bad(const std::string& key, const std::string& what) {
  throw precondition_error("channel_config: " + key + " " + what);
}

void require_finite(const std::string& key, double v) {
  if (!std::isfinite(v)) bad(key, "must be finite, got " + std::to_string(v));
}

void require_positive(const std::string& key, double v) {
  require_finite(key, v);
  if (!(v > 0.0)) bad(key, "must be positive, got " + std::to_string(v));
}

}  // namespace

void channel_config::validate() const {
  // Grid divisibility: the pencil kernel's dealiased transforms require
  // nx % 4 == 0 and nz % 2 == 0 (pencil::decomp asserts the same, but only
  // after the communicator split).
  if (nx < 4 || nx % 4 != 0)
    bad("nx", "must be a positive multiple of 4, got " + std::to_string(nx));
  if (nz < 2 || nz % 2 != 0)
    bad("nz", "must be a positive even value, got " + std::to_string(nz));

  // Wall-normal basis: degree >= 1 and enough basis functions for the
  // collocation interpolant's banded solver (ny >= 2 * degree + 1, the
  // bspline layer's n >= 2p+1 requirement).
  if (degree < 1) bad("degree", "must be >= 1, got " + std::to_string(degree));
  if (ny < 2 * degree + 1)
    bad("ny", "must be >= 2 * degree + 1 = " + std::to_string(2 * degree + 1) +
                  " for degree " + std::to_string(degree) + ", got " +
                  std::to_string(ny));

  require_positive("stretch", stretch);
  require_positive("lx", lx);
  require_positive("lz", lz);
  require_positive("re_tau", re_tau);
  require_positive("dt", dt);
  require_finite("forcing", forcing);

  if (max_batch < 1)
    bad("max_batch", "must be >= 1, got " + std::to_string(max_batch));
  if (pipeline_depth < 1)
    bad("pipeline_depth",
        "must be >= 1, got " + std::to_string(pipeline_depth));
  if (fft_threads < 1)
    bad("fft_threads", "must be >= 1, got " + std::to_string(fft_threads));
  if (reorder_threads < 1)
    bad("reorder_threads",
        "must be >= 1, got " + std::to_string(reorder_threads));
  if (advance_threads < 1)
    bad("advance_threads",
        "must be >= 1, got " + std::to_string(advance_threads));
  if (replica_c < 0)
    bad("replica_c", "must be >= 0, got " + std::to_string(replica_c));

  require_finite("wall_u_lo", scenario.wall_u_lo);
  require_finite("wall_u_hi", scenario.wall_u_hi);
  require_finite("wall_w_lo", scenario.wall_w_lo);
  require_finite("wall_w_hi", scenario.wall_w_hi);
  require_finite("target_bulk", scenario.target_bulk);
  if (scenario.scalars.size() > kMaxScalars)
    bad("scalars", "supports at most " + std::to_string(kMaxScalars) +
                       " passive scalars, got " +
                       std::to_string(scenario.scalars.size()));
  for (std::size_t s = 0; s < scenario.scalars.size(); ++s) {
    const std::string key = "scalar[" + std::to_string(s) + "]";
    const scalar_spec& sp = scenario.scalars[s];
    require_positive(key + ".prandtl", sp.prandtl);
    require_finite(key + ".wall_lo", sp.wall_lo);
    require_finite(key + ".wall_hi", sp.wall_hi);
  }
}

}  // namespace pcf::core
