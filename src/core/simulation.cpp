#include "core/simulation.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <numbers>
#include <optional>

#include "core/mode_solver.hpp"
#include "io/atomic_file.hpp"
#include "util/aligned.hpp"
#include "util/crc.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace pcf::core {

namespace {

// Spalart-Moser-Rogers (1991) low-storage RK3 IMEX coefficients.
// Substep i: [I - beta_i dt nu L] x = [I + alpha_i dt nu L] x + dt (gamma_i
// N + zeta_i N_prev), L = D^2 - k^2. zeta_1 = 0, so no nonlinear history is
// carried across full steps.
constexpr double kAlpha[3] = {29.0 / 96.0, -3.0 / 40.0, 1.0 / 6.0};
constexpr double kBeta[3] = {37.0 / 160.0, 5.0 / 24.0, 1.0 / 6.0};
constexpr double kGamma[3] = {8.0 / 15.0, 5.0 / 12.0, 3.0 / 4.0};
constexpr double kZeta[3] = {0.0, -17.0 / 60.0, -5.0 / 12.0};

/// Pencil-kernel configuration for the DNS: batch wide enough for the five
/// nonlinear products of an RK3 substep to ride one aggregated exchange
/// per transpose stage, with pipelining taken from the run configuration.
pencil::kernel_config dns_kernel_config(const channel_config& c) {
  pencil::kernel_config k{true, true, c.fft_threads, c.reorder_threads};
  k.max_batch = 5;
  k.pipeline_depth = c.pipeline_depth;
  return k;
}

}  // namespace

struct channel_dns::impl {
  channel_config cfg;
  vmpi::communicator world;
  vmpi::cart2d cart;
  pencil::parallel_fft pf;
  pencil::decomp d;
  wall_normal_operators ops;
  thread_pool adv_pool;

  std::size_t n;       // wall-normal points
  std::size_t nmodes;  // local (kx, kz) pairs
  bool has_mean;       // this rank owns the (0, 0) mode
  std::size_t mean_idx = 0;

  std::vector<double> kx, kz;  // local wavenumber values
  std::vector<bool> skip;      // mean mode + spanwise Nyquist modes

  // Evolved state (spline coefficients, one length-n line per local mode).
  aligned_buffer<cplx> c_v, c_om, c_phi;
  aligned_buffer<cplx> hv_prev, hg_prev;
  std::vector<double> c_U, c_W, hU_prev, hW_prev;

  // Work arrays.
  aligned_buffer<cplx> u_s, v_s, w_s;          // spectral velocities (points)
  aligned_buffer<cplx> q1, q2, q3, q4, q5;     // spectral products (points)
  aligned_buffer<double> u_p, v_p, w_p;        // physical velocities
  aligned_buffer<double> f1, f2, f3, f4, f5;   // physical products

  section_timer advance_t, total_t;
  double time = 0.0;
  long steps = 0;
  double cfl_local = 0.0, cfl_global = 0.0;

  // Adaptive time stepping (optional).
  double cfl_target = 0.0, dt_min = 0.0, dt_max = 0.0;

  // Per-substep cached implicit solvers (one contiguous arena per RK
  // substep index, since cb = beta_i dt nu differs per substep) and the
  // factored mean-flow Helmholtz operators; valid while dt is fixed.
  std::vector<double> k2s;  // per-mode kx^2 + kz^2, 0 marks skipped modes
  solver_arena arena[3];
  std::optional<banded::compact_banded> mean_helm[3];
  double mean_helm_c[3] = {0.0, 0.0, 0.0};

  // Per-thread substep scratch (3n complex: 2n RHS panel + n operator
  // scratch) so the mode loop never allocates.
  std::vector<std::vector<cplx>> adv_scratch;

  profile_accumulator stats_acc;

  void invalidate_solvers() {
    for (auto& a : arena) a.clear();
    for (auto& m : mean_helm) m.reset();
  }

  impl(const channel_config& c, vmpi::communicator& w)
      : cfg(c),
        world(w),
        cart(w, c.pa, c.pb),
        pf(pencil::grid{c.nx, static_cast<std::size_t>(c.ny), c.nz}, cart,
           dns_kernel_config(c)),
        d(pf.dec()),
        ops(c.ny, c.degree, c.stretch),
        adv_pool(std::max(1, c.advance_threads)),
        n(static_cast<std::size_t>(c.ny)),
        nmodes(d.xs.count * d.zs.count),
        stats_acc(d.yb.count, d.yb.offset, n) {
    const double ax = 2.0 * std::numbers::pi / cfg.lx;
    const double az = 2.0 * std::numbers::pi / cfg.lz;
    kx.resize(nmodes);
    kz.resize(nmodes);
    skip.assign(nmodes, false);
    has_mean = false;
    for (std::size_t x = 0; x < d.xs.count; ++x) {
      for (std::size_t z = 0; z < d.zs.count; ++z) {
        const std::size_t m = x * d.zs.count + z;
        const std::size_t jx = d.xs.offset + x;
        const std::size_t jz = d.zs.offset + z;
        kx[m] = ax * static_cast<double>(jx);
        const long mz = jz < cfg.nz / 2 ? static_cast<long>(jz)
                                        : static_cast<long>(jz) -
                                              static_cast<long>(cfg.nz);
        kz[m] = az * static_cast<double>(mz);
        if (jz == cfg.nz / 2) skip[m] = true;  // spanwise Nyquist
        if (jx == 0 && jz == 0) {
          skip[m] = true;  // mean mode handled separately
          has_mean = true;
          mean_idx = m;
        }
      }
    }
    k2s.resize(nmodes);
    for (std::size_t m = 0; m < nmodes; ++m)
      k2s[m] = skip[m] ? 0.0 : kx[m] * kx[m] + kz[m] * kz[m];
    adv_scratch.resize(static_cast<std::size_t>(adv_pool.num_threads()));
    for (auto& v : adv_scratch)
      v.resize(3 * static_cast<std::size_t>(c.ny));

    const std::size_t sz = nmodes * n;
    c_v.reset(sz);
    c_om.reset(sz);
    c_phi.reset(sz);
    hv_prev.reset(sz);
    hg_prev.reset(sz);
    u_s.reset(sz);
    v_s.reset(sz);
    w_s.reset(sz);
    q1.reset(sz);
    q2.reset(sz);
    q3.reset(sz);
    q4.reset(sz);
    q5.reset(sz);
    const std::size_t ps = d.x_pencil_real_elems();
    u_p.reset(ps);
    v_p.reset(ps);
    w_p.reset(ps);
    f1.reset(ps);
    f2.reset(ps);
    f3.reset(ps);
    f4.reset(ps);
    f5.reset(ps);
    c_U.assign(n, 0.0);
    c_W.assign(n, 0.0);
    hU_prev.assign(n, 0.0);
    hW_prev.assign(n, 0.0);
    invalidate_solvers();
    zero_state();
  }

  void zero_state() {
    c_v.fill(cplx{0, 0});
    c_om.fill(cplx{0, 0});
    c_phi.fill(cplx{0, 0});
    hv_prev.fill(cplx{0, 0});
    hg_prev.fill(cplx{0, 0});
    std::fill(c_U.begin(), c_U.end(), 0.0);
    std::fill(c_W.begin(), c_W.end(), 0.0);
    // The mean-mode histories must be cleared too: the RK3 zeta weight is
    // zero on the first substep, but 0 * NaN from a contaminated previous
    // state would still poison the restored run.
    std::fill(hU_prev.begin(), hU_prev.end(), 0.0);
    std::fill(hW_prev.begin(), hW_prev.end(), 0.0);
  }

  [[nodiscard]] cplx* line(aligned_buffer<cplx>& b, std::size_t m) {
    return b.data() + m * n;
  }
  [[nodiscard]] const cplx* line(const aligned_buffer<cplx>& b,
                                 std::size_t m) const {
    return b.data() + m * n;
  }

  /// Spectral velocities at the collocation points from the evolved state:
  /// u = (i kx v' - i kz omega) / k2,  w = (i kz v' + i kx omega) / k2.
  void compute_velocities() {
    advance_t.start();
    adv_pool.run(nmodes, [&](std::size_t mb, std::size_t me) {
      std::vector<cplx> dv(n), om(n);
      for (std::size_t m = mb; m < me; ++m) {
        cplx* us = line(u_s, m);
        cplx* vs = line(v_s, m);
        cplx* ws = line(w_s, m);
        if (skip[m]) {
          std::fill_n(us, n, cplx{0, 0});
          std::fill_n(vs, n, cplx{0, 0});
          std::fill_n(ws, n, cplx{0, 0});
          if (has_mean && m == mean_idx) {
            std::vector<double> pts(n);
            ops.to_points(c_U.data(), pts.data());
            for (std::size_t i = 0; i < n; ++i) us[i] = pts[i];
            ops.to_points(c_W.data(), pts.data());
            for (std::size_t i = 0; i < n; ++i) ws[i] = pts[i];
          }
          continue;
        }
        const double k2 = kx[m] * kx[m] + kz[m] * kz[m];
        ops.deriv1_points(line(c_v, m), dv.data());
        ops.to_points(line(c_om, m), om.data());
        ops.to_points(line(c_v, m), vs);
        const cplx ikx{0.0, kx[m] / k2};
        const cplx ikz{0.0, kz[m] / k2};
        for (std::size_t i = 0; i < n; ++i) {
          us[i] = ikx * dv[i] - ikz * om[i];
          ws[i] = ikz * dv[i] + ikx * om[i];
        }
      }
    });
    advance_t.stop();
  }

  /// Pointwise quadratic products on the dealiased physical grid, plus the
  /// convective CFL estimate.
  void compute_products() {
    advance_t.start();
    const std::size_t ps = d.x_pencil_real_elems();
    const double dx = cfg.lx / static_cast<double>(d.nxf);
    const double dz = cfg.lz / static_cast<double>(d.nzf);
    double dy_min = 2.0;
    const auto& pts = ops.points();
    for (std::size_t i = 1; i < pts.size(); ++i)
      dy_min = std::min(dy_min, pts[i] - pts[i - 1]);
    std::vector<double> maxes(adv_pool.num_threads(), 0.0);
    std::atomic<int> tid_counter{0};
    adv_pool.run(ps, [&](std::size_t b, std::size_t e) {
      const int tid = tid_counter.fetch_add(1);
      double mx = 0.0;
      for (std::size_t i = b; i < e; ++i) {
        const double u = u_p[i], v = v_p[i], w = w_p[i];
        f1[i] = u * u - v * v;
        f2[i] = u * v;
        f3[i] = u * w;
        f4[i] = v * w;
        f5[i] = w * w - v * v;
        mx = std::max(mx, std::abs(u) / dx + std::abs(v) / dy_min +
                              std::abs(w) / dz);
      }
      maxes[static_cast<std::size_t>(tid)] = mx;
    });
    cfl_local = 0.0;
    for (double m : maxes) cfl_local = std::max(cfl_local, m * cfg.dt);
    advance_t.stop();
  }

  /// Assemble the KMM nonlinear right-hand sides h_v and h_g at the
  /// collocation points from the transformed products (into q-buffer
  /// space: q1 <- h_v, q2 <- h_g; mean forcing into hU/hW histories' slot
  /// arguments).
  void assemble_nonlinear(aligned_buffer<cplx>& hv, aligned_buffer<cplx>& hg,
                          std::vector<double>& hU, std::vector<double>& hW) {
    advance_t.start();
    adv_pool.run(nmodes, [&](std::size_t mb, std::size_t me) {
      std::vector<cplx> c1(n), c2(n), c3(n), c4(n), c5(n);
      std::vector<cplx> d1(n), d2a(n), d3(n), d4a(n), d5(n), d2b(n), d4b(n);
      for (std::size_t m = mb; m < me; ++m) {
        cplx* hvm = line(hv, m);
        cplx* hgm = line(hg, m);
        if (skip[m]) {
          std::fill_n(hvm, n, cplx{0, 0});
          std::fill_n(hgm, n, cplx{0, 0});
          if (has_mean && m == mean_idx) {
            // <H1> = -d<uv>/dy, <H3> = -d<vw>/dy (real parts of mode 0).
            std::copy_n(line(q2, m), n, c2.data());
            std::copy_n(line(q4, m), n, c4.data());
            ops.to_coefficients(c2.data());
            ops.to_coefficients(c4.data());
            ops.deriv1_points(c2.data(), d2a.data());
            ops.deriv1_points(c4.data(), d4a.data());
            for (std::size_t i = 0; i < n; ++i) {
              hU[i] = -d2a[i].real();
              hW[i] = -d4a[i].real();
            }
          }
          continue;
        }
        const double kxm = kx[m], kzm = kz[m];
        const double k2 = kxm * kxm + kzm * kzm;
        std::copy_n(line(q1, m), n, c1.data());
        std::copy_n(line(q2, m), n, c2.data());
        std::copy_n(line(q3, m), n, c3.data());
        std::copy_n(line(q4, m), n, c4.data());
        std::copy_n(line(q5, m), n, c5.data());
        ops.to_coefficients(c1.data());
        ops.to_coefficients(c2.data());
        ops.to_coefficients(c3.data());
        ops.to_coefficients(c4.data());
        ops.to_coefficients(c5.data());
        ops.deriv1_points(c1.data(), d1.data());
        ops.deriv1_points(c2.data(), d2a.data());
        ops.deriv1_points(c3.data(), d3.data());
        ops.deriv1_points(c4.data(), d4a.data());
        ops.deriv1_points(c5.data(), d5.data());
        ops.deriv2_points(c2.data(), d2b.data());
        ops.deriv2_points(c4.data(), d4b.data());
        const cplx i_unit{0.0, 1.0};
        const cplx* p1 = line(q1, m);
        const cplx* p2 = line(q2, m);
        const cplx* p3 = line(q3, m);
        const cplx* p4 = line(q4, m);
        const cplx* p5 = line(q5, m);
        for (std::size_t i = 0; i < n; ++i) {
          // h_g = kx kz (f1 - f5) + (kz^2 - kx^2) f3
          //       - i kz d(f2)/dy + i kx d(f4)/dy
          hgm[i] = kxm * kzm * (p1[i] - p5[i]) +
                   (kzm * kzm - kxm * kxm) * p3[i] -
                   i_unit * kzm * d2a[i] + i_unit * kxm * d4a[i];
          // h_v = i k2 (kx f2 + kz f4) - d/dy [ kx^2 f1 + 2 kx kz f3
          //       + kz^2 f5 - i kx d(f2)/dy - i kz d(f4)/dy ]
          hvm[i] = i_unit * k2 * (kxm * p2[i] + kzm * p4[i]) -
                   (kxm * kxm * d1[i] + 2.0 * kxm * kzm * d3[i] +
                    kzm * kzm * d5[i] - i_unit * kxm * d2b[i] -
                    i_unit * kzm * d4b[i]);
        }
      }
    });
    advance_t.stop();
  }

  /// All three velocity components spectral -> physical through ONE
  /// batched transform (one aggregated exchange per transpose stage
  /// instead of three).
  void velocities_to_physical() {
    const cplx* specs[3] = {u_s.data(), v_s.data(), w_s.data()};
    double* phys[3] = {u_p.data(), v_p.data(), w_p.data()};
    pf.to_physical_batch(specs, phys, 3);
  }

  /// One RK3 substep: nonlinear terms from the current state, then the
  /// implicit solves per wavenumber (paper steps (a)-(j)).
  void substep(int i) {
    compute_velocities();
    velocities_to_physical();
    compute_products();
    const double* prods[5] = {f1.data(), f2.data(), f3.data(), f4.data(),
                              f5.data()};
    cplx* specs[5] = {q1.data(), q2.data(), q3.data(), q4.data(), q5.data()};
    pf.to_spectral_batch(prods, specs, 5);

    // Assemble h_v/h_g into the velocity work buffers (free at this point).
    std::vector<double> hU(n, 0.0), hW(n, 0.0);
    assemble_nonlinear(u_s, v_s, hU, hW);
    aligned_buffer<cplx>& hv = u_s;
    aligned_buffer<cplx>& hg = v_s;

    advance_t.start();
    const double nu = 1.0 / cfg.re_tau;
    const double ca = kAlpha[i] * cfg.dt * nu;
    const double cb = kBeta[i] * cfg.dt * nu;
    const double g = kGamma[i] * cfg.dt;
    const double z = kZeta[i] * cfg.dt;

    // (Re)build the substep's solver arena if dt changed or it was never
    // built; assembly and factorization are parallel on the advance pool.
    if (cfg.cache_solvers && (!arena[i].built() || arena[i].coeff() != cb))
      arena[i].build(ops, cb, k2s, adv_pool);

    std::atomic<int> tid_counter{0};
    adv_pool.run(nmodes, [&](std::size_t mb, std::size_t me) {
      // Per-thread scratch: 2n-entry RHS panel (omega then phi) plus n for
      // the RHS-operator apply — no allocation inside the substep loop.
      const auto tid =
          static_cast<std::size_t>(tid_counter.fetch_add(1));
      cplx* panel = adv_scratch[tid].data();
      cplx* tmp = panel + 2 * n;
      static thread_local std::unique_ptr<mode_solver> uncached;
      for (std::size_t m = mb; m < me; ++m) {
        if (skip[m]) {
          if (!(has_mean && m == mean_idx)) {
            // Spanwise Nyquist modes are held at zero.
            std::fill_n(line(c_v, m), n, cplx{0, 0});
            std::fill_n(line(c_om, m), n, cplx{0, 0});
            std::fill_n(line(c_phi, m), n, cplx{0, 0});
          }
          continue;
        }
        const double k2 = k2s[m];
        // Assemble both right-hand sides of the fused solve: omega in
        // panel rows [0, n), phi in rows [n, 2n).
        ops.apply_rhs_operator(ca, k2, line(c_om, m), panel, tmp);
        const cplx* hgm = line(hg, m);
        cplx* hgp = line(hg_prev, m);
        for (std::size_t j = 0; j < n; ++j)
          panel[j] += g * hgm[j] + z * hgp[j];
        ops.apply_rhs_operator(ca, k2, line(c_phi, m), panel + n, tmp);
        const cplx* hvm = line(hv, m);
        cplx* hvp = line(hv_prev, m);
        for (std::size_t j = 0; j < n; ++j)
          panel[n + j] += g * hvm[j] + z * hvp[j];
        // One blocked 2-RHS Helmholtz solve covers omega and phi, then the
        // Poisson recovery of v with the influence correction.
        if (cfg.cache_solvers) {
          arena[i].solve_block(static_cast<int>(m), panel, line(c_om, m),
                               line(c_phi, m), line(c_v, m));
        } else {
          uncached = std::make_unique<mode_solver>(ops, cb, k2);
          uncached->solve_block(panel, line(c_om, m), line(c_phi, m),
                                line(c_v, m));
        }
        // Save nonlinear history for the next substep.
        std::copy_n(hgm, n, hgp);
        std::copy_n(hvm, n, hvp);
      }
    });

    // Mean flow: [A0 - cb nu' A2] c = [A0 + ca nu' A2] c + dt (g (h + F)
    // + z (h_prev + F)); the constant pressure-gradient forcing F rides
    // with the nonlinear weights since gamma_i + zeta_i sums to 1 over a
    // step.
    if (has_mean) {
      // Factored mean-flow operator is cached per substep index (it only
      // depends on cb); invalidate_solvers() drops it alongside the arena.
      const banded::compact_banded* mean_op = nullptr;
      std::optional<banded::compact_banded> mean_scratch;
      if (cfg.cache_solvers) {
        if (!mean_helm[i] || mean_helm_c[i] != cb) {
          mean_helm[i].emplace(ops.helmholtz(cb, 0.0));
          mean_helm[i]->factorize();
          mean_helm_c[i] = cb;
        }
        mean_op = &*mean_helm[i];
      } else {
        mean_scratch.emplace(ops.helmholtz(cb, 0.0));
        mean_scratch->factorize();
        mean_op = &*mean_scratch;
      }
      auto advance_mean = [&](std::vector<double>& c, std::vector<double>& h,
                              std::vector<double>& h_prev, double force) {
        std::vector<double> rhs(n), t(n);
        ops.A0().apply(c.data(), rhs.data());
        ops.A2().apply(c.data(), t.data());
        for (std::size_t j = 0; j < n; ++j)
          rhs[j] += ca * t[j] + g * (h[j] + force) + z * (h_prev[j] + force);
        rhs[0] = 0.0;
        rhs[n - 1] = 0.0;
        mean_op->solve(rhs.data());
        std::copy_n(rhs.data(), n, c.data());
        h_prev = h;
      };
      advance_mean(c_U, hU, hU_prev, cfg.forcing);
      advance_mean(c_W, hW, hW_prev, 0.0);
    }
    advance_t.stop();
  }

  void step() {
    total_t.start();
    for (int i = 0; i < 3; ++i) substep(i);
    world.allreduce_max(&cfl_local, &cfl_global, 1);
    time += cfg.dt;
    ++steps;
    if (cfl_target > 0.0 && cfl_global > 0.0) {
      // Proportional controller with damping: scale dt toward the target
      // CFL; identical on every rank since cfl_global is reduced.
      const double want = cfg.dt * cfl_target / cfl_global;
      double next = cfg.dt + 0.5 * (want - cfg.dt);
      next = std::clamp(next, dt_min, dt_max);
      if (next != cfg.dt) {
        cfg.dt = next;
        invalidate_solvers();
      }
    }
    total_t.stop();
  }
};

channel_dns::channel_dns(const channel_config& cfg, vmpi::communicator& world)
    : impl_(new impl(cfg, world)) {}
channel_dns::~channel_dns() = default;

const channel_config& channel_dns::config() const { return impl_->cfg; }
const wall_normal_operators& channel_dns::operators() const {
  return impl_->ops;
}
const pencil::decomp& channel_dns::dec() const { return impl_->d; }

void channel_dns::initialize(double perturbation, std::uint64_t seed) {
  auto& s = *impl_;
  s.zero_state();
  const std::size_t n = s.n;
  const auto& pts = s.ops.points();

  if (s.has_mean) {
    if (perturbation <= 0.0) {
      // Laminar Poiseuille: U = Re_tau (1 - y^2) / 2 for unit pressure
      // gradient (scaled by the configured forcing) — the exact steady
      // state of the unperturbed discrete system.
      for (std::size_t i = 0; i < n; ++i)
        s.c_U[i] =
            s.cfg.forcing * s.cfg.re_tau * 0.5 * (1.0 - pts[i] * pts[i]);
    } else {
      // Perturbed start: a turbulent mean estimate (Reichardt's profile in
      // wall units). Starting from laminar Poiseuille at the same pressure
      // gradient would give a centerline velocity Re_tau/2 — five times
      // the turbulent mean — and violate the convective CFL limit.
      const double kappa = 0.41;
      for (std::size_t i = 0; i < n; ++i) {
        const double yp = (1.0 - std::abs(pts[i])) * s.cfg.re_tau;
        s.c_U[i] = s.cfg.forcing *
                   (std::log(1.0 + kappa * yp) / kappa +
                    7.8 * (1.0 - std::exp(-yp / 11.0) -
                           (yp / 11.0) * std::exp(-yp / 3.0)));
      }
    }
    s.ops.to_coefficients(s.c_U.data());
  }

  if (perturbation > 0.0) {
    // Divergence-free perturbations on low modes with shapes satisfying
    // all boundary conditions: v ~ (1-y^2)^2, omega_y ~ (1-y^2).
    // Deterministic in the *global* mode indices, so any decomposition
    // produces the same field; the kx = 0 plane is kept Hermitian in kz.
    // Amplitude is relative to a nominal turbulent bulk velocity (~15 in
    // friction units).
    const double amp = perturbation * 15.0;
    auto coeffs = [&](std::size_t jx, std::size_t jz) {
      const std::size_t jzc = (s.cfg.nz - jz) % s.cfg.nz;
      const bool conj_plane = (jx == 0) && (jz > jzc);
      const std::size_t jz_eff = conj_plane ? jzc : jz;
      rng r(seed * 0x10001 + jx * 7919 + jz_eff * 104729 + 13);
      cplx a{r.uniform(-1, 1), r.uniform(-1, 1)};
      cplx b{r.uniform(-1, 1), r.uniform(-1, 1)};
      if (jx == 0 && jz == jzc) {  // self-conjugate: must be real
        a = a.real();
        b = b.real();
      }
      if (conj_plane) {
        a = std::conj(a);
        b = std::conj(b);
      }
      return std::pair<cplx, cplx>{a, b};
    };
    std::vector<cplx> vpts(n), ompts(n), phipts(n);
    for (std::size_t m = 0; m < s.nmodes; ++m) {
      if (s.skip[m]) continue;
      const std::size_t jx = s.d.xs.offset + m / s.d.zs.count;
      const std::size_t jz = s.d.zs.offset + m % s.d.zs.count;
      const long mz = jz < s.cfg.nz / 2
                          ? static_cast<long>(jz)
                          : static_cast<long>(jz) - static_cast<long>(s.cfg.nz);
      if (jx > 2 || std::abs(mz) > 2) continue;
      auto [a, b] = coeffs(jx, jz);
      const double k2 = s.kx[m] * s.kx[m] + s.kz[m] * s.kz[m];
      for (std::size_t i = 0; i < n; ++i) {
        const double y = pts[i];
        const double sv = (1.0 - y * y) * (1.0 - y * y);
        const double so = (1.0 - y * y);
        vpts[i] = amp * a * sv;
        ompts[i] = amp * b * so;
      }
      cplx* cv = s.line(s.c_v, m);
      cplx* co = s.line(s.c_om, m);
      cplx* cp = s.line(s.c_phi, m);
      std::copy_n(vpts.data(), n, cv);
      std::copy_n(ompts.data(), n, co);
      s.ops.to_coefficients(cv);
      s.ops.to_coefficients(co);
      // phi = (D^2 - k^2) v at the points, then back to coefficients.
      s.ops.deriv2_points(cv, phipts.data());
      std::vector<cplx> v0(n);
      s.ops.to_points(cv, v0.data());
      for (std::size_t i = 0; i < n; ++i) phipts[i] -= k2 * v0[i];
      std::copy_n(phipts.data(), n, cp);
      s.ops.to_coefficients(cp);
    }
  }
  s.time = 0.0;
  s.steps = 0;
}

void channel_dns::step() { impl_->step(); }

void channel_dns::set_dt(double dt) {
  PCF_REQUIRE(dt > 0.0, "dt must be positive");
  impl_->cfg.dt = dt;
  impl_->invalidate_solvers();
}

void channel_dns::set_cfl_target(double target, double dt_min,
                                 double dt_max) {
  PCF_REQUIRE(target <= 0.0 || (dt_min > 0.0 && dt_max >= dt_min),
              "need 0 < dt_min <= dt_max for an active CFL target");
  impl_->cfl_target = target;
  impl_->dt_min = dt_min;
  impl_->dt_max = dt_max;
}

double channel_dns::time() const { return impl_->time; }
long channel_dns::step_count() const { return impl_->steps; }
double channel_dns::dt() const { return impl_->cfg.dt; }
double channel_dns::cfl() const { return impl_->cfl_global; }

double channel_dns::bulk_velocity() {
  auto& s = *impl_;
  double local = 0.0;
  if (s.has_mean) local = s.ops.b().integrate(s.c_U.data()) / 2.0;
  double global = 0.0;
  s.world.allreduce_sum(&local, &global, 1);
  return global;
}

double channel_dns::wall_shear_stress() {
  auto& s = *impl_;
  double local = 0.0;
  if (s.has_mean)
    local = s.ops.dspline_lower(s.c_U.data()) / s.cfg.re_tau;
  double global = 0.0;
  s.world.allreduce_sum(&local, &global, 1);
  return global;
}

double channel_dns::kinetic_energy() {
  auto& s = *impl_;
  s.compute_velocities();
  s.velocities_to_physical();
  // Trapezoid weights in y over the Greville points, uniform in x and z.
  const auto& pts = s.ops.points();
  std::vector<double> wy(s.n, 0.0);
  for (std::size_t i = 0; i + 1 < s.n; ++i) {
    const double h = pts[i + 1] - pts[i];
    wy[i] += 0.5 * h;
    wy[i + 1] += 0.5 * h;
  }
  double local = 0.0;
  for (std::size_t z = 0; z < s.d.zp.count; ++z)
    for (std::size_t y = 0; y < s.d.yb.count; ++y) {
      const std::size_t base = (z * s.d.yb.count + y) * s.d.nxf;
      double acc = 0.0;
      for (std::size_t x = 0; x < s.d.nxf; ++x) {
        const double u = s.u_p[base + x], v = s.v_p[base + x],
                     w = s.w_p[base + x];
        acc += u * u + v * v + w * w;
      }
      local += acc * wy[s.d.yb.offset + y];
    }
  double global = 0.0;
  s.world.allreduce_sum(&local, &global, 1);
  const double npts = static_cast<double>(s.d.nxf) *
                      static_cast<double>(s.d.nzf);
  return 0.5 * global / npts / 2.0;  // volume average (y measure = 2)
}

double channel_dns::dissipation() {
  auto& s = *impl_;
  s.compute_velocities();
  // Trapezoid quadrature weights over the Greville points.
  const auto& pts = s.ops.points();
  std::vector<double> wy(s.n, 0.0);
  for (std::size_t i = 0; i + 1 < s.n; ++i) {
    const double h = pts[i + 1] - pts[i];
    wy[i] += 0.5 * h;
    wy[i + 1] += 0.5 * h;
  }
  double local = 0.0;
  std::vector<cplx> cu(s.n), cw(s.n), du(s.n), dv(s.n), dw(s.n);
  for (std::size_t m = 0; m < s.nmodes; ++m) {
    const bool is_mean = s.has_mean && m == s.mean_idx;
    if (s.skip[m] && !is_mean) continue;
    // y-derivatives at the points: u and w need an interpolation solve,
    // v's spline coefficients are state.
    std::copy_n(s.line(s.u_s, m), s.n, cu.data());
    std::copy_n(s.line(s.w_s, m), s.n, cw.data());
    s.ops.to_coefficients(cu.data());
    s.ops.to_coefficients(cw.data());
    s.ops.deriv1_points(cu.data(), du.data());
    s.ops.deriv1_points(cw.data(), dw.data());
    if (is_mean) {
      std::fill(dv.begin(), dv.end(), cplx{0, 0});
    } else {
      s.ops.deriv1_points(s.line(s.c_v, m), dv.data());
    }
    const double k2 = s.kx[m] * s.kx[m] + s.kz[m] * s.kz[m];
    const double weight = (s.d.xs.offset + m / s.d.zs.count) == 0 ? 1.0 : 2.0;
    const cplx* us = s.line(s.u_s, m);
    const cplx* vs = s.line(s.v_s, m);
    const cplx* ws = s.line(s.w_s, m);
    double acc = 0.0;
    for (std::size_t i = 0; i < s.n; ++i) {
      const double grad2 =
          k2 * (std::norm(us[i]) + std::norm(vs[i]) + std::norm(ws[i])) +
          std::norm(du[i]) + std::norm(dv[i]) + std::norm(dw[i]);
      acc += wy[i] * grad2;
    }
    local += weight * acc;
  }
  double global = 0.0;
  s.world.allreduce_sum(&local, &global, 1);
  return global / s.cfg.re_tau / 2.0;  // nu * integral / (y measure 2)
}

double channel_dns::max_divergence() {
  auto& s = *impl_;
  double local = 0.0;
  std::vector<cplx> dv(s.n), om(s.n);
  for (std::size_t m = 0; m < s.nmodes; ++m) {
    if (s.skip[m]) continue;
    const double k2 = s.kx[m] * s.kx[m] + s.kz[m] * s.kz[m];
    s.ops.deriv1_points(s.line(s.c_v, m), dv.data());
    s.ops.to_points(s.line(s.c_om, m), om.data());
    const cplx ikx{0.0, s.kx[m]};
    const cplx ikz{0.0, s.kz[m]};
    for (std::size_t i = 0; i < s.n; ++i) {
      const cplx us = (cplx{0.0, s.kx[m] / k2} * dv[i] -
                       cplx{0.0, s.kz[m] / k2} * om[i]);
      const cplx ws = (cplx{0.0, s.kz[m] / k2} * dv[i] +
                       cplx{0.0, s.kx[m] / k2} * om[i]);
      const cplx dval = ikx * us + dv[i] + ikz * ws;
      local = std::max(local, std::abs(dval));
    }
  }
  double global = 0.0;
  s.world.allreduce_max(&local, &global, 1);
  return global;
}

void channel_dns::accumulate_stats() {
  auto& s = *impl_;
  s.compute_velocities();
  s.velocities_to_physical();
  s.stats_acc.add_sample(s.u_p.data(), s.v_p.data(), s.w_p.data(),
                         s.d.zp.count, s.d.yb.count, s.d.nxf);
}

profile_data channel_dns::stats() {
  auto& s = *impl_;
  return s.stats_acc.finalize(s.world, s.ops.points(),
                              s.d.nxf * s.d.nzf);
}

void channel_dns::reset_stats() { impl_->stats_acc.reset(); }

void channel_dns::physical_velocity(std::vector<double>& u,
                                    std::vector<double>& v,
                                    std::vector<double>& w) {
  auto& s = *impl_;
  s.compute_velocities();
  s.velocities_to_physical();
  u.assign(s.u_p.begin(), s.u_p.end());
  v.assign(s.v_p.begin(), s.v_p.end());
  w.assign(s.w_p.begin(), s.w_p.end());
}

std::vector<double> channel_dns::mean_profile() {
  auto& s = *impl_;
  std::vector<double> local(s.n, 0.0), global(s.n, 0.0);
  if (s.has_mean) s.ops.to_points(s.c_U.data(), local.data());
  s.world.allreduce_sum(local.data(), global.data(), s.n);
  return global;
}

void channel_dns::set_mean_profile(const std::vector<double>& values) {
  auto& s = *impl_;
  PCF_REQUIRE(values.size() == s.n, "profile size mismatch");
  if (!s.has_mean) return;
  std::copy(values.begin(), values.end(), s.c_U.begin());
  s.ops.to_coefficients(s.c_U.data());
}

std::vector<cplx> channel_dns::mode_v(std::size_t jx, std::size_t jz) {
  auto& s = *impl_;
  if (jx < s.d.xs.offset || jx >= s.d.xs.offset + s.d.xs.count ||
      jz < s.d.zs.offset || jz >= s.d.zs.offset + s.d.zs.count)
    return {};
  const std::size_t m =
      (jx - s.d.xs.offset) * s.d.zs.count + (jz - s.d.zs.offset);
  return std::vector<cplx>(s.line(s.c_v, m), s.line(s.c_v, m) + s.n);
}

std::vector<cplx> channel_dns::mode_omega(std::size_t jx, std::size_t jz) {
  auto& s = *impl_;
  if (jx < s.d.xs.offset || jx >= s.d.xs.offset + s.d.xs.count ||
      jz < s.d.zs.offset || jz >= s.d.zs.offset + s.d.zs.count)
    return {};
  const std::size_t m =
      (jx - s.d.xs.offset) * s.d.zs.count + (jz - s.d.zs.offset);
  return std::vector<cplx>(s.line(s.c_om, m), s.line(s.c_om, m) + s.n);
}

spectrum_data channel_dns::streamwise_spectra(int y_index) {
  auto& s = *impl_;
  PCF_REQUIRE(y_index >= 0 && y_index < static_cast<int>(s.n),
              "y index out of range");
  s.compute_velocities();
  const std::size_t nbins = s.cfg.nx / 2;
  std::vector<double> local(3 * nbins, 0.0), global(3 * nbins, 0.0);
  for (std::size_t m = 0; m < s.nmodes; ++m) {
    if (s.skip[m]) continue;
    const std::size_t jx = s.d.xs.offset + m / s.d.zs.count;
    const double w = jx == 0 ? 1.0 : 2.0;  // conjugate (negative-kx) half
    const auto yi = static_cast<std::size_t>(y_index);
    local[0 * nbins + jx] += w * std::norm(s.line(s.u_s, m)[yi]);
    local[1 * nbins + jx] += w * std::norm(s.line(s.v_s, m)[yi]);
    local[2 * nbins + jx] += w * std::norm(s.line(s.w_s, m)[yi]);
  }
  s.world.allreduce_sum(local.data(), global.data(), local.size());
  spectrum_data out;
  out.euu.assign(global.begin(), global.begin() + nbins);
  out.evv.assign(global.begin() + nbins, global.begin() + 2 * nbins);
  out.eww.assign(global.begin() + 2 * nbins, global.end());
  return out;
}

spectrum_data channel_dns::spanwise_spectra(int y_index) {
  auto& s = *impl_;
  PCF_REQUIRE(y_index >= 0 && y_index < static_cast<int>(s.n),
              "y index out of range");
  s.compute_velocities();
  const std::size_t nbins = s.cfg.nz / 2 + 1;
  std::vector<double> local(3 * nbins, 0.0), global(3 * nbins, 0.0);
  for (std::size_t m = 0; m < s.nmodes; ++m) {
    if (s.skip[m]) continue;
    const std::size_t jx = s.d.xs.offset + m / s.d.zs.count;
    const std::size_t jz = s.d.zs.offset + m % s.d.zs.count;
    const std::size_t mz = jz < s.cfg.nz / 2 ? jz : s.cfg.nz - jz;
    const double w = jx == 0 ? 1.0 : 2.0;
    const auto yi = static_cast<std::size_t>(y_index);
    local[0 * nbins + mz] += w * std::norm(s.line(s.u_s, m)[yi]);
    local[1 * nbins + mz] += w * std::norm(s.line(s.v_s, m)[yi]);
    local[2 * nbins + mz] += w * std::norm(s.line(s.w_s, m)[yi]);
  }
  s.world.allreduce_sum(local.data(), global.data(), local.size());
  spectrum_data out;
  out.euu.assign(global.begin(), global.begin() + nbins);
  out.evv.assign(global.begin() + nbins, global.begin() + 2 * nbins);
  out.eww.assign(global.begin() + 2 * nbins, global.end());
  return out;
}

void channel_dns::physical_vorticity_z(std::vector<double>& wz) {
  auto& s = *impl_;
  s.compute_velocities();
  // omega_z hat = i kx v hat - d(u hat)/dy at the collocation points; u at
  // points must be interpolated to spline coefficients first.
  std::vector<cplx> cu(s.n), du(s.n);
  for (std::size_t m = 0; m < s.nmodes; ++m) {
    cplx* out = s.line(s.q1, m);
    std::copy_n(s.line(s.u_s, m), s.n, cu.data());
    s.ops.to_coefficients(cu.data());
    s.ops.deriv1_points(cu.data(), du.data());
    const cplx ikx{0.0, s.kx[m]};
    const cplx* vs = s.line(s.v_s, m);
    for (std::size_t i = 0; i < s.n; ++i) out[i] = ikx * vs[i] - du[i];
  }
  s.pf.to_physical(s.q1.data(), s.f1.data());
  wz.assign(s.f1.begin(), s.f1.end());
}

namespace {

// Checkpoint format magics. v1 ("PCFDNS01") wrote raw arrays with no
// integrity metadata; it is still accepted on load. v2 ("PCFDNS02") writes
// through the atomic temp+rename writer and wraps every array in a named
// section with a CRC-32, so corruption is detected per array with a
// precise error instead of silently seeding a bogus restart. The +1/+2
// offsets distinguish the global and parallel single-file layouts, as in
// v1.
constexpr std::uint64_t kCheckpointMagicV1 = 0x50434644'4e533031ull;
constexpr std::uint64_t kCheckpointMagic = 0x50434644'4e533032ull;

struct section_header {
  char name[8];           // zero-padded section name
  std::uint64_t bytes;    // payload size
  std::uint32_t crc;      // CRC-32 of the payload
  std::uint32_t reserved; // zero
};
static_assert(sizeof(section_header) == 24, "section header must be packed");

section_header make_section_header(const char* name, std::uint64_t bytes,
                                   std::uint32_t crc) {
  section_header h{};
  std::snprintf(h.name, sizeof(h.name), "%s", name);
  h.bytes = bytes;
  h.crc = crc;
  return h;
}

std::string section_name(const section_header& h) {
  return std::string(h.name, strnlen(h.name, sizeof(h.name)));
}

void write_section(io::atomic_file_writer& os, const char* name,
                   const void* data, std::size_t bytes) {
  const section_header h =
      make_section_header(name, bytes, crc32(data, bytes));
  os.write(&h, sizeof(h));
  os.write(data, bytes);
}

/// Read and verify one v2 section into `data`; every failure mode names
/// the section so a restart script can tell *which* array is damaged.
void read_section(std::istream& is, const char* name, void* data,
                  std::size_t bytes) {
  section_header h{};
  is.read(reinterpret_cast<char*>(&h), sizeof(h));
  PCF_REQUIRE(!is.fail() && is.gcount() == sizeof(h),
              std::string("checkpoint section '") + name +
                  "' header truncated");
  PCF_REQUIRE(section_name(h) == name,
              "checkpoint section '" + section_name(h) +
                  "' unexpected (expected '" + name + "')");
  PCF_REQUIRE(h.bytes == bytes, std::string("checkpoint section '") + name +
                                    "' has wrong size");
  is.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  PCF_REQUIRE(!is.fail() &&
                  is.gcount() == static_cast<std::streamsize>(bytes),
              std::string("checkpoint section '") + name + "' truncated");
  PCF_REQUIRE(crc32(data, bytes) == h.crc,
              std::string("checkpoint section '") + name + "' CRC mismatch");
}

/// A well-formed checkpoint ends exactly at its last section: trailing
/// bytes mean a concatenated/overlong file and are rejected.
void require_eof(std::istream& is) {
  PCF_REQUIRE(is.peek() == std::char_traits<char>::eof(),
              "trailing garbage after checkpoint payload");
}

}  // namespace

void channel_dns::save_checkpoint(const std::string& path) const {
  auto& s = *impl_;
  io::atomic_file_writer os(path);
  os.write(&kCheckpointMagic, sizeof(kCheckpointMagic));
  const std::uint64_t dims[5] = {s.cfg.nx, static_cast<std::uint64_t>(s.cfg.ny),
                                 s.cfg.nz, static_cast<std::uint64_t>(s.d.pa),
                                 static_cast<std::uint64_t>(s.d.pb)};
  os.write(dims, sizeof(dims));
  os.write(&s.time, sizeof(s.time));
  os.write(&s.steps, sizeof(s.steps));
  const std::uint32_t meta[2] = {5, 0};  // section count, reserved
  os.write(meta, sizeof(meta));
  write_section(os, "c_v", s.c_v.data(), s.c_v.size() * sizeof(cplx));
  write_section(os, "c_om", s.c_om.data(), s.c_om.size() * sizeof(cplx));
  write_section(os, "c_phi", s.c_phi.data(), s.c_phi.size() * sizeof(cplx));
  write_section(os, "c_U", s.c_U.data(), s.c_U.size() * sizeof(double));
  write_section(os, "c_W", s.c_W.data(), s.c_W.size() * sizeof(double));
  os.commit();
}

void channel_dns::load_checkpoint(const std::string& path) {
  auto& s = *impl_;
  std::ifstream is(path, std::ios::binary);
  PCF_REQUIRE(is.good(), "cannot open checkpoint file for reading: " + path);
  auto get = [&](void* p, std::size_t bytes) {
    is.read(static_cast<char*>(p), static_cast<std::streamsize>(bytes));
  };
  std::uint64_t magic = 0;
  get(&magic, sizeof(magic));
  PCF_REQUIRE(magic == kCheckpointMagic || magic == kCheckpointMagicV1,
              "not a checkpoint file");
  std::uint64_t dims[5];
  get(dims, sizeof(dims));
  PCF_REQUIRE(!is.fail(), "checkpoint header truncated");
  PCF_REQUIRE(dims[0] == s.cfg.nx &&
                  dims[1] == static_cast<std::uint64_t>(s.cfg.ny) &&
                  dims[2] == s.cfg.nz &&
                  dims[3] == static_cast<std::uint64_t>(s.d.pa) &&
                  dims[4] == static_cast<std::uint64_t>(s.d.pb),
              "checkpoint grid/decomposition mismatch");
  get(&s.time, sizeof(s.time));
  get(&s.steps, sizeof(s.steps));
  if (magic == kCheckpointMagicV1) {
    get(s.c_v.data(), s.c_v.size() * sizeof(cplx));
    get(s.c_om.data(), s.c_om.size() * sizeof(cplx));
    get(s.c_phi.data(), s.c_phi.size() * sizeof(cplx));
    get(s.c_U.data(), s.c_U.size() * sizeof(double));
    get(s.c_W.data(), s.c_W.size() * sizeof(double));
    PCF_REQUIRE(is.good(), "checkpoint read failed");
  } else {
    std::uint32_t meta[2] = {0, 0};
    get(meta, sizeof(meta));
    PCF_REQUIRE(!is.fail() && meta[0] == 5, "checkpoint section count mismatch");
    read_section(is, "c_v", s.c_v.data(), s.c_v.size() * sizeof(cplx));
    read_section(is, "c_om", s.c_om.data(), s.c_om.size() * sizeof(cplx));
    read_section(is, "c_phi", s.c_phi.data(),
                 s.c_phi.size() * sizeof(cplx));
    read_section(is, "c_U", s.c_U.data(), s.c_U.size() * sizeof(double));
    read_section(is, "c_W", s.c_W.data(), s.c_W.size() * sizeof(double));
  }
  require_eof(is);
  s.hv_prev.fill(cplx{0, 0});
  s.hg_prev.fill(cplx{0, 0});
  std::fill(s.hU_prev.begin(), s.hU_prev.end(), 0.0);
  std::fill(s.hW_prev.begin(), s.hW_prev.end(), 0.0);
}

void channel_dns::save_checkpoint_global(const std::string& path) {
  auto& s = *impl_;
  const std::size_t modes_g = s.cfg.nx / 2 * s.cfg.nz;
  const std::size_t per = modes_g * s.n;
  std::vector<cplx> local(3 * per, cplx{0, 0}), global(3 * per);
  for (std::size_t m = 0; m < s.nmodes; ++m) {
    const std::size_t jx = s.d.xs.offset + m / s.d.zs.count;
    const std::size_t jz = s.d.zs.offset + m % s.d.zs.count;
    const std::size_t g = (jx * s.cfg.nz + jz) * s.n;
    std::copy_n(s.line(s.c_v, m), s.n, local.data() + g);
    std::copy_n(s.line(s.c_om, m), s.n, local.data() + per + g);
    std::copy_n(s.line(s.c_phi, m), s.n, local.data() + 2 * per + g);
  }
  s.world.allreduce_sum(local.data(), global.data(), local.size());
  std::vector<double> mean_l(2 * s.n, 0.0), mean_g(2 * s.n);
  if (s.has_mean) {
    std::copy(s.c_U.begin(), s.c_U.end(), mean_l.begin());
    std::copy(s.c_W.begin(), s.c_W.end(),
              mean_l.begin() + static_cast<std::ptrdiff_t>(s.n));
  }
  s.world.allreduce_sum(mean_l.data(), mean_g.data(), mean_l.size());
  if (s.world.rank() == 0) {
    io::atomic_file_writer os(path);
    const std::uint64_t magic = kCheckpointMagic + 1;
    const std::uint64_t dims[3] = {
        s.cfg.nx, static_cast<std::uint64_t>(s.cfg.ny), s.cfg.nz};
    os.write(&magic, sizeof(magic));
    os.write(dims, sizeof(dims));
    os.write(&s.time, sizeof(s.time));
    os.write(&s.steps, sizeof(s.steps));
    const std::uint32_t meta[2] = {4, 0};
    os.write(meta, sizeof(meta));
    write_section(os, "c_v", global.data(), per * sizeof(cplx));
    write_section(os, "c_om", global.data() + per, per * sizeof(cplx));
    write_section(os, "c_phi", global.data() + 2 * per, per * sizeof(cplx));
    write_section(os, "mean", mean_g.data(), mean_g.size() * sizeof(double));
    os.commit();
  }
  s.world.barrier();
}

void channel_dns::load_checkpoint_global(const std::string& path) {
  auto& s = *impl_;
  const std::size_t modes_g = s.cfg.nx / 2 * s.cfg.nz;
  const std::size_t per = modes_g * s.n;
  std::vector<cplx> global(3 * per);
  std::vector<double> mean_g(2 * s.n);
  // Rank 0 reads and verifies; success is agreed on *before* any payload
  // broadcast so a corrupt file makes every rank throw instead of leaving
  // ranks 1..P-1 blocked in a collective.
  int ok = 1;
  std::string err;
  if (s.world.rank() == 0) {
    try {
      std::ifstream is(path, std::ios::binary);
      PCF_REQUIRE(is.good(),
                  "cannot open global checkpoint for reading: " + path);
      std::uint64_t magic = 0, dims[3];
      is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
      PCF_REQUIRE(magic == kCheckpointMagic + 1 ||
                      magic == kCheckpointMagicV1 + 1,
                  "not a global checkpoint");
      is.read(reinterpret_cast<char*>(dims), sizeof(dims));
      PCF_REQUIRE(!is.fail(), "global checkpoint header truncated");
      PCF_REQUIRE(dims[0] == s.cfg.nx &&
                      dims[1] == static_cast<std::uint64_t>(s.cfg.ny) &&
                      dims[2] == s.cfg.nz,
                  "global checkpoint grid mismatch");
      is.read(reinterpret_cast<char*>(&s.time), sizeof(s.time));
      is.read(reinterpret_cast<char*>(&s.steps), sizeof(s.steps));
      if (magic == kCheckpointMagicV1 + 1) {
        is.read(reinterpret_cast<char*>(global.data()),
                static_cast<std::streamsize>(global.size() * sizeof(cplx)));
        is.read(reinterpret_cast<char*>(mean_g.data()),
                static_cast<std::streamsize>(mean_g.size() * sizeof(double)));
        PCF_REQUIRE(is.good(), "global checkpoint read failed");
      } else {
        std::uint32_t meta[2] = {0, 0};
        is.read(reinterpret_cast<char*>(meta), sizeof(meta));
        PCF_REQUIRE(!is.fail() && meta[0] == 4,
                    "global checkpoint section count mismatch");
        read_section(is, "c_v", global.data(), per * sizeof(cplx));
        read_section(is, "c_om", global.data() + per, per * sizeof(cplx));
        read_section(is, "c_phi", global.data() + 2 * per,
                     per * sizeof(cplx));
        read_section(is, "mean", mean_g.data(),
                     mean_g.size() * sizeof(double));
      }
      require_eof(is);
    } catch (const std::exception& e) {
      ok = 0;
      err = e.what();
    }
  }
  s.world.bcast(&ok, 1, 0);
  if (!ok) {
    std::uint64_t len = err.size();
    s.world.bcast(&len, 1, 0);
    err.resize(len);
    if (len > 0) s.world.bcast(err.data(), len, 0);
    throw precondition_error("global checkpoint load failed: " + err);
  }
  s.world.bcast(&s.time, 1, 0);
  s.world.bcast(&s.steps, 1, 0);
  s.world.bcast(global.data(), global.size(), 0);
  s.world.bcast(mean_g.data(), mean_g.size(), 0);
  for (std::size_t m = 0; m < s.nmodes; ++m) {
    const std::size_t jx = s.d.xs.offset + m / s.d.zs.count;
    const std::size_t jz = s.d.zs.offset + m % s.d.zs.count;
    const std::size_t g = (jx * s.cfg.nz + jz) * s.n;
    std::copy_n(global.data() + g, s.n, s.line(s.c_v, m));
    std::copy_n(global.data() + per + g, s.n, s.line(s.c_om, m));
    std::copy_n(global.data() + 2 * per + g, s.n, s.line(s.c_phi, m));
  }
  if (s.has_mean) {
    std::copy_n(mean_g.data(), s.n, s.c_U.begin());
    std::copy_n(mean_g.data() + s.n, s.n, s.c_W.begin());
  }
  s.hv_prev.fill(cplx{0, 0});
  s.hg_prev.fill(cplx{0, 0});
  std::fill(s.hU_prev.begin(), s.hU_prev.end(), 0.0);
  std::fill(s.hW_prev.begin(), s.hW_prev.end(), 0.0);
}

namespace {

// Parallel single-file v2 layout: fixed header, a 4-entry section table
// (c_v, c_om, c_phi, mean), then the payloads at fixed offsets so every
// rank can write its modes in place, MPI-IO style.
constexpr std::size_t kParallelV1Header =
    sizeof(std::uint64_t) * 4 + sizeof(double) + sizeof(long);
constexpr std::size_t kParallelV2Header =
    kParallelV1Header + 2 * sizeof(std::uint32_t);
constexpr std::size_t kParallelV2Payload =
    kParallelV2Header + 4 * sizeof(section_header);

}  // namespace

void channel_dns::save_checkpoint_parallel(const std::string& path) {
  auto& s = *impl_;
  const std::size_t modes_g = s.cfg.nx / 2 * s.cfg.nz;
  const std::size_t per = modes_g * s.n;  // elements per field section
  const std::size_t line_bytes = s.n * sizeof(cplx);
  std::vector<double> mean_l(2 * s.n, 0.0), mean_g(2 * s.n);
  if (s.has_mean) {
    std::copy(s.c_U.begin(), s.c_U.end(), mean_l.begin());
    std::copy(s.c_W.begin(), s.c_W.end(),
              mean_l.begin() + static_cast<std::ptrdiff_t>(s.n));
  }
  s.world.allreduce_sum(mean_l.data(), mean_g.data(), mean_l.size());
  // Section CRCs must come from the in-memory state (reading the file back
  // would checksum whatever a fault left there). Each rank checksums its
  // own mode lines; rank 0 stitches them together in global offset order
  // with crc32_combine. The u32 values ride in doubles through the
  // existing sum reduction — each line has exactly one owner.
  const aligned_buffer<cplx>* fields[3] = {&s.c_v, &s.c_om, &s.c_phi};
  std::vector<double> crc_l(3 * modes_g, 0.0), crc_g(3 * modes_g);
  for (std::size_t m = 0; m < s.nmodes; ++m) {
    const std::size_t jx = s.d.xs.offset + m / s.d.zs.count;
    const std::size_t jz = s.d.zs.offset + m % s.d.zs.count;
    const std::size_t line = jx * s.cfg.nz + jz;
    for (int f = 0; f < 3; ++f)
      crc_l[static_cast<std::size_t>(f) * modes_g + line] = static_cast<double>(
          crc32(fields[f]->data() + m * s.n, line_bytes));
  }
  s.world.allreduce_sum(crc_l.data(), crc_g.data(), crc_l.size());

  std::optional<io::atomic_file_writer> owner;
  if (s.world.rank() == 0) {
    owner.emplace(path);
    const std::uint64_t magic = kCheckpointMagic + 2;
    const std::uint64_t dims[3] = {
        s.cfg.nx, static_cast<std::uint64_t>(s.cfg.ny), s.cfg.nz};
    owner->write(&magic, sizeof(magic));
    owner->write(dims, sizeof(dims));
    owner->write(&s.time, sizeof(s.time));
    owner->write(&s.steps, sizeof(s.steps));
    const std::uint32_t meta[2] = {4, 0};
    owner->write(meta, sizeof(meta));
    const char* names[3] = {"c_v", "c_om", "c_phi"};
    for (int f = 0; f < 3; ++f) {
      std::uint32_t crc = 0;  // crc32 of the empty prefix
      for (std::size_t line = 0; line < modes_g; ++line)
        crc = crc32_combine(
            crc,
            static_cast<std::uint32_t>(
                crc_g[static_cast<std::size_t>(f) * modes_g + line]),
            line_bytes);
      const section_header h =
          make_section_header(names[f], per * sizeof(cplx), crc);
      owner->write(&h, sizeof(h));
    }
    const section_header hm = make_section_header(
        "mean", mean_g.size() * sizeof(double),
        crc32(mean_g.data(), mean_g.size() * sizeof(double)));
    owner->write(&hm, sizeof(hm));
    // The means live at the tail; writing them first also sizes the file.
    owner->write_at(kParallelV2Payload + 3 * per * sizeof(cplx),
                    mean_g.data(), mean_g.size() * sizeof(double));
    owner->flush();
  }
  s.world.barrier();
  {
    std::optional<io::atomic_file_writer> joiner;
    io::atomic_file_writer& os =
        s.world.rank() == 0 ? *owner
                            : joiner.emplace(io::atomic_file_writer::join(path));
    for (std::size_t m = 0; m < s.nmodes; ++m) {
      const std::size_t jx = s.d.xs.offset + m / s.d.zs.count;
      const std::size_t jz = s.d.zs.offset + m % s.d.zs.count;
      const std::size_t g = (jx * s.cfg.nz + jz) * s.n;
      for (int f = 0; f < 3; ++f)
        os.write_at(kParallelV2Payload +
                        (static_cast<std::size_t>(f) * per + g) * sizeof(cplx),
                    fields[f]->data() + m * s.n, line_bytes);
    }
    if (joiner) joiner->close();
  }
  s.world.barrier();
  if (owner) owner->commit();
  s.world.barrier();
}

void channel_dns::load_checkpoint_parallel(const std::string& path) {
  auto& s = *impl_;
  const std::size_t modes_g = s.cfg.nx / 2 * s.cfg.nz;
  const std::size_t per = modes_g * s.n;
  std::ifstream is(path, std::ios::binary);
  PCF_REQUIRE(is.good(),
              "cannot open parallel checkpoint for reading: " + path);
  std::uint64_t magic = 0, dims[3];
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  PCF_REQUIRE(magic == kCheckpointMagic + 2 ||
                  magic == kCheckpointMagicV1 + 2,
              "not a parallel checkpoint");
  is.read(reinterpret_cast<char*>(dims), sizeof(dims));
  PCF_REQUIRE(!is.fail(), "parallel checkpoint header truncated");
  PCF_REQUIRE(dims[0] == s.cfg.nx &&
                  dims[1] == static_cast<std::uint64_t>(s.cfg.ny) &&
                  dims[2] == s.cfg.nz,
              "parallel checkpoint grid mismatch");
  is.read(reinterpret_cast<char*>(&s.time), sizeof(s.time));
  is.read(reinterpret_cast<char*>(&s.steps), sizeof(s.steps));
  const bool v1 = magic == kCheckpointMagicV1 + 2;
  const std::size_t payload = v1 ? kParallelV1Header : kParallelV2Payload;
  const std::size_t mean_bytes = 2 * s.n * sizeof(double);
  const auto expected_size = static_cast<std::streamoff>(
      payload + 3 * per * sizeof(cplx) + mean_bytes);
  // Every rank runs the identical verification on the shared file, so all
  // ranks reach the same accept/reject decision without extra collectives.
  is.seekg(0, std::ios::end);
  PCF_REQUIRE(is.tellg() == expected_size,
              is.tellg() < expected_size
                  ? "parallel checkpoint truncated"
                  : "trailing garbage after checkpoint payload");
  section_header table[4];
  if (!v1) {
    std::uint32_t meta[2] = {0, 0};
    is.seekg(static_cast<std::streamoff>(kParallelV1Header));
    is.read(reinterpret_cast<char*>(meta), sizeof(meta));
    PCF_REQUIRE(!is.fail() && meta[0] == 4,
                "parallel checkpoint section count mismatch");
    is.read(reinterpret_cast<char*>(table), sizeof(table));
    PCF_REQUIRE(!is.fail(), "parallel checkpoint section table truncated");
    const char* names[4] = {"c_v", "c_om", "c_phi", "mean"};
    const std::size_t sizes[4] = {per * sizeof(cplx), per * sizeof(cplx),
                                  per * sizeof(cplx), mean_bytes};
    std::vector<char> buf(1 << 20);
    for (int t = 0; t < 4; ++t) {
      PCF_REQUIRE(section_name(table[t]) == names[t] &&
                      table[t].bytes == sizes[t],
                  "checkpoint section '" + section_name(table[t]) +
                      "' unexpected (expected '" + names[t] + "')");
      std::uint32_t crc = crc32_init();
      std::size_t left = sizes[t];
      while (left > 0) {
        const std::size_t chunk = std::min(left, buf.size());
        is.read(buf.data(), static_cast<std::streamsize>(chunk));
        PCF_REQUIRE(!is.fail(), std::string("checkpoint section '") +
                                    names[t] + "' truncated");
        crc = crc32_update(crc, buf.data(), chunk);
        left -= chunk;
      }
      PCF_REQUIRE(crc32_final(crc) == table[t].crc,
                  std::string("checkpoint section '") + names[t] +
                      "' CRC mismatch");
    }
  }
  for (std::size_t m = 0; m < s.nmodes; ++m) {
    const std::size_t jx = s.d.xs.offset + m / s.d.zs.count;
    const std::size_t jz = s.d.zs.offset + m % s.d.zs.count;
    const std::size_t g = (jx * s.cfg.nz + jz) * s.n;
    aligned_buffer<cplx>* fields[3] = {&s.c_v, &s.c_om, &s.c_phi};
    for (int f = 0; f < 3; ++f) {
      is.seekg(static_cast<std::streamoff>(
          payload + (static_cast<std::size_t>(f) * per + g) * sizeof(cplx)));
      is.read(reinterpret_cast<char*>(fields[f]->data() + m * s.n),
              static_cast<std::streamsize>(s.n * sizeof(cplx)));
    }
  }
  std::vector<double> mean_g(2 * s.n);
  is.seekg(static_cast<std::streamoff>(payload + 3 * per * sizeof(cplx)));
  is.read(reinterpret_cast<char*>(mean_g.data()),
          static_cast<std::streamsize>(mean_bytes));
  PCF_REQUIRE(is.good(), "parallel checkpoint read failed");
  if (s.has_mean) {
    std::copy_n(mean_g.data(), s.n, s.c_U.begin());
    std::copy_n(mean_g.data() + s.n, s.n, s.c_W.begin());
  }
  s.hv_prev.fill(cplx{0, 0});
  s.hg_prev.fill(cplx{0, 0});
  std::fill(s.hU_prev.begin(), s.hU_prev.end(), 0.0);
  std::fill(s.hW_prev.begin(), s.hW_prev.end(), 0.0);
  s.world.barrier();
}

step_timings channel_dns::timings() const {
  auto& s = *impl_;
  step_timings t;
  t.transpose = s.pf.comm_seconds() + s.pf.reorder_seconds();
  t.fft = s.pf.fft_seconds();
  t.advance = s.advance_t.total();
  t.total = s.total_t.total();
  return t;
}

void channel_dns::reset_timings() {
  impl_->pf.reset_timers();
  impl_->advance_t.reset();
  impl_->total_t.reset();
}

}  // namespace pcf::core
