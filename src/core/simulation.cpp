// channel_dns lifecycle and stepping: construction/wiring (via
// channel_dns::impl in simulation_impl.hpp), initial conditions, the step
// entry points and the timing report. Observables live in observables.cpp,
// checkpointing in checkpoint.cpp.
#include "core/simulation.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/simulation_impl.hpp"
#include "util/rng.hpp"

namespace pcf::core {

channel_dns::channel_dns(const channel_config& cfg, vmpi::communicator& world)
    : impl_((cfg.validate(), new impl(cfg, world))) {}
channel_dns::~channel_dns() = default;

const channel_config& channel_dns::config() const { return impl_->cfg; }
const wall_normal_operators& channel_dns::operators() const {
  return impl_->ops;
}
const pencil::decomp& channel_dns::dec() const { return impl_->d; }

void channel_dns::initialize(double perturbation, std::uint64_t seed) {
  auto& s = *impl_;
  s.ensure_resumed();
  const auto& mt = s.modes;
  s.state.zero();
  const std::size_t n = mt.n;
  const auto& pts = s.ops.points();

  if (mt.has_mean) {
    if (perturbation <= 0.0) {
      // Laminar Poiseuille: U = Re_tau (1 - y^2) / 2 for unit pressure
      // gradient (scaled by the configured forcing) — the exact steady
      // state of the unperturbed discrete system.
      for (std::size_t i = 0; i < n; ++i)
        s.state.c_U[i] =
            s.cfg.forcing * s.cfg.re_tau * 0.5 * (1.0 - pts[i] * pts[i]);
    } else {
      // Perturbed start: a turbulent mean estimate (Reichardt's profile in
      // wall units). Starting from laminar Poiseuille at the same pressure
      // gradient would give a centerline velocity Re_tau/2 — five times
      // the turbulent mean — and violate the convective CFL limit.
      const double kappa = 0.41;
      for (std::size_t i = 0; i < n; ++i) {
        const double yp = (1.0 - std::abs(pts[i])) * s.cfg.re_tau;
        s.state.c_U[i] = s.cfg.forcing *
                         (std::log(1.0 + kappa * yp) / kappa +
                          7.8 * (1.0 - std::exp(-yp / 11.0) -
                                 (yp / 11.0) * std::exp(-yp / 3.0)));
      }
    }
    const auto& scen = s.cfg.scenario;
    if (scen.wall_u_lo != 0.0 || scen.wall_u_hi != 0.0) {
      // Plane Couette contribution: the linear profile carrying the wall
      // velocities rides on top of the pressure-driven base (the laminar
      // steady state of the combined scenario is exactly the
      // superposition). Guarded so the classical channel's start is
      // bit-identical.
      for (std::size_t i = 0; i < n; ++i)
        s.state.c_U[i] += scen.wall_u_lo * 0.5 * (1.0 - pts[i]) +
                          scen.wall_u_hi * 0.5 * (1.0 + pts[i]);
    }
    s.ops.to_coefficients(s.state.c_U.data());
    if (scen.wall_w_lo != 0.0 || scen.wall_w_hi != 0.0) {
      for (std::size_t i = 0; i < n; ++i)
        s.state.c_W[i] = scen.wall_w_lo * 0.5 * (1.0 - pts[i]) +
                         scen.wall_w_hi * 0.5 * (1.0 + pts[i]);
      s.ops.to_coefficients(s.state.c_W.data());
    }
    // Scalar means start on the steady conduction profile (linear between
    // the wall values); fluctuations start at zero and develop through
    // advection by the velocity perturbations.
    for (std::size_t sc = 0; sc < s.state.scalars.size(); ++sc) {
      const auto& spec = scen.scalars[sc];
      auto& th = s.state.scalars[sc].c_T;
      for (std::size_t i = 0; i < n; ++i)
        th[i] = spec.wall_lo * 0.5 * (1.0 - pts[i]) +
                spec.wall_hi * 0.5 * (1.0 + pts[i]);
      s.ops.to_coefficients(th.data());
    }
  }

  if (perturbation > 0.0) {
    // Divergence-free perturbations on low modes with shapes satisfying
    // all boundary conditions: v ~ (1-y^2)^2, omega_y ~ (1-y^2).
    // Deterministic in the *global* mode indices, so any decomposition
    // produces the same field; the kx = 0 plane is kept Hermitian in kz.
    // Amplitude is relative to a nominal turbulent bulk velocity (~15 in
    // friction units).
    const double amp = perturbation * 15.0;
    auto coeffs = [&](std::size_t jx, std::size_t jz) {
      const std::size_t jzc = (s.cfg.nz - jz) % s.cfg.nz;
      const bool conj_plane = (jx == 0) && (jz > jzc);
      const std::size_t jz_eff = conj_plane ? jzc : jz;
      rng r(seed * 0x10001 + jx * 7919 + jz_eff * 104729 + 13);
      cplx a{r.uniform(-1, 1), r.uniform(-1, 1)};
      cplx b{r.uniform(-1, 1), r.uniform(-1, 1)};
      if (jx == 0 && jz == jzc) {  // self-conjugate: must be real
        a = a.real();
        b = b.real();
      }
      if (conj_plane) {
        a = std::conj(a);
        b = std::conj(b);
      }
      return std::pair<cplx, cplx>{a, b};
    };
    workspace_lane::scope scratch(s.ws.shared());
    cplx* vpts = s.ws.shared().alloc<cplx>(n);
    cplx* ompts = s.ws.shared().alloc<cplx>(n);
    cplx* phipts = s.ws.shared().alloc<cplx>(n);
    cplx* v0 = s.ws.shared().alloc<cplx>(n);
    for (std::size_t m = 0; m < mt.nmodes; ++m) {
      if (mt.skip[m]) continue;
      const std::size_t jx = s.d.xs.offset + m / s.d.zs.count;
      const std::size_t jz = s.d.zs.offset + m % s.d.zs.count;
      const long mz = jz < s.cfg.nz / 2
                          ? static_cast<long>(jz)
                          : static_cast<long>(jz) - static_cast<long>(s.cfg.nz);
      if (jx > 2 || std::abs(mz) > 2) continue;
      auto [a, b] = coeffs(jx, jz);
      const double k2 = mt.kx[m] * mt.kx[m] + mt.kz[m] * mt.kz[m];
      for (std::size_t i = 0; i < n; ++i) {
        const double y = pts[i];
        const double sv = (1.0 - y * y) * (1.0 - y * y);
        const double so = (1.0 - y * y);
        vpts[i] = amp * a * sv;
        ompts[i] = amp * b * so;
      }
      cplx* cv = s.line(s.state.c_v, m);
      cplx* co = s.line(s.state.c_om, m);
      cplx* cp = s.line(s.state.c_phi, m);
      std::copy_n(vpts, n, cv);
      std::copy_n(ompts, n, co);
      s.ops.to_coefficients(cv);
      s.ops.to_coefficients(co);
      // phi = (D^2 - k^2) v at the points, then back to coefficients.
      s.ops.deriv2_points(cv, phipts);
      s.ops.to_points(cv, v0);
      for (std::size_t i = 0; i < n; ++i) phipts[i] -= k2 * v0[i];
      std::copy_n(phipts, n, cp);
      s.ops.to_coefficients(cp);
    }
  }
  s.time = 0.0;
  s.steps = 0;
}

void channel_dns::step() { impl_->step(); }

void channel_dns::suspend() { impl_->suspend(); }
void channel_dns::resume() { impl_->resume(); }
bool channel_dns::suspended() const { return impl_->suspended_; }

void channel_dns::set_dt(double dt) {
  PCF_REQUIRE(dt > 0.0, "dt must be positive");
  impl_->cfg.dt = dt;
  impl_->invalidate_solvers();
}

void channel_dns::set_cfl_target(double target, double dt_min,
                                 double dt_max) {
  PCF_REQUIRE(target <= 0.0 || (dt_min > 0.0 && dt_max >= dt_min),
              "need 0 < dt_min <= dt_max for an active CFL target");
  impl_->diagnostics.set_cfl_target(target, dt_min, dt_max);
}

double channel_dns::time() const { return impl_->time; }
long channel_dns::step_count() const { return impl_->steps; }
double channel_dns::dt() const { return impl_->cfg.dt; }
double channel_dns::cfl() const { return impl_->state.cfl_global; }

step_timings channel_dns::timings() const { return impl_->diagnostics.report(); }

void channel_dns::reset_timings() {
  impl_->pf.reset_timers();
  impl_->timers.reset();
}

}  // namespace pcf::core
