// Production-run orchestration (paper Section 6).
//
// The paper's science campaign runs ~13 flow-throughs (~650,000 steps) in
// checkpointed segments, discarding the transient before accumulating
// statistics. This runner packages that workflow: it advances the DNS in
// segments, samples statistics on a cadence after a warmup time, writes
// periodic checkpoints, records a time series of the global diagnostics,
// and can stop on a wall-clock budget.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/simulation.hpp"

namespace pcf::core {

struct run_plan {
  double flow_throughs = 1.0;    // run length in bulk flow-through times
  double warmup_fraction = 0.5;  // fraction of the run before statistics
  long stats_every = 10;         // steps between statistics samples
  long diag_every = 50;          // steps between diagnostics records
  long checkpoint_every = 0;     // steps between checkpoints (0 = none)
  std::string checkpoint_path;   // prefix; ".<rank>" is appended
  double max_seconds = 0.0;      // wall-clock budget (0 = unlimited)
  bool stop_on_nonfinite = true;  // halt if the energy goes non-finite
};

/// One row of the diagnostics time series.
struct diag_sample {
  long step = 0;
  double time = 0.0;
  double bulk_velocity = 0.0;
  double kinetic_energy = 0.0;
  double wall_shear = 0.0;
  double cfl = 0.0;
};

struct run_report {
  long steps_run = 0;
  bool hit_time_budget = false;
  bool went_nonfinite = false;  // simulation blew up and was halted
  long checkpoints_written = 0;
  std::vector<diag_sample> series;
  profile_data profiles;   // accumulated statistics (may be empty)
};

/// Estimate the flow-through time Lx / U_bulk from the current state.
double flow_through_time(channel_dns& dns);

/// Execute the plan. `on_diag` (optional) is called with each diagnostics
/// sample as it is recorded (for logging). Collective.
run_report run_campaign(channel_dns& dns, vmpi::communicator& world,
                        const run_plan& plan,
                        const std::function<void(const diag_sample&)>& on_diag = {});

/// Write the diagnostics series as CSV.
void write_series_csv(const std::string& path,
                      const std::vector<diag_sample>& series);

}  // namespace pcf::core
