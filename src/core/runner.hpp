// Production-run orchestration (paper Section 6).
//
// The paper's science campaign runs ~13 flow-throughs (~650,000 steps) in
// checkpointed segments, discarding the transient before accumulating
// statistics. This runner packages that workflow: it advances the DNS in
// segments, samples statistics on a cadence after a warmup time, writes
// rotated crash-safe checkpoints, records a time series of the global
// diagnostics, and can stop on a wall-clock budget.
//
// Recovery policy: checkpoints rotate through numbered generations
// (`<prefix>.g<step>.<rank>`, newest `checkpoint_keep` kept), so a corrupt
// or torn file never leaves the campaign without a restart point — the
// loader falls back to the newest generation that every rank verifies and
// whose restored state is finite. If the integration blows up (non-finite
// energy), the runner writes a diagnostic report (including the vmpi
// communication statistics) and, when `max_blowup_retries` allows, restores
// the newest good generation with the time step scaled by
// `retry_dt_factor` before continuing.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/simulation.hpp"

namespace pcf::core {

struct run_plan {
  double flow_throughs = 1.0;    // run length in bulk flow-through times
  double warmup_fraction = 0.5;  // fraction of the run before statistics
  long stats_every = 10;         // steps between statistics samples
  long diag_every = 50;          // steps between diagnostics records
  long checkpoint_every = 0;     // steps between checkpoints (0 = none)
  std::string checkpoint_path;   // prefix; ".g<step>.<rank>" is appended
  int checkpoint_keep = 2;       // rotated generations to keep (>= 1)
  double max_seconds = 0.0;      // wall-clock budget (0 = unlimited)
  bool stop_on_nonfinite = true;  // halt if the energy goes non-finite

  // Blow-up recovery: restore the newest good checkpoint generation with a
  // reduced time step, at most `max_blowup_retries` times per campaign
  // (0 = report and halt, the pre-recovery behavior).
  int max_blowup_retries = 0;
  double retry_dt_factor = 0.5;  // dt multiplier applied on each retry
  std::string report_path;  // blow-up report ("" -> <checkpoint_path>.blowup.txt)

  // Per-stage timing windows: every `timings_every` steps (0 = never) the
  // runner hands the step_timings accumulated over the window (including
  // the hierarchical phase rows) to `on_timings` and resets the timers, so
  // long campaigns get a rolling per-stage breakdown instead of one
  // end-of-run aggregate.
  long timings_every = 0;
  std::function<void(const step_timings&)> on_timings;
};

/// One row of the diagnostics time series.
struct diag_sample {
  long step = 0;
  double time = 0.0;
  double bulk_velocity = 0.0;
  double kinetic_energy = 0.0;
  double wall_shear = 0.0;
  double cfl = 0.0;
};

struct run_report {
  long steps_run = 0;
  bool hit_time_budget = false;
  bool went_nonfinite = false;  // simulation blew up and was halted
  long checkpoints_written = 0;
  long blowup_recoveries = 0;   // successful restore-with-reduced-dt cycles
  long restored_generation = -1;  // newest generation restored from (-1: none)
  bool wrote_report = false;    // a blow-up report was written
  std::vector<diag_sample> series;
  profile_data profiles;   // accumulated statistics (may be empty)
};

/// Estimate the flow-through time Lx / U_bulk from the current state.
double flow_through_time(channel_dns& dns);

/// Restore the newest checkpoint generation under `prefix` that every rank
/// loads cleanly (atomic rename means a generation either exists complete
/// or not at all, and the per-section CRCs reject silent corruption) and
/// whose restored energy is finite. Returns the generation number, or -1
/// if no generation is usable (the DNS state is then unspecified).
/// Collective.
long restore_newest_generation(channel_dns& dns, vmpi::communicator& world,
                               const std::string& prefix);

/// Restore the newest good generation if any rotated checkpoint exists
/// under `prefix`, otherwise initialize(perturbation, seed). Returns the
/// restored generation, or -1 for a fresh start. Collective.
long resume_or_initialize(channel_dns& dns, vmpi::communicator& world,
                          const std::string& prefix, double perturbation,
                          std::uint64_t seed = 1);

/// Execute the plan. `on_diag` (optional) is called with each diagnostics
/// sample as it is recorded (for logging). Collective.
run_report run_campaign(channel_dns& dns, vmpi::communicator& world,
                        const run_plan& plan,
                        const std::function<void(const diag_sample&)>& on_diag = {});

/// Write the diagnostics series as CSV.
void write_series_csv(const std::string& path,
                      const std::vector<diag_sample>& series);

}  // namespace pcf::core
