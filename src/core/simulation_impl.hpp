// Internal definition of channel_dns::impl, shared by the simulation's
// translation units (simulation.cpp: lifecycle + stepping, observables.cpp:
// diagnostics/statistics/spectra, checkpoint.cpp: the three checkpoint
// formats). Not installed; include only from src/core.
//
// The impl is a thin composition root: it owns the communicator, the
// decomposition, the workspace arena, the pencil kernel, the operators and
// the field state, and wires them into the four pipeline stages through one
// stage_context. Stepping is the stage sequence; everything else delegates.
#pragma once

#include <algorithm>
#include <optional>

#include "core/simulation.hpp"
#include "core/stages/diagnostics_stage.hpp"
#include "core/stages/implicit_stage.hpp"
#include "core/stages/mean_flow_stage.hpp"
#include "core/stages/nonlinear_stage.hpp"
#include "core/stages/stage_context.hpp"
#include "util/block_pool.hpp"
#include "util/thread_pool.hpp"
#include "util/workspace.hpp"

namespace pcf::core {

struct channel_dns::impl {
  channel_config cfg;
  vmpi::communicator world;
  vmpi::cart2d cart;
  pencil::decomp d;
  // The workspace must be constructed before the pencil kernel (which
  // permanently checks its transpose/FFT buffers out of the transform
  // lane) and before the stages (permanent shared-/thread-lane checkouts).
  field_workspace ws;
  pencil::parallel_fft pf;
  wall_normal_operators ops;
  thread_pool adv_pool;
  mode_tables modes;
  field_state state;
  profile_accumulator stats_acc;
  // Per-stage phase tree. Op attribution only on single-rank runs: the
  // counter buckets are process-global and vmpi ranks are threads of one
  // process (see phase_timer's file comment).
  phase_timer timers;
  phase_timer::id ph_step;
  stage_context ctx;
  nonlinear_stage nonlinear;
  implicit_stage implicit;
  mean_flow_stage mean_flow;
  diagnostics_stage diagnostics;

  double time = 0.0;
  long steps = 0;
  bool suspended_ = false;

  /// The Cartesian split of the *resolved* decomposition: slab / 2.5D /
  /// tuned layouts rewrite cfg.pa/cfg.pb (collective measurement for
  /// `tuned`) before any communicator is split, so the one cart below is
  /// already the production layout. A plain init-list call would read
  /// cfg.pa/cfg.pb at unspecified times relative to the resolution; the
  /// helper sequences it.
  static vmpi::cart2d make_cart(channel_config& c, vmpi::communicator& w) {
    resolve_parallel_plan(c, w);
    return {w, c.pa, c.pb};
  }

  impl(const channel_config& c, vmpi::communicator& w)
      : cfg(c),
        world(w),
        cart(make_cart(cfg, w)),
        // resolve_tuning may rewrite cfg's batch/pipeline/strategy fields
        // (collective measurement when c.autotune is set), so every member
        // below is sized from the *resolved* cfg, not from c — in
        // particular the workspace's transform lane, which pf permanently
        // checks its buffers out of.
        d(pencil::grid{cfg.nx, static_cast<std::size_t>(cfg.ny), cfg.nz},
          dns_kernel_config(resolve_tuning(cfg, world, cart)), cart.pa(),
          cart.pb(), cart.coord_a(), cart.coord_b()),
        ws(dns_workspace_sizes(cfg, d),
           cfg.pooled_workspace ? &block_pool::global() : nullptr),
        pf(pencil::grid{cfg.nx, static_cast<std::size_t>(cfg.ny), cfg.nz},
           cart, dns_kernel_config(cfg), ws.transform()),
        ops(cfg.ny, cfg.degree, cfg.stretch),
        adv_pool(std::max(1, cfg.advance_threads)),
        modes(make_mode_tables(cfg, d)),
        state(modes, d.x_pencil_real_elems(), ws,
              cfg.scenario.scalars.size()),
        stats_acc(d.yb.count, d.yb.offset, modes.n),
        timers(world.size() == 1),
        ph_step(timers.add("step")),
        ctx{cfg, d,     ops, pf, adv_pool, world,
            modes, state, ws, timers},
        nonlinear(ctx, ph_step),
        implicit(ctx, ph_step),
        mean_flow(ctx, ph_step),
        diagnostics(ctx, ph_step) {}

  void invalidate_solvers() {
    implicit.invalidate();
    mean_flow.invalidate();
  }

  /// Park this instance: free the factored-solver slabs and hand every
  /// workspace slab back (to the block pool when pooled, to the OS when
  /// owned). Evolved state, statistics and timers are untouched. Legal
  /// only at a step boundary; the permanent workspace checkouts (pencil
  /// ping-pong buffers, hU/hW, CFL maxima, solve panels) are all
  /// contents-dead there — each is zero-filled or fully rewritten before
  /// its next read.
  void suspend() {
    if (suspended_) return;
    implicit.drop_arenas();
    mean_flow.invalidate();
    ws.release();
    suspended_ = true;
  }

  /// Reacquire the workspace slabs (possibly different pool blocks) and
  /// re-establish every permanent checkout in construction order, so each
  /// lands at its construction offset on the new base: transform lane —
  /// pf's ping-pong buffers; shared lane — field_state's hU/hW then the
  /// nonlinear stage's CFL maxima; thread lanes — the implicit solve
  /// panels. Solver arenas rebuild lazily on the next step (the dt-change
  /// path already proves that bit-identical).
  void resume() {
    if (!suspended_) return;
    ws.reacquire();
    pf.rebind_workspace();
    state.rebind_workspace(ws);
    nonlinear.rebind_workspace();
    implicit.rebind_workspace();
    suspended_ = false;
  }

  /// Implicit-resume guard for every state-touching entry point.
  void ensure_resumed() {
    if (suspended_) resume();
  }

  /// One full RK3 time step: three substeps through the stage pipeline,
  /// then the end-of-step diagnostics (CFL reduction + dt controller).
  void step() {
    ensure_resumed();
    phase_timer::section sec(timers, ph_step);
    for (int i = 0; i < 3; ++i) {
      nonlinear.run();
      implicit.run(i);
      mean_flow.run(i);
    }
    time += cfg.dt;
    ++steps;
    const double next = diagnostics.finish_step();
    if (next > 0.0) {
      cfg.dt = next;
      invalidate_solvers();
    }
  }

  // Convenience forwarders used across the TUs.
  [[nodiscard]] cplx* line(aligned_buffer<cplx>& b, std::size_t m) {
    return state.line(b, m);
  }
  [[nodiscard]] const cplx* line(const aligned_buffer<cplx>& b,
                                 std::size_t m) const {
    return state.line(b, m);
  }
};

}  // namespace pcf::core
