#include "core/statistics.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace pcf::core {

profile_accumulator::profile_accumulator(std::size_t ny_local,
                                         std::size_t y_offset,
                                         std::size_t ny_global)
    : ny_local_(ny_local), y_offset_(y_offset), ny_global_(ny_global) {
  su_.assign(ny_global, 0.0);
  sv_.assign(ny_global, 0.0);
  sw_.assign(ny_global, 0.0);
  suu_.assign(ny_global, 0.0);
  svv_.assign(ny_global, 0.0);
  sww_.assign(ny_global, 0.0);
  suv_.assign(ny_global, 0.0);
}

void profile_accumulator::add_sample(const double* u, const double* v,
                                     const double* w, std::size_t nz_local,
                                     std::size_t ny_local,
                                     std::size_t nx_line) {
  PCF_REQUIRE(ny_local == ny_local_, "layout mismatch");
  for (std::size_t z = 0; z < nz_local; ++z) {
    for (std::size_t y = 0; y < ny_local; ++y) {
      const std::size_t base = (z * ny_local + y) * nx_line;
      double a = 0, b = 0, c = 0, aa = 0, bb = 0, cc = 0, ab = 0;
      for (std::size_t x = 0; x < nx_line; ++x) {
        const double uu = u[base + x], vv = v[base + x], ww = w[base + x];
        a += uu;
        b += vv;
        c += ww;
        aa += uu * uu;
        bb += vv * vv;
        cc += ww * ww;
        ab += uu * vv;
      }
      const std::size_t yg = y_offset_ + y;
      su_[yg] += a;
      sv_[yg] += b;
      sw_[yg] += c;
      suu_[yg] += aa;
      svv_[yg] += bb;
      sww_[yg] += cc;
      suv_[yg] += ab;
    }
  }
  ++samples_;
}

profile_data profile_accumulator::finalize(
    vmpi::communicator& world, const std::vector<double>& y_points,
    std::size_t points_per_plane) const {
  PCF_REQUIRE(y_points.size() == ny_global_, "y grid size mismatch");
  const std::size_t n = ny_global_;
  std::vector<double> local(7 * n), global(7 * n);
  for (std::size_t i = 0; i < n; ++i) {
    local[0 * n + i] = su_[i];
    local[1 * n + i] = sv_[i];
    local[2 * n + i] = sw_[i];
    local[3 * n + i] = suu_[i];
    local[4 * n + i] = svv_[i];
    local[5 * n + i] = sww_[i];
    local[6 * n + i] = suv_[i];
  }
  world.allreduce_sum(local.data(), global.data(), local.size());

  profile_data p;
  p.y = y_points;
  p.samples = samples_;
  p.u.resize(n);
  p.uu.resize(n);
  p.vv.resize(n);
  p.ww.resize(n);
  p.uv.resize(n);
  const double norm =
      1.0 / (static_cast<double>(points_per_plane) *
             static_cast<double>(std::max<long>(samples_, 1)));
  for (std::size_t i = 0; i < n; ++i) {
    const double mu = global[0 * n + i] * norm;
    const double mv = global[1 * n + i] * norm;
    const double mw = global[2 * n + i] * norm;
    p.u[i] = mu;
    p.uu[i] = global[3 * n + i] * norm - mu * mu;
    p.vv[i] = global[4 * n + i] * norm - mv * mv;
    p.ww[i] = global[5 * n + i] * norm - mw * mw;
    p.uv[i] = global[6 * n + i] * norm - mu * mv;
  }
  return p;
}

void profile_accumulator::reset() {
  std::fill(su_.begin(), su_.end(), 0.0);
  std::fill(sv_.begin(), sv_.end(), 0.0);
  std::fill(sw_.begin(), sw_.end(), 0.0);
  std::fill(suu_.begin(), suu_.end(), 0.0);
  std::fill(svv_.begin(), svv_.end(), 0.0);
  std::fill(sww_.begin(), sww_.end(), 0.0);
  std::fill(suv_.begin(), suv_.end(), 0.0);
  samples_ = 0;
}

}  // namespace pcf::core
