// channel_dns observables: diagnostics (energy, dissipation, divergence),
// running statistics, spectra and state accessors. All scratch comes from
// the workspace's shared lane (these are serial collective calls), so none
// of them allocates per call beyond their returned containers.
#include <algorithm>
#include <cmath>

#include "core/simulation.hpp"
#include "core/simulation_impl.hpp"

namespace pcf::core {

double channel_dns::bulk_velocity() {
  auto& s = *impl_;
  double local = 0.0;
  if (s.modes.has_mean)
    local = s.ops.b().integrate(s.state.c_U.data()) / 2.0;
  double global = 0.0;
  s.world.allreduce_sum(&local, &global, 1);
  return global;
}

double channel_dns::wall_shear_stress() {
  auto& s = *impl_;
  double local = 0.0;
  if (s.modes.has_mean)
    local = s.ops.dspline_lower(s.state.c_U.data()) / s.cfg.re_tau;
  double global = 0.0;
  s.world.allreduce_sum(&local, &global, 1);
  return global;
}

double channel_dns::kinetic_energy() {
  auto& s = *impl_;
  s.ensure_resumed();
  const std::size_t n = s.modes.n;
  s.nonlinear.compute_velocities();
  s.nonlinear.velocities_to_physical();
  // Trapezoid weights in y over the Greville points, uniform in x and z.
  const auto& pts = s.ops.points();
  workspace_lane::scope scratch(s.ws.shared());
  double* wy = s.ws.shared().alloc<double>(n);
  std::fill_n(wy, n, 0.0);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double h = pts[i + 1] - pts[i];
    wy[i] += 0.5 * h;
    wy[i + 1] += 0.5 * h;
  }
  double local = 0.0;
  for (std::size_t z = 0; z < s.d.zp.count; ++z)
    for (std::size_t y = 0; y < s.d.yb.count; ++y) {
      const std::size_t base = (z * s.d.yb.count + y) * s.d.nxf;
      double acc = 0.0;
      for (std::size_t x = 0; x < s.d.nxf; ++x) {
        const double u = s.state.u_p[base + x], v = s.state.v_p[base + x],
                     w = s.state.w_p[base + x];
        acc += u * u + v * v + w * w;
      }
      local += acc * wy[s.d.yb.offset + y];
    }
  double global = 0.0;
  s.world.allreduce_sum(&local, &global, 1);
  const double npts =
      static_cast<double>(s.d.nxf) * static_cast<double>(s.d.nzf);
  return 0.5 * global / npts / 2.0;  // volume average (y measure = 2)
}

double channel_dns::dissipation() {
  auto& s = *impl_;
  s.ensure_resumed();
  const auto& mt = s.modes;
  const std::size_t n = mt.n;
  s.nonlinear.compute_velocities();
  // Trapezoid quadrature weights over the Greville points.
  const auto& pts = s.ops.points();
  workspace_lane::scope scratch(s.ws.shared());
  double* wy = s.ws.shared().alloc<double>(n);
  std::fill_n(wy, n, 0.0);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double h = pts[i + 1] - pts[i];
    wy[i] += 0.5 * h;
    wy[i + 1] += 0.5 * h;
  }
  double local = 0.0;
  cplx* cu = s.ws.shared().alloc<cplx>(n);
  cplx* cw = s.ws.shared().alloc<cplx>(n);
  cplx* du = s.ws.shared().alloc<cplx>(n);
  cplx* dv = s.ws.shared().alloc<cplx>(n);
  cplx* dw = s.ws.shared().alloc<cplx>(n);
  for (std::size_t m = 0; m < mt.nmodes; ++m) {
    const bool is_mean = mt.has_mean && m == mt.mean_idx;
    if (mt.skip[m] && !is_mean) continue;
    // y-derivatives at the points: u and w need an interpolation solve,
    // v's spline coefficients are state.
    std::copy_n(s.line(s.state.u_s, m), n, cu);
    std::copy_n(s.line(s.state.w_s, m), n, cw);
    s.ops.to_coefficients(cu);
    s.ops.to_coefficients(cw);
    s.ops.deriv1_points(cu, du);
    s.ops.deriv1_points(cw, dw);
    if (is_mean) {
      std::fill_n(dv, n, cplx{0, 0});
    } else {
      s.ops.deriv1_points(s.line(s.state.c_v, m), dv);
    }
    const double k2 = mt.kx[m] * mt.kx[m] + mt.kz[m] * mt.kz[m];
    const double weight =
        (s.d.xs.offset + m / s.d.zs.count) == 0 ? 1.0 : 2.0;
    const cplx* us = s.line(s.state.u_s, m);
    const cplx* vs = s.line(s.state.v_s, m);
    const cplx* ws = s.line(s.state.w_s, m);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double grad2 =
          k2 * (std::norm(us[i]) + std::norm(vs[i]) + std::norm(ws[i])) +
          std::norm(du[i]) + std::norm(dv[i]) + std::norm(dw[i]);
      acc += wy[i] * grad2;
    }
    local += weight * acc;
  }
  double global = 0.0;
  s.world.allreduce_sum(&local, &global, 1);
  return global / s.cfg.re_tau / 2.0;  // nu * integral / (y measure 2)
}

double channel_dns::max_divergence() {
  auto& s = *impl_;
  s.ensure_resumed();
  const auto& mt = s.modes;
  const std::size_t n = mt.n;
  double local = 0.0;
  workspace_lane::scope scratch(s.ws.shared());
  cplx* dv = s.ws.shared().alloc<cplx>(n);
  cplx* om = s.ws.shared().alloc<cplx>(n);
  for (std::size_t m = 0; m < mt.nmodes; ++m) {
    if (mt.skip[m]) continue;
    const double k2 = mt.kx[m] * mt.kx[m] + mt.kz[m] * mt.kz[m];
    s.ops.deriv1_points(s.line(s.state.c_v, m), dv);
    s.ops.to_points(s.line(s.state.c_om, m), om);
    const cplx ikx{0.0, mt.kx[m]};
    const cplx ikz{0.0, mt.kz[m]};
    for (std::size_t i = 0; i < n; ++i) {
      const cplx us = (cplx{0.0, mt.kx[m] / k2} * dv[i] -
                       cplx{0.0, mt.kz[m] / k2} * om[i]);
      const cplx ws = (cplx{0.0, mt.kz[m] / k2} * dv[i] +
                       cplx{0.0, mt.kx[m] / k2} * om[i]);
      const cplx dval = ikx * us + dv[i] + ikz * ws;
      local = std::max(local, std::abs(dval));
    }
  }
  double global = 0.0;
  s.world.allreduce_max(&local, &global, 1);
  return global;
}

void channel_dns::accumulate_stats() {
  auto& s = *impl_;
  s.ensure_resumed();
  s.nonlinear.compute_velocities();
  s.nonlinear.velocities_to_physical();
  s.stats_acc.add_sample(s.state.u_p.data(), s.state.v_p.data(),
                         s.state.w_p.data(), s.d.zp.count, s.d.yb.count,
                         s.d.nxf);
}

profile_data channel_dns::stats() {
  auto& s = *impl_;
  return s.stats_acc.finalize(s.world, s.ops.points(), s.d.nxf * s.d.nzf);
}

void channel_dns::reset_stats() { impl_->stats_acc.reset(); }

void channel_dns::physical_velocity(std::vector<double>& u,
                                    std::vector<double>& v,
                                    std::vector<double>& w) {
  auto& s = *impl_;
  s.ensure_resumed();
  s.nonlinear.compute_velocities();
  s.nonlinear.velocities_to_physical();
  u.assign(s.state.u_p.begin(), s.state.u_p.end());
  v.assign(s.state.v_p.begin(), s.state.v_p.end());
  w.assign(s.state.w_p.begin(), s.state.w_p.end());
}

std::vector<double> channel_dns::mean_profile() {
  auto& s = *impl_;
  s.ensure_resumed();
  const std::size_t n = s.modes.n;
  workspace_lane::scope scratch(s.ws.shared());
  double* local = s.ws.shared().alloc<double>(n);
  std::fill_n(local, n, 0.0);
  if (s.modes.has_mean) s.ops.to_points(s.state.c_U.data(), local);
  std::vector<double> global(n, 0.0);
  s.world.allreduce_sum(local, global.data(), n);
  return global;
}

void channel_dns::set_mean_profile(const std::vector<double>& values) {
  auto& s = *impl_;
  PCF_REQUIRE(values.size() == s.modes.n, "profile size mismatch");
  if (!s.modes.has_mean) return;
  std::copy(values.begin(), values.end(), s.state.c_U.begin());
  s.ops.to_coefficients(s.state.c_U.data());
}

std::vector<cplx> channel_dns::mode_v(std::size_t jx, std::size_t jz) {
  auto& s = *impl_;
  if (jx < s.d.xs.offset || jx >= s.d.xs.offset + s.d.xs.count ||
      jz < s.d.zs.offset || jz >= s.d.zs.offset + s.d.zs.count)
    return {};
  const std::size_t m =
      (jx - s.d.xs.offset) * s.d.zs.count + (jz - s.d.zs.offset);
  return std::vector<cplx>(s.line(s.state.c_v, m),
                           s.line(s.state.c_v, m) + s.modes.n);
}

std::vector<cplx> channel_dns::mode_omega(std::size_t jx, std::size_t jz) {
  auto& s = *impl_;
  if (jx < s.d.xs.offset || jx >= s.d.xs.offset + s.d.xs.count ||
      jz < s.d.zs.offset || jz >= s.d.zs.offset + s.d.zs.count)
    return {};
  const std::size_t m =
      (jx - s.d.xs.offset) * s.d.zs.count + (jz - s.d.zs.offset);
  return std::vector<cplx>(s.line(s.state.c_om, m),
                           s.line(s.state.c_om, m) + s.modes.n);
}

spectrum_data channel_dns::streamwise_spectra(int y_index) {
  auto& s = *impl_;
  s.ensure_resumed();
  const auto& mt = s.modes;
  PCF_REQUIRE(y_index >= 0 && y_index < static_cast<int>(mt.n),
              "y index out of range");
  s.nonlinear.compute_velocities();
  const std::size_t nbins = s.cfg.nx / 2;
  workspace_lane::scope scratch(s.ws.shared());
  double* local = s.ws.shared().alloc<double>(3 * nbins);
  double* global = s.ws.shared().alloc<double>(3 * nbins);
  std::fill_n(local, 3 * nbins, 0.0);
  for (std::size_t m = 0; m < mt.nmodes; ++m) {
    if (mt.skip[m]) continue;
    const std::size_t jx = s.d.xs.offset + m / s.d.zs.count;
    const double w = jx == 0 ? 1.0 : 2.0;  // conjugate (negative-kx) half
    const auto yi = static_cast<std::size_t>(y_index);
    local[0 * nbins + jx] += w * std::norm(s.line(s.state.u_s, m)[yi]);
    local[1 * nbins + jx] += w * std::norm(s.line(s.state.v_s, m)[yi]);
    local[2 * nbins + jx] += w * std::norm(s.line(s.state.w_s, m)[yi]);
  }
  s.world.allreduce_sum(local, global, 3 * nbins);
  spectrum_data out;
  out.euu.assign(global, global + nbins);
  out.evv.assign(global + nbins, global + 2 * nbins);
  out.eww.assign(global + 2 * nbins, global + 3 * nbins);
  return out;
}

spectrum_data channel_dns::spanwise_spectra(int y_index) {
  auto& s = *impl_;
  s.ensure_resumed();
  const auto& mt = s.modes;
  PCF_REQUIRE(y_index >= 0 && y_index < static_cast<int>(mt.n),
              "y index out of range");
  s.nonlinear.compute_velocities();
  const std::size_t nbins = s.cfg.nz / 2 + 1;
  workspace_lane::scope scratch(s.ws.shared());
  double* local = s.ws.shared().alloc<double>(3 * nbins);
  double* global = s.ws.shared().alloc<double>(3 * nbins);
  std::fill_n(local, 3 * nbins, 0.0);
  for (std::size_t m = 0; m < mt.nmodes; ++m) {
    if (mt.skip[m]) continue;
    const std::size_t jx = s.d.xs.offset + m / s.d.zs.count;
    const std::size_t jz = s.d.zs.offset + m % s.d.zs.count;
    const std::size_t mz = jz < s.cfg.nz / 2 ? jz : s.cfg.nz - jz;
    const double w = jx == 0 ? 1.0 : 2.0;
    const auto yi = static_cast<std::size_t>(y_index);
    local[0 * nbins + mz] += w * std::norm(s.line(s.state.u_s, m)[yi]);
    local[1 * nbins + mz] += w * std::norm(s.line(s.state.v_s, m)[yi]);
    local[2 * nbins + mz] += w * std::norm(s.line(s.state.w_s, m)[yi]);
  }
  s.world.allreduce_sum(local, global, 3 * nbins);
  spectrum_data out;
  out.euu.assign(global, global + nbins);
  out.evv.assign(global + nbins, global + 2 * nbins);
  out.eww.assign(global + 2 * nbins, global + 3 * nbins);
  return out;
}

void channel_dns::physical_vorticity_z(std::vector<double>& wz) {
  auto& s = *impl_;
  s.ensure_resumed();
  const auto& mt = s.modes;
  const std::size_t n = mt.n;
  s.nonlinear.compute_velocities();
  // omega_z hat = i kx v hat - d(u hat)/dy at the collocation points; u at
  // points must be interpolated to spline coefficients first.
  workspace_lane::scope scratch(s.ws.shared());
  cplx* cu = s.ws.shared().alloc<cplx>(n);
  cplx* du = s.ws.shared().alloc<cplx>(n);
  for (std::size_t m = 0; m < mt.nmodes; ++m) {
    cplx* out = s.line(s.state.q1, m);
    std::copy_n(s.line(s.state.u_s, m), n, cu);
    s.ops.to_coefficients(cu);
    s.ops.deriv1_points(cu, du);
    const cplx ikx{0.0, mt.kx[m]};
    const cplx* vs = s.line(s.state.v_s, m);
    for (std::size_t i = 0; i < n; ++i) out[i] = ikx * vs[i] - du[i];
  }
  s.pf.to_physical(s.state.q1.data(), s.state.f1.data());
  wz.assign(s.state.f1.begin(), s.state.f1.end());
}

std::size_t channel_dns::num_scalars() const {
  return impl_->cfg.scenario.scalars.size();
}

std::vector<double> channel_dns::scalar_profile(std::size_t sc) {
  auto& s = *impl_;
  s.ensure_resumed();
  PCF_REQUIRE(sc < s.state.scalars.size(), "scalar index out of range");
  const std::size_t n = s.modes.n;
  workspace_lane::scope scratch(s.ws.shared());
  double* local = s.ws.shared().alloc<double>(n);
  std::fill_n(local, n, 0.0);
  if (s.modes.has_mean)
    s.ops.to_points(s.state.scalars[sc].c_T.data(), local);
  std::vector<double> global(n, 0.0);
  s.world.allreduce_sum(local, global.data(), n);
  return global;
}

void channel_dns::set_scalar_profile(std::size_t sc,
                                     const std::vector<double>& values) {
  auto& s = *impl_;
  PCF_REQUIRE(sc < s.state.scalars.size(), "scalar index out of range");
  PCF_REQUIRE(values.size() == s.modes.n, "profile size mismatch");
  if (!s.modes.has_mean) return;
  auto& th = s.state.scalars[sc].c_T;
  std::copy(values.begin(), values.end(), th.begin());
  s.ops.to_coefficients(th.data());
}

double channel_dns::scalar_wall_flux(std::size_t sc) {
  auto& s = *impl_;
  PCF_REQUIRE(sc < s.state.scalars.size(), "scalar index out of range");
  const double kappa =
      1.0 / (s.cfg.re_tau * s.cfg.scenario.scalars[sc].prandtl);
  double local = 0.0;
  if (s.modes.has_mean)
    local = kappa * s.ops.dspline_lower(s.state.scalars[sc].c_T.data());
  double global = 0.0;
  s.world.allreduce_sum(&local, &global, 1);
  return global;
}

std::vector<cplx> channel_dns::mode_scalar(std::size_t sc, std::size_t jx,
                                           std::size_t jz) {
  auto& s = *impl_;
  PCF_REQUIRE(sc < s.state.scalars.size(), "scalar index out of range");
  if (jx < s.d.xs.offset || jx >= s.d.xs.offset + s.d.xs.count ||
      jz < s.d.zs.offset || jz >= s.d.zs.offset + s.d.zs.count)
    return {};
  const std::size_t m =
      (jx - s.d.xs.offset) * s.d.zs.count + (jz - s.d.zs.offset);
  auto& th = s.state.scalars[sc].c_th;
  return std::vector<cplx>(s.line(th, m), s.line(th, m) + s.modes.n);
}

double channel_dns::current_forcing() {
  auto& s = *impl_;
  if (!s.cfg.scenario.constant_flow_rate()) return s.cfg.forcing;
  double local = s.modes.has_mean ? s.mean_flow.last_forcing() : 0.0;
  double global = 0.0;
  s.world.allreduce_sum(&local, &global, 1);
  return global;
}

double channel_dns::flow_rate_target() {
  auto& s = *impl_;
  if (!s.cfg.scenario.constant_flow_rate()) return 0.0;
  double local = s.modes.has_mean ? s.mean_flow.flow_target() : 0.0;
  double global = 0.0;
  s.world.allreduce_sum(&local, &global, 1);
  return global;
}

}  // namespace pcf::core
