#include "core/operators.hpp"

namespace pcf::core {

wall_normal_operators::wall_normal_operators(int ny, int degree,
                                             double stretch)
    : basis_(bspline::basis::channel(ny - degree, stretch, degree)),
      a0_(basis_.collocation_matrix(0)),
      a1_(basis_.collocation_matrix(1)),
      a2_(basis_.collocation_matrix(2)),
      a0_lu_(a0_) {
  PCF_REQUIRE(ny > 3 * degree, "need ny > 3*degree wall-normal points");
  a0_lu_.factorize();

  // Wall-derivative weight rows: N_j'(-1) is nonzero only for the first
  // degree+1 basis functions (clamped knots), N_j'(+1) for the last ones.
  const int p = basis_.degree();
  [[maybe_unused]] const int n = basis_.size();
  std::vector<double> ders(2 * static_cast<std::size_t>(p + 1));
  dw_lo_.assign(static_cast<std::size_t>(p + 1), 0.0);
  dw_hi_.assign(static_cast<std::size_t>(p + 1), 0.0);
  int first = basis_.eval_derivs(basis_.domain_min(), 1, ders.data());
  (void)first;
  PCF_ASSERT(first == 0);
  for (int c = 0; c <= p; ++c)
    dw_lo_[static_cast<std::size_t>(c)] = ders[static_cast<std::size_t>(p + 1 + c)];
  first = basis_.eval_derivs(basis_.domain_max(), 1, ders.data());
  PCF_ASSERT(first == n - p - 1);
  for (int c = 0; c <= p; ++c)
    dw_hi_[static_cast<std::size_t>(c)] = ders[static_cast<std::size_t>(p + 1 + c)];
}

double wall_normal_operators::dspline_lower(const double* coef) const {
  double acc = 0.0;
  for (std::size_t c = 0; c < dw_lo_.size(); ++c) acc += dw_lo_[c] * coef[c];
  return acc;
}
double wall_normal_operators::dspline_upper(const double* coef) const {
  const int n = basis_.size();
  const int p = basis_.degree();
  double acc = 0.0;
  for (std::size_t c = 0; c < dw_hi_.size(); ++c)
    acc += dw_hi_[c] * coef[static_cast<std::size_t>(n - p - 1) + c];
  return acc;
}
cplx wall_normal_operators::dspline_lower(const cplx* coef) const {
  cplx acc{0.0, 0.0};
  for (std::size_t c = 0; c < dw_lo_.size(); ++c) acc += dw_lo_[c] * coef[c];
  return acc;
}
cplx wall_normal_operators::dspline_upper(const cplx* coef) const {
  const int n = basis_.size();
  const int p = basis_.degree();
  cplx acc{0.0, 0.0};
  for (std::size_t c = 0; c < dw_hi_.size(); ++c)
    acc += dw_hi_[c] * coef[static_cast<std::size_t>(n - p - 1) + c];
  return acc;
}

banded::compact_banded wall_normal_operators::helmholtz(double c,
                                                        double k2) const {
  banded::compact_banded M(basis_.size(), a0_.half_bandwidth());
  helmholtz_into(M, c, k2);
  return M;
}

void wall_normal_operators::helmholtz_into(banded::compact_banded& M,
                                           double c, double k2) const {
  const int n = basis_.size();
  const int h = a0_.half_bandwidth();
  PCF_REQUIRE(M.n() == n && M.half_bandwidth() == h,
              "scratch matrix shape mismatch");
  M.clear();
  for (int i = 1; i < n - 1; ++i) {
    const int s = M.row_start(i);
    for (int j = s; j <= s + 2 * h; ++j) {
      double v = 0.0;
      if (a0_.in_profile(i, j)) v += (1.0 + c * k2) * a0_.at(i, j);
      if (a2_.in_profile(i, j)) v -= c * a2_.at(i, j);
      if (v != 0.0) M.at(i, j) = v;
    }
  }
  // Dirichlet rows: at clamped ends the spline value is the end coefficient.
  M.at(0, 0) = 1.0;
  M.at(n - 1, n - 1) = 1.0;
}

banded::compact_banded wall_normal_operators::poisson(double k2) const {
  banded::compact_banded M(basis_.size(), a0_.half_bandwidth());
  poisson_into(M, k2);
  return M;
}

void wall_normal_operators::poisson_into(banded::compact_banded& M,
                                         double k2) const {
  const int n = basis_.size();
  const int h = a0_.half_bandwidth();
  PCF_REQUIRE(M.n() == n && M.half_bandwidth() == h,
              "scratch matrix shape mismatch");
  M.clear();
  for (int i = 1; i < n - 1; ++i) {
    const int s = M.row_start(i);
    for (int j = s; j <= s + 2 * h; ++j) {
      double v = 0.0;
      if (a2_.in_profile(i, j)) v += a2_.at(i, j);
      if (a0_.in_profile(i, j)) v -= k2 * a0_.at(i, j);
      if (v != 0.0) M.at(i, j) = v;
    }
  }
  M.at(0, 0) = 1.0;
  M.at(n - 1, n - 1) = 1.0;
}

void wall_normal_operators::apply_rhs_operator(double c, double k2,
                                               const cplx* x, cplx* y) const {
  std::vector<cplx> t(static_cast<std::size_t>(basis_.size()));
  apply_rhs_operator(c, k2, x, y, t.data());
}

void wall_normal_operators::apply_rhs_operator(double c, double k2,
                                               const cplx* x, cplx* y,
                                               cplx* scratch) const {
  const int n = basis_.size();
  a0_.apply(x, y);
  a2_.apply(x, scratch);
  const double c0 = 1.0 + c * (-k2);
  for (int i = 0; i < n; ++i)
    y[static_cast<std::size_t>(i)] = c0 * y[static_cast<std::size_t>(i)] +
                                     c * scratch[static_cast<std::size_t>(i)];
}

}  // namespace pcf::core
