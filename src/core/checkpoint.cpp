// channel_dns checkpointing: per-rank, gathered-global and parallel
// single-file formats (v2 sectioned layout with per-array CRC-32; v1
// accepted on load). The byte layout is frozen — tests hash checkpoint
// files to pin bit-identity of the time advance across refactors.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>

#include "core/simulation.hpp"
#include "core/simulation_impl.hpp"
#include "io/atomic_file.hpp"
#include "util/crc.hpp"

namespace pcf::core {

namespace {

// Checkpoint format magics. v1 ("PCFDNS01") wrote raw arrays with no
// integrity metadata; it is still accepted on load. v2 ("PCFDNS02") writes
// through the atomic temp+rename writer and wraps every array in a named
// section with a CRC-32, so corruption is detected per array with a
// precise error instead of silently seeding a bogus restart. The +1/+2
// offsets distinguish the global and parallel single-file layouts, as in
// v1.
constexpr std::uint64_t kCheckpointMagicV1 = 0x50434644'4e533031ull;
constexpr std::uint64_t kCheckpointMagic = 0x50434644'4e533032ull;

struct section_header {
  char name[8];           // zero-padded section name
  std::uint64_t bytes;    // payload size
  std::uint32_t crc;      // CRC-32 of the payload
  std::uint32_t reserved; // zero
};
static_assert(sizeof(section_header) == 24, "section header must be packed");

section_header make_section_header(const char* name, std::uint64_t bytes,
                                   std::uint32_t crc) {
  section_header h{};
  std::snprintf(h.name, sizeof(h.name), "%s", name);
  h.bytes = bytes;
  h.crc = crc;
  return h;
}

std::string section_name(const section_header& h) {
  return std::string(h.name, strnlen(h.name, sizeof(h.name)));
}

void write_section(io::atomic_file_writer& os, const char* name,
                   const void* data, std::size_t bytes) {
  const section_header h =
      make_section_header(name, bytes, crc32(data, bytes));
  os.write(&h, sizeof(h));
  os.write(data, bytes);
}

/// Read and verify one v2 section into `data`; every failure mode names
/// the section so a restart script can tell *which* array is damaged.
void read_section(std::istream& is, const char* name, void* data,
                  std::size_t bytes) {
  section_header h{};
  is.read(reinterpret_cast<char*>(&h), sizeof(h));
  PCF_REQUIRE(!is.fail() && is.gcount() == sizeof(h),
              std::string("checkpoint section '") + name +
                  "' header truncated");
  PCF_REQUIRE(section_name(h) == name,
              "checkpoint section '" + section_name(h) +
                  "' unexpected (expected '" + name + "')");
  PCF_REQUIRE(h.bytes == bytes, std::string("checkpoint section '") + name +
                                    "' has wrong size");
  is.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  PCF_REQUIRE(!is.fail() &&
                  is.gcount() == static_cast<std::streamsize>(bytes),
              std::string("checkpoint section '") + name + "' truncated");
  PCF_REQUIRE(crc32(data, bytes) == h.crc,
              std::string("checkpoint section '") + name + "' CRC mismatch");
}

/// A well-formed checkpoint ends exactly at its last section: trailing
/// bytes mean a concatenated/overlong file and are rejected.
void require_eof(std::istream& is) {
  PCF_REQUIRE(is.peek() == std::char_traits<char>::eof(),
              "trailing garbage after checkpoint payload");
}

/// Scenario sections ride after the frozen default layout: "sc<i>" /
/// "scm<i>" per passive scalar (fluctuation lines + mean profile) and a
/// trailing "frc" pair {captured target, last forcing} under constant
/// flow rate. A default-scenario run writes none of them, so its files
/// stay byte-identical to the pre-scenario format.
std::string sc_name(const char* stem, std::size_t i) {
  return std::string(stem) + std::to_string(i);
}

}  // namespace

void channel_dns::save_checkpoint(const std::string& path) const {
  auto& s = *impl_;
  auto& st = s.state;
  io::atomic_file_writer os(path);
  os.write(&kCheckpointMagic, sizeof(kCheckpointMagic));
  const std::uint64_t dims[5] = {s.cfg.nx, static_cast<std::uint64_t>(s.cfg.ny),
                                 s.cfg.nz, static_cast<std::uint64_t>(s.d.pa),
                                 static_cast<std::uint64_t>(s.d.pb)};
  os.write(dims, sizeof(dims));
  os.write(&s.time, sizeof(s.time));
  os.write(&s.steps, sizeof(s.steps));
  const std::size_t nsc = st.scalars.size();
  const bool fr = s.cfg.scenario.constant_flow_rate();
  const std::uint32_t meta[2] = {
      static_cast<std::uint32_t>(5 + 2 * nsc + (fr ? 1 : 0)), 0};
  os.write(meta, sizeof(meta));
  write_section(os, "c_v", st.c_v.data(), st.c_v.size() * sizeof(cplx));
  write_section(os, "c_om", st.c_om.data(), st.c_om.size() * sizeof(cplx));
  write_section(os, "c_phi", st.c_phi.data(), st.c_phi.size() * sizeof(cplx));
  write_section(os, "c_U", st.c_U.data(), st.c_U.size() * sizeof(double));
  write_section(os, "c_W", st.c_W.data(), st.c_W.size() * sizeof(double));
  for (std::size_t i = 0; i < nsc; ++i) {
    const auto& sc = st.scalars[i];
    write_section(os, sc_name("sc", i).c_str(), sc.c_th.data(),
                  sc.c_th.size() * sizeof(cplx));
    write_section(os, sc_name("scm", i).c_str(), sc.c_T.data(),
                  sc.c_T.size() * sizeof(double));
  }
  if (fr) {
    const double frc[2] = {s.mean_flow.flow_target(),
                           s.mean_flow.last_forcing()};
    write_section(os, "frc", frc, sizeof(frc));
  }
  os.commit();
}

void channel_dns::load_checkpoint(const std::string& path) {
  auto& s = *impl_;
  s.ensure_resumed();
  auto& st = s.state;
  std::ifstream is(path, std::ios::binary);
  PCF_REQUIRE(is.good(), "cannot open checkpoint file for reading: " + path);
  auto get = [&](void* p, std::size_t bytes) {
    is.read(static_cast<char*>(p), static_cast<std::streamsize>(bytes));
  };
  std::uint64_t magic = 0;
  get(&magic, sizeof(magic));
  PCF_REQUIRE(magic == kCheckpointMagic || magic == kCheckpointMagicV1,
              "not a checkpoint file");
  std::uint64_t dims[5];
  get(dims, sizeof(dims));
  PCF_REQUIRE(!is.fail(), "checkpoint header truncated");
  PCF_REQUIRE(dims[0] == s.cfg.nx &&
                  dims[1] == static_cast<std::uint64_t>(s.cfg.ny) &&
                  dims[2] == s.cfg.nz &&
                  dims[3] == static_cast<std::uint64_t>(s.d.pa) &&
                  dims[4] == static_cast<std::uint64_t>(s.d.pb),
              "checkpoint grid/decomposition mismatch");
  get(&s.time, sizeof(s.time));
  get(&s.steps, sizeof(s.steps));
  if (magic == kCheckpointMagicV1) {
    get(st.c_v.data(), st.c_v.size() * sizeof(cplx));
    get(st.c_om.data(), st.c_om.size() * sizeof(cplx));
    get(st.c_phi.data(), st.c_phi.size() * sizeof(cplx));
    get(st.c_U.data(), st.c_U.size() * sizeof(double));
    get(st.c_W.data(), st.c_W.size() * sizeof(double));
    PCF_REQUIRE(is.good(), "checkpoint read failed");
  } else {
    const std::size_t nsc = st.scalars.size();
    const bool fr = s.cfg.scenario.constant_flow_rate();
    std::uint32_t meta[2] = {0, 0};
    get(meta, sizeof(meta));
    PCF_REQUIRE(!is.fail() && meta[0] == 5 + 2 * nsc + (fr ? 1u : 0u),
                "checkpoint section count mismatch");
    read_section(is, "c_v", st.c_v.data(), st.c_v.size() * sizeof(cplx));
    read_section(is, "c_om", st.c_om.data(), st.c_om.size() * sizeof(cplx));
    read_section(is, "c_phi", st.c_phi.data(),
                 st.c_phi.size() * sizeof(cplx));
    read_section(is, "c_U", st.c_U.data(), st.c_U.size() * sizeof(double));
    read_section(is, "c_W", st.c_W.data(), st.c_W.size() * sizeof(double));
    for (std::size_t i = 0; i < nsc; ++i) {
      auto& sc = st.scalars[i];
      read_section(is, sc_name("sc", i).c_str(), sc.c_th.data(),
                   sc.c_th.size() * sizeof(cplx));
      read_section(is, sc_name("scm", i).c_str(), sc.c_T.data(),
                   sc.c_T.size() * sizeof(double));
    }
    if (fr) {
      double frc[2] = {0.0, 0.0};
      read_section(is, "frc", frc, sizeof(frc));
      s.mean_flow.restore_forcing(frc[0], frc[1]);
    }
  }
  require_eof(is);
  st.hv_prev.fill(cplx{0, 0});
  st.hg_prev.fill(cplx{0, 0});
  std::fill(st.hU_prev.begin(), st.hU_prev.end(), 0.0);
  std::fill(st.hW_prev.begin(), st.hW_prev.end(), 0.0);
  for (auto& sc : st.scalars) {
    sc.hth_prev.fill(cplx{0, 0});
    std::fill(sc.hT_prev.begin(), sc.hT_prev.end(), 0.0);
  }
  // The restored run may step with a dt the caller changes before the first
  // step (the runner's reduced-dt retry does); drop the factored bands so
  // they are rebuilt against the dt actually in effect.
  s.invalidate_solvers();
}

void channel_dns::save_checkpoint_global(const std::string& path) {
  auto& s = *impl_;
  auto& st = s.state;
  const std::size_t n = s.modes.n;
  const std::size_t modes_g = s.cfg.nx / 2 * s.cfg.nz;
  const std::size_t per = modes_g * n;
  const std::size_t nsc = st.scalars.size();
  const bool fr = s.cfg.scenario.constant_flow_rate();
  std::vector<cplx> local((3 + nsc) * per, cplx{0, 0}),
      global((3 + nsc) * per);
  for (std::size_t m = 0; m < s.modes.nmodes; ++m) {
    const std::size_t jx = s.d.xs.offset + m / s.d.zs.count;
    const std::size_t jz = s.d.zs.offset + m % s.d.zs.count;
    const std::size_t g = (jx * s.cfg.nz + jz) * n;
    std::copy_n(s.line(st.c_v, m), n, local.data() + g);
    std::copy_n(s.line(st.c_om, m), n, local.data() + per + g);
    std::copy_n(s.line(st.c_phi, m), n, local.data() + 2 * per + g);
    for (std::size_t i = 0; i < nsc; ++i)
      std::copy_n(s.line(st.scalars[i].c_th, m), n,
                  local.data() + (3 + i) * per + g);
  }
  // Each slot has exactly one owner, so gather by bitwise OR over the
  // raw words: it reproduces the owner's bits exactly. A floating-point
  // sum would turn an owned -0.0 into +0.0 whenever a non-owner's +0.0
  // joins in, making the gathered bytes depend on the decomposition.
  s.world.allreduce_bor(reinterpret_cast<const std::uint64_t*>(local.data()),
                        reinterpret_cast<std::uint64_t*>(global.data()),
                        2 * local.size());
  // The mean block gathers U, W, every scalar's mean profile and (under
  // constant flow rate) the {target, last forcing} pair, all owned by the
  // mean rank.
  const std::size_t mean_elems = (2 + nsc) * n + (fr ? 2 : 0);
  std::vector<double> mean_l(mean_elems, 0.0), mean_g(mean_elems);
  if (s.modes.has_mean) {
    std::copy(st.c_U.begin(), st.c_U.end(), mean_l.begin());
    std::copy(st.c_W.begin(), st.c_W.end(),
              mean_l.begin() + static_cast<std::ptrdiff_t>(n));
    for (std::size_t i = 0; i < nsc; ++i)
      std::copy(st.scalars[i].c_T.begin(), st.scalars[i].c_T.end(),
                mean_l.begin() + static_cast<std::ptrdiff_t>((2 + i) * n));
    if (fr) {
      mean_l[(2 + nsc) * n] = s.mean_flow.flow_target();
      mean_l[(2 + nsc) * n + 1] = s.mean_flow.last_forcing();
    }
  }
  s.world.allreduce_bor(reinterpret_cast<const std::uint64_t*>(mean_l.data()),
                        reinterpret_cast<std::uint64_t*>(mean_g.data()),
                        mean_l.size());
  if (s.world.rank() == 0) {
    io::atomic_file_writer os(path);
    const std::uint64_t magic = kCheckpointMagic + 1;
    const std::uint64_t dims[3] = {
        s.cfg.nx, static_cast<std::uint64_t>(s.cfg.ny), s.cfg.nz};
    os.write(&magic, sizeof(magic));
    os.write(dims, sizeof(dims));
    os.write(&s.time, sizeof(s.time));
    os.write(&s.steps, sizeof(s.steps));
    const std::uint32_t meta[2] = {
        static_cast<std::uint32_t>(4 + 2 * nsc + (fr ? 1 : 0)), 0};
    os.write(meta, sizeof(meta));
    write_section(os, "c_v", global.data(), per * sizeof(cplx));
    write_section(os, "c_om", global.data() + per, per * sizeof(cplx));
    write_section(os, "c_phi", global.data() + 2 * per, per * sizeof(cplx));
    write_section(os, "mean", mean_g.data(), 2 * n * sizeof(double));
    for (std::size_t i = 0; i < nsc; ++i) {
      write_section(os, sc_name("sc", i).c_str(),
                    global.data() + (3 + i) * per, per * sizeof(cplx));
      write_section(os, sc_name("scm", i).c_str(),
                    mean_g.data() + (2 + i) * n, n * sizeof(double));
    }
    if (fr)
      write_section(os, "frc", mean_g.data() + (2 + nsc) * n,
                    2 * sizeof(double));
    os.commit();
  }
  s.world.barrier();
}

void channel_dns::load_checkpoint_global(const std::string& path) {
  auto& s = *impl_;
  s.ensure_resumed();
  auto& st = s.state;
  const std::size_t n = s.modes.n;
  const std::size_t modes_g = s.cfg.nx / 2 * s.cfg.nz;
  const std::size_t per = modes_g * n;
  const std::size_t nsc = st.scalars.size();
  const bool fr = s.cfg.scenario.constant_flow_rate();
  std::vector<cplx> global((3 + nsc) * per);
  std::vector<double> mean_g((2 + nsc) * n + (fr ? 2 : 0));
  // Rank 0 reads and verifies; success is agreed on *before* any payload
  // broadcast so a corrupt file makes every rank throw instead of leaving
  // ranks 1..P-1 blocked in a collective.
  int ok = 1;
  std::string err;
  if (s.world.rank() == 0) {
    try {
      std::ifstream is(path, std::ios::binary);
      PCF_REQUIRE(is.good(),
                  "cannot open global checkpoint for reading: " + path);
      std::uint64_t magic = 0, dims[3];
      is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
      PCF_REQUIRE(magic == kCheckpointMagic + 1 ||
                      magic == kCheckpointMagicV1 + 1,
                  "not a global checkpoint");
      is.read(reinterpret_cast<char*>(dims), sizeof(dims));
      PCF_REQUIRE(!is.fail(), "global checkpoint header truncated");
      PCF_REQUIRE(dims[0] == s.cfg.nx &&
                      dims[1] == static_cast<std::uint64_t>(s.cfg.ny) &&
                      dims[2] == s.cfg.nz,
                  "global checkpoint grid mismatch");
      is.read(reinterpret_cast<char*>(&s.time), sizeof(s.time));
      is.read(reinterpret_cast<char*>(&s.steps), sizeof(s.steps));
      if (magic == kCheckpointMagicV1 + 1) {
        PCF_REQUIRE(nsc == 0 && !fr,
                    "v1 global checkpoint has no scenario sections");
        is.read(reinterpret_cast<char*>(global.data()),
                static_cast<std::streamsize>(global.size() * sizeof(cplx)));
        is.read(reinterpret_cast<char*>(mean_g.data()),
                static_cast<std::streamsize>(mean_g.size() * sizeof(double)));
        PCF_REQUIRE(is.good(), "global checkpoint read failed");
      } else {
        std::uint32_t meta[2] = {0, 0};
        is.read(reinterpret_cast<char*>(meta), sizeof(meta));
        PCF_REQUIRE(!is.fail() && meta[0] == 4 + 2 * nsc + (fr ? 1u : 0u),
                    "global checkpoint section count mismatch");
        read_section(is, "c_v", global.data(), per * sizeof(cplx));
        read_section(is, "c_om", global.data() + per, per * sizeof(cplx));
        read_section(is, "c_phi", global.data() + 2 * per,
                     per * sizeof(cplx));
        read_section(is, "mean", mean_g.data(), 2 * n * sizeof(double));
        for (std::size_t i = 0; i < nsc; ++i) {
          read_section(is, sc_name("sc", i).c_str(),
                       global.data() + (3 + i) * per, per * sizeof(cplx));
          read_section(is, sc_name("scm", i).c_str(),
                       mean_g.data() + (2 + i) * n, n * sizeof(double));
        }
        if (fr)
          read_section(is, "frc", mean_g.data() + (2 + nsc) * n,
                       2 * sizeof(double));
      }
      require_eof(is);
    } catch (const std::exception& e) {
      ok = 0;
      err = e.what();
    }
  }
  s.world.bcast(&ok, 1, 0);
  if (!ok) {
    std::uint64_t len = err.size();
    s.world.bcast(&len, 1, 0);
    err.resize(len);
    if (len > 0) s.world.bcast(err.data(), len, 0);
    throw precondition_error("global checkpoint load failed: " + err);
  }
  s.world.bcast(&s.time, 1, 0);
  s.world.bcast(&s.steps, 1, 0);
  s.world.bcast(global.data(), global.size(), 0);
  s.world.bcast(mean_g.data(), mean_g.size(), 0);
  for (std::size_t m = 0; m < s.modes.nmodes; ++m) {
    const std::size_t jx = s.d.xs.offset + m / s.d.zs.count;
    const std::size_t jz = s.d.zs.offset + m % s.d.zs.count;
    const std::size_t g = (jx * s.cfg.nz + jz) * n;
    std::copy_n(global.data() + g, n, s.line(st.c_v, m));
    std::copy_n(global.data() + per + g, n, s.line(st.c_om, m));
    std::copy_n(global.data() + 2 * per + g, n, s.line(st.c_phi, m));
    for (std::size_t i = 0; i < nsc; ++i)
      std::copy_n(global.data() + (3 + i) * per + g, n,
                  s.line(st.scalars[i].c_th, m));
  }
  if (s.modes.has_mean) {
    std::copy_n(mean_g.data(), n, st.c_U.begin());
    std::copy_n(mean_g.data() + n, n, st.c_W.begin());
    for (std::size_t i = 0; i < nsc; ++i)
      std::copy_n(mean_g.data() + (2 + i) * n, n,
                  st.scalars[i].c_T.begin());
  }
  if (fr)
    s.mean_flow.restore_forcing(mean_g[(2 + nsc) * n],
                                mean_g[(2 + nsc) * n + 1]);
  st.hv_prev.fill(cplx{0, 0});
  st.hg_prev.fill(cplx{0, 0});
  std::fill(st.hU_prev.begin(), st.hU_prev.end(), 0.0);
  std::fill(st.hW_prev.begin(), st.hW_prev.end(), 0.0);
  for (auto& sc : st.scalars) {
    sc.hth_prev.fill(cplx{0, 0});
    std::fill(sc.hT_prev.begin(), sc.hT_prev.end(), 0.0);
  }
  s.invalidate_solvers();
}

namespace {

// Parallel single-file v2 layout: fixed header, a section table (c_v,
// c_om, c_phi, one "sc<i>" per scalar, mean, one "scm<i>" per scalar,
// "frc" under constant flow rate — 4 entries for the default scenario),
// then the payloads at fixed offsets so every rank can write its modes in
// place, MPI-IO style. The distributed field payloads come first in table
// order; the rank-0-owned mean/scalar-mean/forcing blocks form the tail.
constexpr std::size_t kParallelV1Header =
    sizeof(std::uint64_t) * 4 + sizeof(double) + sizeof(long);
constexpr std::size_t kParallelV2Header =
    kParallelV1Header + 2 * sizeof(std::uint32_t);

std::size_t parallel_payload_base(std::size_t nsections) {
  return kParallelV2Header + nsections * sizeof(section_header);
}

}  // namespace

void channel_dns::save_checkpoint_parallel(const std::string& path) {
  auto& s = *impl_;
  auto& st = s.state;
  const std::size_t n = s.modes.n;
  const std::size_t modes_g = s.cfg.nx / 2 * s.cfg.nz;
  const std::size_t per = modes_g * n;  // elements per field section
  const std::size_t line_bytes = n * sizeof(cplx);
  const std::size_t nsc = st.scalars.size();
  const bool fr = s.cfg.scenario.constant_flow_rate();
  const std::size_t nfields = 3 + nsc;
  const std::size_t nsections = nfields + 1 + nsc + (fr ? 1 : 0);
  const std::size_t payload = parallel_payload_base(nsections);
  const std::size_t tail = payload + nfields * per * sizeof(cplx);
  const std::size_t mean_elems = (2 + nsc) * n + (fr ? 2 : 0);
  std::vector<double> mean_l(mean_elems, 0.0), mean_g(mean_elems);
  if (s.modes.has_mean) {
    std::copy(st.c_U.begin(), st.c_U.end(), mean_l.begin());
    std::copy(st.c_W.begin(), st.c_W.end(),
              mean_l.begin() + static_cast<std::ptrdiff_t>(n));
    for (std::size_t i = 0; i < nsc; ++i)
      std::copy(st.scalars[i].c_T.begin(), st.scalars[i].c_T.end(),
                mean_l.begin() + static_cast<std::ptrdiff_t>((2 + i) * n));
    if (fr) {
      mean_l[(2 + nsc) * n] = s.mean_flow.flow_target();
      mean_l[(2 + nsc) * n + 1] = s.mean_flow.last_forcing();
    }
  }
  // Bitwise-OR gather, not a sum: the mean profile is owned by a single
  // rank and a sum would flip any -0.0 coefficient to +0.0 (see
  // save_checkpoint_global).
  s.world.allreduce_bor(reinterpret_cast<const std::uint64_t*>(mean_l.data()),
                        reinterpret_cast<std::uint64_t*>(mean_g.data()),
                        mean_l.size());
  // Section CRCs must come from the in-memory state (reading the file back
  // would checksum whatever a fault left there). Each rank checksums its
  // own mode lines; rank 0 stitches them together in global offset order
  // with crc32_combine. The u32 values ride in doubles through the
  // existing sum reduction — each line has exactly one owner.
  std::vector<const aligned_buffer<cplx>*> fields = {&st.c_v, &st.c_om,
                                                     &st.c_phi};
  for (std::size_t i = 0; i < nsc; ++i)
    fields.push_back(&st.scalars[i].c_th);
  std::vector<double> crc_l(nfields * modes_g, 0.0),
      crc_g(nfields * modes_g);
  for (std::size_t m = 0; m < s.modes.nmodes; ++m) {
    const std::size_t jx = s.d.xs.offset + m / s.d.zs.count;
    const std::size_t jz = s.d.zs.offset + m % s.d.zs.count;
    const std::size_t line = jx * s.cfg.nz + jz;
    for (std::size_t f = 0; f < nfields; ++f)
      crc_l[f * modes_g + line] = static_cast<double>(
          crc32(fields[f]->data() + m * n, line_bytes));
  }
  s.world.allreduce_sum(crc_l.data(), crc_g.data(), crc_l.size());

  std::optional<io::atomic_file_writer> owner;
  if (s.world.rank() == 0) {
    owner.emplace(path);
    const std::uint64_t magic = kCheckpointMagic + 2;
    const std::uint64_t dims[3] = {
        s.cfg.nx, static_cast<std::uint64_t>(s.cfg.ny), s.cfg.nz};
    owner->write(&magic, sizeof(magic));
    owner->write(dims, sizeof(dims));
    owner->write(&s.time, sizeof(s.time));
    owner->write(&s.steps, sizeof(s.steps));
    const std::uint32_t meta[2] = {static_cast<std::uint32_t>(nsections), 0};
    owner->write(meta, sizeof(meta));
    std::vector<std::string> names = {"c_v", "c_om", "c_phi"};
    for (std::size_t i = 0; i < nsc; ++i) names.push_back(sc_name("sc", i));
    for (std::size_t f = 0; f < nfields; ++f) {
      std::uint32_t crc = 0;  // crc32 of the empty prefix
      for (std::size_t line = 0; line < modes_g; ++line)
        crc = crc32_combine(
            crc, static_cast<std::uint32_t>(crc_g[f * modes_g + line]),
            line_bytes);
      const section_header h =
          make_section_header(names[f].c_str(), per * sizeof(cplx), crc);
      owner->write(&h, sizeof(h));
    }
    const section_header hm = make_section_header(
        "mean", 2 * n * sizeof(double),
        crc32(mean_g.data(), 2 * n * sizeof(double)));
    owner->write(&hm, sizeof(hm));
    for (std::size_t i = 0; i < nsc; ++i) {
      const section_header hs = make_section_header(
          sc_name("scm", i).c_str(), n * sizeof(double),
          crc32(mean_g.data() + (2 + i) * n, n * sizeof(double)));
      owner->write(&hs, sizeof(hs));
    }
    if (fr) {
      const section_header hf = make_section_header(
          "frc", 2 * sizeof(double),
          crc32(mean_g.data() + (2 + nsc) * n, 2 * sizeof(double)));
      owner->write(&hf, sizeof(hf));
    }
    // The means live at the tail; writing them first also sizes the file.
    owner->write_at(tail, mean_g.data(), mean_g.size() * sizeof(double));
    owner->flush();
  }
  s.world.barrier();
  {
    std::optional<io::atomic_file_writer> joiner;
    io::atomic_file_writer& os =
        s.world.rank() == 0 ? *owner
                            : joiner.emplace(io::atomic_file_writer::join(path));
    for (std::size_t m = 0; m < s.modes.nmodes; ++m) {
      const std::size_t jx = s.d.xs.offset + m / s.d.zs.count;
      const std::size_t jz = s.d.zs.offset + m % s.d.zs.count;
      const std::size_t g = (jx * s.cfg.nz + jz) * n;
      for (std::size_t f = 0; f < nfields; ++f)
        os.write_at(payload + (f * per + g) * sizeof(cplx),
                    fields[f]->data() + m * n, line_bytes);
    }
    if (joiner) joiner->close();
  }
  s.world.barrier();
  if (owner) owner->commit();
  s.world.barrier();
}

void channel_dns::load_checkpoint_parallel(const std::string& path) {
  auto& s = *impl_;
  s.ensure_resumed();
  auto& st = s.state;
  const std::size_t n = s.modes.n;
  const std::size_t modes_g = s.cfg.nx / 2 * s.cfg.nz;
  const std::size_t per = modes_g * n;
  std::ifstream is(path, std::ios::binary);
  PCF_REQUIRE(is.good(),
              "cannot open parallel checkpoint for reading: " + path);
  std::uint64_t magic = 0, dims[3];
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  PCF_REQUIRE(magic == kCheckpointMagic + 2 ||
                  magic == kCheckpointMagicV1 + 2,
              "not a parallel checkpoint");
  is.read(reinterpret_cast<char*>(dims), sizeof(dims));
  PCF_REQUIRE(!is.fail(), "parallel checkpoint header truncated");
  PCF_REQUIRE(dims[0] == s.cfg.nx &&
                  dims[1] == static_cast<std::uint64_t>(s.cfg.ny) &&
                  dims[2] == s.cfg.nz,
              "parallel checkpoint grid mismatch");
  is.read(reinterpret_cast<char*>(&s.time), sizeof(s.time));
  is.read(reinterpret_cast<char*>(&s.steps), sizeof(s.steps));
  const bool v1 = magic == kCheckpointMagicV1 + 2;
  const std::size_t nsc = st.scalars.size();
  const bool fr = s.cfg.scenario.constant_flow_rate();
  PCF_REQUIRE(!v1 || (nsc == 0 && !fr),
              "v1 parallel checkpoint has no scenario sections");
  const std::size_t nfields = 3 + nsc;
  const std::size_t nsections = nfields + 1 + nsc + (fr ? 1 : 0);
  const std::size_t payload =
      v1 ? kParallelV1Header : parallel_payload_base(nsections);
  const std::size_t mean_elems = (2 + nsc) * n + (fr ? 2 : 0);
  const std::size_t tail_bytes = mean_elems * sizeof(double);
  const auto expected_size = static_cast<std::streamoff>(
      payload + nfields * per * sizeof(cplx) + tail_bytes);
  // Every rank runs the identical verification on the shared file, so all
  // ranks reach the same accept/reject decision without extra collectives.
  is.seekg(0, std::ios::end);
  PCF_REQUIRE(is.tellg() == expected_size,
              is.tellg() < expected_size
                  ? "parallel checkpoint truncated"
                  : "trailing garbage after checkpoint payload");
  if (!v1) {
    std::uint32_t meta[2] = {0, 0};
    is.seekg(static_cast<std::streamoff>(kParallelV1Header));
    is.read(reinterpret_cast<char*>(meta), sizeof(meta));
    PCF_REQUIRE(!is.fail() && meta[0] == nsections,
                "parallel checkpoint section count mismatch");
    std::vector<section_header> table(nsections);
    is.read(reinterpret_cast<char*>(table.data()),
            static_cast<std::streamsize>(nsections * sizeof(section_header)));
    PCF_REQUIRE(!is.fail(), "parallel checkpoint section table truncated");
    // File layout order == table order: the distributed field payloads,
    // then the rank-0-owned mean / scalar-mean / forcing tail blocks.
    std::vector<std::string> names = {"c_v", "c_om", "c_phi"};
    std::vector<std::size_t> sizes(3, per * sizeof(cplx));
    for (std::size_t i = 0; i < nsc; ++i) {
      names.push_back(sc_name("sc", i));
      sizes.push_back(per * sizeof(cplx));
    }
    names.push_back("mean");
    sizes.push_back(2 * n * sizeof(double));
    for (std::size_t i = 0; i < nsc; ++i) {
      names.push_back(sc_name("scm", i));
      sizes.push_back(n * sizeof(double));
    }
    if (fr) {
      names.push_back("frc");
      sizes.push_back(2 * sizeof(double));
    }
    std::vector<char> buf(1 << 20);
    for (std::size_t t = 0; t < nsections; ++t) {
      PCF_REQUIRE(section_name(table[t]) == names[t] &&
                      table[t].bytes == sizes[t],
                  "checkpoint section '" + section_name(table[t]) +
                      "' unexpected (expected '" + names[t] + "')");
      std::uint32_t crc = crc32_init();
      std::size_t left = sizes[t];
      while (left > 0) {
        const std::size_t chunk = std::min(left, buf.size());
        is.read(buf.data(), static_cast<std::streamsize>(chunk));
        PCF_REQUIRE(!is.fail(), "checkpoint section '" + names[t] +
                                    "' truncated");
        crc = crc32_update(crc, buf.data(), chunk);
        left -= chunk;
      }
      PCF_REQUIRE(crc32_final(crc) == table[t].crc,
                  "checkpoint section '" + names[t] + "' CRC mismatch");
    }
  }
  std::vector<aligned_buffer<cplx>*> fields = {&st.c_v, &st.c_om,
                                               &st.c_phi};
  for (std::size_t i = 0; i < nsc; ++i)
    fields.push_back(&st.scalars[i].c_th);
  for (std::size_t m = 0; m < s.modes.nmodes; ++m) {
    const std::size_t jx = s.d.xs.offset + m / s.d.zs.count;
    const std::size_t jz = s.d.zs.offset + m % s.d.zs.count;
    const std::size_t g = (jx * s.cfg.nz + jz) * n;
    for (std::size_t f = 0; f < nfields; ++f) {
      is.seekg(static_cast<std::streamoff>(payload +
                                           (f * per + g) * sizeof(cplx)));
      is.read(reinterpret_cast<char*>(fields[f]->data() + m * n),
              static_cast<std::streamsize>(n * sizeof(cplx)));
    }
  }
  std::vector<double> mean_g(mean_elems);
  is.seekg(
      static_cast<std::streamoff>(payload + nfields * per * sizeof(cplx)));
  is.read(reinterpret_cast<char*>(mean_g.data()),
          static_cast<std::streamsize>(tail_bytes));
  PCF_REQUIRE(is.good(), "parallel checkpoint read failed");
  if (s.modes.has_mean) {
    std::copy_n(mean_g.data(), n, st.c_U.begin());
    std::copy_n(mean_g.data() + n, n, st.c_W.begin());
    for (std::size_t i = 0; i < nsc; ++i)
      std::copy_n(mean_g.data() + (2 + i) * n, n,
                  st.scalars[i].c_T.begin());
  }
  if (fr)
    s.mean_flow.restore_forcing(mean_g[(2 + nsc) * n],
                                mean_g[(2 + nsc) * n + 1]);
  st.hv_prev.fill(cplx{0, 0});
  st.hg_prev.fill(cplx{0, 0});
  std::fill(st.hU_prev.begin(), st.hU_prev.end(), 0.0);
  std::fill(st.hW_prev.begin(), st.hW_prev.end(), 0.0);
  for (auto& sc : st.scalars) {
    sc.hth_prev.fill(cplx{0, 0});
    std::fill(sc.hT_prev.begin(), sc.hT_prev.end(), 0.0);
  }
  s.invalidate_solvers();
  s.world.barrier();
}

}  // namespace pcf::core
