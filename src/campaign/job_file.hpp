// File-based campaign job specs for the campaign_runner front-end.
//
// An INI-flavoured format: top-level `key = value` lines configure the
// campaign (workers, slicing, residency budget), each `[name]` section
// declares one job, and a job inherits every top-level *job* key set
// before it (so a sweep writes `steps = 200` once and each section only
// states what varies — re_tau, nx, dt, priority). `#` and `;` start
// comments; blank lines separate nothing. See examples/campaign.jobs.
//
// Parsing is strict: an unknown key, a malformed number or a duplicate
// job name names its line in the thrown error. A config this small has no
// business failing silently.
#pragma once

#include <string>
#include <vector>

#include "campaign/campaign.hpp"

namespace pcf::campaign {

struct job_file {
  campaign_config config;
  std::vector<job_spec> jobs;
};

/// Parse `text` (for tests and embedded specs); `origin` names the source
/// in error messages.
[[nodiscard]] job_file parse_job_text(const std::string& text,
                                      const std::string& origin = "<text>");

/// Parse the job file at `path`; throws std::runtime_error on a missing
/// file or any syntax error.
[[nodiscard]] job_file parse_job_file(const std::string& path);

}  // namespace pcf::campaign
