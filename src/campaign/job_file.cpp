#include "campaign/job_file.hpp"

#include <cstddef>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace pcf::campaign {

namespace {

[[noreturn]] void fail(const std::string& origin, int line,
                       const std::string& what) {
  throw std::runtime_error(origin + ":" + std::to_string(line) + ": " + what);
}

std::string trim(const std::string& s) {
  const char* ws = " \t\r";
  const std::size_t b = s.find_first_not_of(ws);
  if (b == std::string::npos) return "";
  const std::size_t e = s.find_last_not_of(ws);
  return s.substr(b, e - b + 1);
}

double parse_num(const std::string& origin, int line, const std::string& key,
                 const std::string& value) {
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(value, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (value.empty() || used != value.size())
    fail(origin, line, "key '" + key + "': malformed number '" + value + "'");
  return v;
}

long parse_int(const std::string& origin, int line, const std::string& key,
               const std::string& value) {
  // Parsed directly as an integer, NOT through parse_num: a double cannot
  // represent every long (anything above 2^53 loses bits), so a
  // stod-then-truncate round trip would silently corrupt large values
  // like seeds. std::stol also rejects "1e3" / "3.5" spellings, which are
  // numbers but not integers.
  std::size_t used = 0;
  long v = 0;
  try {
    v = std::stol(value, &used, 10);
  } catch (const std::out_of_range&) {
    fail(origin, line, "key '" + key + "': integer out of range '" + value +
                           "'");
  } catch (const std::exception&) {
    used = 0;
  }
  if (value.empty() || used != value.size())
    fail(origin, line, "key '" + key + "': expected an integer, got '" +
                           value + "'");
  return v;
}

bool parse_bool(const std::string& origin, int line, const std::string& key,
                const std::string& value) {
  if (value == "true" || value == "1" || value == "yes") return true;
  if (value == "false" || value == "0" || value == "no") return false;
  fail(origin, line, "key '" + key + "': expected a boolean, got '" + value +
                         "'");
}

/// Job keys apply both inside a section and at top level (where they set
/// the defaults every later section starts from). Returns false when the
/// key is not a job key.
bool apply_job_key(job_spec& j, const std::string& key,
                   const std::string& value, const std::string& origin,
                   int line) {
  auto num = [&] { return parse_num(origin, line, key, value); };
  auto integer = [&] { return parse_int(origin, line, key, value); };
  if (key == "nx") j.config.nx = static_cast<std::size_t>(integer());
  else if (key == "nz") j.config.nz = static_cast<std::size_t>(integer());
  else if (key == "ny") j.config.ny = static_cast<int>(integer());
  else if (key == "degree") j.config.degree = static_cast<int>(integer());
  else if (key == "stretch") j.config.stretch = num();
  else if (key == "lx") j.config.lx = num();
  else if (key == "lz") j.config.lz = num();
  else if (key == "re_tau") j.config.re_tau = num();
  else if (key == "dt") j.config.dt = num();
  else if (key == "forcing") j.config.forcing = num();
  else if (key == "max_batch") j.config.max_batch = static_cast<int>(integer());
  else if (key == "pipeline_depth")
    j.config.pipeline_depth = static_cast<int>(integer());
  else if (key == "fft_threads")
    j.config.fft_threads = static_cast<int>(integer());
  else if (key == "reorder_threads")
    j.config.reorder_threads = static_cast<int>(integer());
  else if (key == "advance_threads")
    j.config.advance_threads = static_cast<int>(integer());
  else if (key == "cache_solvers")
    j.config.cache_solvers = parse_bool(origin, line, key, value);
  else if (key == "autotune")
    j.config.autotune = parse_bool(origin, line, key, value);
  else if (key == "wall_u_lo") j.config.scenario.wall_u_lo = num();
  else if (key == "wall_u_hi") j.config.scenario.wall_u_hi = num();
  else if (key == "wall_w_lo") j.config.scenario.wall_w_lo = num();
  else if (key == "wall_w_hi") j.config.scenario.wall_w_hi = num();
  else if (key == "target_bulk") j.config.scenario.target_bulk = num();
  else if (key == "forcing_mode") {
    if (value == "pressure_gradient")
      j.config.scenario.forcing = core::forcing_mode::pressure_gradient;
    else if (value == "flow_rate")
      j.config.scenario.forcing = core::forcing_mode::flow_rate;
    else
      fail(origin, line,
           "key 'forcing_mode': expected 'pressure_gradient' or "
           "'flow_rate', got '" +
               value + "'");
  } else if (key == "scalar") {
    // Repeatable: each occurrence appends one passive scalar, given as
    // "<prandtl>" or "<prandtl> <wall_lo> <wall_hi>".
    std::istringstream ss(value);
    std::vector<std::string> tok;
    std::string w;
    while (ss >> w) tok.push_back(w);
    if (tok.size() != 1 && tok.size() != 3)
      fail(origin, line,
           "key 'scalar': expected '<prandtl> [<wall_lo> <wall_hi>]', "
           "got '" +
               value + "'");
    core::scalar_spec sp;
    sp.prandtl = parse_num(origin, line, "scalar.prandtl", tok[0]);
    if (tok.size() == 3) {
      sp.wall_lo = parse_num(origin, line, "scalar.wall_lo", tok[1]);
      sp.wall_hi = parse_num(origin, line, "scalar.wall_hi", tok[2]);
    }
    j.config.scenario.scalars.push_back(sp);
  }
  else if (key == "steps") j.steps = integer();
  else if (key == "priority") j.priority = static_cast<int>(integer());
  else if (key == "perturbation") j.perturbation = num();
  else if (key == "seed") j.seed = static_cast<std::uint64_t>(integer());
  else if (key == "cfl_target") j.cfl_target = num();
  else if (key == "dt_min") j.dt_min = num();
  else if (key == "dt_max") j.dt_max = num();
  else if (key == "stats_every") j.stats_every = static_cast<int>(integer());
  else return false;
  return true;
}

/// Campaign keys are only legal at top level. Returns false when the key
/// is not a campaign key.
bool apply_campaign_key(campaign_config& c, const std::string& key,
                        const std::string& value, const std::string& origin,
                        int line) {
  auto integer = [&] { return parse_int(origin, line, key, value); };
  if (key == "workers") c.workers = static_cast<int>(integer());
  else if (key == "slice_steps") c.slice_steps = static_cast<int>(integer());
  else if (key == "max_resident") c.max_resident = static_cast<int>(integer());
  else if (key == "memory_budget_mb")
    c.memory_budget_bytes =
        static_cast<std::uint64_t>(integer()) * 1024 * 1024;
  else if (key == "spill_dir") c.spill_dir = value;
  else if (key == "tuning_cache") c.tuning_cache = value;
  else if (key == "collect_series")
    c.collect_series = parse_bool(origin, line, key, value);
  else return false;
  return true;
}

}  // namespace

job_file parse_job_text(const std::string& text, const std::string& origin) {
  job_file out;
  job_spec defaults;  // top-level job keys accumulate here
  bool in_section = false;

  std::istringstream in(text);
  std::string raw;
  int line = 0;
  while (std::getline(in, raw)) {
    ++line;
    const std::size_t comment = raw.find_first_of("#;");
    std::string s = trim(comment == std::string::npos
                             ? raw
                             : raw.substr(0, comment));
    if (s.empty()) continue;

    if (s.front() == '[') {
      if (s.back() != ']')
        fail(origin, line, "unterminated section header '" + s + "'");
      const std::string name = trim(s.substr(1, s.size() - 2));
      if (name.empty()) fail(origin, line, "empty job name");
      for (const job_spec& j : out.jobs)
        if (j.name == name)
          fail(origin, line, "duplicate job name '" + name + "'");
      job_spec j = defaults;  // inherit the top-level job defaults
      j.name = name;
      out.jobs.push_back(std::move(j));
      in_section = true;
      continue;
    }

    const std::size_t eq = s.find('=');
    if (eq == std::string::npos)
      fail(origin, line, "expected 'key = value', got '" + s + "'");
    const std::string key = trim(s.substr(0, eq));
    const std::string value = trim(s.substr(eq + 1));
    if (key.empty()) fail(origin, line, "empty key");

    if (in_section) {
      if (!apply_job_key(out.jobs.back(), key, value, origin, line))
        fail(origin, line, "unknown job key '" + key + "'");
    } else {
      if (!apply_campaign_key(out.config, key, value, origin, line) &&
          !apply_job_key(defaults, key, value, origin, line))
        fail(origin, line, "unknown key '" + key + "'");
    }
  }

  for (const job_spec& j : out.jobs) {
    if (j.steps < 1)
      throw std::runtime_error(origin + ": job '" + j.name +
                               "' never sets steps >= 1");
    // Reject impossible configurations at parse time, naming the job, so
    // a bad campaign file fails before any simulation is constructed.
    try {
      j.config.validate();
    } catch (const std::exception& e) {
      throw std::runtime_error(origin + ": job '" + j.name + "': " +
                               e.what());
    }
  }
  return out;
}

job_file parse_job_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open())
    throw std::runtime_error("cannot open job file '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_job_text(buf.str(), path);
}

}  // namespace pcf::campaign
