// Multi-tenant campaign server: N independent channel simulations
// time-sliced over ONE shared worker pool under a bounded memory budget.
//
// A parameter sweep (Re_tau, grid, forcing, dt policy) is a set of small
// independent DNS runs, and running them back to back wastes exactly what
// this repo already knows how to share: the block pool recycles workspace
// between suspended tenants (PR 8), FFT plans are immutable and shareable
// (fft/plan_cache.hpp), the tuning memo publishes one measurement to every
// identical config (pencil/autotune.hpp), and v2 checkpoints restart
// bit-identically (PR 5). The campaign server composes those pieces:
//
//   * Each job is a TENANT: a single-rank vmpi world plus a channel_dns,
//     advanced in SLICES of K steps. Between slices the tenant suspends,
//     handing its workspace blocks back to the pool for whoever runs next.
//   * Slices are tasks on a shared util::thread_pool whose queue is
//     priority-aware and tenant-fair (higher priority first; round-robin
//     across tenants within a priority), so a 64-run sweep makes steady
//     progress everywhere instead of head-of-line blocking.
//   * When residency pressure exceeds the budget (live instances or pool
//     bytes), the COLDEST suspended tenant is EVICTED: its state spills to
//     a v2 checkpoint and the instance is destroyed. Its next slice
//     readmits it — reconstruct + load_checkpoint — and the restart-
//     continuation contract makes the evicted run's trace bit-identical
//     to a never-evicted one.
//   * Physics is untouched by all of this: scheduling order, slice width,
//     eviction and cache sharing are data-movement choices, and the
//     campaign determinism suite pins every run's per-step fingerprint to
//     its solo execution.
//
// Cancellation drops a tenant's queued slices immediately and stops an
// in-flight slice at the next step boundary. A failed tenant (an exception
// out of its slice) records the error and never poisons its neighbours.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/simulation.hpp"

namespace pcf::campaign {

/// One sweep member: a named channel configuration plus how far to run it.
struct job_spec {
  std::string name;             // report label (unique names recommended)
  core::channel_config config;  // physics + resolution (pa/pb forced to 1)
  long steps = 0;               // total steps to advance
  int priority = 0;             // higher is scheduled first
  double perturbation = 1e-3;   // initialize() amplitude
  std::uint64_t seed = 1;       // initialize() seed
  // dt policy: a positive cfl_target enables the adaptive-dt controller
  // (set_cfl_target) with dt clamped to [dt_min, dt_max].
  double cfl_target = 0.0;
  double dt_min = 0.0;
  double dt_max = 0.0;
  int stats_every = 0;  // accumulate_stats() every N steps (0: never)
};

enum class job_state {
  queued,     // never run yet
  running,    // a worker is inside one of its slices
  suspended,  // between slices, workspace released, instance resident
  evicted,    // spilled to checkpoint, instance destroyed
  done,       // reached steps
  cancelled,  // cancel() before completion
  failed,     // its slice threw; see job_status::error
};

[[nodiscard]] const char* to_string(job_state s);

/// Public snapshot of one tenant.
struct job_status {
  std::uint64_t id = 0;
  std::string name;
  job_state state = job_state::queued;
  long steps_done = 0;
  long steps_total = 0;
  int priority = 0;
  int evictions = 0;   // times this run was spilled
  double time = 0.0;   // simulation time reached
  std::string error;   // failed only
};

/// One per-slice diagnostics sample of one run (collect_series).
struct series_sample {
  long step = 0;
  double time = 0.0;
  double bulk = 0.0;    // bulk velocity
  double energy = 0.0;  // volume-averaged kinetic energy
  double cfl = 0.0;
};

struct campaign_config {
  int workers = 2;       // shared pool width (>= 1)
  int slice_steps = 16;  // steps per scheduling slice (>= 1)
  /// Residency caps; 0 disables that cap. Eviction needs a spill_dir.
  int max_resident = 0;  // live channel_dns instances
  std::uint64_t memory_budget_bytes = 0;  // global block-pool occupancy
  std::string spill_dir;  // eviction checkpoints live here
  /// Shared tuning-cache file applied to jobs that autotune without one.
  std::string tuning_cache;
  bool collect_series = false;  // per-slice series_sample recording
};

/// End-of-campaign accounting (also the live status() totals).
struct campaign_report {
  std::vector<job_status> jobs;
  long total_steps = 0;
  std::uint64_t evictions = 0;
  std::uint64_t readmissions = 0;
  double elapsed_s = 0.0;
  /// Block-pool occupancy high-water over the campaign, in bytes
  /// (blocks_peak * block_bytes of the global pool).
  std::uint64_t pool_peak_bytes = 0;
  /// Campaign-attributable deltas of the shared-cache counters.
  std::uint64_t plan_cache_hits = 0;
  std::uint64_t plan_cache_misses = 0;
  std::uint64_t tuning_memo_hits = 0;
  std::uint64_t tuning_memo_misses = 0;
  /// Blocks the campaign's workers left leased or parked after every
  /// tenant settled and the pool's threads were joined. The zero-stranded
  /// invariant: always 0 (worker-exit hooks flush per-thread caches).
  std::uint64_t stranded_blocks = 0;
};

class campaign_server {
 public:
  explicit campaign_server(campaign_config cfg);
  ~campaign_server();
  campaign_server(const campaign_server&) = delete;
  campaign_server& operator=(const campaign_server&) = delete;

  /// Add a job (before or during run()). Returns its id.
  std::uint64_t enqueue(job_spec spec);

  /// Cancel a job: queued slices are dropped now, an in-flight slice
  /// stops at its next step boundary. False if the id is unknown or the
  /// job already settled.
  bool cancel(std::uint64_t id);

  /// Observer invoked after every step of every run, from the worker
  /// thread driving it, with the tenant's instance resident and resumed —
  /// the determinism suite fingerprints each step through this. Set
  /// before run(); keep it cheap, it serializes that tenant's slice.
  void set_step_observer(
      std::function<void(std::uint64_t id, core::channel_dns& dns)> obs);

  /// Drive every enqueued job to a settled state (done, cancelled or
  /// failed) over the shared pool; blocks until the campaign is drained
  /// and the workers joined. One campaign per server: a second call
  /// throws.
  campaign_report run();

  /// Live snapshot (thread-safe, callable during run() from outside).
  [[nodiscard]] std::vector<job_status> status() const;

  /// Per-slice diagnostics of one run (collect_series; valid after run()).
  [[nodiscard]] const std::vector<series_sample>& series(
      std::uint64_t id) const;

  /// Human-readable live status: one line per job plus the pool/cache
  /// telemetry line the campaign_runner prints while polling.
  [[nodiscard]] std::string status_report() const;

 private:
  struct impl;
  std::unique_ptr<impl> impl_;
};

}  // namespace pcf::campaign
