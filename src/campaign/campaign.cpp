#include "campaign/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <iomanip>
#include <mutex>
#include <optional>
#include <sstream>

#include "fft/plan_cache.hpp"
#include "pencil/autotune.hpp"
#include "util/block_pool.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "vmpi/vmpi.hpp"

namespace pcf::campaign {

const char* to_string(job_state s) {
  switch (s) {
    case job_state::queued: return "queued";
    case job_state::running: return "running";
    case job_state::suspended: return "suspended";
    case job_state::evicted: return "evicted";
    case job_state::done: return "done";
    case job_state::cancelled: return "cancelled";
    case job_state::failed: return "failed";
  }
  return "?";
}

namespace {

bool settled(job_state s) {
  return s == job_state::done || s == job_state::cancelled ||
         s == job_state::failed;
}

/// One scheduled run. The scalar bookkeeping is guarded by the server
/// mutex; `dns` is touched only by the single worker inside this tenant's
/// slice (the scheduler never queues two slices of one tenant at once) or
/// by an evictor that first took ownership under the mutex.
struct tenant {
  std::uint64_t id = 0;
  job_spec spec;
  job_state state = job_state::queued;
  std::optional<vmpi::communicator> world;  // size-1, minted at enqueue
  std::unique_ptr<core::channel_dns> dns;
  long steps_done = 0;
  double sim_time = 0.0;
  int evictions = 0;
  std::uint64_t last_ran = 0;  // service stamp; smallest = coldest
  bool initialized = false;    // initialize() has seeded the state
  bool spilled = false;        // a spill checkpoint awaits readmission
  double spill_dt = 0.0;       // dt in effect at eviction (checkpoints
                               // carry time/steps/state but dt is config:
                               // the readmission must restore the dt the
                               // CFL controller had evolved to)
  bool evicting = false;       // an evictor is writing that checkpoint
  bool in_slice = false;       // a worker is inside this tenant's slice
  std::atomic<bool> cancel_requested{false};
  std::string error;
  std::vector<series_sample> series;
  // Phase-timer accumulation over every slice (timings()/reset_timings()
  // at slice boundaries): where this run's wall time actually went.
  double sec_total = 0.0, sec_fft = 0.0, sec_transpose = 0.0,
         sec_advance = 0.0;
};

}  // namespace

struct campaign_server::impl {
  campaign_config cfg;

  mutable std::mutex mu;
  std::condition_variable cv;  // eviction hand-off + state changes
  std::vector<std::unique_ptr<tenant>> tenants;
  std::uint64_t next_id = 1;
  std::uint64_t clock = 0;  // service stamps for coldest-tenant selection
  std::function<void(std::uint64_t, core::channel_dns&)> observer;

  std::unique_ptr<thread_pool> pool;  // alive during run()
  bool ran = false;
  bool draining = false;

  std::uint64_t evictions = 0;
  std::uint64_t readmissions = 0;

  explicit impl(campaign_config c) : cfg(std::move(c)) {
    PCF_REQUIRE(cfg.workers >= 1, "campaign needs at least one worker");
    PCF_REQUIRE(cfg.slice_steps >= 1, "slice must advance at least one step");
    PCF_REQUIRE(
        (cfg.max_resident == 0 && cfg.memory_budget_bytes == 0) ||
            !cfg.spill_dir.empty(),
        "a residency cap needs a spill_dir for eviction checkpoints");
  }

  tenant* find_locked(std::uint64_t id) {
    for (auto& t : tenants)
      if (t->id == id) return t.get();
    return nullptr;
  }

  std::string spill_path(const tenant& t) const {
    return cfg.spill_dir + "/pcf_campaign_job_" + std::to_string(t.id) +
           ".ckpt";
  }

  static void remove_spill(tenant& t, const std::string& path) {
    if (t.spilled) std::remove(path.c_str());
    t.spilled = false;
  }

  // --- residency / eviction ------------------------------------------------

  std::size_t resident_locked() const {
    std::size_t n = 0;
    // A mid-slice tenant holds (or is about to construct) its instance in
    // the slice's locals, invisible through t->dns — count it resident.
    for (const auto& t : tenants)
      if (t->dns != nullptr || t->evicting || t->in_slice) ++n;
    return n;
  }

  bool over_budget_locked() const {
    if (cfg.max_resident > 0 &&
        resident_locked() >= static_cast<std::size_t>(cfg.max_resident))
      return true;
    if (cfg.memory_budget_bytes > 0) {
      const auto s = block_pool::global().stats();
      const std::uint64_t in_use =
          static_cast<std::uint64_t>(s.blocks_leased + s.blocks_cached) *
          block_pool::global().config().block_bytes;
      if (in_use > cfg.memory_budget_bytes) return true;
    }
    return false;
  }

  /// Evict coldest suspended tenants until the budget admits `self` (or no
  /// victim remains — liveness beats strictness: with every resident
  /// tenant mid-slice there is nothing safe to spill, and the admission
  /// proceeds anyway). Called with `lk` held; unlocks around the spill
  /// write so other slices keep flowing.
  void make_room_locked(std::unique_lock<std::mutex>& lk, tenant& self) {
    while (over_budget_locked()) {
      tenant* victim = nullptr;
      for (auto& c : tenants) {
        if (c.get() == &self || c->dns == nullptr) continue;
        if (c->in_slice || c->evicting || c->state != job_state::suspended)
          continue;
        if (victim == nullptr || c->last_ran < victim->last_ran)
          victim = c.get();
      }
      if (victim == nullptr) return;
      victim->evicting = true;
      victim->state = job_state::evicted;
      std::unique_ptr<core::channel_dns> doomed = std::move(victim->dns);
      victim->spill_dt = doomed->dt();
      const std::string path = spill_path(*victim);
      lk.unlock();
      // The instance is suspended, so the per-rank save streams the heap
      // state without re-leasing any workspace blocks.
      doomed->save_checkpoint(path);
      doomed.reset();
      lk.lock();
      victim->spilled = true;
      victim->evicting = false;
      ++victim->evictions;
      ++evictions;
      cv.notify_all();
    }
  }

  // --- slice execution -----------------------------------------------------

  void submit_slice_locked(tenant& t) {
    thread_pool::task_options opt;
    opt.priority = t.spec.priority;
    opt.tenant = t.id;
    const std::uint64_t id = t.id;
    pool->submit([this, id] { run_slice(id); }, opt);
  }

  /// Construct (or reconstruct) the tenant's instance and bring its state
  /// in: initialize() on first admission, load_checkpoint() after an
  /// eviction — the restart-continuation path PR 5 pinned bit-identical.
  /// Runs unlocked: the instance lands in the slice-local `inst` (published
  /// to `t.dns` only under the server mutex, where resident_locked() and
  /// the evictor read it), and the tenant fields touched here are private
  /// to the one outstanding slice.
  void admit(tenant& t, std::unique_ptr<core::channel_dns>& inst,
             bool& readmitted) {
    core::channel_config cc = t.spec.config;
    cc.pa = 1;
    cc.pb = 1;
    cc.pooled_workspace = true;  // suspension must free real blocks
    if (!cfg.tuning_cache.empty() && cc.autotune && cc.tuning_cache.empty())
      cc.tuning_cache = cfg.tuning_cache;
    inst = std::make_unique<core::channel_dns>(cc, *t.world);
    if (t.spilled) {
      inst->load_checkpoint(spill_path(t));
      if (t.spill_dt > 0.0) inst->set_dt(t.spill_dt);
      readmitted = true;
    } else if (!t.initialized) {
      inst->initialize(t.spec.perturbation, t.spec.seed);
      t.initialized = true;
    }
    if (t.spec.cfl_target > 0.0)
      inst->set_cfl_target(t.spec.cfl_target, t.spec.dt_min, t.spec.dt_max);
  }

  void finalize_cancel_locked(tenant& t) {
    t.state = job_state::cancelled;
    t.dns.reset();
    remove_spill(t, spill_path(t));
    cv.notify_all();
  }

  void run_slice(std::uint64_t id) {
    std::unique_lock<std::mutex> lk(mu);
    tenant& t = *find_locked(id);
    cv.wait(lk, [&] { return !t.evicting; });
    if (t.cancel_requested.load(std::memory_order_relaxed)) {
      finalize_cancel_locked(t);
      return;
    }
    t.in_slice = true;
    t.state = job_state::running;
    // Take the instance out of the shared slot while the lock is held:
    // `t.dns` is only ever read or written under the mutex, and the slice
    // works on this local (in_slice keeps the evictor away, and counts us
    // resident while the pointer lives here).
    std::unique_ptr<core::channel_dns> inst = std::move(t.dns);
    if (inst == nullptr) make_room_locked(lk, t);

    long done = t.steps_done;
    const long total = t.spec.steps;
    const auto obs = observer;  // stable copy for the unlocked stepping
    bool readmitted = false;
    lk.unlock();

    // Everything below the unlock touches only `inst` and locals; the
    // shared bookkeeping fields are written back under the re-taken lock.
    bool failed = false;
    std::string error;
    double sim_time = 0.0;
    core::step_timings st;
    std::optional<series_sample> sample;
    try {
      if (inst == nullptr) admit(t, inst, readmitted);
      core::channel_dns& dns = *inst;
      int k = 0;
      while (k < cfg.slice_steps && done < total &&
             !t.cancel_requested.load(std::memory_order_relaxed)) {
        dns.step();
        ++done;
        ++k;
        if (t.spec.stats_every > 0 && done % t.spec.stats_every == 0)
          dns.accumulate_stats();
        if (obs) obs(t.id, dns);
      }
      if (cfg.collect_series && k > 0) {
        series_sample s;
        s.step = done;
        s.time = dns.time();
        s.bulk = dns.bulk_velocity();
        s.energy = dns.kinetic_energy();
        s.cfl = dns.cfl();
        sample = s;
      }
      sim_time = dns.time();
      st = dns.timings();
      dns.reset_timings();
      if (done < total) dns.suspend();
    } catch (const std::exception& ex) {
      failed = true;
      error = ex.what();
    } catch (...) {
      failed = true;
      error = "unknown exception";
    }

    lk.lock();
    t.dns = std::move(inst);  // publish (or clear below) under the mutex
    t.steps_done = done;
    t.in_slice = false;
    t.last_ran = ++clock;
    if (!failed) {
      t.sim_time = sim_time;
      t.sec_total += st.total;
      t.sec_fft += st.fft;
      t.sec_transpose += st.transpose;
      t.sec_advance += st.advance;
      if (sample) t.series.push_back(*sample);
    }
    if (readmitted) ++readmissions;
    if (failed) {
      t.state = job_state::failed;
      t.error = error;
      t.dns.reset();
      remove_spill(t, spill_path(t));
    } else if (t.cancel_requested.load(std::memory_order_relaxed)) {
      finalize_cancel_locked(t);
    } else if (done >= total) {
      t.state = job_state::done;
      t.dns.reset();  // blocks return to the pool for the next tenant
      remove_spill(t, spill_path(t));
    } else {
      t.state = job_state::suspended;
      submit_slice_locked(t);
    }
    cv.notify_all();
  }

  // --- snapshots -----------------------------------------------------------

  job_status snapshot_locked(const tenant& t) const {
    job_status s;
    s.id = t.id;
    s.name = t.spec.name;
    s.state = t.state;
    s.steps_done = t.steps_done;
    s.steps_total = t.spec.steps;
    s.priority = t.spec.priority;
    s.evictions = t.evictions;
    s.time = t.sim_time;
    s.error = t.error;
    return s;
  }
};

campaign_server::campaign_server(campaign_config cfg)
    : impl_(std::make_unique<impl>(std::move(cfg))) {}

campaign_server::~campaign_server() = default;

std::uint64_t campaign_server::enqueue(job_spec spec) {
  PCF_REQUIRE(spec.steps >= 1, "a job must advance at least one step");
  auto t = std::make_unique<tenant>();
  t->spec = std::move(spec);
  // Mint the tenant's single-rank world now: the communicator handle is
  // copyable and size-1 collectives rendezvous with nobody, so the
  // instance can later be driven from whichever worker runs its slice.
  vmpi::run_world(1, [&](vmpi::communicator& w) { t->world.emplace(w); });
  std::lock_guard<std::mutex> lk(impl_->mu);
  t->id = impl_->next_id++;
  const std::uint64_t id = t->id;
  impl_->tenants.push_back(std::move(t));
  if (impl_->pool != nullptr && impl_->draining)
    impl_->submit_slice_locked(*impl_->tenants.back());
  return id;
}

bool campaign_server::cancel(std::uint64_t id) {
  std::lock_guard<std::mutex> lk(impl_->mu);
  tenant* t = impl_->find_locked(id);
  if (t == nullptr || settled(t->state)) return false;
  t->cancel_requested.store(true, std::memory_order_relaxed);
  if (impl_->pool != nullptr && impl_->draining) {
    const std::size_t dropped = impl_->pool->cancel_tenant(id);
    // Its queued slice is gone, so nobody would finalize it: hand the
    // teardown (instance + spill file) to a worker. An in-flight slice
    // instead sees the flag at its next step boundary.
    if (!t->in_slice && dropped > 0) {
      thread_pool::task_options opt;
      opt.priority = t->spec.priority;
      opt.tenant = id;
      impl_->pool->submit(
          [this, id] {
            std::unique_lock<std::mutex> lk(impl_->mu);
            tenant& t = *impl_->find_locked(id);
            impl_->cv.wait(lk, [&] { return !t.evicting; });
            if (!settled(t.state)) impl_->finalize_cancel_locked(t);
          },
          opt);
    }
  } else {
    t->state = job_state::cancelled;  // nothing was ever admitted
  }
  return true;
}

void campaign_server::set_step_observer(
    std::function<void(std::uint64_t, core::channel_dns&)> obs) {
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->observer = std::move(obs);
}

campaign_report campaign_server::run() {
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    PCF_REQUIRE(!impl_->ran, "campaign_server::run() may only run once");
    impl_->ran = true;
  }
  const auto plan0 = fft::plan_cache_statistics();
  const auto memo0 = pencil::tuning_memo_statistics();
  const auto pool0 = block_pool::global().stats();
  wall_timer timer;

  // Workers + the caller (which only waits): submit() on a 1-thread pool
  // would run slices inline and recurse on resubmission.
  impl_->pool = std::make_unique<thread_pool>(impl_->cfg.workers + 1);
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->draining = true;
    for (auto& t : impl_->tenants)
      if (t->state == job_state::queued) impl_->submit_slice_locked(*t);
  }
  // Slices resubmit themselves before completing, so the drained queue
  // really is the settled campaign; the loop re-checks for jobs enqueued
  // concurrently with the drain.
  for (;;) {
    impl_->pool->wait_submitted();
    std::lock_guard<std::mutex> lk(impl_->mu);
    bool unsettled = false;
    for (auto& t : impl_->tenants)
      if (!settled(t->state)) unsettled = true;
    if (!unsettled) {
      impl_->draining = false;
      break;
    }
  }
  // Joining the workers fires the block pool's thread-exit hooks, so the
  // per-thread caches they accumulated flush back to the segment bitmaps.
  impl_->pool.reset();

  const auto plan1 = fft::plan_cache_statistics();
  const auto memo1 = pencil::tuning_memo_statistics();
  const auto pool1 = block_pool::global().stats();

  campaign_report rep;
  rep.jobs = status();
  for (const job_status& j : rep.jobs) rep.total_steps += j.steps_done;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    rep.evictions = impl_->evictions;
    rep.readmissions = impl_->readmissions;
  }
  rep.elapsed_s = timer.seconds();
  rep.pool_peak_bytes = static_cast<std::uint64_t>(pool1.blocks_peak) *
                        block_pool::global().config().block_bytes;
  rep.plan_cache_hits = plan1.hits - plan0.hits;
  rep.plan_cache_misses = plan1.misses - plan0.misses;
  rep.tuning_memo_hits = memo1.hits - memo0.hits;
  rep.tuning_memo_misses = memo1.misses - memo0.misses;
  const auto delta = [](std::size_t now, std::size_t before) {
    return now > before ? static_cast<std::uint64_t>(now - before) : 0u;
  };
  rep.stranded_blocks = delta(pool1.blocks_leased, pool0.blocks_leased) +
                        delta(pool1.blocks_cached, pool0.blocks_cached);
  // The zero-stranded invariant: every tenant released its leases and
  // every retired worker's cache was flushed by its exit hook.
  PCF_REQUIRE(rep.stranded_blocks == 0,
              "campaign left blocks stranded in the global pool");
  return rep;
}

std::vector<job_status> campaign_server::status() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  std::vector<job_status> out;
  out.reserve(impl_->tenants.size());
  for (const auto& t : impl_->tenants)
    out.push_back(impl_->snapshot_locked(*t));
  return out;
}

const std::vector<series_sample>& campaign_server::series(
    std::uint64_t id) const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  tenant* t = impl_->find_locked(id);
  PCF_REQUIRE(t != nullptr, "unknown campaign job id");
  return t->series;
}

std::string campaign_server::status_report() const {
  std::ostringstream os;
  std::lock_guard<std::mutex> lk(impl_->mu);
  std::size_t by_state[7] = {};
  long steps = 0;
  for (const auto& t : impl_->tenants) {
    ++by_state[static_cast<int>(t->state)];
    steps += t->steps_done;
  }
  os << "campaign: " << impl_->tenants.size() << " jobs |";
  for (int s = 0; s < 7; ++s)
    if (by_state[s] > 0)
      os << ' ' << to_string(static_cast<job_state>(s)) << ' ' << by_state[s];
  os << " | steps " << steps << " | evictions " << impl_->evictions
     << " readmissions " << impl_->readmissions << '\n';

  const auto ps = block_pool::global().stats();
  const auto plan = fft::plan_cache_statistics();
  const auto memo = pencil::tuning_memo_statistics();
  os << "pool: leased " << ps.blocks_leased << " cached " << ps.blocks_cached
     << " peak " << ps.blocks_peak << " blk | plan cache " << plan.hits
     << " hit / " << plan.misses << " miss | tuning memo " << memo.hits
     << " hit / " << memo.misses << " miss\n";

  os << "  id pri state      steps            t(sim)    t(wall)  name\n";
  for (const auto& t : impl_->tenants) {
    os << std::setw(4) << t->id << std::setw(4) << t->spec.priority << ' '
       << std::left << std::setw(10) << to_string(t->state) << std::right
       << std::setw(6) << t->steps_done << '/' << std::left << std::setw(8)
       << t->spec.steps << std::right << std::setw(10) << std::setprecision(4)
       << t->sim_time << std::setw(10) << std::setprecision(3) << t->sec_total
       << "  " << t->spec.name;
    if (!t->error.empty()) os << "  [" << t->error << "]";
    os << '\n';
  }
  return os.str();
}

}  // namespace pcf::campaign
