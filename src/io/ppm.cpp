#include "io/ppm.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "util/check.hpp"

namespace pcf::io {

void diverging_rgb(double v, double lo, double hi, unsigned char rgb[3]) {
  // A non-finite sample (a blown-up field, a masked point) must not reach
  // the double -> unsigned char cast below: NaN propagates through clamp
  // and the cast is undefined behavior. Paint it magenta — a color the
  // blue-white-red map never produces — so bad data is visible in the
  // image instead of garbage.
  if (!std::isfinite(v)) {
    rgb[0] = 255;
    rgb[1] = 0;
    rgb[2] = 255;
    return;
  }
  double t = hi > lo ? (v - lo) / (hi - lo) : 0.5;
  t = std::clamp(t, 0.0, 1.0);
  // Blue (0,0,1) -> white (1,1,1) -> red (1,0,0).
  double r, g, b;
  if (t < 0.5) {
    const double s = 2.0 * t;
    r = s;
    g = s;
    b = 1.0;
  } else {
    const double s = 2.0 * (t - 0.5);
    r = 1.0;
    g = 1.0 - s;
    b = 1.0 - s;
  }
  rgb[0] = static_cast<unsigned char>(255.0 * r + 0.5);
  rgb[1] = static_cast<unsigned char>(255.0 * g + 0.5);
  rgb[2] = static_cast<unsigned char>(255.0 * b + 0.5);
}

void write_ppm(const std::string& path, const std::vector<double>& data,
               std::size_t width, std::size_t height, double lo, double hi) {
  PCF_REQUIRE(data.size() == width * height, "data size mismatch");
  std::ofstream os(path, std::ios::binary);
  PCF_REQUIRE(os.good(), "cannot open output file");
  os << "P6\n" << width << ' ' << height << "\n255\n";
  std::vector<unsigned char> row(3 * width);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x)
      diverging_rgb(data[y * width + x], lo, hi, &row[3 * x]);
    os.write(reinterpret_cast<const char*>(row.data()),
             static_cast<std::streamsize>(row.size()));
  }
  PCF_REQUIRE(os.good(), "write failed");
}

}  // namespace pcf::io
