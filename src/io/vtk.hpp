// Legacy-VTK rectilinear-grid output of gathered 3-D fields, for
// visualization in ParaView/VisIt (the full-field counterpart of the PPM
// slices of Figures 7-8).
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace pcf::io {

/// Write named scalar fields on a rectilinear grid. Coordinates define
/// the grid (sizes nx, ny, nz); each field must hold nx*ny*nz values with
/// x varying fastest, then y, then z (the natural order of a gathered
/// x-pencil field indexed [z][y][x]).
void write_vtk_rectilinear(
    const std::string& path, const std::vector<double>& xs,
    const std::vector<double>& ys, const std::vector<double>& zs,
    const std::vector<std::pair<std::string, const std::vector<double>*>>&
        fields);

}  // namespace pcf::io
