#include "io/atomic_file.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <utility>

#include "util/check.hpp"

namespace pcf::io {

namespace {

std::mutex g_policy_mutex;
fault_policy g_policy;

/// Snapshot of the global policy if it targets `path`, else kind none.
fault_policy policy_for(const std::string& path) {
  std::lock_guard<std::mutex> lk(g_policy_mutex);
  if (g_policy.kind == fault_kind::none) return {};
  if (!g_policy.path_match.empty() &&
      path.find(g_policy.path_match) == std::string::npos)
    return {};
  return g_policy;
}

}  // namespace

void set_fault_policy(const fault_policy& policy) {
  std::lock_guard<std::mutex> lk(g_policy_mutex);
  g_policy = policy;
}

void clear_fault_policy() {
  std::lock_guard<std::mutex> lk(g_policy_mutex);
  g_policy = {};
}

fault_policy current_fault_policy() {
  std::lock_guard<std::mutex> lk(g_policy_mutex);
  return g_policy;
}

std::string atomic_file_writer::temp_path(const std::string& path) {
  return path + ".tmp";
}

atomic_file_writer::atomic_file_writer(const std::string& path)
    : atomic_file_writer(path, /*owner=*/true) {}

atomic_file_writer atomic_file_writer::join(const std::string& path) {
  return atomic_file_writer(path, /*owner=*/false);
}

atomic_file_writer::atomic_file_writer(const std::string& path, bool owner)
    : path_(path), tmp_(temp_path(path)), policy_(policy_for(path)),
      owner_(owner) {
  PCF_REQUIRE(policy_.kind != fault_kind::fail_open,
              "cannot open checkpoint temp file (injected fail-open): " + tmp_);
  // The owner truncates; joiners attach to the owner's in-progress temp.
  const auto mode = owner_
                        ? std::ios::binary | std::ios::out | std::ios::trunc
                        : std::ios::binary | std::ios::in | std::ios::out;
  os_.open(tmp_, mode);
  PCF_REQUIRE(os_.good(), "cannot open checkpoint temp file: " + tmp_);
}

atomic_file_writer::atomic_file_writer(atomic_file_writer&& other) noexcept
    : path_(std::move(other.path_)),
      tmp_(std::move(other.tmp_)),
      os_(std::move(other.os_)),
      policy_(std::move(other.policy_)),
      owner_(other.owner_),
      committed_(other.committed_),
      closed_(other.closed_) {
  other.committed_ = true;  // moved-from shell must not clean up
  other.owner_ = false;
}

atomic_file_writer::~atomic_file_writer() {
  if (committed_ || !owner_) return;
  // Abandoned before commit: the target was never touched; drop the temp.
  os_.close();
  std::error_code ec;
  std::filesystem::remove(tmp_, ec);
}

void atomic_file_writer::checked_write(const void* data, std::size_t bytes) {
  if (bytes == 0) return;
  const auto* p = static_cast<const char*>(data);
  const auto off = static_cast<std::uint64_t>(os_.tellp());
  switch (policy_.kind) {
    case fault_kind::short_write: {
      // Bytes past the policy offset vanish; the stream still reports
      // success, like a filesystem acknowledging a torn write.
      if (off >= policy_.byte) return;
      const std::uint64_t writable = std::min<std::uint64_t>(
          bytes, policy_.byte - off);
      os_.write(p, static_cast<std::streamsize>(writable));
      break;
    }
    case fault_kind::bit_flip: {
      if (policy_.byte >= off && policy_.byte < off + bytes) {
        std::string copy(p, bytes);
        copy[static_cast<std::size_t>(policy_.byte - off)] ^= 1;
        os_.write(copy.data(), static_cast<std::streamsize>(bytes));
      } else {
        os_.write(p, static_cast<std::streamsize>(bytes));
      }
      break;
    }
    case fault_kind::crash_after_n: {
      if (off + bytes > policy_.byte) {
        const std::uint64_t writable = policy_.byte > off
                                           ? policy_.byte - off
                                           : 0;
        os_.write(p, static_cast<std::streamsize>(writable));
        os_.flush();
        throw injected_crash("injected crash after " +
                             std::to_string(policy_.byte) +
                             " bytes writing " + tmp_);
      }
      os_.write(p, static_cast<std::streamsize>(bytes));
      break;
    }
    case fault_kind::none:
    case fault_kind::fail_open:  // handled at open; behaves as none here
      os_.write(p, static_cast<std::streamsize>(bytes));
      break;
  }
  PCF_REQUIRE(os_.good(), "write failed on checkpoint temp file: " + tmp_);
}

void atomic_file_writer::write(const void* data, std::size_t bytes) {
  checked_write(data, bytes);
}

void atomic_file_writer::write_at(std::uint64_t offset, const void* data,
                                  std::size_t bytes) {
  seek(offset);
  checked_write(data, bytes);
}

void atomic_file_writer::seek(std::uint64_t offset) {
  os_.seekp(static_cast<std::streamoff>(offset));
  PCF_REQUIRE(os_.good(), "seek failed on checkpoint temp file: " + tmp_);
}

std::uint64_t atomic_file_writer::tell() {
  return static_cast<std::uint64_t>(os_.tellp());
}

void atomic_file_writer::flush() {
  os_.flush();
  PCF_REQUIRE(os_.good(), "flush failed on checkpoint temp file: " + tmp_);
}

void atomic_file_writer::close() {
  if (closed_) return;
  flush();
  os_.close();
  PCF_REQUIRE(!os_.fail(), "close failed on checkpoint temp file: " + tmp_);
  closed_ = true;
}

void atomic_file_writer::commit() {
  PCF_REQUIRE(owner_, "only the creating writer may commit");
  PCF_REQUIRE(!committed_, "checkpoint already committed");
  close();
  std::error_code ec;
  std::filesystem::rename(tmp_, path_, ec);
  PCF_REQUIRE(!ec, "cannot rename checkpoint into place: " + tmp_ + " -> " +
                       path_ + " (" + ec.message() + ")");
  committed_ = true;
}

// --- generations -----------------------------------------------------------

std::string generation_path(const std::string& prefix, long generation) {
  return prefix + ".g" + std::to_string(generation);
}

std::vector<long> list_generations(const std::string& prefix,
                                   const std::string& suffix) {
  const std::filesystem::path p(prefix);
  std::filesystem::path dir = p.parent_path();
  if (dir.empty()) dir = ".";
  const std::string stem = p.filename().string() + ".g";
  std::vector<long> gens;
  std::error_code ec;
  for (std::filesystem::directory_iterator it(dir, ec), end;
       !ec && it != end; it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.size() <= stem.size() + suffix.size() ||
        name.compare(0, stem.size(), stem) != 0 ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
      continue;
    const std::string digits =
        name.substr(stem.size(), name.size() - stem.size() - suffix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
      continue;
    gens.push_back(std::stol(digits));
  }
  std::sort(gens.begin(), gens.end());
  gens.erase(std::unique(gens.begin(), gens.end()), gens.end());
  return gens;
}

void prune_generations(const std::string& prefix, const std::string& suffix,
                       int keep) {
  PCF_REQUIRE(keep >= 1, "must keep at least one checkpoint generation");
  auto gens = list_generations(prefix, suffix);
  if (gens.size() <= static_cast<std::size_t>(keep)) return;
  for (std::size_t i = 0; i + static_cast<std::size_t>(keep) < gens.size();
       ++i) {
    std::error_code ec;
    std::filesystem::remove(generation_path(prefix, gens[i]) + suffix, ec);
  }
}

}  // namespace pcf::io
