// Crash-safe file writing and deterministic I/O fault injection.
//
// The paper's production campaigns (Section 6) run for days and survive on
// checkpoint/restart; a checkpoint writer that truncates the target in
// place turns any mid-write crash into the loss of the only restart point.
// Every checkpoint format in this repository therefore writes through
// `atomic_file_writer`: bytes go to a temp path next to the target, and
// only a successful commit() renames the temp over the target (rename(2)
// is atomic within a filesystem), so a crash at any byte leaves the
// previous checkpoint intact.
//
// `fault_policy` injects deterministic faults into this write path so
// tests can *prove* the guarantee: every injected fault is either
// invisible (the old file survives untouched) or detected on load (the
// per-section CRCs in the checkpoint format catch it with a precise
// error). Nothing here is randomized — the fault fires at an exact byte.
#pragma once

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace pcf::io {

/// Deterministic fault kinds for the checkpoint write path.
enum class fault_kind {
  none,           // no fault
  fail_open,      // creating the temp file fails
  short_write,    // bytes at file offset >= `byte` are silently dropped
  bit_flip,       // bit 0 of the byte at file offset `byte` is inverted
  crash_after_n,  // the writer "crashes" (throws injected_crash) once the
                  // write cursor would pass file offset `byte`
};

struct fault_policy {
  fault_kind kind = fault_kind::none;
  std::uint64_t byte = 0;   // file offset the fault keys on (see fault_kind)
  std::string path_match;   // fault only targets paths containing this
};

/// Install/remove the process-global fault policy (thread-safe; writers
/// snapshot the policy when they open a matching path).
void set_fault_policy(const fault_policy& policy);
void clear_fault_policy();
[[nodiscard]] fault_policy current_fault_policy();

/// RAII guard: installs a policy for one scope, clears it on exit.
class fault_injection_scope {
 public:
  explicit fault_injection_scope(const fault_policy& policy) {
    set_fault_policy(policy);
  }
  ~fault_injection_scope() { clear_fault_policy(); }
  fault_injection_scope(const fault_injection_scope&) = delete;
  fault_injection_scope& operator=(const fault_injection_scope&) = delete;
};

/// Thrown by an injected crash-after-N fault; models the process dying
/// mid-write (the target file is never touched, as with a real crash).
class injected_crash : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Write-to-temp-then-rename file writer.
///
/// The creating writer owns the temp file: commit() renames it over the
/// target, destruction without commit() removes it and leaves the target
/// untouched. For parallel single-file writes, other ranks join() the
/// in-progress temp and write their pieces at explicit offsets; only the
/// owner commits (callers order the joiners' close() before the owner's
/// commit(), e.g. with a barrier).
class atomic_file_writer {
 public:
  /// Create (truncate) the temp file for `path`.
  explicit atomic_file_writer(const std::string& path);
  /// Join the existing temp file of an in-progress write of `path`.
  [[nodiscard]] static atomic_file_writer join(const std::string& path);
  ~atomic_file_writer();
  atomic_file_writer(atomic_file_writer&& other) noexcept;
  atomic_file_writer(const atomic_file_writer&) = delete;
  atomic_file_writer& operator=(const atomic_file_writer&) = delete;
  atomic_file_writer& operator=(atomic_file_writer&&) = delete;

  /// Append `bytes` at the current cursor (fault policy applies).
  void write(const void* data, std::size_t bytes);
  /// Write `bytes` at absolute file offset `offset` (fault policy applies).
  void write_at(std::uint64_t offset, const void* data, std::size_t bytes);
  void seek(std::uint64_t offset);
  [[nodiscard]] std::uint64_t tell();

  /// Flush buffered bytes to the temp file; throws if the stream failed.
  void flush();
  /// Flush and close without committing (joiners call this before the
  /// owner commits).
  void close();
  /// Flush, close, and atomically rename the temp over the target. Owner
  /// only; after commit() the writer is inert.
  void commit();

  [[nodiscard]] const std::string& target_path() const { return path_; }
  /// The temp path used for `path` ("<path>.tmp").
  [[nodiscard]] static std::string temp_path(const std::string& path);

 private:
  atomic_file_writer(const std::string& path, bool owner);

  void checked_write(const void* data, std::size_t bytes);

  std::string path_, tmp_;
  std::fstream os_;
  fault_policy policy_;  // snapshot (kind == none if the path doesn't match)
  bool owner_ = true;
  bool committed_ = false;
  bool closed_ = false;
};

// --- checkpoint generation bookkeeping -------------------------------------
//
// Rotated checkpoints are named `<prefix>.g<generation><suffix>` (the
// per-rank formats append ".<rank>" as the suffix; single-file formats use
// an empty suffix). Generations are ordered by their number — the runner
// uses the step count — so "newest good" is well defined across restarts.

/// `<prefix>.g<generation>` (append the format's own suffix afterwards).
[[nodiscard]] std::string generation_path(const std::string& prefix,
                                          long generation);

/// Generation numbers g for which `<prefix>.g<g><suffix>` exists, sorted
/// ascending. Scans the prefix's directory; missing directory -> empty.
[[nodiscard]] std::vector<long> list_generations(const std::string& prefix,
                                                 const std::string& suffix);

/// Delete all but the newest `keep` generations of `<prefix>.g*<suffix>`.
void prune_generations(const std::string& prefix, const std::string& suffix,
                       int keep);

}  // namespace pcf::io
