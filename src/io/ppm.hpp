// PPM image output for flow visualization (paper Figures 7-8).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pcf::io {

/// Write a scalar field as a binary PPM image using a blue-white-red
/// diverging colormap centered on (lo + hi) / 2. Data is row-major
/// height x width; row 0 is the top of the image.
void write_ppm(const std::string& path, const std::vector<double>& data,
               std::size_t width, std::size_t height, double lo, double hi);

/// Map a value in [lo, hi] to RGB via the same colormap (exposed for
/// tests).
void diverging_rgb(double v, double lo, double hi, unsigned char rgb[3]);

}  // namespace pcf::io
