#include "io/vtk.hpp"

#include <fstream>

#include "util/check.hpp"

namespace pcf::io {

void write_vtk_rectilinear(
    const std::string& path, const std::vector<double>& xs,
    const std::vector<double>& ys, const std::vector<double>& zs,
    const std::vector<std::pair<std::string, const std::vector<double>*>>&
        fields) {
  const std::size_t nx = xs.size(), ny = ys.size(), nz = zs.size();
  PCF_REQUIRE(nx >= 1 && ny >= 1 && nz >= 1, "empty grid");
  const std::size_t npts = nx * ny * nz;
  for (const auto& [name, data] : fields) {
    PCF_REQUIRE(data != nullptr && data->size() == npts,
                "field size must match grid");
    PCF_REQUIRE(!name.empty() && name.find(' ') == std::string::npos,
                "field names must be non-empty without spaces");
  }

  std::ofstream os(path);
  PCF_REQUIRE(os.good(), "cannot open VTK output file");
  os << "# vtk DataFile Version 3.0\n"
     << "poongback-repro channel flow field\n"
     << "ASCII\nDATASET RECTILINEAR_GRID\n"
     << "DIMENSIONS " << nx << ' ' << ny << ' ' << nz << '\n';
  os.precision(9);
  auto coords = [&](const char* label, const std::vector<double>& v) {
    os << label << ' ' << v.size() << " double\n";
    for (double c : v) os << c << '\n';
  };
  coords("X_COORDINATES", xs);
  coords("Y_COORDINATES", ys);
  coords("Z_COORDINATES", zs);
  os << "POINT_DATA " << npts << '\n';
  for (const auto& [name, data] : fields) {
    os << "SCALARS " << name << " double 1\nLOOKUP_TABLE default\n";
    for (double v : *data) os << v << '\n';
  }
  PCF_REQUIRE(os.good(), "VTK write failed");
}

}  // namespace pcf::io
