#include "io/profiles.hpp"

#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace pcf::io {

void write_profiles_csv(const std::string& path, const core::profile_data& p,
                        double re_tau) {
  std::ofstream os(path);
  PCF_REQUIRE(os.good(), "cannot open output file");
  os << "y,yplus,Uplus,uu,vv,ww,minus_uv\n";
  os.precision(12);
  for (std::size_t i = 0; i < p.y.size(); ++i) {
    const double yplus = (1.0 + p.y[i]) * re_tau;  // distance from lower wall
    os << p.y[i] << ',' << yplus << ',' << p.u[i] << ',' << p.uu[i] << ','
       << p.vv[i] << ',' << p.ww[i] << ',' << -p.uv[i] << '\n';
  }
  PCF_REQUIRE(os.good(), "write failed");
}

std::vector<double> read_csv_column(const std::string& path, int column) {
  std::ifstream is(path);
  PCF_REQUIRE(is.good(), "cannot open input file");
  std::string line;
  std::getline(is, line);  // header
  std::vector<double> out;
  while (std::getline(is, line)) {
    std::stringstream ss(line);
    std::string cell;
    for (int c = 0; c <= column; ++c) std::getline(ss, cell, ',');
    out.push_back(std::stod(cell));
  }
  return out;
}

}  // namespace pcf::io
