// Text output of turbulence statistics (the data behind Figures 5-6).
#pragma once

#include <string>

#include "core/statistics.hpp"

namespace pcf::io {

/// Write wall-normal profiles as CSV with both outer and wall (plus)
/// units: y, y+, U+, uu+, vv+, ww+, -uv+. `re_tau` converts to plus
/// units (u_tau = 1 in this code's normalization). Profiles from both
/// channel halves are written as-is (no folding).
void write_profiles_csv(const std::string& path,
                        const core::profile_data& p, double re_tau);

/// Parse one column back from a profiles CSV (testing aid).
std::vector<double> read_csv_column(const std::string& path, int column);

}  // namespace pcf::io
