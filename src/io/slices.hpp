// Gathering distributed x-pencil fields into global planes for I/O and
// visualization (paper Figures 7-8 at any rank count).
#pragma once

#include <cstddef>
#include <vector>

#include "pencil/pencil.hpp"
#include "vmpi/vmpi.hpp"

namespace pcf::io {

/// Gather the global x-y plane at physical z index `zg` from an x-pencil
/// field laid out [z_local][y_local][x]. Returns the ny_global x nxf plane
/// row-major in (y, x) on every rank. Collective over `world`.
std::vector<double> gather_xy_slice(vmpi::communicator& world,
                                    const pencil::decomp& d,
                                    const std::vector<double>& field,
                                    std::size_t zg);

/// Gather the global x-z plane at wall-normal index `yg` (row-major in
/// (z, x), nzf x nxf). Collective over `world`.
std::vector<double> gather_xz_slice(vmpi::communicator& world,
                                    const pencil::decomp& d,
                                    const std::vector<double>& field,
                                    std::size_t yg);

}  // namespace pcf::io
