#include "io/slices.hpp"

#include "util/check.hpp"

namespace pcf::io {

std::vector<double> gather_xy_slice(vmpi::communicator& world,
                                    const pencil::decomp& d,
                                    const std::vector<double>& field,
                                    std::size_t zg) {
  PCF_REQUIRE(zg < d.nzf, "z index out of range");
  PCF_REQUIRE(field.size() == d.x_pencil_real_elems(), "field size mismatch");
  const std::size_t ny = d.g.ny, nx = d.nxf;
  std::vector<double> local(ny * nx, 0.0), global(ny * nx, 0.0);
  if (zg >= d.zp.offset && zg < d.zp.offset + d.zp.count) {
    const std::size_t zl = zg - d.zp.offset;
    for (std::size_t y = 0; y < d.yb.count; ++y)
      for (std::size_t x = 0; x < nx; ++x)
        local[(d.yb.offset + y) * nx + x] =
            field[(zl * d.yb.count + y) * nx + x];
  }
  world.allreduce_sum(local.data(), global.data(), local.size());
  return global;
}

std::vector<double> gather_xz_slice(vmpi::communicator& world,
                                    const pencil::decomp& d,
                                    const std::vector<double>& field,
                                    std::size_t yg) {
  PCF_REQUIRE(yg < d.g.ny, "y index out of range");
  PCF_REQUIRE(field.size() == d.x_pencil_real_elems(), "field size mismatch");
  const std::size_t nz = d.nzf, nx = d.nxf;
  std::vector<double> local(nz * nx, 0.0), global(nz * nx, 0.0);
  if (yg >= d.yb.offset && yg < d.yb.offset + d.yb.count) {
    const std::size_t yl = yg - d.yb.offset;
    for (std::size_t z = 0; z < d.zp.count; ++z)
      for (std::size_t x = 0; x < nx; ++x)
        local[(d.zp.offset + z) * nx + x] =
            field[(z * d.yb.count + yl) * nx + x];
  }
  world.allreduce_sum(local.data(), global.data(), local.size());
  return global;
}

}  // namespace pcf::io
