#include "netsim/machine.hpp"

#include <algorithm>
#include <cmath>

namespace pcf::netsim {

namespace {
double sig4(double x) {
  const double x4 = x * x * x * x;
  return x4 / (1.0 + x4);
}
}  // namespace

double machine::alltoall_bw(double nodes) const {
  nodes = std::max(1.0, nodes);
  return a2a_bw * std::pow(64.0 / nodes, a2a_node_exp);
}

double machine::contention(double tasks, double nodes) const {
  const double f_task = 1.0 + cont_amp * sig4(tasks / task_sat);
  const double f_node = 1.0 + cont_amp * sig4(nodes / node_sat);
  return std::max(f_task, f_node);
}

double machine::link_contention(double groups) const {
  return 1.0 + link_cont_amp * sig4(groups / link_cont_sat);
}

double machine::bisection_per_node(double nodes) const {
  if (nodes <= 1.0) return mem_bw_node;
  switch (topo) {
    case topology::torus5d:
      // d-dimensional torus with n^d nodes: ~2 n^{d-1} bisection links, so
      // per-node bisection ~ 2 link_bw nodes^{-1/d}. The 5-D torus
      // degrades very slowly — the paper's explanation for Mira's good
      // transpose scaling.
      return 2.0 * link_bw * std::pow(nodes, -1.0 / 5.0);
    case topology::torus3d:
      // Gemini 3-D torus: much faster degradation with node count — the
      // Blue Waters transpose collapse (Table 9).
      return 2.0 * link_bw * std::pow(nodes, -1.0 / 3.0);
    case topology::fat_tree: {
      const double frac =
          std::min(1.0, nodes / static_cast<double>(total_nodes));
      const double oversub = 1.0 + (fat_tree_oversub - 1.0) * std::sqrt(frac);
      return nic_bw / oversub;
    }
  }
  return nic_bw;
}

machine machine::mira() {
  machine m;
  m.name = "Mira (BG/Q)";
  m.topo = topology::torus5d;
  m.cores_per_node = 16;
  m.smt_per_core = 4;
  m.core_peak_gflops = 12.8;
  // Paper Table 2: the N-S advance runs at 1.16 GF/core (memory-bound);
  // the FFT rate is calibrated from Table 9's FFT column at 131,072 cores
  // (rate before the large-line cache penalty).
  m.advance_gflops_per_core = 1.16;
  m.fft_gflops_per_core = 1.59;
  m.mem_bw_node = 28.8e9;  // 18 B/cycle at 1.6 GHz (Table 2)
  m.latency = 2.2e-6;
  // Calibrated from Table 9 (MPI) transpose at 131,072 cores; the 5-D
  // torus keeps it essentially flat with partition size.
  m.a2a_bw = 1.2e9;
  m.a2a_node_exp = 0.0;
  // Contention onset: per-core MPI above ~10^5 tasks (MPI mode), or the
  // full 48-rack partition in hybrid mode (Section 5.3).
  m.cont_amp = 0.45;
  m.task_sat = 9.0e4;
  m.node_sat = 3.2e4;
  m.nic_bw = 20e9;  // 10 links x 2 GB/s
  m.link_bw = 2e9;
  m.total_nodes = 49152;  // 48 racks
  return m;
}

machine machine::lonestar() {
  machine m;
  m.name = "Lonestar (Westmere + QDR IB)";
  m.topo = topology::fat_tree;
  m.cores_per_node = 12;
  m.smt_per_core = 1;
  m.core_peak_gflops = 13.3;
  m.advance_gflops_per_core = 3.1;  // Table 9, 192 cores
  m.fft_gflops_per_core = 3.7;
  m.mem_bw_node = 32e9;
  m.latency = 1.7e-6;
  m.a2a_bw = 2.26e9;  // Table 9, 192 cores
  m.a2a_node_exp = 0.05;
  m.nic_bw = 4e9;
  m.link_bw = 4e9;
  m.fat_tree_oversub = 2.0;
  m.total_nodes = 1888;
  return m;
}

machine machine::stampede() {
  machine m;
  m.name = "Stampede (Sandy Bridge + FDR IB)";
  m.topo = topology::fat_tree;
  m.cores_per_node = 16;
  m.smt_per_core = 1;
  m.core_peak_gflops = 21.6;
  m.advance_gflops_per_core = 3.7;  // Table 9, 512 cores
  m.fft_gflops_per_core = 4.3;
  m.mem_bw_node = 68e9;
  m.latency = 1.3e-6;
  m.a2a_bw = 3.1e9;       // Table 9, 512 cores
  m.a2a_node_exp = 0.23;  // oversubscribed spine (Table 9 falloff)
  m.nic_bw = 6.8e9;
  m.link_bw = 6.8e9;
  m.fat_tree_oversub = 4.0;
  m.total_nodes = 6400;
  return m;
}

machine machine::blue_waters() {
  machine m;
  m.name = "Blue Waters (XE6 + Gemini)";
  m.topo = topology::torus3d;
  m.cores_per_node = 16;  // Bulldozer modules, as the paper counts them
  m.smt_per_core = 2;
  m.core_peak_gflops = 18.4;
  m.advance_gflops_per_core = 1.8;  // Table 9, 2048 cores
  m.fft_gflops_per_core = 2.0;
  m.mem_bw_node = 55e9;
  m.latency = 1.6e-6;
  m.a2a_bw = 1.57e9;     // Table 9, 2048 cores
  m.a2a_node_exp = 0.7;  // Gemini collapse (Table 9: 22.7% at 16K cores)
  m.nic_bw = 6e9;
  m.link_bw = 2.9e9;
  m.total_nodes = 22640;
  return m;
}

machine machine::gpu_fattree_2026() {
  machine m;
  m.name = "GPU fat-tree (2026, NVL-island nodes)";
  m.topo = topology::fat_tree;
  // One "core" is one GPU: 4 per node, 18-node (72-GPU) NVLink islands.
  m.cores_per_node = 4;
  m.smt_per_core = 1;
  m.core_peak_gflops = 45000;  // ~45 TF FP64 per GPU
  // Both kernels stay HBM-bound: ~8 TB/s per GPU, transform arithmetic
  // intensity comparable to the CPU machines' — effective rates scale
  // with memory bandwidth, not peak.
  m.advance_gflops_per_core = 900;
  m.fft_gflops_per_core = 1300;
  m.mem_bw_node = 32e12;  // 4 x 8 TB/s HBM
  m.latency = 2.0e-6;     // network launch + wire; island hops are cheaper
                          // but the per-message model keeps one figure
  // Rail-optimized 400G NIC per GPU: 4 x 50 GB/s per node, ~60% effective
  // in a full alltoall; a well-provisioned two-level fat tree decays
  // slowly with partition size.
  m.a2a_bw = 1.2e11;
  m.a2a_node_exp = 0.08;
  // Task-count contention sets in near full-machine per-GPU ranking.
  m.cont_amp = 0.35;
  m.task_sat = 6.0e5;
  m.node_sat = 2.0e5;
  m.nic_bw = 2e11;    // 4 x 50 GB/s
  m.link_bw = 5e10;
  m.fat_tree_oversub = 2.0;
  m.total_nodes = 262144;  // ~10^6 GPUs at 4 per node
  // NVLink island: 72 GPUs, ~1.8 TB/s injection per GPU through the
  // island switch.
  m.island_size = 72;
  m.island_bw = 1.8e12;
  // Per-dimension contention: many concurrent sub-communicator exchanges
  // collide on the inter-island spine once ~hundreds of groups are in
  // flight.
  m.link_cont_amp = 0.35;
  m.link_cont_sat = 256;
  return m;
}

}  // namespace pcf::netsim
