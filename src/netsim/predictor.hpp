// Performance predictor for the channel DNS on the modelled machines.
//
// Combines the DNS algorithm's exact operation counts (transpose bytes,
// FFT flops, time-advance flops — the same quantities our instrumented
// kernels count) with the machine models to predict the per-section times
// of Tables 5, 6, 9, 10 and 11. Absolute seconds are approximate; the
// reproduced claims are the *shapes*: who wins, where efficiency falls
// off, which communicator split is fastest, and when hybrid beats MPI.
#pragma once

#include <cstddef>

#include "netsim/machine.hpp"

namespace pcf::netsim {

/// How the code is launched (paper Section 5: "MPI" = one rank per core,
/// "Hybrid" = one rank per node with threads).
struct job_config {
  std::size_t nx = 0, ny = 0, nz = 0;  // spectral grid
  long cores = 0;
  int ranks_per_node = 0;  // 0 = one rank per core
  long pa = 0, pb = 0;     // 0 = auto (CommB localized to the node)
  bool dealias = true;     // 3/2-rule padding carried in z/x lines
  bool drop_nyquist = true;
  bool threaded = true;    // on-node threading of FFT + reorder (custom
                           // kernel); false reproduces P3DFFT's behavior
  double buffer_factor = 1.0;  // extra reorder traffic (P3DFFT: 3x buffers)
  // Per-peer software overhead in each alltoall. The customized kernel
  // aggregates its exchanges (default ~0); P3DFFT's unaggregated per-rank
  // messaging pays a visible per-peer cost at large task counts (the
  // Table 6 collapse on Lonestar/Stampede).
  double per_peer_overhead = 0.0;
};

struct section_times {
  double comm = 0.0;     // alltoall exchanges
  double reorder = 0.0;  // on-node pack/unpack
  double fft = 0.0;
  double advance = 0.0;  // N-S time advance (implicit solves)
  [[nodiscard]] double transpose() const { return comm + reorder; }
  [[nodiscard]] double total() const { return comm + reorder + fft + advance; }
};

/// Decompositions the predictor can cost. Mirrors pcf::pencil::
/// decomposition (netsim links only pcf_util, so it cannot include the
/// pencil header); bench_decomp_crossover keeps the two aligned.
enum class decomp_kind { pencil2d, slab, hybrid_25d };

[[nodiscard]] const char* to_string(decomp_kind k);

/// Per-timestep prediction of one decomposition at one rank count.
struct decomp_times {
  decomp_kind kind = decomp_kind::pencil2d;
  long pa = 0, pb = 0;  // resolved process grid (pa = replica count c
                        // for the 2.5D layout)
  bool valid = false;   // false: the layout cannot run at this rank count
  section_times t;
};

class predictor {
 public:
  explicit predictor(machine m) : m_(std::move(m)) {}

  [[nodiscard]] const machine& mach() const { return m_; }

  /// Resolve the process grid: ranks, pa, pb (CommB local to a node where
  /// possible, following Table 5's conclusion).
  void resolve(const job_config& j, long& ranks, long& pa, long& pb) const;

  /// Time of one alltoall over a sub-communicator.
  /// @param p                communicator size (ranks)
  /// @param bytes            total bytes exchanged across ONE communicator
  /// @param ranks_per_node   ranks of this communicator sharing a node
  /// @param total_tasks      MPI tasks in the whole job (contention)
  /// @param concurrent_groups how many such sub-communicators exchange at
  ///                          once (they share the network)
  /// @param total_nodes      nodes of the whole job (bandwidth decay)
  /// @param per_peer_overhead software cost per peer per exchange
  [[nodiscard]] double alltoall_time(long p, double bytes,
                                     double ranks_per_node, long total_tasks,
                                     long concurrent_groups,
                                     double total_nodes,
                                     double per_peer_overhead = 0.0) const;

  /// Full RK3 timestep (3 substeps, 8 field passes each) — Tables 9/10.
  [[nodiscard]] section_times timestep(const job_config& j) const;

  /// Per-timestep sections under an explicit decomposition. The slab
  /// layout (pa = 1) runs one global y<->z exchange and elides the z<->x
  /// one entirely; the 2.5D hybrid (pa = c replica groups) trades the big
  /// dealiased z<->x network exchange for a radix-c exchange that lands on
  /// the NVLink island when c <= machine::island_size. Sub-communicator
  /// fan-out pays the machine's per-dimension link contention. replica_c
  /// picks the 2.5D c (0 = the c with the lowest predicted comm time);
  /// ignored for the other kinds. `valid` is false when the layout cannot
  /// run: slab needs ranks <= min(ny, nz), 2.5D needs a divisor c with
  /// ranks / c <= min(ny, nz).
  [[nodiscard]] decomp_times timestep_decomp(const job_config& j,
                                             decomp_kind k,
                                             long replica_c = 0) const;

  /// The fastest valid decomposition for this job (ties go to the earlier
  /// enum value, i.e. pencil).
  [[nodiscard]] decomp_times fastest_decomp(const job_config& j) const;

  /// One transpose cycle (x->z->y then y->z->x) for three velocity fields,
  /// communication only — Table 5.
  [[nodiscard]] double transpose_cycle(const job_config& j) const;

  /// One parallel-FFT benchmark cycle as in Table 6: four transposes and
  /// four 1-D transform sets (the FFT after the last transpose skipped),
  /// no dealiasing.
  [[nodiscard]] double pfft_cycle(const job_config& j) const;

  /// Effective per-node memory bandwidth when `threads` threads stream
  /// (the Table 4 saturation curve).
  [[nodiscard]] double reorder_bandwidth(int threads) const;

 private:
  struct workload;  // internal derived sizes

  /// Section times of a timestep on an explicit pa x pb grid. island_a:
  /// the CommA (radix-pa) exchange is island-placed (2.5D replica groups).
  [[nodiscard]] section_times decomp_sections(const job_config& j, long pa,
                                              long pb, bool island_a) const;

  machine m_;
};

}  // namespace pcf::netsim
