// Machine models of the paper's four benchmark systems (Section 3).
//
// The real machines are petascale installations we cannot run on; these
// models capture the parameters the paper's analysis says control
// performance — effective per-core compute rates of the two memory-bound
// kernels (Table 2), per-node memory bandwidth and its thread-saturation
// curve (Table 4), effective per-node alltoall bandwidth and how it decays
// with partition size (5-D torus vs 3-D torus vs fat-tree), and the
// contention that sets in when too many MPI tasks (or too many nodes)
// drive the interconnect at once (Section 5.3). The compute rates and
// alltoall bandwidths are calibrated against the paper's own Tables 9/10
// entries at the smallest core counts; the *scaling* behaviour then comes
// from the model, and reproducing the rest of each table is the test.
#pragma once

#include <string>

namespace pcf::netsim {

enum class topology {
  torus5d,   // BG/Q (Mira)
  torus3d,   // Cray Gemini (Blue Waters)
  fat_tree,  // InfiniBand clusters (Lonestar QDR, Stampede FDR)
};

struct machine {
  std::string name;
  topology topo = topology::fat_tree;

  int cores_per_node = 16;
  int smt_per_core = 1;          // hardware threads per core
  double core_peak_gflops = 10;  // theoretical per core

  // Effective per-core compute rates (memory-bandwidth-bound; paper
  // Table 2: the N-S advance runs at ~9% of peak on BG/Q).
  double fft_gflops_per_core = 1.0;
  double advance_gflops_per_core = 1.0;

  double mem_bw_node = 28.8e9;  // STREAM-like bytes/s per node
  double latency = 2.5e-6;      // per-message software+wire latency, s

  // Effective per-node alltoall bandwidth at a 64-node partition, and how
  // it decays with partition size: bw(N) = a2a_bw * (64 / N)^a2a_node_exp.
  // The 5-D torus barely decays (exp ~ 0); Gemini decays hard (the
  // Blue Waters collapse of Table 9).
  double a2a_bw = 2e9;
  double a2a_node_exp = 0.0;

  // Half-utilization message size: an exchange with per-pair messages of m
  // bytes runs at a2a_bw * m / (m + msg_half); 0 disables the effect.
  // The calibrated models keep this at 0 (message-count contention is
  // carried by the task/node sigmoids instead, to avoid double counting);
  // it is available for what-if studies with the scaling_explorer example.
  double msg_half = 0.0;

  // Contention (Section 5.3): the alltoall time is multiplied by
  //   max(1 + amp * sig(tasks / task_sat), 1 + amp * sig(nodes / node_sat))
  // with sig(x) = x^4 / (1 + x^4) — a sharp onset once either the MPI task
  // count (per-core ranks) or the partition size (hybrid at full machine)
  // saturates the interconnect.
  double cont_amp = 0.0;
  double task_sat = 1e9;
  double node_sat = 1e9;

  // Descriptive link/NIC figures (used by documentation and tests).
  double nic_bw = 10e9;
  double link_bw = 2e9;
  double fat_tree_oversub = 2.0;
  long total_nodes = 49152;

  // 2026 GPU-node extensions. An NVLink island is a rack-scale switched
  // NVLink domain (NVL72-style): `island_size` ranks exchange at
  // `island_bw` bytes/s per rank without touching the inter-island
  // network. island_size = 1 (the paper-era machines) disables the path.
  int island_size = 1;
  double island_bw = 0.0;
  // Per-dimension link contention: when `groups` sub-communicators of one
  // transpose dimension drive the network concurrently, each sees
  //   1 + link_cont_amp * sig4(groups / link_cont_sat)
  // on top of the shared-bandwidth division the predictor already does.
  double link_cont_amp = 0.0;
  double link_cont_sat = 1e9;

  /// Effective alltoall bandwidth per node for a partition of `nodes`.
  [[nodiscard]] double alltoall_bw(double nodes) const;

  /// Contention multiplier for a job with the given task and node counts.
  [[nodiscard]] double contention(double tasks, double nodes) const;

  /// Per-dimension link-contention multiplier for `groups` concurrent
  /// sub-communicator exchanges (1.0 on the paper-era machines).
  [[nodiscard]] double link_contention(double groups) const;

  /// Bisection bandwidth available per participating node (descriptive
  /// topology comparison; the predictor uses alltoall_bw()).
  [[nodiscard]] double bisection_per_node(double nodes) const;

  // The four benchmark systems.
  static machine mira();
  static machine lonestar();
  static machine stampede();
  static machine blue_waters();

  /// A modeled 2026 GPU machine: fat-tree of NVLink-island nodes (4 GPUs
  /// per node, 18-node / 72-GPU islands), rail-optimized 400G NICs. Not a
  /// paper system — the hardware target of the decomposition-crossover
  /// study (bench_decomp_crossover).
  static machine gpu_fattree_2026();
};

}  // namespace pcf::netsim
