#include "netsim/predictor.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace pcf::netsim {

namespace {
constexpr double kCplx = 16.0;  // bytes per complex<double>

double log2d(double v) { return std::log(v) / std::log(2.0); }
}  // namespace

/// Algorithmic workload of one spectral <-> physical pass.
struct predictor::workload {
  double nxh, nxf, nzf, ny, modes;
  double yz_bytes;  // one y<->z exchange, total over CommB
  double zx_bytes;  // one z<->x exchange, total over CommA
  double zfft_flops, xfft_flops;

  workload(const job_config& j) {
    nxh = 0.5 * static_cast<double>(j.nx) + (j.drop_nyquist ? 0.0 : 1.0);
    nxf = j.dealias ? 1.5 * static_cast<double>(j.nx)
                    : static_cast<double>(j.nx);
    nzf = j.dealias ? 1.5 * static_cast<double>(j.nz)
                    : static_cast<double>(j.nz);
    ny = static_cast<double>(j.ny);
    modes = nxh * static_cast<double>(j.nz);
    yz_bytes = kCplx * nxh * static_cast<double>(j.nz) * ny;
    zx_bytes = kCplx * nxh * ny * nzf;
    zfft_flops = nxh * ny * 5.0 * nzf * log2d(nzf);
    xfft_flops = nzf * ny * 2.5 * nxf * log2d(nxf);
  }
};

void predictor::resolve(const job_config& j, long& ranks, long& pa,
                        long& pb) const {
  PCF_REQUIRE(j.cores > 0, "job needs cores");
  const int rpn = j.ranks_per_node > 0 ? j.ranks_per_node : m_.cores_per_node;
  const long nodes = std::max<long>(1, j.cores / m_.cores_per_node);
  ranks = std::max<long>(1, nodes * rpn);
  if (j.pa > 0 && j.pb > 0) {
    PCF_REQUIRE(j.pa * j.pb == ranks, "pa * pb must equal rank count");
    pa = j.pa;
    pb = j.pb;
    return;
  }
  // Localize CommB to a node (Table 5's fastest split).
  pb = std::min<long>(ranks, std::max(1, rpn));
  pa = ranks / pb;
}

double predictor::reorder_bandwidth(int threads) const {
  // Table 4: DDR traffic saturates near 90% of STREAM at ~half the cores
  // and then degrades slightly from contention; a single thread drives
  // only ~10% of the node's bandwidth.
  const double frac = std::min(0.90, 0.105 * static_cast<double>(threads));
  return m_.mem_bw_node * std::max(0.105, frac);
}

double predictor::alltoall_time(long p, double bytes, double ranks_per_node,
                                long total_tasks, long concurrent_groups,
                                double total_nodes,
                                double per_peer_overhead) const {
  if (p <= 1 || bytes <= 0.0) return 0.0;
  const double nodes_in_comm =
      std::max(1.0, static_cast<double>(p) / std::max(1.0, ranks_per_node));
  if (nodes_in_comm <= 1.0) {
    // Node-local exchange (Table 5's fastest split): data moves through
    // the memory system once out and once in, no network involved.
    return 2.0 * bytes / m_.mem_bw_node;
  }
  total_nodes = std::max(total_nodes, nodes_in_comm);
  const double off_frac =
      1.0 - std::max(1.0, ranks_per_node) / static_cast<double>(p);
  // All concurrent sub-communicators exchange together over the job's
  // nodes at the partition's effective alltoall bandwidth; a wider CommB
  // spread (larger nodes_in_comm for the contiguous communicator) moves
  // more traffic onto long routes — captured by the off-node fraction.
  const double all_bytes =
      bytes * static_cast<double>(concurrent_groups) * off_frac;
  // Per-pair message size governs bandwidth utilization: many small
  // messages (per-core MPI at scale) waste the network.
  const double msg = bytes / (static_cast<double>(p) * static_cast<double>(p));
  const double msg_eff = m_.msg_half > 0.0 ? msg / (msg + m_.msg_half) : 1.0;
  const double t_net =
      all_bytes / (total_nodes * m_.alltoall_bw(total_nodes) * msg_eff);
  const double cont =
      m_.contention(static_cast<double>(total_tasks), total_nodes);
  // Optimized alltoall algorithms amortize the per-round latency at large
  // communicator sizes (BG/Q's collectives are hardware-assisted), so the
  // latency rounds saturate; P3DFFT-style unaggregated per-peer messaging
  // (per_peer_overhead) does not amortize.
  const double rounds = std::min(static_cast<double>(p - 1), 2000.0);
  const double t_lat = rounds * m_.latency +
                       static_cast<double>(p - 1) * per_peer_overhead;
  return t_net * cont + t_lat;
}

section_times predictor::timestep(const job_config& j) const {
  workload w(j);
  long ranks, pa, pb;
  resolve(j, ranks, pa, pb);
  const int rpn = j.ranks_per_node > 0 ? j.ranks_per_node : m_.cores_per_node;
  const long nodes = std::max<long>(1, j.cores / m_.cores_per_node);
  const double cores = static_cast<double>(j.cores);

  // Ranks of each sub-communicator co-resident on one node. CommB groups
  // contiguous ranks; CommA groups ranks strided by pb.
  const double rpn_b = std::min<double>(static_cast<double>(pb), rpn);
  const double rpn_a = std::max(1.0, static_cast<double>(rpn) / pb);

  section_times t;

  // --- communication: 3 substeps x 8 passes x (CommB + CommA exchange).
  const double passes = 3.0 * 8.0;
  const double per_b = w.yz_bytes / pa;  // bytes within ONE CommB group
  const double per_a = w.zx_bytes / pb;
  const double dn = static_cast<double>(nodes);
  t.comm = passes * (alltoall_time(pb, per_b, rpn_b, ranks, pa, dn, j.per_peer_overhead) +
                     alltoall_time(pa, per_a, rpn_a, ranks, pb, dn, j.per_peer_overhead));

  // --- on-node reorder: pack+unpack on both sides of both exchanges.
  // Streams per node: all cores when the reorder is threaded, otherwise
  // one stream per resident MPI rank.
  const int rthreads = j.threaded ? m_.cores_per_node : rpn;
  const double reorder_bytes =
      passes * 2.0 * 2.0 * (w.yz_bytes + w.zx_bytes) * j.buffer_factor;
  t.reorder = reorder_bytes / (static_cast<double>(nodes) *
                               reorder_bandwidth(rthreads));

  // --- FFTs: memory-bound; large x lines fall out of cache (the paper's
  // weak-scaling observation), degrading the effective rate. Both launch
  // modes in Tables 9/10 thread the FFT kernel, so the rate is the same.
  const double cache_penalty =
      1.0 + 0.20 * std::max(0.0, log2d(w.nxf) - 13.0);
  const double fft_rate = cores * m_.fft_gflops_per_core * 1e9 / cache_penalty;
  t.fft = 3.0 * 8.0 * (w.zfft_flops + w.xfft_flops) / fft_rate;

  // --- N-S time advance: banded factor+solves per mode, embarrassingly
  // parallel, memory-bandwidth-bound at the Table 2 rate.
  const double adv_flops_per_substep = 2000.0 * w.modes * w.ny;
  t.advance = 3.0 * adv_flops_per_substep /
              (cores * m_.advance_gflops_per_core * 1e9);
  return t;
}

const char* to_string(decomp_kind k) {
  switch (k) {
    case decomp_kind::pencil2d: return "pencil2d";
    case decomp_kind::slab: return "slab";
    case decomp_kind::hybrid_25d: return "hybrid_25d";
  }
  return "?";
}

section_times predictor::decomp_sections(const job_config& j, long pa,
                                         long pb, bool island_a) const {
  // Reorder / FFT / advance do not depend on the process grid; reuse the
  // calibrated timestep model and replace only the communication term.
  section_times t = timestep(j);

  workload w(j);
  const long ranks = pa * pb;
  const int rpn = j.ranks_per_node > 0 ? j.ranks_per_node : m_.cores_per_node;
  const long nodes = std::max<long>(1, j.cores / m_.cores_per_node);
  const double dn = static_cast<double>(nodes);
  const double passes = 3.0 * 8.0;

  // CommB (y<->z): pb ranks per group, pa groups exchanging concurrently.
  double tb = 0.0;
  if (pb > 1) {
    const double rpn_b = std::min<double>(static_cast<double>(pb), rpn);
    tb = alltoall_time(pb, w.yz_bytes / pa, rpn_b, ranks, pa, dn,
                       j.per_peer_overhead);
    if (static_cast<double>(pb) > rpn_b) tb *= m_.link_contention(pa);
  }

  // CommA (z<->x, the dealiased 1.5x exchange): pa ranks per group, pb
  // groups concurrent. A 2.5D replica group that fits inside one NVLink
  // island but not on one node exchanges at the island switch: each of
  // the pa ranks injects at island_bw, once out and once in.
  double ta = 0.0;
  if (pa > 1) {
    const double rpn_a = std::max(1.0, static_cast<double>(rpn) / pb);
    const double per_a = w.zx_bytes / pb;
    if (island_a && pa > rpn_a && pa <= m_.island_size && m_.island_bw > 0.0) {
      ta = 2.0 * per_a / (static_cast<double>(pa) * m_.island_bw);
    } else {
      ta = alltoall_time(pa, per_a, rpn_a, ranks, pb, dn,
                         j.per_peer_overhead);
      if (static_cast<double>(pa) > rpn_a) ta *= m_.link_contention(pb);
    }
  }

  t.comm = passes * (tb + ta);
  return t;
}

decomp_times predictor::timestep_decomp(const job_config& j, decomp_kind k,
                                        long replica_c) const {
  decomp_times r;
  r.kind = k;
  long ranks, pa0, pb0;
  resolve(j, ranks, pa0, pb0);
  const long row_max =
      static_cast<long>(std::min<std::size_t>(j.ny, j.nz));

  switch (k) {
    case decomp_kind::pencil2d:
      r.pa = pa0;
      r.pb = pb0;
      r.valid = true;
      break;
    case decomp_kind::slab:
      // One rank per y-slab on the spectral side, z-slab on the physical
      // side: runnable only while every rank still owns at least one row.
      if (ranks > row_max) return r;
      r.pa = 1;
      r.pb = ranks;
      r.valid = true;
      break;
    case decomp_kind::hybrid_25d: {
      const workload w(j);
      const long cmax = std::min<long>(
          static_cast<long>(w.nxh), static_cast<long>(j.nz));
      auto c_ok = [&](long c) {
        return c >= 2 && c <= cmax && ranks % c == 0 &&
               ranks / c <= row_max;
      };
      if (replica_c > 0) {
        if (!c_ok(replica_c)) return r;
        r.pa = replica_c;
      } else {
        // Pick the replica count with the lowest predicted comm time.
        double best = 0.0;
        for (long c = 2; c <= std::min<long>(cmax, ranks); ++c) {
          if (!c_ok(c)) continue;
          const double comm =
              decomp_sections(j, c, ranks / c, true).comm;
          if (r.pa == 0 || comm < best) {
            r.pa = c;
            best = comm;
          }
        }
        if (r.pa == 0) return r;  // no valid replica count
      }
      r.pb = ranks / r.pa;
      r.valid = true;
      break;
    }
  }
  r.t = decomp_sections(j, r.pa, r.pb, k == decomp_kind::hybrid_25d);
  return r;
}

decomp_times predictor::fastest_decomp(const job_config& j) const {
  decomp_times best;
  for (decomp_kind k : {decomp_kind::pencil2d, decomp_kind::slab,
                        decomp_kind::hybrid_25d}) {
    decomp_times r = timestep_decomp(j, k);
    if (!r.valid) continue;
    if (!best.valid || r.t.total() < best.t.total()) best = r;
  }
  return best;
}

double predictor::transpose_cycle(const job_config& j) const {
  workload w(j);
  long ranks, pa, pb;
  resolve(j, ranks, pa, pb);
  const int rpn = j.ranks_per_node > 0 ? j.ranks_per_node : m_.cores_per_node;
  const double rpn_b = std::min<double>(static_cast<double>(pb), rpn);
  const double rpn_a = std::max(1.0, static_cast<double>(rpn) / pb);
  // Three velocity fields, both directions (x->z->y then y->z->x):
  // 2 CommB exchanges + 2 CommA exchanges per field.
  const long nodes = std::max<long>(1, j.cores / m_.cores_per_node);
  const double dn = static_cast<double>(nodes);
  const double per_b = w.yz_bytes / pa;
  const double per_a = w.zx_bytes / pb;
  return 3.0 * 2.0 *
         (alltoall_time(pb, per_b, rpn_b, ranks, pa, dn, j.per_peer_overhead) +
          alltoall_time(pa, per_a, rpn_a, ranks, pb, dn, j.per_peer_overhead));
}

double predictor::pfft_cycle(const job_config& j) const {
  workload w(j);
  long ranks, pa, pb;
  resolve(j, ranks, pa, pb);
  const int rpn = j.ranks_per_node > 0 ? j.ranks_per_node : m_.cores_per_node;
  const long nodes = std::max<long>(1, j.cores / m_.cores_per_node);
  const double cores = static_cast<double>(j.cores);
  const double rpn_b = std::min<double>(static_cast<double>(pb), rpn);
  const double rpn_a = std::max(1.0, static_cast<double>(rpn) / pb);

  // Four transposes (two per direction) and four 1-D FFT sets; the final
  // (y-direction) work is linear algebra in the DNS and skipped here.
  const double dn = static_cast<double>(nodes);
  const double per_b = w.yz_bytes / pa;
  const double per_a = w.zx_bytes / pb;
  const double comm = 2.0 * (alltoall_time(pb, per_b, rpn_b, ranks, pa, dn, j.per_peer_overhead) +
                             alltoall_time(pa, per_a, rpn_a, ranks, pb, dn, j.per_peer_overhead));

  const int rthreads = j.threaded ? m_.cores_per_node : rpn;
  const double reorder_bytes =
      4.0 * 2.0 * (w.yz_bytes + w.zx_bytes) / 2.0 * j.buffer_factor;
  const double reorder = reorder_bytes / (static_cast<double>(nodes) *
                                          reorder_bandwidth(rthreads));

  const double cache_penalty =
      1.0 + 0.20 * std::max(0.0, log2d(w.nxf) - 13.0);
  // Threading interacts with SMT (paper Table 3): on BG/Q four hardware
  // threads per core give ~2.2x per-core throughput, which an unthreaded
  // per-core-rank code (P3DFFT) cannot exploit; on single-SMT machines
  // threading instead costs a little synchronization overhead.
  double thread_rate;
  if (j.threaded)
    thread_rate = m_.smt_per_core > 1 ? 1.0 : 0.78;
  else
    thread_rate = m_.smt_per_core > 1
                      ? 1.0 / (1.0 + 0.39 * (m_.smt_per_core - 1))
                      : 1.0;
  const double fft_rate =
      cores * m_.fft_gflops_per_core * 1e9 * thread_rate / cache_penalty;
  const double fft = 2.0 * (w.zfft_flops + w.xfft_flops) / fft_rate;
  return comm + reorder + fft;
}

}  // namespace pcf::netsim
