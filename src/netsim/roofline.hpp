// Roofline projection: turn the instrumented flop/byte counts of a kernel
// (util/counters) into a predicted execution time on a modelled machine —
// the formal version of the paper's Table 2 analysis ("the limiting
// on-node hardware resource is memory bandwidth").
#pragma once

#include "netsim/machine.hpp"
#include "util/counters.hpp"

namespace pcf::netsim {

struct roofline_estimate {
  double seconds = 0.0;
  double gflops = 0.0;          // achieved flop rate at that time
  double intensity = 0.0;       // flops per byte
  bool memory_bound = false;    // which roof binds
  double peak_fraction = 0.0;   // achieved / peak flops
};

/// Project `counts` onto `cores` cores of one node of machine `m`
/// (cores <= m.cores_per_node). Compute roof: cores * core_peak_gflops;
/// memory roof: the node's STREAM bandwidth scaled by the thread
/// saturation curve of Table 4.
roofline_estimate project(const machine& m, const op_counts& counts,
                          int cores = 1);

}  // namespace pcf::netsim
