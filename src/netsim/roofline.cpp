#include "netsim/roofline.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace pcf::netsim {

roofline_estimate project(const machine& m, const op_counts& counts,
                          int cores) {
  PCF_REQUIRE(cores >= 1 && cores <= m.cores_per_node,
              "roofline projection is per node");
  const double flops = static_cast<double>(counts.flops);
  const double bytes =
      static_cast<double>(counts.bytes_read + counts.bytes_written);
  const double flop_roof = cores * m.core_peak_gflops * 1e9;
  // Memory roof: same thread-saturation curve as the reorder model.
  const double frac =
      std::max(0.105, std::min(0.90, 0.105 * static_cast<double>(cores)));
  const double mem_roof = m.mem_bw_node * frac;

  roofline_estimate e;
  const double t_flops = flops / flop_roof;
  const double t_bytes = bytes / mem_roof;
  e.seconds = std::max(t_flops, t_bytes);
  e.memory_bound = t_bytes >= t_flops;
  e.gflops = e.seconds > 0.0 ? flops / e.seconds / 1e9 : 0.0;
  e.intensity = bytes > 0.0 ? flops / bytes : 0.0;
  e.peak_fraction = flop_roof > 0.0 ? e.gflops * 1e9 / flop_roof : 0.0;
  return e;
}

}  // namespace pcf::netsim
