// 2-D pencil decomposition and the customized parallel FFT kernel
// (paper Sections 2.2-2.3 and 4.3-4.4).
//
// Global data is a spectral field with nxh = nx/2 retained streamwise
// Fourier modes (the Nyquist mode is dropped — one of the customized
// kernel's advantages over P3DFFT), ny wall-normal points and nz spanwise
// modes, distributed over a P_A x P_B process grid:
//
//   y-pencils: [x-block(P_A)][z-block(P_B)][ny]      (y contiguous)
//   z-pencils: [x-block(P_A)][y-block(P_B)][nzp]     (z contiguous)
//   x-pencils: [zp-block(P_A)][y-block(P_B)][...x]   (x contiguous)
//
// The spectral -> physical path is: y->z transpose (CommB), 3/2 pad + z
// inverse FFT, z->x transpose (CommA), 3/2 pad + c2r FFT. The 3/2-rule
// padding/truncation is fused into the transpose unpack/pack, as in the
// paper. Physical grid is nxp = 3nx/2 by nzp = 3nz/2 (per y point).
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "fft/fft.hpp"
#include "util/timer.hpp"
#include "util/workspace.hpp"
#include "vmpi/vmpi.hpp"

namespace pcf::pencil {

using cplx = std::complex<double>;

/// Block distribution of n items over p ranks (remainder spread over the
/// first n % p ranks).
struct block {
  std::size_t offset = 0;
  std::size_t count = 0;
};
block block_range(std::size_t n, int p, int r);

/// Global grid extents (spectral sizes; nx = full streamwise modes before
/// the Nyquist drop, must be divisible by 4; nz must be even).
struct grid {
  std::size_t nx = 0;
  std::size_t ny = 0;
  std::size_t nz = 0;

  [[nodiscard]] std::size_t nxh() const { return nx / 2; }       // modes kept
  [[nodiscard]] std::size_t nxp() const { return 3 * nx / 2; }   // phys x
  [[nodiscard]] std::size_t nzp() const { return 3 * nz / 2; }   // phys z
};

/// How each global exchange is executed. The paper (Section 4.3) relies on
/// FFTW 3.3's transpose planner, which times several implementations
/// (MPI_Alltoall, MPI_Sendrecv rounds, ...) and keeps the fastest;
/// `auto_plan` reproduces that: both strategies are timed on a dummy
/// exchange at construction and the winner is used for production.
enum class exchange_strategy {
  auto_plan,  // measure both at plan time, keep the faster
  alltoall,   // one alltoallv per transpose
  pairwise,   // P-1 rounds of pairwise sendrecv exchanges
};

/// Kernel configuration. The defaults are the paper's customized kernel;
/// `p3dfft_mode()` reproduces P3DFFT 2.5.1's implementation choices for the
/// Table 6 comparison.
struct kernel_config {
  bool drop_nyquist = true;   // don't store/transpose the x Nyquist mode
  bool dealias = true;        // fuse 3/2 pad/truncate into the transposes
  int fft_threads = 1;        // threads for FFT + pad/truncate blocks
  int reorder_threads = 1;    // threads for pack/unpack (on-node reorder)
  exchange_strategy strategy = exchange_strategy::alltoall;
  // Fields aggregated into one exchange by the *_batch entry points; the
  // ping-pong workspaces grow by this factor. 1 keeps the seed footprint.
  int max_batch = 1;
  // > 1 splits each batch into up to this many field groups and overlaps
  // the exchange of group k with the FFT/reorder of its neighbours on a
  // dedicated comm thread (vmpi::async_proxy). 1 = fully synchronous.
  int pipeline_depth = 1;
  // Per-communicator strategy overrides (CommA = z<->x, CommB = y<->z).
  // auto_plan here means "inherit `strategy`"; the autotuner writes the
  // measured winners through these so construction skips re-measuring.
  exchange_strategy strategy_a = exchange_strategy::auto_plan;
  exchange_strategy strategy_b = exchange_strategy::auto_plan;

  static kernel_config p3dfft_mode() {
    return kernel_config{false, false, 1, 1, exchange_strategy::alltoall};
  }
};

/// Cumulative counters for the batched transform path of one parallel_fft
/// instance (single-field calls count as batches of 1).
struct batch_stats {
  std::uint64_t transforms = 0;      // batch API entries
  std::uint64_t fields = 0;          // fields across those entries
  std::uint64_t exchanges = 0;       // aggregated transpose exchanges issued
  std::uint64_t reorder_calls = 0;   // fused pack/unpack kernel invocations
  std::uint64_t reorder_fields = 0;  // fields across those invocations
};

/// Per-rank decomposition bookkeeping.
struct decomp {
  decomp(const grid& g, const kernel_config& cfg, int pa, int pb, int ca,
         int cb);

  grid g;
  int pa, pb;      // process grid
  int ca, cb;      // my coordinates
  std::size_t nxs; // spectral x modes carried (nxh or nxh+1 with Nyquist)
  std::size_t nxf; // physical x line length (nxp, or nx without dealiasing)
  std::size_t nzf; // physical z line length (nzp, or nz without dealiasing)

  block xs;   // my spectral-x block (over P_A), y- and z-pencils
  block zs;   // my spectral-z block (over P_B), y-pencils
  block yb;   // my y block (over P_B), z- and x-pencils
  block zp;   // my physical-z block (over P_A), x-pencils

  [[nodiscard]] std::size_t y_pencil_elems() const {
    return xs.count * zs.count * g.ny;
  }
  [[nodiscard]] std::size_t z_pencil_elems() const {
    return xs.count * yb.count * nzf;
  }
  /// Complex modes per x line in x-pencils (input of the c2r transform).
  [[nodiscard]] std::size_t x_line_modes() const { return nxf / 2 + 1; }
  [[nodiscard]] std::size_t x_pencil_spec_elems() const {
    return zp.count * yb.count * x_line_modes();
  }
  [[nodiscard]] std::size_t x_pencil_real_elems() const {
    return zp.count * yb.count * nxf;
  }
};

/// Bytes of ping-pong transpose/FFT workspace one parallel_fft instance
/// needs for this decomposition and configuration (including per-buffer
/// alignment slack) — what to reserve on a workspace lane handed to the
/// borrowing constructor below.
[[nodiscard]] std::size_t transform_workspace_bytes(const decomp& d,
                                                    const kernel_config& cfg);

/// The parallel FFT kernel: spectral y-pencils <-> physical x-pencils.
/// Thread-unsafe per instance (owns buffers); each rank builds its own.
class parallel_fft {
 public:
  parallel_fft(const grid& g, vmpi::cart2d& cart, kernel_config cfg);
  /// Same kernel, but the transpose/FFT ping-pong buffers are checked out
  /// of `transform_ws` (permanently, construction-time) instead of owned —
  /// the simulation's field_workspace arena sizes them once via
  /// transform_workspace_bytes(). The lane must outlive this instance.
  parallel_fft(const grid& g, vmpi::cart2d& cart, kernel_config cfg,
               workspace_lane& transform_ws);
  ~parallel_fft();
  parallel_fft(const parallel_fft&) = delete;
  parallel_fft& operator=(const parallel_fft&) = delete;

  [[nodiscard]] const decomp& dec() const;
  [[nodiscard]] const kernel_config& config() const;

  /// Spectral (y-pencil, y_pencil_elems complex) -> physical (x-pencil,
  /// x_pencil_real_elems doubles).
  void to_physical(const cplx* spec, double* phys);

  /// Physical -> spectral, normalized so that a to_physical/to_spectral
  /// round trip is the identity.
  void to_spectral(const double* phys, cplx* spec);

  /// Batched transforms: move `nfields` independent fields through the
  /// pipeline together so every transpose stage runs ONE aggregated
  /// exchange carrying all fields (field-strided sub-blocks inside each
  /// per-rank segment) instead of one exchange per field. Fields beyond
  /// config().max_batch are processed in chunks of max_batch. With
  /// pipeline_depth > 1 the chunk is further split into field groups whose
  /// exchanges overlap neighbouring groups' FFT/reorder work. Results are
  /// bit-identical to nfields single-field calls in every mode.
  void to_physical_batch(const cplx* const* specs, double* const* phys,
                         std::size_t nfields);
  void to_spectral_batch(const double* const* phys, cplx* const* specs,
                         std::size_t nfields);

  /// Counters for the batched path (exchange aggregation, batch widths).
  [[nodiscard]] batch_stats batching() const;

  /// Internal workspace allocated (for the paper's 1x-vs-3x buffer claim).
  [[nodiscard]] std::size_t workspace_bytes() const;

  /// Re-check the ping-pong buffers out of the construction-time lane
  /// after its slab was released and reacquired (the simulation's
  /// suspend/resume cycle — the lane may sit on different pool blocks
  /// now). Only legal on lane-backed instances; the lane must be freshly
  /// reacquired with this kernel as its first checkout, which reproduces
  /// the construction-time offsets. Plans, counts and exchange strategies
  /// are untouched, so a rebind costs two bump allocations.
  void rebind_workspace();

  /// Exchange strategies actually in use for CommA / CommB (resolved from
  /// the configured strategy; auto_plan picks at construction).
  [[nodiscard]] exchange_strategy strategy_a() const;
  [[nodiscard]] exchange_strategy strategy_b() const;

  /// Section timers (accumulated across calls).
  [[nodiscard]] double comm_seconds() const;
  [[nodiscard]] double reorder_seconds() const;
  [[nodiscard]] double fft_seconds() const;
  void reset_timers();

 private:
  struct impl;
  std::unique_ptr<impl> impl_;
};

}  // namespace pcf::pencil
