// Comm-avoiding decomposition planning (ROADMAP item 4).
//
// The transpose kernel runs on a P_A x P_B process grid and pays one
// global exchange per grid dimension of size > 1. Three runnable layouts
// fall out of choosing that grid (Diez-Peeters-Costa, arXiv:2502.06296):
//
//   pencil2d    P_A x P_B as configured. Two global exchange stages per
//               transform direction (y<->z over CommB, z<->x over CommA).
//               Valid at any rank count; the only choice beyond
//               R > min(ny, nz) * min(nx/2, nz) ranks.
//   slab        1 x R. CommA has one rank, so the z<->x stage needs no
//               communication at all — the kernel forwards the packed
//               buffer straight into the unpack. One global exchange per
//               transform direction, valid while R <= min(ny, nz).
//   hybrid_25d  c x (R/c) with a small replica count c: R/c slabs
//               replicated into c groups. The y<->z exchange shrinks to
//               radix R/c inside each of the c slab groups (CommB), and
//               the second global exchange is replaced by one small
//               radix-c intra-group exchange (CommA — on a modern GPU
//               node, an NVLink-island exchange). Extends the slab regime
//               to R <= c * min(ny, nz).
//
// Every path reuses the identical pack/exchange/unpack/FFT machinery of
// parallel_fft and is bit-identical to pencil2d (the skipped exchanges are
// pure copies); only the rank layout and exchange structure change.
#pragma once

#include <vector>

#include "pencil/pencil.hpp"

namespace pcf::pencil {

/// Which process-grid layout carries the global transposes.
enum class decomposition {
  pencil2d,    // P_A x P_B as configured (the seed path)
  slab,        // 1 x R: one global exchange stage per transform direction
  hybrid_25d,  // c x (R/c): global slab exchange + small replica exchange
  tuned,       // measure the valid candidates and keep the fastest
};

[[nodiscard]] const char* to_string(decomposition d);

/// A runnable decomposition: the process-grid split a layout maps to.
struct decomp_plan {
  decomposition kind = decomposition::pencil2d;
  int pa = 1;
  int pb = 1;
  int replica_c = 1;  // 2.5D replica-group size (== pa there), 1 otherwise

  /// Global exchange stages with more than one rank per transform
  /// direction (the count the comm-avoiding paths exist to reduce).
  [[nodiscard]] int exchange_stages() const {
    return (pa > 1 ? 1 : 0) + (pb > 1 ? 1 : 0);
  }

  friend bool operator==(const decomp_plan&, const decomp_plan&) = default;
};

/// True when the 1-D slab layout leaves every rank a nonempty slab:
/// ranks <= min(ny, nz) (the y and z extents are both split over P_B = R).
[[nodiscard]] bool slab_ranks_valid(const grid& g, int ranks);

/// True when c x (ranks/c) leaves every block nonempty: c divides ranks,
/// c >= 2, ranks/c <= min(ny, nz) and c <= min(nx/2, nz) (the x-mode and
/// padded-z extents are split over P_A = c).
[[nodiscard]] bool hybrid_ranks_valid(const grid& g, int ranks, int c);

/// Smallest valid 2.5D replica count (>= 2) for this grid and rank count;
/// 0 when none exists. Smaller c means a smaller intra-group exchange, so
/// the minimum is the most comm-avoiding choice.
[[nodiscard]] int default_replica_c(const grid& g, int ranks);

/// Near-square default pencil split: pa is the largest divisor of `ranks`
/// with pa <= pb. Used when a tuned/automatic run has no configured
/// process grid (the config default 1 x 1 only covers a serial world).
void default_pencil_grid(int ranks, int& pa, int& pb);

/// Resolve a requested layout into a runnable plan. pa/pb are the
/// configured 2-D split (used by pencil2d and validated against `ranks`);
/// replica_c is the configured 2.5D group size, 0 for automatic. Throws
/// precondition_error when the layout is not runnable on this grid at
/// this rank count. `tuned` cannot be resolved here — the autotuner
/// measures the candidates below and picks.
[[nodiscard]] decomp_plan plan_decomposition(decomposition kind,
                                             const grid& g, int ranks, int pa,
                                             int pb, int replica_c);

/// Every runnable plan at this rank count, pencil2d (with the configured
/// pa x pb) always first — the autotuner's candidate set. Slab appears
/// when valid; 2.5D contributes the minimal replica count and, when
/// distinct and valid, its double (a NUMA/NVLink-island-sized group).
[[nodiscard]] std::vector<decomp_plan> decomposition_candidates(
    const grid& g, int ranks, int pa, int pb);

}  // namespace pcf::pencil
