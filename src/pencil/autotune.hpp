// Measured autotuning of the pencil transform kernel.
//
// The paper's kernel leans on FFTW 3.3's transpose planner, which times
// candidate exchange implementations at plan time and keeps the fastest
// (Section 4.3). This module extends that idea to the whole knob set the
// batched kernel exposes: {exchange strategy per communicator, batch width
// F, pipeline depth}, measured on the batch-scaled exchanges and the
// 3-down + 5-up field workload an RK3 substage actually runs. Timings are
// max-reduced across ranks before the (deterministic) argmin, so every
// rank picks the same configuration.
//
// Winners persist in a small versioned on-disk cache keyed by (grid,
// rank split, thread counts, batch ceiling, kernel flags). The cache is
// strictly advisory: a missing, truncated, CRC-mismatched or
// version-skewed file falls back to re-measurement with a warning — it
// can never abort a run. Writes go through io::atomic_file_writer, so a
// crash mid-store leaves the previous cache intact (and the store path
// honours io::fault_policy, which is how the fault tests drive it).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pencil/decomp.hpp"
#include "pencil/pencil.hpp"
#include "vmpi/vmpi.hpp"

namespace pcf::pencil {

/// Identity of one tuning measurement. Every field that changes the
/// measured exchange/compute shape is part of the key; a config change
/// therefore *invalidates* by missing, never by staleness.
struct tune_key {
  std::uint32_t nx = 0, ny = 0, nz = 0;  // spectral grid
  std::uint32_t pa = 0, pb = 0;          // process grid
  std::uint32_t fft_threads = 1;
  std::uint32_t reorder_threads = 1;
  std::uint32_t max_batch = 1;  // ceiling the tuner searches under
  std::uint32_t flags = 0;      // bit 0: drop_nyquist, bit 1: dealias
  // Requested decomposition layout (cache format v2): the decomposition
  // enum's value, and the configured 2.5D replica count (0 = automatic).
  // Transform-tuning entries use the defaults; decomposition-tuning
  // entries key under decomposition::tuned.
  std::uint32_t decomp_kind = 0;
  std::uint32_t replica_c = 0;

  friend bool operator==(const tune_key&, const tune_key&) = default;
};

/// The tuner's decision: what to run production with.
struct tune_choice {
  exchange_strategy strat_a = exchange_strategy::alltoall;  // CommA (z<->x)
  exchange_strategy strat_b = exchange_strategy::alltoall;  // CommB (y<->z)
  int batch = 1;           // aggregated-exchange width F
  int pipeline_depth = 1;  // comm/compute overlap groups
  // Resolved decomposition (cache format v2). Transform-tuning entries
  // leave pa = pb = 0; decomposition-tuning entries record the winning
  // layout and its concrete process grid here.
  decomposition decomp = decomposition::pencil2d;
  int pa = 0;
  int pb = 0;

  friend bool operator==(const tune_choice&, const tune_choice&) = default;
};

struct tune_entry {
  tune_key key;
  tune_choice choice;
};

struct tune_options {
  std::string cache_path;  // empty: measure always, persist nothing
  int reps = 3;            // timed reps per candidate (best-of)
  bool force_retune = false;  // ignore a cache hit (still stores)
};

/// What one autotune call did. `warnings` is populated on the rank that
/// touched the cache file (world rank 0); cache trouble lands there.
struct tune_report {
  tune_key key;
  tune_choice choice;
  bool from_cache = false;  // served without measuring (either cache tier)
  bool from_memo = false;   // ...specifically by the in-process memo
  bool stored = false;
  double per_field_s = 0.0;  // agreed time of the F=1/depth=1 baseline
  double chosen_s = 0.0;     // agreed time of the winning candidate
  struct candidate {
    int batch = 1;
    int pipeline_depth = 1;
    double seconds = 0.0;
  };
  std::vector<candidate> measured;  // empty on a cache hit
  std::vector<std::string> warnings;
};

/// The cache key for running `base` on this grid and process split.
/// `dk`/`replica_c` identify the *requested* decomposition (only
/// decomposition-tuning entries pass non-defaults).
[[nodiscard]] tune_key make_tune_key(const grid& g, const kernel_config& base,
                                     int pa, int pb,
                                     decomposition dk = decomposition::pencil2d,
                                     int replica_c = 0);

/// `base` with the tuner's decision applied (strategy overrides, batch
/// width and pipeline depth). The result constructs a parallel_fft that
/// re-measures nothing.
[[nodiscard]] kernel_config apply_tuning(kernel_config base,
                                         const tune_choice& choice);

/// Tune the transform configuration for (g, cart, base): consult the
/// cache, measure candidates on a cache miss, agree across ranks, persist
/// the winner. Collective over `world` (which must span cart's ranks).
[[nodiscard]] tune_report autotune_transforms(const grid& g,
                                              vmpi::communicator& world,
                                              vmpi::cart2d& cart,
                                              const kernel_config& base,
                                              const tune_options& opt);

/// What one decomposition-tuning call decided.
struct decomp_tune_report {
  tune_key key;
  decomp_plan plan;  // the layout to run production with
  bool from_cache = false;  // served without measuring (either cache tier)
  bool from_memo = false;   // ...specifically by the in-process memo
  bool stored = false;
  struct candidate {
    decomp_plan plan;
    double seconds = 0.0;  // agreed (max-over-ranks) substage time
  };
  std::vector<candidate> measured;  // empty on a cache hit
  std::vector<std::string> warnings;
};

/// Resolve `requested` into a concrete decomposition plan, measuring when
/// requested == tuned: every runnable candidate (pencil2d with the
/// configured pa x pb always included, so the tuned pick is never slower
/// than pencil *as measured*) runs the 3-down + 5-up RK3 substage workload
/// on its own temporary Cartesian split, timings are max-reduced, and the
/// strict-< argmin over the fixed candidate order picks identically on
/// every rank. The winner persists in the v2 tuning cache under a
/// decomposition::tuned key. Non-tuned requests validate and return
/// without measuring. Collective over `world`.
[[nodiscard]] decomp_tune_report autotune_decomposition(
    const grid& g, vmpi::communicator& world, decomposition requested, int pa,
    int pb, int replica_c, const kernel_config& base, const tune_options& opt);

// --- cache file access (exposed for tests and pre-seeding) -----------------

/// Parse the cache at `path`. Structural damage (truncation, bad magic,
/// version skew, CRC mismatch) appends a human-readable warning and
/// degrades to the valid prefix — a missing file is simply empty, and no
/// failure mode throws.
[[nodiscard]] std::vector<tune_entry> load_tuning_cache(
    const std::string& path, std::vector<std::string>* warnings = nullptr);

/// Atomically replace the cache at `path` with `entries` (temp + rename
/// via io::atomic_file_writer; io::fault_policy applies). Throws on I/O
/// failure — autotune_transforms catches and degrades to a warning.
void save_tuning_cache(const std::string& path,
                       const std::vector<tune_entry>& entries);

/// Find `key` in `entries`; nullptr if absent.
[[nodiscard]] const tune_entry* find_tuning_entry(
    const std::vector<tune_entry>& entries, const tune_key& key);

// --- in-process tuning memo ------------------------------------------------
//
// Concurrent simulations sharing one cache file (a campaign sweep) used to
// race the file's load-merge-store and re-measure identical configs. A
// process-wide memo keyed by (cache_path, tune_key) now fronts the file:
// the first caller of a key measures while later callers of the same key
// block until the choice is published, and file writes serialize through a
// per-path mutex so distinct keys merging into the same file cannot drop
// each other's entries. The memo is only consulted when a cache_path is
// set — an empty path still means "measure always".

struct tuning_memo_stats {
  std::uint64_t hits = 0;    // consults served by a published choice
  std::uint64_t misses = 0;  // consults that took ownership and measured
  std::size_t entries = 0;   // published choices currently held
};

/// Snapshot of the process-wide memo counters.
[[nodiscard]] tuning_memo_stats tuning_memo_statistics();

/// Drop every memoized choice and zero the counters (test isolation and
/// campaign teardown). Must not race in-flight autotune calls.
void tuning_memo_reset();

}  // namespace pcf::pencil
