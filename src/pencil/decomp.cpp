#include "pencil/decomp.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace pcf::pencil {

const char* to_string(decomposition d) {
  switch (d) {
    case decomposition::pencil2d: return "pencil2d";
    case decomposition::slab: return "slab";
    case decomposition::hybrid_25d: return "hybrid_25d";
    case decomposition::tuned: return "tuned";
  }
  return "?";
}

bool slab_ranks_valid(const grid& g, int ranks) {
  if (ranks < 1) return false;
  const auto r = static_cast<std::size_t>(ranks);
  return r <= g.ny && r <= g.nz;
}

bool hybrid_ranks_valid(const grid& g, int ranks, int c) {
  if (ranks < 1 || c < 2 || ranks % c != 0) return false;
  const auto uc = static_cast<std::size_t>(c);
  if (uc > g.nxh() || uc > g.nz) return false;  // xs / zp blocks over P_A
  const auto s = static_cast<std::size_t>(ranks / c);
  return s <= g.ny && s <= g.nz;  // yb / zs blocks over P_B
}

int default_replica_c(const grid& g, int ranks) {
  for (int c = 2; c <= ranks; ++c)
    if (hybrid_ranks_valid(g, ranks, c)) return c;
  return 0;
}

void default_pencil_grid(int ranks, int& pa, int& pb) {
  pa = 1;
  for (int a = 1; a * a <= ranks; ++a)
    if (ranks % a == 0) pa = a;
  pb = ranks / pa;
}

decomp_plan plan_decomposition(decomposition kind, const grid& g, int ranks,
                               int pa, int pb, int replica_c) {
  PCF_REQUIRE(ranks >= 1, "decomposition needs at least one rank");
  switch (kind) {
    case decomposition::pencil2d:
      PCF_REQUIRE(pa >= 1 && pb >= 1 && pa * pb == ranks,
                  "pencil2d process grid must cover the ranks exactly");
      return {decomposition::pencil2d, pa, pb, 1};
    case decomposition::slab:
      PCF_REQUIRE(slab_ranks_valid(g, ranks),
                  "slab decomposition needs ranks <= min(ny, nz)");
      return {decomposition::slab, 1, ranks, 1};
    case decomposition::hybrid_25d: {
      const int c = replica_c > 0 ? replica_c : default_replica_c(g, ranks);
      PCF_REQUIRE(c > 0 && hybrid_ranks_valid(g, ranks, c),
                  "no valid 2.5D replica count for this grid / rank count");
      return {decomposition::hybrid_25d, c, ranks / c, c};
    }
    case decomposition::tuned:
      break;
  }
  PCF_REQUIRE(false, "tuned decomposition must be resolved by the autotuner");
  return {};
}

std::vector<decomp_plan> decomposition_candidates(const grid& g, int ranks,
                                                  int pa, int pb) {
  // A tuned run needs no configured pencil grid; fall back to the
  // near-square split when the configured one doesn't cover the ranks.
  if (pa < 1 || pb < 1 || pa * pb != ranks) default_pencil_grid(ranks, pa, pb);
  std::vector<decomp_plan> out;
  out.push_back(plan_decomposition(decomposition::pencil2d, g, ranks, pa, pb,
                                   0));
  if (slab_ranks_valid(g, ranks) && ranks > 1)
    out.push_back({decomposition::slab, 1, ranks, 1});
  const int c0 = default_replica_c(g, ranks);
  if (c0 > 0) {
    out.push_back({decomposition::hybrid_25d, c0, ranks / c0, c0});
    const int c1 = 2 * c0;
    if (hybrid_ranks_valid(g, ranks, c1))
      out.push_back({decomposition::hybrid_25d, c1, ranks / c1, c1});
  }
  // A candidate that degenerates to the configured pencil grid measures
  // nothing new; drop duplicates of the (pa, pb) split.
  out.erase(std::remove_if(out.begin() + 1, out.end(),
                           [&](const decomp_plan& p) {
                             return p.pa == out[0].pa && p.pb == out[0].pb;
                           }),
            out.end());
  return out;
}

}  // namespace pcf::pencil
