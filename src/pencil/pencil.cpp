#include "pencil/pencil.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "fft/plan_cache.hpp"
#include "util/aligned.hpp"
#include "util/counters.hpp"
#include "util/thread_pool.hpp"

namespace pcf::pencil {

block block_range(std::size_t n, int p, int r) {
  PCF_REQUIRE(p >= 1 && r >= 0 && r < p, "invalid block decomposition");
  const std::size_t base = n / static_cast<std::size_t>(p);
  const std::size_t rem = n % static_cast<std::size_t>(p);
  const auto ur = static_cast<std::size_t>(r);
  block b;
  b.offset = ur * base + std::min(ur, rem);
  b.count = base + (ur < rem ? 1 : 0);
  return b;
}

decomp::decomp(const grid& gg, const kernel_config& cfg, int pa_, int pb_,
               int ca_, int cb_)
    : g(gg), pa(pa_), pb(pb_), ca(ca_), cb(cb_) {
  PCF_REQUIRE(g.nx % 4 == 0, "nx must be divisible by 4");
  PCF_REQUIRE(g.nz % 2 == 0, "nz must be even");
  PCF_REQUIRE(g.ny >= 1, "ny must be positive");
  nxs = g.nxh() + (cfg.drop_nyquist ? 0 : 1);
  nxf = cfg.dealias ? g.nxp() : g.nx;
  nzf = cfg.dealias ? g.nzp() : g.nz;
  xs = block_range(nxs, pa, ca);
  zs = block_range(g.nz, pb, cb);
  yb = block_range(g.ny, pb, cb);
  zp = block_range(nzf, pa, ca);
}

// ---------------------------------------------------------------------------
//
// Batched layout conventions (nf = fields in the current group):
//
//  * exchange buffers: the per-rank segment for rank q starts at
//    nf * displ[q] and holds the nf fields back to back, field f at
//    nf * displ[q] + f * count[q]. Scaling the seed's dense prefix-sum
//    displacements by nf is all the "extended build_counts()" needed, so
//    all fields ride ONE alltoallv/pairwise exchange per transpose stage.
//  * compute buffers (z-pencil / x-pencil layouts): field f lives at
//    offset f * wstride, where wstride is the seed's single-field
//    workspace size. w1/w2 (and w3 in P3DFFT mode) are allocated
//    max_batch * wstride so both layouts always fit.
//
// With nf == 1 every offset degenerates to the seed's, and every pool loop
// runs the same partition, so the single-field path is bit-identical to
// the pre-batching kernel.

namespace {

/// Elements of one field's single-buffer workspace slot: the max over
/// every intermediate layout a field occupies on its way through the
/// pipeline.
std::size_t slot_elems(const decomp& d) {
  const std::size_t yz_total = d.xs.count * d.g.nz * d.yb.count;
  const std::size_t zx_total = d.nxs * d.yb.count * d.zp.count;
  std::size_t m = d.y_pencil_elems();
  m = std::max(m, yz_total);
  m = std::max(m, d.z_pencil_elems());
  m = std::max(m, zx_total);
  m = std::max(m, d.x_pencil_spec_elems());
  return m;
}

std::size_t round_to_alignment(std::size_t bytes) {
  return (bytes + kAlignment - 1) / kAlignment * kAlignment;
}

}  // namespace

std::size_t transform_workspace_bytes(const decomp& d,
                                      const kernel_config& cfg) {
  const int nbuf = (!cfg.drop_nyquist && !cfg.dealias) ? 3 : 2;  // P3DFFT: 3x
  const std::size_t wn =
      slot_elems(d) * static_cast<std::size_t>(std::max(1, cfg.max_batch));
  return static_cast<std::size_t>(nbuf) * round_to_alignment(wn * sizeof(cplx));
}

struct parallel_fft::impl {
  decomp d;
  kernel_config cfg;
  vmpi::communicator comm_a;  // copies share the underlying group state
  vmpi::communicator comm_b;

  // Leased from the process-wide plan cache (fft/plan_cache.hpp): N
  // kernels on the same grid — a campaign sweep of identical configs —
  // share one immutable plan per (length, direction) instead of each
  // rebuilding the twiddle tables. Execution is thread-safe, so sharing
  // across concurrently-stepping simulations is sound.
  std::shared_ptr<const fft::c2c_plan> z_fwd, z_inv;
  std::shared_ptr<const fft::r2c_plan> x_fwd;
  std::shared_ptr<const fft::c2r_plan> x_inv;

  thread_pool fft_pool;
  thread_pool reorder_pool;

  // Workspaces. The customized kernel ping-pongs between two buffers; the
  // P3DFFT-mode kernel uses a third (its documented 3x footprint). Each
  // holds max_batch single-field workspaces side by side. Storage is
  // either owned here or borrowed from a caller's workspace lane (the
  // simulation's field_workspace arena) — wbuf abstracts over both.
  struct wbuf {
    cplx* p = nullptr;
    std::size_t n = 0;
    aligned_buffer<cplx> own;

    void reset_owned(std::size_t count) {
      own.reset(count);
      p = own.data();
      n = count;
    }
    void borrow(cplx* q, std::size_t count) {
      p = q;
      n = count;
    }
    [[nodiscard]] cplx* data() { return p; }
    [[nodiscard]] bool empty() const { return n == 0; }
    [[nodiscard]] std::size_t size() const { return n; }
  };
  wbuf w1, w2, w3;
  std::size_t wstride = 0;  // elements of one field's workspace slot
  workspace_lane* ws_ = nullptr;  // borrow source (null = owned buffers)

  // alltoallv counts/displacements, in complex elements (single-field).
  std::vector<std::size_t> sc_yz, sd_yz, rc_yz, rd_yz;  // CommB, y<->z
  std::vector<std::size_t> sc_zx, sd_zx, rc_zx, rd_zx;  // CommA, z<->x

  // Exchange strategies resolved at plan time (paper Section 4.3: FFTW's
  // planner times the candidates and keeps the fastest).
  exchange_strategy strat_a = exchange_strategy::alltoall;
  exchange_strategy strat_b = exchange_strategy::alltoall;

  // Comm thread for pipelined mode (allocated only when pipeline_depth > 1).
  std::unique_ptr<vmpi::async_proxy> comm_async;

  // Hot-path scratch, sized once at construction so transforms never
  // allocate: batch-scaled counts/displacements for do_exchange_batch
  // (4 * max(pa, pb)) and the pipeline's in-flight exchange tickets.
  std::vector<std::size_t> exch_scratch_;
  std::vector<vmpi::async_proxy::ticket> tk1_, tk2_;

  // Degenerate transpose stages (slab: pa == 1; 2.5D replica groups keep
  // both > 1 but small). A size-1 communicator's exchange is the identity
  // on the packed buffer, so the drivers forward it straight to the unpack.
  bool skip_a_ = false, skip_b_ = false;

  section_timer comm_t, reorder_t, fft_t;

  // Batched-path counters. Written by the rank's own threads only; reads
  // are ordered behind the transform call (or the async wait inside it).
  std::uint64_t transforms_ = 0, fields_ = 0, exchanges_ = 0;
  std::uint64_t reorder_calls_ = 0, reorder_fields_ = 0;

  impl(const grid& g, vmpi::cart2d& cart, kernel_config c,
       workspace_lane* ws)
      : d(g, c, cart.pa(), cart.pb(), cart.coord_a(), cart.coord_b()),
        cfg(c),
        comm_a(cart.comm_a()),
        comm_b(cart.comm_b()),
        z_fwd(fft::shared_c2c(d.nzf, fft::direction::forward)),
        z_inv(fft::shared_c2c(d.nzf, fft::direction::inverse)),
        x_fwd(fft::shared_r2c(d.nxf)),
        x_inv(fft::shared_c2r(d.nxf)),
        fft_pool(std::max(1, c.fft_threads)),
        reorder_pool(std::max(1, c.reorder_threads)) {
    PCF_REQUIRE(cfg.max_batch >= 1, "max_batch must be >= 1");
    PCF_REQUIRE(cfg.pipeline_depth >= 1, "pipeline_depth must be >= 1");
    skip_a_ = comm_a.size() == 1;
    skip_b_ = comm_b.size() == 1;
    build_counts();
    exch_scratch_.resize(4 *
                         static_cast<std::size_t>(std::max(d.pa, d.pb)));
    wstride = slot_elems(d);
    const std::size_t wn = wstride * static_cast<std::size_t>(cfg.max_batch);
    const bool p3d = !cfg.drop_nyquist && !cfg.dealias;
    ws_ = ws;
    if (ws != nullptr) {
      // Permanent checkouts from the caller's arena (sized by
      // transform_workspace_bytes).
      w1.borrow(ws->alloc<cplx>(wn), wn);
      w2.borrow(ws->alloc<cplx>(wn), wn);
      if (p3d) w3.borrow(ws->alloc<cplx>(wn), wn);
    } else {
      w1.reset_owned(wn);
      w2.reset_owned(wn);
      if (p3d) w3.reset_owned(wn);
    }
    if (cfg.pipeline_depth > 1) {
      comm_async = std::make_unique<vmpi::async_proxy>();
      tk1_.resize(static_cast<std::size_t>(cfg.pipeline_depth));
      tk2_.resize(static_cast<std::size_t>(cfg.pipeline_depth));
    }
    plan_strategies();
  }

  /// One exchange with either strategy. The pairwise algorithm runs p-1
  /// rounds with partner (rank + r) mod p — the MPI_Sendrecv pattern FFTW's
  /// transpose planner generates.
  void do_exchange(vmpi::communicator& comm, exchange_strategy strat,
                   const cplx* send, const std::size_t* sc,
                   const std::size_t* sd, cplx* recv, const std::size_t* rc,
                   const std::size_t* rd) {
    if (strat == exchange_strategy::alltoall) {
      comm.alltoallv(send, sc, sd, recv, rc, rd);
      return;
    }
    const int p = comm.size();
    const int me = comm.rank();
    std::copy_n(send + sd[me], sc[me],
                recv + rd[me]);  // self block, no communication
    for (int r = 1; r < p; ++r) {
      const int dest = (me + r) % p;
      const int src = (me + p - r) % p;
      comm.exchange(send + sd[dest], sc[dest], dest, recv + rd[src], rc[src]);
    }
  }

  /// Aggregated exchange carrying nf fields: counts and displacements are
  /// the single-field ones scaled by nf (valid because the displacements
  /// are dense prefix sums). The scaled arrays live in the preallocated
  /// exch_scratch_, which is safe to share between the sync and pipelined
  /// paths: a transform call is serialized per instance, and within one
  /// call every exchange runs on a single thread (the caller, or the
  /// async_proxy's one comm thread, whose tickets are strictly ordered).
  void do_exchange_batch(vmpi::communicator& comm, exchange_strategy strat,
                         const cplx* send, const std::size_t* sc,
                         const std::size_t* sd, cplx* recv,
                         const std::size_t* rc, const std::size_t* rd,
                         std::size_t nf) {
    if (comm.size() == 1) {
      // Degenerate stage (slab / 2.5D layouts): the packed buffer already
      // has the unpack's expected layout (sc[0] == rc[0]), so the exchange
      // is a pure local copy. Not counted as an exchange — the serial and
      // pipelined non-P3DFFT drivers skip even this copy by forwarding the
      // packed buffer straight into the unpack.
      std::copy_n(send, nf * sc[0], recv);
      return;
    }
    ++exchanges_;
    if (nf == 1) {
      do_exchange(comm, strat, send, sc, sd, recv, rc, rd);
      return;
    }
    const auto p = static_cast<std::size_t>(comm.size());
    std::size_t* bsc = exch_scratch_.data();
    std::size_t* bsd = bsc + p;
    std::size_t* brc = bsd + p;
    std::size_t* brd = brc + p;
    for (std::size_t q = 0; q < p; ++q) {
      bsc[q] = nf * sc[q];
      bsd[q] = nf * sd[q];
      brc[q] = nf * rc[q];
      brd[q] = nf * rd[q];
    }
    do_exchange(comm, strat, send, bsc, bsd, recv, brc, brd);
  }

  /// Resolve the per-communicator strategies. Explicit overrides
  /// (cfg.strategy_a/b, written by the autotuner) win; otherwise the
  /// global cfg.strategy applies, and auto_plan is resolved by timing both
  /// candidates on the exchanges production will actually run — i.e.
  /// batch-scaled by max_batch, not single-field (the old behaviour, which
  /// could pick the wrong strategy for the batched workload). Each rep is
  /// timed separately and the best kept, so one noisy rep can't flip the
  /// choice; all ranks must agree, so the per-candidate timings are
  /// max-reduced before the comparison.
  void plan_strategies() {
    auto resolve = [&](exchange_strategy per_comm) {
      return per_comm != exchange_strategy::auto_plan ? per_comm
                                                      : cfg.strategy;
    };
    strat_a = resolve(cfg.strategy_a);
    strat_b = resolve(cfg.strategy_b);
    const bool need_a = strat_a == exchange_strategy::auto_plan;
    const bool need_b = strat_b == exchange_strategy::auto_plan;
    if (!need_a && !need_b) return;
    const auto nf = static_cast<std::size_t>(cfg.max_batch);
    auto pick = [&](vmpi::communicator& comm, const std::size_t* sc,
                    const std::size_t* sd, const std::size_t* rc,
                    const std::size_t* rd) {
      if (comm.size() == 1) return exchange_strategy::alltoall;
      const exchange_strategy cand[2] = {exchange_strategy::alltoall,
                                         exchange_strategy::pairwise};
      // Untimed warm-up: the very first exchange pays first-touch page
      // faults on the freshly allocated w1/w2, which used to be charged to
      // whichever candidate ran first and biased the choice.
      do_exchange_batch(comm, cand[0], w1.data(), sc, sd, w2.data(), rc, rd,
                        nf);
      double best[2];
      for (int c = 0; c < 2; ++c) {
        best[c] = std::numeric_limits<double>::infinity();
        for (int rep = 0; rep < 3; ++rep) {
          wall_timer t;
          do_exchange_batch(comm, cand[c], w1.data(), sc, sd, w2.data(), rc,
                            rd, nf);
          best[c] = std::min(best[c], t.seconds());
        }
      }
      double agreed[2];
      comm.allreduce_max(best, agreed, 2);
      return agreed[0] <= agreed[1] ? cand[0] : cand[1];
    };
    if (need_b)
      strat_b = pick(comm_b, sc_yz.data(), sd_yz.data(), rc_yz.data(),
                     rd_yz.data());
    if (need_a)
      strat_a = pick(comm_a, sc_zx.data(), sd_zx.data(), rc_zx.data(),
                     rd_zx.data());
    exchanges_ = 0;  // plan-time probes don't count toward batch_stats
  }

  void build_counts() {
    const int pb = d.pb, pa = d.pa;
    sc_yz.resize(static_cast<std::size_t>(pb));
    sd_yz.resize(static_cast<std::size_t>(pb));
    rc_yz.resize(static_cast<std::size_t>(pb));
    rd_yz.resize(static_cast<std::size_t>(pb));
    std::size_t s = 0, r = 0;
    for (int q = 0; q < pb; ++q) {
      const block yq = block_range(d.g.ny, pb, q);
      const block zq = block_range(d.g.nz, pb, q);
      sc_yz[static_cast<std::size_t>(q)] = d.xs.count * d.zs.count * yq.count;
      sd_yz[static_cast<std::size_t>(q)] = s;
      s += sc_yz[static_cast<std::size_t>(q)];
      rc_yz[static_cast<std::size_t>(q)] = d.xs.count * zq.count * d.yb.count;
      rd_yz[static_cast<std::size_t>(q)] = r;
      r += rc_yz[static_cast<std::size_t>(q)];
    }
    sc_zx.resize(static_cast<std::size_t>(pa));
    sd_zx.resize(static_cast<std::size_t>(pa));
    rc_zx.resize(static_cast<std::size_t>(pa));
    rd_zx.resize(static_cast<std::size_t>(pa));
    s = r = 0;
    for (int q = 0; q < pa; ++q) {
      const block zq = block_range(d.nzf, pa, q);
      const block xq = block_range(d.nxs, pa, q);
      sc_zx[static_cast<std::size_t>(q)] = d.xs.count * d.yb.count * zq.count;
      sd_zx[static_cast<std::size_t>(q)] = s;
      s += sc_zx[static_cast<std::size_t>(q)];
      rc_zx[static_cast<std::size_t>(q)] = xq.count * d.yb.count * d.zp.count;
      rd_zx[static_cast<std::size_t>(q)] = r;
      r += rc_zx[static_cast<std::size_t>(q)];
    }
  }

  /// Padded position of spectral z mode zg (3/2-rule: negative modes move
  /// to the end of the padded line).
  [[nodiscard]] std::size_t zpad_pos(std::size_t zg) const {
    return zg < d.g.nz / 2 ? zg : zg + (d.nzf - d.g.nz);
  }

  /// Byte-counter accounting shared by every pack/unpack kernel:
  /// `reads`/`writes` are the per-field element counts; the batch counters
  /// additionally record how wide the fused kernels ran.
  void account(std::size_t reads, std::size_t writes, std::size_t nf) {
    counters::add_read(reads * nf * sizeof(cplx));
    counters::add_written(writes * nf * sizeof(cplx));
    ++reorder_calls_;
    reorder_fields_ += nf;
  }

  // --- inverse path (spectral -> physical) --------------------------------
  //
  // Every reorder kernel widens its thread-pool loop by nf with fields in
  // the inner blocking (index i -> item i/nf, field i%nf), so small
  // per-field pencils still feed all reorder/fft threads.

  void pack_y_to_z(const cplx* const* specs, cplx* send, std::size_t nf) {
    const section_timer::section time_sec(reorder_t);
    const std::size_t zc = d.zs.count, ny = d.g.ny;
    const std::size_t* sc = sc_yz.data();
    const std::size_t* sd = sd_yz.data();
    reorder_pool.run(d.xs.count * nf, [&](std::size_t ib, std::size_t ie) {
      for (std::size_t i = ib; i < ie; ++i) {
        const std::size_t x = i / nf, f = i % nf;
        const cplx* spec = specs[f];
        for (int q = 0; q < d.pb; ++q) {
          const block yq = block_range(ny, d.pb, q);
          cplx* seg = send + nf * sd[q] + f * sc[q];
          for (std::size_t z = 0; z < zc; ++z)
            std::copy_n(spec + (x * zc + z) * ny + yq.offset, yq.count,
                        seg + (x * zc + z) * yq.count);
        }
      }
    });
    account(d.y_pencil_elems(), d.y_pencil_elems(), nf);
  }

  void unpack_z_pencil(const cplx* recv, cplx* zbuf, std::size_t nf) {
    const section_timer::section time_sec(reorder_t);
    const std::size_t yc = d.yb.count, nzf = d.nzf, nzg = d.g.nz;
    const bool dealias = nzf > nzg;
    const std::size_t* rc = rc_yz.data();
    const std::size_t* rd = rd_yz.data();
    // Zero the dealiasing gap once per line. The gap also swallows the
    // spanwise Nyquist mode nz/2: on the padded grid +nz/2 and -nz/2 are
    // distinct modes, so the (self-conjugate) Nyquist coefficient is not
    // representable and is dropped, as in the paper (Section 4.4).
    if (dealias) {
      reorder_pool.run(d.xs.count * yc * nf,
                       [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          const std::size_t l = i / nf, f = i % nf;
          std::fill_n(zbuf + f * wstride + l * nzf + nzg / 2, nzf - nzg + 1,
                      cplx{0.0, 0.0});
        }
      });
    }
    reorder_pool.run(d.xs.count * nf, [&](std::size_t ib, std::size_t ie) {
      for (std::size_t i = ib; i < ie; ++i) {
        const std::size_t x = i / nf, f = i % nf;
        cplx* zb = zbuf + f * wstride;
        for (int q = 0; q < d.pb; ++q) {
          const block zq = block_range(nzg, d.pb, q);
          const cplx* seg = recv + nf * rd[q] + f * rc[q];
          for (std::size_t zl = 0; zl < zq.count; ++zl) {
            const std::size_t zg = zq.offset + zl;
            if (dealias && zg == nzg / 2) continue;  // dropped Nyquist
            const std::size_t zp = zpad_pos(zg);
            const cplx* src = seg + (x * zq.count + zl) * yc;
            for (std::size_t y = 0; y < yc; ++y)
              zb[(x * yc + y) * nzf + zp] = src[y];
          }
        }
      }
    });
    account(d.xs.count * nzg * yc, d.z_pencil_elems(), nf);
  }

  void pack_z_to_x(const cplx* zbuf, cplx* send, std::size_t nf) {
    const section_timer::section time_sec(reorder_t);
    const std::size_t yc = d.yb.count, nzf = d.nzf;
    const std::size_t* sc = sc_zx.data();
    const std::size_t* sd = sd_zx.data();
    reorder_pool.run(d.xs.count * nf, [&](std::size_t ib, std::size_t ie) {
      for (std::size_t i = ib; i < ie; ++i) {
        const std::size_t x = i / nf, f = i % nf;
        const cplx* zb = zbuf + f * wstride;
        for (int q = 0; q < d.pa; ++q) {
          const block zq = block_range(nzf, d.pa, q);
          cplx* seg = send + nf * sd[q] + f * sc[q];
          for (std::size_t y = 0; y < yc; ++y)
            std::copy_n(zb + (x * yc + y) * nzf + zq.offset, zq.count,
                        seg + (x * yc + y) * zq.count);
        }
      }
    });
    account(d.z_pencil_elems(), d.z_pencil_elems(), nf);
  }

  void unpack_x_pencil(const cplx* recv, cplx* xbuf, std::size_t nf) {
    const section_timer::section time_sec(reorder_t);
    const std::size_t yc = d.yb.count, zc = d.zp.count;
    const std::size_t modes = d.x_line_modes();
    const std::size_t* rc = rc_zx.data();
    const std::size_t* rd = rd_zx.data();
    // Zero the dealiasing pad region of each x line.
    if (modes > d.nxs) {
      reorder_pool.run(zc * yc * nf, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          const std::size_t l = i / nf, f = i % nf;
          std::fill_n(xbuf + f * wstride + l * modes + d.nxs, modes - d.nxs,
                      cplx{0.0, 0.0});
        }
      });
    }
    reorder_pool.run(zc * nf, [&](std::size_t ib, std::size_t ie) {
      for (std::size_t i = ib; i < ie; ++i) {
        const std::size_t z = i / nf, f = i % nf;
        cplx* xb = xbuf + f * wstride;
        for (int q = 0; q < d.pa; ++q) {
          const block xq = block_range(d.nxs, d.pa, q);
          const cplx* seg = recv + nf * rd[q] + f * rc[q];
          // y outer / xl inner: the xb writes are unit-stride in xl, so
          // this loop vectorizes as a strided gather + contiguous store.
          for (std::size_t y = 0; y < yc; ++y) {
            cplx* dst = xb + (z * yc + y) * modes + xq.offset;
            const cplx* src = seg + y * zc + z;
            for (std::size_t xl = 0; xl < xq.count; ++xl)
              dst[xl] = src[xl * yc * zc];
          }
        }
      }
    });
    account(d.nxs * yc * zc, d.x_pencil_spec_elems(), nf);
  }

  // --- forward path (physical -> spectral) --------------------------------

  void pack_x_to_z(const cplx* xspec, cplx* send, std::size_t nf) {
    const section_timer::section time_sec(reorder_t);
    const std::size_t yc = d.yb.count, zc = d.zp.count;
    const std::size_t modes = d.x_line_modes();
    const std::size_t* rc = rc_zx.data();
    const std::size_t* rd = rd_zx.data();
    reorder_pool.run(zc * nf, [&](std::size_t ib, std::size_t ie) {
      for (std::size_t i = ib; i < ie; ++i) {
        const std::size_t z = i / nf, f = i % nf;
        const cplx* xb = xspec + f * wstride;
        for (int q = 0; q < d.pa; ++q) {
          const block xq = block_range(d.nxs, d.pa, q);
          cplx* seg = send + nf * rd[q] + f * rc[q];
          // Mirror of unpack_x_pencil: contiguous loads in xl, strided
          // scatter stores.
          for (std::size_t y = 0; y < yc; ++y) {
            const cplx* src = xb + (z * yc + y) * modes + xq.offset;
            cplx* dst = seg + y * zc + z;
            for (std::size_t xl = 0; xl < xq.count; ++xl)
              dst[xl * yc * zc] = src[xl];
          }
        }
      }
    });
    account(d.nxs * yc * zc, d.nxs * yc * zc, nf);
  }

  void unpack_z_from_x(const cplx* recv, cplx* zbuf, std::size_t nf) {
    const section_timer::section time_sec(reorder_t);
    const std::size_t yc = d.yb.count, nzf = d.nzf;
    const std::size_t* sc = sc_zx.data();
    const std::size_t* sd = sd_zx.data();
    reorder_pool.run(d.xs.count * nf, [&](std::size_t ib, std::size_t ie) {
      for (std::size_t i = ib; i < ie; ++i) {
        const std::size_t x = i / nf, f = i % nf;
        cplx* zb = zbuf + f * wstride;
        for (int q = 0; q < d.pa; ++q) {
          const block zq = block_range(nzf, d.pa, q);
          const cplx* seg = recv + nf * sd[q] + f * sc[q];
          for (std::size_t y = 0; y < yc; ++y)
            std::copy_n(seg + (x * yc + y) * zq.count, zq.count,
                        zb + (x * yc + y) * nzf + zq.offset);
        }
      }
    });
    account(d.z_pencil_elems(), d.z_pencil_elems(), nf);
  }

  void pack_z_to_y(const cplx* zbuf, cplx* send, double scale,
                   std::size_t nf) {
    const section_timer::section time_sec(reorder_t);
    const std::size_t yc = d.yb.count, nzf = d.nzf, nzg = d.g.nz;
    const std::size_t* rc = rc_yz.data();
    const std::size_t* rd = rd_yz.data();
    reorder_pool.run(d.xs.count * nf, [&](std::size_t ib, std::size_t ie) {
      for (std::size_t i = ib; i < ie; ++i) {
        const std::size_t x = i / nf, f = i % nf;
        const cplx* zb = zbuf + f * wstride;
        for (int q = 0; q < d.pb; ++q) {
          const block zq = block_range(nzg, d.pb, q);
          cplx* seg = send + nf * rd[q] + f * rc[q];
          for (std::size_t zl = 0; zl < zq.count; ++zl) {
            const std::size_t zg = zq.offset + zl;
            cplx* dst = seg + (x * zq.count + zl) * yc;
            if (nzf > nzg && zg == nzg / 2) {  // dropped Nyquist
              std::fill_n(dst, yc, cplx{0.0, 0.0});
              continue;
            }
            const std::size_t zp = zpad_pos(zg);
            for (std::size_t y = 0; y < yc; ++y)
              dst[y] = zb[(x * yc + y) * nzf + zp] * scale;
          }
        }
      }
    });
    account(d.xs.count * nzg * yc, d.xs.count * nzg * yc, nf);
  }

  void unpack_y_pencil(const cplx* recv, cplx* const* specs, std::size_t nf) {
    const section_timer::section time_sec(reorder_t);
    const std::size_t zc = d.zs.count, ny = d.g.ny;
    const std::size_t* sc = sc_yz.data();
    const std::size_t* sd = sd_yz.data();
    reorder_pool.run(d.xs.count * nf, [&](std::size_t ib, std::size_t ie) {
      for (std::size_t i = ib; i < ie; ++i) {
        const std::size_t x = i / nf, f = i % nf;
        cplx* spec = specs[f];
        for (int q = 0; q < d.pb; ++q) {
          const block yq = block_range(ny, d.pb, q);
          const cplx* seg = recv + nf * sd[q] + f * sc[q];
          for (std::size_t z = 0; z < zc; ++z)
            std::copy_n(seg + (x * zc + z) * yq.count, yq.count,
                        spec + (x * zc + z) * ny + yq.offset);
        }
      }
    });
    account(d.y_pencil_elems(), d.y_pencil_elems(), nf);
  }

  // --- FFT stages ----------------------------------------------------------
  //
  // The line loops are widened to lines * nf and re-split at field
  // boundaries, so a chunk never spans two fields' workspace slots.

  void z_fft(cplx* zbuf, const fft::c2c_plan& plan, std::size_t nf) {
    const section_timer::section time_sec(fft_t);
    const std::size_t lines = d.xs.count * d.yb.count;
    const std::size_t len = d.nzf;
    fft_pool.run(lines * nf, [&](std::size_t b, std::size_t e) {
      while (b < e) {
        const std::size_t f = b / lines, l0 = b % lines;
        const std::size_t cnt = std::min(e - b, lines - l0);
        cplx* base = zbuf + f * wstride + l0 * len;
        plan.execute_many(base, len, base, len, cnt);
        b += cnt;
      }
    });
  }

  void x_c2r(const cplx* xspec, double* const* phys, std::size_t nf) {
    const section_timer::section time_sec(fft_t);
    const std::size_t lines = d.zp.count * d.yb.count;
    const std::size_t modes = d.x_line_modes();
    fft_pool.run(lines * nf, [&](std::size_t b, std::size_t e) {
      while (b < e) {
        const std::size_t f = b / lines, l0 = b % lines;
        const std::size_t cnt = std::min(e - b, lines - l0);
        x_inv->execute_many(xspec + f * wstride + l0 * modes, modes,
                           phys[f] + l0 * d.nxf, d.nxf, cnt);
        b += cnt;
      }
    });
  }

  void x_r2c(const double* const* phys, cplx* xspec, std::size_t nf) {
    const section_timer::section time_sec(fft_t);
    const std::size_t lines = d.zp.count * d.yb.count;
    const std::size_t modes = d.x_line_modes();
    fft_pool.run(lines * nf, [&](std::size_t b, std::size_t e) {
      while (b < e) {
        const std::size_t f = b / lines, l0 = b % lines;
        const std::size_t cnt = std::min(e - b, lines - l0);
        x_fwd->execute_many(phys[f] + l0 * d.nxf, d.nxf,
                           xspec + f * wstride + l0 * modes, modes, cnt);
        b += cnt;
      }
    });
  }

  // --- transposes (communication) ------------------------------------------

  void a2a_yz(const cplx* send, cplx* recv, std::size_t nf) {
    const section_timer::section time_sec(comm_t);
    do_exchange_batch(comm_b, strat_b, send, sc_yz.data(), sd_yz.data(), recv,
                      rc_yz.data(), rd_yz.data(), nf);
  }
  void a2a_zy(const cplx* send, cplx* recv, std::size_t nf) {
    const section_timer::section time_sec(comm_t);
    do_exchange_batch(comm_b, strat_b, send, rc_yz.data(), rd_yz.data(), recv,
                      sc_yz.data(), sd_yz.data(), nf);
  }
  void a2a_zx(const cplx* send, cplx* recv, std::size_t nf) {
    const section_timer::section time_sec(comm_t);
    do_exchange_batch(comm_a, strat_a, send, sc_zx.data(), sd_zx.data(), recv,
                      rc_zx.data(), rd_zx.data(), nf);
  }
  void a2a_xz(const cplx* send, cplx* recv, std::size_t nf) {
    const section_timer::section time_sec(comm_t);
    do_exchange_batch(comm_a, strat_a, send, rc_zx.data(), rd_zx.data(), recv,
                      sc_zx.data(), sd_zx.data(), nf);
  }

  // --- batched drivers -----------------------------------------------------

  void to_physical_batch(const cplx* const* specs, double* const* phys,
                         std::size_t nf) {
    PCF_REQUIRE(nf >= 1, "batch needs at least one field");
    ++transforms_;
    fields_ += nf;
    const auto mb = static_cast<std::size_t>(cfg.max_batch);
    for (std::size_t f0 = 0; f0 < nf; f0 += mb)
      inverse_chunk(specs + f0, phys + f0, std::min(mb, nf - f0));
  }

  void to_spectral_batch(const double* const* phys, cplx* const* specs,
                         std::size_t nf) {
    PCF_REQUIRE(nf >= 1, "batch needs at least one field");
    ++transforms_;
    fields_ += nf;
    const auto mb = static_cast<std::size_t>(cfg.max_batch);
    for (std::size_t f0 = 0; f0 < nf; f0 += mb)
      forward_chunk(phys + f0, specs + f0, std::min(mb, nf - f0));
  }

  void inverse_chunk(const cplx* const* specs, double* const* phys,
                     std::size_t nf) {
    if (comm_async && nf > 1) {
      inverse_pipelined(specs, phys, nf);
      return;
    }
    cplx* a = w1.data();
    cplx* b = w2.data();
    pack_y_to_z(specs, a, nf);
    if (w3.empty()) {
      // Degenerate stages (size-1 communicator) skip the exchange AND the
      // copy: the packed buffer feeds the unpack directly, and the usual
      // ping-pong rotation is suppressed for that stage.
      cplx* zsrc = a;
      cplx* zdst = b;
      if (!skip_b_) {
        a2a_yz(a, b, nf);
        zsrc = b;
        zdst = a;
      }
      unpack_z_pencil(zsrc, zdst, nf);
      z_fft(zdst, *z_inv, nf);
      pack_z_to_x(zdst, zsrc, nf);
      cplx* xsrc = zsrc;
      cplx* xdst = zdst;
      if (!skip_a_) {
        a2a_zx(zsrc, zdst, nf);
        xsrc = zdst;
        xdst = zsrc;
      }
      unpack_x_pencil(xsrc, xdst, nf);
      x_c2r(xdst, phys, nf);
    } else {
      // P3DFFT-style: dedicated buffers per stage (3x footprint).
      cplx* c = w3.data();
      a2a_yz(a, b, nf);
      unpack_z_pencil(b, c, nf);
      z_fft(c, *z_inv, nf);
      pack_z_to_x(c, a, nf);
      a2a_zx(a, b, nf);
      unpack_x_pencil(b, c, nf);
      x_c2r(c, phys, nf);
    }
  }

  void forward_chunk(const double* const* phys, cplx* const* specs,
                     std::size_t nf) {
    if (comm_async && nf > 1) {
      forward_pipelined(phys, specs, nf);
      return;
    }
    cplx* a = w1.data();
    cplx* b = w2.data();
    const double scale =
        1.0 / (static_cast<double>(d.nxf) * static_cast<double>(d.nzf));
    x_r2c(phys, a, nf);
    if (w3.empty()) {
      // Mirror of inverse_chunk: degenerate stages forward the packed
      // buffer into the unpack, suppressing that stage's ping-pong.
      pack_x_to_z(a, b, nf);
      cplx* zsrc = b;
      cplx* zdst = a;
      if (!skip_a_) {
        a2a_xz(b, a, nf);
        zsrc = a;
        zdst = b;
      }
      unpack_z_from_x(zsrc, zdst, nf);
      z_fft(zdst, *z_fwd, nf);
      pack_z_to_y(zdst, zsrc, scale, nf);
      const cplx* ysrc = zsrc;
      if (!skip_b_) {
        a2a_zy(zsrc, zdst, nf);
        ysrc = zdst;
      }
      unpack_y_pencil(ysrc, specs, nf);
    } else {
      cplx* c = w3.data();
      pack_x_to_z(a, b, nf);
      a2a_xz(b, c, nf);
      unpack_z_from_x(c, a, nf);
      z_fft(a, *z_fwd, nf);
      pack_z_to_y(a, b, scale, nf);
      a2a_zy(b, c, nf);
      unpack_y_pencil(c, specs, nf);
    }
  }

  // --- pipelined drivers ---------------------------------------------------
  //
  // The chunk's nf fields are split into G = min(pipeline_depth, nf)
  // balanced groups. Group g owns the disjoint workspace slice
  // [first(g)*wstride, (first(g)+count(g))*wstride) of each of w1/w2/w3,
  // so its in-flight exchange never touches buffers another group is
  // computing on. Every transform is (pre) pack, (x1) first exchange,
  // (c1) unpack + z-FFT + pack, (x2) second exchange, (c2) unpack + x-FFT;
  // x1/x2 run on the comm thread, everything else on the caller.
  //
  // Schedule (software pipeline over groups k):
  //
  //   pre(0); start x1(0)
  //   for k = 0..G-1:
  //     pre(k+1)                    // overlaps x1(k)
  //     wait x2(k-1); c2(k-1)       // overlaps x1(k) (FIFO: x2(k-1) first)
  //     wait x1(k);  c1(k)
  //     start x2(k); start x1(k+1)
  //   wait x2(G-1); c2(G-1)
  //
  // Every rank starts the same sequence x1(0), x2(0), x1(1), ... on its
  // single-threaded async_proxy, so the bulk-synchronous collectives
  // rendezvous in matching order across ranks — no tags needed.

  template <class Pre, class X1, class C1, class X2, class C2>
  void run_pipeline(std::size_t groups, Pre pre, X1 x1, C1 c1, X2 x2, C2 c2) {
    // The callers clamp the group count to min(pipeline_depth, nf); an
    // empty or over-deep group set would enqueue zero-field exchanges on
    // the comm thread (whose collectives must match across ranks), so it
    // is a hard error rather than a silent no-op.
    PCF_REQUIRE(groups >= 1 && groups <= tk1_.size(),
                "pipeline group count out of range");
    std::vector<vmpi::async_proxy::ticket>&t1 = tk1_, &t2 = tk2_;
    try {
      pre(0);
      t1[0] = comm_async->start([&x1] { x1(0); });
      for (std::size_t k = 0; k < groups; ++k) {
        if (k + 1 < groups) pre(k + 1);
        if (k > 0) {
          comm_async->wait(t2[k - 1]);
          c2(k - 1);
        }
        comm_async->wait(t1[k]);
        c1(k);
        t2[k] = comm_async->start([&x2, k] { x2(k); });
        if (k + 1 < groups)
          t1[k + 1] = comm_async->start([&x1, k] { x1(k + 1); });
      }
      comm_async->wait(t2[groups - 1]);
      c2(groups - 1);
    } catch (...) {
      // Drain in-flight exchanges before unwinding so the comm thread is
      // not left inside a collective whose buffers are being torn down.
      // After a world abort every drained operation throws immediately.
      try {
        comm_async->wait_all();
      } catch (...) {
      }
      throw;
    }
  }

  void inverse_pipelined(const cplx* const* specs, double* const* phys,
                         std::size_t nf) {
    const auto G = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(cfg.pipeline_depth),
                              nf));
    const bool p3d = !w3.empty();
    auto grp = [&](std::size_t g) {
      return block_range(nf, G, static_cast<int>(g));
    };
    auto at = [&](wbuf& w, std::size_t g) {
      return w.data() + grp(g).offset * wstride;
    };
    // Degenerate stages (size-1 comm) do no work on the comm thread and
    // hand the packed buffer straight to the unpack, flipping the
    // ping-pong roles for the rest of the chunk. The P3DFFT branch keeps
    // its fixed 3-buffer rotation (do_exchange_batch degenerates to a
    // local copy there).
    wbuf& uz_src = (!p3d && skip_b_) ? w1 : w2;
    wbuf& uz_dst = (!p3d && skip_b_) ? w2 : w1;
    run_pipeline(
        static_cast<std::size_t>(G),
        [&](std::size_t g) {
          const block fb = grp(g);
          pack_y_to_z(specs + fb.offset, at(w1, g), fb.count);
        },
        [&](std::size_t g) {
          if (p3d || !skip_b_) a2a_yz(at(w1, g), at(w2, g), grp(g).count);
        },
        [&](std::size_t g) {
          const std::size_t fc = grp(g).count;
          cplx* z = p3d ? at(w3, g) : at(uz_dst, g);
          unpack_z_pencil(p3d ? at(w2, g) : at(uz_src, g), z, fc);
          z_fft(z, *z_inv, fc);
          pack_z_to_x(z, p3d ? at(w1, g) : at(uz_src, g), fc);
        },
        [&](std::size_t g) {
          if (p3d)
            a2a_zx(at(w1, g), at(w2, g), grp(g).count);
          else if (!skip_a_)
            a2a_zx(at(uz_src, g), at(uz_dst, g), grp(g).count);
        },
        [&](std::size_t g) {
          const block fb = grp(g);
          wbuf& ux_src = skip_a_ ? uz_src : uz_dst;
          wbuf& ux_dst = skip_a_ ? uz_dst : uz_src;
          cplx* in = p3d ? at(w2, g) : at(ux_src, g);
          cplx* x = p3d ? at(w3, g) : at(ux_dst, g);
          unpack_x_pencil(in, x, fb.count);
          x_c2r(x, phys + fb.offset, fb.count);
        });
  }

  void forward_pipelined(const double* const* phys, cplx* const* specs,
                         std::size_t nf) {
    const auto G = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(cfg.pipeline_depth),
                              nf));
    const bool p3d = !w3.empty();
    const double scale =
        1.0 / (static_cast<double>(d.nxf) * static_cast<double>(d.nzf));
    auto grp = [&](std::size_t g) {
      return block_range(nf, G, static_cast<int>(g));
    };
    auto at = [&](wbuf& w, std::size_t g) {
      return w.data() + grp(g).offset * wstride;
    };
    // Mirror of inverse_pipelined's degenerate-stage handling.
    wbuf& uz_src = (!p3d && skip_a_) ? w2 : w1;
    wbuf& uz_dst = (!p3d && skip_a_) ? w1 : w2;
    run_pipeline(
        static_cast<std::size_t>(G),
        [&](std::size_t g) {
          const block fb = grp(g);
          x_r2c(phys + fb.offset, at(w1, g), fb.count);
          pack_x_to_z(at(w1, g), at(w2, g), fb.count);
        },
        [&](std::size_t g) {
          if (p3d)
            a2a_xz(at(w2, g), at(w3, g), grp(g).count);
          else if (!skip_a_)
            a2a_xz(at(w2, g), at(w1, g), grp(g).count);
        },
        [&](std::size_t g) {
          const std::size_t fc = grp(g).count;
          cplx* in = p3d ? at(w3, g) : at(uz_src, g);
          cplx* z = p3d ? at(w1, g) : at(uz_dst, g);
          unpack_z_from_x(in, z, fc);
          z_fft(z, *z_fwd, fc);
          pack_z_to_y(z, p3d ? at(w2, g) : at(uz_src, g), scale, fc);
        },
        [&](std::size_t g) {
          if (p3d)
            a2a_zy(at(w2, g), at(w3, g), grp(g).count);
          else if (!skip_b_)
            a2a_zy(at(uz_src, g), at(uz_dst, g), grp(g).count);
        },
        [&](std::size_t g) {
          const block fb = grp(g);
          const cplx* ysrc = p3d ? at(w3, g)
                                 : (skip_b_ ? at(uz_src, g) : at(uz_dst, g));
          unpack_y_pencil(ysrc, specs + fb.offset, fb.count);
        });
  }
};

parallel_fft::parallel_fft(const grid& g, vmpi::cart2d& cart,
                           kernel_config cfg)
    : impl_(new impl(g, cart, cfg, nullptr)) {}
parallel_fft::parallel_fft(const grid& g, vmpi::cart2d& cart,
                           kernel_config cfg, workspace_lane& transform_ws)
    : impl_(new impl(g, cart, cfg, &transform_ws)) {}
parallel_fft::~parallel_fft() = default;

const decomp& parallel_fft::dec() const { return impl_->d; }
const kernel_config& parallel_fft::config() const { return impl_->cfg; }

void parallel_fft::to_physical(const cplx* spec, double* phys) {
  const cplx* specs[1] = {spec};
  double* physv[1] = {phys};
  impl_->to_physical_batch(specs, physv, 1);
}
void parallel_fft::to_spectral(const double* phys, cplx* spec) {
  const double* physv[1] = {phys};
  cplx* specs[1] = {spec};
  impl_->to_spectral_batch(physv, specs, 1);
}

void parallel_fft::to_physical_batch(const cplx* const* specs,
                                     double* const* phys,
                                     std::size_t nfields) {
  impl_->to_physical_batch(specs, phys, nfields);
}
void parallel_fft::to_spectral_batch(const double* const* phys,
                                     cplx* const* specs,
                                     std::size_t nfields) {
  impl_->to_spectral_batch(phys, specs, nfields);
}

batch_stats parallel_fft::batching() const {
  batch_stats s;
  s.transforms = impl_->transforms_;
  s.fields = impl_->fields_;
  s.exchanges = impl_->exchanges_;
  s.reorder_calls = impl_->reorder_calls_;
  s.reorder_fields = impl_->reorder_fields_;
  return s;
}

std::size_t parallel_fft::workspace_bytes() const {
  return (impl_->w1.size() + impl_->w2.size() + impl_->w3.size()) *
         sizeof(cplx);
}

void parallel_fft::rebind_workspace() {
  auto& im = *impl_;
  PCF_REQUIRE(im.ws_ != nullptr,
              "rebind_workspace: this kernel owns its buffers (no lane to "
              "rebind from)");
  const std::size_t wn =
      im.wstride * static_cast<std::size_t>(im.cfg.max_batch);
  im.w1.borrow(im.ws_->alloc<cplx>(wn), wn);
  im.w2.borrow(im.ws_->alloc<cplx>(wn), wn);
  if (!im.w3.empty()) im.w3.borrow(im.ws_->alloc<cplx>(wn), wn);
}

exchange_strategy parallel_fft::strategy_a() const { return impl_->strat_a; }
exchange_strategy parallel_fft::strategy_b() const { return impl_->strat_b; }

double parallel_fft::comm_seconds() const { return impl_->comm_t.total(); }
double parallel_fft::reorder_seconds() const {
  return impl_->reorder_t.total();
}
double parallel_fft::fft_seconds() const { return impl_->fft_t.total(); }
void parallel_fft::reset_timers() {
  impl_->comm_t.reset();
  impl_->reorder_t.reset();
  impl_->fft_t.reset();
}

}  // namespace pcf::pencil
