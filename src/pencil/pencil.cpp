#include "pencil/pencil.hpp"

#include <algorithm>

#include "util/aligned.hpp"
#include "util/counters.hpp"
#include "util/thread_pool.hpp"

namespace pcf::pencil {

block block_range(std::size_t n, int p, int r) {
  PCF_REQUIRE(p >= 1 && r >= 0 && r < p, "invalid block decomposition");
  const std::size_t base = n / static_cast<std::size_t>(p);
  const std::size_t rem = n % static_cast<std::size_t>(p);
  const auto ur = static_cast<std::size_t>(r);
  block b;
  b.offset = ur * base + std::min(ur, rem);
  b.count = base + (ur < rem ? 1 : 0);
  return b;
}

decomp::decomp(const grid& gg, const kernel_config& cfg, int pa_, int pb_,
               int ca_, int cb_)
    : g(gg), pa(pa_), pb(pb_), ca(ca_), cb(cb_) {
  PCF_REQUIRE(g.nx % 4 == 0, "nx must be divisible by 4");
  PCF_REQUIRE(g.nz % 2 == 0, "nz must be even");
  PCF_REQUIRE(g.ny >= 1, "ny must be positive");
  nxs = g.nxh() + (cfg.drop_nyquist ? 0 : 1);
  nxf = cfg.dealias ? g.nxp() : g.nx;
  nzf = cfg.dealias ? g.nzp() : g.nz;
  xs = block_range(nxs, pa, ca);
  zs = block_range(g.nz, pb, cb);
  yb = block_range(g.ny, pb, cb);
  zp = block_range(nzf, pa, ca);
}

// ---------------------------------------------------------------------------

struct parallel_fft::impl {
  decomp d;
  kernel_config cfg;
  vmpi::communicator comm_a;  // copies share the underlying group state
  vmpi::communicator comm_b;

  fft::c2c_plan z_fwd, z_inv;
  fft::r2c_plan x_fwd;
  fft::c2r_plan x_inv;

  thread_pool fft_pool;
  thread_pool reorder_pool;

  // Workspaces. The customized kernel ping-pongs between two buffers; the
  // P3DFFT-mode kernel allocates a third (its documented 3x footprint).
  aligned_buffer<cplx> w1, w2, w3;

  // alltoallv counts/displacements, in complex elements.
  std::vector<std::size_t> sc_yz, sd_yz, rc_yz, rd_yz;  // CommB, y<->z
  std::vector<std::size_t> sc_zx, sd_zx, rc_zx, rd_zx;  // CommA, z<->x

  // Exchange strategies resolved at plan time (paper Section 4.3: FFTW's
  // planner times the candidates and keeps the fastest).
  exchange_strategy strat_a = exchange_strategy::alltoall;
  exchange_strategy strat_b = exchange_strategy::alltoall;

  section_timer comm_t, reorder_t, fft_t;

  impl(const grid& g, vmpi::cart2d& cart, kernel_config c)
      : d(g, c, cart.pa(), cart.pb(), cart.coord_a(), cart.coord_b()),
        cfg(c),
        comm_a(cart.comm_a()),
        comm_b(cart.comm_b()),
        z_fwd(d.nzf, fft::direction::forward),
        z_inv(d.nzf, fft::direction::inverse),
        x_fwd(d.nxf),
        x_inv(d.nxf),
        fft_pool(std::max(1, c.fft_threads)),
        reorder_pool(std::max(1, c.reorder_threads)) {
    build_counts();
    const std::size_t wn = workspace_elems();
    w1.reset(wn);
    w2.reset(wn);
    if (!cfg.drop_nyquist && !cfg.dealias) w3.reset(wn);  // P3DFFT mode
    plan_strategies();
  }

  /// One exchange with either strategy. The pairwise algorithm runs p-1
  /// rounds with partner (rank + r) mod p — the MPI_Sendrecv pattern FFTW's
  /// transpose planner generates.
  void do_exchange(vmpi::communicator& comm, exchange_strategy strat,
                   const cplx* send, const std::size_t* sc,
                   const std::size_t* sd, cplx* recv, const std::size_t* rc,
                   const std::size_t* rd) {
    if (strat == exchange_strategy::alltoall) {
      comm.alltoallv(send, sc, sd, recv, rc, rd);
      return;
    }
    const int p = comm.size();
    const int me = comm.rank();
    std::copy_n(send + sd[me], sc[me],
                recv + rd[me]);  // self block, no communication
    for (int r = 1; r < p; ++r) {
      const int dest = (me + r) % p;
      const int src = (me + p - r) % p;
      comm.exchange(send + sd[dest], sc[dest], dest, recv + rd[src], rc[src]);
    }
  }

  /// Resolve auto_plan by timing both strategies on the real buffers and
  /// counts; all ranks must agree, so the timings are max-reduced before
  /// the choice is made.
  void plan_strategies() {
    strat_a = cfg.strategy;
    strat_b = cfg.strategy;
    if (cfg.strategy != exchange_strategy::auto_plan) return;
    auto pick = [&](vmpi::communicator& comm, const std::size_t* sc,
                    const std::size_t* sd, const std::size_t* rc,
                    const std::size_t* rd) {
      if (comm.size() == 1) return exchange_strategy::alltoall;
      double best[2];
      const exchange_strategy cand[2] = {exchange_strategy::alltoall,
                                         exchange_strategy::pairwise};
      for (int c = 0; c < 2; ++c) {
        wall_timer t;
        for (int rep = 0; rep < 3; ++rep)
          do_exchange(comm, cand[c], w1.data(), sc, sd, w2.data(), rc, rd);
        best[c] = t.seconds();
      }
      double agreed[2];
      comm.allreduce_max(best, agreed, 2);
      return agreed[0] <= agreed[1] ? cand[0] : cand[1];
    };
    strat_b = pick(comm_b, sc_yz.data(), sd_yz.data(), rc_yz.data(),
                   rd_yz.data());
    strat_a = pick(comm_a, sc_zx.data(), sd_zx.data(), rc_zx.data(),
                   rd_zx.data());
  }

  [[nodiscard]] std::size_t workspace_elems() const {
    const std::size_t yz_total = d.xs.count * d.g.nz * d.yb.count;
    const std::size_t zx_total = d.nxs * d.yb.count * d.zp.count;
    std::size_t m = d.y_pencil_elems();
    m = std::max(m, yz_total);
    m = std::max(m, d.z_pencil_elems());
    m = std::max(m, zx_total);
    m = std::max(m, d.x_pencil_spec_elems());
    return m;
  }

  void build_counts() {
    const int pb = d.pb, pa = d.pa;
    sc_yz.resize(static_cast<std::size_t>(pb));
    sd_yz.resize(static_cast<std::size_t>(pb));
    rc_yz.resize(static_cast<std::size_t>(pb));
    rd_yz.resize(static_cast<std::size_t>(pb));
    std::size_t s = 0, r = 0;
    for (int q = 0; q < pb; ++q) {
      const block yq = block_range(d.g.ny, pb, q);
      const block zq = block_range(d.g.nz, pb, q);
      sc_yz[static_cast<std::size_t>(q)] = d.xs.count * d.zs.count * yq.count;
      sd_yz[static_cast<std::size_t>(q)] = s;
      s += sc_yz[static_cast<std::size_t>(q)];
      rc_yz[static_cast<std::size_t>(q)] = d.xs.count * zq.count * d.yb.count;
      rd_yz[static_cast<std::size_t>(q)] = r;
      r += rc_yz[static_cast<std::size_t>(q)];
    }
    sc_zx.resize(static_cast<std::size_t>(pa));
    sd_zx.resize(static_cast<std::size_t>(pa));
    rc_zx.resize(static_cast<std::size_t>(pa));
    rd_zx.resize(static_cast<std::size_t>(pa));
    s = r = 0;
    for (int q = 0; q < pa; ++q) {
      const block zq = block_range(d.nzf, pa, q);
      const block xq = block_range(d.nxs, pa, q);
      sc_zx[static_cast<std::size_t>(q)] = d.xs.count * d.yb.count * zq.count;
      sd_zx[static_cast<std::size_t>(q)] = s;
      s += sc_zx[static_cast<std::size_t>(q)];
      rc_zx[static_cast<std::size_t>(q)] = xq.count * d.yb.count * d.zp.count;
      rd_zx[static_cast<std::size_t>(q)] = r;
      r += rc_zx[static_cast<std::size_t>(q)];
    }
  }

  /// Padded position of spectral z mode zg (3/2-rule: negative modes move
  /// to the end of the padded line).
  [[nodiscard]] std::size_t zpad_pos(std::size_t zg) const {
    return zg < d.g.nz / 2 ? zg : zg + (d.nzf - d.g.nz);
  }

  // --- inverse path (spectral -> physical) --------------------------------

  void pack_y_to_z(const cplx* spec, cplx* send) {
    reorder_t.start();
    const std::size_t zc = d.zs.count, ny = d.g.ny;
    reorder_pool.run(d.xs.count, [&](std::size_t xb, std::size_t xe) {
      for (int q = 0; q < d.pb; ++q) {
        const block yq = block_range(ny, d.pb, q);
        for (std::size_t x = xb; x < xe; ++x) {
          for (std::size_t z = 0; z < zc; ++z) {
            const cplx* src = spec + (x * zc + z) * ny + yq.offset;
            cplx* dst = send + sd_yz[static_cast<std::size_t>(q)] +
                        (x * zc + z) * yq.count;
            std::copy_n(src, yq.count, dst);
          }
        }
      }
    });
    counters::add_read(d.y_pencil_elems() * sizeof(cplx));
    counters::add_written(d.y_pencil_elems() * sizeof(cplx));
    reorder_t.stop();
  }

  void unpack_z_pencil(const cplx* recv, cplx* zbuf) {
    reorder_t.start();
    const std::size_t yc = d.yb.count, nzf = d.nzf, nzg = d.g.nz;
    const bool dealias = nzf > nzg;
    // Zero the dealiasing gap once per line. The gap also swallows the
    // spanwise Nyquist mode nz/2: on the padded grid +nz/2 and -nz/2 are
    // distinct modes, so the (self-conjugate) Nyquist coefficient is not
    // representable and is dropped, as in the paper (Section 4.4).
    if (dealias) {
      reorder_pool.run(d.xs.count * yc, [&](std::size_t b, std::size_t e) {
        for (std::size_t l = b; l < e; ++l)
          std::fill_n(zbuf + l * nzf + nzg / 2, nzf - nzg + 1, cplx{0.0, 0.0});
      });
    }
    reorder_pool.run(d.xs.count, [&](std::size_t xb, std::size_t xe) {
      for (int q = 0; q < d.pb; ++q) {
        const block zq = block_range(nzg, d.pb, q);
        const cplx* seg = recv + rd_yz[static_cast<std::size_t>(q)];
        for (std::size_t x = xb; x < xe; ++x) {
          for (std::size_t zl = 0; zl < zq.count; ++zl) {
            const std::size_t zg = zq.offset + zl;
            if (dealias && zg == nzg / 2) continue;  // dropped Nyquist
            const std::size_t zp = zpad_pos(zg);
            const cplx* src = seg + (x * zq.count + zl) * yc;
            for (std::size_t y = 0; y < yc; ++y)
              zbuf[(x * yc + y) * nzf + zp] = src[y];
          }
        }
      }
    });
    counters::add_read(d.xs.count * nzg * yc * sizeof(cplx));
    counters::add_written(d.z_pencil_elems() * sizeof(cplx));
    reorder_t.stop();
  }

  void pack_z_to_x(const cplx* zbuf, cplx* send) {
    reorder_t.start();
    const std::size_t yc = d.yb.count, nzf = d.nzf;
    reorder_pool.run(d.xs.count, [&](std::size_t xb, std::size_t xe) {
      for (int q = 0; q < d.pa; ++q) {
        const block zq = block_range(nzf, d.pa, q);
        for (std::size_t x = xb; x < xe; ++x) {
          for (std::size_t y = 0; y < yc; ++y) {
            const cplx* src = zbuf + (x * yc + y) * nzf + zq.offset;
            cplx* dst = send + sd_zx[static_cast<std::size_t>(q)] +
                        (x * yc + y) * zq.count;
            std::copy_n(src, zq.count, dst);
          }
        }
      }
    });
    counters::add_read(d.z_pencil_elems() * sizeof(cplx));
    counters::add_written(d.z_pencil_elems() * sizeof(cplx));
    reorder_t.stop();
  }

  void unpack_x_pencil(const cplx* recv, cplx* xbuf) {
    reorder_t.start();
    const std::size_t yc = d.yb.count, zc = d.zp.count;
    const std::size_t modes = d.x_line_modes();
    // Zero the dealiasing pad region of each x line.
    if (modes > d.nxs) {
      reorder_pool.run(zc * yc, [&](std::size_t b, std::size_t e) {
        for (std::size_t l = b; l < e; ++l)
          std::fill_n(xbuf + l * modes + d.nxs, modes - d.nxs, cplx{0.0, 0.0});
      });
    }
    reorder_pool.run(zc, [&](std::size_t zb, std::size_t ze) {
      for (int q = 0; q < d.pa; ++q) {
        const block xq = block_range(d.nxs, d.pa, q);
        const cplx* seg = recv + rd_zx[static_cast<std::size_t>(q)];
        for (std::size_t xl = 0; xl < xq.count; ++xl) {
          for (std::size_t y = 0; y < yc; ++y) {
            const cplx* src = seg + (xl * yc + y) * zc;
            for (std::size_t z = zb; z < ze; ++z)
              xbuf[(z * yc + y) * modes + xq.offset + xl] = src[z];
          }
        }
      }
    });
    counters::add_read(d.nxs * yc * zc * sizeof(cplx));
    counters::add_written(d.x_pencil_spec_elems() * sizeof(cplx));
    reorder_t.stop();
  }

  // --- forward path (physical -> spectral) --------------------------------

  void pack_x_to_z(const cplx* xspec, cplx* send) {
    reorder_t.start();
    const std::size_t yc = d.yb.count, zc = d.zp.count;
    const std::size_t modes = d.x_line_modes();
    reorder_pool.run(zc, [&](std::size_t zb, std::size_t ze) {
      for (int q = 0; q < d.pa; ++q) {
        const block xq = block_range(d.nxs, d.pa, q);
        cplx* seg = send + rd_zx[static_cast<std::size_t>(q)];
        for (std::size_t xl = 0; xl < xq.count; ++xl) {
          for (std::size_t y = 0; y < yc; ++y) {
            cplx* dst = seg + (xl * yc + y) * zc;
            for (std::size_t z = zb; z < ze; ++z)
              dst[z] = xspec[(z * yc + y) * modes + xq.offset + xl];
          }
        }
      }
    });
    counters::add_read(d.nxs * yc * zc * sizeof(cplx));
    counters::add_written(d.nxs * yc * zc * sizeof(cplx));
    reorder_t.stop();
  }

  void unpack_z_from_x(const cplx* recv, cplx* zbuf) {
    reorder_t.start();
    const std::size_t yc = d.yb.count, nzf = d.nzf;
    reorder_pool.run(d.xs.count, [&](std::size_t xb, std::size_t xe) {
      for (int q = 0; q < d.pa; ++q) {
        const block zq = block_range(nzf, d.pa, q);
        const cplx* seg = recv + sd_zx[static_cast<std::size_t>(q)];
        for (std::size_t x = xb; x < xe; ++x) {
          for (std::size_t y = 0; y < yc; ++y) {
            cplx* dst = zbuf + (x * yc + y) * nzf + zq.offset;
            std::copy_n(seg + (x * yc + y) * zq.count, zq.count, dst);
          }
        }
      }
    });
    counters::add_read(d.z_pencil_elems() * sizeof(cplx));
    counters::add_written(d.z_pencil_elems() * sizeof(cplx));
    reorder_t.stop();
  }

  void pack_z_to_y(const cplx* zbuf, cplx* send, double scale) {
    reorder_t.start();
    const std::size_t yc = d.yb.count, nzf = d.nzf, nzg = d.g.nz;
    reorder_pool.run(d.xs.count, [&](std::size_t xb, std::size_t xe) {
      for (int q = 0; q < d.pb; ++q) {
        const block zq = block_range(nzg, d.pb, q);
        cplx* seg = send + rd_yz[static_cast<std::size_t>(q)];
        for (std::size_t x = xb; x < xe; ++x) {
          for (std::size_t zl = 0; zl < zq.count; ++zl) {
            const std::size_t zg = zq.offset + zl;
            cplx* dst = seg + (x * zq.count + zl) * yc;
            if (nzf > nzg && zg == nzg / 2) {  // dropped Nyquist
              std::fill_n(dst, yc, cplx{0.0, 0.0});
              continue;
            }
            const std::size_t zp = zpad_pos(zg);
            for (std::size_t y = 0; y < yc; ++y)
              dst[y] = zbuf[(x * yc + y) * nzf + zp] * scale;
          }
        }
      }
    });
    counters::add_read(d.xs.count * nzg * yc * sizeof(cplx));
    counters::add_written(d.xs.count * nzg * yc * sizeof(cplx));
    reorder_t.stop();
  }

  void unpack_y_pencil(const cplx* recv, cplx* spec) {
    reorder_t.start();
    const std::size_t zc = d.zs.count, ny = d.g.ny;
    reorder_pool.run(d.xs.count, [&](std::size_t xb, std::size_t xe) {
      for (int q = 0; q < d.pb; ++q) {
        const block yq = block_range(ny, d.pb, q);
        const cplx* seg = recv + sd_yz[static_cast<std::size_t>(q)];
        for (std::size_t x = xb; x < xe; ++x) {
          for (std::size_t z = 0; z < zc; ++z) {
            cplx* dst = spec + (x * zc + z) * ny + yq.offset;
            std::copy_n(seg + (x * zc + z) * yq.count, yq.count, dst);
          }
        }
      }
    });
    counters::add_read(d.y_pencil_elems() * sizeof(cplx));
    counters::add_written(d.y_pencil_elems() * sizeof(cplx));
    reorder_t.stop();
  }

  // --- FFT stages ----------------------------------------------------------

  void z_fft(cplx* zbuf, const fft::c2c_plan& plan) {
    fft_t.start();
    const std::size_t lines = d.xs.count * d.yb.count;
    const std::size_t len = d.nzf;
    fft_pool.run(lines, [&](std::size_t b, std::size_t e) {
      plan.execute_many(zbuf + b * len, len, zbuf + b * len, len, e - b);
    });
    fft_t.stop();
  }

  void x_c2r(const cplx* xspec, double* phys) {
    fft_t.start();
    const std::size_t lines = d.zp.count * d.yb.count;
    const std::size_t modes = d.x_line_modes();
    fft_pool.run(lines, [&](std::size_t b, std::size_t e) {
      x_inv.execute_many(xspec + b * modes, modes, phys + b * d.nxf, d.nxf,
                         e - b);
    });
    fft_t.stop();
  }

  void x_r2c(const double* phys, cplx* xspec) {
    fft_t.start();
    const std::size_t lines = d.zp.count * d.yb.count;
    const std::size_t modes = d.x_line_modes();
    fft_pool.run(lines, [&](std::size_t b, std::size_t e) {
      x_fwd.execute_many(phys + b * d.nxf, d.nxf, xspec + b * modes, modes,
                         e - b);
    });
    fft_t.stop();
  }

  // --- transposes (communication) ------------------------------------------

  void a2a_yz(const cplx* send, cplx* recv) {
    comm_t.start();
    do_exchange(comm_b, strat_b, send, sc_yz.data(), sd_yz.data(), recv,
                rc_yz.data(), rd_yz.data());
    comm_t.stop();
  }
  void a2a_zy(const cplx* send, cplx* recv) {
    comm_t.start();
    do_exchange(comm_b, strat_b, send, rc_yz.data(), rd_yz.data(), recv,
                sc_yz.data(), sd_yz.data());
    comm_t.stop();
  }
  void a2a_zx(const cplx* send, cplx* recv) {
    comm_t.start();
    do_exchange(comm_a, strat_a, send, sc_zx.data(), sd_zx.data(), recv,
                rc_zx.data(), rd_zx.data());
    comm_t.stop();
  }
  void a2a_xz(const cplx* send, cplx* recv) {
    comm_t.start();
    do_exchange(comm_a, strat_a, send, rc_zx.data(), rd_zx.data(), recv,
                sc_zx.data(), sd_zx.data());
    comm_t.stop();
  }

  void to_physical(const cplx* spec, double* phys) {
    cplx* a = w1.data();
    cplx* b = w2.data();
    pack_y_to_z(spec, a);
    if (w3.empty()) {
      a2a_yz(a, b);
      unpack_z_pencil(b, a);
      z_fft(a, z_inv);
      pack_z_to_x(a, b);
      a2a_zx(b, a);
      unpack_x_pencil(a, b);
      x_c2r(b, phys);
    } else {
      // P3DFFT-style: dedicated buffers per stage (3x footprint).
      cplx* c = w3.data();
      a2a_yz(a, b);
      unpack_z_pencil(b, c);
      z_fft(c, z_inv);
      pack_z_to_x(c, a);
      a2a_zx(a, b);
      unpack_x_pencil(b, c);
      x_c2r(c, phys);
    }
  }

  void to_spectral(const double* phys, cplx* spec) {
    cplx* a = w1.data();
    cplx* b = w2.data();
    const double scale =
        1.0 / (static_cast<double>(d.nxf) * static_cast<double>(d.nzf));
    x_r2c(phys, a);
    if (w3.empty()) {
      pack_x_to_z(a, b);
      a2a_xz(b, a);
      unpack_z_from_x(a, b);
      z_fft(b, z_fwd);
      pack_z_to_y(b, a, scale);
      a2a_zy(a, b);
      unpack_y_pencil(b, spec);
    } else {
      cplx* c = w3.data();
      pack_x_to_z(a, b);
      a2a_xz(b, c);
      unpack_z_from_x(c, a);
      z_fft(a, z_fwd);
      pack_z_to_y(a, b, scale);
      a2a_zy(b, c);
      unpack_y_pencil(c, spec);
    }
  }
};

parallel_fft::parallel_fft(const grid& g, vmpi::cart2d& cart,
                           kernel_config cfg)
    : impl_(new impl(g, cart, cfg)) {}
parallel_fft::~parallel_fft() = default;

const decomp& parallel_fft::dec() const { return impl_->d; }
const kernel_config& parallel_fft::config() const { return impl_->cfg; }

void parallel_fft::to_physical(const cplx* spec, double* phys) {
  impl_->to_physical(spec, phys);
}
void parallel_fft::to_spectral(const double* phys, cplx* spec) {
  impl_->to_spectral(phys, spec);
}

std::size_t parallel_fft::workspace_bytes() const {
  return (impl_->w1.size() + impl_->w2.size() + impl_->w3.size()) *
         sizeof(cplx);
}

exchange_strategy parallel_fft::strategy_a() const { return impl_->strat_a; }
exchange_strategy parallel_fft::strategy_b() const { return impl_->strat_b; }

double parallel_fft::comm_seconds() const { return impl_->comm_t.total(); }
double parallel_fft::reorder_seconds() const {
  return impl_->reorder_t.total();
}
double parallel_fft::fft_seconds() const { return impl_->fft_t.total(); }
void parallel_fft::reset_timers() {
  impl_->comm_t.reset();
  impl_->reorder_t.reset();
  impl_->fft_t.reset();
}

}  // namespace pcf::pencil
