#include "pencil/autotune.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <mutex>

#include "io/atomic_file.hpp"
#include "util/crc.hpp"
#include "util/timer.hpp"

namespace pcf::pencil {

namespace {

// On-disk layout: header {magic, version, entry count} then fixed-size
// entries, each 18 payload words (11 key + 7 choice) followed by a CRC-32
// of those payload bytes. All words are native u32 — the cache is a local
// per-machine artifact, not an interchange format.
//
// v2 (the decomposition layer): key grew {decomp_kind, replica_c}, choice
// grew {decomp, pa, pb}. v1 files fail the version check and fall back to
// re-measurement — exactly the invalidation the format bump is for.
constexpr std::uint32_t kMagic = 0x50465443;  // "PFTC"
constexpr std::uint32_t kVersion = 2;
constexpr std::size_t kPayloadWords = 18;
constexpr std::size_t kEntryBytes = (kPayloadWords + 1) * sizeof(std::uint32_t);
constexpr std::size_t kHeaderBytes = 3 * sizeof(std::uint32_t);

std::uint32_t encode_strategy(exchange_strategy s) {
  return s == exchange_strategy::pairwise ? 1u : 0u;
}

bool decode_strategy(std::uint32_t v, exchange_strategy& out) {
  if (v == 0) out = exchange_strategy::alltoall;
  else if (v == 1) out = exchange_strategy::pairwise;
  else return false;
  return true;
}

std::uint32_t encode_decomp(decomposition d) {
  switch (d) {
    case decomposition::pencil2d: return 0;
    case decomposition::slab: return 1;
    case decomposition::hybrid_25d: return 2;
    case decomposition::tuned: return 3;
  }
  return 0;
}

bool decode_decomp(std::uint32_t v, decomposition& out) {
  if (v == 0) out = decomposition::pencil2d;
  else if (v == 1) out = decomposition::slab;
  else if (v == 2) out = decomposition::hybrid_25d;
  else if (v == 3) out = decomposition::tuned;
  else return false;
  return true;
}

void pack_entry(const tune_entry& e, std::uint32_t w[kPayloadWords + 1]) {
  w[0] = e.key.nx;
  w[1] = e.key.ny;
  w[2] = e.key.nz;
  w[3] = e.key.pa;
  w[4] = e.key.pb;
  w[5] = e.key.fft_threads;
  w[6] = e.key.reorder_threads;
  w[7] = e.key.max_batch;
  w[8] = e.key.flags;
  w[9] = e.key.decomp_kind;
  w[10] = e.key.replica_c;
  w[11] = encode_strategy(e.choice.strat_a);
  w[12] = encode_strategy(e.choice.strat_b);
  w[13] = static_cast<std::uint32_t>(e.choice.batch);
  w[14] = static_cast<std::uint32_t>(e.choice.pipeline_depth);
  w[15] = encode_decomp(e.choice.decomp);
  w[16] = static_cast<std::uint32_t>(e.choice.pa);
  w[17] = static_cast<std::uint32_t>(e.choice.pb);
  w[kPayloadWords] = crc32(w, kPayloadWords * sizeof(std::uint32_t));
}

bool unpack_entry(const std::uint32_t w[kPayloadWords + 1], tune_entry& e,
                  std::string& why) {
  if (crc32(w, kPayloadWords * sizeof(std::uint32_t)) != w[kPayloadWords]) {
    why = "entry CRC mismatch";
    return false;
  }
  e.key = tune_key{w[0], w[1], w[2], w[3], w[4], w[5],
                   w[6], w[7], w[8], w[9], w[10]};
  if (!decode_strategy(w[11], e.choice.strat_a) ||
      !decode_strategy(w[12], e.choice.strat_b)) {
    why = "unknown exchange strategy code";
    return false;
  }
  e.choice.batch = static_cast<int>(w[13]);
  e.choice.pipeline_depth = static_cast<int>(w[14]);
  if (e.choice.batch < 1 || e.choice.batch > 1024 ||
      e.choice.pipeline_depth < 1 ||
      e.choice.pipeline_depth > e.choice.batch) {
    why = "implausible tuning choice";
    return false;
  }
  if (!decode_decomp(w[15], e.choice.decomp) ||
      e.choice.decomp == decomposition::tuned) {
    why = "unknown or unresolved decomposition code";
    return false;
  }
  e.choice.pa = static_cast<int>(w[16]);
  e.choice.pb = static_cast<int>(w[17]);
  if (w[16] > (1u << 20) || w[17] > (1u << 20)) {
    why = "implausible decomposition grid";
    return false;
  }
  return true;
}

void warn(std::vector<std::string>* sink, std::string msg) {
  std::cerr << "pcf autotune: " << msg << "\n";
  if (sink != nullptr) sink->push_back(std::move(msg));
}

// --- in-process memo (see the header's section comment) --------------------

struct memo_entry {
  std::string path;
  tune_key key;
  tune_choice choice;
  bool ready = false;  // false: an owner is measuring
};

struct memo_state {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<memo_entry> entries;
  std::uint64_t hits = 0, misses = 0;
};

memo_state& memo() {
  static memo_state m;
  return m;
}

memo_entry* memo_find_locked(memo_state& m, const std::string& path,
                             const tune_key& key) {
  for (memo_entry& e : m.entries)
    if (e.path == path && e.key == key) return &e;
  return nullptr;
}

// True on a published hit (`out` filled). False when the caller became the
// owner and must measure, then publish (or abandon, so a waiter can take
// over). With `force` set the caller always ends up owning — it waits out
// any in-flight measurement first, then re-measures over the stale choice.
bool memo_lookup_or_begin(const std::string& path, const tune_key& key,
                          bool force, tune_choice& out) {
  memo_state& m = memo();
  std::unique_lock<std::mutex> lk(m.mu);
  for (;;) {
    memo_entry* e = memo_find_locked(m, path, key);
    if (e == nullptr) {
      m.entries.push_back({path, key, tune_choice{}, false});
      ++m.misses;
      return false;
    }
    if (!e->ready) {
      m.cv.wait(lk);
      continue;
    }
    if (force) {
      e->ready = false;
      ++m.misses;
      return false;
    }
    ++m.hits;
    out = e->choice;
    return true;
  }
}

void memo_publish(const std::string& path, const tune_key& key,
                  const tune_choice& choice) {
  memo_state& m = memo();
  {
    std::lock_guard<std::mutex> lk(m.mu);
    memo_entry* e = memo_find_locked(m, path, key);
    if (e != nullptr) {
      e->choice = choice;
      e->ready = true;
    }
  }
  m.cv.notify_all();
}

void memo_abandon(const std::string& path, const tune_key& key) {
  memo_state& m = memo();
  {
    std::lock_guard<std::mutex> lk(m.mu);
    auto& v = m.entries;
    for (auto it = v.begin(); it != v.end(); ++it)
      if (it->path == path && it->key == key && !it->ready) {
        v.erase(it);
        break;
      }
  }
  m.cv.notify_all();
}

// RAII over an owned (measuring) memo slot: abandons on scope exit unless
// published, so an exception mid-measurement wakes a waiter to take over
// instead of deadlocking every later caller of the key.
struct memo_ownership {
  std::string path;
  tune_key key;
  bool armed = false;

  memo_ownership() = default;
  memo_ownership(const memo_ownership&) = delete;
  memo_ownership& operator=(const memo_ownership&) = delete;
  ~memo_ownership() {
    if (armed) memo_abandon(path, key);
  }
  void arm(const std::string& p, const tune_key& k) {
    path = p;
    key = k;
    armed = true;
  }
  void publish(const tune_choice& c) {
    memo_publish(path, key, c);
    armed = false;
  }
};

// Serializes load-merge-store cycles on one cache file across threads; the
// memo covers same-key racing, this covers distinct keys merging into the
// same file. Mutexes are never reclaimed — the table holds one entry per
// distinct cache path the process ever tunes against.
std::mutex& cache_file_mutex(const std::string& path) {
  static std::mutex table_mu;
  static std::vector<std::pair<std::string, std::unique_ptr<std::mutex>>>
      table;
  std::lock_guard<std::mutex> lk(table_mu);
  for (auto& [p, mu] : table)
    if (p == path) return *mu;
  table.emplace_back(path, std::make_unique<std::mutex>());
  return *table.back().second;
}

}  // namespace

tuning_memo_stats tuning_memo_statistics() {
  memo_state& m = memo();
  std::lock_guard<std::mutex> lk(m.mu);
  tuning_memo_stats s;
  s.hits = m.hits;
  s.misses = m.misses;
  for (const memo_entry& e : m.entries)
    if (e.ready) ++s.entries;
  return s;
}

void tuning_memo_reset() {
  memo_state& m = memo();
  std::lock_guard<std::mutex> lk(m.mu);
  m.entries.clear();
  m.hits = 0;
  m.misses = 0;
}

tune_key make_tune_key(const grid& g, const kernel_config& base, int pa,
                       int pb, decomposition dk, int replica_c) {
  tune_key k;
  k.decomp_kind = encode_decomp(dk);
  k.replica_c = static_cast<std::uint32_t>(std::max(0, replica_c));
  k.nx = static_cast<std::uint32_t>(g.nx);
  k.ny = static_cast<std::uint32_t>(g.ny);
  k.nz = static_cast<std::uint32_t>(g.nz);
  k.pa = static_cast<std::uint32_t>(pa);
  k.pb = static_cast<std::uint32_t>(pb);
  k.fft_threads = static_cast<std::uint32_t>(std::max(1, base.fft_threads));
  k.reorder_threads =
      static_cast<std::uint32_t>(std::max(1, base.reorder_threads));
  k.max_batch = static_cast<std::uint32_t>(std::max(1, base.max_batch));
  k.flags = (base.drop_nyquist ? 1u : 0u) | (base.dealias ? 2u : 0u);
  return k;
}

kernel_config apply_tuning(kernel_config base, const tune_choice& choice) {
  base.strategy_a = choice.strat_a;
  base.strategy_b = choice.strat_b;
  base.max_batch = choice.batch;
  base.pipeline_depth = choice.pipeline_depth;
  return base;
}

std::vector<tune_entry> load_tuning_cache(const std::string& path,
                                          std::vector<std::string>* warnings) {
  std::vector<tune_entry> entries;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return entries;  // no cache yet: a silent miss
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  if (bytes.size() < kHeaderBytes) {
    warn(warnings, "tuning cache '" + path + "' truncated header; ignoring");
    return entries;
  }
  std::uint32_t hdr[3];
  std::memcpy(hdr, bytes.data(), kHeaderBytes);
  if (hdr[0] != kMagic) {
    warn(warnings, "tuning cache '" + path + "' has bad magic; ignoring");
    return entries;
  }
  if (hdr[1] != kVersion) {
    warn(warnings, "tuning cache '" + path + "' has version " +
                       std::to_string(hdr[1]) + " (expected " +
                       std::to_string(kVersion) + "); ignoring");
    return entries;
  }
  const std::size_t count = hdr[2];
  const std::size_t body = bytes.size() - kHeaderBytes;
  if (body != count * kEntryBytes) {
    warn(warnings, "tuning cache '" + path +
                       "' body size does not match its entry count; "
                       "keeping the valid prefix");
  }
  const std::size_t have = std::min(count, body / kEntryBytes);
  for (std::size_t i = 0; i < have; ++i) {
    std::uint32_t w[kPayloadWords + 1];
    std::memcpy(w, bytes.data() + kHeaderBytes + i * kEntryBytes, kEntryBytes);
    tune_entry e;
    std::string why;
    if (unpack_entry(w, e, why)) {
      entries.push_back(e);
    } else {
      warn(warnings, "tuning cache '" + path + "' entry " +
                         std::to_string(i) + ": " + why + "; skipping it");
    }
  }
  return entries;
}

void save_tuning_cache(const std::string& path,
                       const std::vector<tune_entry>& entries) {
  io::atomic_file_writer w(path);
  const std::uint32_t hdr[3] = {kMagic, kVersion,
                                static_cast<std::uint32_t>(entries.size())};
  w.write(hdr, sizeof(hdr));
  for (const tune_entry& e : entries) {
    std::uint32_t words[kPayloadWords + 1];
    pack_entry(e, words);
    w.write(words, sizeof(words));
  }
  w.commit();
}

const tune_entry* find_tuning_entry(const std::vector<tune_entry>& entries,
                                    const tune_key& key) {
  for (const tune_entry& e : entries)
    if (e.key == key) return &e;
  return nullptr;
}

tune_report autotune_transforms(const grid& g, vmpi::communicator& world,
                                vmpi::cart2d& cart, const kernel_config& base,
                                const tune_options& opt) {
  tune_report rep;
  rep.key = make_tune_key(g, base, cart.pa(), cart.pb());
  const bool root = world.rank() == 0;

  // Consult the caches on rank 0 and broadcast the verdict so every rank
  // takes the same branch (measurement is collective). Memo first — a
  // published hit costs no file I/O, and a miss makes this call the key's
  // owner (concurrent callers of the same key block until we publish).
  std::uint32_t hit[5] = {0, 0, 0, 0, 0};  // hit[0]: 0 miss, 1 file, 2 memo
  std::vector<tune_entry> entries;
  memo_ownership own;
  if (!opt.cache_path.empty()) {
    if (root) {
      tune_choice mc;
      if (memo_lookup_or_begin(opt.cache_path, rep.key, opt.force_retune,
                               mc)) {
        hit[0] = 2;
        hit[1] = encode_strategy(mc.strat_a);
        hit[2] = encode_strategy(mc.strat_b);
        hit[3] = static_cast<std::uint32_t>(mc.batch);
        hit[4] = static_cast<std::uint32_t>(mc.pipeline_depth);
      } else {
        own.arm(opt.cache_path, rep.key);
        std::lock_guard<std::mutex> flk(cache_file_mutex(opt.cache_path));
        entries = load_tuning_cache(opt.cache_path, &rep.warnings);
        const tune_entry* e = find_tuning_entry(entries, rep.key);
        if (e != nullptr && !opt.force_retune) {
          hit[0] = 1;
          hit[1] = encode_strategy(e->choice.strat_a);
          hit[2] = encode_strategy(e->choice.strat_b);
          hit[3] = static_cast<std::uint32_t>(e->choice.batch);
          hit[4] = static_cast<std::uint32_t>(e->choice.pipeline_depth);
        }
      }
    }
    world.bcast(hit, 5, 0);
  }
  if (hit[0] != 0) {
    rep.from_cache = true;
    rep.from_memo = hit[0] == 2;
    decode_strategy(hit[1], rep.choice.strat_a);
    decode_strategy(hit[2], rep.choice.strat_b);
    rep.choice.batch = static_cast<int>(hit[3]);
    rep.choice.pipeline_depth = static_cast<int>(hit[4]);
    if (root && own.armed) own.publish(rep.choice);  // seed memo from file
    return rep;
  }

  // Resolve the exchange strategies once, on the batch-scaled exchanges
  // (plan_strategies measures with max_batch-wide counts and max-reduces).
  tune_choice chosen;
  {
    kernel_config probe = base;
    probe.strategy = exchange_strategy::auto_plan;
    probe.strategy_a = exchange_strategy::auto_plan;
    probe.strategy_b = exchange_strategy::auto_plan;
    probe.pipeline_depth = 1;
    parallel_fft pf(g, cart, probe);
    chosen.strat_a = pf.strategy_a();
    chosen.strat_b = pf.strategy_b();
    // plan_strategies agrees within each sub-communicator group, but the
    // cart has pa CommB groups (and pb CommA groups) that can resolve
    // differently; the tuned choice is global, so rank 0's wins.
    std::uint32_t sb[2] = {encode_strategy(chosen.strat_a),
                           encode_strategy(chosen.strat_b)};
    world.bcast(sb, 2, 0);
    decode_strategy(sb[0], chosen.strat_a);
    decode_strategy(sb[1], chosen.strat_b);
  }

  // Workload mirroring one RK3 nonlinear substage: 3 fields down to
  // physical space, 5 products back up.
  const decomp dd(g, base, cart.pa(), cart.pb(), cart.coord_a(),
                  cart.coord_b());
  constexpr std::size_t kDown = 3, kUp = 5;
  std::vector<std::vector<cplx>> spec(kUp);
  std::vector<std::vector<double>> phys(kUp);
  for (std::size_t f = 0; f < kUp; ++f) {
    spec[f].assign(dd.y_pencil_elems(), cplx{0.0, 0.0});
    phys[f].assign(dd.x_pencil_real_elems(), 0.0);
  }

  const int reps = std::max(1, opt.reps);
  double best_time = std::numeric_limits<double>::infinity();
  const int fcand[3] = {1, 3, 5};
  for (int F : fcand) {
    if (F > std::max(1, base.max_batch)) continue;
    for (int depth = 1; depth <= 2; ++depth) {
      if (depth > F) continue;  // a group per field at most
      parallel_fft pf(g, cart,
                      apply_tuning(base, {chosen.strat_a, chosen.strat_b, F,
                                          depth}));
      const cplx* sdown[kDown];
      double* pdown[kDown];
      const double* pup[kUp];
      cplx* sup[kUp];
      for (std::size_t f = 0; f < kDown; ++f) {
        sdown[f] = spec[f].data();
        pdown[f] = phys[f].data();
      }
      for (std::size_t f = 0; f < kUp; ++f) {
        pup[f] = phys[f].data();
        sup[f] = spec[f].data();
      }
      auto substage = [&] {
        pf.to_physical_batch(sdown, pdown, kDown);
        pf.to_spectral_batch(pup, sup, kUp);
      };
      substage();  // warm-up, untimed
      double local = std::numeric_limits<double>::infinity();
      for (int rep = 0; rep < reps; ++rep) {
        wall_timer t;
        substage();
        local = std::min(local, t.seconds());
      }
      double agreed = 0.0;
      world.allreduce_max(&local, &agreed, 1);
      rep.measured.push_back({F, depth, agreed});
      if (F == 1 && depth == 1) rep.per_field_s = agreed;
      // Strict < with the ascending (F, depth) sweep: ties go to the
      // smaller batch, then the shallower pipeline — deterministic, and
      // identical on every rank because `agreed` is.
      if (agreed < best_time) {
        best_time = agreed;
        chosen.batch = F;
        chosen.pipeline_depth = depth;
      }
    }
  }
  rep.choice = chosen;
  rep.chosen_s = best_time;

  if (!opt.cache_path.empty()) {
    if (root) {
      // Load-merge-store so concurrent keys (other grids/splits) survive;
      // the per-path mutex keeps a concurrent merger from dropping ours.
      std::lock_guard<std::mutex> flk(cache_file_mutex(opt.cache_path));
      entries = load_tuning_cache(opt.cache_path, nullptr);
      bool replaced = false;
      for (tune_entry& e : entries)
        if (e.key == rep.key) {
          e.choice = chosen;
          replaced = true;
        }
      if (!replaced) entries.push_back({rep.key, chosen});
      try {
        save_tuning_cache(opt.cache_path, entries);
        rep.stored = true;
      } catch (const std::exception& ex) {
        warn(&rep.warnings, std::string("failed to store tuning cache '") +
                                opt.cache_path + "': " + ex.what());
      }
    }
    // The cache write (or its failure) is settled before anyone returns
    // and possibly re-reads the file.
    world.barrier();
    // Publish after the file settles: waiters blocked on this key resume
    // with the measured choice (a failed store still publishes — the
    // choice is valid either way).
    if (root && own.armed) own.publish(chosen);
  }
  return rep;
}

decomp_tune_report autotune_decomposition(const grid& g,
                                          vmpi::communicator& world,
                                          decomposition requested, int pa,
                                          int pb, int replica_c,
                                          const kernel_config& base,
                                          const tune_options& opt) {
  decomp_tune_report rep;
  const int ranks = world.size();
  if (requested != decomposition::tuned) {
    rep.plan = plan_decomposition(requested, g, ranks, pa, pb, replica_c);
    return rep;
  }
  // Tuned runs need no configured pencil grid (the config default is
  // 1 x 1): normalize to the near-square split so the candidate set and
  // the cache key agree across launches.
  if (pa < 1 || pb < 1 || pa * pb != ranks)
    default_pencil_grid(ranks, pa, pb);
  rep.key = make_tune_key(g, base, pa, pb, decomposition::tuned, replica_c);
  const bool root = world.rank() == 0;

  // Cache consult on rank 0 (memo tier first, exactly as in
  // autotune_transforms), verdict broadcast (measurement is collective).
  std::uint32_t hit[4] = {0, 0, 0, 0};  // hit[0]: 0 miss, 1 file, 2 memo
  std::vector<tune_entry> entries;
  memo_ownership own;
  if (!opt.cache_path.empty()) {
    if (root) {
      tune_choice mc;
      if (memo_lookup_or_begin(opt.cache_path, rep.key, opt.force_retune,
                               mc)) {
        hit[0] = 2;
        hit[1] = encode_decomp(mc.decomp);
        hit[2] = static_cast<std::uint32_t>(mc.pa);
        hit[3] = static_cast<std::uint32_t>(mc.pb);
      } else {
        own.arm(opt.cache_path, rep.key);
        std::lock_guard<std::mutex> flk(cache_file_mutex(opt.cache_path));
        entries = load_tuning_cache(opt.cache_path, &rep.warnings);
        const tune_entry* e = find_tuning_entry(entries, rep.key);
        if (e != nullptr && !opt.force_retune) {
          hit[0] = 1;
          hit[1] = encode_decomp(e->choice.decomp);
          hit[2] = static_cast<std::uint32_t>(e->choice.pa);
          hit[3] = static_cast<std::uint32_t>(e->choice.pb);
        }
      }
    }
    world.bcast(hit, 4, 0);
  }
  if (hit[0] != 0) {
    decomposition dk = decomposition::pencil2d;
    decode_decomp(hit[1], dk);
    const int cpa = static_cast<int>(hit[2]);
    const int cpb = static_cast<int>(hit[3]);
    if (cpa >= 1 && cpb >= 1 && cpa * cpb == ranks) {
      rep.from_cache = true;
      rep.from_memo = hit[0] == 2;
      rep.plan = {dk, cpa, cpb,
                  dk == decomposition::hybrid_25d ? cpa : 1};
      if (root && own.armed) {
        tune_choice c;
        c.decomp = dk;
        c.pa = cpa;
        c.pb = cpb;
        own.publish(c);  // seed the memo from the validated file hit
      }
      return rep;
    }
    if (root)
      warn(&rep.warnings,
           "cached decomposition does not cover this rank count; "
           "re-measuring");
  }

  // Measure each runnable layout on its own temporary Cartesian split,
  // running the 3-down + 5-up RK3 substage workload. pencil2d (with the
  // configured pa x pb) is always candidate 0 and ties break toward it,
  // so the tuned choice is never slower than pencil as measured.
  const std::vector<decomp_plan> cands =
      decomposition_candidates(g, ranks, pa, pb);
  const int reps = std::max(1, opt.reps);
  constexpr std::size_t kDown = 3, kUp = 5;
  double best_time = std::numeric_limits<double>::infinity();
  for (const decomp_plan& p : cands) {
    vmpi::cart2d cart(world, p.pa, p.pb);
    parallel_fft pf(g, cart, base);
    const decomp& dd = pf.dec();
    std::vector<std::vector<cplx>> spec(kUp);
    std::vector<std::vector<double>> phys(kUp);
    for (std::size_t f = 0; f < kUp; ++f) {
      spec[f].assign(dd.y_pencil_elems(), cplx{0.0, 0.0});
      phys[f].assign(dd.x_pencil_real_elems(), 0.0);
    }
    const cplx* sdown[kDown];
    double* pdown[kDown];
    const double* pup[kUp];
    cplx* sup[kUp];
    for (std::size_t f = 0; f < kDown; ++f) {
      sdown[f] = spec[f].data();
      pdown[f] = phys[f].data();
    }
    for (std::size_t f = 0; f < kUp; ++f) {
      pup[f] = phys[f].data();
      sup[f] = spec[f].data();
    }
    auto substage = [&] {
      pf.to_physical_batch(sdown, pdown, kDown);
      pf.to_spectral_batch(pup, sup, kUp);
    };
    substage();  // warm-up, untimed
    double local = std::numeric_limits<double>::infinity();
    for (int r = 0; r < reps; ++r) {
      wall_timer t;
      substage();
      local = std::min(local, t.seconds());
    }
    double agreed = 0.0;
    world.allreduce_max(&local, &agreed, 1);
    rep.measured.push_back({p, agreed});
    if (agreed < best_time) {
      best_time = agreed;
      rep.plan = p;
    }
  }

  if (!opt.cache_path.empty()) {
    tune_choice choice;
    choice.decomp = rep.plan.kind;
    choice.pa = rep.plan.pa;
    choice.pb = rep.plan.pb;
    if (root) {
      std::lock_guard<std::mutex> flk(cache_file_mutex(opt.cache_path));
      entries = load_tuning_cache(opt.cache_path, nullptr);
      bool replaced = false;
      for (tune_entry& e : entries)
        if (e.key == rep.key) {
          e.choice = choice;
          replaced = true;
        }
      if (!replaced) entries.push_back({rep.key, choice});
      try {
        save_tuning_cache(opt.cache_path, entries);
        rep.stored = true;
      } catch (const std::exception& ex) {
        warn(&rep.warnings,
             std::string("failed to store tuning cache '") + opt.cache_path +
                 "': " + ex.what());
      }
    }
    world.barrier();
    if (root && own.armed) own.publish(choice);
  }
  return rep;
}

}  // namespace pcf::pencil
