// pcf::determinism — bit-identity harness for the channel DNS.
//
// The solver is deterministic by construction (DESIGN.md, "Determinism
// contract"): thread counts, transform batch width, pipeline depth and the
// virtual-rank decomposition are all data-movement choices that must not
// change a single bit of the evolved state, and a run restored from any
// checkpoint format must continue exactly as the uninterrupted run.
// This header turns that contract into something a test can assert *per
// step*: a `step_fingerprint` condenses the instantaneous state into the
// per-section CRC-32s of a gathered-global checkpoint (decomposition-
// independent: every mode line has one owner, so the gather is exact),
// and `compare` reports the first diverging step *and field* so a failure
// names where the bit-identity broke, not just that it did.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/simulation.hpp"

namespace pcf::determinism {

/// The state digest of one step boundary. time/dt are carried as IEEE-754
/// bit patterns: the contract is bit-identity, and a textual round-trip of
/// a double through a golden file must not be a source of false matches.
struct step_fingerprint {
  long step = 0;
  std::uint64_t time_bits = 0;
  std::uint64_t dt_bits = 0;
  std::uint32_t crc_v = 0;     // v-hat spline coefficients
  std::uint32_t crc_om = 0;    // omega_y-hat
  std::uint32_t crc_phi = 0;   // phi-hat
  std::uint32_t crc_mean = 0;  // mean U/W profiles
  // Fold of every scenario section CRC (passive scalars, flow-rate
  // forcing state) in checkpoint order; 0 for the default scenario, so
  // default-channel golden traces are unchanged by the scenario layer.
  std::uint32_t crc_scalars = 0;

  /// One CRC-32 over every field above — the per-step value a golden
  /// trace pins. crc_scalars participates only when nonzero, keeping the
  /// default channel's combined values frozen.
  [[nodiscard]] std::uint32_t combined() const;

  bool operator==(const step_fingerprint&) const = default;
};

/// A per-step fingerprint sequence (row 0 is the pre-step state).
struct trace {
  std::vector<step_fingerprint> steps;
};

/// Digest the instantaneous state. Collective: writes a gathered-global
/// checkpoint to `scratch_path` (overwritten per call) and parses the
/// section CRCs back out of it, so every rank returns the identical
/// fingerprint regardless of the decomposition.
[[nodiscard]] step_fingerprint fingerprint(core::channel_dns& dns,
                                           const std::string& scratch_path);

/// Fingerprint the current state, then advance `nsteps` steps
/// fingerprinting after each one: nsteps + 1 rows. Collective.
[[nodiscard]] trace record_trace(core::channel_dns& dns, int nsteps,
                                 const std::string& scratch_path);

/// One point of disagreement between two traces: the row, the step count
/// recorded there, and the first field that differs ("rows" for a length
/// mismatch, else "step", "time", "dt", "c_v", "c_om", "c_phi", "mean" or
/// "scalars").
struct divergence {
  std::size_t row = 0;
  long step = 0;
  std::string field;
  std::uint64_t expected = 0;
  std::uint64_t actual = 0;
};

/// Row-by-row comparison; one divergence per disagreeing row (first field
/// in evolution order), empty means bit-identical traces.
[[nodiscard]] std::vector<divergence> compare(const trace& expected,
                                              const trace& actual);

/// Human-readable one-line-per-divergence report for test failures.
[[nodiscard]] std::string describe(const std::vector<divergence>& divs);

/// Golden-trace round trip. The CSV is stable and diff-friendly: one row
/// per step, doubles as hex bit patterns, CRCs as hex.
void write_trace_csv(const std::string& path, const trace& t);
[[nodiscard]] trace read_trace_csv(const std::string& path);

/// CRC-32 of an entire file — pins the frozen on-disk checkpoint layout
/// (the 0x3fa23d27 per-rank quickstart lineage).
[[nodiscard]] std::uint32_t file_crc32(const std::string& path);

}  // namespace pcf::determinism
