// Small statistics helpers for profile analysis.
#pragma once

#include <cstddef>
#include <vector>

namespace pcf::analysis {

struct linear_fit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;  // coefficient of determination
};

/// Ordinary least squares y = slope * x + intercept. Needs >= 2 points
/// with non-degenerate x.
linear_fit fit_linear(const std::vector<double>& x,
                      const std::vector<double>& y);

/// Centered finite-difference derivative dy/dx on a nonuniform grid
/// (second-order three-point formula; one-sided at the ends).
std::vector<double> derivative(const std::vector<double>& x,
                               const std::vector<double>& y);

}  // namespace pcf::analysis
