#include "analysis/regression.hpp"

#include <cmath>

#include "util/check.hpp"

namespace pcf::analysis {

linear_fit fit_linear(const std::vector<double>& x,
                      const std::vector<double>& y) {
  PCF_REQUIRE(x.size() == y.size(), "x and y must have equal length");
  PCF_REQUIRE(x.size() >= 2, "need at least two points");
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double det = n * sxx - sx * sx;
  PCF_REQUIRE(det > 0.0, "degenerate abscissae");
  linear_fit f;
  f.slope = (n * sxy - sx * sy) / det;
  f.intercept = (sy - f.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - (f.slope * x[i] + f.intercept);
    ss_res += e * e;
  }
  f.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return f;
}

std::vector<double> derivative(const std::vector<double>& x,
                               const std::vector<double>& y) {
  PCF_REQUIRE(x.size() == y.size() && x.size() >= 3,
              "need at least three points");
  const std::size_t n = x.size();
  std::vector<double> d(n);
  for (std::size_t i = 1; i + 1 < n; ++i) {
    // Three-point formula on a nonuniform grid.
    const double h1 = x[i] - x[i - 1];
    const double h2 = x[i + 1] - x[i];
    d[i] = (y[i + 1] * h1 * h1 - y[i - 1] * h2 * h2 +
            y[i] * (h2 * h2 - h1 * h1)) /
           (h1 * h2 * (h1 + h2));
  }
  // Second-order one-sided (Lagrange) formulas at the ends.
  auto one_sided = [&](std::size_t i0, std::size_t i1, std::size_t i2) {
    const double x0 = x[i0], x1 = x[i1], x2 = x[i2];
    return y[i0] * (2 * x0 - x1 - x2) / ((x0 - x1) * (x0 - x2)) +
           y[i1] * (x0 - x2) / ((x1 - x0) * (x1 - x2)) +
           y[i2] * (x0 - x1) / ((x2 - x0) * (x2 - x1));
  };
  d[0] = one_sided(0, 1, 2);
  d[n - 1] = one_sided(n - 1, n - 2, n - 3);
  return d;
}

}  // namespace pcf::analysis
