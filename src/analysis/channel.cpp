#include "analysis/channel.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace pcf::analysis {

loglaw_fit fit_loglaw(const std::vector<double>& yplus,
                      const std::vector<double>& uplus, double lo,
                      double hi) {
  PCF_REQUIRE(yplus.size() == uplus.size(), "profile arrays must match");
  PCF_REQUIRE(lo > 0.0 && hi > lo, "need a positive y+ band");
  std::vector<double> lx, ly;
  for (std::size_t i = 0; i < yplus.size(); ++i) {
    if (yplus[i] >= lo && yplus[i] <= hi) {
      lx.push_back(std::log(yplus[i]));
      ly.push_back(uplus[i]);
    }
  }
  PCF_REQUIRE(lx.size() >= 3, "too few points inside the fit band");
  const auto f = fit_linear(lx, ly);
  loglaw_fit out;
  PCF_REQUIRE(f.slope > 0.0, "profile is not increasing in the band");
  out.kappa = 1.0 / f.slope;
  out.B = f.intercept;
  out.r2 = f.r2;
  out.points_used = lx.size();
  return out;
}

std::vector<double> indicator_function(const std::vector<double>& yplus,
                                       const std::vector<double>& uplus) {
  auto d = derivative(yplus, uplus);
  std::vector<double> xi(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) xi[i] = yplus[i] * d[i];
  return xi;
}

stress_balance check_stress_balance(const std::vector<double>& y,
                                    const std::vector<double>& u,
                                    const std::vector<double>& uv,
                                    double re_tau) {
  PCF_REQUIRE(y.size() == u.size() && y.size() == uv.size(),
              "profile arrays must match");
  PCF_REQUIRE(re_tau > 0.0, "re_tau must be positive");
  stress_balance b;
  const auto dudy = derivative(y, u);
  const std::size_t n = y.size();
  b.viscous.resize(n);
  b.turbulent.resize(n);
  b.total.resize(n);
  b.expected.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    b.viscous[i] = dudy[i] / re_tau;
    b.turbulent[i] = -uv[i];
    b.total[i] = b.viscous[i] + b.turbulent[i];
    b.expected[i] = -y[i];
    b.max_error = std::max(b.max_error, std::abs(b.total[i] - b.expected[i]));
  }
  return b;
}

}  // namespace pcf::analysis
