// Channel-flow profile analysis: the quantitative checks behind the
// paper's Figures 5-6 — the logarithmic law of the wall and the total
// stress balance that certifies statistical convergence.
#pragma once

#include <vector>

#include "analysis/regression.hpp"

namespace pcf::analysis {

struct loglaw_fit {
  double kappa = 0.0;  // von Karman constant (reference ~0.38-0.41)
  double B = 0.0;      // additive constant (reference ~5.0-5.3)
  double r2 = 0.0;
  std::size_t points_used = 0;
};

/// Fit U+ = (1/kappa) ln y+ + B over y+ in [lo, hi] (default: the
/// classical overlap band 30 < y+ < 0.3 Re_tau scaled to the data range).
loglaw_fit fit_loglaw(const std::vector<double>& yplus,
                      const std::vector<double>& uplus, double lo, double hi);

/// Log-law indicator function Xi = y+ dU+/dy+; flat at 1/kappa inside a
/// genuine logarithmic layer (the standard high-Re diagnostic).
std::vector<double> indicator_function(const std::vector<double>& yplus,
                                       const std::vector<double>& uplus);

struct stress_balance {
  std::vector<double> viscous;    // nu dU/dy (plus units)
  std::vector<double> turbulent;  // -<uv>
  std::vector<double> total;      // sum
  std::vector<double> expected;   // 1 - (1 + y) for y in [-1, 0] etc. = -y
  double max_error = 0.0;         // max |total - expected|
};

/// Total-stress linearity check: in a statistically steady channel driven
/// by unit pressure gradient, nu dU/dy - <uv> = -y exactly. The residual
/// measures statistical convergence. Inputs in outer units: y in [-1, 1],
/// U in friction units, uv = <u'v'>; nu = 1 / re_tau.
stress_balance check_stress_balance(const std::vector<double>& y,
                                    const std::vector<double>& u,
                                    const std::vector<double>& uv,
                                    double re_tau);

}  // namespace pcf::analysis
