#include "analysis/determinism.hpp"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/check.hpp"
#include "util/crc.hpp"

namespace pcf::determinism {

namespace {

std::uint64_t bits_of(double x) {
  std::uint64_t b = 0;
  std::memcpy(&b, &x, sizeof(b));
  return b;
}

// Mirror of the checkpoint writer's section header (checkpoint.cpp). The
// v2 layout is frozen — tests hash whole checkpoint files — so reading it
// back here cannot drift from the writer.
struct section_header {
  char name[8];
  std::uint64_t bytes;
  std::uint32_t crc;
  std::uint32_t reserved;
};
static_assert(sizeof(section_header) == 24, "section header must be packed");

}  // namespace

std::uint32_t step_fingerprint::combined() const {
  std::uint32_t c = crc32_init();
  c = crc32_update(c, &step, sizeof(step));
  c = crc32_update(c, &time_bits, sizeof(time_bits));
  c = crc32_update(c, &dt_bits, sizeof(dt_bits));
  c = crc32_update(c, &crc_v, sizeof(crc_v));
  c = crc32_update(c, &crc_om, sizeof(crc_om));
  c = crc32_update(c, &crc_phi, sizeof(crc_phi));
  c = crc32_update(c, &crc_mean, sizeof(crc_mean));
  // Scenario sections join the digest only when present, so default-
  // channel combined values (and their golden CSVs) stay frozen.
  if (crc_scalars != 0)
    c = crc32_update(c, &crc_scalars, sizeof(crc_scalars));
  return crc32_final(c);
}

step_fingerprint fingerprint(core::channel_dns& dns,
                             const std::string& scratch_path) {
  // The gathered-global format is the decomposition-independent view of
  // the state: each rank's mode lines land at their global offsets through
  // an exact single-owner sum reduction, so the section CRCs match across
  // any pa x pb split. save_checkpoint_global barriers before returning,
  // after which every rank may read the file.
  dns.save_checkpoint_global(scratch_path);

  step_fingerprint fp;
  fp.step = dns.step_count();
  fp.time_bits = bits_of(dns.time());
  fp.dt_bits = bits_of(dns.dt());

  std::ifstream is(scratch_path, std::ios::binary);
  PCF_REQUIRE(is.good(),
              "cannot reopen fingerprint scratch checkpoint: " + scratch_path);
  // Header: magic u64, dims u64[3], time double, steps long, meta u32[2].
  is.seekg(static_cast<std::streamoff>(4 * sizeof(std::uint64_t) +
                                       sizeof(double) + sizeof(long)));
  std::uint32_t meta[2] = {0, 0};
  is.read(reinterpret_cast<char*>(meta), sizeof(meta));
  PCF_REQUIRE(!is.fail() && meta[0] >= 4,
              "fingerprint scratch checkpoint has unexpected layout");
  const char* names[4] = {"c_v", "c_om", "c_phi", "mean"};
  std::uint32_t* out[4] = {&fp.crc_v, &fp.crc_om, &fp.crc_phi, &fp.crc_mean};
  for (int t = 0; t < 4; ++t) {
    section_header h{};
    is.read(reinterpret_cast<char*>(&h), sizeof(h));
    PCF_REQUIRE(!is.fail() &&
                    std::string(h.name, strnlen(h.name, sizeof(h.name))) ==
                        names[t],
                std::string("fingerprint scratch checkpoint section '") +
                    names[t] + "' missing");
    *out[t] = h.crc;
    is.seekg(static_cast<std::streamoff>(h.bytes), std::ios::cur);
  }
  // Scenario sections (passive scalars, flow-rate forcing state) follow
  // the frozen four; fold their CRCs in checkpoint order. Stays 0 when
  // there are none.
  if (meta[0] > 4) {
    std::uint32_t c = crc32_init();
    for (std::uint32_t t = 4; t < meta[0]; ++t) {
      section_header h{};
      is.read(reinterpret_cast<char*>(&h), sizeof(h));
      PCF_REQUIRE(!is.fail(),
                  "fingerprint scratch checkpoint scenario section missing");
      c = crc32_update(c, &h.crc, sizeof(h.crc));
      is.seekg(static_cast<std::streamoff>(h.bytes), std::ios::cur);
    }
    fp.crc_scalars = crc32_final(c);
  }
  return fp;
}

trace record_trace(core::channel_dns& dns, int nsteps,
                   const std::string& scratch_path) {
  // PCF_DETERMINISM_POOLED (the `determinism-pooled` CMake test preset):
  // drive every recorded step through a full suspend -> release ->
  // re-lease -> resume cycle, so the whole suite proves that workspace
  // slabs landing on different pool blocks never change bits. Safe for
  // owned-lane configurations too (suspend frees, resume reallocates).
  static const bool cycle = std::getenv("PCF_DETERMINISM_POOLED") != nullptr;
  trace t;
  t.steps.reserve(static_cast<std::size_t>(nsteps) + 1);
  t.steps.push_back(fingerprint(dns, scratch_path));
  for (int s = 0; s < nsteps; ++s) {
    if (cycle) {
      dns.suspend();
      dns.resume();
    }
    dns.step();
    t.steps.push_back(fingerprint(dns, scratch_path));
  }
  return t;
}

std::vector<divergence> compare(const trace& expected, const trace& actual) {
  std::vector<divergence> divs;
  if (expected.steps.size() != actual.steps.size()) {
    divergence d;
    d.row = std::min(expected.steps.size(), actual.steps.size());
    d.field = "rows";
    d.expected = expected.steps.size();
    d.actual = actual.steps.size();
    divs.push_back(d);
  }
  const std::size_t n = std::min(expected.steps.size(), actual.steps.size());
  for (std::size_t i = 0; i < n; ++i) {
    const step_fingerprint& e = expected.steps[i];
    const step_fingerprint& a = actual.steps[i];
    if (e == a) continue;
    divergence d;
    d.row = i;
    d.step = e.step;
    // Attribute the first differing field in evolution order: the step/
    // time/dt bookkeeping first (a restart that re-counts steps differs
    // there before any field does), then the evolved fields.
    if (e.step != a.step) {
      d.field = "step";
      d.expected = static_cast<std::uint64_t>(e.step);
      d.actual = static_cast<std::uint64_t>(a.step);
    } else if (e.time_bits != a.time_bits) {
      d.field = "time";
      d.expected = e.time_bits;
      d.actual = a.time_bits;
    } else if (e.dt_bits != a.dt_bits) {
      d.field = "dt";
      d.expected = e.dt_bits;
      d.actual = a.dt_bits;
    } else if (e.crc_v != a.crc_v) {
      d.field = "c_v";
      d.expected = e.crc_v;
      d.actual = a.crc_v;
    } else if (e.crc_om != a.crc_om) {
      d.field = "c_om";
      d.expected = e.crc_om;
      d.actual = a.crc_om;
    } else if (e.crc_phi != a.crc_phi) {
      d.field = "c_phi";
      d.expected = e.crc_phi;
      d.actual = a.crc_phi;
    } else if (e.crc_mean != a.crc_mean) {
      d.field = "mean";
      d.expected = e.crc_mean;
      d.actual = a.crc_mean;
    } else {
      d.field = "scalars";
      d.expected = e.crc_scalars;
      d.actual = a.crc_scalars;
    }
    divs.push_back(d);
  }
  return divs;
}

std::string describe(const std::vector<divergence>& divs) {
  if (divs.empty()) return "traces are bit-identical";
  std::ostringstream os;
  os << std::hex;
  for (const auto& d : divs)
    os << "row " << std::dec << d.row << " (step " << d.step << "): " << d.field
       << " expected 0x" << std::hex << d.expected << " got 0x" << d.actual
       << "\n";
  return os.str();
}

void write_trace_csv(const std::string& path, const trace& t) {
  std::ofstream os(path);
  PCF_REQUIRE(os.good(), "cannot open trace file for writing: " + path);
  // The extended header (with crc_scalars) is written only when some row
  // carries scenario state, so default-channel golden CSVs keep their
  // frozen byte layout.
  bool scalars = false;
  for (const auto& fp : t.steps) scalars = scalars || fp.crc_scalars != 0;
  os << (scalars ? "step,time_bits,dt_bits,crc_v,crc_om,crc_phi,crc_mean,"
                   "crc_scalars,combined\n"
                 : "step,time_bits,dt_bits,crc_v,crc_om,crc_phi,crc_mean,"
                   "combined\n");
  os << std::hex;
  for (const auto& fp : t.steps) {
    os << std::dec << fp.step << std::hex << ',' << fp.time_bits << ','
       << fp.dt_bits << ',' << fp.crc_v << ',' << fp.crc_om << ','
       << fp.crc_phi << ',' << fp.crc_mean << ',';
    if (scalars) os << fp.crc_scalars << ',';
    os << fp.combined() << '\n';
  }
  PCF_REQUIRE(os.good(), "trace write failed: " + path);
}

trace read_trace_csv(const std::string& path) {
  std::ifstream is(path);
  PCF_REQUIRE(is.good(), "cannot open trace file for reading: " + path);
  std::string line;
  PCF_REQUIRE(static_cast<bool>(std::getline(is, line)),
              "trace file header missing: " + path);
  const bool scalars =
      line ==
      "step,time_bits,dt_bits,crc_v,crc_om,crc_phi,crc_mean,crc_scalars,"
      "combined";
  PCF_REQUIRE(scalars ||
                  line ==
                      "step,time_bits,dt_bits,crc_v,crc_om,crc_phi,crc_mean,"
                      "combined",
              "trace file header mismatch: " + path);
  trace t;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    step_fingerprint fp;
    char c = 0;
    std::uint64_t combined = 0;
    ls >> std::dec >> fp.step >> c >> std::hex >> fp.time_bits >> c >>
        fp.dt_bits >> c >> fp.crc_v >> c >> fp.crc_om >> c >> fp.crc_phi >>
        c >> fp.crc_mean >> c;
    if (scalars) ls >> fp.crc_scalars >> c;
    ls >> combined;
    PCF_REQUIRE(!ls.fail(), "malformed trace row in " + path + ": " + line);
    PCF_REQUIRE(combined == fp.combined(),
                "trace row self-check failed in " + path + ": " + line);
    t.steps.push_back(fp);
  }
  return t;
}

std::uint32_t file_crc32(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  PCF_REQUIRE(is.good(), "cannot open file for checksumming: " + path);
  char buf[1 << 16];
  std::uint32_t crc = crc32_init();
  while (is) {
    is.read(buf, sizeof(buf));
    crc = crc32_update(crc, buf, static_cast<std::size_t>(is.gcount()));
  }
  PCF_REQUIRE(is.eof(), "file read failed while checksumming: " + path);
  return crc32_final(crc);
}

}  // namespace pcf::determinism
