// Reference general banded solver in LAPACK band storage with partial
// pivoting — the reproduction's stand-in for Netlib DGBTRF/DGBTRS and
// ZGBTRF/ZGBTRS (the baselines of the paper's Table 1).
//
// Storage follows LAPACK GB convention: a (2*kl + ku + 1) x n array where
// in-band element (i, j) lives at ab[kl + ku + i - j][j]; the extra kl rows
// hold fill-in produced by partial pivoting.
#pragma once

#include <complex>
#include <vector>

#include "util/check.hpp"

namespace pcf::banded {

using cplx = std::complex<double>;

/// General banded matrix with kl subdiagonals and ku superdiagonals.
/// T is double or std::complex<double>.
template <class T>
class gb_matrix {
 public:
  gb_matrix(int n, int kl, int ku)
      : n_(n), kl_(kl), ku_(ku), ldab_(2 * kl + ku + 1),
        ab_(static_cast<std::size_t>(ldab_) * static_cast<std::size_t>(n),
            T{}),
        ipiv_(static_cast<std::size_t>(n)) {
    PCF_REQUIRE(n >= 1, "matrix dimension must be positive");
    PCF_REQUIRE(kl >= 0 && ku >= 0, "bandwidths must be nonnegative");
  }

  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] int kl() const { return kl_; }
  [[nodiscard]] int ku() const { return ku_; }

  /// True if (i, j) lies inside the declared band.
  [[nodiscard]] bool in_band(int i, int j) const {
    return i >= 0 && i < n_ && j >= 0 && j < n_ && j - i <= ku_ &&
           i - j <= kl_;
  }

  /// Access element (i, j); must be in band.
  T& at(int i, int j) {
    PCF_REQUIRE(in_band(i, j), "element outside declared band");
    return entry(i, j);
  }
  const T& at(int i, int j) const {
    PCF_REQUIRE(in_band(i, j), "element outside declared band");
    return const_cast<gb_matrix*>(this)->entry(i, j);
  }

  /// Bytes of matrix storage (for the paper's memory-footprint comparison).
  [[nodiscard]] std::size_t storage_bytes() const {
    return ab_.size() * sizeof(T) + ipiv_.size() * sizeof(int);
  }

  /// LU factorization with partial pivoting (GBTRF). Throws
  /// numerical_error if a pivot is exactly zero.
  void factorize();

  /// Solve A x = b in place for one RHS (GBTRS); requires factorize().
  template <class S>
  void solve(S* x) const;

  /// Solve for nrhs right-hand sides, each contiguous with given stride.
  /// Blocked like the custom solver: the factored band (and the pivot
  /// sequence) is streamed once per block of up to 8 RHS instead of once
  /// per RHS, so the Table 1 comparison stays apples-to-apples.
  template <class S>
  void solve_many(S* x, int nrhs, std::size_t stride) const;

  [[nodiscard]] bool factorized() const { return factorized_; }

 private:
  T& entry(int i, int j) {
    // LAPACK GB layout, row-major here: band row (kl + ku + i - j), col j.
    return ab_[static_cast<std::size_t>(kl_ + ku_ + i - j) *
                   static_cast<std::size_t>(n_) +
               static_cast<std::size_t>(j)];
  }

  int n_, kl_, ku_, ldab_;
  std::vector<T> ab_;
  std::vector<int> ipiv_;
  bool factorized_ = false;
};

extern template class gb_matrix<double>;
extern template class gb_matrix<cplx>;
extern template void gb_matrix<double>::solve(double*) const;
extern template void gb_matrix<double>::solve(cplx*) const;
extern template void gb_matrix<cplx>::solve(cplx*) const;
extern template void gb_matrix<double>::solve_many(double*, int,
                                                   std::size_t) const;
extern template void gb_matrix<double>::solve_many(cplx*, int,
                                                   std::size_t) const;
extern template void gb_matrix<cplx>::solve_many(cplx*, int,
                                                 std::size_t) const;

}  // namespace pcf::banded
