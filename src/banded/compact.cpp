#include "banded/compact.hpp"

#include <algorithm>

#include "util/counters.hpp"

namespace pcf::banded {

compact_banded::compact_banded(int n, int h)
    : n_(n), h_(h), w_(2 * h + 1),
      a_(static_cast<std::size_t>(n) * static_cast<std::size_t>(2 * h + 1),
         0.0) {
  PCF_REQUIRE(h >= 0, "half-bandwidth must be nonnegative");
  PCF_REQUIRE(n >= 2 * h + 1, "compact format needs n >= bandwidth");
}

void compact_banded::clear() {
  std::fill(a_.begin(), a_.end(), 0.0);
  factorized_ = false;
}

template <class S>
void compact_banded::apply(const S* x, S* y) const {
  PCF_REQUIRE(!factorized_, "apply() needs the unfactored matrix");
  for (int i = 0; i < n_; ++i) {
    const int s = row_start(i);
    const double* r = row(i);
    S acc{};
    for (int c = 0; c < w_; ++c) acc += r[c] * x[s + c];
    y[i] = acc;
  }
  counters::add_flops(static_cast<std::uint64_t>(n_) * 2u *
                      static_cast<std::uint64_t>(w_) *
                      (std::is_same_v<S, cplx> ? 2 : 1));
}

namespace {

/// The factorization and substitution kernels are instantiated with a
/// compile-time half-bandwidth for the common cases (the paper hand-unrolls
/// these loops; here the fixed trip counts let the compiler do it).
/// HC == 0 selects the runtime-bandwidth fallback.
template <int HC>
struct kernels {
  static int row_start(int i, int n, int h) {
    const int lo = i - h;
    const int hi = n - 1 - 2 * h;
    return lo < 0 ? 0 : (lo > hi ? hi : lo);
  }

  static std::uint64_t factorize(double* a, int n, int rh) {
    const int h = HC > 0 ? HC : rh;
    const int w = 2 * h + 1;
    std::uint64_t flops = 0;
    auto entry = [&](int i, int j) -> double& {
      return a[static_cast<std::size_t>(i) * static_cast<std::size_t>(w) +
               static_cast<std::size_t>(j - row_start(i, n, h))];
    };
    for (int j = 0; j < n; ++j) {
      const double piv = entry(j, j);
      if (piv == 0.0)
        throw numerical_error("compact_banded::factorize: zero pivot");
      const double inv = 1.0 / piv;
      const int jend = row_start(j, n, h) + 2 * h;

      auto eliminate = [&](int k) {
        double& lkj = entry(k, j);
        if (lkj == 0.0) return;
        const double m = lkj * inv;
        lkj = m;
        const double* prow =
            a + static_cast<std::size_t>(j) * static_cast<std::size_t>(w);
        double* krow = &entry(k, j);
        const int off = j - row_start(j, n, h);
        const int len = jend - j;
        const double* p = prow + off + 1;
        for (int c = 0; c < len; ++c) krow[1 + c] -= m * p[c];
        flops += 2u * static_cast<std::uint64_t>(len) + 1u;
      };

      const int band_end = std::min(j + h, n - 1);
      for (int k = j + 1; k <= band_end; ++k) eliminate(k);
      if (j >= n - 1 - 2 * h) {
        const int lo = std::max(band_end + 1, n - h);
        for (int k = lo; k < n; ++k) eliminate(k);
      }
    }
    return flops;
  }

  template <class S>
  static void solve(const double* a, int n, int rh, S* x) {
    const int h = HC > 0 ? HC : rh;
    const int w = 2 * h + 1;
    auto entry = [&](int i, int j) -> double {
      return a[static_cast<std::size_t>(i) * static_cast<std::size_t>(w) +
               static_cast<std::size_t>(j - row_start(i, n, h))];
    };
    // Forward substitution with unit-diagonal L.
    for (int j = 0; j < n; ++j) {
      const S xj = x[j];
      const int band_end = std::min(j + h, n - 1);
      for (int k = j + 1; k <= band_end; ++k) {
        const double l = entry(k, j);
        if (l != 0.0) x[k] -= l * xj;
      }
      if (j >= n - 1 - 2 * h) {
        const int lo = std::max(band_end + 1, n - h);
        for (int k = lo; k < n; ++k) {
          const double l = entry(k, j);
          if (l != 0.0) x[k] -= l * xj;
        }
      }
    }
    // Back substitution with U.
    for (int j = n - 1; j >= 0; --j) {
      const int s = row_start(j, n, h);
      const double* r =
          a + static_cast<std::size_t>(j) * static_cast<std::size_t>(w);
      const int off = j - s;
      S acc = x[j];
      const int len = 2 * h - off;
      const double* u = r + off;
      for (int c = 1; c <= len; ++c) acc -= u[c] * x[j + c];
      x[j] = acc / u[0];
    }
  }
};

}  // namespace

void compact_banded::factorize() {
  std::uint64_t flops = 0;
  switch (h_) {
    case 1: flops = kernels<1>::factorize(a_.data(), n_, h_); break;
    case 2: flops = kernels<2>::factorize(a_.data(), n_, h_); break;
    case 3: flops = kernels<3>::factorize(a_.data(), n_, h_); break;
    case 4: flops = kernels<4>::factorize(a_.data(), n_, h_); break;
    case 5: flops = kernels<5>::factorize(a_.data(), n_, h_); break;
    case 6: flops = kernels<6>::factorize(a_.data(), n_, h_); break;
    case 7: flops = kernels<7>::factorize(a_.data(), n_, h_); break;
    default: flops = kernels<0>::factorize(a_.data(), n_, h_); break;
  }
  factorized_ = true;
  counters::add_flops(flops);
  // Logical traffic estimate: each fused multiply-subtract reads a pivot-row
  // and a target-row entry and writes the target back.
  counters::add_read(flops * 8);
  counters::add_written(flops * 4);
}

template <class S>
void compact_banded::solve_one(S* x) const {
  switch (h_) {
    case 1: kernels<1>::solve(a_.data(), n_, h_, x); break;
    case 2: kernels<2>::solve(a_.data(), n_, h_, x); break;
    case 3: kernels<3>::solve(a_.data(), n_, h_, x); break;
    case 4: kernels<4>::solve(a_.data(), n_, h_, x); break;
    case 5: kernels<5>::solve(a_.data(), n_, h_, x); break;
    case 6: kernels<6>::solve(a_.data(), n_, h_, x); break;
    case 7: kernels<7>::solve(a_.data(), n_, h_, x); break;
    default: kernels<0>::solve(a_.data(), n_, h_, x); break;
  }
  const std::uint64_t solve_flops =
      static_cast<std::uint64_t>(n_) *
      (2u * static_cast<std::uint64_t>(w_) + 2u) *
      (std::is_same_v<S, cplx> ? 2 : 1);
  counters::add_flops(solve_flops);
  counters::add_read(solve_flops * 8);
  counters::add_written(static_cast<std::uint64_t>(n_) * sizeof(S) * 2);
}

template <class S>
void compact_banded::solve(S* x) const {
  PCF_REQUIRE(factorized_, "solve() requires factorize() first");
  solve_one(x);
}

template <class S>
void compact_banded::solve_many(S* x, int nrhs, std::size_t stride) const {
  PCF_REQUIRE(factorized_, "solve_many() requires factorize() first");
  for (int r = 0; r < nrhs; ++r)
    solve_one(x + static_cast<std::size_t>(r) * stride);
}

template void compact_banded::apply(const double*, double*) const;
template void compact_banded::apply(const cplx*, cplx*) const;
template void compact_banded::solve(double*) const;
template void compact_banded::solve(cplx*) const;
template void compact_banded::solve_many(double*, int, std::size_t) const;
template void compact_banded::solve_many(cplx*, int, std::size_t) const;

}  // namespace pcf::banded
