#include "banded/compact.hpp"

#include <algorithm>
#include <type_traits>

#include "util/counters.hpp"

namespace pcf::banded {

compact_banded::compact_banded(int n, int h)
    : n_(n), h_(h), w_(2 * h + 1),
      a_(static_cast<std::size_t>(n) * static_cast<std::size_t>(2 * h + 1),
         0.0) {
  PCF_REQUIRE(h >= 0, "half-bandwidth must be nonnegative");
  PCF_REQUIRE(n >= 2 * h + 1, "compact format needs n >= bandwidth");
}

void compact_banded::clear() {
  std::fill(a_.begin(), a_.end(), 0.0);
  factorized_ = false;
}

template <class S>
void compact_banded::apply(const S* x, S* y) const {
  PCF_REQUIRE(!factorized_, "apply() needs the unfactored matrix");
  for (int i = 0; i < n_; ++i) {
    const int s = row_start(i);
    const double* r = row(i);
    S acc{};
    for (int c = 0; c < w_; ++c) acc += r[c] * x[s + c];
    y[i] = acc;
  }
  counters::add_flops(static_cast<std::uint64_t>(n_) * 2u *
                      static_cast<std::uint64_t>(w_) *
                      (std::is_same_v<S, cplx> ? 2 : 1));
}

namespace {

/// Real lanes contributed by one RHS of type S: a complex RHS is solved as
/// two real lanes (the paper's real-matrix x complex-RHS trick, here laid
/// out so the lanes vectorize).
template <class S>
constexpr int kLanesPerRhs = std::is_same_v<S, cplx> ? 2 : 1;

/// Widest RHS panel carried per band pass (one cache line of doubles).
constexpr int kMaxLanes = 8;

/// The factorization and substitution kernels are instantiated with a
/// compile-time half-bandwidth for the common cases (the paper hand-unrolls
/// these loops; here the fixed trip counts let the compiler do it).
/// HC == 0 selects the runtime-bandwidth fallback.
template <int HC>
struct kernels {
  static int row_start(int i, int n, int h) {
    const int lo = i - h;
    const int hi = n - 1 - 2 * h;
    return lo < 0 ? 0 : (lo > hi ? hi : lo);
  }

  static std::uint64_t factorize(double* a, int n, int rh) {
    const int h = HC > 0 ? HC : rh;
    const int w = 2 * h + 1;
    std::uint64_t flops = 0;
    auto entry = [&](int i, int j) -> double& {
      return a[static_cast<std::size_t>(i) * static_cast<std::size_t>(w) +
               static_cast<std::size_t>(j - row_start(i, n, h))];
    };
    for (int j = 0; j < n; ++j) {
      const double piv = entry(j, j);
      if (piv == 0.0)
        throw numerical_error("compact_banded::factorize: zero pivot");
      const double inv = 1.0 / piv;
      const int jend = row_start(j, n, h) + 2 * h;

      auto eliminate = [&](int k) {
        double& lkj = entry(k, j);
        if (lkj == 0.0) return;
        const double m = lkj * inv;
        lkj = m;
        const double* prow =
            a + static_cast<std::size_t>(j) * static_cast<std::size_t>(w);
        double* krow = &entry(k, j);
        const int off = j - row_start(j, n, h);
        const int len = jend - j;
        const double* p = prow + off + 1;
        for (int c = 0; c < len; ++c) krow[1 + c] -= m * p[c];
        flops += 2u * static_cast<std::uint64_t>(len) + 1u;
      };

      const int band_end = std::min(j + h, n - 1);
      for (int k = j + 1; k <= band_end; ++k) eliminate(k);
      if (j >= n - 1 - 2 * h) {
        const int lo = std::max(band_end + 1, n - h);
        for (int k = lo; k < n; ++k) eliminate(k);
      }
    }
    return flops;
  }

  template <class S>
  static void solve(const double* a, int n, int rh, S* x) {
    const int h = HC > 0 ? HC : rh;
    const int w = 2 * h + 1;
    auto entry = [&](int i, int j) -> double {
      return a[static_cast<std::size_t>(i) * static_cast<std::size_t>(w) +
               static_cast<std::size_t>(j - row_start(i, n, h))];
    };
    // Forward substitution with unit-diagonal L.
    for (int j = 0; j < n; ++j) {
      const S xj = x[j];
      const int band_end = std::min(j + h, n - 1);
      for (int k = j + 1; k <= band_end; ++k) {
        const double l = entry(k, j);
        if (l != 0.0) x[k] -= l * xj;
      }
      if (j >= n - 1 - 2 * h) {
        const int lo = std::max(band_end + 1, n - h);
        for (int k = lo; k < n; ++k) {
          const double l = entry(k, j);
          if (l != 0.0) x[k] -= l * xj;
        }
      }
    }
    // Back substitution with U.
    for (int j = n - 1; j >= 0; --j) {
      const int s = row_start(j, n, h);
      const double* r =
          a + static_cast<std::size_t>(j) * static_cast<std::size_t>(w);
      const int off = j - s;
      S acc = x[j];
      const int len = 2 * h - off;
      const double* u = r + off;
      for (int c = 1; c <= len; ++c) acc -= u[c] * x[j + c];
      x[j] = acc / u[0];
    }
  }

  /// Blocked substitution over an interleaved RHS panel p (row-major,
  /// LANES real values per matrix row): the factored band is streamed
  /// once for the whole panel. Every multiplier is a *matrix* entry —
  /// uniform across lanes — so per-lane arithmetic order (and hence every
  /// bit of the result) matches the scalar kernel above exactly; only the
  /// loop over right-hand sides moves innermost. LC is the compile-time
  /// lane count (0 = runtime `rl`), which fixes the inner trip count so
  /// the compiler vectorizes it.
  template <int LC>
  static void solve_panel(const double* a, int n, int rh,
                          double* __restrict p, int rl) {
    const int h = HC > 0 ? HC : rh;
    const int w = 2 * h + 1;
    const int L = LC > 0 ? LC : rl;
    auto entry = [&](int i, int j) -> double {
      return a[static_cast<std::size_t>(i) * static_cast<std::size_t>(w) +
               static_cast<std::size_t>(j - row_start(i, n, h))];
    };
    auto lane_row = [&](int i) -> double* {
      return p + static_cast<std::size_t>(i) * static_cast<std::size_t>(L);
    };
    // Forward substitution with unit-diagonal L.
    for (int j = 0; j < n; ++j) {
      const double* xj = lane_row(j);
      auto eliminate = [&](int k) {
        const double l = entry(k, j);
        if (l == 0.0) return;
        double* xk = lane_row(k);
        for (int t = 0; t < L; ++t) xk[t] -= l * xj[t];
      };
      const int band_end = std::min(j + h, n - 1);
      for (int k = j + 1; k <= band_end; ++k) eliminate(k);
      if (j >= n - 1 - 2 * h) {
        const int lo = std::max(band_end + 1, n - h);
        for (int k = lo; k < n; ++k) eliminate(k);
      }
    }
    // Back substitution with U.
    double acc[kMaxLanes];
    for (int j = n - 1; j >= 0; --j) {
      const int s = row_start(j, n, h);
      const double* r =
          a + static_cast<std::size_t>(j) * static_cast<std::size_t>(w);
      const int off = j - s;
      const int len = 2 * h - off;
      const double* u = r + off;
      double* xj = lane_row(j);
      for (int t = 0; t < L; ++t) acc[t] = xj[t];
      for (int c = 1; c <= len; ++c) {
        const double uc = u[c];
        const double* xc = lane_row(j + c);
        for (int t = 0; t < L; ++t) acc[t] -= uc * xc[t];
      }
      const double d = u[0];
      for (int t = 0; t < L; ++t) xj[t] = acc[t] / d;
    }
  }
};

template <int HC>
void panel_for_h(const double* a, int n, int h, double* p, int lanes,
                 bool fixed_lanes) {
  if (fixed_lanes) {
    switch (lanes) {
      case 2: kernels<HC>::template solve_panel<2>(a, n, h, p, lanes); return;
      case 4: kernels<HC>::template solve_panel<4>(a, n, h, p, lanes); return;
      case 6: kernels<HC>::template solve_panel<6>(a, n, h, p, lanes); return;
      case 8: kernels<HC>::template solve_panel<8>(a, n, h, p, lanes); return;
      default: break;  // odd real-lane counts take the runtime kernel
    }
  }
  kernels<HC>::template solve_panel<0>(a, n, h, p, lanes);
}

void panel_dispatch(const double* a, int n, int h, double* p, int lanes,
                    bool fixed_lanes) {
  switch (h) {
    case 1: panel_for_h<1>(a, n, h, p, lanes, fixed_lanes); break;
    case 2: panel_for_h<2>(a, n, h, p, lanes, fixed_lanes); break;
    case 3: panel_for_h<3>(a, n, h, p, lanes, fixed_lanes); break;
    case 4: panel_for_h<4>(a, n, h, p, lanes, fixed_lanes); break;
    case 5: panel_for_h<5>(a, n, h, p, lanes, fixed_lanes); break;
    case 6: panel_for_h<6>(a, n, h, p, lanes, fixed_lanes); break;
    case 7: panel_for_h<7>(a, n, h, p, lanes, fixed_lanes); break;
    default: panel_for_h<0>(a, n, h, p, lanes, fixed_lanes); break;
  }
}

template <class S>
void solve_dispatch(const double* a, int n, int h, S* x) {
  switch (h) {
    case 1: kernels<1>::solve(a, n, h, x); break;
    case 2: kernels<2>::solve(a, n, h, x); break;
    case 3: kernels<3>::solve(a, n, h, x); break;
    case 4: kernels<4>::solve(a, n, h, x); break;
    case 5: kernels<5>::solve(a, n, h, x); break;
    case 6: kernels<6>::solve(a, n, h, x); break;
    case 7: kernels<7>::solve(a, n, h, x); break;
    default: kernels<0>::solve(a, n, h, x); break;
  }
}

/// Per-RHS substitution flops — the seed model, unchanged.
template <class S>
std::uint64_t solve_flops_per_rhs(int n, int w) {
  return static_cast<std::uint64_t>(n) *
         (2u * static_cast<std::uint64_t>(w) + 2u) *
         (std::is_same_v<S, cplx> ? 2 : 1);
}

/// Scalar-solve accounting: one band pass per RHS (seed-identical).
template <class S>
void account_solve_one(int n, int w) {
  const std::uint64_t f = solve_flops_per_rhs<S>(n, w);
  counters::add_flops(f);
  counters::add_read(f * 8);
  counters::add_written(static_cast<std::uint64_t>(n) * sizeof(S) * 2);
}

/// Blocked-solve accounting for one block of `nrhs` right-hand sides: the
/// flops (and the RHS stream) still scale with nrhs, but the factored band
/// is read ONCE for the whole block. The band share of the seed's per-RHS
/// read estimate is n*w entries; the remainder is RHS traffic. For a
/// 1-RHS block this reduces exactly to the scalar accounting.
template <class S>
void account_solve_block(int n, int w, int nrhs) {
  const std::uint64_t per_rhs = solve_flops_per_rhs<S>(n, w);
  const std::uint64_t band_bytes =
      static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(w) * 8u;
  counters::add_flops(per_rhs * static_cast<std::uint64_t>(nrhs));
  counters::add_read(band_bytes + static_cast<std::uint64_t>(nrhs) *
                                      (per_rhs * 8u - band_bytes));
  counters::add_written(static_cast<std::uint64_t>(nrhs) *
                        static_cast<std::uint64_t>(n) * sizeof(S) * 2);
}

/// Gather `nrhs` (possibly strided) right-hand sides into the interleaved
/// panel layout p[row * lanes + rhs_lane]; complex values contribute their
/// (re, im) pair as two adjacent lanes.
template <class S>
void pack_panel(const S* x, int nrhs, std::size_t stride, int n, double* p) {
  constexpr int lpr = kLanesPerRhs<S>;
  const int lanes = nrhs * lpr;
  for (int r = 0; r < nrhs; ++r) {
    const double* src = reinterpret_cast<const double*>(
        x + static_cast<std::size_t>(r) * stride);
    for (int i = 0; i < n; ++i)
      for (int c = 0; c < lpr; ++c)
        p[static_cast<std::size_t>(i) * static_cast<std::size_t>(lanes) +
          static_cast<std::size_t>(r * lpr + c)] = src[i * lpr + c];
  }
}

template <class S>
void unpack_panel(const double* p, int nrhs, std::size_t stride, int n,
                  S* x) {
  constexpr int lpr = kLanesPerRhs<S>;
  const int lanes = nrhs * lpr;
  for (int r = 0; r < nrhs; ++r) {
    double* dst =
        reinterpret_cast<double*>(x + static_cast<std::size_t>(r) * stride);
    for (int i = 0; i < n; ++i)
      for (int c = 0; c < lpr; ++c)
        dst[i * lpr + c] =
            p[static_cast<std::size_t>(i) * static_cast<std::size_t>(lanes) +
              static_cast<std::size_t>(r * lpr + c)];
  }
}

/// Blocked multi-RHS solve over factored compact-band storage; shared by
/// compact_banded and banded_view. Blocks of up to kMaxLanes real lanes
/// ride one band pass; a single trailing RHS falls back to the scalar
/// kernel (bit-identical to solve()).
template <class S>
void solve_many_on(const double* a, int n, int h, S* x, int nrhs,
                   std::size_t stride, bool fixed_lanes) {
  PCF_REQUIRE(nrhs >= 0, "nrhs must be nonnegative");
  PCF_REQUIRE(nrhs <= 1 || stride >= static_cast<std::size_t>(n),
              "RHS panel stride must be >= n");
  constexpr int lpr = kLanesPerRhs<S>;
  constexpr int max_block = kMaxLanes / lpr;
  const int w = 2 * h + 1;
  thread_local std::vector<double> panel;
  int r = 0;
  while (nrhs - r >= 2) {
    const int rb = std::min(nrhs - r, max_block);
    const int lanes = rb * lpr;
    panel.resize(static_cast<std::size_t>(n) *
                 static_cast<std::size_t>(lanes));
    S* block = x + static_cast<std::size_t>(r) * stride;
    pack_panel(block, rb, stride, n, panel.data());
    panel_dispatch(a, n, h, panel.data(), lanes, fixed_lanes);
    unpack_panel(panel.data(), rb, stride, n, block);
    account_solve_block<S>(n, w, rb);
    r += rb;
  }
  for (; r < nrhs; ++r) {
    solve_dispatch(a, n, h, x + static_cast<std::size_t>(r) * stride);
    account_solve_one<S>(n, w);
  }
}

}  // namespace

void compact_banded::factorize() {
  std::uint64_t flops = 0;
  switch (h_) {
    case 1: flops = kernels<1>::factorize(a_.data(), n_, h_); break;
    case 2: flops = kernels<2>::factorize(a_.data(), n_, h_); break;
    case 3: flops = kernels<3>::factorize(a_.data(), n_, h_); break;
    case 4: flops = kernels<4>::factorize(a_.data(), n_, h_); break;
    case 5: flops = kernels<5>::factorize(a_.data(), n_, h_); break;
    case 6: flops = kernels<6>::factorize(a_.data(), n_, h_); break;
    case 7: flops = kernels<7>::factorize(a_.data(), n_, h_); break;
    default: flops = kernels<0>::factorize(a_.data(), n_, h_); break;
  }
  factorized_ = true;
  counters::add_flops(flops);
  // Logical traffic estimate: each fused multiply-subtract reads a pivot-row
  // and a target-row entry and writes the target back.
  counters::add_read(flops * 8);
  counters::add_written(flops * 4);
}

template <class S>
void compact_banded::solve_one(S* x) const {
  solve_dispatch(a_.data(), n_, h_, x);
  account_solve_one<S>(n_, w_);
}

template <class S>
void compact_banded::solve(S* x) const {
  PCF_REQUIRE(factorized_, "solve() requires factorize() first");
  solve_one(x);
}

template <class S>
void compact_banded::solve_many_impl(S* x, int nrhs, std::size_t stride,
                                     bool fixed_lanes) const {
  PCF_REQUIRE(factorized_, "solve_many() requires factorize() first");
  solve_many_on(a_.data(), n_, h_, x, nrhs, stride, fixed_lanes);
}

template <class S>
void compact_banded::solve_many(S* x, int nrhs, std::size_t stride) const {
  solve_many_impl(x, nrhs, stride, true);
}

template <class S>
void compact_banded::solve_many_blocked_generic(S* x, int nrhs,
                                                std::size_t stride) const {
  solve_many_impl(x, nrhs, stride, false);
}

template <class S>
void compact_banded::solve_many_scalar(S* x, int nrhs,
                                       std::size_t stride) const {
  PCF_REQUIRE(factorized_, "solve_many_scalar() requires factorize() first");
  for (int r = 0; r < nrhs; ++r)
    solve_one(x + static_cast<std::size_t>(r) * stride);
}

template <class S>
void banded_view::solve(S* x) const {
  solve_dispatch(a_, n_, h_, x);
  account_solve_one<S>(n_, 2 * h_ + 1);
}

template <class S>
void banded_view::solve_many(S* x, int nrhs, std::size_t stride) const {
  solve_many_on(a_, n_, h_, x, nrhs, stride, true);
}

template void compact_banded::apply(const double*, double*) const;
template void compact_banded::apply(const cplx*, cplx*) const;
template void compact_banded::solve(double*) const;
template void compact_banded::solve(cplx*) const;
template void compact_banded::solve_many(double*, int, std::size_t) const;
template void compact_banded::solve_many(cplx*, int, std::size_t) const;
template void compact_banded::solve_many_scalar(double*, int,
                                                std::size_t) const;
template void compact_banded::solve_many_scalar(cplx*, int,
                                                std::size_t) const;
template void compact_banded::solve_many_blocked_generic(double*, int,
                                                         std::size_t) const;
template void compact_banded::solve_many_blocked_generic(cplx*, int,
                                                         std::size_t) const;
template void banded_view::solve(double*) const;
template void banded_view::solve(cplx*) const;
template void banded_view::solve_many(double*, int, std::size_t) const;
template void banded_view::solve_many(cplx*, int, std::size_t) const;

}  // namespace pcf::banded
