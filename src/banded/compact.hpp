// The paper's customized banded solver (Section 4.1.1, Figure 3).
//
// Matrices from B-spline collocation are banded with half-bandwidth h plus
// extra nonzeros in the first and last few rows (boundary-condition rows).
// Instead of widening a general LAPACK band (Figure 3 center) — which
// doubles storage and wastes flops on structural zeros — the custom format
// (Figure 3 right) keeps exactly 2h+1 stored entries per row and *shifts*
// the first h and last h rows so their out-of-band boundary entries land in
// the otherwise-empty corner slots:
//
//   row i covers columns [s_i, s_i + 2h],  s_i = clamp(i - h, 0, n - 1 - 2h)
//
// so rows 0..h-1 are dense over the first 2h+1 columns and rows n-h..n-1
// over the last 2h+1 columns. LU factorization without pivoting (the
// collocation operators are totally positive / diagonally dominant) stays
// exactly within this profile, and the real-matrix x complex-RHS solve is
// done directly rather than splitting into two real solves.
#pragma once

#include <complex>
#include <vector>

#include "util/check.hpp"

namespace pcf::banded {

using cplx = std::complex<double>;

/// Non-owning view of *factored* compact-band storage. The solver arena
/// keeps many factored bands in one contiguous slab and solves through
/// views; a view never checks or tracks factorization state, so the owner
/// must only hand out views of factored storage.
class banded_view {
 public:
  banded_view() = default;
  banded_view(const double* a, int n, int h) : a_(a), n_(n), h_(h) {}

  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] int half_bandwidth() const { return h_; }

  template <class S>
  void solve(S* x) const;

  /// Blocked multi-RHS solve; RHS r starts at x + r*stride (stride >= n).
  template <class S>
  void solve_many(S* x, int nrhs, std::size_t stride) const;

 private:
  const double* a_ = nullptr;
  int n_ = 0, h_ = 0;
};

class compact_banded {
 public:
  /// n x n matrix, half-bandwidth h (stored bandwidth 2h+1); needs n >= 2h+1.
  compact_banded(int n, int h);

  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] int half_bandwidth() const { return h_; }
  [[nodiscard]] int bandwidth() const { return 2 * h_ + 1; }

  /// First column stored in row i.
  [[nodiscard]] int row_start(int i) const {
    const int lo = i - h_;
    const int hi = n_ - 1 - 2 * h_;
    return lo < 0 ? 0 : (lo > hi ? hi : lo);
  }

  /// True if (i, j) is inside the stored profile.
  [[nodiscard]] bool in_profile(int i, int j) const {
    if (i < 0 || i >= n_ || j < 0 || j >= n_) return false;
    const int s = row_start(i);
    return j >= s && j <= s + 2 * h_;
  }

  double& at(int i, int j) {
    PCF_REQUIRE(in_profile(i, j), "element outside compact profile");
    return entry(i, j);
  }
  [[nodiscard]] double at(int i, int j) const {
    PCF_REQUIRE(in_profile(i, j), "element outside compact profile");
    return const_cast<compact_banded*>(this)->entry(i, j);
  }

  /// Zero all entries (reuse a factored matrix for reassembly).
  void clear();

  [[nodiscard]] std::size_t storage_bytes() const {
    return a_.size() * sizeof(double);
  }

  /// y = A x using the unfactored matrix. S is double or complex.
  template <class S>
  void apply(const S* x, S* y) const;

  /// In-place LU without pivoting. Throws numerical_error on a zero pivot.
  void factorize();
  [[nodiscard]] bool factorized() const { return factorized_; }

  /// Solve A x = b in place; matrix is real, RHS may be complex — solved
  /// directly (the optimization the paper contrasts with DGBTRS-on-split-
  /// real-vectors).
  template <class S>
  void solve(S* x) const;

  /// Solve nrhs systems; RHS r starts at x + r*stride (stride >= n when
  /// nrhs > 1). Blocked: the factored band is streamed once per block of
  /// up to 8 real lanes instead of once per RHS, with each complex RHS
  /// occupying two real lanes (so the common 2-complex-RHS case fills a
  /// 4-wide register). A single trailing RHS takes the scalar kernel and
  /// is bit-identical to solve().
  template <class S>
  void solve_many(S* x, int nrhs, std::size_t stride) const;

  /// Reference multi-RHS path: one full band pass per RHS (the seed
  /// behavior, kept for benchmarking the blocked kernel against).
  template <class S>
  void solve_many_scalar(S* x, int nrhs, std::size_t stride) const;

  /// Blocked but with the runtime-lane kernel only (no fixed-lane
  /// vectorized instantiations) — isolates blocking from vectorization in
  /// bench_table1_banded.
  template <class S>
  void solve_many_blocked_generic(S* x, int nrhs, std::size_t stride) const;

  /// Raw compact-format storage: n() rows of bandwidth() doubles.
  [[nodiscard]] const double* data() const { return a_.data(); }
  [[nodiscard]] std::size_t band_elems() const { return a_.size(); }

  /// Non-owning view of the factored band (requires factorize()).
  [[nodiscard]] banded_view view() const {
    PCF_REQUIRE(factorized_, "view() requires factorize() first");
    return banded_view(a_.data(), n_, h_);
  }

 private:
  double& entry(int i, int j) {
    return a_[static_cast<std::size_t>(i) * static_cast<std::size_t>(w_) +
              static_cast<std::size_t>(j - row_start(i))];
  }
  [[nodiscard]] const double* row(int i) const {
    return a_.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(w_);
  }

  template <class S>
  void solve_one(S* x) const;

  template <class S>
  void solve_many_impl(S* x, int nrhs, std::size_t stride,
                       bool fixed_lanes) const;

  int n_, h_, w_;
  std::vector<double> a_;
  bool factorized_ = false;
};

}  // namespace pcf::banded
