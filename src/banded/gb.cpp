#include "banded/gb.hpp"

#include <algorithm>
#include <cmath>
#include <type_traits>
#include <vector>

#include "util/counters.hpp"

namespace pcf::banded {

namespace {
inline double mag(double v) { return std::abs(v); }
inline double mag(const cplx& v) {
  // 1-norm magnitude, as LAPACK uses for complex pivoting.
  return std::abs(v.real()) + std::abs(v.imag());
}
}  // namespace

template <class T>
void gb_matrix<T>::factorize() {
  // Unblocked GBTRF with partial pivoting. The effective upper bandwidth
  // grows to ku + kl because row interchanges drag subdiagonal rows up.
  const int n = n_, kl = kl_, ku = ku_;
  auto e = [&](int i, int j) -> T& { return entry(i, j); };
  std::uint64_t flops = 0;

  int ju = 0;  // rightmost column touched so far
  for (int j = 0; j < n; ++j) {
    const int km = std::min(kl, n - 1 - j);  // subdiagonals in column j
    // Pivot search in column j, rows j..j+km.
    int jp = j;
    double best = mag(e(j, j));
    for (int i = j + 1; i <= j + km; ++i) {
      const double m = mag(e(i, j));
      if (m > best) {
        best = m;
        jp = i;
      }
    }
    ipiv_[static_cast<std::size_t>(j)] = jp;
    if (best == 0.0)
      throw numerical_error("gb_matrix::factorize: zero pivot column");

    ju = std::max(ju, std::min(jp + ku, n - 1));
    if (jp != j) {
      for (int c = j; c <= ju; ++c) std::swap(e(j, c), e(jp, c));
    }
    if (km > 0) {
      const T inv = T(1.0) / e(j, j);
      for (int i = j + 1; i <= j + km; ++i) e(i, j) *= inv;
      flops += static_cast<std::uint64_t>(km);
      for (int c = j + 1; c <= ju; ++c) {
        const T ujc = e(j, c);
        if (ujc == T{}) continue;
        for (int i = j + 1; i <= j + km; ++i) e(i, c) -= e(i, j) * ujc;
        flops += 2u * static_cast<std::uint64_t>(km);
      }
    }
  }
  factorized_ = true;
  const std::uint64_t f = flops * (std::is_same_v<T, cplx> ? 4 : 1);
  counters::add_flops(f);
  counters::add_read(f * 8);
  counters::add_written(f * 4);
}

template <class T>
template <class S>
void gb_matrix<T>::solve(S* x) const {
  PCF_REQUIRE(factorized_, "solve() requires factorize() first");
  const int n = n_, kl = kl_, ku = ku_;
  auto e = [&](int i, int j) -> const T& {
    return const_cast<gb_matrix*>(this)->entry(i, j);
  };
  // Forward: apply P and L.
  for (int j = 0; j < n - 1; ++j) {
    const int p = ipiv_[static_cast<std::size_t>(j)];
    if (p != j) std::swap(x[j], x[p]);
    const int km = std::min(kl, n - 1 - j);
    const S xj = x[j];
    for (int i = j + 1; i <= j + km; ++i) x[i] -= e(i, j) * xj;
  }
  // Backward: solve U x = y with bandwidth ku + kl.
  const int kv = ku + kl;
  for (int j = n - 1; j >= 0; --j) {
    x[j] /= e(j, j);
    const S xj = x[j];
    const int top = std::max(0, j - kv);
    for (int i = top; i < j; ++i) x[i] -= e(i, j) * xj;
  }
  counters::add_flops(static_cast<std::uint64_t>(n) *
                      static_cast<std::uint64_t>(kl + kv + 2) *
                      (std::is_same_v<S, cplx> ? 2 : 1));
}

template <class T>
template <class S>
void gb_matrix<T>::solve_many(S* x, int nrhs, std::size_t stride) const {
  PCF_REQUIRE(factorized_, "solve_many() requires factorize() first");
  PCF_REQUIRE(nrhs <= 1 || stride >= static_cast<std::size_t>(n_),
              "RHS panel stride must be >= n");
  const int n = n_, kl = kl_, ku = ku_;
  auto e = [&](int i, int j) -> const T& {
    return const_cast<gb_matrix*>(this)->entry(i, j);
  };
  constexpr int kBlock = 8;
  thread_local std::vector<S> panel;
  int r0 = 0;
  while (nrhs - r0 >= 2) {
    const int rb = std::min(nrhs - r0, kBlock);
    panel.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(rb));
    S* p = panel.data();
    for (int r = 0; r < rb; ++r)
      for (int i = 0; i < n; ++i)
        p[static_cast<std::size_t>(i) * rb + r] =
            x[static_cast<std::size_t>(r0 + r) * stride + i];
    auto lane = [&](int i) {
      return p + static_cast<std::size_t>(i) * static_cast<std::size_t>(rb);
    };
    // Forward: apply P and L to the whole panel per pivot column.
    for (int j = 0; j < n - 1; ++j) {
      const int piv = ipiv_[static_cast<std::size_t>(j)];
      if (piv != j)
        for (int t = 0; t < rb; ++t) std::swap(lane(j)[t], lane(piv)[t]);
      const int km = std::min(kl, n - 1 - j);
      const S* xj = lane(j);
      for (int i = j + 1; i <= j + km; ++i) {
        const T lij = e(i, j);
        S* xi = lane(i);
        for (int t = 0; t < rb; ++t) xi[t] -= lij * xj[t];
      }
    }
    // Backward: solve U x = y with bandwidth ku + kl.
    const int kv = ku + kl;
    for (int j = n - 1; j >= 0; --j) {
      const T d = e(j, j);
      S* xj = lane(j);
      for (int t = 0; t < rb; ++t) xj[t] /= d;
      const int top = std::max(0, j - kv);
      for (int i = top; i < j; ++i) {
        const T uij = e(i, j);
        S* xi = lane(i);
        for (int t = 0; t < rb; ++t) xi[t] -= uij * xj[t];
      }
    }
    for (int r = 0; r < rb; ++r)
      for (int i = 0; i < n; ++i)
        x[static_cast<std::size_t>(r0 + r) * stride + i] =
            p[static_cast<std::size_t>(i) * rb + r];
    counters::add_flops(static_cast<std::uint64_t>(rb) *
                        static_cast<std::uint64_t>(n) *
                        static_cast<std::uint64_t>(kl + kv + 2) *
                        (std::is_same_v<S, cplx> ? 2 : 1));
    r0 += rb;
  }
  for (; r0 < nrhs; ++r0) solve(x + static_cast<std::size_t>(r0) * stride);
}

template class gb_matrix<double>;
template class gb_matrix<cplx>;
template void gb_matrix<double>::solve(double*) const;
template void gb_matrix<double>::solve(cplx*) const;
template void gb_matrix<cplx>::solve(cplx*) const;
template void gb_matrix<double>::solve_many(double*, int, std::size_t) const;
template void gb_matrix<double>::solve_many(cplx*, int, std::size_t) const;
template void gb_matrix<cplx>::solve_many(cplx*, int, std::size_t) const;

}  // namespace pcf::banded
