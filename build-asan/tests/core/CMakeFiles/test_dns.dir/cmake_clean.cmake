file(REMOVE_RECURSE
  "CMakeFiles/test_dns.dir/test_adaptive.cpp.o"
  "CMakeFiles/test_dns.dir/test_adaptive.cpp.o.d"
  "CMakeFiles/test_dns.dir/test_diagnostics.cpp.o"
  "CMakeFiles/test_dns.dir/test_diagnostics.cpp.o.d"
  "CMakeFiles/test_dns.dir/test_runner.cpp.o"
  "CMakeFiles/test_dns.dir/test_runner.cpp.o.d"
  "CMakeFiles/test_dns.dir/test_simulation.cpp.o"
  "CMakeFiles/test_dns.dir/test_simulation.cpp.o.d"
  "test_dns"
  "test_dns.pdb"
  "test_dns[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
