file(REMOVE_RECURSE
  "CMakeFiles/test_fft.dir/test_bluestein.cpp.o"
  "CMakeFiles/test_fft.dir/test_bluestein.cpp.o.d"
  "CMakeFiles/test_fft.dir/test_c2c.cpp.o"
  "CMakeFiles/test_fft.dir/test_c2c.cpp.o.d"
  "CMakeFiles/test_fft.dir/test_factor.cpp.o"
  "CMakeFiles/test_fft.dir/test_factor.cpp.o.d"
  "CMakeFiles/test_fft.dir/test_plan_props.cpp.o"
  "CMakeFiles/test_fft.dir/test_plan_props.cpp.o.d"
  "CMakeFiles/test_fft.dir/test_real.cpp.o"
  "CMakeFiles/test_fft.dir/test_real.cpp.o.d"
  "test_fft"
  "test_fft.pdb"
  "test_fft[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
