
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fft/test_bluestein.cpp" "tests/fft/CMakeFiles/test_fft.dir/test_bluestein.cpp.o" "gcc" "tests/fft/CMakeFiles/test_fft.dir/test_bluestein.cpp.o.d"
  "/root/repo/tests/fft/test_c2c.cpp" "tests/fft/CMakeFiles/test_fft.dir/test_c2c.cpp.o" "gcc" "tests/fft/CMakeFiles/test_fft.dir/test_c2c.cpp.o.d"
  "/root/repo/tests/fft/test_factor.cpp" "tests/fft/CMakeFiles/test_fft.dir/test_factor.cpp.o" "gcc" "tests/fft/CMakeFiles/test_fft.dir/test_factor.cpp.o.d"
  "/root/repo/tests/fft/test_plan_props.cpp" "tests/fft/CMakeFiles/test_fft.dir/test_plan_props.cpp.o" "gcc" "tests/fft/CMakeFiles/test_fft.dir/test_plan_props.cpp.o.d"
  "/root/repo/tests/fft/test_real.cpp" "tests/fft/CMakeFiles/test_fft.dir/test_real.cpp.o" "gcc" "tests/fft/CMakeFiles/test_fft.dir/test_real.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/fft/CMakeFiles/pcf_fft.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/pcf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
