# CMake generated Testfile for 
# Source directory: /root/repo/tests/fft
# Build directory: /root/repo/build-asan/tests/fft
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/fft/test_fft[1]_include.cmake")
