
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/test_channel_analysis.cpp" "tests/analysis/CMakeFiles/test_analysis.dir/test_channel_analysis.cpp.o" "gcc" "tests/analysis/CMakeFiles/test_analysis.dir/test_channel_analysis.cpp.o.d"
  "/root/repo/tests/analysis/test_regression.cpp" "tests/analysis/CMakeFiles/test_analysis.dir/test_regression.cpp.o" "gcc" "tests/analysis/CMakeFiles/test_analysis.dir/test_regression.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/analysis/CMakeFiles/pcf_analysis.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/pcf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
