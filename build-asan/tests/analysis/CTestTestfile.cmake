# CMake generated Testfile for 
# Source directory: /root/repo/tests/analysis
# Build directory: /root/repo/build-asan/tests/analysis
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/analysis/test_analysis[1]_include.cmake")
