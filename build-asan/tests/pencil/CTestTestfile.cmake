# CMake generated Testfile for 
# Source directory: /root/repo/tests/pencil
# Build directory: /root/repo/build-asan/tests/pencil
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/pencil/test_pencil[1]_include.cmake")
