# Empty dependencies file for test_pencil.
# This may be replaced when dependencies are built.
