file(REMOVE_RECURSE
  "CMakeFiles/test_pencil.dir/test_decomp.cpp.o"
  "CMakeFiles/test_pencil.dir/test_decomp.cpp.o.d"
  "CMakeFiles/test_pencil.dir/test_parallel_fft.cpp.o"
  "CMakeFiles/test_pencil.dir/test_parallel_fft.cpp.o.d"
  "test_pencil"
  "test_pencil.pdb"
  "test_pencil[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
