
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pencil/test_decomp.cpp" "tests/pencil/CMakeFiles/test_pencil.dir/test_decomp.cpp.o" "gcc" "tests/pencil/CMakeFiles/test_pencil.dir/test_decomp.cpp.o.d"
  "/root/repo/tests/pencil/test_parallel_fft.cpp" "tests/pencil/CMakeFiles/test_pencil.dir/test_parallel_fft.cpp.o" "gcc" "tests/pencil/CMakeFiles/test_pencil.dir/test_parallel_fft.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/pencil/CMakeFiles/pcf_pencil.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/fft/CMakeFiles/pcf_fft.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/vmpi/CMakeFiles/pcf_vmpi.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/pcf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
