file(REMOVE_RECURSE
  "CMakeFiles/test_util.dir/test_aligned.cpp.o"
  "CMakeFiles/test_util.dir/test_aligned.cpp.o.d"
  "CMakeFiles/test_util.dir/test_counters.cpp.o"
  "CMakeFiles/test_util.dir/test_counters.cpp.o.d"
  "CMakeFiles/test_util.dir/test_crc.cpp.o"
  "CMakeFiles/test_util.dir/test_crc.cpp.o.d"
  "CMakeFiles/test_util.dir/test_ndarray.cpp.o"
  "CMakeFiles/test_util.dir/test_ndarray.cpp.o.d"
  "CMakeFiles/test_util.dir/test_rng.cpp.o"
  "CMakeFiles/test_util.dir/test_rng.cpp.o.d"
  "CMakeFiles/test_util.dir/test_table.cpp.o"
  "CMakeFiles/test_util.dir/test_table.cpp.o.d"
  "CMakeFiles/test_util.dir/test_thread_pool.cpp.o"
  "CMakeFiles/test_util.dir/test_thread_pool.cpp.o.d"
  "CMakeFiles/test_util.dir/test_timer.cpp.o"
  "CMakeFiles/test_util.dir/test_timer.cpp.o.d"
  "test_util"
  "test_util.pdb"
  "test_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
