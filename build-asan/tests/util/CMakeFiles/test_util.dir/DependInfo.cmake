
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/test_aligned.cpp" "tests/util/CMakeFiles/test_util.dir/test_aligned.cpp.o" "gcc" "tests/util/CMakeFiles/test_util.dir/test_aligned.cpp.o.d"
  "/root/repo/tests/util/test_counters.cpp" "tests/util/CMakeFiles/test_util.dir/test_counters.cpp.o" "gcc" "tests/util/CMakeFiles/test_util.dir/test_counters.cpp.o.d"
  "/root/repo/tests/util/test_crc.cpp" "tests/util/CMakeFiles/test_util.dir/test_crc.cpp.o" "gcc" "tests/util/CMakeFiles/test_util.dir/test_crc.cpp.o.d"
  "/root/repo/tests/util/test_ndarray.cpp" "tests/util/CMakeFiles/test_util.dir/test_ndarray.cpp.o" "gcc" "tests/util/CMakeFiles/test_util.dir/test_ndarray.cpp.o.d"
  "/root/repo/tests/util/test_rng.cpp" "tests/util/CMakeFiles/test_util.dir/test_rng.cpp.o" "gcc" "tests/util/CMakeFiles/test_util.dir/test_rng.cpp.o.d"
  "/root/repo/tests/util/test_table.cpp" "tests/util/CMakeFiles/test_util.dir/test_table.cpp.o" "gcc" "tests/util/CMakeFiles/test_util.dir/test_table.cpp.o.d"
  "/root/repo/tests/util/test_thread_pool.cpp" "tests/util/CMakeFiles/test_util.dir/test_thread_pool.cpp.o" "gcc" "tests/util/CMakeFiles/test_util.dir/test_thread_pool.cpp.o.d"
  "/root/repo/tests/util/test_timer.cpp" "tests/util/CMakeFiles/test_util.dir/test_timer.cpp.o" "gcc" "tests/util/CMakeFiles/test_util.dir/test_timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/pcf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
