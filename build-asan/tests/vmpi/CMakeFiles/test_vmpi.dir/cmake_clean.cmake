file(REMOVE_RECURSE
  "CMakeFiles/test_vmpi.dir/test_cart.cpp.o"
  "CMakeFiles/test_vmpi.dir/test_cart.cpp.o.d"
  "CMakeFiles/test_vmpi.dir/test_collectives.cpp.o"
  "CMakeFiles/test_vmpi.dir/test_collectives.cpp.o.d"
  "CMakeFiles/test_vmpi.dir/test_stress.cpp.o"
  "CMakeFiles/test_vmpi.dir/test_stress.cpp.o.d"
  "test_vmpi"
  "test_vmpi.pdb"
  "test_vmpi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
