
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/vmpi/test_cart.cpp" "tests/vmpi/CMakeFiles/test_vmpi.dir/test_cart.cpp.o" "gcc" "tests/vmpi/CMakeFiles/test_vmpi.dir/test_cart.cpp.o.d"
  "/root/repo/tests/vmpi/test_collectives.cpp" "tests/vmpi/CMakeFiles/test_vmpi.dir/test_collectives.cpp.o" "gcc" "tests/vmpi/CMakeFiles/test_vmpi.dir/test_collectives.cpp.o.d"
  "/root/repo/tests/vmpi/test_stress.cpp" "tests/vmpi/CMakeFiles/test_vmpi.dir/test_stress.cpp.o" "gcc" "tests/vmpi/CMakeFiles/test_vmpi.dir/test_stress.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/vmpi/CMakeFiles/pcf_vmpi.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/pcf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
