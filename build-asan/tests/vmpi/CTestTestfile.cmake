# CMake generated Testfile for 
# Source directory: /root/repo/tests/vmpi
# Build directory: /root/repo/build-asan/tests/vmpi
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/vmpi/test_vmpi[1]_include.cmake")
