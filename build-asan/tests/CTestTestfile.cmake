# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("fft")
subdirs("bspline")
subdirs("banded")
subdirs("vmpi")
subdirs("pencil")
subdirs("netsim")
subdirs("core")
subdirs("io")
subdirs("analysis")
