
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/netsim/test_machine.cpp" "tests/netsim/CMakeFiles/test_netsim.dir/test_machine.cpp.o" "gcc" "tests/netsim/CMakeFiles/test_netsim.dir/test_machine.cpp.o.d"
  "/root/repo/tests/netsim/test_predictor.cpp" "tests/netsim/CMakeFiles/test_netsim.dir/test_predictor.cpp.o" "gcc" "tests/netsim/CMakeFiles/test_netsim.dir/test_predictor.cpp.o.d"
  "/root/repo/tests/netsim/test_roofline.cpp" "tests/netsim/CMakeFiles/test_netsim.dir/test_roofline.cpp.o" "gcc" "tests/netsim/CMakeFiles/test_netsim.dir/test_roofline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/netsim/CMakeFiles/pcf_netsim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/pcf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
