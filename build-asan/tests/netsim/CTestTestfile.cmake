# CMake generated Testfile for 
# Source directory: /root/repo/tests/netsim
# Build directory: /root/repo/build-asan/tests/netsim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/netsim/test_netsim[1]_include.cmake")
