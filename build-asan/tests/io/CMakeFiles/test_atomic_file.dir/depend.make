# Empty dependencies file for test_atomic_file.
# This may be replaced when dependencies are built.
