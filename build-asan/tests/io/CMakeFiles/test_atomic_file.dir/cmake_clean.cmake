file(REMOVE_RECURSE
  "CMakeFiles/test_atomic_file.dir/test_atomic_file.cpp.o"
  "CMakeFiles/test_atomic_file.dir/test_atomic_file.cpp.o.d"
  "test_atomic_file"
  "test_atomic_file.pdb"
  "test_atomic_file[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_atomic_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
