file(REMOVE_RECURSE
  "CMakeFiles/test_io.dir/test_checkpoint.cpp.o"
  "CMakeFiles/test_io.dir/test_checkpoint.cpp.o.d"
  "CMakeFiles/test_io.dir/test_ppm.cpp.o"
  "CMakeFiles/test_io.dir/test_ppm.cpp.o.d"
  "CMakeFiles/test_io.dir/test_profiles.cpp.o"
  "CMakeFiles/test_io.dir/test_profiles.cpp.o.d"
  "CMakeFiles/test_io.dir/test_slices.cpp.o"
  "CMakeFiles/test_io.dir/test_slices.cpp.o.d"
  "CMakeFiles/test_io.dir/test_vtk.cpp.o"
  "CMakeFiles/test_io.dir/test_vtk.cpp.o.d"
  "test_io"
  "test_io.pdb"
  "test_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
