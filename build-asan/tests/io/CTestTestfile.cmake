# CMake generated Testfile for 
# Source directory: /root/repo/tests/io
# Build directory: /root/repo/build-asan/tests/io
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/io/test_io[1]_include.cmake")
include("/root/repo/build-asan/tests/io/test_atomic_file[1]_include.cmake")
include("/root/repo/build-asan/tests/io/test_faults[1]_include.cmake")
