# CMake generated Testfile for 
# Source directory: /root/repo/tests/bspline
# Build directory: /root/repo/build-asan/tests/bspline
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/bspline/test_bspline[1]_include.cmake")
