# Empty compiler generated dependencies file for test_bspline.
# This may be replaced when dependencies are built.
