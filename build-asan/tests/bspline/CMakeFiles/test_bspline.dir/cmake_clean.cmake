file(REMOVE_RECURSE
  "CMakeFiles/test_bspline.dir/test_basis.cpp.o"
  "CMakeFiles/test_bspline.dir/test_basis.cpp.o.d"
  "CMakeFiles/test_bspline.dir/test_collocation.cpp.o"
  "CMakeFiles/test_bspline.dir/test_collocation.cpp.o.d"
  "test_bspline"
  "test_bspline.pdb"
  "test_bspline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bspline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
