
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bspline/test_basis.cpp" "tests/bspline/CMakeFiles/test_bspline.dir/test_basis.cpp.o" "gcc" "tests/bspline/CMakeFiles/test_bspline.dir/test_basis.cpp.o.d"
  "/root/repo/tests/bspline/test_collocation.cpp" "tests/bspline/CMakeFiles/test_bspline.dir/test_collocation.cpp.o" "gcc" "tests/bspline/CMakeFiles/test_bspline.dir/test_collocation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/bspline/CMakeFiles/pcf_bspline.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/banded/CMakeFiles/pcf_banded.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/pcf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
