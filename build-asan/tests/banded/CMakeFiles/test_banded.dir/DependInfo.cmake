
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/banded/test_compact.cpp" "tests/banded/CMakeFiles/test_banded.dir/test_compact.cpp.o" "gcc" "tests/banded/CMakeFiles/test_banded.dir/test_compact.cpp.o.d"
  "/root/repo/tests/banded/test_gb.cpp" "tests/banded/CMakeFiles/test_banded.dir/test_gb.cpp.o" "gcc" "tests/banded/CMakeFiles/test_banded.dir/test_gb.cpp.o.d"
  "/root/repo/tests/banded/test_oracle.cpp" "tests/banded/CMakeFiles/test_banded.dir/test_oracle.cpp.o" "gcc" "tests/banded/CMakeFiles/test_banded.dir/test_oracle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/banded/CMakeFiles/pcf_banded.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/pcf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
