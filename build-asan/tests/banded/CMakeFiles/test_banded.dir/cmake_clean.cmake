file(REMOVE_RECURSE
  "CMakeFiles/test_banded.dir/test_compact.cpp.o"
  "CMakeFiles/test_banded.dir/test_compact.cpp.o.d"
  "CMakeFiles/test_banded.dir/test_gb.cpp.o"
  "CMakeFiles/test_banded.dir/test_gb.cpp.o.d"
  "CMakeFiles/test_banded.dir/test_oracle.cpp.o"
  "CMakeFiles/test_banded.dir/test_oracle.cpp.o.d"
  "test_banded"
  "test_banded.pdb"
  "test_banded[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_banded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
