# CMake generated Testfile for 
# Source directory: /root/repo/tests/banded
# Build directory: /root/repo/build-asan/tests/banded
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/banded/test_banded[1]_include.cmake")
