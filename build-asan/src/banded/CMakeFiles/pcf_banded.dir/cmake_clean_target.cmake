file(REMOVE_RECURSE
  "libpcf_banded.a"
)
