# Empty dependencies file for pcf_banded.
# This may be replaced when dependencies are built.
