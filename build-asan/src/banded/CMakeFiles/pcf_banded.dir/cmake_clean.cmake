file(REMOVE_RECURSE
  "CMakeFiles/pcf_banded.dir/compact.cpp.o"
  "CMakeFiles/pcf_banded.dir/compact.cpp.o.d"
  "CMakeFiles/pcf_banded.dir/gb.cpp.o"
  "CMakeFiles/pcf_banded.dir/gb.cpp.o.d"
  "libpcf_banded.a"
  "libpcf_banded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcf_banded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
