# Empty compiler generated dependencies file for pcf_fft.
# This may be replaced when dependencies are built.
