file(REMOVE_RECURSE
  "libpcf_fft.a"
)
