file(REMOVE_RECURSE
  "CMakeFiles/pcf_fft.dir/c2c.cpp.o"
  "CMakeFiles/pcf_fft.dir/c2c.cpp.o.d"
  "CMakeFiles/pcf_fft.dir/real.cpp.o"
  "CMakeFiles/pcf_fft.dir/real.cpp.o.d"
  "libpcf_fft.a"
  "libpcf_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcf_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
