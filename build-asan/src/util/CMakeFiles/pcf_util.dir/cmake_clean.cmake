file(REMOVE_RECURSE
  "CMakeFiles/pcf_util.dir/counters.cpp.o"
  "CMakeFiles/pcf_util.dir/counters.cpp.o.d"
  "CMakeFiles/pcf_util.dir/table.cpp.o"
  "CMakeFiles/pcf_util.dir/table.cpp.o.d"
  "CMakeFiles/pcf_util.dir/thread_pool.cpp.o"
  "CMakeFiles/pcf_util.dir/thread_pool.cpp.o.d"
  "libpcf_util.a"
  "libpcf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcf_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
