file(REMOVE_RECURSE
  "libpcf_util.a"
)
