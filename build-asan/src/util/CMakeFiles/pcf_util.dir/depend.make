# Empty dependencies file for pcf_util.
# This may be replaced when dependencies are built.
