file(REMOVE_RECURSE
  "libpcf_core.a"
)
