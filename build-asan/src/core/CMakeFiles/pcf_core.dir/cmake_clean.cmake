file(REMOVE_RECURSE
  "CMakeFiles/pcf_core.dir/mode_solver.cpp.o"
  "CMakeFiles/pcf_core.dir/mode_solver.cpp.o.d"
  "CMakeFiles/pcf_core.dir/operators.cpp.o"
  "CMakeFiles/pcf_core.dir/operators.cpp.o.d"
  "CMakeFiles/pcf_core.dir/runner.cpp.o"
  "CMakeFiles/pcf_core.dir/runner.cpp.o.d"
  "CMakeFiles/pcf_core.dir/simulation.cpp.o"
  "CMakeFiles/pcf_core.dir/simulation.cpp.o.d"
  "CMakeFiles/pcf_core.dir/statistics.cpp.o"
  "CMakeFiles/pcf_core.dir/statistics.cpp.o.d"
  "libpcf_core.a"
  "libpcf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
