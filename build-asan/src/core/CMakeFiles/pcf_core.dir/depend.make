# Empty dependencies file for pcf_core.
# This may be replaced when dependencies are built.
