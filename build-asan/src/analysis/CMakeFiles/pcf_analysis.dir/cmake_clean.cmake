file(REMOVE_RECURSE
  "CMakeFiles/pcf_analysis.dir/channel.cpp.o"
  "CMakeFiles/pcf_analysis.dir/channel.cpp.o.d"
  "CMakeFiles/pcf_analysis.dir/regression.cpp.o"
  "CMakeFiles/pcf_analysis.dir/regression.cpp.o.d"
  "libpcf_analysis.a"
  "libpcf_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcf_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
