# Empty dependencies file for pcf_analysis.
# This may be replaced when dependencies are built.
