file(REMOVE_RECURSE
  "libpcf_analysis.a"
)
