# Empty compiler generated dependencies file for pcf_io.
# This may be replaced when dependencies are built.
