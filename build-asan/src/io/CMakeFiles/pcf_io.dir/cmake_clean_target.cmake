file(REMOVE_RECURSE
  "libpcf_io.a"
)
