file(REMOVE_RECURSE
  "CMakeFiles/pcf_io.dir/ppm.cpp.o"
  "CMakeFiles/pcf_io.dir/ppm.cpp.o.d"
  "CMakeFiles/pcf_io.dir/profiles.cpp.o"
  "CMakeFiles/pcf_io.dir/profiles.cpp.o.d"
  "CMakeFiles/pcf_io.dir/slices.cpp.o"
  "CMakeFiles/pcf_io.dir/slices.cpp.o.d"
  "CMakeFiles/pcf_io.dir/vtk.cpp.o"
  "CMakeFiles/pcf_io.dir/vtk.cpp.o.d"
  "libpcf_io.a"
  "libpcf_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcf_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
