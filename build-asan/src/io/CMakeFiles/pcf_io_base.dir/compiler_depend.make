# Empty compiler generated dependencies file for pcf_io_base.
# This may be replaced when dependencies are built.
