file(REMOVE_RECURSE
  "libpcf_io_base.a"
)
