file(REMOVE_RECURSE
  "CMakeFiles/pcf_io_base.dir/atomic_file.cpp.o"
  "CMakeFiles/pcf_io_base.dir/atomic_file.cpp.o.d"
  "libpcf_io_base.a"
  "libpcf_io_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcf_io_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
