file(REMOVE_RECURSE
  "CMakeFiles/pcf_pencil.dir/pencil.cpp.o"
  "CMakeFiles/pcf_pencil.dir/pencil.cpp.o.d"
  "libpcf_pencil.a"
  "libpcf_pencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcf_pencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
