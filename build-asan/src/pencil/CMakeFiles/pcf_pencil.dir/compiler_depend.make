# Empty compiler generated dependencies file for pcf_pencil.
# This may be replaced when dependencies are built.
