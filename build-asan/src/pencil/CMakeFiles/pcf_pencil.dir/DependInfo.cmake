
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pencil/pencil.cpp" "src/pencil/CMakeFiles/pcf_pencil.dir/pencil.cpp.o" "gcc" "src/pencil/CMakeFiles/pcf_pencil.dir/pencil.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/pcf_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/fft/CMakeFiles/pcf_fft.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/vmpi/CMakeFiles/pcf_vmpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
