file(REMOVE_RECURSE
  "libpcf_pencil.a"
)
