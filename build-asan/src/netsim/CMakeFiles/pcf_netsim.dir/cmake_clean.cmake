file(REMOVE_RECURSE
  "CMakeFiles/pcf_netsim.dir/machine.cpp.o"
  "CMakeFiles/pcf_netsim.dir/machine.cpp.o.d"
  "CMakeFiles/pcf_netsim.dir/predictor.cpp.o"
  "CMakeFiles/pcf_netsim.dir/predictor.cpp.o.d"
  "CMakeFiles/pcf_netsim.dir/roofline.cpp.o"
  "CMakeFiles/pcf_netsim.dir/roofline.cpp.o.d"
  "libpcf_netsim.a"
  "libpcf_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcf_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
