
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netsim/machine.cpp" "src/netsim/CMakeFiles/pcf_netsim.dir/machine.cpp.o" "gcc" "src/netsim/CMakeFiles/pcf_netsim.dir/machine.cpp.o.d"
  "/root/repo/src/netsim/predictor.cpp" "src/netsim/CMakeFiles/pcf_netsim.dir/predictor.cpp.o" "gcc" "src/netsim/CMakeFiles/pcf_netsim.dir/predictor.cpp.o.d"
  "/root/repo/src/netsim/roofline.cpp" "src/netsim/CMakeFiles/pcf_netsim.dir/roofline.cpp.o" "gcc" "src/netsim/CMakeFiles/pcf_netsim.dir/roofline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/pcf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
