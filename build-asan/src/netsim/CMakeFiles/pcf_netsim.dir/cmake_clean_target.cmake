file(REMOVE_RECURSE
  "libpcf_netsim.a"
)
