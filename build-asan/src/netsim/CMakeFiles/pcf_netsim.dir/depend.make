# Empty dependencies file for pcf_netsim.
# This may be replaced when dependencies are built.
