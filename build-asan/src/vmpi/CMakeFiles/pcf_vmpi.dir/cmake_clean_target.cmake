file(REMOVE_RECURSE
  "libpcf_vmpi.a"
)
