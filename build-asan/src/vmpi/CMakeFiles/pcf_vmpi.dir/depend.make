# Empty dependencies file for pcf_vmpi.
# This may be replaced when dependencies are built.
