file(REMOVE_RECURSE
  "CMakeFiles/pcf_vmpi.dir/vmpi.cpp.o"
  "CMakeFiles/pcf_vmpi.dir/vmpi.cpp.o.d"
  "libpcf_vmpi.a"
  "libpcf_vmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcf_vmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
