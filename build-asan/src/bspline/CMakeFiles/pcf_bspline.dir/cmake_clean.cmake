file(REMOVE_RECURSE
  "CMakeFiles/pcf_bspline.dir/bspline.cpp.o"
  "CMakeFiles/pcf_bspline.dir/bspline.cpp.o.d"
  "libpcf_bspline.a"
  "libpcf_bspline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcf_bspline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
