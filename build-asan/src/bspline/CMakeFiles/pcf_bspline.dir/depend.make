# Empty dependencies file for pcf_bspline.
# This may be replaced when dependencies are built.
