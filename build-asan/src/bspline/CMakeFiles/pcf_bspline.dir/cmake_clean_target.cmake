file(REMOVE_RECURSE
  "libpcf_bspline.a"
)
