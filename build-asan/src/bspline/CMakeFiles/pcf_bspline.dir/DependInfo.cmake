
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bspline/bspline.cpp" "src/bspline/CMakeFiles/pcf_bspline.dir/bspline.cpp.o" "gcc" "src/bspline/CMakeFiles/pcf_bspline.dir/bspline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/pcf_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/banded/CMakeFiles/pcf_banded.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
