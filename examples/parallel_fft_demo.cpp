// Demonstration of the customized parallel FFT kernel (paper Section 4.4).
//
// Runs the spectral <-> physical pipeline on a chosen virtual-MPI process
// grid, reports the per-section time breakdown (communication / on-node
// reorder / FFT), and compares against the P3DFFT-style baseline —
// the same comparison as the paper's Table 6, at laptop scale.
//
//   ./parallel_fft_demo [ranks] [nx] [ny] [nz] [repeats]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "pencil/pencil.hpp"
#include "util/aligned.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using pcf::aligned_buffer;
using namespace pcf::pencil;

namespace {

double run_kernel(int ranks, const grid& g, const kernel_config& cfg,
                  int repeats, double* breakdown) {
  double total = 0.0;
  std::mutex m;
  pcf::vmpi::run_world(ranks, [&](pcf::vmpi::communicator& world) {
    // Factor the rank count into a near-square process grid.
    int pa = 1;
    for (int f = static_cast<int>(std::sqrt(ranks)); f >= 1; --f)
      if (ranks % f == 0) {
        pa = ranks / f;
        break;
      }
    pcf::vmpi::cart2d cart(world, pa, ranks / pa);
    parallel_fft pf(g, cart, cfg);
    const auto& d = pf.dec();
    aligned_buffer<cplx> spec(d.y_pencil_elems(), cplx{0.01, 0.0});
    aligned_buffer<double> phys(d.x_pencil_real_elems());
    // Warm up once, then time.
    pf.to_physical(spec.data(), phys.data());
    pf.to_spectral(phys.data(), spec.data());
    pf.reset_timers();
    pcf::wall_timer t;
    for (int r = 0; r < repeats; ++r) {
      pf.to_physical(spec.data(), phys.data());
      pf.to_spectral(phys.data(), spec.data());
    }
    if (world.rank() == 0) {
      std::lock_guard<std::mutex> lk(m);
      total = t.seconds();
      breakdown[0] = pf.comm_seconds();
      breakdown[1] = pf.reorder_seconds();
      breakdown[2] = pf.fft_seconds();
      breakdown[3] = static_cast<double>(pf.workspace_bytes());
    }
  });
  return total;
}

// Multi-field comparison: three velocity components transformed one at a
// time vs batched through to_physical_batch/to_spectral_batch, which ride
// a single aggregated exchange per transpose stage.
void run_batched_demo(int ranks, const grid& g, int repeats, double* wall,
                      std::uint64_t* exch) {
  std::mutex m;
  pcf::vmpi::run_world(ranks, [&](pcf::vmpi::communicator& world) {
    int pa = 1;
    for (int f = static_cast<int>(std::sqrt(ranks)); f >= 1; --f)
      if (ranks % f == 0) {
        pa = ranks / f;
        break;
      }
    pcf::vmpi::cart2d cart(world, pa, ranks / pa);
    kernel_config cfg;
    cfg.max_batch = 3;
    parallel_fft pf(g, cart, cfg);
    const auto& d = pf.dec();
    aligned_buffer<cplx> spec[3];
    aligned_buffer<double> phys[3];
    const cplx* sp[3];
    double* ph[3];
    for (int f = 0; f < 3; ++f) {
      spec[f].reset(d.y_pencil_elems());
      spec[f].fill(cplx{0.01 * (f + 1), 0.0});
      phys[f].reset(d.x_pencil_real_elems());
      sp[f] = spec[f].data();
      ph[f] = phys[f].data();
    }
    pf.to_physical_batch(sp, ph, 3);  // warm-up
    const auto e0 = pf.batching().exchanges;
    pcf::wall_timer t0;
    for (int r = 0; r < repeats; ++r)
      for (int f = 0; f < 3; ++f) pf.to_physical(sp[f], ph[f]);
    const double t_single = t0.seconds();
    const auto e1 = pf.batching().exchanges;
    pcf::wall_timer t1;
    for (int r = 0; r < repeats; ++r) pf.to_physical_batch(sp, ph, 3);
    const double t_batch = t1.seconds();
    const auto e2 = pf.batching().exchanges;
    if (world.rank() == 0) {
      std::lock_guard<std::mutex> lk(m);
      wall[0] = t_single;
      wall[1] = t_batch;
      exch[0] = (e1 - e0) / static_cast<std::uint64_t>(repeats);
      exch[1] = (e2 - e1) / static_cast<std::uint64_t>(repeats);
    }
  });
}

}  // namespace

int main(int argc, char** argv) {
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 4;
  grid g;
  g.nx = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 64;
  g.ny = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 48;
  g.nz = argc > 4 ? std::strtoul(argv[4], nullptr, 10) : 64;
  const int repeats = argc > 5 ? std::atoi(argv[5]) : 10;

  std::printf("parallel FFT demo: grid %zu x %zu x %zu, %d virtual ranks, "
              "%d round trips\n\n",
              g.nx, g.ny, g.nz, ranks, repeats);

  kernel_config custom;  // Nyquist dropped, 3/2 dealiasing fused
  kernel_config p3d = kernel_config::p3dfft_mode();

  double bc[4] = {0, 0, 0, 0}, bp[4] = {0, 0, 0, 0};
  const double tc = run_kernel(ranks, g, custom, repeats, bc);
  const double tp = run_kernel(ranks, g, p3d, repeats, bp);

  pcf::text_table t({"kernel", "total", "comm", "reorder", "FFT",
                     "workspace"});
  auto fmt = [](double v) { return pcf::text_table::fmt_time(v); };
  t.add_row({"customized", fmt(tc), fmt(bc[0]), fmt(bc[1]), fmt(bc[2]),
             pcf::text_table::fmt(bc[3] / 1048576.0, 2) + " MiB"});
  t.add_row({"P3DFFT-style", fmt(tp), fmt(bp[0]), fmt(bp[1]), fmt(bp[2]),
             pcf::text_table::fmt(bp[3] / 1048576.0, 2) + " MiB"});
  std::fputs(t.str().c_str(), stdout);
  std::printf("\nnote: the customized kernel also performs the 3/2-rule "
              "dealiasing pad/truncate\nthat P3DFFT does not support "
              "(paper Section 4.4), so it moves more data here.\n");

  double wall[2] = {0, 0};
  std::uint64_t exch[2] = {0, 0};
  run_batched_demo(ranks, g, repeats, wall, exch);
  std::printf("\nbatched multi-field transforms (3 velocity components to "
              "physical, %d repeats):\n", repeats);
  pcf::text_table bt({"mode", "total", "exchanges/cycle"});
  bt.add_row({"per-field", pcf::text_table::fmt_time(wall[0]),
              std::to_string(exch[0])});
  bt.add_row({"batched", pcf::text_table::fmt_time(wall[1]),
              std::to_string(exch[1])});
  std::fputs(bt.str().c_str(), stdout);
  std::printf("\nall fields of a batch share one aggregated alltoall per "
              "transpose stage\n(to_physical_batch / to_spectral_batch); "
              "the DNS advances its 3-field\nvelocity and 5-field product "
              "transforms this way.\n");
  return 0;
}
