// Post-processing of channel statistics: reads a profiles CSV written by
// channel_dns / production_run and reports the log-law fit, the indicator
// function, and the total-stress balance (the convergence certificate).
//
//   ./profile_analysis stats.csv [re_tau]
#include <cstdio>
#include <cstdlib>

#include "analysis/channel.hpp"
#include "io/profiles.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s stats.csv [re_tau]\n", argv[0]);
    return 2;
  }
  const std::string path = argv[1];
  const double re_tau = argc > 2 ? std::atof(argv[2]) : 180.0;

  const auto y = pcf::io::read_csv_column(path, 0);
  const auto yplus = pcf::io::read_csv_column(path, 1);
  const auto uplus = pcf::io::read_csv_column(path, 2);
  const auto minus_uv = pcf::io::read_csv_column(path, 6);

  // Lower half-channel only (y+ grows away from the lower wall).
  std::vector<double> yh, yph, uph, uvh;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] > 0.0) break;
    yh.push_back(y[i]);
    yph.push_back(yplus[i]);
    uph.push_back(uplus[i]);
    uvh.push_back(-minus_uv[i]);  // back to <uv>
  }

  std::printf("profile: %zu points, Re_tau = %.0f\n\n", yh.size(), re_tau);

  // Log-law fit over the classical overlap band.
  const double lo = 30.0, hi = std::max(60.0, 0.6 * re_tau);
  try {
    auto f = pcf::analysis::fit_loglaw(yph, uph, lo, hi);
    std::printf("log-law fit over %g < y+ < %g (%zu points):\n", lo, hi,
                f.points_used);
    std::printf("  kappa = %.3f   (reference 0.38-0.41)\n", f.kappa);
    std::printf("  B     = %.2f    (reference 5.0-5.3)\n", f.B);
    std::printf("  r^2   = %.4f\n\n", f.r2);
  } catch (const std::exception& e) {
    std::printf("log-law fit unavailable: %s\n\n", e.what());
  }

  auto xi = pcf::analysis::indicator_function(yph, uph);
  std::printf("indicator function Xi = y+ dU+/dy+ (flat = log layer):\n");
  pcf::text_table ti({"y+", "Xi", "1/Xi"});
  for (std::size_t i = 0; i < yph.size(); ++i) {
    if (yph[i] < 10.0) continue;
    ti.add_row({pcf::text_table::fmt(yph[i], 1),
                pcf::text_table::fmt(xi[i], 2),
                pcf::text_table::fmt(xi[i] != 0.0 ? 1.0 / xi[i] : 0.0, 3)});
  }
  std::fputs(ti.str().c_str(), stdout);

  auto b = pcf::analysis::check_stress_balance(yh, uph, uvh, re_tau);
  std::printf("\ntotal stress balance nu dU/dy - <uv> vs -y "
              "(max residual %.4f):\n",
              b.max_error);
  pcf::text_table ts({"y", "viscous", "turbulent", "total", "expected"});
  for (std::size_t i = 0; i < yh.size(); i += std::max<std::size_t>(1, yh.size() / 12)) {
    ts.add_row({pcf::text_table::fmt(yh[i], 3),
                pcf::text_table::fmt(b.viscous[i], 3),
                pcf::text_table::fmt(b.turbulent[i], 3),
                pcf::text_table::fmt(b.total[i], 3),
                pcf::text_table::fmt(b.expected[i], 3)});
  }
  std::fputs(ts.str().c_str(), stdout);
  std::printf("\nresidual < 0.05 indicates well-converged statistics.\n");
  return 0;
}
