// Full channel-flow DNS driver — the scientific workload of the paper
// (Section 6), scaled to a single machine.
//
// Runs a turbulent channel at the configured friction Reynolds number from
// a perturbed laminar state, time-averages the statistics of Figures 5-6
// into a CSV, and optionally dumps instantaneous flow slices (Figures 7-8)
// as PPM images.
//
// Usage:
//   ./channel_dns [options]
//     --nx N --nz N --ny N        resolution (default 32 x 33 x 32)
//     --re R                      friction Reynolds number (default 180)
//     --dt T                      time step (default 2e-4)
//     --steps N                   time steps to run (default 2000)
//     --warmup N                  steps before statistics (default half)
//     --ranks P                   virtual MPI ranks, as PA x PB (default 1)
//     --pa A --pb B               explicit process grid
//     --stats FILE.csv            profile output (default channel_stats.csv)
//     --slices PREFIX             write PREFIX_u.ppm / PREFIX_wz.ppm
//     --checkpoint FILE           save state at the end
//     --restart FILE              load state before running
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "io/ppm.hpp"
#include "io/profiles.hpp"
#include "io/slices.hpp"

namespace {

struct options {
  pcf::core::channel_config cfg;
  long steps = 2000;
  long warmup = -1;
  int ranks = 1;
  std::string stats_path = "channel_stats.csv";
  std::string slice_prefix;
  std::string checkpoint_path;
  std::string restart_path;
};

options parse(int argc, char** argv) {
  options o;
  o.cfg.nx = 32;
  o.cfg.nz = 32;
  o.cfg.ny = 33;
  o.cfg.dt = 2e-4;
  auto next = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (!std::strcmp(a, "--nx")) o.cfg.nx = std::strtoul(next(i), nullptr, 10);
    else if (!std::strcmp(a, "--nz")) o.cfg.nz = std::strtoul(next(i), nullptr, 10);
    else if (!std::strcmp(a, "--ny")) o.cfg.ny = std::atoi(next(i));
    else if (!std::strcmp(a, "--re")) o.cfg.re_tau = std::atof(next(i));
    else if (!std::strcmp(a, "--lx")) o.cfg.lx = std::atof(next(i));
    else if (!std::strcmp(a, "--lz")) o.cfg.lz = std::atof(next(i));
    else if (!std::strcmp(a, "--dt")) o.cfg.dt = std::atof(next(i));
    else if (!std::strcmp(a, "--steps")) o.steps = std::atol(next(i));
    else if (!std::strcmp(a, "--warmup")) o.warmup = std::atol(next(i));
    else if (!std::strcmp(a, "--ranks")) o.ranks = std::atoi(next(i));
    else if (!std::strcmp(a, "--pa")) o.cfg.pa = std::atoi(next(i));
    else if (!std::strcmp(a, "--pb")) o.cfg.pb = std::atoi(next(i));
    else if (!std::strcmp(a, "--stats")) o.stats_path = next(i);
    else if (!std::strcmp(a, "--slices")) o.slice_prefix = next(i);
    else if (!std::strcmp(a, "--checkpoint")) o.checkpoint_path = next(i);
    else if (!std::strcmp(a, "--restart")) o.restart_path = next(i);
    else {
      std::fprintf(stderr, "unknown option %s\n", a);
      std::exit(2);
    }
  }
  if (o.warmup < 0) o.warmup = o.steps / 2;
  if (o.cfg.pa == 0 && o.cfg.pb == 0) {
    o.cfg.pa = o.ranks;
    o.cfg.pb = 1;
  }
  return o;
}

void write_slices(pcf::core::channel_dns& dns,
                  pcf::vmpi::communicator& world, const std::string& prefix) {
  // Global x-y slice at z = 0 (streamwise velocity and spanwise vorticity,
  // as in Figures 7 and 8), gathered across the decomposition.
  std::vector<double> u, v, w, wz;
  dns.physical_velocity(u, v, w);
  dns.physical_vorticity_z(wz);
  const auto& d = dns.dec();
  auto gu = pcf::io::gather_xy_slice(world, d, u, 0);
  auto gw = pcf::io::gather_xy_slice(world, d, wz, 0);
  if (world.rank() != 0) return;
  const std::size_t nx = d.nxf, ny = d.g.ny;
  std::vector<double> su(nx * ny), sw(nx * ny);
  for (std::size_t y = 0; y < ny; ++y)
    for (std::size_t x = 0; x < nx; ++x) {
      // image row 0 = top of channel
      su[(ny - 1 - y) * nx + x] = gu[y * nx + x];
      sw[(ny - 1 - y) * nx + x] = gw[y * nx + x];
    }
  auto minmax = [](const std::vector<double>& f) {
    double lo = f[0], hi = f[0];
    for (double v2 : f) {
      lo = std::min(lo, v2);
      hi = std::max(hi, v2);
    }
    return std::pair{lo, hi};
  };
  auto [ulo, uhi] = minmax(su);
  auto [wlo, whi] = minmax(sw);
  pcf::io::write_ppm(prefix + "_u.ppm", su, nx, ny, ulo, uhi);
  pcf::io::write_ppm(prefix + "_wz.ppm", sw, nx, ny, wlo, whi);
  std::printf("wrote %s_u.ppm and %s_wz.ppm (%zu x %zu)\n", prefix.c_str(),
              prefix.c_str(), nx, ny);
}

}  // namespace

int main(int argc, char** argv) {
  options o = parse(argc, argv);
  pcf::vmpi::run_world(o.ranks, [&](pcf::vmpi::communicator& world) {
    pcf::core::channel_dns dns(o.cfg, world);
    if (!o.restart_path.empty()) {
      dns.load_checkpoint(o.restart_path + "." +
                          std::to_string(world.rank()));
      if (world.rank() == 0)
        std::printf("restarted from step %ld (t = %.4f)\n", dns.step_count(),
                    dns.time());
    } else {
      dns.initialize(0.15);
    }

    if (world.rank() == 0) {
      std::printf("channel DNS at Re_tau = %.0f: %zu x %d x %zu modes "
                  "(%zu x %d x %zu dealiased grid), dt = %g, %ld steps\n",
                  o.cfg.re_tau, o.cfg.nx, o.cfg.ny, o.cfg.nz, dns.dec().nxf,
                  o.cfg.ny, dns.dec().nzf, o.cfg.dt, o.steps);
      std::printf("%8s %12s %12s %12s %10s\n", "step", "bulk U", "KE",
                  "wall shear", "CFL");
    }
    const long report = std::max<long>(1, o.steps / 20);
    for (long s = 0; s < o.steps; ++s) {
      dns.step();
      if (dns.step_count() > o.warmup && dns.step_count() % 10 == 0)
        dns.accumulate_stats();
      if (world.rank() == 0 && (s + 1) % report == 0)
        std::printf("%8ld %12.5f %12.5f %12.6f %10.4f\n", dns.step_count(),
                    dns.bulk_velocity(), dns.kinetic_energy(),
                    dns.wall_shear_stress(), dns.cfl());
    }

    auto prof = dns.stats();
    if (world.rank() == 0 && prof.samples > 0) {
      pcf::io::write_profiles_csv(o.stats_path, prof, o.cfg.re_tau);
      std::printf("wrote %s (%ld samples)\n", o.stats_path.c_str(),
                  prof.samples);
    }
    if (!o.slice_prefix.empty()) write_slices(dns, world, o.slice_prefix);
    if (!o.checkpoint_path.empty()) {
      dns.save_checkpoint(o.checkpoint_path + "." +
                          std::to_string(world.rank()));
      if (world.rank() == 0)
        std::printf("checkpoint written to %s.*\n", o.checkpoint_path.c_str());
    }
    if (world.rank() == 0) {
      auto t = dns.timings();
      std::printf("section times: transpose %.2fs  FFT %.2fs  advance %.2fs "
                  " total %.2fs\n",
                  t.transpose, t.fft, t.advance, t.total);
    }
  });
  return 0;
}
