// Batch front-end for the multi-tenant campaign server: run a sweep of
// channel configurations from a job file, time-sliced over one shared
// worker pool, with a live status report while it runs and one
// observables CSV per run when it finishes.
//
//   ./campaign_runner                      # built-in demo sweep
//   ./campaign_runner sweep.jobs          # job file (see campaign.jobs)
//   ./campaign_runner sweep.jobs out_dir  # where the CSVs land (default .)
//
// The job-file format is documented in src/campaign/job_file.hpp and the
// sample examples/campaign.jobs.
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>

#include "campaign/campaign.hpp"
#include "campaign/job_file.hpp"

namespace {

pcf::campaign::job_file demo_sweep() {
  // A small Re_tau x dt sweep, the shape of the paper's Table 1 campaign
  // shrunk to laptop size: identical grids, so every run after the first
  // reuses the shared FFT plans.
  pcf::campaign::job_file jf;
  jf.config.workers = 2;
  jf.config.slice_steps = 10;
  jf.config.collect_series = true;
  const double res[2] = {180.0, 360.0};
  const double dts[2] = {1e-4, 2e-4};
  for (double re : res)
    for (double dt : dts) {
      pcf::campaign::job_spec j;
      j.name = "re" + std::to_string(static_cast<int>(re)) + "_dt" +
               std::to_string(dt).substr(0, 6);
      j.config.nx = 16;
      j.config.nz = 16;
      j.config.ny = 33;
      j.config.re_tau = re;
      j.config.dt = dt;
      j.steps = 40;
      jf.jobs.push_back(std::move(j));
    }
  return jf;
}

void write_series_csv(const std::string& path,
                      const std::vector<pcf::campaign::series_sample>& s) {
  std::ofstream out(path);
  out << "step,time,bulk_velocity,kinetic_energy,cfl\n";
  for (const auto& r : s)
    out << r.step << ',' << r.time << ',' << r.bulk << ',' << r.energy << ','
        << r.cfl << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  pcf::campaign::job_file jf;
  try {
    jf = argc > 1 ? pcf::campaign::parse_job_file(argv[1]) : demo_sweep();
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "campaign_runner: %s\n", ex.what());
    return 1;
  }
  const std::string out_dir = argc > 2 ? argv[2] : ".";
  jf.config.collect_series = true;  // the runner always writes the CSVs

  pcf::campaign::campaign_server server(jf.config);
  std::vector<std::uint64_t> ids;
  ids.reserve(jf.jobs.size());
  for (auto& j : jf.jobs) ids.push_back(server.enqueue(std::move(j)));
  std::printf("campaign_runner: %zu jobs on %d workers, %d-step slices\n",
              ids.size(), jf.config.workers, jf.config.slice_steps);

  // Live status from the main thread's poller while run() drains the
  // campaign on the shared pool.
  std::mutex mu;
  std::condition_variable cv;
  bool finished = false;
  std::thread poller([&] {
    std::unique_lock<std::mutex> lk(mu);
    while (!cv.wait_for(lk, std::chrono::seconds(2),
                        [&] { return finished; })) {
      lk.unlock();
      std::printf("%s", server.status_report().c_str());
      lk.lock();
    }
  });

  pcf::campaign::campaign_report rep;
  int rc = 0;
  try {
    rep = server.run();
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "campaign_runner: %s\n", ex.what());
    rc = 1;
  }
  {
    std::lock_guard<std::mutex> lk(mu);
    finished = true;
  }
  cv.notify_all();
  poller.join();
  if (rc != 0) return rc;

  std::printf("%s", server.status_report().c_str());
  std::printf(
      "campaign done: %ld steps in %.2fs | evictions %llu readmissions %llu "
      "| pool peak %.1f MiB | plan cache %llu/%llu hit | memo %llu/%llu "
      "hit\n",
      rep.total_steps, rep.elapsed_s,
      static_cast<unsigned long long>(rep.evictions),
      static_cast<unsigned long long>(rep.readmissions),
      static_cast<double>(rep.pool_peak_bytes) / (1024.0 * 1024.0),
      static_cast<unsigned long long>(rep.plan_cache_hits),
      static_cast<unsigned long long>(rep.plan_cache_hits +
                                      rep.plan_cache_misses),
      static_cast<unsigned long long>(rep.tuning_memo_hits),
      static_cast<unsigned long long>(rep.tuning_memo_hits +
                                      rep.tuning_memo_misses));

  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto& series = server.series(ids[i]);
    if (series.empty()) continue;
    const std::string path =
        out_dir + "/" + rep.jobs[i].name + "_series.csv";
    write_series_csv(path, series);
    std::printf("  wrote %s (%zu samples)\n", path.c_str(), series.size());
  }
  return 0;
}
