// Interactive front end to the netsim machine models: predict the
// per-section time of one RK3 DNS timestep for any grid / machine / core
// count / launch mode, i.e. regenerate any row of the paper's Tables 9-11.
//
//   ./scaling_explorer [machine] [nx] [ny] [nz] [cores...]
//     machine: mira | lonestar | stampede | bluewaters  (default mira)
//   Environment: PCF_HYBRID=1 predicts the one-rank-per-node launch.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "netsim/predictor.hpp"
#include "util/table.hpp"

using namespace pcf::netsim;
using pcf::text_table;

int main(int argc, char** argv) {
  machine m = machine::mira();
  if (argc > 1) {
    const std::string name = argv[1];
    if (name == "lonestar") m = machine::lonestar();
    else if (name == "stampede") m = machine::stampede();
    else if (name == "bluewaters") m = machine::blue_waters();
    else if (name != "mira") {
      std::fprintf(stderr,
                   "unknown machine '%s' (mira|lonestar|stampede|bluewaters)\n",
                   name.c_str());
      return 2;
    }
  }
  job_config j;
  j.nx = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 2048;
  j.ny = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 512;
  j.nz = argc > 4 ? std::strtoul(argv[4], nullptr, 10) : 2048;
  const bool hybrid = std::getenv("PCF_HYBRID") != nullptr;
  j.ranks_per_node = hybrid ? 1 : 0;

  std::vector<long> cores;
  for (int i = 5; i < argc; ++i) cores.push_back(std::atol(argv[i]));
  if (cores.empty())
    cores = {m.cores_per_node * 16L, m.cores_per_node * 64L,
             m.cores_per_node * 256L, m.cores_per_node * 1024L};

  predictor p(m);
  std::printf("%s — %zu x %zu x %zu grid, %s launch\n", m.name.c_str(), j.nx,
              j.ny, j.nz, hybrid ? "hybrid (1 rank/node)" : "MPI (rank/core)");
  text_table t({"Cores", "Transpose", "FFT", "N-S advance", "Total",
                "Efficiency"});
  double base = 0.0;
  long base_cores = 0;
  for (long c : cores) {
    j.cores = c;
    const auto s = p.timestep(j);
    if (base == 0.0) {
      base = s.total();
      base_cores = c;
    }
    const double eff =
        (base * static_cast<double>(base_cores)) /
        (s.total() * static_cast<double>(c));
    t.add_row({std::to_string(c), text_table::fmt(s.transpose(), 2),
               text_table::fmt(s.fft, 2), text_table::fmt(s.advance, 2),
               text_table::fmt(s.total(), 2), text_table::fmt_pct(eff)});
  }
  std::fputs(t.str().c_str(), stdout);
  return 0;
}
