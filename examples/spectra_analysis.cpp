// Spectral analysis of the channel flow: runs a short DNS and writes the
// one-dimensional energy spectra E_uu, E_vv, E_ww at selected wall-normal
// locations — the kind of analysis the paper's Re_tau = 5200 dataset was
// produced for (cf. del Alamo et al. 2004, "Scaling of the energy spectra
// of turbulent channels").
//
//   ./spectra_analysis [steps] [out_prefix]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "core/simulation.hpp"

namespace {

void write_spectra_csv(const std::string& path,
                       const pcf::core::spectrum_data& s) {
  std::ofstream os(path);
  os << "k,euu,evv,eww\n";
  os.precision(10);
  for (std::size_t k = 0; k < s.euu.size(); ++k)
    os << k << ',' << s.euu[k] << ',' << s.evv[k] << ',' << s.eww[k] << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 400;
  const std::string prefix = argc > 2 ? argv[2] : "spectra";

  pcf::core::channel_config cfg;
  cfg.nx = 32;
  cfg.nz = 32;
  cfg.ny = 33;
  cfg.re_tau = 180.0;
  cfg.dt = 2e-4;

  pcf::vmpi::run_world(1, [&](pcf::vmpi::communicator& world) {
    pcf::core::channel_dns dns(cfg, world);
    dns.initialize(0.15);
    for (int s = 0; s < steps; ++s) dns.step();

    // Pick the collocation points nearest y+ ~ 15 (near-wall peak) and the
    // centerline.
    const auto& pts = dns.operators().points();
    int i_nw = 0, i_cl = 0;
    double best_nw = 1e9, best_cl = 1e9;
    for (int i = 0; i < static_cast<int>(pts.size()); ++i) {
      const double yp = (1.0 + pts[static_cast<std::size_t>(i)]) * cfg.re_tau;
      if (std::abs(yp - 15.0) < best_nw) {
        best_nw = std::abs(yp - 15.0);
        i_nw = i;
      }
      if (std::abs(pts[static_cast<std::size_t>(i)]) < best_cl) {
        best_cl = std::abs(pts[static_cast<std::size_t>(i)]);
        i_cl = i;
      }
    }

    for (auto [label, idx] : {std::pair{"yplus15", i_nw},
                              std::pair{"center", i_cl}}) {
      auto sx = dns.streamwise_spectra(idx);
      auto sz = dns.spanwise_spectra(idx);
      write_spectra_csv(prefix + "_kx_" + label + ".csv", sx);
      write_spectra_csv(prefix + "_kz_" + label + ".csv", sz);
      double total = 0.0;
      for (double e : sx.euu) total += e;
      std::printf("%s (point %d, y+ = %.1f): sum E_uu(kx) = %.4f\n", label,
                  idx,
                  (1.0 + pts[static_cast<std::size_t>(idx)]) * cfg.re_tau,
                  total);
    }
    std::printf("wrote %s_{kx,kz}_{yplus15,center}.csv\n", prefix.c_str());
  });
  return 0;
}
