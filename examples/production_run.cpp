// A scaled-down version of the paper's production campaign (Section 6):
// run the channel for a number of flow-throughs with the campaign runner —
// warmup, statistics cadence, periodic checkpoints, a diagnostics time
// series — then write profiles, the series CSV, and a full 3-D VTK field.
//
//   ./production_run [flow_throughs] [ranks]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/runner.hpp"
#include "io/profiles.hpp"
#include "io/slices.hpp"
#include "io/vtk.hpp"

int main(int argc, char** argv) {
  const double fts = argc > 1 ? std::atof(argv[1]) : 0.25;
  const int ranks = argc > 2 ? std::atoi(argv[2]) : 1;

  pcf::core::channel_config cfg;
  cfg.nx = 24;
  cfg.nz = 24;
  cfg.ny = 33;
  cfg.re_tau = 180.0;
  cfg.dt = 2e-4;
  cfg.pa = ranks;

  pcf::vmpi::run_world(ranks, [&](pcf::vmpi::communicator& world) {
    pcf::core::channel_dns dns(cfg, world);

    pcf::core::run_plan plan;
    plan.flow_throughs = fts;
    plan.warmup_fraction = 0.4;
    plan.stats_every = 5;
    plan.diag_every = 50;
    plan.checkpoint_every = 500;
    plan.checkpoint_path = "production.ckpt";
    plan.checkpoint_keep = 3;       // rotated generations on disk
    plan.max_blowup_retries = 2;    // restore + halve dt, at most twice
    plan.retry_dt_factor = 0.5;

    // Rolling per-stage timing windows: every 250 steps print the
    // hierarchical phase breakdown accumulated since the previous window.
    plan.timings_every = 250;
    plan.on_timings = [&](const pcf::core::step_timings& t) {
      if (world.rank() != 0) return;
      std::printf("  -- stage timings (last %ld steps) --\n",
                  plan.timings_every);
      for (const auto& p : t.phases)
        std::printf("     %*s%-12s %9.3fs  %8ld calls\n", 2 * p.depth, "",
                    p.name.c_str(), p.seconds, p.calls);
    };

    // Resume from the newest good checkpoint generation if a previous
    // (possibly killed) campaign left one behind; otherwise start fresh.
    const long resumed = pcf::core::resume_or_initialize(
        dns, world, plan.checkpoint_path, 0.15);
    if (world.rank() == 0 && resumed >= 0)
      std::printf("resumed from checkpoint generation %ld (t = %.3f)\n",
                  resumed, dns.time());

    if (world.rank() == 0)
      std::printf("running %.2f flow-throughs (flow-through time %.3f)\n",
                  fts, pcf::core::flow_through_time(dns));
    auto rep = pcf::core::run_campaign(
        dns, world, plan, [&](const pcf::core::diag_sample& d) {
          if (world.rank() == 0)
            std::printf("  step %6ld t %.3f Ub %.3f KE %.2f shear %.3f "
                        "CFL %.2f\n",
                        d.step, d.time, d.bulk_velocity, d.kinetic_energy,
                        d.wall_shear, d.cfl);
        });

    if (world.rank() == 0) {
      std::printf("ran %ld steps, %ld checkpoints%s\n", rep.steps_run,
                  rep.checkpoints_written,
                  rep.hit_time_budget ? " (hit wall-clock budget)" : "");
      if (rep.blowup_recoveries > 0)
        std::printf("recovered from %ld blow-up(s); last restore from "
                    "generation %ld (see production.ckpt.blowup.txt)\n",
                    rep.blowup_recoveries, rep.restored_generation);
      if (rep.went_nonfinite)
        std::printf("halted on non-finite energy; diagnostics in "
                    "production.ckpt.blowup.txt\n");
      pcf::core::write_series_csv("production_series.csv", rep.series);
      if (rep.profiles.samples > 0)
        pcf::io::write_profiles_csv("production_profiles.csv", rep.profiles,
                                    cfg.re_tau);
    }

    // Full 3-D field to VTK: gather plane by plane.
    std::vector<double> u, v, w;
    dns.physical_velocity(u, v, w);
    const auto& d = dns.dec();
    std::vector<double> gu;
    gu.reserve(d.nzf * d.g.ny * d.nxf);
    for (std::size_t zg = 0; zg < d.nzf; ++zg) {
      auto plane = pcf::io::gather_xy_slice(world, d, u, zg);
      gu.insert(gu.end(), plane.begin(), plane.end());
    }
    if (world.rank() == 0) {
      std::vector<double> xs(d.nxf), zs(d.nzf);
      for (std::size_t i = 0; i < d.nxf; ++i)
        xs[i] = cfg.lx * static_cast<double>(i) / static_cast<double>(d.nxf);
      for (std::size_t i = 0; i < d.nzf; ++i)
        zs[i] = cfg.lz * static_cast<double>(i) / static_cast<double>(d.nzf);
      pcf::io::write_vtk_rectilinear("production_u.vtk", xs,
                                     dns.operators().points(), zs,
                                     {{"u", &gu}});
      std::printf("wrote production_series.csv, production_profiles.csv, "
                  "production_u.vtk\n");
    }
  });
  return 0;
}
