// Quickstart: the smallest useful channel DNS.
//
// Builds a coarse Re_tau = 180 channel, runs a few hundred time steps from
// a perturbed laminar state, and prints the flow diagnostics every few
// steps. Takes a couple of seconds on one core.
//
//   ./quickstart [steps] [--pooled]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/simulation.hpp"

int main(int argc, char** argv) {
  int steps = 200;
  bool pooled = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--pooled") == 0)
      pooled = true;
    else
      steps = std::atoi(argv[i]);
  }

  pcf::core::channel_config cfg;
  cfg.nx = 16;         // streamwise Fourier modes
  cfg.nz = 16;         // spanwise Fourier modes
  cfg.ny = 33;         // wall-normal B-spline basis functions (degree 7)
  cfg.re_tau = 180.0;  // nu = 1 / Re_tau; driven by dP/dx = -1
  cfg.dt = 1e-4;
  cfg.pooled_workspace = pooled;  // lanes lease from the block pool

  pcf::vmpi::run_world(1, [&](pcf::vmpi::communicator& world) {
    pcf::core::channel_dns dns(cfg, world);
    dns.initialize(/*perturbation=*/0.1);

    std::printf("channel DNS: %zu x %d x %zu modes, Re_tau = %.0f\n", cfg.nx,
                cfg.ny, cfg.nz, cfg.re_tau);
    std::printf("%8s %12s %12s %12s %10s\n", "step", "bulk U", "KE",
                "wall shear", "CFL");
    for (int s = 0; s <= steps; ++s) {
      if (s % (steps / 10 > 0 ? steps / 10 : 1) == 0) {
        std::printf("%8ld %12.5f %12.5f %12.6f %10.4f\n", dns.step_count(),
                    dns.bulk_velocity(), dns.kinetic_energy(),
                    dns.wall_shear_stress(), dns.cfl());
      }
      if (s < steps) dns.step();
    }

    auto t = dns.timings();
    std::printf("\nper-section time: transpose %.3fs, FFT %.3fs, "
                "N-S advance %.3fs, total %.3fs\n",
                t.transpose, t.fft, t.advance, t.total);
    std::printf("\nper-stage breakdown (parents include children):\n");
    for (const auto& p : t.phases)
      std::printf("  %*s%-12s %9.3fs  %8ld calls\n", 2 * p.depth, "",
                  p.name.c_str(), p.seconds, p.calls);

    std::printf("\nworkspace high-water (%s lanes):\n",
                t.pooled ? "pooled" : "owned");
    for (const auto& u : t.workspace)
      std::printf("  %-12s %8.1f KiB peak of %8.1f KiB (%5.1f%%)\n",
                  u.name.c_str(),
                  static_cast<double>(u.peak_bytes) / 1024.0,
                  static_cast<double>(u.capacity_bytes) / 1024.0,
                  u.capacity_bytes
                      ? 100.0 * static_cast<double>(u.peak_bytes) /
                            static_cast<double>(u.capacity_bytes)
                      : 0.0);
    if (t.pooled)
      std::printf("  block pool: %llu blocks live (peak %llu), "
                  "%llu leases (%llu cache hits), %llu holes\n",
                  static_cast<unsigned long long>(t.pool.blocks_leased),
                  static_cast<unsigned long long>(t.pool.blocks_peak),
                  static_cast<unsigned long long>(t.pool.leases),
                  static_cast<unsigned long long>(t.pool.cache_hits),
                  static_cast<unsigned long long>(t.pool.holes));
  });
  return 0;
}
