#include <gtest/gtest.h>

#include <cmath>

#include "analysis/channel.hpp"
#include "util/check.hpp"

namespace {

using pcf::analysis::check_stress_balance;
using pcf::analysis::fit_loglaw;
using pcf::analysis::indicator_function;

/// Synthetic profile obeying an exact log law in a band.
void make_loglaw_profile(double kappa, double B, std::vector<double>& yp,
                         std::vector<double>& up) {
  for (double y = 1.0; y < 400.0; y *= 1.15) {
    yp.push_back(y);
    up.push_back(y < 10.0 ? y : std::log(y) / kappa + B);
  }
}

TEST(LogLaw, RecoversKappaAndB) {
  std::vector<double> yp, up;
  make_loglaw_profile(0.41, 5.2, yp, up);
  auto f = fit_loglaw(yp, up, 30.0, 300.0);
  EXPECT_NEAR(f.kappa, 0.41, 1e-10);
  EXPECT_NEAR(f.B, 5.2, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
  EXPECT_GE(f.points_used, 3u);
}

TEST(LogLaw, DifferentConstantsAreDistinguished) {
  std::vector<double> yp, up;
  make_loglaw_profile(0.38, 4.5, yp, up);
  auto f = fit_loglaw(yp, up, 30.0, 300.0);
  EXPECT_NEAR(f.kappa, 0.38, 1e-10);
  EXPECT_NEAR(f.B, 4.5, 1e-9);
}

TEST(LogLaw, RejectsEmptyBandAndDecreasingProfiles) {
  std::vector<double> yp{1, 2, 3}, up{1, 2, 3};
  EXPECT_THROW(fit_loglaw(yp, up, 100.0, 200.0), pcf::precondition_error);
  std::vector<double> yp2, up2;
  make_loglaw_profile(0.41, 5.2, yp2, up2);
  for (auto& u : up2) u = -u;
  EXPECT_THROW(fit_loglaw(yp2, up2, 30.0, 300.0), pcf::precondition_error);
}

TEST(LogLaw, IndicatorFlatInLogLayer) {
  std::vector<double> yp, up;
  make_loglaw_profile(0.40, 5.0, yp, up);
  auto xi = indicator_function(yp, up);
  for (std::size_t i = 0; i < yp.size(); ++i) {
    if (yp[i] > 40.0 && yp[i] < 250.0)
      EXPECT_NEAR(xi[i], 1.0 / 0.40, 0.05) << yp[i];
  }
}

TEST(StressBalance, ExactLaminarProfileBalances) {
  // Laminar: U = Re (1 - y^2) / 2, <uv> = 0: nu dU/dy = -y exactly.
  const double re = 180.0;
  std::vector<double> y, u, uv;
  for (int i = 0; i <= 64; ++i) {
    y.push_back(-1.0 + 2.0 * i / 64.0);
    u.push_back(re * 0.5 * (1.0 - y.back() * y.back()));
    uv.push_back(0.0);
  }
  auto b = check_stress_balance(y, u, uv, re);
  EXPECT_LT(b.max_error, 1e-10);  // quadratic profile: derivative exact
  for (std::size_t i = 0; i < y.size(); ++i)
    EXPECT_NEAR(b.total[i], -y[i], 1e-10);
}

TEST(StressBalance, DetectsUnconvergedStatistics) {
  // Perturb <uv>: the residual must report it.
  const double re = 100.0;
  std::vector<double> y, u, uv;
  for (int i = 0; i <= 32; ++i) {
    y.push_back(-1.0 + 2.0 * i / 32.0);
    u.push_back(re * 0.5 * (1.0 - y.back() * y.back()));
    uv.push_back(0.05 * std::sin(3.0 * y.back()));
  }
  auto b = check_stress_balance(y, u, uv, re);
  EXPECT_GT(b.max_error, 0.03);
}

TEST(StressBalance, SplitsViscousAndTurbulentParts) {
  const double re = 50.0;
  std::vector<double> y{-1.0, -0.5, 0.0, 0.5, 1.0};
  std::vector<double> u{0.0, 10.0, 14.0, 10.0, 0.0};
  std::vector<double> uv{0.0, -0.3, 0.0, 0.3, 0.0};
  auto b = check_stress_balance(y, u, uv, re);
  ASSERT_EQ(b.viscous.size(), y.size());
  EXPECT_DOUBLE_EQ(b.turbulent[1], 0.3);
  EXPECT_DOUBLE_EQ(b.total[1], b.viscous[1] + b.turbulent[1]);
  EXPECT_DOUBLE_EQ(b.expected[1], 0.5);
}

}  // namespace
