#include <gtest/gtest.h>

#include <cmath>

#include "analysis/regression.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace {

using pcf::analysis::derivative;
using pcf::analysis::fit_linear;

TEST(Regression, ExactLineRecovered) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(0.3 * i - 2.0);
    y.push_back(1.7 * x.back() - 0.4);
  }
  auto f = fit_linear(x, y);
  EXPECT_NEAR(f.slope, 1.7, 1e-12);
  EXPECT_NEAR(f.intercept, -0.4, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(Regression, NoisyLineFitsApproximately) {
  pcf::rng r(5);
  std::vector<double> x, y;
  for (int i = 0; i < 500; ++i) {
    x.push_back(i * 0.01);
    y.push_back(2.0 * x.back() + 1.0 + 0.05 * r.normal());
  }
  auto f = fit_linear(x, y);
  EXPECT_NEAR(f.slope, 2.0, 0.02);
  EXPECT_NEAR(f.intercept, 1.0, 0.02);
  EXPECT_GT(f.r2, 0.99);
}

TEST(Regression, RejectsDegenerateInput) {
  EXPECT_THROW(fit_linear({1.0}, {2.0}), pcf::precondition_error);
  EXPECT_THROW(fit_linear({1.0, 2.0}, {2.0}), pcf::precondition_error);
  EXPECT_THROW(fit_linear({3.0, 3.0}, {1.0, 2.0}), pcf::precondition_error);
}

TEST(Derivative, ExactForQuadraticsOnNonuniformGrid) {
  // The three-point formula is exact for polynomials up to degree 2.
  std::vector<double> x{0.0, 0.1, 0.35, 0.7, 1.2, 2.0};
  std::vector<double> y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    y[i] = 3.0 * x[i] * x[i] - 2.0 * x[i] + 1.0;
  auto d = derivative(x, y);
  for (std::size_t i = 1; i + 1 < x.size(); ++i)
    EXPECT_NEAR(d[i], 6.0 * x[i] - 2.0, 1e-12) << i;
}

TEST(Derivative, ConvergesForSine) {
  for (int n : {20, 40}) {
    std::vector<double> x(static_cast<std::size_t>(n)), y(x.size());
    for (int i = 0; i < n; ++i) {
      x[static_cast<std::size_t>(i)] = static_cast<double>(i) / (n - 1);
      y[static_cast<std::size_t>(i)] = std::sin(3.0 * x[static_cast<std::size_t>(i)]);
    }
    auto d = derivative(x, y);
    double err = 0.0;
    for (std::size_t i = 1; i + 1 < x.size(); ++i)
      err = std::max(err, std::abs(d[i] - 3.0 * std::cos(3.0 * x[i])));
    EXPECT_LT(err, 50.0 / (n * n));  // second order
  }
}

}  // namespace
