// The campaign determinism contract: scheduling is data movement, not
// physics. A 64-run sweep time-sliced over a shared pool — with a
// residency cap harsh enough that runs are repeatedly evicted to spill
// checkpoints and readmitted — must reproduce, per step and per run, the
// exact fingerprints of the same configurations executed solo.
//
// The sweep deliberately mixes everything the scheduler can reorder:
// priorities (so service order differs from enqueue order), seeds and
// perturbations (distinct trajectories), dt policies including the
// adaptive CFL controller (dt evolution must survive spill/readmit), and
// identical grids (so runs share FFT plans — sharing must not leak bits
// between tenants either).
//
// Labels: `determinism` (runs under the determinism-pooled and
// determinism-tsan presets) + `campaign`. Under TSan the sweep shrinks,
// matching the rest of the determinism suite's TSan policy.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/determinism.hpp"
#include "campaign/campaign.hpp"
#include "core/simulation.hpp"
#include "util/block_pool.hpp"
#include "vmpi/vmpi.hpp"

#if defined(__SANITIZE_THREAD__)
#define PCF_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PCF_UNDER_TSAN 1
#endif
#endif
#ifndef PCF_UNDER_TSAN
#define PCF_UNDER_TSAN 0
#endif

namespace {

using namespace pcf;

#if PCF_UNDER_TSAN
constexpr int kRuns = 16;
constexpr int kSteps = 4;
#else
constexpr int kRuns = 64;
constexpr int kSteps = 6;
#endif

std::vector<campaign::job_spec> sweep_jobs() {
  const double res[] = {180.0, 360.0};
  const double dts[] = {1e-4, 2e-4};
  std::vector<campaign::job_spec> jobs;
  jobs.reserve(kRuns);
  for (int i = 0; i < kRuns; ++i) {
    campaign::job_spec j;
    j.name = "run" + std::to_string(i);
    j.config.nx = 16;
    j.config.nz = 16;
    j.config.ny = 33;
    j.config.re_tau = res[i % 2];
    j.config.dt = dts[(i / 2) % 2];
    j.seed = 1 + static_cast<std::uint64_t>(i / 4) % 8;
    j.perturbation = 1e-3 * (1 + i % 3);
    j.priority = i % 3;  // service order != enqueue order
    j.steps = kSteps;
    if (i % 8 == 7) {
      // Adaptive dt: the evolving dt is part of the fingerprint, so a
      // spill/readmit cycle must hand the controller back bit-identical
      // state.
      j.cfl_target = 0.5;
      j.dt_min = j.config.dt * 0.25;
      j.dt_max = j.config.dt * 4.0;
    }
    jobs.push_back(std::move(j));
  }
  return jobs;
}

/// The reference: the same job executed alone, with the campaign's
/// per-tenant config overrides (single-rank world, pooled workspace)
/// mirrored, fingerprinting after every step exactly as the campaign
/// observer does.
determinism::trace solo_trace(const campaign::job_spec& j,
                              const std::string& scratch) {
  determinism::trace tr;
  core::channel_config cc = j.config;
  cc.pa = 1;
  cc.pb = 1;
  cc.pooled_workspace = true;
  vmpi::run_world(1, [&](vmpi::communicator& world) {
    core::channel_dns dns(cc, world);
    dns.initialize(j.perturbation, j.seed);
    if (j.cfl_target > 0.0)
      dns.set_cfl_target(j.cfl_target, j.dt_min, j.dt_max);
    for (long s = 0; s < j.steps; ++s) {
      dns.step();
      tr.steps.push_back(determinism::fingerprint(dns, scratch));
    }
  });
  return tr;
}

}  // namespace

TEST(CampaignDeterminism, SweepMatchesSoloTracesThroughEviction) {
  const std::string scratch =
      testing::TempDir() + "pcf_campaign_determinism";
  std::filesystem::create_directories(scratch);
  const std::vector<campaign::job_spec> jobs = sweep_jobs();

  // Solo baselines first; the block-pool peak after the first one is the
  // single-run footprint the campaign's peak is budgeted against.
  std::vector<determinism::trace> solo(jobs.size());
  std::uint64_t single_run_peak = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    solo[i] = solo_trace(jobs[i], scratch + "/solo_fp.ckpt");
    if (i == 0) single_run_peak = block_pool::global().stats().blocks_peak;
  }
  ASSERT_GT(single_run_peak, 0u);

  // The campaign: a pool wider than one, slices narrower than a run, and
  // a residency cap far below the tenant count → constant eviction churn.
  campaign::campaign_config cfg;
  cfg.workers = 4;
  cfg.slice_steps = 2;
  cfg.max_resident = 6;
  cfg.spill_dir = scratch;
  campaign::campaign_server server(cfg);

  std::vector<std::uint64_t> ids;
  ids.reserve(jobs.size());
  for (const auto& j : jobs) ids.push_back(server.enqueue(j));

  // ids are dense and enqueue-ordered; preallocate so concurrent workers
  // append to disjoint vectors with no reallocation of the outer one.
  std::vector<determinism::trace> campaign_traces(jobs.size());
  server.set_step_observer([&](std::uint64_t id, core::channel_dns& dns) {
    campaign_traces[id - ids.front()].steps.push_back(determinism::fingerprint(
        dns, scratch + "/fp_" + std::to_string(id) + ".ckpt"));
  });

  const campaign::campaign_report rep = server.run();

  // Scheduling sanity: everything finished, and the cap actually bit.
  int evicted_runs = 0;
  for (const auto& j : rep.jobs) {
    EXPECT_EQ(j.state, campaign::job_state::done) << j.name << " " << j.error;
    EXPECT_EQ(j.steps_done, kSteps) << j.name;
    if (j.evictions > 0) ++evicted_runs;
  }
  EXPECT_GT(rep.evictions, 0u) << "the sweep must exercise eviction";
  EXPECT_EQ(rep.evictions, rep.readmissions);
  EXPECT_GT(evicted_runs, 0);
  EXPECT_GT(rep.plan_cache_hits, 0u) << "identical grids must share plans";
  EXPECT_EQ(rep.stranded_blocks, 0u);

  // The memory story: suspended tenants hold no workspace, so the pool
  // peak of 64 interleaved runs stays a small multiple (bounded by the
  // worker count, not the tenant count) of one run's footprint.
  const std::uint64_t campaign_peak = block_pool::global().stats().blocks_peak;
  EXPECT_LT(campaign_peak, 8 * single_run_peak)
      << "campaign peak " << campaign_peak << " blocks vs single run "
      << single_run_peak;

  // The contract itself: every run's per-step fingerprints — including
  // every evicted-and-readmitted run's — are bit-identical to solo.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto divs = compare(solo[i], campaign_traces[i]);
    EXPECT_TRUE(divs.empty())
        << jobs[i].name << " diverged from its solo execution (evictions="
        << rep.jobs[i].evictions << "):\n"
        << determinism::describe(divs);
  }
}
