// Campaign scheduler behavior: completion, priority order and tenant
// fairness on a single worker, cancellation before and during a run,
// eviction + readmission round trips, failed-job isolation, dynamic
// enqueue from inside the campaign, and the shared-cache accounting.
//
// Every test uses the 16x16x33 quickstart grid shrunk to a handful of
// steps: the scheduler is data-movement machinery, so the physics only
// needs to be real enough to lease workspace and evolve state.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"

namespace {

using namespace pcf;

campaign::job_spec tiny_job(const std::string& name, long steps,
                            int priority = 0) {
  campaign::job_spec j;
  j.name = name;
  j.config.nx = 16;
  j.config.nz = 16;
  j.config.ny = 33;
  j.config.re_tau = 180.0;
  j.config.dt = 1e-4;
  j.steps = steps;
  j.priority = priority;
  return j;
}

std::string scratch_dir(const std::string& leaf) {
  const std::string dir = testing::TempDir() + "pcf_campaign_" + leaf;
  std::filesystem::create_directories(dir);
  return dir;
}

const campaign::job_status& status_of(const campaign::campaign_report& rep,
                                      std::uint64_t id) {
  for (const auto& j : rep.jobs)
    if (j.id == id) return j;
  throw std::runtime_error("unknown id in report");
}

}  // namespace

TEST(Campaign, CompletesEveryJobAndSharesFftPlans) {
  campaign::campaign_config cfg;
  cfg.workers = 2;
  cfg.slice_steps = 2;
  campaign::campaign_server server(cfg);

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i)
    ids.push_back(server.enqueue(tiny_job("job" + std::to_string(i), 5)));

  const campaign::campaign_report rep = server.run();
  ASSERT_EQ(rep.jobs.size(), 4u);
  for (const auto id : ids) {
    const auto& j = status_of(rep, id);
    EXPECT_EQ(j.state, campaign::job_state::done) << j.name;
    EXPECT_EQ(j.steps_done, 5) << j.name;
    EXPECT_GT(j.time, 0.0) << j.name;
    EXPECT_TRUE(j.error.empty()) << j.error;
  }
  EXPECT_EQ(rep.total_steps, 20);
  EXPECT_EQ(rep.evictions, 0u);  // no residency cap configured
  // Identical grids: every instance after the first finds its FFT plans
  // in the process-wide cache.
  EXPECT_GT(rep.plan_cache_hits, 0u);
  EXPECT_EQ(rep.stranded_blocks, 0u);
  EXPECT_GT(rep.pool_peak_bytes, 0u);
}

TEST(Campaign, PriorityRunsFirstAndEqualsInterleaveFairly) {
  campaign::campaign_config cfg;
  cfg.workers = 1;  // serialize slices so the service order is observable
  cfg.slice_steps = 2;
  campaign::campaign_server server(cfg);

  // Two priority-0 jobs enqueued first, one priority-5 job last.
  const auto a = server.enqueue(tiny_job("a", 4, 0));
  const auto b = server.enqueue(tiny_job("b", 4, 0));
  const auto hi = server.enqueue(tiny_job("hi", 4, 5));

  std::mutex mu;
  std::vector<std::uint64_t> order;  // tenant id per observed step
  server.set_step_observer([&](std::uint64_t id, core::channel_dns&) {
    std::lock_guard<std::mutex> lk(mu);
    order.push_back(id);
  });

  const campaign::campaign_report rep = server.run();
  for (const auto& j : rep.jobs)
    EXPECT_EQ(j.state, campaign::job_state::done) << j.name;

  ASSERT_EQ(order.size(), 12u);
  // The high-priority job runs to completion before any priority-0 step.
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(order[i], hi) << "i=" << i;
  // Within a priority the queue is tenant-fair round-robin: with 2-step
  // slices the two equal-priority jobs alternate slice by slice.
  const std::vector<std::uint64_t> expect = {a, a, b, b, a, a, b, b};
  for (std::size_t i = 0; i < expect.size(); ++i)
    EXPECT_EQ(order[4 + i], expect[i]) << "i=" << i;
}

TEST(Campaign, CancelBeforeRunSettlesWithoutScheduling) {
  campaign::campaign_config cfg;
  cfg.workers = 2;
  cfg.slice_steps = 2;
  campaign::campaign_server server(cfg);

  const auto doomed = server.enqueue(tiny_job("doomed", 50));
  const auto kept = server.enqueue(tiny_job("kept", 4));
  EXPECT_TRUE(server.cancel(doomed));
  EXPECT_FALSE(server.cancel(doomed)) << "already settled";
  EXPECT_FALSE(server.cancel(9999)) << "unknown id";

  const campaign::campaign_report rep = server.run();
  const auto& d = status_of(rep, doomed);
  EXPECT_EQ(d.state, campaign::job_state::cancelled);
  EXPECT_EQ(d.steps_done, 0);
  EXPECT_EQ(status_of(rep, kept).state, campaign::job_state::done);
  EXPECT_EQ(rep.total_steps, 4);
}

TEST(Campaign, CancelDuringRunStopsAtAStepBoundary) {
  campaign::campaign_config cfg;
  cfg.workers = 2;
  cfg.slice_steps = 4;
  campaign::campaign_server server(cfg);

  const auto victim = server.enqueue(tiny_job("victim", 1000));
  const auto bystander = server.enqueue(tiny_job("bystander", 6));

  // The observer runs on the worker thread outside the server mutex, so
  // calling back into cancel() from it is legal (and is exactly how a
  // monitoring front-end would stop a diverged run).
  std::atomic<long> victim_steps{0};
  server.set_step_observer([&](std::uint64_t id, core::channel_dns&) {
    if (id == victim && victim_steps.fetch_add(1) + 1 == 3) {
      EXPECT_TRUE(server.cancel(victim));
    }
  });

  const campaign::campaign_report rep = server.run();
  const auto& v = status_of(rep, victim);
  EXPECT_EQ(v.state, campaign::job_state::cancelled);
  EXPECT_GE(v.steps_done, 3);
  EXPECT_LT(v.steps_done, 1000);
  EXPECT_EQ(status_of(rep, bystander).state, campaign::job_state::done);
  EXPECT_EQ(rep.stranded_blocks, 0u);
}

TEST(Campaign, EvictionSpillsColdTenantsAndReadmitsThem) {
  const std::string spill = scratch_dir("evict");
  campaign::campaign_config cfg;
  cfg.workers = 2;
  cfg.slice_steps = 2;
  cfg.max_resident = 1;  // harsher than the worker count: constant churn
  cfg.spill_dir = spill;
  campaign::campaign_server server(cfg);

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 3; ++i)
    ids.push_back(server.enqueue(tiny_job("e" + std::to_string(i), 6)));

  const campaign::campaign_report rep = server.run();
  int evicted_jobs = 0;
  for (const auto id : ids) {
    const auto& j = status_of(rep, id);
    EXPECT_EQ(j.state, campaign::job_state::done) << j.name << " " << j.error;
    EXPECT_EQ(j.steps_done, 6);
    if (j.evictions > 0) ++evicted_jobs;
  }
  EXPECT_GT(rep.evictions, 0u);
  EXPECT_EQ(rep.evictions, rep.readmissions)
      << "every spilled run must come back";
  EXPECT_GT(evicted_jobs, 0);
  EXPECT_EQ(rep.stranded_blocks, 0u);
  // Settled tenants clean up their spill checkpoints.
  for (const auto& e : std::filesystem::directory_iterator(spill))
    ADD_FAILURE() << "stale spill file: " << e.path();
}

TEST(Campaign, FailedJobIsIsolatedFromItsNeighbours) {
  campaign::campaign_config cfg;
  cfg.workers = 2;
  cfg.slice_steps = 2;
  campaign::campaign_server server(cfg);

  campaign::job_spec bad = tiny_job("bad", 4);
  bad.config.degree = 99;  // channel_config::validate rejects ny < 2p + 1
  const auto bad_id = server.enqueue(std::move(bad));
  const auto good_id = server.enqueue(tiny_job("good", 4));

  const campaign::campaign_report rep = server.run();
  const auto& b = status_of(rep, bad_id);
  EXPECT_EQ(b.state, campaign::job_state::failed);
  EXPECT_NE(b.error.find("degree"), std::string::npos) << b.error;
  EXPECT_EQ(b.steps_done, 0);
  const auto& g = status_of(rep, good_id);
  EXPECT_EQ(g.state, campaign::job_state::done) << g.error;
  EXPECT_EQ(g.steps_done, 4);
  EXPECT_EQ(rep.stranded_blocks, 0u);
}

TEST(Campaign, JobsEnqueuedMidRunAreDrainedToo) {
  campaign::campaign_config cfg;
  cfg.workers = 2;
  cfg.slice_steps = 2;
  campaign::campaign_server server(cfg);

  const auto first = server.enqueue(tiny_job("first", 4));
  std::atomic<std::uint64_t> late_id{0};
  std::atomic<bool> spawned{false};
  server.set_step_observer([&](std::uint64_t id, core::channel_dns&) {
    if (id == first && !spawned.exchange(true))
      late_id = server.enqueue(tiny_job("late", 3));
  });

  const campaign::campaign_report rep = server.run();
  ASSERT_EQ(rep.jobs.size(), 2u);
  ASSERT_NE(late_id.load(), 0u);
  const auto& late = status_of(rep, late_id.load());
  EXPECT_EQ(late.state, campaign::job_state::done) << late.error;
  EXPECT_EQ(late.steps_done, 3);
  EXPECT_EQ(rep.total_steps, 7);
}

TEST(Campaign, CollectSeriesRecordsOneSamplePerSlice) {
  campaign::campaign_config cfg;
  cfg.workers = 1;
  cfg.slice_steps = 2;
  cfg.collect_series = true;
  campaign::campaign_server server(cfg);
  const auto id = server.enqueue(tiny_job("s", 5));

  const campaign::campaign_report rep = server.run();
  EXPECT_EQ(status_of(rep, id).state, campaign::job_state::done);
  const auto& series = server.series(id);
  ASSERT_EQ(series.size(), 3u);  // slices of 2, 2, 1 steps
  EXPECT_EQ(series.front().step, 2);
  EXPECT_EQ(series.back().step, 5);
  EXPECT_GT(series.back().time, series.front().time);
  EXPECT_GT(series.back().energy, 0.0);
  EXPECT_GT(series.back().cfl, 0.0);
}

TEST(Campaign, StatusReportNamesEveryJob) {
  campaign::campaign_config cfg;
  cfg.workers = 1;
  cfg.slice_steps = 4;
  campaign::campaign_server server(cfg);
  server.enqueue(tiny_job("alpha", 2));
  server.enqueue(tiny_job("beta", 2));

  std::string before = server.status_report();
  EXPECT_NE(before.find("campaign: 2 jobs"), std::string::npos) << before;
  EXPECT_NE(before.find("queued 2"), std::string::npos) << before;

  (void)server.run();
  std::string after = server.status_report();
  EXPECT_NE(after.find("done 2"), std::string::npos) << after;
  EXPECT_NE(after.find("alpha"), std::string::npos) << after;
  EXPECT_NE(after.find("beta"), std::string::npos) << after;
  EXPECT_NE(after.find("plan cache"), std::string::npos) << after;
}

TEST(Campaign, RunIsOnceOnlyAndConfigIsValidated) {
  {
    campaign::campaign_config cfg;
    cfg.workers = 1;
    cfg.slice_steps = 1;
    campaign::campaign_server server(cfg);
    server.enqueue(tiny_job("once", 1));
    (void)server.run();
    EXPECT_THROW((void)server.run(), std::exception);
  }
  {
    campaign::campaign_config cfg;
    cfg.max_resident = 2;  // residency cap without a spill_dir
    EXPECT_THROW(campaign::campaign_server server(cfg), std::exception);
  }
  {
    campaign::campaign_config cfg;
    cfg.workers = 0;
    EXPECT_THROW(campaign::campaign_server server(cfg), std::exception);
  }
}
