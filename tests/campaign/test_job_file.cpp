// The campaign job-file format: top-level campaign keys, top-level job
// defaults inherited by every section, per-section overrides, and the
// strict line-numbered errors the parser promises.
#include <gtest/gtest.h>

#include <string>

#include "campaign/job_file.hpp"

namespace {

using pcf::campaign::job_file;
using pcf::campaign::parse_job_text;

/// Parse must throw, and the message must carry `needle` (usually the
/// origin:line prefix or the offending key).
void expect_error(const std::string& text, const std::string& needle) {
  try {
    (void)parse_job_text(text, "spec");
    FAIL() << "expected an error mentioning '" << needle << "'";
  } catch (const std::exception& ex) {
    EXPECT_NE(std::string(ex.what()).find(needle), std::string::npos)
        << ex.what();
  }
}

}  // namespace

TEST(JobFile, CampaignKeysJobDefaultsAndSectionOverrides) {
  const job_file jf = parse_job_text(
      "# a sweep\n"
      "workers = 3\n"
      "slice_steps = 8\n"
      "max_resident = 2\n"
      "memory_budget_mb = 64\n"
      "spill_dir = /tmp/spill\n"
      "tuning_cache = cache.tsv\n"
      "collect_series = yes\n"
      "\n"
      "nx = 32          ; defaults every job inherits\n"
      "nz = 16\n"
      "ny = 33\n"
      "dt = 1e-4\n"
      "steps = 100\n"
      "perturbation = 2e-3\n"
      "\n"
      "[base]\n"
      "re_tau = 180\n"
      "\n"
      "[hot]\n"
      "re_tau = 590\n"
      "dt = 5e-5        # override one default\n"
      "steps = 40\n"
      "priority = 2\n"
      "seed = 7\n"
      "cfl_target = 0.5\n"
      "dt_min = 1e-5\n"
      "dt_max = 2e-4\n"
      "stats_every = 10\n");

  EXPECT_EQ(jf.config.workers, 3);
  EXPECT_EQ(jf.config.slice_steps, 8);
  EXPECT_EQ(jf.config.max_resident, 2);
  EXPECT_EQ(jf.config.memory_budget_bytes, 64ull * 1024 * 1024);
  EXPECT_EQ(jf.config.spill_dir, "/tmp/spill");
  EXPECT_EQ(jf.config.tuning_cache, "cache.tsv");
  EXPECT_TRUE(jf.config.collect_series);

  ASSERT_EQ(jf.jobs.size(), 2u);
  const auto& base = jf.jobs[0];
  EXPECT_EQ(base.name, "base");
  EXPECT_EQ(base.config.nx, 32u);
  EXPECT_EQ(base.config.nz, 16u);
  EXPECT_EQ(base.config.ny, 33);
  EXPECT_DOUBLE_EQ(base.config.re_tau, 180.0);
  EXPECT_DOUBLE_EQ(base.config.dt, 1e-4);
  EXPECT_EQ(base.steps, 100);
  EXPECT_EQ(base.priority, 0);
  EXPECT_DOUBLE_EQ(base.perturbation, 2e-3);
  EXPECT_DOUBLE_EQ(base.cfl_target, 0.0) << "defaults untouched";

  const auto& hot = jf.jobs[1];
  EXPECT_EQ(hot.name, "hot");
  EXPECT_EQ(hot.config.nx, 32u) << "inherited default";
  EXPECT_DOUBLE_EQ(hot.config.re_tau, 590.0);
  EXPECT_DOUBLE_EQ(hot.config.dt, 5e-5);
  EXPECT_EQ(hot.steps, 40);
  EXPECT_EQ(hot.priority, 2);
  EXPECT_EQ(hot.seed, 7u);
  EXPECT_DOUBLE_EQ(hot.cfl_target, 0.5);
  EXPECT_DOUBLE_EQ(hot.dt_min, 1e-5);
  EXPECT_DOUBLE_EQ(hot.dt_max, 2e-4);
  EXPECT_EQ(hot.stats_every, 10);
}

TEST(JobFile, DefaultsOnlyApplyToLaterSections) {
  const job_file jf = parse_job_text(
      "steps = 5\n"
      "[early]\n"
      "re_tau = 180\n");
  ASSERT_EQ(jf.jobs.size(), 1u);
  EXPECT_EQ(jf.jobs[0].steps, 5);

  // A job key after the first section belongs to that section, not to the
  // defaults — a later section without steps is an error.
  expect_error(
      "[first]\n"
      "steps = 5\n"
      "[second]\n"
      "re_tau = 360\n",
      "'second' never sets steps");
}

TEST(JobFile, BooleansAndNumbersParseStrictly) {
  const job_file yes = parse_job_text("collect_series = 1\n");
  EXPECT_TRUE(yes.config.collect_series);
  const job_file no = parse_job_text("collect_series = false\n");
  EXPECT_FALSE(no.config.collect_series);

  expect_error("collect_series = maybe\n", "expected a boolean");
  expect_error("workers = 2.5\n", "expected an integer");
  expect_error("steps = 10x\n[j]\n", "malformed number");
  expect_error("dt = \n[j]\nsteps = 1\n", "malformed number");
}

TEST(JobFile, StructuralErrorsNameTheirLine) {
  expect_error("bogus_key = 1\n", "spec:1: unknown key 'bogus_key'");
  expect_error("[j]\nsteps = 1\nworkers = 2\n",
               "spec:3: unknown job key 'workers'");
  expect_error("[a]\nsteps = 1\n[a]\n", "spec:3: duplicate job name 'a'");
  expect_error("[]\n", "empty job name");
  expect_error("[broken\n", "unterminated section header");
  expect_error("just words\n", "expected 'key = value'");
  expect_error(" = 3\n", "empty key");
  expect_error("[j]\nre_tau = 180\n", "never sets steps");
}

TEST(JobFile, CommentsAndBlankLinesAreIgnored) {
  const job_file jf = parse_job_text(
      "\n"
      "   \n"
      "# full-line comment\n"
      "; also a comment\n"
      "steps = 3   # trailing comment\n"
      "[only]      ; section comment\n"
      "re_tau = 180\n");
  ASSERT_EQ(jf.jobs.size(), 1u);
  EXPECT_EQ(jf.jobs[0].name, "only");
  EXPECT_EQ(jf.jobs[0].steps, 3);
}

TEST(JobFile, MissingFileThrows) {
  EXPECT_THROW((void)pcf::campaign::parse_job_file("/nonexistent/x.jobs"),
               std::runtime_error);
}
