// The campaign job-file format: top-level campaign keys, top-level job
// defaults inherited by every section, per-section overrides, and the
// strict line-numbered errors the parser promises.
#include <gtest/gtest.h>

#include <string>

#include "campaign/job_file.hpp"

namespace {

using pcf::campaign::job_file;
using pcf::campaign::parse_job_text;

/// Parse must throw, and the message must carry `needle` (usually the
/// origin:line prefix or the offending key).
void expect_error(const std::string& text, const std::string& needle) {
  try {
    (void)parse_job_text(text, "spec");
    FAIL() << "expected an error mentioning '" << needle << "'";
  } catch (const std::exception& ex) {
    EXPECT_NE(std::string(ex.what()).find(needle), std::string::npos)
        << ex.what();
  }
}

}  // namespace

TEST(JobFile, CampaignKeysJobDefaultsAndSectionOverrides) {
  const job_file jf = parse_job_text(
      "# a sweep\n"
      "workers = 3\n"
      "slice_steps = 8\n"
      "max_resident = 2\n"
      "memory_budget_mb = 64\n"
      "spill_dir = /tmp/spill\n"
      "tuning_cache = cache.tsv\n"
      "collect_series = yes\n"
      "\n"
      "nx = 32          ; defaults every job inherits\n"
      "nz = 16\n"
      "ny = 33\n"
      "dt = 1e-4\n"
      "steps = 100\n"
      "perturbation = 2e-3\n"
      "\n"
      "[base]\n"
      "re_tau = 180\n"
      "\n"
      "[hot]\n"
      "re_tau = 590\n"
      "dt = 5e-5        # override one default\n"
      "steps = 40\n"
      "priority = 2\n"
      "seed = 7\n"
      "cfl_target = 0.5\n"
      "dt_min = 1e-5\n"
      "dt_max = 2e-4\n"
      "stats_every = 10\n");

  EXPECT_EQ(jf.config.workers, 3);
  EXPECT_EQ(jf.config.slice_steps, 8);
  EXPECT_EQ(jf.config.max_resident, 2);
  EXPECT_EQ(jf.config.memory_budget_bytes, 64ull * 1024 * 1024);
  EXPECT_EQ(jf.config.spill_dir, "/tmp/spill");
  EXPECT_EQ(jf.config.tuning_cache, "cache.tsv");
  EXPECT_TRUE(jf.config.collect_series);

  ASSERT_EQ(jf.jobs.size(), 2u);
  const auto& base = jf.jobs[0];
  EXPECT_EQ(base.name, "base");
  EXPECT_EQ(base.config.nx, 32u);
  EXPECT_EQ(base.config.nz, 16u);
  EXPECT_EQ(base.config.ny, 33);
  EXPECT_DOUBLE_EQ(base.config.re_tau, 180.0);
  EXPECT_DOUBLE_EQ(base.config.dt, 1e-4);
  EXPECT_EQ(base.steps, 100);
  EXPECT_EQ(base.priority, 0);
  EXPECT_DOUBLE_EQ(base.perturbation, 2e-3);
  EXPECT_DOUBLE_EQ(base.cfl_target, 0.0) << "defaults untouched";

  const auto& hot = jf.jobs[1];
  EXPECT_EQ(hot.name, "hot");
  EXPECT_EQ(hot.config.nx, 32u) << "inherited default";
  EXPECT_DOUBLE_EQ(hot.config.re_tau, 590.0);
  EXPECT_DOUBLE_EQ(hot.config.dt, 5e-5);
  EXPECT_EQ(hot.steps, 40);
  EXPECT_EQ(hot.priority, 2);
  EXPECT_EQ(hot.seed, 7u);
  EXPECT_DOUBLE_EQ(hot.cfl_target, 0.5);
  EXPECT_DOUBLE_EQ(hot.dt_min, 1e-5);
  EXPECT_DOUBLE_EQ(hot.dt_max, 2e-4);
  EXPECT_EQ(hot.stats_every, 10);
}

TEST(JobFile, DefaultsOnlyApplyToLaterSections) {
  const job_file jf = parse_job_text(
      "steps = 5\n"
      "[early]\n"
      "re_tau = 180\n");
  ASSERT_EQ(jf.jobs.size(), 1u);
  EXPECT_EQ(jf.jobs[0].steps, 5);

  // A job key after the first section belongs to that section, not to the
  // defaults — a later section without steps is an error.
  expect_error(
      "[first]\n"
      "steps = 5\n"
      "[second]\n"
      "re_tau = 360\n",
      "'second' never sets steps");
}

TEST(JobFile, BooleansAndNumbersParseStrictly) {
  const job_file yes = parse_job_text("collect_series = 1\n");
  EXPECT_TRUE(yes.config.collect_series);
  const job_file no = parse_job_text("collect_series = false\n");
  EXPECT_FALSE(no.config.collect_series);

  expect_error("collect_series = maybe\n", "expected a boolean");
  expect_error("workers = 2.5\n", "expected an integer");
  expect_error("steps = 10x\n[j]\n", "expected an integer");
  expect_error("dt = \n[j]\nsteps = 1\n", "malformed number");
}

TEST(JobFile, LargeIntegersSurviveExactly) {
  // Regression: seeds used to go through the double parser, and a double
  // cannot represent every 64-bit integer — 2^53 + 1 came back as 2^53.
  // Integer keys now parse as integers end to end.
  const job_file jf = parse_job_text(
      "[j]\n"
      "steps = 1\n"
      "seed = 9007199254740993\n");  // 2^53 + 1
  ASSERT_EQ(jf.jobs.size(), 1u);
  EXPECT_EQ(jf.jobs[0].seed, 9007199254740993ull);

  // Integer spellings that are numbers but not integers are rejected, as
  // is anything that overflows long.
  expect_error("[j]\nsteps = 1\nseed = 1e3\n", "expected an integer");
  expect_error("[j]\nsteps = 3.5\n", "expected an integer");
  expect_error("[j]\nsteps = 1\nseed = 99999999999999999999\n",
               "integer out of range");
}

TEST(JobFile, ScenarioKeysParseAndInherit) {
  const job_file jf = parse_job_text(
      "wall_u_lo = -1   ; Couette defaults every job inherits\n"
      "wall_u_hi = 1\n"
      "scalar = 0.71 0 1\n"
      "\n"
      "[couette]\n"
      "steps = 10\n"
      "\n"
      "[pumped]\n"
      "steps = 10\n"
      "forcing_mode = flow_rate\n"
      "target_bulk = 15.5\n"
      "wall_w_lo = -0.5\n"
      "wall_w_hi = 0.5\n"
      "scalar = 7\n");

  ASSERT_EQ(jf.jobs.size(), 2u);
  const auto& c = jf.jobs[0].config.scenario;
  EXPECT_DOUBLE_EQ(c.wall_u_lo, -1.0);
  EXPECT_DOUBLE_EQ(c.wall_u_hi, 1.0);
  EXPECT_EQ(c.forcing, pcf::core::forcing_mode::pressure_gradient);
  ASSERT_EQ(c.scalars.size(), 1u);
  EXPECT_DOUBLE_EQ(c.scalars[0].prandtl, 0.71);
  EXPECT_DOUBLE_EQ(c.scalars[0].wall_lo, 0.0);
  EXPECT_DOUBLE_EQ(c.scalars[0].wall_hi, 1.0);

  // The second job inherits the default scalar and appends its own; the
  // `scalar` key is repeatable, not last-wins.
  const auto& p = jf.jobs[1].config.scenario;
  EXPECT_EQ(p.forcing, pcf::core::forcing_mode::flow_rate);
  EXPECT_DOUBLE_EQ(p.target_bulk, 15.5);
  EXPECT_DOUBLE_EQ(p.wall_w_lo, -0.5);
  EXPECT_DOUBLE_EQ(p.wall_w_hi, 0.5);
  ASSERT_EQ(p.scalars.size(), 2u);
  EXPECT_DOUBLE_EQ(p.scalars[0].prandtl, 0.71);
  EXPECT_DOUBLE_EQ(p.scalars[1].prandtl, 7.0);
  EXPECT_DOUBLE_EQ(p.scalars[1].wall_lo, 0.0) << "walls default to 0";
}

TEST(JobFile, ScenarioKeyErrorsNameTheirLine) {
  expect_error("[j]\nsteps = 1\nforcing_mode = turbo\n",
               "spec:3: key 'forcing_mode': expected 'pressure_gradient' or "
               "'flow_rate', got 'turbo'");
  expect_error("[j]\nsteps = 1\nscalar = 0.71 0\n",
               "spec:3: key 'scalar': expected '<prandtl> [<wall_lo> "
               "<wall_hi>]'");
  expect_error("[j]\nsteps = 1\nscalar = abc\n", "key 'scalar.prandtl'");
  expect_error("[j]\nsteps = 1\nwall_u_lo = fast\n",
               "spec:3: key 'wall_u_lo': malformed number 'fast'");
}

TEST(JobFile, ImpossibleConfigsAreRejectedNamingTheJob) {
  // The loader runs channel_config::validate() per job, so a config the
  // simulation would reject fails at parse time with the job's name and
  // the offending key — not deep inside the 37th job's constructor.
  expect_error("[skewed]\nsteps = 5\nnx = 30\n",
               "spec: job 'skewed': channel_config: nx");
  expect_error("[flat]\nsteps = 5\nny = 9\n",
               "spec: job 'flat': channel_config: ny");
  expect_error("[cold]\nsteps = 5\nre_tau = -180\n",
               "spec: job 'cold': channel_config: re_tau");
  expect_error(
      "[crowded]\nsteps = 5\n"
      "scalar = 1\nscalar = 1\nscalar = 1\nscalar = 1\nscalar = 1\n"
      "scalar = 1\nscalar = 1\nscalar = 1\nscalar = 1\n",
      "spec: job 'crowded': channel_config: scalars");
  expect_error("[icy]\nsteps = 5\nscalar = -0.7\n",
               "spec: job 'icy': channel_config: scalar[0].prandtl");
}

TEST(JobFile, StructuralErrorsNameTheirLine) {
  expect_error("bogus_key = 1\n", "spec:1: unknown key 'bogus_key'");
  expect_error("[j]\nsteps = 1\nworkers = 2\n",
               "spec:3: unknown job key 'workers'");
  expect_error("[a]\nsteps = 1\n[a]\n", "spec:3: duplicate job name 'a'");
  expect_error("[]\n", "empty job name");
  expect_error("[broken\n", "unterminated section header");
  expect_error("just words\n", "expected 'key = value'");
  expect_error(" = 3\n", "empty key");
  expect_error("[j]\nre_tau = 180\n", "never sets steps");
}

TEST(JobFile, CommentsAndBlankLinesAreIgnored) {
  const job_file jf = parse_job_text(
      "\n"
      "   \n"
      "# full-line comment\n"
      "; also a comment\n"
      "steps = 3   # trailing comment\n"
      "[only]      ; section comment\n"
      "re_tau = 180\n");
  ASSERT_EQ(jf.jobs.size(), 1u);
  EXPECT_EQ(jf.jobs[0].name, "only");
  EXPECT_EQ(jf.jobs[0].steps, 3);
}

TEST(JobFile, MissingFileThrows) {
  EXPECT_THROW((void)pcf::campaign::parse_job_file("/nonexistent/x.jobs"),
               std::runtime_error);
}
