#include <gtest/gtest.h>

#include <numeric>

#include "fft/fft.hpp"

namespace {

using pcf::fft::factorize;
using pcf::fft::is_smooth;

TEST(Factorize, One) { EXPECT_TRUE(factorize(1).empty()); }

TEST(Factorize, Primes) {
  for (std::size_t p : {2u, 3u, 5u, 7u, 31u, 97u}) {
    auto f = factorize(p);
    ASSERT_EQ(f.size(), 1u);
    EXPECT_EQ(f[0], p);
  }
}

TEST(Factorize, ProductRecoversInput) {
  for (std::size_t n = 1; n <= 3000; ++n) {
    auto f = factorize(n);
    std::size_t prod = 1;
    for (std::size_t p : f) prod *= p;
    EXPECT_EQ(prod, n);
  }
}

TEST(Factorize, FactorsAreSortedPrimes) {
  auto f = factorize(1536);  // 2^9 * 3
  EXPECT_EQ(f.size(), 10u);
  EXPECT_TRUE(std::is_sorted(f.begin(), f.end()));
  EXPECT_EQ(f.back(), 3u);
}

TEST(IsSmooth, GridSizesAreSmooth) {
  // Sizes used in the paper's tables (and their 3/2-dealiased partners).
  for (std::size_t n : {128u, 384u, 768u, 1024u, 1536u, 2048u, 3072u, 4096u,
                        10240u, 12288u, 18432u}) {
    EXPECT_TRUE(is_smooth(n)) << n;
  }
}

TEST(IsSmooth, LargePrimesAreNot) {
  EXPECT_FALSE(is_smooth(37));
  EXPECT_FALSE(is_smooth(101));
  EXPECT_FALSE(is_smooth(2 * 37));
}

}  // namespace
