// The per-thread scratch arena that backs plan execution, and the
// re-entrancy it exists to guarantee: a real transform's scratch stays
// valid while its half-length plan nests Bluestein executions on the same
// thread (the aliasing bug a shared growable vector would have).
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <thread>
#include <vector>

#include "fft/fft.hpp"
#include "fft/scratch.hpp"
#include "util/block_pool.hpp"
#include "util/rng.hpp"

namespace {

using pcf::fft::c2c_plan;
using pcf::fft::c2r_plan;
using pcf::fft::cplx;
using pcf::fft::dft_naive;
using pcf::fft::direction;
using pcf::fft::r2c_plan;
using pcf::fft::detail::scratch_arena;

TEST(ScratchArena, LifoScopesReleaseTogether) {
  scratch_arena a;
  {
    scratch_arena::scope outer(a);
    cplx* p = outer.alloc(10);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(a.live_elems(), 10u);
    {
      scratch_arena::scope inner(a);
      (void)inner.alloc(20);
      EXPECT_EQ(a.live_elems(), 30u);
    }
    EXPECT_EQ(a.live_elems(), 10u);
  }
  EXPECT_EQ(a.live_elems(), 0u);
}

TEST(ScratchArena, NestedGrowthDoesNotMoveOuterAllocation) {
  scratch_arena a;
  scratch_arena::scope outer(a);
  cplx* p = outer.alloc(scratch_arena::kMinChunk / 2);
  p[0] = cplx{3.0, -4.0};
  const cplx* before = p;
  {
    // Far larger than the current chunk: must append, not reallocate.
    scratch_arena::scope inner(a);
    cplx* q = inner.alloc(16 * scratch_arena::kMinChunk);
    ASSERT_NE(q, nullptr);
    std::fill_n(q, 16 * scratch_arena::kMinChunk, cplx{1e300, -1e300});
    EXPECT_EQ(p, before);
    EXPECT_EQ(p[0], (cplx{3.0, -4.0}));
  }
  EXPECT_EQ(p[0], (cplx{3.0, -4.0}));
}

TEST(ScratchArena, RetainedFootprintShrinksAfterLargeEpoch) {
  scratch_arena a;
  {
    scratch_arena::scope s(a);
    (void)s.alloc(64 * scratch_arena::kMinChunk);
  }
  // One huge epoch followed by small ones: after a small epoch closes,
  // the retained capacity must drop below 4x that epoch's high-water.
  {
    scratch_arena::scope s(a);
    (void)s.alloc(8);
  }
  EXPECT_LE(a.retained_elems(), 4 * scratch_arena::kMinChunk);
  EXPECT_GE(a.retained_elems(), scratch_arena::kMinChunk);
}

// The 4x idle-consolidation threshold exactly: a single oversized chunk is
// kept while retained <= 4x the epoch peak (no thrash between plans of
// alternating size) and dropped to the high-water mark the first epoch
// that crosses it.
TEST(ScratchArena, IdleConsolidationHoldsBelow4xAndShrinksAbove) {
  scratch_arena a;
  {
    scratch_arena::scope s(a);
    (void)s.alloc(8 * scratch_arena::kMinChunk);
  }
  const std::size_t big = a.retained_elems();
  ASSERT_GE(big, 8 * scratch_arena::kMinChunk);
  // Epoch peak of exactly retained/4: at the boundary (have == 4*want),
  // the single chunk is RETAINED (shrink requires have > 4*want).
  {
    scratch_arena::scope s(a);
    (void)s.alloc(big / 4);
  }
  EXPECT_EQ(a.retained_elems(), big);
  // One element under the boundary: now have > 4*want, so the arena
  // reallocates down to the epoch high-water mark.
  {
    scratch_arena::scope s(a);
    (void)s.alloc(big / 4 - 1);
  }
  EXPECT_EQ(a.retained_elems(), big / 4 - 1);
}

TEST(ScratchArena, PooledChunksComeFromAndReturnToThePool) {
  pcf::block_pool_config cfg;
  cfg.block_bytes = 4096;
  cfg.segment_blocks = 8;
  cfg.hugepages = false;
  cfg.thread_cache_blocks = 0;
  pcf::block_pool pool(cfg);
  // A local arena (not the TLS one) so this test controls its lifetime.
  {
    scratch_arena a;
    scratch_arena::set_pool(&pool);
    {
      scratch_arena::scope s(a);
      cplx* p = s.alloc(2 * scratch_arena::kMinChunk);
      ASSERT_NE(p, nullptr);
      p[0] = cplx{1.0, -1.0};
      EXPECT_TRUE(a.any_pooled());
      EXPECT_GT(pool.stats().blocks_leased, 0u);
      EXPECT_EQ(p[0], (cplx{1.0, -1.0}));
    }
    // Consolidation may retain a pooled chunk; release_all drops it.
    a.release_all();
    scratch_arena::set_pool(nullptr);
    EXPECT_EQ(pool.stats().blocks_leased, 0u);
    EXPECT_GE(pool.stats().releases, 1u);
  }
}

TEST(ScratchArena, HeapFallbackWhenNoPoolConfigured) {
  ASSERT_EQ(scratch_arena::pool(), nullptr);  // default: heap chunks
  scratch_arena a;
  scratch_arena::scope s(a);
  cplx* p = s.alloc(scratch_arena::kMinChunk);
  ASSERT_NE(p, nullptr);
  EXPECT_FALSE(a.any_pooled());
}

TEST(ScratchArena, PooledPlanExecutionMatchesHeap) {
  // Same transform, pooled scratch vs heap scratch, on fresh threads so
  // each run starts from an empty TLS arena: results must be identical
  // bits (the arena only hands out addresses).
  const std::size_t n = 74;  // Bluestein inside (nested scratch scopes)
  pcf::rng r(740);
  std::vector<double> x(n);
  for (auto& v : x) v = r.uniform(-1, 1);
  std::vector<cplx> heap_out(n / 2 + 1), pool_out(n / 2 + 1);
  std::thread t1([&] {
    r2c_plan p(n);
    p.execute(x.data(), heap_out.data());
  });
  t1.join();
  pcf::block_pool pool;
  std::thread t2([&] {
    scratch_arena::set_pool(&pool);
    r2c_plan p(n);
    p.execute(x.data(), pool_out.data());
    EXPECT_TRUE(scratch_arena::tls().any_pooled());
    scratch_arena::tls().release_all();
    scratch_arena::set_pool(nullptr);
  });
  t2.join();
  for (std::size_t k = 0; k <= n / 2; ++k) {
    EXPECT_EQ(heap_out[k].real(), pool_out[k].real()) << "k=" << k;
    EXPECT_EQ(heap_out[k].imag(), pool_out[k].imag()) << "k=" << k;
  }
  EXPECT_EQ(pool.stats().blocks_leased, 0u);
}

TEST(ScratchArena, ManyChunksMergeWhenIdle) {
  scratch_arena a;
  {
    scratch_arena::scope outer(a);
    (void)outer.alloc(scratch_arena::kMinChunk);
    scratch_arena::scope i1(a);
    (void)i1.alloc(2 * scratch_arena::kMinChunk);
    scratch_arena::scope i2(a);
    (void)i2.alloc(4 * scratch_arena::kMinChunk);
  }
  // Next epoch's first checkout of the combined size fits one chunk.
  scratch_arena::scope s(a);
  cplx* p = s.alloc(7 * scratch_arena::kMinChunk);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(a.live_elems(), 7 * scratch_arena::kMinChunk);
}

// Regression for the tls_scratch() aliasing hazard: r2c/c2r of length 2p
// (p a prime > 31) keep packing scratch checked out while the half-length
// plan runs Bluestein, which executes two nested power-of-two plans on the
// same thread. With a shared growable vector the nested in-place copies
// could reallocate or reuse the outer buffers; the arena must keep both
// live and distinct. Verified against the naive DFT.
TEST(ScratchNesting, RealTransformWithBluesteinHalfMatchesNaive) {
  const std::size_t n = 74;  // half = 37, prime > 31 -> Bluestein inside
  pcf::rng r(37);
  std::vector<double> x(n);
  for (auto& v : x) v = r.uniform(-1, 1);
  std::vector<cplx> X(n / 2 + 1), full(n), want(n);
  r2c_plan p(n);
  p.execute(x.data(), X.data());
  for (std::size_t i = 0; i < n; ++i) full[i] = x[i];
  dft_naive(full.data(), want.data(), n, -1);
  for (std::size_t k = 0; k <= n / 2; ++k)
    EXPECT_LT(std::abs(X[k] - want[k]), 1e-9) << "k=" << k;
}

TEST(ScratchNesting, RealRoundTripWithBluesteinHalf) {
  const std::size_t n = 74;
  pcf::rng r(74);
  std::vector<double> x(n), back(n);
  for (auto& v : x) v = r.uniform(-1, 1);
  std::vector<cplx> X(n / 2 + 1);
  r2c_plan f(n);
  c2r_plan b(n);
  f.execute(x.data(), X.data());
  b.execute(X.data(), back.data());
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(back[i] / static_cast<double>(n), x[i], 1e-12);
}

TEST(ScratchNesting, InPlaceNonSmoothTransformMatchesOutOfPlace) {
  // In-place non-smooth c2c: the run() copy scratch stays live across the
  // whole Bluestein execution (two nested plans + arena u/uhat).
  const std::size_t n = 111;  // 3 * 37
  pcf::rng r(111);
  std::vector<cplx> x(n), want(n);
  for (auto& v : x) v = cplx{r.uniform(-1, 1), r.uniform(-1, 1)};
  c2c_plan p(n, direction::forward);
  p.execute(x.data(), want.data());
  p.execute(x.data(), x.data());  // in-place
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(x[i].real(), want[i].real()) << "i=" << i;
    EXPECT_EQ(x[i].imag(), want[i].imag()) << "i=" << i;
  }
}

TEST(ScratchNesting, ArenaDrainsAfterMixedPlanSizes) {
  // After plans of wildly different sizes, the thread's arena holds no
  // live checkouts and a bounded footprint. Runs on a fresh thread so the
  // arena state does not depend on which tests ran earlier in this binary.
  std::thread t([] {
    auto& a = scratch_arena::tls();
    {
      std::vector<cplx> big(997), out(997);
      c2c_plan p(997, direction::forward);  // large Bluestein
      p.execute(big.data(), out.data());
    }
    EXPECT_EQ(a.live_elems(), 0u);
    const std::size_t peak = a.retained_elems();  // ~2 * bl_m = 4096
    {
      std::vector<double> x(74);
      std::vector<cplx> X(38);
      r2c_plan p(74);
      p.execute(x.data(), X.data());
    }
    EXPECT_EQ(a.live_elems(), 0u);
    // The small epochs after the big one must not grow the footprint, and
    // the retained capacity obeys the 4x-of-epoch-peak bound.
    EXPECT_LE(a.retained_elems(), peak);
    EXPECT_LE(a.retained_elems(), 4 * 1024u);
  });
  t.join();
}

TEST(ScratchNesting, FreshThreadGetsFreshArena) {
  std::thread t([] {
    EXPECT_EQ(scratch_arena::tls().live_elems(), 0u);
    std::vector<double> x(74);
    std::vector<cplx> X(38);
    r2c_plan p(74);
    p.execute(x.data(), X.data());
    EXPECT_EQ(scratch_arena::tls().live_elems(), 0u);
  });
  t.join();
}

}  // namespace
