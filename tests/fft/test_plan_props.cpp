// Plan object properties: concurrent execution (the pencil kernel embeds
// plan calls inside threaded blocks), move semantics, and flop accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "fft/fft.hpp"
#include "util/counters.hpp"
#include "util/rng.hpp"

namespace {

using pcf::fft::c2c_plan;
using pcf::fft::cplx;
using pcf::fft::direction;

TEST(PlanProps, ConcurrentExecutionIsSafeAndCorrect) {
  const std::size_t n = 192;
  const c2c_plan plan(n, direction::forward);
  pcf::rng r(1);
  std::vector<cplx> in(n);
  for (auto& v : in) v = cplx{r.uniform(-1, 1), r.uniform(-1, 1)};
  std::vector<cplx> want(n);
  plan.execute(in.data(), want.data());

  const int nthreads = 8;
  std::vector<std::vector<cplx>> outs(nthreads, std::vector<cplx>(n));
  std::vector<std::thread> ts;
  for (int t = 0; t < nthreads; ++t)
    ts.emplace_back([&, t] {
      for (int rep = 0; rep < 50; ++rep)
        plan.execute(in.data(), outs[static_cast<std::size_t>(t)].data());
    });
  for (auto& t : ts) t.join();
  for (const auto& out : outs)
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(out[i], want[i]);
}

TEST(PlanProps, ConcurrentInPlaceUsesThreadLocalScratch) {
  const std::size_t n = 128;
  const c2c_plan plan(n, direction::forward);
  std::vector<cplx> base(n);
  for (std::size_t i = 0; i < n; ++i)
    base[i] = cplx{std::sin(0.1 * static_cast<double>(i)), 0.0};
  std::vector<cplx> want = base;
  plan.execute(want.data(), want.data());

  std::vector<std::thread> ts;
  std::vector<std::vector<cplx>> bufs(6, base);
  for (auto& buf : bufs)
    ts.emplace_back([&plan, &buf, n] {
      for (int rep = 0; rep < 20; ++rep) {
        // forward then renormalized inverse to return to the start
        plan.execute(buf.data(), buf.data());
        c2c_plan inv(n, direction::inverse);
        inv.execute(buf.data(), buf.data());
        for (auto& v : buf) v /= static_cast<double>(n);
      }
    });
  for (auto& t : ts) t.join();
  for (const auto& buf : bufs)
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_LT(std::abs(buf[i] - base[i]), 1e-9);
}

TEST(PlanProps, MoveTransfersPlan) {
  c2c_plan a(64, direction::forward);
  c2c_plan b = std::move(a);
  EXPECT_EQ(b.size(), 64u);
  std::vector<cplx> x(64, cplx{1, 0}), y(64);
  b.execute(x.data(), y.data());
  EXPECT_NEAR(y[0].real(), 64.0, 1e-10);
}

TEST(PlanProps, FlopCounterAccumulatesPerExecute) {
  pcf::counters::reset();
  c2c_plan p(256, direction::forward);
  std::vector<cplx> x(256, cplx{1, 1}), y(256);
  p.execute(x.data(), y.data());
  p.execute(x.data(), y.data());
  pcf::counters::drain();
  const double expected = 2.0 * p.flops_per_execute();
  EXPECT_NEAR(static_cast<double>(pcf::counters::total().flops), expected,
              2.0);
}

}  // namespace
