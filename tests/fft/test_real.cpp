#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "fft/fft.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace {

using pcf::fft::c2r_plan;
using pcf::fft::cplx;
using pcf::fft::dft_naive;
using pcf::fft::r2c_plan;

std::vector<double> random_real(std::size_t n, std::uint64_t seed) {
  pcf::rng r(seed);
  std::vector<double> x(n);
  for (auto& v : x) v = r.uniform(-1, 1);
  return x;
}

class RealSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RealSizes, MatchesComplexDFT) {
  const std::size_t n = GetParam();
  auto x = random_real(n, 100 + n);
  std::vector<cplx> xc(n), want(n), got(n / 2 + 1);
  for (std::size_t i = 0; i < n; ++i) xc[i] = x[i];
  dft_naive(xc.data(), want.data(), n, -1);
  r2c_plan p(n);
  p.execute(x.data(), got.data());
  for (std::size_t k = 0; k <= n / 2; ++k)
    EXPECT_LT(std::abs(got[k] - want[k]), 1e-10 * std::max<double>(1.0, n))
        << "n=" << n << " k=" << k;
}

TEST_P(RealSizes, HermitianOutputEndpointsAreReal) {
  const std::size_t n = GetParam();
  auto x = random_real(n, 200 + n);
  std::vector<cplx> X(n / 2 + 1);
  r2c_plan p(n);
  p.execute(x.data(), X.data());
  EXPECT_NEAR(X[0].imag(), 0.0, 1e-12 * n);
  EXPECT_NEAR(X[n / 2].imag(), 0.0, 1e-12 * n);
}

TEST_P(RealSizes, RoundTripScalesByN) {
  const std::size_t n = GetParam();
  auto x = random_real(n, 300 + n);
  std::vector<cplx> X(n / 2 + 1);
  std::vector<double> back(n);
  r2c_plan f(n);
  c2r_plan b(n);
  f.execute(x.data(), X.data());
  b.execute(X.data(), back.data());
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(back[i], x[i] * static_cast<double>(n), 1e-10 * n) << i;
}

TEST_P(RealSizes, C2RMatchesNaiveHermitianInverse) {
  const std::size_t n = GetParam();
  // Build an arbitrary Hermitian spectrum with real endpoints.
  pcf::rng r(400 + n);
  std::vector<cplx> X(n / 2 + 1);
  for (auto& v : X) v = cplx{r.uniform(-1, 1), r.uniform(-1, 1)};
  X[0] = X[0].real();
  X[n / 2] = X[n / 2].real();
  // Full spectrum for the naive inverse.
  std::vector<cplx> full(n), wantc(n);
  for (std::size_t k = 0; k <= n / 2; ++k) full[k] = X[k];
  for (std::size_t k = n / 2 + 1; k < n; ++k) full[k] = std::conj(X[n - k]);
  dft_naive(full.data(), wantc.data(), n, 1);
  std::vector<double> got(n);
  c2r_plan b(n);
  b.execute(X.data(), got.data());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(wantc[i].imag(), 0.0, 1e-9 * n);
    EXPECT_NEAR(got[i], wantc[i].real(), 1e-9 * n) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RealSizes,
                         ::testing::Values(2, 4, 6, 8, 10, 12, 16, 24, 32, 48,
                                           64, 96, 128, 192, 256, 384, 512,
                                           1024, 1536));

TEST(Real, CosineHitsSingleMode) {
  const std::size_t n = 64, k0 = 3;
  std::vector<double> x(n);
  for (std::size_t j = 0; j < n; ++j)
    x[j] = std::cos(2.0 * std::numbers::pi * double(k0 * j) / double(n));
  std::vector<cplx> X(n / 2 + 1);
  r2c_plan p(n);
  p.execute(x.data(), X.data());
  for (std::size_t k = 0; k <= n / 2; ++k) {
    const double want = (k == k0) ? double(n) / 2.0 : 0.0;
    EXPECT_NEAR(std::abs(X[k]), want, 1e-10) << k;
  }
}

TEST(Real, NyquistModeCapturesAlternatingSignal) {
  const std::size_t n = 32;
  std::vector<double> x(n);
  for (std::size_t j = 0; j < n; ++j) x[j] = (j % 2 == 0) ? 1.0 : -1.0;
  std::vector<cplx> X(n / 2 + 1);
  r2c_plan p(n);
  p.execute(x.data(), X.data());
  EXPECT_NEAR(X[n / 2].real(), double(n), 1e-10);
  for (std::size_t k = 0; k < n / 2; ++k) EXPECT_NEAR(std::abs(X[k]), 0.0, 1e-10);
}

TEST(Real, OddLengthRejected) {
  EXPECT_THROW(r2c_plan p(9), pcf::precondition_error);
  EXPECT_THROW(c2r_plan p(9), pcf::precondition_error);
}

TEST(Real, ExecuteManyMatchesLoop) {
  const std::size_t n = 48, batch = 5;
  auto x = random_real(n * batch, 7);
  std::vector<cplx> a((n / 2 + 1) * batch), b((n / 2 + 1) * batch);
  r2c_plan p(n);
  p.execute_many(x.data(), n, a.data(), n / 2 + 1, batch);
  for (std::size_t i = 0; i < batch; ++i)
    p.execute(x.data() + i * n, b.data() + i * (n / 2 + 1));
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

}  // namespace
