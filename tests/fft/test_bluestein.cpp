// The Bluestein chirp-z fallback: lengths with prime factors > 31.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "fft/fft.hpp"
#include "util/rng.hpp"

namespace {

using pcf::fft::c2c_plan;
using pcf::fft::cplx;
using pcf::fft::dft_naive;
using pcf::fft::direction;
using pcf::fft::r2c_plan;

std::vector<cplx> random_signal(std::size_t n, std::uint64_t seed) {
  pcf::rng r(seed);
  std::vector<cplx> x(n);
  for (auto& v : x) v = cplx{r.uniform(-1, 1), r.uniform(-1, 1)};
  return x;
}

class BluesteinSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BluesteinSizes, MatchesNaiveDFT) {
  const std::size_t n = GetParam();
  ASSERT_FALSE(pcf::fft::is_smooth(n)) << "not a Bluestein size";
  auto x = random_signal(n, n);
  std::vector<cplx> got(n), want(n);
  c2c_plan p(n, direction::forward);
  p.execute(x.data(), got.data());
  dft_naive(x.data(), want.data(), n, -1);
  double err = 0;
  for (std::size_t i = 0; i < n; ++i)
    err = std::max(err, std::abs(got[i] - want[i]));
  EXPECT_LT(err, 1e-8 * static_cast<double>(n));
}

TEST_P(BluesteinSizes, RoundTripScalesByN) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, 3 * n);
  std::vector<cplx> mid(n), back(n);
  c2c_plan f(n, direction::forward), b(n, direction::inverse);
  f.execute(x.data(), mid.data());
  b.execute(mid.data(), back.data());
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_LT(std::abs(back[i] / static_cast<double>(n) - x[i]), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Primes, BluesteinSizes,
                         ::testing::Values(37, 41, 127, 499, 997, 3 * 37,
                                           2 * 41, 37 * 5));

TEST(Bluestein, RealTransformWithPrimeHalfLength) {
  // r2c of length 2p uses a length-p complex transform internally; with
  // p = 499 that exercises Bluestein inside the real path.
  const std::size_t n = 2 * 499;
  pcf::rng r(9);
  std::vector<double> x(n);
  for (auto& v : x) v = r.uniform(-1, 1);
  std::vector<cplx> X(n / 2 + 1), full(n), want(n);
  r2c_plan p(n);
  p.execute(x.data(), X.data());
  for (std::size_t i = 0; i < n; ++i) full[i] = x[i];
  dft_naive(full.data(), want.data(), n, -1);
  for (std::size_t k = 0; k <= n / 2; ++k)
    EXPECT_LT(std::abs(X[k] - want[k]), 1e-8);
}

TEST(Bluestein, EnergyConservedParseval) {
  const std::size_t n = 101;
  auto x = random_signal(n, 7);
  std::vector<cplx> X(n);
  c2c_plan f(n, direction::forward);
  f.execute(x.data(), X.data());
  double ex = 0, eX = 0;
  for (auto& v : x) ex += std::norm(v);
  for (auto& v : X) eX += std::norm(v);
  EXPECT_NEAR(eX, ex * static_cast<double>(n), 1e-8 * ex * n);
}

TEST(Bluestein, DeltaFunctionFlatSpectrum) {
  const std::size_t n = 53;
  std::vector<cplx> x(n, cplx{0, 0}), X(n);
  x[0] = 1.0;
  c2c_plan f(n, direction::forward);
  f.execute(x.data(), X.data());
  for (auto& v : X) EXPECT_LT(std::abs(v - cplx{1, 0}), 1e-10);
}

}  // namespace
