#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "fft/fft.hpp"
#include "util/rng.hpp"

namespace {

using pcf::fft::c2c_plan;
using pcf::fft::cplx;
using pcf::fft::dft_naive;
using pcf::fft::direction;

std::vector<cplx> random_signal(std::size_t n, std::uint64_t seed) {
  pcf::rng r(seed);
  std::vector<cplx> x(n);
  for (auto& v : x) v = cplx{r.uniform(-1, 1), r.uniform(-1, 1)};
  return x;
}

double max_err(const std::vector<cplx>& a, const std::vector<cplx>& b) {
  double e = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) e = std::max(e, std::abs(a[i] - b[i]));
  return e;
}

// --- Parameterized over transform length: covers radix 2/3/4 specializations,
// --- generic primes, mixed products, and Bluestein (37, 74, 101).
class C2CSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(C2CSizes, MatchesNaiveDFTForward) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, 1000 + n);
  std::vector<cplx> got(n), want(n);
  c2c_plan p(n, direction::forward);
  p.execute(x.data(), got.data());
  dft_naive(x.data(), want.data(), n, -1);
  EXPECT_LT(max_err(got, want), 1e-9 * std::max<double>(1.0, n)) << "n=" << n;
}

TEST_P(C2CSizes, MatchesNaiveDFTInverse) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, 2000 + n);
  std::vector<cplx> got(n), want(n);
  c2c_plan p(n, direction::inverse);
  p.execute(x.data(), got.data());
  dft_naive(x.data(), want.data(), n, 1);
  EXPECT_LT(max_err(got, want), 1e-9 * std::max<double>(1.0, n)) << "n=" << n;
}

TEST_P(C2CSizes, RoundTripScalesByN) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, 3000 + n);
  std::vector<cplx> mid(n), back(n);
  c2c_plan f(n, direction::forward), b(n, direction::inverse);
  f.execute(x.data(), mid.data());
  b.execute(mid.data(), back.data());
  for (auto& v : back) v /= static_cast<double>(n);
  EXPECT_LT(max_err(back, x), 1e-11 * std::max<double>(1.0, n));
}

TEST_P(C2CSizes, ParsevalHolds) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, 4000 + n);
  std::vector<cplx> X(n);
  c2c_plan f(n, direction::forward);
  f.execute(x.data(), X.data());
  double ex = 0.0, eX = 0.0;
  for (auto& v : x) ex += std::norm(v);
  for (auto& v : X) eX += std::norm(v);
  EXPECT_NEAR(eX, ex * static_cast<double>(n), 1e-8 * ex * n);
}

TEST_P(C2CSizes, InPlaceExecutionMatchesOutOfPlace) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, 5000 + n);
  std::vector<cplx> out(n);
  c2c_plan f(n, direction::forward);
  f.execute(x.data(), out.data());
  std::vector<cplx> inplace = x;
  f.execute(inplace.data(), inplace.data());
  EXPECT_LT(max_err(inplace, out), 1e-13 * std::max<double>(1.0, n));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, C2CSizes,
    ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 12, 13, 16, 24, 25, 27,
                      30, 31, 32, 37, 48, 64, 74, 96, 101, 120, 128, 210, 243,
                      256, 384, 1000, 1024, 1536));

TEST(C2C, DeltaTransformsToConstant) {
  const std::size_t n = 64;
  std::vector<cplx> x(n, cplx{0, 0}), X(n);
  x[0] = 1.0;
  c2c_plan f(n, direction::forward);
  f.execute(x.data(), X.data());
  for (auto& v : X) EXPECT_LT(std::abs(v - cplx{1, 0}), 1e-13);
}

TEST(C2C, SingleModeTransformsToDelta) {
  const std::size_t n = 48;
  const std::size_t k0 = 5;
  std::vector<cplx> x(n), X(n);
  for (std::size_t j = 0; j < n; ++j)
    x[j] = std::polar(1.0, 2.0 * std::numbers::pi * double(k0 * j) / double(n));
  c2c_plan f(n, direction::forward);
  f.execute(x.data(), X.data());
  for (std::size_t k = 0; k < n; ++k) {
    const double want = (k == k0) ? double(n) : 0.0;
    EXPECT_NEAR(std::abs(X[k]), want, 1e-10) << k;
  }
}

TEST(C2C, LinearityProperty) {
  const std::size_t n = 120;
  auto x = random_signal(n, 1), y = random_signal(n, 2);
  const cplx a{1.5, -0.5}, b{-2.0, 3.0};
  std::vector<cplx> z(n), Xz(n), Xx(n), Xy(n);
  for (std::size_t i = 0; i < n; ++i) z[i] = a * x[i] + b * y[i];
  c2c_plan f(n, direction::forward);
  f.execute(z.data(), Xz.data());
  f.execute(x.data(), Xx.data());
  f.execute(y.data(), Xy.data());
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_LT(std::abs(Xz[i] - (a * Xx[i] + b * Xy[i])), 1e-10);
}

TEST(C2C, ShiftTheorem) {
  const std::size_t n = 60, s = 7;
  auto x = random_signal(n, 3);
  std::vector<cplx> xs(n), X(n), Xs(n);
  for (std::size_t j = 0; j < n; ++j) xs[j] = x[(j + s) % n];
  c2c_plan f(n, direction::forward);
  f.execute(x.data(), X.data());
  f.execute(xs.data(), Xs.data());
  for (std::size_t k = 0; k < n; ++k) {
    const cplx ph =
        std::polar(1.0, 2.0 * std::numbers::pi * double(k * s) / double(n));
    EXPECT_LT(std::abs(Xs[k] - ph * X[k]), 1e-10);
  }
}

TEST(C2C, ExecuteManyMatchesLoop) {
  const std::size_t n = 96, batch = 7;
  auto x = random_signal(n * batch, 17);
  std::vector<cplx> a(n * batch), b(n * batch);
  c2c_plan f(n, direction::forward);
  f.execute_many(x.data(), n, a.data(), n, batch);
  for (std::size_t i = 0; i < batch; ++i)
    f.execute(x.data() + i * n, b.data() + i * n);
  EXPECT_LT(max_err(a, b), 0.0 + 1e-15);
}

TEST(C2C, FlopEstimatePositive) {
  c2c_plan f(1024, direction::forward);
  EXPECT_NEAR(f.flops_per_execute(), 5.0 * 1024 * 10, 1.0);
}

TEST(C2C, PlanIsReusableAndConst) {
  const std::size_t n = 128;
  const c2c_plan f(n, direction::forward);
  auto x = random_signal(n, 9);
  std::vector<cplx> y1(n), y2(n);
  f.execute(x.data(), y1.data());
  f.execute(x.data(), y2.data());
  EXPECT_EQ(max_err(y1, y2), 0.0);
}

}  // namespace
