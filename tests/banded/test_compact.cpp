#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "banded/compact.hpp"
#include "banded/gb.hpp"
#include "util/rng.hpp"

namespace {

using pcf::banded::compact_banded;
using pcf::banded::cplx;
using pcf::banded::gb_matrix;

/// Fill a compact matrix over its full profile (band + corner extensions,
/// the structure of the paper's Figure 3) with diagonally dominant values;
/// returns a dense mirror.
std::vector<std::vector<double>> fill_full_profile(compact_banded& M,
                                                   std::uint64_t seed) {
  const int n = M.n();
  pcf::rng r(seed);
  std::vector<std::vector<double>> dense(
      static_cast<std::size_t>(n),
      std::vector<double>(static_cast<std::size_t>(n), 0.0));
  for (int i = 0; i < n; ++i) {
    double rowsum = 0.0;
    for (int j = 0; j < n; ++j) {
      if (!M.in_profile(i, j) || j == i) continue;
      const double v = r.uniform(-1, 1);
      M.at(i, j) = v;
      dense[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = v;
      rowsum += std::abs(v);
    }
    M.at(i, i) = rowsum + 1.0;
    dense[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] = rowsum + 1.0;
  }
  return dense;
}

std::vector<double> dense_apply(const std::vector<std::vector<double>>& A,
                                const std::vector<double>& x) {
  const std::size_t n = A.size();
  std::vector<double> y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) y[i] += A[i][j] * x[j];
  return y;
}

TEST(CompactProfile, RowStartClampsAtBothEnds) {
  compact_banded M(20, 3);
  EXPECT_EQ(M.row_start(0), 0);
  EXPECT_EQ(M.row_start(2), 0);
  EXPECT_EQ(M.row_start(3), 0);
  EXPECT_EQ(M.row_start(4), 1);
  EXPECT_EQ(M.row_start(10), 7);
  EXPECT_EQ(M.row_start(16), 13);
  EXPECT_EQ(M.row_start(17), 13);  // clamp: 20 - 1 - 6 = 13
  EXPECT_EQ(M.row_start(19), 13);
}

TEST(CompactProfile, TopRowsCoverBoundaryExtensions) {
  // The paper's Figure 3: extra nonzeros right of the band in the first
  // rows and left of the band in the last rows are representable.
  compact_banded M(20, 3);
  EXPECT_TRUE(M.in_profile(0, 6));    // beyond i + h = 3
  EXPECT_FALSE(M.in_profile(0, 7));
  EXPECT_TRUE(M.in_profile(19, 13));  // before i - h = 16
  EXPECT_FALSE(M.in_profile(19, 12));
  // Interior rows are plain band.
  EXPECT_TRUE(M.in_profile(10, 7));
  EXPECT_FALSE(M.in_profile(10, 6));
  EXPECT_TRUE(M.in_profile(10, 13));
  EXPECT_FALSE(M.in_profile(10, 14));
}

TEST(CompactProfile, RejectsTooSmallMatrix) {
  EXPECT_THROW(compact_banded(6, 3), pcf::precondition_error);
  EXPECT_NO_THROW(compact_banded(7, 3));
}

TEST(Compact, ApplyMatchesDense) {
  compact_banded M(25, 4);
  auto dense = fill_full_profile(M, 3);
  pcf::rng r(5);
  std::vector<double> x(25);
  for (auto& v : x) v = r.uniform(-1, 1);
  std::vector<double> y(25);
  M.apply(x.data(), y.data());
  auto want = dense_apply(dense, x);
  for (int i = 0; i < 25; ++i)
    EXPECT_NEAR(y[static_cast<std::size_t>(i)], want[static_cast<std::size_t>(i)], 1e-12);
}

class CompactShapes : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CompactShapes, FactorSolveRecoversSolution) {
  const auto [n, h] = GetParam();
  compact_banded M(n, h);
  auto dense = fill_full_profile(M, 17 * static_cast<std::uint64_t>(n) + h);
  pcf::rng r(23);
  std::vector<double> x_true(static_cast<std::size_t>(n));
  for (auto& v : x_true) v = r.uniform(-2, 2);
  auto b = dense_apply(dense, x_true);
  M.factorize();
  M.solve(b.data());
  for (int i = 0; i < n; ++i)
    EXPECT_NEAR(b[static_cast<std::size_t>(i)], x_true[static_cast<std::size_t>(i)], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Shapes, CompactShapes,
                         ::testing::Values(std::make_tuple(3, 1),
                                           std::make_tuple(9, 2),
                                           std::make_tuple(16, 3),
                                           std::make_tuple(64, 5),
                                           std::make_tuple(100, 7),
                                           std::make_tuple(1024, 7),
                                           std::make_tuple(33, 1)));

TEST(Compact, MatchesGbOnSameBorderedMatrix) {
  // Same bordered-banded matrix solved by the custom solver and by the
  // reference GB solver with widened bands (Figure 3 center vs right).
  const int n = 30, h = 3;
  compact_banded C(n, h);
  auto dense = fill_full_profile(C, 77);
  gb_matrix<double> G(n, 2 * h, 2 * h);  // wide enough for corner entries
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      if (dense[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] != 0.0)
        G.at(i, j) = dense[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
  pcf::rng r(1);
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = r.uniform(-1, 1);
  auto b2 = b;
  C.factorize();
  C.solve(b.data());
  G.factorize();
  G.solve(b2.data());
  for (int i = 0; i < n; ++i)
    EXPECT_NEAR(b[static_cast<std::size_t>(i)], b2[static_cast<std::size_t>(i)], 1e-10);
}

TEST(Compact, ComplexRhsMatchesTwoRealSolves) {
  const int n = 40, h = 4;
  compact_banded M(n, h);
  fill_full_profile(M, 31);
  pcf::rng r(9);
  std::vector<cplx> b(static_cast<std::size_t>(n));
  std::vector<double> re(static_cast<std::size_t>(n)), im(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    b[static_cast<std::size_t>(i)] = cplx{r.uniform(-1, 1), r.uniform(-1, 1)};
    re[static_cast<std::size_t>(i)] = b[static_cast<std::size_t>(i)].real();
    im[static_cast<std::size_t>(i)] = b[static_cast<std::size_t>(i)].imag();
  }
  M.factorize();
  M.solve(b.data());
  M.solve(re.data());
  M.solve(im.data());
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(b[static_cast<std::size_t>(i)].real(), re[static_cast<std::size_t>(i)], 1e-13);
    EXPECT_NEAR(b[static_cast<std::size_t>(i)].imag(), im[static_cast<std::size_t>(i)], 1e-13);
  }
}

TEST(Compact, SolveManyMatchesIndividualSolves) {
  const int n = 32, h = 3, nrhs = 4;
  compact_banded M(n, h);
  fill_full_profile(M, 41);
  M.factorize();
  pcf::rng r(6);
  std::vector<cplx> many(static_cast<std::size_t>(n) * nrhs);
  for (auto& v : many) v = cplx{r.uniform(-1, 1), r.uniform(-1, 1)};
  auto single = many;
  M.solve_many(many.data(), nrhs, static_cast<std::size_t>(n));
  for (int q = 0; q < nrhs; ++q) M.solve(single.data() + q * n);
  for (std::size_t i = 0; i < many.size(); ++i)
    EXPECT_LT(std::abs(many[i] - single[i]), 1e-14);
}

TEST(Compact, StorageIsHalfOfWidenedLapackFormat) {
  // The paper: "the memory requirement is reduced by half". The bordered
  // matrix needs kl = ku = 2h in GB form (plus pivoting workspace).
  const int n = 1024, h = 7;
  compact_banded C(n, h);
  gb_matrix<double> G(n, 2 * h, 2 * h);
  EXPECT_LT(C.storage_bytes() * 2, G.storage_bytes());
}

TEST(Compact, ZeroPivotThrows) {
  compact_banded M(7, 1);
  // Leave the matrix all zero: first pivot is zero.
  EXPECT_THROW(M.factorize(), pcf::numerical_error);
}

TEST(Compact, SolveBeforeFactorizeThrows) {
  compact_banded M(7, 1);
  std::vector<double> b(7, 0.0);
  EXPECT_THROW(M.solve(b.data()), pcf::precondition_error);
}

TEST(Compact, ApplyAfterFactorizeThrows) {
  compact_banded M(9, 1);
  fill_full_profile(M, 2);
  M.factorize();
  std::vector<double> x(9, 1.0), y(9);
  EXPECT_THROW(M.apply(x.data(), y.data()), pcf::precondition_error);
}

TEST(Compact, ClearResetsFactorizationState) {
  compact_banded M(9, 1);
  fill_full_profile(M, 4);
  M.factorize();
  M.clear();
  EXPECT_FALSE(M.factorized());
  fill_full_profile(M, 8);
  M.factorize();
  EXPECT_TRUE(M.factorized());
}

TEST(Compact, DiagonalMatrixWithZeroBandwidth) {
  compact_banded M(5, 0);
  for (int i = 0; i < 5; ++i) M.at(i, i) = static_cast<double>(i + 1);
  M.factorize();
  std::vector<double> b{1, 4, 9, 16, 25};
  M.solve(b.data());
  for (int i = 0; i < 5; ++i)
    EXPECT_NEAR(b[static_cast<std::size_t>(i)], static_cast<double>(i + 1), 1e-14);
}

}  // namespace
