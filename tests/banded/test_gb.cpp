#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "banded/gb.hpp"
#include "util/rng.hpp"

namespace {

using pcf::banded::cplx;
using pcf::banded::gb_matrix;

/// Dense mirror used to verify banded results: y = A x.
template <class T>
std::vector<T> dense_apply(const std::vector<std::vector<T>>& A,
                           const std::vector<T>& x) {
  const std::size_t n = A.size();
  std::vector<T> y(n, T{});
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) y[i] += A[i][j] * x[j];
  return y;
}

/// Random diagonally dominant banded matrix; fills both the gb_matrix and a
/// dense mirror.
template <class T>
std::vector<std::vector<T>> fill_random(gb_matrix<T>& M, std::uint64_t seed) {
  const int n = M.n();
  pcf::rng r(seed);
  std::vector<std::vector<T>> dense(static_cast<std::size_t>(n),
                                    std::vector<T>(static_cast<std::size_t>(n), T{}));
  for (int i = 0; i < n; ++i) {
    double rowsum = 0.0;
    for (int j = std::max(0, i - M.kl()); j <= std::min(n - 1, i + M.ku());
         ++j) {
      if (j == i) continue;
      T v;
      if constexpr (std::is_same_v<T, cplx>)
        v = cplx{r.uniform(-1, 1), r.uniform(-1, 1)};
      else
        v = r.uniform(-1, 1);
      M.at(i, j) = v;
      dense[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = v;
      rowsum += std::abs(v);
    }
    const T d = T(rowsum + 1.0);
    M.at(i, i) = d;
    dense[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] = d;
  }
  return dense;
}

class GbShapes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GbShapes, SolveRecoversKnownSolution) {
  const auto [n, kl, ku] = GetParam();
  gb_matrix<double> M(n, kl, ku);
  auto dense = fill_random(M, 7 * static_cast<std::uint64_t>(n) + kl);
  pcf::rng r(99);
  std::vector<double> x_true(static_cast<std::size_t>(n));
  for (auto& v : x_true) v = r.uniform(-2, 2);
  auto b = dense_apply(dense, x_true);
  M.factorize();
  M.solve(b.data());
  for (int i = 0; i < n; ++i) EXPECT_NEAR(b[static_cast<std::size_t>(i)],
                                          x_true[static_cast<std::size_t>(i)],
                                          1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GbShapes,
    ::testing::Values(std::make_tuple(1, 0, 0), std::make_tuple(5, 1, 1),
                      std::make_tuple(16, 2, 3), std::make_tuple(33, 3, 2),
                      std::make_tuple(64, 7, 7), std::make_tuple(100, 4, 9),
                      std::make_tuple(128, 15, 15)));

TEST(Gb, ComplexMatrixComplexRhs) {
  const int n = 40, k = 3;
  gb_matrix<cplx> M(n, k, k);
  auto dense = fill_random(M, 5);
  pcf::rng r(3);
  std::vector<cplx> x_true(n);
  for (auto& v : x_true) v = cplx{r.uniform(-1, 1), r.uniform(-1, 1)};
  auto b = dense_apply(dense, x_true);
  M.factorize();
  M.solve(b.data());
  for (int i = 0; i < n; ++i)
    EXPECT_LT(std::abs(b[static_cast<std::size_t>(i)] -
                       x_true[static_cast<std::size_t>(i)]),
              1e-10);
}

TEST(Gb, RealMatrixComplexRhsMatchesSplitSolves) {
  const int n = 50, k = 4;
  gb_matrix<double> M(n, k, k);
  auto dense = fill_random(M, 11);
  pcf::rng r(13);
  std::vector<cplx> b(n);
  for (auto& v : b) v = cplx{r.uniform(-1, 1), r.uniform(-1, 1)};
  std::vector<double> re(n), im(n);
  for (int i = 0; i < n; ++i) {
    re[static_cast<std::size_t>(i)] = b[static_cast<std::size_t>(i)].real();
    im[static_cast<std::size_t>(i)] = b[static_cast<std::size_t>(i)].imag();
  }
  M.factorize();
  M.solve(b.data());
  M.solve(re.data());
  M.solve(im.data());
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(b[static_cast<std::size_t>(i)].real(),
                re[static_cast<std::size_t>(i)], 1e-12);
    EXPECT_NEAR(b[static_cast<std::size_t>(i)].imag(),
                im[static_cast<std::size_t>(i)], 1e-12);
  }
}

TEST(Gb, PivotingHandlesZeroDiagonal) {
  // [[0, 1], [1, 0]] requires a row interchange.
  gb_matrix<double> M(2, 1, 1);
  M.at(0, 1) = 1.0;
  M.at(1, 0) = 1.0;
  M.at(0, 0) = 0.0;
  M.at(1, 1) = 0.0;
  std::vector<double> b{3.0, 4.0};
  M.factorize();
  M.solve(b.data());
  EXPECT_NEAR(b[0], 4.0, 1e-14);
  EXPECT_NEAR(b[1], 3.0, 1e-14);
}

TEST(Gb, SingularMatrixThrows) {
  gb_matrix<double> M(3, 1, 1);
  // Column 1 identically zero -> singular.
  M.at(0, 0) = 1.0;
  M.at(2, 2) = 1.0;
  EXPECT_THROW(M.factorize(), pcf::numerical_error);
}

TEST(Gb, SolveBeforeFactorizeThrows) {
  gb_matrix<double> M(3, 1, 1);
  std::vector<double> b(3, 1.0);
  EXPECT_THROW(M.solve(b.data()), pcf::precondition_error);
}

TEST(Gb, AtRejectsOutOfBand) {
  gb_matrix<double> M(10, 1, 2);
  EXPECT_THROW(M.at(0, 3), pcf::precondition_error);
  EXPECT_THROW(M.at(5, 3), pcf::precondition_error);
  EXPECT_NO_THROW(M.at(5, 4));
  EXPECT_NO_THROW(M.at(5, 7));
}

TEST(Gb, SolveManyAppliesEachRhs) {
  const int n = 20, k = 2, nrhs = 3;
  gb_matrix<double> M(n, k, k);
  auto dense = fill_random(M, 21);
  pcf::rng r(2);
  std::vector<double> xs(static_cast<std::size_t>(n) * nrhs);
  for (auto& v : xs) v = r.uniform(-1, 1);
  std::vector<double> bs(xs.size());
  for (int q = 0; q < nrhs; ++q) {
    std::vector<double> x(xs.begin() + q * n, xs.begin() + (q + 1) * n);
    auto b = dense_apply(dense, x);
    std::copy(b.begin(), b.end(), bs.begin() + q * n);
  }
  M.factorize();
  M.solve_many(bs.data(), nrhs, static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < xs.size(); ++i) EXPECT_NEAR(bs[i], xs[i], 1e-10);
}

TEST(Gb, StorageBytesMatchesLapackLayout) {
  gb_matrix<double> M(100, 3, 3);
  // (2*kl + ku + 1) * n doubles plus pivot array.
  EXPECT_EQ(M.storage_bytes(), (2 * 3 + 3 + 1) * 100 * sizeof(double) +
                                   100 * sizeof(int));
}

}  // namespace
