// Blocked multi-RHS substitution: the blocked kernels must be BIT-identical
// to the sequential scalar solves (per-lane arithmetic order is unchanged;
// the multipliers are matrix entries, uniform across lanes), and the
// flop/byte accounting must charge the band read once per block while
// reducing exactly to the seed single-RHS numbers at R = 1.
#include <gtest/gtest.h>

#include <algorithm>
#include <complex>
#include <functional>
#include <type_traits>
#include <vector>

#include "banded/compact.hpp"
#include "banded/gb.hpp"
#include "util/counters.hpp"
#include "util/rng.hpp"

namespace {

using pcf::banded::banded_view;
using pcf::banded::compact_banded;
using pcf::banded::cplx;
using pcf::banded::gb_matrix;

void fill_profile(compact_banded& M, std::uint64_t seed) {
  const int n = M.n();
  pcf::rng r(seed);
  for (int i = 0; i < n; ++i) {
    double rowsum = 0.0;
    for (int j = 0; j < n; ++j) {
      if (!M.in_profile(i, j) || j == i) continue;
      const double v = r.uniform(-1, 1);
      M.at(i, j) = v;
      rowsum += std::abs(v);
    }
    M.at(i, i) = rowsum + 1.0;
  }
}

template <class S>
std::vector<S> random_panel(std::size_t count, std::uint64_t seed) {
  pcf::rng r(seed);
  std::vector<S> p(count);
  for (auto& v : p) {
    if constexpr (std::is_same_v<S, cplx>)
      v = cplx{r.uniform(-1, 1), r.uniform(-1, 1)};
    else
      v = r.uniform(-1, 1);
  }
  return p;
}

/// Bit-identity of every multi-RHS entry point against sequential scalar
/// solves, over bandwidth x RHS-count x stride x scalar type.
template <class S>
void check_bit_identity(int h, int nrhs, std::size_t stride) {
  const int n = 40;
  ASSERT_GE(stride, static_cast<std::size_t>(n));
  compact_banded M(n, h);
  fill_profile(M, 100 * static_cast<std::uint64_t>(h) + nrhs);
  M.factorize();

  const std::size_t count = static_cast<std::size_t>(nrhs) * stride;
  auto ref = random_panel<S>(count, 7 * static_cast<std::uint64_t>(h) + nrhs);
  for (int q = 0; q < nrhs; ++q)
    M.solve(ref.data() + static_cast<std::size_t>(q) * stride);

  auto run = [&](auto&& fn) {
    auto x =
        random_panel<S>(count, 7 * static_cast<std::uint64_t>(h) + nrhs);
    fn(x);
    for (std::size_t i = 0; i < count; ++i) {
      if constexpr (std::is_same_v<S, cplx>) {
        EXPECT_EQ(x[i].real(), ref[i].real()) << "h=" << h << " i=" << i;
        EXPECT_EQ(x[i].imag(), ref[i].imag()) << "h=" << h << " i=" << i;
      } else {
        EXPECT_EQ(x[i], ref[i]) << "h=" << h << " i=" << i;
      }
    }
  };
  run([&](auto& x) { M.solve_many(x.data(), nrhs, stride); });
  run([&](auto& x) { M.solve_many_scalar(x.data(), nrhs, stride); });
  run([&](auto& x) { M.solve_many_blocked_generic(x.data(), nrhs, stride); });
  run([&](auto& x) { M.view().solve_many(x.data(), nrhs, stride); });
}

TEST(Blocked, BitIdenticalToScalarComplexContiguous) {
  for (int h = 1; h <= 7; ++h)
    for (int nrhs : {1, 2, 3, 4, 8}) check_bit_identity<cplx>(h, nrhs, 40);
}

TEST(Blocked, BitIdenticalToScalarRealContiguous) {
  for (int h = 1; h <= 7; ++h)
    for (int nrhs : {1, 2, 3, 4, 8}) check_bit_identity<double>(h, nrhs, 40);
}

TEST(Blocked, BitIdenticalToScalarStrided) {
  // Strided panels (stride = n + 7) exercise the pack/unpack path's
  // addressing independently of the contiguous case.
  for (int h = 1; h <= 7; ++h)
    for (int nrhs : {1, 2, 3, 4, 8}) {
      check_bit_identity<cplx>(h, nrhs, 47);
      check_bit_identity<double>(h, nrhs, 47);
    }
}

TEST(Blocked, ViewSolveMatchesOwner) {
  const int n = 40, h = 5;
  compact_banded M(n, h);
  fill_profile(M, 12);
  M.factorize();
  banded_view v = M.view();
  EXPECT_EQ(v.n(), n);
  EXPECT_EQ(v.half_bandwidth(), h);
  auto a = random_panel<cplx>(static_cast<std::size_t>(n), 3);
  auto b = a;
  M.solve(a.data());
  v.solve(b.data());
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(a[static_cast<std::size_t>(i)].real(),
              b[static_cast<std::size_t>(i)].real());
    EXPECT_EQ(a[static_cast<std::size_t>(i)].imag(),
              b[static_cast<std::size_t>(i)].imag());
  }
}

TEST(Blocked, ViewRequiresFactorized) {
  compact_banded M(9, 1);
  fill_profile(M, 5);
  EXPECT_THROW((void)M.view(), pcf::precondition_error);
  M.factorize();
  EXPECT_NO_THROW((void)M.view());
}

TEST(Blocked, StrideSmallerThanNThrows) {
  compact_banded M(16, 2);
  fill_profile(M, 5);
  M.factorize();
  std::vector<cplx> x(32);
  EXPECT_THROW(M.solve_many(x.data(), 2, 15), pcf::precondition_error);
}

TEST(Blocked, GbSolveManyBitIdenticalToScalar) {
  const int n = 36, h = 3;
  gb_matrix<double> G(n, 2 * h, 2 * h);
  pcf::rng r(21);
  for (int i = 0; i < n; ++i) {
    double rowsum = 0.0;
    for (int j = std::max(0, i - 2 * h); j <= std::min(n - 1, i + 2 * h);
         ++j) {
      if (j == i) continue;
      const double v = r.uniform(-1, 1);
      G.at(i, j) = v;
      rowsum += std::abs(v);
    }
    G.at(i, i) = rowsum + 1.0;
  }
  G.factorize();
  for (int nrhs : {1, 2, 3, 4, 8}) {
    const auto stride = static_cast<std::size_t>(n);
    auto many = random_panel<cplx>(stride * static_cast<std::size_t>(nrhs),
                                   50 + static_cast<std::uint64_t>(nrhs));
    auto single = many;
    G.solve_many(many.data(), nrhs, stride);
    for (int q = 0; q < nrhs; ++q)
      G.solve(single.data() + static_cast<std::size_t>(q) * stride);
    for (std::size_t i = 0; i < many.size(); ++i) {
      EXPECT_EQ(many[i].real(), single[i].real());
      EXPECT_EQ(many[i].imag(), single[i].imag());
    }
  }
}

/// Measure the counters charged by `fn`.
pcf::op_counts count(const std::function<void()>& fn) {
  pcf::counters::reset();
  fn();
  pcf::counters::drain();
  return pcf::counters::total();
}

TEST(BlockedCounters, SingleRhsViaSolveManyMatchesSolve) {
  // R = 1 must account exactly like the seed scalar path.
  const int n = 64, h = 7;
  compact_banded M(n, h);
  fill_profile(M, 9);
  M.factorize();
  std::vector<cplx> x(static_cast<std::size_t>(n), cplx{1.0, -1.0});
  const auto one = count([&] {
    auto b = x;
    M.solve(b.data());
  });
  const auto many = count([&] {
    auto b = x;
    M.solve_many(b.data(), 1, static_cast<std::size_t>(n));
  });
  EXPECT_EQ(one.flops, many.flops);
  EXPECT_EQ(one.bytes_read, many.bytes_read);
  EXPECT_EQ(one.bytes_written, many.bytes_written);
}

TEST(BlockedCounters, BandReadChargedOncePerBlock) {
  // For a block of R RHS the factored band is streamed once, so
  //   read(R) = band_bytes + R * (read(1) - band_bytes)
  //   flops(R) = R * flops(1),  written(R) = R * written(1).
  const int n = 64, h = 7, R = 4;
  compact_banded M(n, h);
  fill_profile(M, 9);
  M.factorize();
  std::vector<cplx> x(static_cast<std::size_t>(n) * R, cplx{0.5, 2.0});
  const auto one = count([&] {
    auto b = x;
    M.solve(b.data());
  });
  const auto blk = count([&] {
    auto b = x;
    M.solve_many(b.data(), R, static_cast<std::size_t>(n));
  });
  const std::uint64_t band_bytes =
      static_cast<std::uint64_t>(n) * (2 * h + 1) * 8;
  EXPECT_EQ(blk.flops, R * one.flops);
  EXPECT_EQ(blk.bytes_written, R * one.bytes_written);
  EXPECT_EQ(blk.bytes_read, band_bytes + R * (one.bytes_read - band_bytes));
  EXPECT_LT(blk.bytes_read, R * one.bytes_read);
}

}  // namespace
