// Cross-validation of the banded solvers against an independent dense LU
// with partial pivoting implemented here — matrices are *not* diagonally
// dominant, so the GB solver's pivoting is genuinely exercised.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "banded/compact.hpp"
#include "banded/gb.hpp"
#include "util/rng.hpp"

namespace {

using pcf::banded::cplx;
using pcf::banded::gb_matrix;

/// Reference: dense LU with partial pivoting, solve in place.
template <class T>
bool dense_solve(std::vector<std::vector<T>> a, std::vector<T>& b) {
  const std::size_t n = a.size();
  for (std::size_t j = 0; j < n; ++j) {
    std::size_t p = j;
    double best = std::abs(a[j][j]);
    for (std::size_t i = j + 1; i < n; ++i)
      if (std::abs(a[i][j]) > best) {
        best = std::abs(a[i][j]);
        p = i;
      }
    if (best == 0.0) return false;
    std::swap(a[j], a[p]);
    std::swap(b[j], b[p]);
    for (std::size_t i = j + 1; i < n; ++i) {
      const T m = a[i][j] / a[j][j];
      for (std::size_t c = j; c < n; ++c) a[i][c] -= m * a[j][c];
      b[i] -= m * b[j];
    }
  }
  for (std::size_t i = n; i-- > 0;) {
    T acc = b[i];
    for (std::size_t c = i + 1; c < n; ++c) acc -= a[i][c] * b[c];
    b[i] = acc / a[i][i];
  }
  return true;
}

class GbOracle : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GbOracle, NonDominantRandomMatricesMatchDenseLU) {
  const auto [n, kl, ku] = GetParam();
  for (std::uint64_t trial = 0; trial < 5; ++trial) {
    pcf::rng r(1000 * trial + static_cast<std::uint64_t>(n) + kl);
    gb_matrix<double> M(n, kl, ku);
    std::vector<std::vector<double>> dense(
        static_cast<std::size_t>(n),
        std::vector<double>(static_cast<std::size_t>(n), 0.0));
    for (int i = 0; i < n; ++i)
      for (int j = std::max(0, i - kl); j <= std::min(n - 1, i + ku); ++j) {
        const double v = r.uniform(-1, 1);  // no dominance boost
        M.at(i, j) = v;
        dense[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = v;
      }
    std::vector<double> b(static_cast<std::size_t>(n));
    for (auto& v : b) v = r.uniform(-1, 1);
    auto want = b;
    if (!dense_solve(dense, want)) continue;  // skip singular draws
    // Skip ill-conditioned draws where comparison is meaningless.
    double wmax = 0;
    for (double v : want) wmax = std::max(wmax, std::abs(v));
    if (wmax > 1e6) continue;
    M.factorize();
    M.solve(b.data());
    for (int i = 0; i < n; ++i)
      EXPECT_NEAR(b[static_cast<std::size_t>(i)],
                  want[static_cast<std::size_t>(i)], 1e-7 * (1.0 + wmax))
          << "trial " << trial << " i " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GbOracle,
                         ::testing::Values(std::make_tuple(12, 2, 2),
                                           std::make_tuple(25, 1, 3),
                                           std::make_tuple(40, 4, 4),
                                           std::make_tuple(64, 7, 7)));

TEST(GbOracleComplex, ComplexMatrixMatchesDenseLU) {
  const int n = 24, k = 3;
  pcf::rng r(77);
  gb_matrix<cplx> M(n, k, k);
  std::vector<std::vector<cplx>> dense(
      static_cast<std::size_t>(n),
      std::vector<cplx>(static_cast<std::size_t>(n), cplx{}));
  for (int i = 0; i < n; ++i)
    for (int j = std::max(0, i - k); j <= std::min(n - 1, i + k); ++j) {
      const cplx v{r.uniform(-1, 1), r.uniform(-1, 1)};
      M.at(i, j) = v;
      dense[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = v;
    }
  std::vector<cplx> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = cplx{r.uniform(-1, 1), r.uniform(-1, 1)};
  auto want = b;
  ASSERT_TRUE(dense_solve(dense, want));
  M.factorize();
  M.solve(b.data());
  for (int i = 0; i < n; ++i)
    EXPECT_LT(std::abs(b[static_cast<std::size_t>(i)] -
                       want[static_cast<std::size_t>(i)]),
              1e-8);
}

}  // namespace
