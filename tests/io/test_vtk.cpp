#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "io/vtk.hpp"
#include "util/check.hpp"

namespace {

using pcf::io::write_vtk_rectilinear;

TEST(Vtk, WritesValidRectilinearGrid) {
  const std::string path = ::testing::TempDir() + "/pcf_test.vtk";
  std::vector<double> xs{0.0, 1.0, 2.0}, ys{-1.0, 0.5}, zs{0.0, 0.25};
  std::vector<double> u(3 * 2 * 2);
  for (std::size_t i = 0; i < u.size(); ++i) u[i] = static_cast<double>(i);
  write_vtk_rectilinear(path, xs, ys, zs, {{"u", &u}});

  std::ifstream is(path);
  std::string all((std::istreambuf_iterator<char>(is)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("DATASET RECTILINEAR_GRID"), std::string::npos);
  EXPECT_NE(all.find("DIMENSIONS 3 2 2"), std::string::npos);
  EXPECT_NE(all.find("X_COORDINATES 3 double"), std::string::npos);
  EXPECT_NE(all.find("POINT_DATA 12"), std::string::npos);
  EXPECT_NE(all.find("SCALARS u double 1"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Vtk, MultipleFieldsAllPresent) {
  const std::string path = ::testing::TempDir() + "/pcf_test2.vtk";
  std::vector<double> xs{0.0, 1.0}, ys{0.0}, zs{0.0};
  std::vector<double> u{1.0, 2.0}, v{3.0, 4.0};
  write_vtk_rectilinear(path, xs, ys, zs, {{"u", &u}, {"v", &v}});
  std::ifstream is(path);
  std::string all((std::istreambuf_iterator<char>(is)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("SCALARS u double 1"), std::string::npos);
  EXPECT_NE(all.find("SCALARS v double 1"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Vtk, RejectsMismatchedFieldSize) {
  std::vector<double> xs{0.0, 1.0}, ys{0.0}, zs{0.0};
  std::vector<double> bad{1.0};
  EXPECT_THROW(
      write_vtk_rectilinear("/tmp/never.vtk", xs, ys, zs, {{"u", &bad}}),
      pcf::precondition_error);
}

TEST(Vtk, RejectsBadFieldName) {
  std::vector<double> xs{0.0}, ys{0.0}, zs{0.0};
  std::vector<double> f{1.0};
  EXPECT_THROW(write_vtk_rectilinear("/tmp/never.vtk", xs, ys, zs,
                                     {{"bad name", &f}}),
               pcf::precondition_error);
}

}  // namespace
