#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "io/profiles.hpp"

namespace {

using pcf::core::profile_data;
using pcf::io::read_csv_column;
using pcf::io::write_profiles_csv;

profile_data sample() {
  profile_data p;
  p.y = {-1.0, 0.0, 1.0};
  p.u = {0.0, 18.0, 0.0};
  p.uu = {0.0, 2.5, 0.0};
  p.vv = {0.0, 1.0, 0.0};
  p.ww = {0.0, 1.5, 0.0};
  p.uv = {0.0, -0.8, 0.0};
  p.samples = 10;
  return p;
}

TEST(Profiles, RoundTripThroughCsv) {
  const std::string path = ::testing::TempDir() + "/pcf_prof.csv";
  write_profiles_csv(path, sample(), 180.0);
  auto y = read_csv_column(path, 0);
  auto yp = read_csv_column(path, 1);
  auto u = read_csv_column(path, 2);
  auto muv = read_csv_column(path, 6);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  EXPECT_DOUBLE_EQ(yp[0], 0.0);        // lower wall: y+ = 0
  EXPECT_DOUBLE_EQ(yp[1], 180.0);      // centerline: y+ = Re_tau
  EXPECT_DOUBLE_EQ(u[1], 18.0);
  EXPECT_DOUBLE_EQ(muv[1], 0.8);       // written as -<uv>
  std::remove(path.c_str());
}

TEST(Profiles, HeaderHasSevenColumns) {
  const std::string path = ::testing::TempDir() + "/pcf_prof2.csv";
  write_profiles_csv(path, sample(), 180.0);
  std::ifstream is(path);
  std::string header;
  std::getline(is, header);
  EXPECT_EQ(std::count(header.begin(), header.end(), ','), 6);
  std::remove(path.c_str());
}

}  // namespace
