// Deterministic fault-injection matrix for the three checkpoint formats
// (ctest label: faults).
//
// Every injected fault must be either *invisible* — the crash hit before
// commit, so the previous checkpoint survives bit for bit — or *detected*
// on load with an error naming the damage (a section CRC mismatch or a
// truncation). A fault that a loader silently accepts is the failure mode
// these tests exist to rule out.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "io/atomic_file.hpp"
#include "util/check.hpp"

namespace {

using pcf::core::channel_config;
using pcf::core::channel_dns;
using pcf::io::fault_injection_scope;
using pcf::io::fault_kind;
using pcf::io::fault_policy;
using pcf::vmpi::communicator;
using pcf::vmpi::run_world;

channel_config cfg_small() {
  channel_config cfg;
  cfg.nx = 8;
  cfg.nz = 8;
  cfg.ny = 24;
  cfg.dt = 1e-4;
  return cfg;
}

enum class fmt { per_rank, global, parallel };

const char* fmt_name(fmt f) {
  switch (f) {
    case fmt::per_rank: return "per_rank";
    case fmt::global: return "global";
    default: return "parallel";
  }
}

void save_as(channel_dns& dns, fmt f, const std::string& path) {
  switch (f) {
    case fmt::per_rank: dns.save_checkpoint(path); break;
    case fmt::global: dns.save_checkpoint_global(path); break;
    case fmt::parallel: dns.save_checkpoint_parallel(path); break;
  }
}

void load_as(channel_dns& dns, fmt f, const std::string& path) {
  switch (f) {
    case fmt::per_rank: dns.load_checkpoint(path); break;
    case fmt::global: dns.load_checkpoint_global(path); break;
    case fmt::parallel: dns.load_checkpoint_parallel(path); break;
  }
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return {};
  return {std::istreambuf_iterator<char>(is),
          std::istreambuf_iterator<char>()};
}

/// File offset of the first payload byte of the named 24-byte-header
/// section in a v2 per-rank (5 dims) or global (3 dims) checkpoint; 0 if
/// absent.
std::uint64_t section_payload_offset(const std::vector<char>& bytes,
                                     const char* name, std::size_t ndims) {
  char key[8] = {};
  std::snprintf(key, sizeof(key), "%s", name);
  // Sections start after magic + dims + time + steps + meta (two uint32s).
  for (std::size_t pos = 8 + ndims * 8 + 8 + 8 + 2 * 4;
       pos + 24 <= bytes.size();) {
    std::uint64_t sz = 0;
    std::memcpy(&sz, bytes.data() + pos + 8, 8);
    if (std::memcmp(bytes.data() + pos, key, 8) == 0) return pos + 24;
    pos += 24 + sz;
  }
  return 0;
}

struct fault_case {
  fmt format;
  fault_kind kind;
};

class FaultMatrix : public ::testing::TestWithParam<fault_case> {};

TEST_P(FaultMatrix, EveryFaultIsInvisibleOrDetected) {
  const auto [format, kind] = GetParam();
  const std::string path = ::testing::TempDir() + "/pcf_fault_" +
                           fmt_name(format) + "_" +
                           std::to_string(static_cast<int>(kind)) + ".ckpt";
  run_world(1, [&](communicator& world) {
    auto cfg = cfg_small();
    channel_dns dns(cfg, world);
    dns.initialize(0.1, 3);
    dns.step();
    // A known-good previous checkpoint generation.
    save_as(dns, format, path);
    const auto good = slurp(path);
    ASSERT_FALSE(good.empty());

    // Aim the fault at real payload bytes: inside the c_om section for the
    // headered formats, inside the mode payload for the parallel layout.
    std::uint64_t target = 0;
    if (format == fmt::parallel) {
      target = 152 + 64;  // v2 parallel payload origin + a mode line
    } else {
      const std::size_t ndims = format == fmt::per_rank ? 5 : 3;
      target = section_payload_offset(good, "c_om", ndims) + 16;
      ASSERT_GT(target, std::uint64_t{16});
    }
    if (kind == fault_kind::short_write)
      target = good.size() - 48;  // drop the file's tail

    dns.step();  // a different state, so a torn overwrite is observable
    bool save_crashed = false;
    {
      fault_injection_scope fault({kind, target, path});
      try {
        save_as(dns, format, path);
      } catch (const pcf::io::injected_crash&) {
        save_crashed = true;
      }
    }

    if (save_crashed) {
      // Atomicity: the interrupted save must be invisible — the previous
      // generation survives bit for bit and still loads.
      EXPECT_EQ(kind, fault_kind::crash_after_n);
      const auto after = slurp(path);
      ASSERT_EQ(after.size(), good.size());
      EXPECT_EQ(std::memcmp(after.data(), good.data(), good.size()), 0);
      channel_dns dns2(cfg, world);
      load_as(dns2, format, path);
      EXPECT_EQ(dns2.step_count(), 1);
      return;
    }

    // The fault corrupted the committed file: the loader must refuse it
    // with an error that names the damage — never accept it silently.
    ASSERT_TRUE(kind == fault_kind::short_write ||
                kind == fault_kind::bit_flip);
    channel_dns dns2(cfg, world);
    try {
      load_as(dns2, format, path);
      FAIL() << fmt_name(format)
             << ": corrupted checkpoint was silently accepted";
    } catch (const pcf::precondition_error& e) {
      const std::string what = e.what();
      if (kind == fault_kind::bit_flip) {
        EXPECT_NE(what.find("CRC mismatch"), std::string::npos) << what;
        if (format != fmt::parallel) {
          EXPECT_NE(what.find("c_om"), std::string::npos) << what;
        }
      } else {
        EXPECT_TRUE(what.find("truncated") != std::string::npos ||
                    what.find("CRC mismatch") != std::string::npos)
            << what;
      }
    }
  });
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    AllFormatsAllFaults, FaultMatrix,
    ::testing::Values(
        fault_case{fmt::per_rank, fault_kind::short_write},
        fault_case{fmt::per_rank, fault_kind::bit_flip},
        fault_case{fmt::per_rank, fault_kind::crash_after_n},
        fault_case{fmt::global, fault_kind::short_write},
        fault_case{fmt::global, fault_kind::bit_flip},
        fault_case{fmt::global, fault_kind::crash_after_n},
        fault_case{fmt::parallel, fault_kind::short_write},
        fault_case{fmt::parallel, fault_kind::bit_flip},
        fault_case{fmt::parallel, fault_kind::crash_after_n}),
    [](const ::testing::TestParamInfo<fault_case>& info) {
      std::string kind;
      switch (info.param.kind) {
        case fault_kind::short_write: kind = "ShortWrite"; break;
        case fault_kind::bit_flip: kind = "BitFlip"; break;
        default: kind = "CrashAfterN"; break;
      }
      std::string f = fmt_name(info.param.format);
      f[0] = static_cast<char>(std::toupper(f[0]));
      const auto us = f.find('_');
      if (us != std::string::npos) {
        f.erase(us, 1);
        f[us] = static_cast<char>(std::toupper(f[us]));
      }
      return f + kind;
    });

TEST(Faults, FailOpenLeavesThePreviousCheckpointLoadable) {
  const std::string path = ::testing::TempDir() + "/pcf_fault_open.ckpt";
  run_world(1, [&](communicator& world) {
    channel_dns dns(cfg_small(), world);
    dns.initialize(0.1, 3);
    dns.step();
    dns.save_checkpoint(path);
    const auto good = slurp(path);
    dns.step();
    {
      fault_injection_scope fault({fault_kind::fail_open, 0, path});
      EXPECT_THROW(dns.save_checkpoint(path), pcf::precondition_error);
    }
    const auto after = slurp(path);
    ASSERT_EQ(after.size(), good.size());
    EXPECT_EQ(std::memcmp(after.data(), good.data(), good.size()), 0);
    channel_dns dns2(cfg_small(), world);
    dns2.load_checkpoint(path);
    EXPECT_EQ(dns2.step_count(), 1);
  });
  std::remove(path.c_str());
}

}  // namespace
