#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "core/simulation.hpp"

namespace {

using pcf::core::channel_config;
using pcf::core::channel_dns;
using pcf::vmpi::communicator;
using pcf::vmpi::run_world;

channel_config cfg_small() {
  channel_config cfg;
  cfg.nx = 8;
  cfg.nz = 8;
  cfg.ny = 24;
  cfg.dt = 1e-4;
  return cfg;
}

TEST(Checkpoint, SaveLoadResumesExactly) {
  const std::string path = ::testing::TempDir() + "/pcf_ckpt.bin";
  std::vector<double> direct, resumed;
  run_world(1, [&](communicator& world) {
    auto cfg = cfg_small();
    channel_dns dns(cfg, world);
    dns.initialize(0.1, 5);
    dns.step();
    dns.step();
    dns.save_checkpoint(path);
    dns.step();
    direct = dns.mean_profile();
  });
  run_world(1, [&](communicator& world) {
    auto cfg = cfg_small();
    channel_dns dns(cfg, world);
    dns.load_checkpoint(path);
    EXPECT_EQ(dns.step_count(), 2);
    dns.step();
    resumed = dns.mean_profile();
  });
  ASSERT_EQ(direct.size(), resumed.size());
  for (std::size_t i = 0; i < direct.size(); ++i)
    EXPECT_DOUBLE_EQ(direct[i], resumed[i]);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsMismatchedGrid) {
  const std::string path = ::testing::TempDir() + "/pcf_ckpt2.bin";
  run_world(1, [&](communicator& world) {
    auto cfg = cfg_small();
    channel_dns dns(cfg, world);
    dns.initialize(0.0);
    dns.save_checkpoint(path);
  });
  EXPECT_THROW(
      run_world(1,
                [&](communicator& world) {
                  auto cfg = cfg_small();
                  cfg.nx = 16;
                  channel_dns dns(cfg, world);
                  dns.load_checkpoint(path);
                }),
      pcf::precondition_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, BitwiseIdenticalResumeUnderV2) {
  // Save/load/step must reproduce the direct run bit for bit, not just to
  // rounding: the restart path may not perturb the trajectory at all.
  const std::string path = ::testing::TempDir() + "/pcf_ckpt_bitwise.bin";
  run_world(1, [&](communicator& world) {
    auto cfg = cfg_small();
    channel_dns dns(cfg, world);
    dns.initialize(0.1, 7);
    for (int i = 0; i < 3; ++i) dns.step();
    dns.save_checkpoint(path);

    channel_dns dns2(cfg, world);
    dns2.load_checkpoint(path);
    EXPECT_EQ(dns2.time(), dns.time());
    EXPECT_EQ(dns2.step_count(), dns.step_count());
    dns.step();
    dns2.step();

    const auto direct = dns.mean_profile();
    const auto resumed = dns2.mean_profile();
    ASSERT_EQ(direct.size(), resumed.size());
    EXPECT_EQ(std::memcmp(direct.data(), resumed.data(),
                          direct.size() * sizeof(double)),
              0);
    const auto va = dns.mode_v(1, 2);
    const auto vb = dns2.mode_v(1, 2);
    ASSERT_EQ(va.size(), vb.size());
    ASSERT_FALSE(va.empty());
    EXPECT_EQ(std::memcmp(va.data(), vb.data(),
                          va.size() * sizeof(std::complex<double>)),
              0);
  });
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsTrailingGarbage) {
  const std::string path = ::testing::TempDir() + "/pcf_ckpt_trail.bin";
  run_world(1, [&](communicator& world) {
    channel_dns dns(cfg_small(), world);
    dns.initialize(0.05);
    dns.step();
    dns.save_checkpoint(path);
    {
      std::ofstream os(path, std::ios::binary | std::ios::app);
      os << "extra bytes past the payload";
    }
    channel_dns dns2(cfg_small(), world);
    try {
      dns2.load_checkpoint(path);
      FAIL() << "trailing garbage was silently accepted";
    } catch (const pcf::precondition_error& e) {
      EXPECT_NE(std::string(e.what()).find("trailing garbage"),
                std::string::npos)
          << e.what();
    }
  });
  std::remove(path.c_str());
}

TEST(Checkpoint, LoadsV1FormatFiles) {
  // Build a v1 (headerless, no-CRC) file from a v2 save: keep the
  // magic/dims/time/steps prefix with the old magic, drop the meta words,
  // concatenate the raw section payloads. The loader must accept it.
  const std::string v2 = ::testing::TempDir() + "/pcf_ckpt_v2.bin";
  const std::string v1 = ::testing::TempDir() + "/pcf_ckpt_v1.bin";
  run_world(1, [&](communicator& world) {
    channel_dns dns(cfg_small(), world);
    dns.initialize(0.1, 11);
    for (int i = 0; i < 2; ++i) dns.step();
    dns.save_checkpoint(v2);

    std::ifstream is(v2, std::ios::binary);
    std::vector<char> bytes{std::istreambuf_iterator<char>(is),
                            std::istreambuf_iterator<char>()};
    constexpr std::uint64_t kMagicV1 = 0x50434644'4e533031ull;
    constexpr std::size_t kPrefix = 8 + 5 * 8 + 8 + 8;  // magic..steps
    std::ofstream os(v1, std::ios::binary);
    os.write(reinterpret_cast<const char*>(&kMagicV1), 8);
    os.write(bytes.data() + 8, kPrefix - 8);
    std::size_t pos = kPrefix + 2 * 4;  // skip the v2 meta (two uint32s)
    while (pos + 24 <= bytes.size()) {
      std::uint64_t sz = 0;  // section header: name[8], bytes, crc, reserved
      std::memcpy(&sz, bytes.data() + pos + 8, 8);
      os.write(bytes.data() + pos + 24, static_cast<std::streamsize>(sz));
      pos += 24 + sz;
    }
    ASSERT_EQ(pos, bytes.size());
    os.close();

    channel_dns dns2(cfg_small(), world);
    dns2.load_checkpoint(v1);
    EXPECT_EQ(dns2.time(), dns.time());
    EXPECT_EQ(dns2.step_count(), dns.step_count());
    const auto a = dns.mean_profile();
    const auto b = dns2.mean_profile();
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0);
  });
  std::remove(v2.c_str());
  std::remove(v1.c_str());
}

#ifdef PCF_SOURCE_DIR
TEST(Checkpoint, CommittedV1ArtifactStillLoads) {
  // The repository ships the checkpoint of the minimal Re_tau = 180 run
  // (results/README.md) in the v1 format; the v2 loader must keep
  // accepting it.
  channel_config cfg;
  cfg.nx = 32;
  cfg.nz = 16;
  cfg.ny = 49;
  cfg.lx = 3.14159265;
  cfg.lz = 0.94247779;
  cfg.re_tau = 180.0;
  cfg.dt = 2e-4;
  run_world(1, [&](communicator& world) {
    channel_dns dns(cfg, world);
    dns.load_checkpoint(std::string(PCF_SOURCE_DIR) +
                        "/results/minimal_channel.ckpt.0");
    EXPECT_EQ(dns.step_count(), 20000);
    EXPECT_NEAR(dns.time(), 4.0, 1e-9);
    const double ke = dns.kinetic_energy();
    EXPECT_TRUE(std::isfinite(ke));
    EXPECT_GT(ke, 0.0);
    // The state is a statistically steady turbulent channel; its bulk
    // velocity must sit near the value logged at step 20000.
    EXPECT_NEAR(dns.bulk_velocity(), 15.474, 0.01);
  });
}
#endif

TEST(Checkpoint, RejectsGarbageFile) {
  const std::string path = ::testing::TempDir() + "/pcf_ckpt3.bin";
  {
    std::ofstream os(path, std::ios::binary);
    os << "not a checkpoint";
  }
  EXPECT_THROW(run_world(1,
                         [&](communicator& world) {
                           auto cfg = cfg_small();
                           channel_dns dns(cfg, world);
                           dns.load_checkpoint(path);
                         }),
               pcf::precondition_error);
  std::remove(path.c_str());
}

}  // namespace
