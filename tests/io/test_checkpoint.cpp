#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "core/simulation.hpp"

namespace {

using pcf::core::channel_config;
using pcf::core::channel_dns;
using pcf::vmpi::communicator;
using pcf::vmpi::run_world;

channel_config cfg_small() {
  channel_config cfg;
  cfg.nx = 8;
  cfg.nz = 8;
  cfg.ny = 24;
  cfg.dt = 1e-4;
  return cfg;
}

TEST(Checkpoint, SaveLoadResumesExactly) {
  const std::string path = ::testing::TempDir() + "/pcf_ckpt.bin";
  std::vector<double> direct, resumed;
  run_world(1, [&](communicator& world) {
    auto cfg = cfg_small();
    channel_dns dns(cfg, world);
    dns.initialize(0.1, 5);
    dns.step();
    dns.step();
    dns.save_checkpoint(path);
    dns.step();
    direct = dns.mean_profile();
  });
  run_world(1, [&](communicator& world) {
    auto cfg = cfg_small();
    channel_dns dns(cfg, world);
    dns.load_checkpoint(path);
    EXPECT_EQ(dns.step_count(), 2);
    dns.step();
    resumed = dns.mean_profile();
  });
  ASSERT_EQ(direct.size(), resumed.size());
  for (std::size_t i = 0; i < direct.size(); ++i)
    EXPECT_DOUBLE_EQ(direct[i], resumed[i]);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsMismatchedGrid) {
  const std::string path = ::testing::TempDir() + "/pcf_ckpt2.bin";
  run_world(1, [&](communicator& world) {
    auto cfg = cfg_small();
    channel_dns dns(cfg, world);
    dns.initialize(0.0);
    dns.save_checkpoint(path);
  });
  EXPECT_THROW(
      run_world(1,
                [&](communicator& world) {
                  auto cfg = cfg_small();
                  cfg.nx = 16;
                  channel_dns dns(cfg, world);
                  dns.load_checkpoint(path);
                }),
      pcf::precondition_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsGarbageFile) {
  const std::string path = ::testing::TempDir() + "/pcf_ckpt3.bin";
  {
    std::ofstream os(path, std::ios::binary);
    os << "not a checkpoint";
  }
  EXPECT_THROW(run_world(1,
                         [&](communicator& world) {
                           auto cfg = cfg_small();
                           channel_dns dns(cfg, world);
                           dns.load_checkpoint(path);
                         }),
               pcf::precondition_error);
  std::remove(path.c_str());
}

}  // namespace
