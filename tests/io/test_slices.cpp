#include <gtest/gtest.h>

#include <mutex>

#include "core/simulation.hpp"
#include "io/slices.hpp"

namespace {

using pcf::core::channel_config;
using pcf::core::channel_dns;
using pcf::vmpi::communicator;
using pcf::vmpi::run_world;

channel_config cfg_small(int pa, int pb) {
  channel_config cfg;
  cfg.nx = 16;
  cfg.nz = 8;
  cfg.ny = 24;
  cfg.dt = 1e-4;
  cfg.pa = pa;
  cfg.pb = pb;
  return cfg;
}

/// Reference: gather on a single rank equals the local field directly.
std::vector<double> serial_slice_xy(std::size_t zg) {
  std::vector<double> out;
  run_world(1, [&](communicator& world) {
    channel_dns dns(cfg_small(1, 1), world);
    dns.initialize(0.2, 5);
    dns.step();
    std::vector<double> u, v, w;
    dns.physical_velocity(u, v, w);
    out = pcf::io::gather_xy_slice(world, dns.dec(), u, zg);
  });
  return out;
}

class SliceDecomp : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SliceDecomp, XySliceMatchesSerialReference) {
  const auto [pa, pb] = GetParam();
  const std::size_t zg = 3;
  const auto ref = serial_slice_xy(zg);
  run_world(pa * pb, [&](communicator& world) {
    channel_dns dns(cfg_small(pa, pb), world);
    dns.initialize(0.2, 5);
    dns.step();
    std::vector<double> u, v, w;
    dns.physical_velocity(u, v, w);
    auto got = pcf::io::gather_xy_slice(world, dns.dec(), u, zg);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
      EXPECT_NEAR(got[i], ref[i], 1e-10) << "rank " << world.rank();
  });
}

TEST_P(SliceDecomp, XzSliceConsistentAcrossRanks) {
  const auto [pa, pb] = GetParam();
  run_world(pa * pb, [&](communicator& world) {
    channel_dns dns(cfg_small(pa, pb), world);
    dns.initialize(0.15, 7);
    std::vector<double> u, v, w;
    dns.physical_velocity(u, v, w);
    auto mine = pcf::io::gather_xz_slice(world, dns.dec(), u, 12);
    // Every rank must hold the identical gathered plane.
    std::vector<double> sum(mine.size());
    world.allreduce_sum(mine.data(), sum.data(), mine.size());
    for (std::size_t i = 0; i < mine.size(); ++i)
      EXPECT_NEAR(sum[i], mine[i] * (pa * pb), 1e-9);
  });
}

INSTANTIATE_TEST_SUITE_P(Grids, SliceDecomp,
                         ::testing::Values(std::make_pair(1, 1),
                                           std::make_pair(2, 2),
                                           std::make_pair(4, 1),
                                           std::make_pair(1, 4)));

TEST(Slices, WallSliceIsZeroByNoSlip) {
  run_world(2, [&](communicator& world) {
    channel_dns dns(cfg_small(2, 1), world);
    dns.initialize(0.2, 5);
    dns.step();
    std::vector<double> u, v, w;
    dns.physical_velocity(u, v, w);
    auto wall = pcf::io::gather_xz_slice(world, dns.dec(), u, 0);
    for (double x : wall) EXPECT_NEAR(x, 0.0, 1e-9);
  });
}

TEST(Slices, RejectsOutOfRangeIndices) {
  run_world(1, [&](communicator& world) {
    channel_dns dns(cfg_small(1, 1), world);
    dns.initialize(0.0);
    std::vector<double> u, v, w;
    dns.physical_velocity(u, v, w);
    EXPECT_THROW(pcf::io::gather_xy_slice(world, dns.dec(), u, 9999),
                 pcf::precondition_error);
    EXPECT_THROW(pcf::io::gather_xz_slice(world, dns.dec(), u, 9999),
                 pcf::precondition_error);
  });
}

}  // namespace
