#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

#include "io/atomic_file.hpp"
#include "util/check.hpp"

namespace {

using pcf::io::atomic_file_writer;
using pcf::io::fault_injection_scope;
using pcf::io::fault_kind;
using pcf::io::fault_policy;

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return {};
  return {std::istreambuf_iterator<char>(is),
          std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::string& content) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os << content;
}

std::string tmp_target(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(AtomicFile, CommitReplacesTargetAtomically) {
  const std::string path = tmp_target("af_commit.bin");
  spit(path, "previous checkpoint");
  {
    atomic_file_writer w(path);
    w.write("new data", 8);
    // Until commit, the target still holds the old bytes.
    EXPECT_EQ(slurp(path), "previous checkpoint");
    w.commit();
  }
  EXPECT_EQ(slurp(path), "new data");
  // The temp file is gone after commit.
  EXPECT_TRUE(slurp(atomic_file_writer::temp_path(path)).empty());
  std::remove(path.c_str());
}

TEST(AtomicFile, AbandonedWriterLeavesTargetUntouched) {
  const std::string path = tmp_target("af_abandon.bin");
  spit(path, "previous checkpoint");
  {
    atomic_file_writer w(path);
    w.write("half-written garb", 17);
    // Destroyed without commit(): models a crash mid-save.
  }
  EXPECT_EQ(slurp(path), "previous checkpoint");
  EXPECT_TRUE(slurp(atomic_file_writer::temp_path(path)).empty());
  std::remove(path.c_str());
}

TEST(AtomicFile, WriteAtPlacesBytesAtAbsoluteOffsets) {
  const std::string path = tmp_target("af_offsets.bin");
  {
    atomic_file_writer w(path);
    w.write_at(4, "BBBB", 4);
    w.write_at(0, "AAAA", 4);
    w.commit();
  }
  EXPECT_EQ(slurp(path), "AAAABBBB");
  std::remove(path.c_str());
}

TEST(AtomicFile, JoinerWritesIntoOwnersTempFile) {
  const std::string path = tmp_target("af_join.bin");
  {
    atomic_file_writer owner(path);
    owner.write_at(0, "XXXX----", 8);
    owner.flush();
    {
      auto joiner = atomic_file_writer::join(path);
      joiner.write_at(4, "YYYY", 4);
      joiner.close();
    }
    owner.commit();
  }
  EXPECT_EQ(slurp(path), "XXXXYYYY");
  std::remove(path.c_str());
}

TEST(AtomicFile, FailOpenFaultThrowsBeforeTouchingAnything) {
  const std::string path = tmp_target("af_failopen.bin");
  spit(path, "previous checkpoint");
  {
    fault_injection_scope fault({fault_kind::fail_open, 0, "af_failopen"});
    EXPECT_THROW(atomic_file_writer w(path), pcf::precondition_error);
  }
  EXPECT_EQ(slurp(path), "previous checkpoint");
  std::remove(path.c_str());
}

TEST(AtomicFile, ShortWriteFaultDropsBytesPastTheLimit) {
  const std::string path = tmp_target("af_short.bin");
  {
    fault_injection_scope fault({fault_kind::short_write, 5, "af_short"});
    atomic_file_writer w(path);
    w.write("0123456789", 10);
    w.commit();  // the writer itself does not notice the torn write
  }
  EXPECT_EQ(slurp(path), "01234");
  std::remove(path.c_str());
}

TEST(AtomicFile, BitFlipFaultInvertsExactlyOneBit) {
  const std::string path = tmp_target("af_flip.bin");
  {
    fault_injection_scope fault({fault_kind::bit_flip, 2, "af_flip"});
    atomic_file_writer w(path);
    w.write("abcdef", 6);
    w.commit();
  }
  EXPECT_EQ(slurp(path), std::string("ab") +
                             static_cast<char>('c' ^ 1) + "def");
  std::remove(path.c_str());
}

TEST(AtomicFile, CrashFaultAbandonsTheTempAndKeepsTheTarget) {
  const std::string path = tmp_target("af_crash.bin");
  spit(path, "previous checkpoint");
  {
    fault_injection_scope fault({fault_kind::crash_after_n, 3, "af_crash"});
    EXPECT_THROW(
        {
          atomic_file_writer w(path);
          w.write("0123456789", 10);
          w.commit();
        },
        pcf::io::injected_crash);
  }
  EXPECT_EQ(slurp(path), "previous checkpoint");
  EXPECT_TRUE(slurp(atomic_file_writer::temp_path(path)).empty());
  std::remove(path.c_str());
}

TEST(AtomicFile, FaultPolicyOnlyFiresOnMatchingPaths) {
  const std::string path = tmp_target("af_other.bin");
  {
    fault_injection_scope fault(
        {fault_kind::crash_after_n, 0, "some_other_file"});
    atomic_file_writer w(path);
    w.write("safe", 4);
    w.commit();
  }
  EXPECT_EQ(slurp(path), "safe");
  std::remove(path.c_str());
}

TEST(AtomicFile, GenerationNamingRoundTrips) {
  EXPECT_EQ(pcf::io::generation_path("run/ckpt", 1500), "run/ckpt.g1500");
}

TEST(AtomicFile, ListAndPruneGenerations) {
  const std::string prefix = tmp_target("af_gen");
  for (long g : {400L, 100L, 300L, 200L})
    spit(pcf::io::generation_path(prefix, g) + ".0", "x");
  // An unrelated suffix must not be picked up.
  spit(pcf::io::generation_path(prefix, 999) + ".1", "x");
  auto gens = pcf::io::list_generations(prefix, ".0");
  ASSERT_EQ(gens.size(), 4u);
  EXPECT_EQ(gens.front(), 100);
  EXPECT_EQ(gens.back(), 400);

  pcf::io::prune_generations(prefix, ".0", 2);
  gens = pcf::io::list_generations(prefix, ".0");
  ASSERT_EQ(gens.size(), 2u);
  EXPECT_EQ(gens[0], 300);
  EXPECT_EQ(gens[1], 400);
  // The other suffix survives pruning.
  EXPECT_EQ(slurp(pcf::io::generation_path(prefix, 999) + ".1"), "x");

  for (long g : {300L, 400L})
    std::remove((pcf::io::generation_path(prefix, g) + ".0").c_str());
  std::remove((pcf::io::generation_path(prefix, 999) + ".1").c_str());
}

}  // namespace
