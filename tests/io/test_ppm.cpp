#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>

#include "io/ppm.hpp"
#include "util/check.hpp"

namespace {

using pcf::io::diverging_rgb;
using pcf::io::write_ppm;

TEST(Ppm, ColormapEndpointsAndCenter) {
  unsigned char rgb[3];
  diverging_rgb(-1.0, -1.0, 1.0, rgb);  // low -> blue
  EXPECT_EQ(rgb[0], 0);
  EXPECT_EQ(rgb[2], 255);
  diverging_rgb(1.0, -1.0, 1.0, rgb);  // high -> red
  EXPECT_EQ(rgb[0], 255);
  EXPECT_EQ(rgb[2], 0);
  diverging_rgb(0.0, -1.0, 1.0, rgb);  // center -> white
  EXPECT_EQ(rgb[0], 255);
  EXPECT_EQ(rgb[1], 255);
  EXPECT_EQ(rgb[2], 255);
}

TEST(Ppm, ValuesOutsideRangeAreClamped) {
  unsigned char lo[3], hi[3], below[3], above[3];
  diverging_rgb(-1.0, -1.0, 1.0, lo);
  diverging_rgb(-50.0, -1.0, 1.0, below);
  diverging_rgb(1.0, -1.0, 1.0, hi);
  diverging_rgb(50.0, -1.0, 1.0, above);
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(lo[c], below[c]);
    EXPECT_EQ(hi[c], above[c]);
  }
}

TEST(Ppm, NonFiniteValuesGetTheSentinelColor) {
  // NaN used to flow through the colormap into a double -> unsigned char
  // cast (undefined behavior); it must map to the magenta sentinel, which
  // the blue-white-red map itself never produces.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  for (double v : {nan, inf, -inf}) {
    unsigned char rgb[3] = {1, 2, 3};
    diverging_rgb(v, -1.0, 1.0, rgb);
    EXPECT_EQ(rgb[0], 255);
    EXPECT_EQ(rgb[1], 0);
    EXPECT_EQ(rgb[2], 255);
  }
}

TEST(Ppm, NanSliceStillWritesEveryPixel) {
  // A slice of a blown-up field: finite values mixed with NaN rows. The
  // writer must produce a complete image with sentinel pixels, not UB.
  const std::string path = ::testing::TempDir() + "/pcf_nan.ppm";
  const std::size_t w = 5, h = 3;
  std::vector<double> data(w * h, 0.25);
  for (std::size_t x = 0; x < w; ++x)
    data[1 * w + x] = std::numeric_limits<double>::quiet_NaN();
  write_ppm(path, data, w, h, -1.0, 1.0);
  std::ifstream is(path, std::ios::binary);
  ASSERT_TRUE(is.good());
  std::string magic;
  int iw = 0, ih = 0, maxv = 0;
  is >> magic >> iw >> ih >> maxv;
  is.get();
  std::vector<unsigned char> px(3 * w * h);
  is.read(reinterpret_cast<char*>(px.data()),
          static_cast<std::streamsize>(px.size()));
  ASSERT_EQ(is.gcount(), static_cast<std::streamsize>(px.size()));
  for (std::size_t x = 0; x < w; ++x) {
    // Row 1 is the NaN row -> magenta sentinel.
    EXPECT_EQ(px[3 * (w + x) + 0], 255);
    EXPECT_EQ(px[3 * (w + x) + 1], 0);
    EXPECT_EQ(px[3 * (w + x) + 2], 255);
    // Rows 0 and 2 hold an in-range value -> never magenta.
    EXPECT_NE(px[3 * x + 1], 0);
    EXPECT_NE(px[3 * (2 * w + x) + 1], 0);
  }
  std::remove(path.c_str());
}

TEST(Ppm, WritesValidHeaderAndSize) {
  const std::string path = ::testing::TempDir() + "/pcf_test.ppm";
  std::vector<double> data(6 * 4, 0.0);
  write_ppm(path, data, 6, 4, -1.0, 1.0);
  std::ifstream is(path, std::ios::binary);
  std::string magic;
  int w = 0, h = 0, maxv = 0;
  is >> magic >> w >> h >> maxv;
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(w, 6);
  EXPECT_EQ(h, 4);
  EXPECT_EQ(maxv, 255);
  is.get();  // single whitespace after header
  std::vector<char> pixels(3 * 6 * 4);
  is.read(pixels.data(), static_cast<std::streamsize>(pixels.size()));
  EXPECT_EQ(is.gcount(), static_cast<std::streamsize>(pixels.size()));
  std::remove(path.c_str());
}

TEST(Ppm, RejectsMismatchedSize) {
  std::vector<double> data(5);
  EXPECT_THROW(write_ppm("/tmp/never.ppm", data, 3, 3, 0, 1),
               pcf::precondition_error);
}

}  // namespace
