#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "io/ppm.hpp"
#include "util/check.hpp"

namespace {

using pcf::io::diverging_rgb;
using pcf::io::write_ppm;

TEST(Ppm, ColormapEndpointsAndCenter) {
  unsigned char rgb[3];
  diverging_rgb(-1.0, -1.0, 1.0, rgb);  // low -> blue
  EXPECT_EQ(rgb[0], 0);
  EXPECT_EQ(rgb[2], 255);
  diverging_rgb(1.0, -1.0, 1.0, rgb);  // high -> red
  EXPECT_EQ(rgb[0], 255);
  EXPECT_EQ(rgb[2], 0);
  diverging_rgb(0.0, -1.0, 1.0, rgb);  // center -> white
  EXPECT_EQ(rgb[0], 255);
  EXPECT_EQ(rgb[1], 255);
  EXPECT_EQ(rgb[2], 255);
}

TEST(Ppm, ValuesOutsideRangeAreClamped) {
  unsigned char lo[3], hi[3], below[3], above[3];
  diverging_rgb(-1.0, -1.0, 1.0, lo);
  diverging_rgb(-50.0, -1.0, 1.0, below);
  diverging_rgb(1.0, -1.0, 1.0, hi);
  diverging_rgb(50.0, -1.0, 1.0, above);
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(lo[c], below[c]);
    EXPECT_EQ(hi[c], above[c]);
  }
}

TEST(Ppm, WritesValidHeaderAndSize) {
  const std::string path = ::testing::TempDir() + "/pcf_test.ppm";
  std::vector<double> data(6 * 4, 0.0);
  write_ppm(path, data, 6, 4, -1.0, 1.0);
  std::ifstream is(path, std::ios::binary);
  std::string magic;
  int w = 0, h = 0, maxv = 0;
  is >> magic >> w >> h >> maxv;
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(w, 6);
  EXPECT_EQ(h, 4);
  EXPECT_EQ(maxv, 255);
  is.get();  // single whitespace after header
  std::vector<char> pixels(3 * 6 * 4);
  is.read(pixels.data(), static_cast<std::streamsize>(pixels.size()));
  EXPECT_EQ(is.gcount(), static_cast<std::streamsize>(pixels.size()));
  std::remove(path.c_str());
}

TEST(Ppm, RejectsMismatchedSize) {
  std::vector<double> data(5);
  EXPECT_THROW(write_ppm("/tmp/never.ppm", data, 3, 3, 0, 1),
               pcf::precondition_error);
}

}  // namespace
