#include <gtest/gtest.h>

#include "netsim/predictor.hpp"

namespace {

using pcf::netsim::job_config;
using pcf::netsim::machine;
using pcf::netsim::predictor;

job_config mira_strong(long cores, int rpn = 0) {
  job_config j;
  j.nx = 18432;
  j.ny = 1536;
  j.nz = 12288;
  j.cores = cores;
  j.ranks_per_node = rpn;  // 0 = MPI mode (one rank per core)
  return j;
}

TEST(Predictor, ResolveLocalizesCommBToNode) {
  predictor p(machine::mira());
  long ranks, pa, pb;
  p.resolve(mira_strong(8192), ranks, pa, pb);
  EXPECT_EQ(ranks, 8192);
  EXPECT_EQ(pb, 16);  // one node
  EXPECT_EQ(pa * pb, ranks);
}

TEST(Predictor, ResolveHonorsExplicitGrid) {
  predictor p(machine::mira());
  auto j = mira_strong(8192);
  j.pa = 128;
  j.pb = 64;
  long ranks, pa, pb;
  p.resolve(j, ranks, pa, pb);
  EXPECT_EQ(pa, 128);
  EXPECT_EQ(pb, 64);
}

TEST(Predictor, AlltoallZeroForSingleRank) {
  predictor p(machine::mira());
  EXPECT_EQ(p.alltoall_time(1, 1e9, 1, 1024, 1, 64), 0.0);
}

TEST(Predictor, NodeLocalExchangeBeatsNetworkExchange) {
  // Table 5's conclusion: the same data moved within a node is much faster
  // than across nodes.
  predictor p(machine::mira());
  const double bytes = 1e9;
  const double local = p.alltoall_time(16, bytes, 16, 8192, 512, 512);
  const double remote = p.alltoall_time(16, bytes, 1, 8192, 512, 512);
  EXPECT_LT(local, remote);
}

TEST(Predictor, AlltoallMonotoneInBytesAndTasks) {
  predictor p(machine::mira());
  const double t1 = p.alltoall_time(512, 1e9, 1, 8192, 16, 512);
  const double t2 = p.alltoall_time(512, 2e9, 1, 8192, 16, 512);
  EXPECT_GT(t2, t1);
  const double t3 = p.alltoall_time(512, 1e9, 1, 131072, 16, 512);
  EXPECT_GT(t3, t1);  // contention grows with total tasks
}

TEST(Predictor, Table5SplitOrdering) {
  // Mira, 8192 cores, grid 2048 x 1024 x 1024: CommB local to the node
  // (512 x 16) must be fastest, and time grows as CommB spreads wider.
  predictor p(machine::mira());
  job_config j;
  j.nx = 2048;
  j.ny = 1024;
  j.nz = 1024;
  j.cores = 8192;
  j.dealias = false;
  // The node-local split must win clearly; wider CommB spreads are slower,
  // flattening at the tail exactly as the paper's measurements do
  // (.386 .462 .593 .609 .614 .626 — the last four nearly equal).
  std::vector<double> t;
  for (long pb : {16L, 32L, 64L, 128L, 256L, 512L}) {
    j.pb = pb;
    j.pa = 8192 / pb;
    t.push_back(p.transpose_cycle(j));
  }
  EXPECT_LT(t[0], 0.85 * t[1]);
  for (std::size_t i = 1; i + 1 < t.size(); ++i)
    EXPECT_LT(t[i], t[i + 1] * 1.05) << "pb index " << i;
  EXPECT_LT(t[1], t.back());
}

TEST(Predictor, StrongScalingTotalDecreases) {
  predictor p(machine::mira());
  double prev = 1e30;
  for (long cores : {131072L, 262144L, 524288L, 786432L}) {
    const double t = p.timestep(mira_strong(cores)).total();
    EXPECT_LT(t, prev) << cores;
    prev = t;
  }
}

TEST(Predictor, AdvanceScalesNearPerfectly) {
  // Table 9: the N-S time advance column scales at ~100%.
  predictor p(machine::mira());
  const double t1 = p.timestep(mira_strong(131072)).advance;
  const double t6 = p.timestep(mira_strong(786432)).advance;
  EXPECT_NEAR(t1 / t6, 6.0, 0.2);
}

TEST(Predictor, BlueWatersTransposeDominates) {
  // Table 9 / Section 5.1: on Blue Waters communication is 80-93% of the
  // step and scales poorly.
  predictor p(machine::blue_waters());
  job_config j;
  j.nx = 2048;
  j.ny = 1024;
  j.nz = 2048;
  j.cores = 16384;
  const auto t = p.timestep(j);
  EXPECT_GT(t.transpose() / t.total(), 0.6);
  // Transpose efficiency over 2048 -> 16384 cores collapses.
  j.cores = 2048;
  const auto t0 = p.timestep(j);
  const double eff = (t0.transpose() / t.transpose()) * (2048.0 / 16384.0);
  EXPECT_LT(eff, 0.6);
}

TEST(Predictor, MiraScalesBetterThanBlueWaters) {
  // Same job, eight-fold core increase: Mira keeps much higher parallel
  // efficiency than Blue Waters (5-D vs 3-D torus).
  job_config j;
  j.nx = 2048;
  j.ny = 1024;
  j.nz = 2048;
  auto eff = [&](machine m) {
    predictor p(std::move(m));
    j.cores = 2048;
    const double t0 = p.timestep(j).total();
    j.cores = 16384;
    const double t1 = p.timestep(j).total();
    return (t0 / t1) / 8.0;
  };
  EXPECT_GT(eff(machine::mira()), eff(machine::blue_waters()) + 0.15);
}

TEST(Predictor, HybridBeatsMpiAtMidScale) {
  // Table 11: one rank per node (hybrid) beats one rank per core (MPI) in
  // the mid range of core counts, mainly through the transpose.
  predictor p(machine::mira());
  const auto mpi = p.timestep(mira_strong(262144, 0));
  const auto hyb = p.timestep(mira_strong(262144, 1));
  EXPECT_LT(hyb.comm, mpi.comm);
  EXPECT_LT(hyb.total(), mpi.total());
}

TEST(Predictor, P3dfftModeSlowerAtScaleOnMira) {
  // Table 6, Mira: the customized kernel (hybrid, Nyquist dropped,
  // threaded) beats P3DFFT mode (per-core ranks, 3x buffers, unthreaded)
  // and the advantage grows with core count.
  predictor p(machine::mira());
  job_config custom;
  custom.nx = 2048;
  custom.ny = 1024;
  custom.nz = 1024;
  custom.dealias = false;
  custom.ranks_per_node = 1;
  job_config p3d = custom;
  p3d.ranks_per_node = 0;
  p3d.drop_nyquist = false;
  p3d.threaded = false;
  p3d.buffer_factor = 3.0;
  double prev_ratio = 0.0;
  for (long cores : {128L, 1024L, 8192L}) {
    custom.cores = p3d.cores = cores;
    const double ratio = p.pfft_cycle(p3d) / p.pfft_cycle(custom);
    EXPECT_GT(ratio, 1.0) << cores;
    EXPECT_GE(ratio, prev_ratio * 0.8) << cores;
    prev_ratio = ratio;
  }
}

TEST(Predictor, ReorderBandwidthSaturates) {
  // Table 4: reorder bandwidth grows with threads then saturates.
  predictor p(machine::mira());
  EXPECT_LT(p.reorder_bandwidth(2), p.reorder_bandwidth(8));
  EXPECT_NEAR(p.reorder_bandwidth(16), p.reorder_bandwidth(64), 0.15 * 28.8e9);
}

TEST(Predictor, WeakScalingEfficiencyDegrades) {
  // Table 10: weak scaling (nx grows with cores) loses efficiency through
  // the transpose and the FFT cache penalty.
  predictor p(machine::mira());
  job_config j;
  j.ny = 1536;
  j.nz = 12288;
  j.nx = 4608;
  j.cores = 65536;
  const double t0 = p.timestep(j).total();
  j.nx = 55296;
  j.cores = 786432;
  const double t1 = p.timestep(j).total();
  EXPECT_GT(t1, t0);  // perfect weak scaling would keep it flat
  EXPECT_LT(t1 / t0, 3.0);  // but it should not collapse either
}

}  // namespace
