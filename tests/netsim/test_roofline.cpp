#include <gtest/gtest.h>

#include "netsim/roofline.hpp"
#include "util/check.hpp"

namespace {

using pcf::netsim::machine;
using pcf::netsim::project;
using pcf::op_counts;

TEST(Roofline, ComputeBoundKernel) {
  // Very high arithmetic intensity: the flop roof binds.
  op_counts c{100'000'000'000ull, 1000, 1000};
  auto e = project(machine::mira(), c, 1);
  EXPECT_FALSE(e.memory_bound);
  EXPECT_NEAR(e.gflops, 12.8, 1e-9);
  EXPECT_NEAR(e.peak_fraction, 1.0, 1e-12);
}

TEST(Roofline, MemoryBoundKernel) {
  // Low intensity (0.1 F/B): memory roof binds, achieved flops well below
  // peak — the Table 2 situation.
  op_counts c{1'000'000'000ull, 5'000'000'000ull, 5'000'000'000ull};
  auto e = project(machine::mira(), c, 16);
  EXPECT_TRUE(e.memory_bound);
  EXPECT_LT(e.peak_fraction, 0.15);
  EXPECT_NEAR(e.intensity, 0.1, 1e-12);
}

TEST(Roofline, AdvanceKernelProfileIsMemoryBoundAtLowPeakFraction) {
  // The measured N-S advance intensity (~0.17 F/B, Table 2 bench): a full
  // BG/Q node should be memory bound at a single-digit percent of peak.
  const double flops = 1e9;
  op_counts c{static_cast<std::uint64_t>(flops),
              static_cast<std::uint64_t>(flops / 0.17 / 2),
              static_cast<std::uint64_t>(flops / 0.17 / 2)};
  auto e = project(machine::mira(), c, 16);
  EXPECT_TRUE(e.memory_bound);
  EXPECT_LT(e.peak_fraction, 0.05);
}

TEST(Roofline, MoreCoresRaiseBothRoofs) {
  op_counts c{1'000'000'000ull, 2'000'000'000ull, 0};
  auto e1 = project(machine::mira(), c, 1);
  auto e8 = project(machine::mira(), c, 8);
  EXPECT_LT(e8.seconds, e1.seconds);
}

TEST(Roofline, MemoryRoofSaturatesWithCores) {
  // Memory-bound kernel: going from 8 to 16 cores helps little (Table 4).
  op_counts c{1000, 50'000'000'000ull, 0};
  auto e8 = project(machine::mira(), c, 8);
  auto e16 = project(machine::mira(), c, 16);
  EXPECT_LT(e16.seconds, e8.seconds);        // still a little faster...
  EXPECT_GT(e16.seconds, 0.85 * e8.seconds); // ...but nowhere near 2x
}

TEST(Roofline, RejectsBadCoreCount) {
  op_counts c{1, 1, 1};
  EXPECT_THROW(project(machine::mira(), c, 0), pcf::precondition_error);
  EXPECT_THROW(project(machine::mira(), c, 17), pcf::precondition_error);
}

}  // namespace
